// GTC example: a multi-node run of the synthetic Gyrokinetic Toroidal Code
// with the full NVM-checkpoint stack — DCPCP local pre-copy plus asynchronous
// remote pre-copy checkpoints to buddy nodes — compared against the classic
// no-pre-copy baseline on the same cluster.
//
// Run with:
//
//	go run ./examples/gtc
package main

import (
	"fmt"
	"os"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/scenario"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

func main() {
	// 2 nodes x 4 cores keeps the example fast; the experiment harness
	// (cmd/nvmcp-bench -scale paper) runs the full 48-rank configuration.
	app := workload.GTC().ScaledTo(120 * mem.MB)
	app.IterTime = 10 * time.Second

	base := cluster.Config{
		Nodes:        2,
		CoresPerNode: 4,
		App:          app,
		Iterations:   4,
		NVMPerCoreBW: 400e6, // constrained NVM: the regime pre-copy targets
		LinkBW:       250e6,
		RemoteEvery:  2,
	}

	fmt.Printf("GTC: %d ranks, %s checkpoint data per rank, local checkpoint every %v, remote every %d-th\n\n",
		base.Nodes*base.CoresPerNode, trace.FmtBytes(float64(app.CheckpointSize())),
		app.IterTime, base.RemoteEvery)

	ideal := base
	ideal.NoCheckpoint = true
	idealRes, _ := cluster.MustRun(ideal)

	baseline := base
	baseline.ForceFull = true
	baseline.Local = "none"
	baseline.Remote = "buddy-burst"
	baseRes, baseC := cluster.MustRun(baseline)

	tuned := base
	tuned.Local = "dcpcp"
	tuned.Remote = "buddy-precopy"
	tuned.RemoteRateCap = scenario.AutoRemoteRateCap(
		app.CheckpointSize(), base.CoresPerNode, app.IterTime, base.RemoteEvery)
	tunedRes, tunedC := cluster.MustRun(tuned)

	tb := &trace.Table{Header: []string{"configuration", "exec time", "overhead", "ckpt block/rank", "data->NVM/rank", "peak link (5s)"}}
	row := func(name string, res cluster.Result, c *cluster.Cluster) {
		ovh := float64(res.ExecTime-idealRes.ExecTime) / float64(idealRes.ExecTime)
		peak, _ := c.Fabric.PeakCkptWindow(res.ExecTime, 5*time.Second)
		tb.AddRow(name,
			res.ExecTime.Round(time.Millisecond).String(),
			trace.FmtPct(ovh),
			res.CkptTimePerRank.Round(time.Millisecond).String(),
			trace.FmtBytes(res.DataToNVMPerRank),
			trace.FmtBytes(peak),
		)
	}
	tb.AddRow("ideal (no checkpoints)", idealRes.ExecTime.Round(time.Millisecond).String(), "-", "-", "-", "-")
	row("no pre-copy (classic)", baseRes, baseC)
	row("NVM-checkpoints (DCPCP + remote pre-copy)", tunedRes, tunedC)
	tb.Write(os.Stdout)

	fmt.Printf("\nGTC detail: dirty tracking skipped the init-only grid after the first checkpoint\n")
	fmt.Printf("  baseline data to NVM per rank: %s; tuned: %s\n",
		trace.FmtBytes(baseRes.DataToNVMPerRank), trace.FmtBytes(tunedRes.DataToNVMPerRank))
	fmt.Printf("  checkpoint traffic shipped to buddies: baseline %s, tuned %s\n",
		trace.FmtBytes(baseC.Fabric.Bytes(interconnect.ClassCkpt)),
		trace.FmtBytes(tunedC.Fabric.Bytes(interconnect.ClassCkpt)))
}
