// LAMMPS example: compares all four local pre-copy schemes (none, CPC, DCPC,
// DCPCP) on the synthetic LAMMPS Rhodo workload, whose hot 3D position array
// keeps changing until the end of each iteration (Figure 6's C3 chunk) — the
// access pattern the prediction table exists for.
//
// Run with:
//
//	go run ./examples/lammps
package main

import (
	"fmt"
	"os"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/mem"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

func main() {
	app := workload.LAMMPSRhodo().ScaledTo(120 * mem.MB)
	app.IterTime = 10 * time.Second

	base := cluster.Config{
		Nodes:        2,
		CoresPerNode: 4,
		App:          app,
		Iterations:   4,
		NVMPerCoreBW: 200e6, // strongly constrained NVM
	}

	fmt.Printf("LAMMPS Rhodo: %d ranks, %s/rank, NVM %s per core\n",
		base.Nodes*base.CoresPerNode, trace.FmtBytes(float64(app.CheckpointSize())),
		trace.FmtRate(base.NVMPerCoreBW))
	fmt.Println("hot chunk x-positions is modified 3x per iteration, last at 95% of the interval")
	fmt.Println()

	ideal := base
	ideal.NoCheckpoint = true
	idealRes, _ := cluster.MustRun(ideal)

	type schemeRun struct {
		name      string
		policy    string
		forceFull bool
	}
	runs := []schemeRun{
		{"no pre-copy (full checkpoint)", "none", true},
		{"CPC (eager chunk pre-copy)", "cpc", false},
		{"DCPC (delayed)", "dcpc", false},
		{"DCPCP (delayed + prediction)", "dcpcp", false},
	}

	tb := &trace.Table{Header: []string{"scheme", "exec time", "overhead", "ckpt block/rank", "data->NVM/rank"}}
	tb.AddRow("ideal (no checkpoints)", idealRes.ExecTime.Round(time.Millisecond).String(), "-", "-", "-")
	for _, r := range runs {
		cfg := base
		cfg.Local = r.policy
		cfg.ForceFull = r.forceFull
		res, _ := cluster.MustRun(cfg)
		ovh := float64(res.ExecTime-idealRes.ExecTime) / float64(idealRes.ExecTime)
		tb.AddRow(r.name,
			res.ExecTime.Round(time.Millisecond).String(),
			trace.FmtPct(ovh),
			res.CkptTimePerRank.Round(time.Millisecond).String(),
			trace.FmtBytes(res.DataToNVMPerRank),
		)
	}
	tb.Write(os.Stdout)
	fmt.Println("\nCPC re-copies the hot chunk repeatedly (extra data moved); DCPCP learns its")
	fmt.Println("modification count in the first iteration and pre-copies it exactly once, after")
	fmt.Println("its final modification of the interval.")
}
