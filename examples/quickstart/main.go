// Quickstart: the smallest end-to-end use of the NVM-checkpoint library.
//
// One simulated process allocates checkpoint variables through the Table III
// interface, computes, checkpoints to local NVM, crashes, and restarts with
// its data verified against the stored checksums — all on one emulated node.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

func main() {
	env := sim.NewEnv()

	// One node: 48 GB DRAM plus a 16 GB PCM-class NVM with Table I
	// parameters, managed by the emulated NVM kernel.
	dram := mem.NewDRAM(env, 48*mem.GB)
	nvm := mem.NewPCM(env, 16*mem.GB)
	kernel := nvmkernel.New(env, dram, nvm)

	// --- First life of the application -----------------------------------
	env.Go("app", func(p *sim.Proc) {
		store := core.NewStore(kernel.Attach("rank0"), core.Options{})

		// nvalloc: allocate checkpoint variables. The application computes
		// on DRAM working copies; each has a shadow NVM placement.
		field, err := store.NVAlloc(p, "temperature-field", 200*mem.MB, true)
		check(err)
		grid, err := store.NV2DAlloc(p, "grid", 4096, 4096, 8)
		check(err)
		fmt.Printf("allocated %s and %s (%s checkpoint data)\n",
			field.Name, grid.Name, fmtMB(store.CheckpointSize()))

		// Compute: the application writes its variables.
		check(field.WriteAll(p))
		check(grid.WriteAll(p))
		p.Sleep(5 * time.Second)

		// nvchkptall: coordinated local checkpoint. Dirty chunks move
		// DRAM -> NVM at the device's bandwidth, caches are flushed, and
		// the commit records flip atomically.
		st := store.ChkptAll(p)
		fmt.Printf("checkpoint #1: copied %s in %v (%d chunks)\n",
			fmtMB(st.BytesCopied), st.Duration.Round(time.Millisecond), st.ChunksCopied)

		// More compute — only the field changes this time.
		check(field.Write(p, 0, 32*mem.MB))
		p.Sleep(5 * time.Second)

		// Second checkpoint: the unmodified grid is skipped entirely.
		st = store.ChkptAll(p)
		fmt.Printf("checkpoint #2: copied %s in %v (%d copied, %d skipped)\n",
			fmtMB(st.BytesCopied), st.Duration.Round(time.Millisecond),
			st.ChunksCopied, st.ChunksSkipped)

		// The process now "crashes": DRAM contents are lost, NVM survives.
		fmt.Println("simulating a crash (soft failure: node survives, process dies)")
		p.KillSelf()
	})
	env.Run()
	kernel.SoftReset()

	// --- Restarted life ---------------------------------------------------
	env.Go("app-restarted", func(p *sim.Proc) {
		store := core.NewStore(kernel.Attach("rank0"), core.Options{})
		restartStart := p.Now()

		// The same nvalloc calls now find the committed checkpoint in NVM:
		// data is fetched back to DRAM and verified against its checksum.
		field, err := store.NVAlloc(p, "temperature-field", 200*mem.MB, true)
		check(err)
		grid, err := store.NV2DAlloc(p, "grid", 4096, 4096, 8)
		check(err)
		fmt.Printf("restart: field restored=%v (v%d), grid restored=%v (v%d)\n",
			field.Restored, field.Version, grid.Restored, grid.Version)
		fmt.Printf("restore took %v of simulated time (NVM reads run near DRAM speed)\n",
			(p.Now() - restartStart).Round(time.Millisecond))
	})
	env.Run()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func fmtMB(b int64) string { return fmt.Sprintf("%.1f MB", float64(b)/(1<<20)) }
