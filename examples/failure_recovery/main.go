// Failure-recovery example: multilevel recovery in action. A 2-node CM1 run
// first survives a soft failure (processes die, node NVM survives — recovery
// restores every rank from its local NVM), then a hard failure (node 0's NVM
// is lost with the node — its ranks recover from the buddy's remote copy
// while node 1 restores locally).
//
// Run with:
//
//	go run ./examples/failure_recovery
package main

import (
	"fmt"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/mem"
	"nvmcp/internal/workload"
)

func main() {
	app := workload.CM1().ScaledTo(80 * mem.MB)
	app.IterTime = 8 * time.Second

	base := cluster.Config{
		Nodes:        2,
		CoresPerNode: 2,
		App:          app,
		Iterations:   5,
		Local:        "dcpcp",
		Remote:       "buddy-burst",
		RemoteEvery:  1, // remote checkpoint every iteration: hard failures lose at most one
	}

	fmt.Println("--- run 1: soft failure at t=20s (node 0 reboots; NVM survives) ---")
	soft := base
	soft.Failures = []cluster.FailureEvent{{After: 20 * time.Second, Node: 0, Hard: false}}
	res, _ := cluster.MustRun(soft)
	report(res)

	fmt.Println("\n--- run 2: hard failure at t=20s (node 0 lost; NVM gone with it) ---")
	hard := base
	hard.Failures = []cluster.FailureEvent{{After: 20 * time.Second, Node: 0, Hard: true}}
	res, _ = cluster.MustRun(hard)
	report(res)

	fmt.Println("\n--- run 3: no failures, for comparison ---")
	res, _ = cluster.MustRun(base)
	report(res)
}

func report(res cluster.Result) {
	fmt.Printf("completed in %v: %d local checkpoints, %d failures injected\n",
		res.ExecTime.Round(time.Millisecond), res.LocalCkpts, res.FailuresInjected)
	fmt.Printf("recoveries: %d chunks restored from local NVM, %d fetched from buddy nodes\n",
		res.Restores, res.RemoteRestores)
}
