module nvmcp

go 1.22
