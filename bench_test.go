// Package nvmcp's top-level benchmarks regenerate every table and figure of
// the paper through the experiment harness and report the headline numbers
// as benchmark metrics, so `go test -bench=. -benchmem` reproduces the
// evaluation end to end. Custom metrics carry the paper-comparable values
// (overheads, reductions, utilizations); wall-clock ns/op only reflects how
// fast the simulation itself runs.
package nvmcp_test

import (
	"testing"

	"nvmcp/internal/experiments"
	"nvmcp/internal/mem"
	"nvmcp/internal/workload"
)

// BenchmarkTable1Devices exercises the Table I device models: a DRAM→NVM
// copy of 256MB under 12-way contention.
func BenchmarkTable1Devices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := workload.MemcpySweep([]int{12}, 256*mem.MB)
		b.ReportMetric(res[0].PerCoreBW/1e6, "MBps-per-core")
	}
}

// BenchmarkMADBench reproduces the Section IV motivation experiment and
// reports the 300MB ramdisk slowdown (paper: ~46%).
func BenchmarkMADBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunMADBench()
		last := rows[len(rows)-1]
		b.ReportMetric(last.Slowdown*100, "%ramdisk-slowdown@300MB")
		b.ReportMetric(last.SyncRatio, "sync-call-ratio")
	}
}

// BenchmarkFig4Memcpy reproduces the parallel-memcpy bandwidth collapse and
// reports the per-core drop at 12 processes for 33MB copies (paper: ~67%).
func BenchmarkFig4Memcpy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4()
		pts := r.Points[33*mem.MB]
		drop := 1 - pts[len(pts)-1].PerCoreBW/pts[0].PerCoreBW
		b.ReportMetric(drop*100, "%per-core-drop@12")
	}
}

// BenchmarkTable4ChunkDistribution recomputes the chunk-size distributions.
func BenchmarkTable4ChunkDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable4()
		b.ReportMetric(rows[1].Over100*100, "%lammps-chunks-over-100MB")
	}
}

// BenchmarkFig7LammpsLocal reproduces the LAMMPS local-checkpoint figure and
// reports the overheads at the most constrained bandwidth point (paper: 15%
// no-pre-copy vs 6.5% pre-copy).
func BenchmarkFig7LammpsLocal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunLocal(workload.LAMMPSRhodo(), experiments.Quick)
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.NoPreOverhead*100, "%overhead-nopre")
		b.ReportMetric(last.PreOverhead*100, "%overhead-pre")
	}
}

// BenchmarkFig8GTCLocal reproduces the GTC local-checkpoint figure and
// reports the data-volume reduction from dirty tracking (the init-only
// chunks the pre-copy path skips).
func BenchmarkFig8GTCLocal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunLocal(workload.GTC(), experiments.Quick)
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.NoPreOverhead*100, "%overhead-nopre")
		b.ReportMetric(last.PreOverhead*100, "%overhead-pre")
		b.ReportMetric((1-last.PreData/last.NoPreData)*100, "%data-reduction")
	}
}

// BenchmarkCM1Local reproduces the in-text CM1 result (small chunks, modest
// pre-copy benefit).
func BenchmarkCM1Local(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunLocal(workload.CM1(), experiments.Quick)
		last := r.Points[len(r.Points)-1]
		b.ReportMetric((last.NoPreOverhead-last.PreOverhead)*100, "%benefit")
	}
}

// BenchmarkFig9RemoteEfficiency reproduces the remote-checkpoint efficiency
// experiment and reports the average overheads (paper: 10.6% burst vs 6.2%
// pre-copy, a ~40% reduction).
func BenchmarkFig9RemoteEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig9(workload.GTC(), experiments.Quick)
		b.ReportMetric(r.AvgOvhNoPre*100, "%avg-overhead-burst")
		b.ReportMetric(r.AvgOvhPre*100, "%avg-overhead-pre")
		if r.AvgOvhNoPre > 0 {
			b.ReportMetric((1-r.AvgOvhPre/r.AvgOvhNoPre)*100, "%overhead-reduction")
		}
	}
}

// BenchmarkFig10PeakInterconnect reproduces the peak-interconnect-usage
// timeline (paper: pre-copy peak about half the burst peak).
func BenchmarkFig10PeakInterconnect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10(workload.LAMMPSRhodo(), experiments.Quick)
		b.ReportMetric(r.PeakReduction*100, "%peak-reduction")
	}
}

// BenchmarkTable5HelperCPU reproduces the helper-core utilization table
// (paper: pre-copy roughly doubles it).
func BenchmarkTable5HelperCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable5(experiments.Quick)
		mid := rows[1] // the 472 MB/core row
		b.ReportMetric(mid.UtilNoPre*100, "%util-burst")
		b.ReportMetric(mid.UtilPre*100, "%util-pre")
	}
}

// BenchmarkModelSection3 evaluates the analytic model sweep.
func BenchmarkModelSection3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunModel()
		b.ReportMetric(rows[len(rows)-1].Efficiency, "efficiency@lowest-bw")
	}
}

// BenchmarkAblationPageVsChunk quantifies page- vs chunk-level protection
// (paper: ~3s of fault handling per GB at page granularity).
func BenchmarkAblationPageVsChunk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunPageAblation()
		gb := rows[len(rows)-1]
		b.ReportMetric(gb.PageTime.Seconds(), "s-per-GB-page-level")
		b.ReportMetric(gb.ChunkTime.Seconds()*1000, "ms-per-GB-chunk-level")
	}
}

// BenchmarkAblationDirectNVM quantifies the direct-NVM-heap slowdown the
// shadow buffer avoids (paper, citing Li et al.: up to ~25%).
func BenchmarkAblationDirectNVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunDirectAblation()
		last := rows[len(rows)-1]
		b.ReportMetric(last.DirectSlowdown*100, "%direct-slowdown")
		b.ReportMetric(last.ShadowSlowdown*100, "%shadow-slowdown")
	}
}

// BenchmarkAblationSerialCopy quantifies the dedicated-core serialization
// penalty for small checkpoints.
func BenchmarkAblationSerialCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunSerialAblation()
		b.ReportMetric(rows[0].SerialPenalty*100, "%penalty-small")
		b.ReportMetric(rows[len(rows)-1].SerialPenalty*100, "%penalty-large")
	}
}
