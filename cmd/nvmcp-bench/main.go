// Command nvmcp-bench regenerates the paper's tables and figures from the
// simulation harness. Each experiment prints the same rows or series the
// paper reports; pass -scale paper for the full 48-rank configuration of the
// evaluation (slower) or keep the default quick scale for a fast pass that
// preserves every shape. Pass -json for machine-readable results.
//
// Usage:
//
//	nvmcp-bench [-scale quick|paper] [-json] [experiment ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/experiments"
	"nvmcp/internal/introspect"
	"nvmcp/internal/scenario"
	"nvmcp/internal/stress"
	"nvmcp/internal/workload"
)

// experimentDef couples an experiment's runner with its text printer. The
// runner's result is what -json serializes.
type experimentDef struct {
	run   func(scale experiments.Scale) any
	print func(w io.Writer, result any)
}

var runners = map[string]experimentDef{
	"tab1": {
		run:   func(experiments.Scale) any { return "device constants; see text output" },
		print: func(w io.Writer, _ any) { experiments.PrintTable1(w) },
	},
	"tab4": {
		run:   func(experiments.Scale) any { return experiments.RunTable4() },
		print: func(w io.Writer, r any) { experiments.PrintTable4(w, r.([]experiments.Table4Row)) },
	},
	"tab5": {
		run:   func(s experiments.Scale) any { return experiments.RunTable5(s) },
		print: func(w io.Writer, r any) { experiments.PrintTable5(w, r.([]experiments.Table5Row)) },
	},
	"fig4": {
		run:   func(experiments.Scale) any { return experiments.RunFig4() },
		print: func(w io.Writer, r any) { experiments.PrintFig4(w, r.(experiments.Fig4Result)) },
	},
	"fig7": {
		run:   func(s experiments.Scale) any { return experiments.RunLocal(workload.LAMMPSRhodo(), s) },
		print: func(w io.Writer, r any) { experiments.PrintLocal(w, r.(experiments.LocalResult)) },
	},
	"fig8": {
		run:   func(s experiments.Scale) any { return experiments.RunLocal(workload.GTC(), s) },
		print: func(w io.Writer, r any) { experiments.PrintLocal(w, r.(experiments.LocalResult)) },
	},
	"cm1": {
		run:   func(s experiments.Scale) any { return experiments.RunLocal(workload.CM1(), s) },
		print: func(w io.Writer, r any) { experiments.PrintLocal(w, r.(experiments.LocalResult)) },
	},
	"fig9": {
		run:   func(s experiments.Scale) any { return experiments.RunFig9(workload.GTC(), s) },
		print: func(w io.Writer, r any) { experiments.PrintFig9(w, r.(experiments.Fig9Result)) },
	},
	"fig10": {
		run:   func(s experiments.Scale) any { return experiments.RunFig10(workload.LAMMPSRhodo(), s) },
		print: func(w io.Writer, r any) { experiments.PrintFig10(w, r.(experiments.Fig10Result)) },
	},
	"madbench": {
		run:   func(experiments.Scale) any { return experiments.RunMADBench() },
		print: func(w io.Writer, r any) { experiments.PrintMADBench(w, r.([]experiments.MADBenchRow)) },
	},
	"model": {
		run:   func(experiments.Scale) any { return experiments.RunModel() },
		print: func(w io.Writer, r any) { experiments.PrintModel(w, r.([]experiments.ModelRow)) },
	},
	"ablation-page": {
		run:   func(experiments.Scale) any { return experiments.RunPageAblation() },
		print: func(w io.Writer, r any) { experiments.PrintPageAblation(w, r.([]experiments.PageAblationRow)) },
	},
	"ablation-direct": {
		run:   func(experiments.Scale) any { return experiments.RunDirectAblation() },
		print: func(w io.Writer, r any) { experiments.PrintDirectAblation(w, r.([]experiments.DirectAblationRow)) },
	},
	"ablation-serial": {
		run:   func(experiments.Scale) any { return experiments.RunSerialAblation() },
		print: func(w io.Writer, r any) { experiments.PrintSerialAblation(w, r.([]experiments.SerialAblationRow)) },
	},
	"restart": {
		run:   func(experiments.Scale) any { return experiments.RunRestart() },
		print: func(w io.Writer, r any) { experiments.PrintRestart(w, r.([]experiments.RestartRow)) },
	},
	"transparent": {
		run:   func(experiments.Scale) any { return experiments.RunTransparent() },
		print: func(w io.Writer, r any) { experiments.PrintTransparent(w, r.(experiments.TransparentRow)) },
	},
	"failures": {
		run:   func(s experiments.Scale) any { return experiments.RunFailureModel(s) },
		print: func(w io.Writer, r any) { experiments.PrintFailureModel(w, r.([]experiments.FailureRow)) },
	},
	"endurance": {
		run:   func(s experiments.Scale) any { return experiments.RunEndurance(s) },
		print: func(w io.Writer, r any) { experiments.PrintEndurance(w, r.([]experiments.EnduranceRow)) },
	},
	"interval": {
		run:   func(s experiments.Scale) any { return experiments.RunInterval(s) },
		print: func(w io.Writer, r any) { experiments.PrintInterval(w, r.(experiments.IntervalResult)) },
	},
	"redundancy": {
		run:   func(experiments.Scale) any { return experiments.RunRedundancy() },
		print: func(w io.Writer, r any) { experiments.PrintRedundancy(w, r.(experiments.RedundancyResult)) },
	},
	"hierarchy": {
		run:   func(s experiments.Scale) any { return experiments.RunHierarchy(s) },
		print: func(w io.Writer, r any) { experiments.PrintHierarchy(w, r.(experiments.HierarchyResult)) },
	},
	"availability": {
		run:   func(s experiments.Scale) any { return experiments.RunAvailability(s) },
		print: func(w io.Writer, r any) { experiments.PrintAvailability(w, r.([]experiments.AvailabilityRow)) },
	},
	"fleet": {
		run:   func(s experiments.Scale) any { return experiments.RunFleet(s) },
		print: func(w io.Writer, r any) { experiments.PrintFleet(w, r.(experiments.FleetResult)) },
	},
}

// order fixes the presentation sequence of `all`: the preset table's
// DESIGN.md §4 order, restricted to ids that have a bench runner.
func order() []string {
	var ids []string
	for _, p := range scenario.Presets() {
		if _, ok := runners[p.ID]; ok {
			ids = append(ids, p.ID)
		}
	}
	return ids
}

// benchRecord is the per-scenario machine-readable envelope written to
// BENCH_<scenario>.json: which experiment ran, at what scale, how long the
// host took, and the experiment's full result struct (which carries the
// virtual times, bytes moved and peak bandwidths the scenario reports).
type benchRecord struct {
	Scenario string  `json:"scenario"`
	Scale    string  `json:"scale"`
	WallMS   float64 `json:"wall_ms"`
	Result   any     `json:"result"`
}

// benchReport is the aggregate written by -report-out.
type benchReport struct {
	Tool      string        `json:"tool"`
	Scale     string        `json:"scale"`
	Scenarios []benchRecord `json:"scenarios"`
}

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	list := flag.Bool("list", false, "list experiment names and exit")
	asJSON := flag.Bool("json", false, "emit results as JSON (combined on stdout, plus one BENCH_<scenario>.json per experiment)")
	jsonDir := flag.String("json-dir", ".", "directory for BENCH_<scenario>.json files")
	reportOut := flag.String("report-out", "", "write an aggregate report JSON of every scenario run to this file")
	stressOut := flag.String("stress-out", "", "write the fleet experiment's stress report to <path>.html and <path>.json")
	httpAddr := flag.String("http", "", "serve live introspection (/healthz /progress, pprof) on this address, e.g. :8080")
	shards := flag.String("shards", "auto", "event-engine shards for every run: auto = min(GOMAXPROCS, topology), or a count (1 = serial engine)")
	flag.Usage = usage
	flag.Parse()

	// Experiments build cluster configs internally, so the shard policy is
	// applied process-wide; ineligible runs quietly keep the serial engine.
	switch *shards {
	case "", "auto":
		cluster.DefaultShards = cluster.ShardsAuto
	default:
		n, err := strconv.Atoi(*shards)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "nvmcp-bench: -shards must be \"auto\" or a count >= 1, got %q\n", *shards)
			os.Exit(2)
		}
		cluster.DefaultShards = n
	}

	// The bench drives many short-lived simulations, so the introspection
	// server carries no single observer — it reports which experiment is
	// running and serves pprof for profiling long paper-scale passes.
	var status atomic.Value
	status.Store("starting")
	if *httpAddr != "" {
		srv, err := introspect.Serve(*httpAddr, introspect.Source{
			Tool:   "nvmcp-bench",
			Status: func() string { return status.Load().(string) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-bench: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "nvmcp-bench: %v\n", err)
			}
		}()
		fmt.Printf("introspection listening on http://%s\n", srv.Addr())
	}

	if *list {
		for _, p := range scenario.Presets() {
			if _, ok := runners[p.ID]; !ok {
				continue
			}
			fmt.Printf("%-16s %s\n", p.ID, p.Description)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	var expanded []string
	for _, t := range targets {
		if t == "all" {
			expanded = append(expanded, order()...)
			continue
		}
		expanded = append(expanded, t)
	}

	jsonOut := make(map[string]benchRecord, len(expanded))
	records := make([]benchRecord, 0, len(expanded))
	for _, name := range expanded {
		// Experiment ids resolve through the preset table, so bench and sim
		// share one namespace; DESIGN.md ids (e.g. F7) are accepted too.
		if p, ok := scenario.PresetByDesignID(name); ok {
			name = p.ID
		}
		def, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %v); use -list\n",
				name, scenario.PresetIDs())
			os.Exit(2)
		}
		status.Store(name)
		start := time.Now()
		result := def.run(scale)
		wall := time.Since(start)
		status.Store("idle")
		rec := benchRecord{
			Scenario: name,
			Scale:    *scaleFlag,
			WallMS:   float64(wall.Microseconds()) / 1e3,
			Result:   result,
		}
		records = append(records, rec)
		if fr, ok := result.(experiments.FleetResult); ok && *stressOut != "" {
			if err := writeStressReport(*stressOut, fr.Report); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *asJSON {
			// The combined stdout object and the per-file artifacts share
			// the benchRecord envelope, so consumers parse one schema.
			jsonOut[name] = rec
			if err := writeJSONFile(filepath.Join(*jsonDir, "BENCH_"+name+".json"), rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		def.print(os.Stdout, result)
		fmt.Printf("[%s completed in %v]\n\n", name, wall.Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *reportOut != "" {
		err := writeJSONFile(*reportOut, benchReport{
			Tool:      "nvmcp-bench",
			Scale:     *scaleFlag,
			Scenarios: records,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeStressReport writes the fleet stress-report pair: <base>.json (the
// stable schema) and <base>.html (self-contained MTTR/availability curves).
func writeStressReport(path string, rep stress.Report) error {
	base := strings.TrimSuffix(path, filepath.Ext(path))
	jf, err := os.Create(base + ".json")
	if err != nil {
		return err
	}
	if err := stress.WriteJSON(jf, rep); err != nil {
		_ = jf.Close() // the write error is the one worth reporting
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	hf, err := os.Create(base + ".html")
	if err != nil {
		return err
	}
	if err := stress.WriteHTML(hf, rep); err != nil {
		_ = hf.Close() // the write error is the one worth reporting
		return err
	}
	if err := hf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote stress report -> %s.json, %s.html\n", base, base)
	return nil
}

// writeJSONFile renders v as indented JSON at path. The file is closed (and
// its Close error surfaced — that is where a full disk shows up) before the
// caller decides how loudly to fail; no os.Exit here, so no defer is skipped.
func writeJSONFile(path string, v any) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func usage() {
	fmt.Fprintf(os.Stderr, `nvmcp-bench regenerates the paper's tables and figures.

usage: nvmcp-bench [-scale quick|paper] [-json] [experiment ...]

experiments:
  tab1      Table I    device parameters
  madbench  Sec. IV    ramdisk vs memory checkpoint motivation
  fig4      Figure 4   parallel memcpy per-core bandwidth
  tab4      Table IV   chunk size distributions
  model     Sec. III   analytic performance model
  fig7      Figure 7   LAMMPS local checkpoint, pre-copy vs no pre-copy
  fig8      Figure 8   GTC local checkpoint
  cm1       Sec. VI    CM1 local checkpoint (small-chunk case)
  fig9      Figure 9   GTC remote checkpoint efficiency
  fig10     Figure 10  peak interconnect usage timeline
  tab5      Table V    helper core CPU utilization
  ablation-page / ablation-direct / ablation-serial
  restart     recovery paths: eager local, lazy restore, remote fetch
  transparent transparent vs application-initiated checkpointing
  failures    injected failures vs the Section III model
  endurance   NVM wear and write energy by scheme
  interval    checkpoint-interval sweep under failures vs Young's optimum
  redundancy  buddy replication vs XOR parity for the remote level
  hierarchy   PFS-direct vs the full three-level hierarchy
  fleet       fleet-scale chaos: MTTR/availability over size, domain loss, placement
  all         everything above, in order
`)
	flag.PrintDefaults()
}
