// Command nvmcp-trace runs one cluster simulation and writes a Chrome
// trace-event timeline (viewable in Perfetto / chrome://tracing) showing
// every rank's compute iterations, quiesce and coordinated-checkpoint spans,
// the helpers' remote shipping, remote-checkpoint triggers, and injected
// failures — the executable version of the paper's Figures 1 and 5 timing
// diagrams.
//
// Lineage tracing is always on, so the same run answers causal queries:
// which tiers a chunk moved through (-chunk), everything a tier touched
// (-tier), any invariant violations (-violations), and the full causal chain
// behind a recovery (-why).
//
// Examples:
//
//	nvmcp-trace -app lammps-rhodo -local dcpcp -remote buddy-precopy -o trace.json
//	# then open trace.json in https://ui.perfetto.dev
//	nvmcp-trace -preset faults -scale tiny -o "" -why rank2/scalar-5@1
//	nvmcp-trace -preset faults -scale tiny -o "" -chunk rank0/field3d-0 -violations
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/lineage"
	"nvmcp/internal/mem"
	"nvmcp/internal/policy"
	"nvmcp/internal/scenario"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

func main() {
	var (
		presetName   = flag.String("preset", "", "run a named preset (see nvmcp-sim -list-presets) instead of composing from flags")
		scenarioPath = flag.String("scenario", "", "run a declarative scenario JSON file")
		scaleName    = flag.String("scale", "quick", "preset scale: tiny, quick, or paper")
		appName      = flag.String("app", "lammps-rhodo", "workload: gtc, lammps-rhodo, or cm1")
		nodes        = flag.Int("nodes", 2, "cluster nodes")
		cores        = flag.Int("cores", 4, "cores (ranks) per node")
		iters        = flag.Int("iters", 4, "iterations")
		ckptMB       = flag.Int64("ckpt-mb", 120, "checkpoint data per rank in MB")
		iterSecs     = flag.Float64("iter-secs", 10, "compute seconds per iteration")
		nvmBW        = flag.Float64("nvm-bw", 400e6, "NVM write bandwidth per core, bytes/sec")
		local        = flag.String("local", "dcpcp", "local pre-copy policy: "+strings.Join(policy.Names(policy.KindLocal), ", "))
		remoteName   = flag.String("remote", "buddy-precopy", "remote tier policy: "+strings.Join(policy.Names(policy.KindRemote), ", "))
		failAt       = flag.Duration("fail-at", 0, "inject a soft failure at this virtual time")
		out          = flag.String("o", "trace.json", "timeline output file (empty = skip the timeline)")
		remEveryN    = flag.Int("remote-every", 2, "remote checkpoint every K-th local")
		chunkKey     = flag.String("chunk", "", "print this chunk's lineage history (key like rank2/scalar-5)")
		tierName     = flag.String("tier", "", "print the lineage of every chunk that touched this tier: dram, local, remote, bottom")
		violations   = flag.Bool("violations", false, "print lineage invariant violations found during the run")
		whyQuery     = flag.String("why", "", "explain a recovery causally: <chunk>@<epoch> (bare <chunk> = newest epoch)")
	)
	flag.Parse()

	cfg, err := resolveConfig(*presetName, *scenarioPath, *scaleName, func() (cluster.Config, error) {
		spec, ok := workload.SpecByName(*appName)
		if !ok {
			return cluster.Config{}, fmt.Errorf("unknown app %q", *appName)
		}
		spec = spec.ScaledTo(*ckptMB * mem.MB)
		spec.IterTime = time.Duration(*iterSecs * float64(time.Second))
		// Policy names resolve through the registry — no scheme-specific
		// branches here.
		cfg := cluster.Config{
			Nodes:         *nodes,
			CoresPerNode:  *cores,
			App:           spec,
			Iterations:    *iters,
			NVMPerCoreBW:  *nvmBW,
			Local:         *local,
			Remote:        *remoteName,
			RemoteEvery:   *remEveryN,
			RemoteRateCap: scenario.AutoRemoteRateCap(spec.CheckpointSize(), *cores, spec.IterTime, *remEveryN),
		}
		if *failAt > 0 {
			cfg.Failures = []cluster.FailureEvent{{After: *failAt, Node: 0}}
		}
		return cfg, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmcp-trace:", err)
		os.Exit(2)
	}
	if *out != "" && cfg.Tracer == nil {
		// Attaching a recorder keeps span recording on (traceless runs
		// disable it).
		cfg.Tracer = trace.NewSpanRecorder()
	}
	// Lineage tracing is this tool's reason to exist; keep it on even when
	// only the timeline was asked for, so every run is queryable.
	if cfg.Lineage == nil {
		cfg.Lineage = &lineage.Config{Enabled: true}
	}

	res, c, err := cluster.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmcp-trace:", err)
		os.Exit(2)
	}

	if *out != "" {
		rec := c.Obs.Spans()
		if err := writeFile(*out, rec.WriteChrome); err != nil {
			fmt.Fprintln(os.Stderr, "nvmcp-trace: write timeline:", err)
			os.Exit(1)
		}
		fmt.Printf("ran %s on %d ranks for %v of virtual time; %d trace events -> %s\n",
			cfg.App.Name, res.Ranks, res.ExecTime.Round(time.Millisecond), rec.Len(), *out)
		fmt.Println("open in https://ui.perfetto.dev or chrome://tracing")
	} else {
		fmt.Printf("ran %s on %d ranks for %v of virtual time\n",
			cfg.App.Name, res.Ranks, res.ExecTime.Round(time.Millisecond))
	}

	if err := runQueries(c.Lineage, *chunkKey, *tierName, *violations, *whyQuery); err != nil {
		fmt.Fprintln(os.Stderr, "nvmcp-trace:", err)
		os.Exit(1)
	}
}

// resolveConfig picks the run's cluster config: a named preset, a scenario
// file, or the flag-composed fallback.
func resolveConfig(preset, path, scaleName string, fromFlags func() (cluster.Config, error)) (cluster.Config, error) {
	switch {
	case preset != "" && path != "":
		return cluster.Config{}, fmt.Errorf("-preset and -scenario are mutually exclusive")
	case preset != "":
		scale, err := scenario.ParseScale(scaleName)
		if err != nil {
			return cluster.Config{}, err
		}
		sc, err := scenario.BuildPreset(preset, scale)
		if err != nil {
			return cluster.Config{}, err
		}
		return cluster.FromScenario(sc)
	case path != "":
		sc, err := scenario.LoadFile(path)
		if err != nil {
			return cluster.Config{}, err
		}
		return cluster.FromScenario(sc)
	}
	return fromFlags()
}

// runQueries answers the lineage questions asked on the command line against
// the finished run's tracer.
func runQueries(tr *lineage.Tracer, chunkKey, tierName string, violations bool, whyQuery string) error {
	if chunkKey != "" {
		h, ok := tr.History(chunkKey)
		if !ok {
			return fmt.Errorf("unknown chunk %q (traced keys look like rank0/field3d-0)", chunkKey)
		}
		fmt.Print(lineage.FormatHistory(h))
	}
	if tierName != "" {
		hs := tr.TierRecords(tierName)
		if len(hs) == 0 {
			fmt.Printf("no lineage records touched the %s tier\n", tierName)
		}
		for _, h := range hs {
			fmt.Print(lineage.FormatHistory(h))
		}
	}
	if violations {
		vs := tr.Violations()
		if n := tr.ViolationCount(); n == 0 {
			fmt.Println("no lineage invariant violations")
		} else {
			fmt.Printf("%d lineage invariant violations (%d retained):\n", n, len(vs))
			for _, v := range vs {
				fmt.Println(" ", v.String())
			}
		}
	}
	if whyQuery != "" {
		chunk, epoch := whyQuery, -1
		if i := strings.LastIndex(whyQuery, "@"); i >= 0 {
			n, err := strconv.Atoi(whyQuery[i+1:])
			if err != nil {
				return fmt.Errorf("bad -why epoch in %q (want <chunk>@<epoch>)", whyQuery)
			}
			chunk, epoch = whyQuery[:i], n
		}
		story, err := tr.Why(chunk, epoch)
		if err != nil {
			return err
		}
		fmt.Print(story)
	}
	return nil
}

// writeFile streams write into path, surfacing the Close error (a full disk
// shows up there). No os.Exit here, so the deferred Close always runs.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return write(f)
}
