// Command nvmcp-trace runs one cluster simulation and writes a Chrome
// trace-event timeline (viewable in Perfetto / chrome://tracing) showing
// every rank's compute iterations, quiesce and coordinated-checkpoint spans,
// the helpers' remote shipping, remote-checkpoint triggers, and injected
// failures — the executable version of the paper's Figures 1 and 5 timing
// diagrams.
//
// Example:
//
//	nvmcp-trace -app lammps-rhodo -local dcpcp -remote buddy-precopy -o trace.json
//	# then open trace.json in https://ui.perfetto.dev
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/mem"
	"nvmcp/internal/policy"
	"nvmcp/internal/scenario"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

func main() {
	var (
		appName    = flag.String("app", "lammps-rhodo", "workload: gtc, lammps-rhodo, or cm1")
		nodes      = flag.Int("nodes", 2, "cluster nodes")
		cores      = flag.Int("cores", 4, "cores (ranks) per node")
		iters      = flag.Int("iters", 4, "iterations")
		ckptMB     = flag.Int64("ckpt-mb", 120, "checkpoint data per rank in MB")
		iterSecs   = flag.Float64("iter-secs", 10, "compute seconds per iteration")
		nvmBW      = flag.Float64("nvm-bw", 400e6, "NVM write bandwidth per core, bytes/sec")
		local      = flag.String("local", "dcpcp", "local pre-copy policy: "+strings.Join(policy.Names(policy.KindLocal), ", "))
		remoteName = flag.String("remote", "buddy-precopy", "remote tier policy: "+strings.Join(policy.Names(policy.KindRemote), ", "))
		failAt     = flag.Duration("fail-at", 0, "inject a soft failure at this virtual time")
		out        = flag.String("o", "trace.json", "output file")
		remEveryN  = flag.Int("remote-every", 2, "remote checkpoint every K-th local")
	)
	flag.Parse()

	spec, ok := workload.SpecByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	spec = spec.ScaledTo(*ckptMB * mem.MB)
	spec.IterTime = time.Duration(*iterSecs * float64(time.Second))

	// Attaching a recorder keeps span recording on (traceless runs disable
	// it). Policy names resolve through the registry — no scheme-specific
	// branches here.
	cfg := cluster.Config{
		Tracer:        trace.NewSpanRecorder(),
		Nodes:         *nodes,
		CoresPerNode:  *cores,
		App:           spec,
		Iterations:    *iters,
		NVMPerCoreBW:  *nvmBW,
		Local:         *local,
		Remote:        *remoteName,
		RemoteEvery:   *remEveryN,
		RemoteRateCap: scenario.AutoRemoteRateCap(spec.CheckpointSize(), *cores, spec.IterTime, *remEveryN),
	}
	if *failAt > 0 {
		cfg.Failures = []cluster.FailureEvent{{After: *failAt, Node: 0}}
	}

	res, c, err := cluster.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rec := c.Obs.Spans()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := rec.WriteChrome(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ran %s on %d ranks for %v of virtual time; %d trace events -> %s\n",
		spec.Name, res.Ranks, res.ExecTime.Round(time.Millisecond), rec.Len(), *out)
	fmt.Println("open in https://ui.perfetto.dev or chrome://tracing")
}
