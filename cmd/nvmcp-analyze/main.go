// Command nvmcp-analyze inspects the workload specifications: the Table IV
// chunk-size distribution, the per-chunk modification schedule (the input to
// the DCPCP prediction table), and the derived pre-copy parameters for a
// given NVM bandwidth.
//
// Usage:
//
//	nvmcp-analyze [-bw 400e6] [-interval 40s] [-json] [app ...]
//	nvmcp-analyze -diff baseline.json new.json [-tolerance 0.05]
//
// The -diff form compares two SLO run reports (written by nvmcp-sim
// -slo-report-out) objective by objective and exits non-zero when the new
// run regressed against the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nvmcp/internal/drift"
	"nvmcp/internal/experiments"
	"nvmcp/internal/model"
	"nvmcp/internal/slo"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

func main() {
	bw := flag.Float64("bw", 400e6, "effective NVM bandwidth per core, bytes/sec")
	interval := flag.Duration("interval", 40*time.Second, "local checkpoint interval")
	rbw := flag.Float64("rbw", 0, "effective remote bandwidth per core, bytes/sec (0 = local tier only)")
	intervalRemote := flag.Duration("interval-remote", 0, "remote checkpoint interval (0 = same as -interval)")
	tcompute := flag.Duration("tcompute", time.Hour, "total compute time for the efficiency prediction")
	mtbfLocal := flag.Duration("mtbf-local", 0, "mean time between soft failures (0 = failure-free)")
	mtbfRemote := flag.Duration("mtbf-remote", 0, "mean time between hard failures (0 = failure-free)")
	asJSON := flag.Bool("json", false, "emit the analysis as JSON instead of tables")
	out := flag.String("o", "", "write the analysis to this file instead of stdout")
	diffMode := flag.Bool("diff", false, "compare two SLO run reports: -diff baseline.json new.json")
	tolerance := flag.Float64("tolerance", 0.05,
		"with -diff, relative headroom erosion allowed before a passing objective counts as regressed")
	flag.Parse()

	if *diffMode {
		os.Exit(runDiff(flag.Args(), *tolerance, *asJSON))
	}

	apps := flag.Args()
	var specs []workload.AppSpec
	if len(apps) == 0 {
		specs = workload.Specs()
	} else {
		for _, name := range apps {
			spec, ok := workload.SpecByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown app %q\n", name)
				os.Exit(2)
			}
			specs = append(specs, spec)
		}
	}

	params := model.Params{
		TCompute:        *tcompute,
		MTBFLocal:       *mtbfLocal,
		MTBFRemote:      *mtbfRemote,
		IntervalLocal:   *interval,
		IntervalRemote:  *intervalRemote,
		NVMBWPerCore:    *bw,
		RemoteBWPerCore: *rbw,
	}

	render := func(w io.Writer) error {
		if *asJSON {
			rows := make([]appAnalysis, len(specs))
			for i, spec := range specs {
				rows[i] = analyzeJSON(spec, params)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		if len(apps) == 0 {
			experiments.PrintTable4(w, experiments.RunTable4())
			fmt.Fprintln(w)
		}
		for _, spec := range specs {
			analyze(w, spec, *bw, *interval)
			fmt.Fprintln(w)
		}
		return nil
	}

	if *out == "" {
		if err := render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := writeFile(*out, render); err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-analyze: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote analysis -> %s\n", *out)
}

// runDiff compares two SLO run reports and returns the process exit code:
// 0 clean, 1 regression, 2 usage or I/O error.
func runDiff(args []string, tolerance float64, asJSON bool) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: nvmcp-analyze -diff baseline.json new.json [-tolerance 0.05]")
		return 2
	}
	a, err := slo.ReadReportFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-analyze: baseline: %v\n", err)
		return 2
	}
	b, err := slo.ReadReportFile(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-analyze: new report: %v\n", err)
		return 2
	}
	res := slo.Diff(a, b, tolerance)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		fmt.Printf("slo diff: %s (%s seed %d) -> %s (%s seed %d), tolerance %.0f%%\n",
			args[0], a.Scenario, a.Seed, args[1], b.Scenario, b.Seed, tolerance*100)
		tb := &trace.Table{Header: []string{"objective", "verdict", "baseline", "new", "detail"}}
		for _, e := range res.Entries {
			tb.AddRow(e.Objective, e.Verdict, fmtPtr(e.AValue), fmtPtr(e.BValue), e.Detail)
		}
		tb.Write(os.Stdout)
	}
	if res.Regressed {
		fmt.Fprintln(os.Stderr, "nvmcp-analyze: SLO regression against baseline")
		return 1
	}
	return 0
}

func fmtPtr(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%g", *v)
}

// writeFile streams render into path, surfacing the Close error (a full disk
// shows up there). No os.Exit here, so the deferred Close always runs.
func writeFile(path string, render func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return render(f)
}

// appAnalysis is the machine-readable form of one workload's analysis: the
// chunk profile plus the §III closed-form predictions (t_lcl, t_rmt, T_p,
// efficiency) that the drift observatory uses as its declared baseline.
// The two must agree — the cross-check test holds this export to
// drift.BaselineFor on identical inputs.
type appAnalysis struct {
	App            string  `json:"app"`
	Chunks         int     `json:"chunks"`
	CheckpointSize int64   `json:"checkpoint_size"`
	IntervalUS     int64   `json:"interval_us"`
	BWPerCore      float64 `json:"bw_per_core"`
	ThresholdUS    int64   `json:"threshold_us"`
	HotChunks      int     `json:"hot_chunks"`
	TLclUS         int64   `json:"t_lcl_us"`
	TRmtUS         int64   `json:"t_rmt_us,omitempty"`
	Efficiency     float64 `json:"efficiency"`
}

func analyzeJSON(spec workload.AppSpec, p model.Params) appAnalysis {
	p.CkptSize = spec.CheckpointSize()
	b := drift.BaselineFor(drift.Inputs{Params: p, Ranks: 1})
	tp := time.Duration(b.PrecopyTpUS) * time.Microsecond
	return appAnalysis{
		App:            spec.Name,
		Chunks:         len(spec.Chunks),
		CheckpointSize: spec.CheckpointSize(),
		IntervalUS:     p.IntervalLocal.Microseconds(),
		BWPerCore:      p.NVMBWPerCore,
		ThresholdUS:    b.PrecopyTpUS,
		HotChunks:      hotChunks(spec, p.IntervalLocal, tp),
		TLclUS:         b.TLclUS,
		TRmtUS:         b.TRmtUS,
		Efficiency:     b.Efficiency,
	}
}

// hotChunks counts chunks still being modified past the pre-copy threshold
// (the ones DCPCP intentionally leaves for the checkpoint).
func hotChunks(spec workload.AppSpec, interval, tp time.Duration) int {
	hot := 0
	for _, c := range spec.Chunks {
		for _, ph := range c.ModPhases {
			if time.Duration(ph*float64(interval)) > tp {
				hot++
				break
			}
		}
	}
	return hot
}

func analyze(w io.Writer, spec workload.AppSpec, bw float64, interval time.Duration) {
	fmt.Fprintf(w, "== %s: %d chunks, %s checkpoint data per rank ==\n",
		spec.Name, len(spec.Chunks), trace.FmtBytes(float64(spec.CheckpointSize())))
	tb := &trace.Table{Header: []string{"chunk", "size", "modifications per iteration"}}
	for _, c := range spec.Chunks {
		sched := "init only"
		if !c.InitOnly {
			parts := make([]string, len(c.ModPhases))
			for i, ph := range c.ModPhases {
				parts[i] = fmt.Sprintf("%.0f%%", ph*100)
			}
			sched = fmt.Sprintf("%dx at %s of interval", len(c.ModPhases), strings.Join(parts, ", "))
		}
		tb.AddRow(c.Name, trace.FmtBytes(float64(c.Size)), sched)
	}
	tb.Write(w)

	tp := model.PreCopyThreshold(interval, spec.CheckpointSize(), bw)
	fmt.Fprintf(w, "pre-copy parameters at %s/core, I=%v: T_c=%v, threshold T_p=%v (%.0f%% of interval)\n",
		trace.FmtRate(bw), interval,
		(interval - tp).Round(time.Millisecond), tp.Round(time.Millisecond),
		float64(tp)/float64(interval)*100)
	fmt.Fprintf(w, "chunks modified after the threshold (hot, DCPCP holds them): %d\n",
		hotChunks(spec, interval, tp))
}
