package main

import (
	"math"
	"testing"
	"time"

	"nvmcp/internal/drift"
	"nvmcp/internal/model"
	"nvmcp/internal/workload"
)

// TestAnalyzeJSONMatchesDriftBaseline is the offline/online cross-check:
// the predictions nvmcp-analyze exports must equal what the drift
// observatory computes as its declared baseline from identical inputs, and
// both must match the §III closed forms evaluated directly.
func TestAnalyzeJSONMatchesDriftBaseline(t *testing.T) {
	params := model.Params{
		TCompute:        time.Hour,
		MTBFLocal:       6 * time.Hour,
		MTBFRemote:      24 * time.Hour,
		IntervalLocal:   40 * time.Second,
		IntervalRemote:  160 * time.Second,
		NVMBWPerCore:    400e6,
		RemoteBWPerCore: 50e6,
	}
	for _, spec := range workload.Specs() {
		p := params
		p.CkptSize = spec.CheckpointSize()
		base := drift.BaselineFor(drift.Inputs{Params: p, Ranks: 1})
		got := analyzeJSON(spec, params)

		if got.TLclUS != base.TLclUS || got.TRmtUS != base.TRmtUS ||
			got.ThresholdUS != base.PrecopyTpUS || got.Efficiency != base.Efficiency {
			t.Errorf("%s: analyze export diverges from drift baseline:\n  analyze  t_lcl=%d t_rmt=%d T_p=%d eff=%g\n  baseline t_lcl=%d t_rmt=%d T_p=%d eff=%g",
				spec.Name, got.TLclUS, got.TRmtUS, got.ThresholdUS, got.Efficiency,
				base.TLclUS, base.TRmtUS, base.PrecopyTpUS, base.Efficiency)
		}

		// Independent evaluation of the closed forms.
		wantTLcl := p.LocalCkptTime().Microseconds()
		wantTRmt := p.RemoteCkptTime().Microseconds()
		wantTp := model.PreCopyThreshold(p.IntervalLocal, p.CkptSize, p.NVMBWPerCore).Microseconds()
		if got.TLclUS != wantTLcl {
			t.Errorf("%s: t_lcl_us = %d, want D/NVMBW = %d", spec.Name, got.TLclUS, wantTLcl)
		}
		if got.TRmtUS != wantTRmt {
			t.Errorf("%s: t_rmt_us = %d, want D/RemoteBW = %d", spec.Name, got.TRmtUS, wantTRmt)
		}
		if got.ThresholdUS != wantTp {
			t.Errorf("%s: threshold_us = %d, want T_p = %d", spec.Name, got.ThresholdUS, wantTp)
		}
		if got.Efficiency != p.Efficiency() {
			t.Errorf("%s: efficiency = %g, want model %g", spec.Name, got.Efficiency, p.Efficiency())
		}
		if got.Efficiency <= 0 || got.Efficiency >= 1 {
			t.Errorf("%s: efficiency = %g, want in (0, 1)", spec.Name, got.Efficiency)
		}
	}
}

// TestAnalyzeJSONLocalOnly: without a remote tier, t_rmt is absent and the
// efficiency prediction still evaluates under the failure-free guards.
func TestAnalyzeJSONLocalOnly(t *testing.T) {
	params := model.Params{
		TCompute:      time.Hour,
		IntervalLocal: 40 * time.Second,
		NVMBWPerCore:  400e6,
	}
	spec, ok := workload.SpecByName("gtc")
	if !ok {
		t.Fatal("gtc workload missing")
	}
	got := analyzeJSON(spec, params)
	if got.TRmtUS != 0 {
		t.Errorf("t_rmt_us = %d without a remote tier, want 0 (omitted)", got.TRmtUS)
	}
	if got.Efficiency <= 0 || got.Efficiency >= 1 {
		t.Errorf("efficiency = %g, want in (0, 1) under failure-free guards", got.Efficiency)
	}
	// Failure-free local-only efficiency is bounded above by I/(I+t_lcl).
	iSecs := params.IntervalLocal.Seconds()
	tLcl := float64(spec.CheckpointSize()) / params.NVMBWPerCore
	upper := iSecs / (iSecs + tLcl)
	if got.Efficiency > upper+1e-9 {
		t.Errorf("efficiency %g exceeds the checkpoint-only bound %g", got.Efficiency, upper)
	}
	if math.Abs(got.Efficiency-upper) > 0.05 {
		t.Errorf("failure-free efficiency %g far from I/(I+t_lcl) = %g", got.Efficiency, upper)
	}
}
