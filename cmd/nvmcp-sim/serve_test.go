package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"nvmcp/internal/controlplane"
	"nvmcp/internal/scenario"
)

// The serve gate drives the real binary end to end: build nvmcp-sim, boot
// -serve on an ephemeral port, submit jobs over HTTP, and hold the served
// results to the same answers the batch CLI gives.

var (
	buildOnce sync.Once
	builtBin  string
	buildErr  error
)

func simBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "nvmcp-sim-e2e")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "nvmcp-sim")
		out, err := exec.Command("go", "build", "-o", builtBin, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

// startServe boots `nvmcp-sim -serve` on an ephemeral port and returns the
// base URL. The server is interrupted (graceful drain) at test cleanup.
func startServe(t *testing.T, extraFlags ...string) string {
	t.Helper()
	bin := simBinary(t)
	args := append([]string{"-serve", "-http", "127.0.0.1:0"}, extraFlags...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	})

	sc := bufio.NewScanner(stdout)
	re := regexp.MustCompile(`listening on (http://\S+)`)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				lineCh <- m[1]
				break
			}
		}
		close(lineCh)
	}()
	select {
	case url, ok := <-lineCh:
		if !ok {
			t.Fatal("serve exited before announcing its address")
		}
		return url
	case <-time.After(20 * time.Second):
		t.Fatal("serve never announced its address")
	}
	return ""
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func pollJobDone(t *testing.T, base string, id int) controlplane.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	var st controlplane.JobStatus
	for {
		resp, err := http.Get(fmt.Sprintf("%s/api/jobs/%d", base, id))
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("poll decode: %v", err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %s", id, st.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestServeChecksumParityWithBatch is the serving mode's core promise: the
// quick preset submitted over HTTP produces the same workload checksum as
// `nvmcp-sim -preset quick` run in batch on the serial engine.
func TestServeChecksumParityWithBatch(t *testing.T) {
	base := startServe(t)

	var st controlplane.JobStatus
	code := postJSON(t, base+"/api/jobs",
		controlplane.SubmitRequest{Preset: "quick", Scale: "tiny", Label: "parity"}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d, want 202", code)
	}
	st = pollJobDone(t, base, st.ID)
	if st.State != controlplane.StateDone || st.Result == nil {
		t.Fatalf("served job ended %s (%s)", st.State, st.Reason)
	}

	out, err := exec.Command(simBinary(t), "-preset", "quick", "-scale", "tiny", "-shards", "1").Output()
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	m := regexp.MustCompile(`workload checksum\s+([0-9a-f]{16})`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("no checksum in batch output:\n%s", out)
	}
	if got, want := st.Result.WorkloadChecksum, string(m[1]); got != want {
		t.Fatalf("served checksum %s != batch checksum %s", got, want)
	}
}

// TestServeLiveZoneOutageReplans drives the full control-plane story over
// the wire: a fleet scenario submitted held, a zone outage injected through
// the API, the run released — and it must re-plan placement off the dead
// zone and converge with zero lost chunks.
func TestServeLiveZoneOutageReplans(t *testing.T) {
	base := startServe(t)

	p, ok := scenario.PresetByID("fleet-zone")
	if !ok {
		t.Fatal("fleet-zone preset missing")
	}
	sc := p.Build(scenario.ScaleTiny)
	sc.Failures = nil // the outage arrives over the API instead
	sc.Name = "fleet-live-outage"

	var st controlplane.JobStatus
	code := postJSON(t, base+"/api/jobs",
		controlplane.SubmitRequest{Scenario: sc, Hold: true, Replan: true}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d, want 202", code)
	}
	if st.State != controlplane.StateHeld {
		t.Fatalf("state = %s, want held", st.State)
	}
	jobURL := fmt.Sprintf("%s/api/jobs/%d", base, st.ID)

	if code := postJSON(t, jobURL+"/events",
		scenario.FailureSpec{AtSecs: 5, Kind: "zone-outage", Zone: 1}, nil); code != http.StatusAccepted {
		t.Fatalf("inject code = %d, want 202", code)
	}
	if code := postJSON(t, jobURL+"/start", struct{}{}, &st); code != http.StatusOK {
		t.Fatalf("start code = %d, want 200", code)
	}

	st = pollJobDone(t, base, st.ID)
	if st.State != controlplane.StateDone {
		t.Fatalf("job ended %s (%s), notes %v", st.State, st.Reason, st.Notes)
	}
	r := st.Result
	if r.FailuresInjected != 1 {
		t.Fatalf("failures injected = %d, want 1", r.FailuresInjected)
	}
	if r.Replans != 1 {
		t.Fatalf("replans = %d, want 1 — the live outage never re-planned placement", r.Replans)
	}
	if r.RecoveryLost != 0 {
		t.Fatalf("lost %d chunks recovering from the live zone outage, want 0", r.RecoveryLost)
	}
	if strings.Join(st.Notes, ";") != "" {
		t.Fatalf("injection left notes: %v", st.Notes)
	}
}
