// Command nvmcp-sim runs one configurable cluster simulation: pick the
// application, machine shape, checkpoint schemes, and optional failure
// injection, and get the run's timing, data-movement, and recovery summary.
//
// Examples:
//
//	nvmcp-sim -app gtc -nodes 4 -cores 12 -iters 4 -local dcpcp
//	nvmcp-sim -app lammps-rhodo -local none -forcefull
//	nvmcp-sim -app cm1 -remote -remote-every 2 -fail-at 30s -fail-node 0 -fail-hard
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/obs"
	"nvmcp/internal/precopy"
	"nvmcp/internal/remote"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

func main() {
	var (
		appName     = flag.String("app", "gtc", "workload: gtc, lammps-rhodo, or cm1")
		nodes       = flag.Int("nodes", 2, "cluster nodes")
		cores       = flag.Int("cores", 4, "cores (ranks) per node")
		iters       = flag.Int("iters", 4, "compute iterations (one local checkpoint each)")
		ckptMB      = flag.Int64("ckpt-mb", 120, "checkpoint data per rank in MB (0 = workload natural size)")
		iterSecs    = flag.Float64("iter-secs", 10, "compute seconds per iteration")
		nvmBW       = flag.Float64("nvm-bw", 400e6, "effective NVM write bandwidth per core, bytes/sec (0 = Table I PCM)")
		linkBW      = flag.Float64("link-bw", 250e6, "per-node link bandwidth, bytes/sec (0 = 40Gbps IB)")
		local       = flag.String("local", "dcpcp", "local pre-copy scheme: none, cpc, dcpc, dcpcp")
		localEvery  = flag.Int("local-every", 1, "local checkpoint every N-th iteration")
		forceFull   = flag.Bool("forcefull", false, "disable dirty tracking (classic full checkpoints)")
		noCkpt      = flag.Bool("no-ckpt", false, "disable checkpointing entirely (ideal run)")
		remoteOn    = flag.Bool("remote", false, "enable buddy-node remote checkpoints")
		remoteEvery = flag.Int("remote-every", 2, "remote checkpoint every K-th local checkpoint")
		remotePre   = flag.Bool("remote-precopy", true, "use pre-copy remote shipping (false = async burst)")
		failAt      = flag.Duration("fail-at", 0, "inject a failure at this virtual time (0 = none)")
		failNode    = flag.Int("fail-node", 0, "node that fails")
		failHard    = flag.Bool("fail-hard", false, "hard failure: the node's NVM is lost")
		eventsOut   = flag.String("events-out", "", "write the typed event log as JSONL to this file")
		metricsOut  = flag.String("metrics-out", "", "write metrics in Prometheus text format to this file")
		traceOut    = flag.String("trace-out", "", "write a Chrome/Perfetto trace-event timeline to this file")
		reportOut   = flag.String("report-out", "", "write the end-of-run report JSON to this file")
	)
	flag.Parse()

	spec, ok := workload.SpecByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q (want gtc, lammps-rhodo, cm1)\n", *appName)
		os.Exit(2)
	}
	if *ckptMB > 0 {
		spec = spec.ScaledTo(*ckptMB * mem.MB)
	}
	spec.IterTime = time.Duration(*iterSecs * float64(time.Second))

	var scheme precopy.Scheme
	switch *local {
	case "none":
		scheme = precopy.NoPreCopy
	case "cpc":
		scheme = precopy.CPC
	case "dcpc":
		scheme = precopy.DCPC
	case "dcpcp":
		scheme = precopy.DCPCP
	default:
		fmt.Fprintf(os.Stderr, "unknown local scheme %q\n", *local)
		os.Exit(2)
	}

	cfg := cluster.Config{
		Nodes:        *nodes,
		CoresPerNode: *cores,
		App:          spec,
		Iterations:   *iters,
		NVMPerCoreBW: *nvmBW,
		LinkBW:       *linkBW,
		LocalScheme:  scheme,
		LocalEvery:   *localEvery,
		ForceFull:    *forceFull,
		NoCheckpoint: *noCkpt,
		Remote:       *remoteOn,
		RemoteEvery:  *remoteEvery,
	}
	if *remoteOn {
		if *remotePre {
			cfg.RemoteScheme = remote.PreCopy
			interval := time.Duration(*remoteEvery) * spec.IterTime
			cfg.RemoteRateCap = 2 * float64(spec.CheckpointSize()) * float64(*cores) / interval.Seconds()
		} else {
			cfg.RemoteScheme = remote.AsyncBurst
		}
	}
	if *failAt > 0 {
		cfg.Failures = []cluster.FailureEvent{{After: *failAt, Node: *failNode, Hard: *failHard}}
	}

	res, c := cluster.Run(cfg)

	fmt.Printf("nvmcp-sim: %s on %dx%d ranks, %s/rank, local=%s remote=%v\n",
		spec.Name, *nodes, *cores, trace.FmtBytes(float64(spec.CheckpointSize())),
		scheme, *remoteOn)
	tb := &trace.Table{Header: []string{"metric", "value"}}
	tb.AddRow("execution time", res.ExecTime.Round(time.Millisecond).String())
	tb.AddRow("local checkpoints", fmt.Sprintf("%d", res.LocalCkpts))
	tb.AddRow("remote checkpoints", fmt.Sprintf("%d", res.RemoteCkpts))
	tb.AddRow("ckpt blocking per rank", res.CkptTimePerRank.Round(time.Millisecond).String())
	tb.AddRow("data to NVM per rank", trace.FmtBytes(res.DataToNVMPerRank))
	tb.AddRow("  via pre-copy", trace.FmtBytes(float64(res.PreCopyBytes)/float64(res.Ranks)))
	tb.AddRow("  at checkpoints", trace.FmtBytes(float64(res.CkptBytes)/float64(res.Ranks)))
	tb.AddRow("pre-copy hit rate", trace.FmtPct(res.PreCopyHitRate))
	tb.AddRow("re-dirty rate", trace.FmtPct(res.ReDirtyRate))
	if *remoteOn {
		tb.AddRow("ckpt bytes on fabric", trace.FmtBytes(c.Fabric.Bytes(interconnect.ClassCkpt)))
		tb.AddRow(fmt.Sprintf("peak fabric ckpt/%v", cluster.PeakWindow),
			trace.FmtBytes(res.PeakCkptWindowBytes))
		for i, u := range res.HelperUtil {
			tb.AddRow(fmt.Sprintf("helper util node %d", i), trace.FmtPct(u))
		}
	}
	if res.FailuresInjected > 0 {
		tb.AddRow("failures injected", fmt.Sprintf("%d", res.FailuresInjected))
		tb.AddRow("local restores", fmt.Sprintf("%d chunks", res.Restores))
		tb.AddRow("remote restores", fmt.Sprintf("%d chunks", res.RemoteRestores))
	}
	tb.Write(os.Stdout)

	writeArtifact(*eventsOut, "events", c.Obs.WriteEventsJSONL)
	writeArtifact(*metricsOut, "metrics", c.Obs.Registry().WriteProm)
	writeArtifact(*traceOut, "trace", c.Obs.Spans().WriteChrome)
	writeArtifact(*reportOut, "report", func(w io.Writer) error {
		return obs.WriteReport(w, c.Obs.BuildReport("nvmcp-sim", cfg, res))
	})
}

// writeArtifact renders one observability sink to a file; an empty path skips
// the sink.
func writeArtifact(path, what string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %s: %v\n", what, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: write %s: %v\n", what, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s -> %s\n", what, path)
}
