// Command nvmcp-sim runs one configurable cluster simulation: load a
// declarative scenario file, pick a named preset, or compose a run from
// flags — machine shape, workload, checkpoint policies for all three levels
// (local pre-copy, remote tier, bottom storage), and optional failure
// injection — and get the run's timing, data-movement, and recovery summary.
//
// Every policy is named, not hard-coded: the -local/-remote/-bottom flags
// and the corresponding scenario fields resolve through the policy registry,
// so a scheme registered in internal/policy is immediately runnable here.
//
// Examples:
//
//	nvmcp-sim -preset fig7 -scale quick
//	nvmcp-sim -scenario docs/scenarios/erasure-remote.json
//	nvmcp-sim -app gtc -nodes 4 -cores 12 -iters 4 -local dcpcp
//	nvmcp-sim -app cm1 -remote buddy-precopy -remote-every 2 -fail-at 30s -fail-hard
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/controlplane"
	"nvmcp/internal/drift"
	"nvmcp/internal/introspect"
	"nvmcp/internal/lineage"
	"nvmcp/internal/obs"
	"nvmcp/internal/policy"
	"nvmcp/internal/scenario"
	"nvmcp/internal/slo"
	"nvmcp/internal/stress"
	"nvmcp/internal/trace"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "run a declarative scenario JSON file")
		presetName   = flag.String("preset", "", "run a named preset (see -list-presets)")
		listPresets  = flag.Bool("list-presets", false, "list preset ids with descriptions and exit")
		scaleName    = flag.String("scale", "quick", "preset scale: tiny, quick, or paper")

		appName      = flag.String("app", "gtc", "workload: gtc, lammps-rhodo, cm1, or amr")
		nodes        = flag.Int("nodes", 2, "cluster nodes")
		cores        = flag.Int("cores", 4, "cores (ranks) per node")
		iters        = flag.Int("iters", 4, "compute iterations (one local checkpoint each)")
		ckptMB       = flag.Float64("ckpt-mb", 120, "checkpoint data per rank in MB (0 = workload natural size)")
		iterSecs     = flag.Float64("iter-secs", 10, "compute seconds per iteration")
		nvmBW        = flag.Float64("nvm-bw", 400e6, "effective NVM write bandwidth per core, bytes/sec (0 = Table I PCM)")
		linkBW       = flag.Float64("link-bw", 250e6, "per-node link bandwidth, bytes/sec (0 = 40Gbps IB)")
		local        = flag.String("local", "dcpcp", "local pre-copy policy: "+strings.Join(policy.Names(policy.KindLocal), ", "))
		localEvery   = flag.Int("local-every", 1, "local checkpoint every N-th iteration")
		forceFull    = flag.Bool("forcefull", false, "disable dirty tracking (classic full checkpoints)")
		noCkpt       = flag.Bool("no-ckpt", false, "disable checkpointing entirely (ideal run)")
		remoteName   = flag.String("remote", "none", "remote tier policy: "+strings.Join(policy.Names(policy.KindRemote), ", "))
		remoteEvery  = flag.Int("remote-every", 2, "remote checkpoint every K-th local checkpoint")
		remoteRate   = flag.Float64("remote-rate", 0, "remote shipping rate cap, bytes/sec (0 = uncapped)")
		remoteAuto   = flag.Bool("remote-auto-rate", true, "derive the remote rate cap from the workload (2·D·cores per interval)")
		bottomName   = flag.String("bottom", "none", "bottom storage policy: "+strings.Join(policy.Names(policy.KindBottom), ", "))
		failAt       = flag.Duration("fail-at", 0, "inject a failure at this virtual time (0 = none)")
		failNode     = flag.Int("fail-node", 0, "node that fails")
		failHard     = flag.Bool("fail-hard", false, "hard failure: the node's NVM is lost")
		failKind     = flag.String("fail-kind", "", "failure kind: soft, hard, nvm-corrupt, link-flap, buddy-loss")
		failChunks   = flag.Int("fail-chunks", 0, "nvm-corrupt: committed chunks to damage (0 = 1)")
		failTorn     = flag.Bool("fail-torn", false, "nvm-corrupt: torn writes instead of bit-flips")
		failDuration = flag.Duration("fail-duration", 0, "link-flap: outage length")
		failFactor   = flag.Float64("fail-factor", 0, "link-flap: residual bandwidth fraction in [0,1)")
		lineageOn    = flag.Bool("lineage", false, "trace per-chunk causal lineage (report summary + /lineage endpoints)")
		invariants   = flag.Bool("invariants", false, "run the online lineage invariant checker; violations fail the run (implies -lineage)")
		sloOn        = flag.Bool("slo", false, "record SLO flight-recorder time series (report summary + /slo endpoints)")
		sloStrict    = flag.Bool("slo-strict", false, "fail the run on the first SLO objective breach (implies -slo)")
		sloReportOut = flag.String("slo-report-out", "", "write the SLO run report to <path>.html and <path>.json (implies -slo)")
		driftOn      = flag.Bool("drift", false, "record the model-drift observatory: §III predictions vs measured series (report summary + /drift endpoints)")
		driftStrict  = flag.Bool("drift-strict", false, "fail the run on the first drift limit breach (implies -drift)")
		driftOut     = flag.String("drift-report-out", "", "write the model-drift report to <path>.html and <path>.json (implies -drift)")
		stressOut    = flag.String("stress-report-out", "", "write the run's stress report (survivability + MTTR/availability cell) to <path>.html and <path>.json")
		shardsFlag   = flag.String("shards", "auto", "event-engine shards: auto = min(GOMAXPROCS, topology), or a count (1 = serial engine)")
		sweepPath    = flag.String("sweep", "", "run every cell of a sweep JSON file sequentially")
		serveMode    = flag.Bool("serve", false, "resident control-plane mode: serve the job API on -http and run submitted scenarios")
		serveRunning = flag.Int("serve-max-running", 2, "serve: max concurrently running jobs")
		serveQueue   = flag.Int("serve-queue", 8, "serve: max queued jobs before submissions are rejected")
		serveFabric  = flag.Float64("serve-fabric-budget", 0, "serve: aggregate declared remote-drain demand across running jobs, bytes/sec (0 = unlimited)")
		serveWindow  = flag.Float64("serve-window-budget", 0, "serve: live ckpt fabric bytes per 5s window across running jobs (0 = unlimited)")
		serveAdmit   = flag.String("serve-admission", "declared", "serve: admission mode: declared (projected demand) or burn-rate (live SLO burn + drift window forecasts)")
		httpAddr     = flag.String("http", "", "serve live introspection (/healthz /metrics /progress /lineage, pprof) on this address, e.g. :8080")
		httpHold     = flag.Bool("http-hold", false, "keep the introspection server up after the run until interrupted")
		eventsOut    = flag.String("events-out", "", "write the typed event log as JSONL to this file")
		metricsOut   = flag.String("metrics-out", "", "write metrics in Prometheus text format to this file")
		traceOut     = flag.String("trace-out", "", "write a Chrome/Perfetto trace-event timeline to this file")
		reportOut    = flag.String("report-out", "", "write the end-of-run report JSON to this file")
	)
	flag.Parse()

	if *listPresets {
		printPresets(os.Stdout, *scaleName)
		return
	}
	if *sweepPath != "" {
		os.Exit(runSweep(*sweepPath, *sloStrict, *sloReportOut))
	}
	if *serveMode {
		admission, err := controlplane.ParseAdmission(*serveAdmit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
			os.Exit(2)
		}
		os.Exit(runServe(*httpAddr, controlplane.Config{
			MaxRunning:   *serveRunning,
			QueueDepth:   *serveQueue,
			FabricBudget: *serveFabric,
			WindowBudget: *serveWindow,
			Admission:    admission,
		}))
	}

	sc, err := resolveScenario(*scenarioPath, *presetName, *scaleName, func() *scenario.Scenario {
		sc := &scenario.Scenario{
			Name:         "cli",
			Nodes:        *nodes,
			CoresPerNode: *cores,
			NVMPerCoreBW: *nvmBW,
			LinkBW:       *linkBW,
			Workload: scenario.WorkloadSpec{
				App:      *appName,
				CkptMB:   *ckptMB,
				IterSecs: *iterSecs,
			},
			Iterations: *iters,
			Local: scenario.LocalSpec{
				Policy:    *local,
				Every:     *localEvery,
				ForceFull: *forceFull,
			},
			Remote: scenario.RemoteSpec{
				Policy:      *remoteName,
				RateCap:     *remoteRate,
				AutoRateCap: *remoteRate == 0 && *remoteAuto,
				Every:       *remoteEvery,
			},
			Bottom:       scenario.BottomSpec{Policy: *bottomName},
			NoCheckpoint: *noCkpt,
			PayloadCap:   2048,
		}
		if *failAt > 0 {
			sc.Failures = []scenario.FailureSpec{{
				AtSecs: failAt.Seconds(), Node: *failNode, Hard: *failHard,
				Kind: *failKind, Chunks: *failChunks, Torn: *failTorn,
				DurationSecs: failDuration.Seconds(), Factor: *failFactor,
			}}
		}
		return sc
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		os.Exit(2)
	}

	// Flags override the scenario's own observability outputs.
	if *eventsOut == "" {
		*eventsOut = sc.Obs.EventsOut
	}
	if *metricsOut == "" {
		*metricsOut = sc.Obs.MetricsOut
	}
	if *traceOut == "" {
		*traceOut = sc.Obs.TraceOut
	}
	if *reportOut == "" {
		*reportOut = sc.Obs.ReportOut
	}

	cfg, err := cluster.FromScenario(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		os.Exit(2)
	}
	if err := applyShards(&cfg, *shardsFlag); err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		os.Exit(2)
	}
	if *traceOut != "" && cfg.Tracer == nil {
		// Only runs that render a timeline pay for span recording.
		cfg.Tracer = trace.NewSpanRecorder()
	}
	if *lineageOn || *invariants {
		cfg.Lineage = &lineage.Config{Enabled: true, Strict: *invariants}
	}
	// A scenario with an slo block arrives here already enabled (via
	// FromScenario); the flags turn recording on for bare runs and make
	// breaches fatal.
	if (*sloOn || *sloStrict || *sloReportOut != "") && cfg.SLO == nil {
		cfg.SLO = &slo.Config{Enabled: true, Spec: sc.SLO}
	}
	if cfg.SLO != nil && *sloStrict {
		cfg.SLO.Strict = true
	}
	// Same shape for the drift observatory: a scenario with a drift block is
	// already enabled, the flags cover bare runs and make breaches fatal.
	if (*driftOn || *driftStrict || *driftOut != "") && cfg.Drift == nil {
		cfg.Drift = &drift.Config{Enabled: true}
		if sc.Drift != nil {
			cfg.Drift.Spec = *sc.Drift
		}
	}
	if cfg.Drift != nil && *driftStrict {
		cfg.Drift.Strict = true
	}

	c, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		os.Exit(2)
	}
	var status atomic.Value
	status.Store("running")
	if *httpAddr != "" {
		srv, err := introspect.Serve(*httpAddr, introspect.Source{
			Obs:     c.Obs,
			Lineage: c.Lineage,
			SLO:     c.SLO,
			Drift:   c.Drift,
			Tool:    "nvmcp-sim",
			Status:  func() string { return status.Load().(string) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
			}
		}()
		fmt.Printf("introspection listening on http://%s (try /progress, /metrics, /lineage)\n", srv.Addr())
	}

	res, err := c.Execute()
	status.Store("done")
	if err != nil {
		// A strict breach still leaves a sealed recorder behind — write the
		// reports first so the failing run can be inspected, then fail.
		writeSLOReport(*sloReportOut, c, sc)
		writeDriftReport(*driftOut, c, sc)
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		os.Exit(1)
	}

	remoteOn := c.RemoteTier() != nil
	fmt.Printf("nvmcp-sim: %s (%s) on %dx%d ranks, %s/rank, local=%s remote=%s bottom=%s\n",
		cfg.App.Name, sc.Name, cfg.Nodes, cfg.CoresPerNode,
		trace.FmtBytes(float64(cfg.App.CheckpointSize())),
		policyName(cfg.Local), policyName(cfg.Remote), policyName(cfg.Bottom))
	tb := &trace.Table{Header: []string{"metric", "value"}}
	tb.AddRow("execution time", res.ExecTime.Round(time.Millisecond).String())
	tb.AddRow("local checkpoints", fmt.Sprintf("%d", res.LocalCkpts))
	tb.AddRow("remote checkpoints", fmt.Sprintf("%d", res.RemoteCkpts))
	tb.AddRow("ckpt blocking per rank", res.CkptTimePerRank.Round(time.Millisecond).String())
	tb.AddRow("data to NVM per rank", trace.FmtBytes(res.DataToNVMPerRank))
	tb.AddRow("  via pre-copy", trace.FmtBytes(float64(res.PreCopyBytes)/float64(res.Ranks)))
	tb.AddRow("  at checkpoints", trace.FmtBytes(float64(res.CkptBytes)/float64(res.Ranks)))
	tb.AddRow("pre-copy hit rate", trace.FmtPct(res.PreCopyHitRate))
	tb.AddRow("re-dirty rate", trace.FmtPct(res.ReDirtyRate))
	if remoteOn {
		tb.AddRow("ckpt bytes on fabric", trace.FmtBytes(c.CkptFabricBytes()))
		tb.AddRow(fmt.Sprintf("peak fabric ckpt/%v", cluster.PeakWindow),
			trace.FmtBytes(res.PeakCkptWindowBytes))
		for i, u := range res.HelperUtil {
			tb.AddRow(fmt.Sprintf("helper util %d", i), trace.FmtPct(u))
		}
	}
	if res.BottomObjects > 0 {
		tb.AddRow("bottom-tier objects", fmt.Sprintf("%d", res.BottomObjects))
		tb.AddRow("bottom-tier bytes", trace.FmtBytes(float64(res.BottomBytes)))
		tb.AddRow("bottom-tier drain time", res.BottomDrainTime.Round(time.Millisecond).String())
	}
	if res.FailuresInjected > 0 {
		tb.AddRow("failures injected", fmt.Sprintf("%d", res.FailuresInjected))
		tb.AddRow("local restores", fmt.Sprintf("%d chunks", res.Restores))
		tb.AddRow("remote restores", fmt.Sprintf("%d chunks", res.RemoteRestores))
		tb.AddRow("recovery path local", fmt.Sprintf("%d chunks", res.RecoveryLocal))
		tb.AddRow("recovery path remote", fmt.Sprintf("%d chunks", res.RecoveryRemote))
		tb.AddRow("recovery path bottom", fmt.Sprintf("%d chunks", res.RecoveryBottom))
		if res.RecoveryLost > 0 {
			tb.AddRow("recovery path lost", fmt.Sprintf("%d chunks", res.RecoveryLost))
		}
		tb.AddRow("MTTR", res.MTTR.Round(time.Millisecond).String())
	}
	if res.FailuresSkipped > 0 {
		tb.AddRow("failures skipped", fmt.Sprintf("%d", res.FailuresSkipped))
	}
	if res.Corruptions > 0 {
		tb.AddRow("NVM chunks corrupted", fmt.Sprintf("%d", res.Corruptions))
	}
	if res.LinkFlaps > 0 {
		tb.AddRow("link flaps", fmt.Sprintf("%d", res.LinkFlaps))
	}
	if res.ShipRetries > 0 {
		tb.AddRow("helper ship retries", fmt.Sprintf("%d", res.ShipRetries))
	}
	if res.BuddyFailovers > 0 {
		tb.AddRow("buddy failovers", fmt.Sprintf("%d", res.BuddyFailovers))
	}
	if res.DegradedTime > 0 {
		tb.AddRow("time degraded", res.DegradedTime.Round(time.Millisecond).String())
	}
	if c.Lineage != nil {
		sum := c.Lineage.Summary()
		tb.AddRow("lineage records", fmt.Sprintf("%d live + %d compacted (%d chunks)",
			sum.Records-sum.CompactedRecords, sum.CompactedRecords, sum.Chunks))
		if sum.DeepestRecoveryChunk != "" {
			tb.AddRow("deepest recovery", fmt.Sprintf("%s via %s tier",
				sum.DeepestRecoveryChunk, sum.DeepestRecoveryTier))
		}
		tb.AddRow("lineage violations", fmt.Sprintf("%d", res.LineageViolations))
	}
	if c.SLO != nil {
		sum := c.SLO.Summary()
		tb.AddRow("slo windows", fmt.Sprintf("%d x %v", sum.Windows,
			time.Duration(sum.WindowUS)*time.Microsecond))
		if n := len(sum.Objectives); n > 0 {
			pass := 0
			for _, o := range sum.Objectives {
				if o.Pass {
					pass++
				}
			}
			tb.AddRow("slo objectives", fmt.Sprintf("%d/%d pass", pass, n))
		}
		tb.AddRow("slo availability", trace.FmtPct(sum.Availability))
		tb.AddRow("slo violations", fmt.Sprintf("%d", res.SLOViolations))
	}
	if c.Drift != nil {
		sum := c.Drift.Summary()
		tb.AddRow("drift windows", fmt.Sprintf("%d x %v", sum.Windows, c.Drift.WindowDuration()))
		worst := 0.0
		for _, q := range sum.Quantities {
			if q.Evaluated > 0 && q.MaxRelErr > worst {
				worst = q.MaxRelErr
			}
		}
		tb.AddRow("drift worst rel err", trace.FmtPct(worst))
		tb.AddRow("drift phase shifts", fmt.Sprintf("%d", sum.PhaseShifts))
		tb.AddRow("drift violations", fmt.Sprintf("%d", res.DriftViolations))
	}
	tb.AddRow("workload checksum", fmt.Sprintf("%016x", res.WorkloadChecksum))
	tb.Write(os.Stdout)

	// Fleet runs get the placement verdict: can a single zone loss destroy
	// all copies of any chunk under this run's replica placement?
	surv := stress.AnalyzeRun(c)
	if cfg.Topo != nil {
		fmt.Println(surv.Verdict())
	}

	writeArtifact(*eventsOut, "events", c.Obs.WriteEventsJSONL)
	writeArtifact(*metricsOut, "metrics", c.Obs.Registry().WriteProm)
	writeArtifact(*traceOut, "trace", c.Obs.Spans().WriteChrome)
	writeArtifact(*reportOut, "report", func(w io.Writer) error {
		rep := c.Obs.BuildReport("nvmcp-sim", cfg, res)
		if c.Lineage != nil {
			rep.Lineage = c.Lineage.Summary()
		}
		if c.SLO != nil {
			rep.SLO = c.SLO.Summary()
		}
		return obs.WriteReport(w, rep)
	})
	writeSLOReport(*sloReportOut, c, sc)
	writeDriftReport(*driftOut, c, sc)
	writeStressReport(*stressOut, sc, c, res, surv)

	if *httpAddr != "" && *httpHold {
		// The finished run stays inspectable (curl /lineage, grab a pprof
		// profile) until the user interrupts.
		fmt.Printf("run done; holding http://%s until interrupt (ctrl-c)\n", *httpAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// runServe is the resident control-plane mode: one process holding the job
// API open, each submitted scenario executing on its own virtual clock under
// the plane's admission policy. The process stays up — and the finished
// jobs' results stay queryable — until an interrupt, when the plane drains
// (queued jobs canceled, live ones aborted at their next control tick) and
// the HTTP server shuts down with its usual grace period.
func runServe(addr string, cfg controlplane.Config) int {
	if addr == "" {
		addr = "127.0.0.1:8080"
	}
	pl := controlplane.New(cfg)
	srv, err := introspect.Serve(addr, introspect.Source{
		Tool:   "nvmcp-sim",
		Status: func() string { return "serving" },
		API:    pl.Handler(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		return 2
	}
	fmt.Printf("control plane listening on http://%s (POST /api/jobs, GET /api/plane)\n", srv.Addr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	code := 0
	select {
	case <-ch:
	case err := <-srv.ServeErr():
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
			code = 1
		}
	}
	pl.Close()
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
	}
	return code
}

// resolveScenario picks the run's scenario: an explicit file, a named preset,
// or the flag-composed fallback.
func resolveScenario(path, preset, scaleName string, fromFlags func() *scenario.Scenario) (*scenario.Scenario, error) {
	switch {
	case path != "" && preset != "":
		return nil, fmt.Errorf("-scenario and -preset are mutually exclusive")
	case path != "":
		return scenario.LoadFile(path)
	case preset != "":
		scale, err := scenario.ParseScale(scaleName)
		if err != nil {
			return nil, err
		}
		return scenario.BuildPreset(preset, scale)
	}
	sc := fromFlags()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// printPresets lists every preset id with its fleet/fault-domain shape at
// the given scale and its one-line description. The fleet column sits
// between "runs via" and "description" so the Makefile's field-positional
// preset sweep (awk '$3 == "-preset"') keeps matching.
func printPresets(w io.Writer, scaleName string) {
	scale, err := scenario.ParseScale(scaleName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		os.Exit(2)
	}
	tb := &trace.Table{Header: []string{"preset", "runs via", "fleet", "description"}}
	for _, p := range scenario.Presets() {
		via := "nvmcp-sim -preset " + p.ID
		fleet := "-"
		if !p.ClusterShaped() {
			via = "nvmcp-bench " + p.ID
		} else if sc := p.Build(scale); sc.Fleet != nil {
			if tp := sc.Topology(); tp != nil {
				fleet = fmt.Sprintf("%dn %s", tp.Nodes(), tp.Summary())
			}
		}
		tb.AddRow(p.ID, via, fleet, p.Description)
	}
	tb.Write(w)
}

// applyShards lowers the -shards flag onto the run config. "auto" arms the
// process-wide auto policy but defers to a scenario's explicit shards field;
// a numeric flag pins the count outright (1 = the serial engine).
func applyShards(cfg *cluster.Config, flagVal string) error {
	switch flagVal {
	case "", "auto":
		cluster.DefaultShards = cluster.ShardsAuto
		return nil
	default:
		n, err := strconv.Atoi(flagVal)
		if err != nil || n < 1 {
			return fmt.Errorf("-shards must be \"auto\" or a count >= 1, got %q", flagVal)
		}
		cfg.Shards = n
		return nil
	}
}

// policyName renders a policy field for the summary line ("" means none).
func policyName(name string) string {
	if name == "" {
		return "none"
	}
	return name
}

// writeArtifact renders one observability sink to a file; an empty path skips
// the sink. Create, write, and Close errors (a full disk surfaces at Close)
// all exit non-zero.
func writeArtifact(path, what string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	if err := writeFile(path, write); err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: write %s: %v\n", what, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s -> %s\n", what, path)
}

// writeSLOReport renders the flight recorder as the report pair: the path's
// extension is replaced, yielding <base>.html (self-contained charts) and
// <base>.json (the stable schema nvmcp-analyze -diff consumes).
func writeSLOReport(path string, c *cluster.Cluster, sc *scenario.Scenario) {
	if path == "" || c.SLO == nil {
		return
	}
	rep := slo.BuildReport(c.SLO, slo.Meta{
		Tool:     "nvmcp-sim",
		Scenario: sc.Name,
		Seed:     sc.FaultSeed,
	})
	if c.Drift != nil {
		// A run recording both gets one combined artifact: the drift section
		// rides in the SLO report (JSON field + an HTML section).
		dr := drift.BuildReport(c.Drift, drift.Meta{
			Tool: "nvmcp-sim", Scenario: sc.Name, Seed: sc.FaultSeed,
		})
		rep.Drift = &dr
	}
	base := strings.TrimSuffix(path, filepath.Ext(path))
	writeArtifact(base+".html", "slo report (html)", func(w io.Writer) error {
		return slo.WriteHTML(w, rep)
	})
	writeArtifact(base+".json", "slo report (json)", func(w io.Writer) error {
		return slo.WriteJSON(w, rep)
	})
}

// writeDriftReport renders the model-drift observatory as the same report
// pair convention: <base>.html and <base>.json.
func writeDriftReport(path string, c *cluster.Cluster, sc *scenario.Scenario) {
	if path == "" || c.Drift == nil {
		return
	}
	rep := drift.BuildReport(c.Drift, drift.Meta{
		Tool:     "nvmcp-sim",
		Scenario: sc.Name,
		Seed:     sc.FaultSeed,
	})
	base := strings.TrimSuffix(path, filepath.Ext(path))
	writeArtifact(base+".html", "drift report (html)", func(w io.Writer) error {
		return drift.WriteHTML(w, rep)
	})
	writeArtifact(base+".json", "drift report (json)", func(w io.Writer) error {
		return drift.WriteJSON(w, rep)
	})
}

// writeStressReport renders the run as a one-cell stress report pair:
// <base>.json (the stable schema, diffable) and <base>.html (self-contained
// survivability verdict plus MTTR/availability cell).
func writeStressReport(path string, sc *scenario.Scenario, c *cluster.Cluster, res cluster.Result, surv *stress.Survivability) {
	if path == "" {
		return
	}
	var survs []*stress.Survivability
	if surv != nil {
		survs = append(survs, surv)
	}
	rep := stress.BuildReport(
		stress.Meta{Tool: "nvmcp-sim", Scenario: sc.Name, Seed: sc.FaultSeed},
		survs, []stress.Cell{stress.CellFromRun(sc, c, res)})
	base := strings.TrimSuffix(path, filepath.Ext(path))
	writeArtifact(base+".html", "stress report (html)", func(w io.Writer) error {
		return stress.WriteHTML(w, rep)
	})
	writeArtifact(base+".json", "stress report (json)", func(w io.Writer) error {
		return stress.WriteJSON(w, rep)
	})
}

// runSweep expands a sweep file and runs every cell sequentially, printing a
// one-line summary per cell. When -slo-report-out is set, each cell writes
// its own report pair under a sanitized cell suffix. The exit code is
// non-zero if any cell fails (including -slo-strict breaches).
func runSweep(path string, sloStrict bool, sloReportOut string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		return 2
	}
	sw, err := scenario.LoadSweep(f)
	// Same Close-error-propagation convention as writeFile below: a failed
	// Close is the sweep's problem unless the load already failed louder.
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		return 2
	}
	cells, err := sw.Expand()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %v\n", err)
		return 2
	}
	fmt.Printf("nvmcp-sim: sweep %s, %d cells\n", path, len(cells))
	failed := 0
	for _, sc := range cells {
		cfg, err := cluster.FromScenario(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-sim: cell %s: %v\n", sc.Name, err)
			failed++
			continue
		}
		if cfg.SLO != nil && sloStrict {
			cfg.SLO.Strict = true
		}
		c, err := cluster.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-sim: cell %s: %v\n", sc.Name, err)
			failed++
			continue
		}
		res, runErr := c.Execute()
		verdict := "ok"
		if runErr != nil {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("  %-60s exec=%-10v slo_violations=%-3d %s\n",
			sc.Name, res.ExecTime.Round(time.Millisecond), res.SLOViolations, verdict)
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-sim: cell %s: %v\n", sc.Name, runErr)
		}
		if sloReportOut != "" && c.SLO != nil {
			base := strings.TrimSuffix(sloReportOut, filepath.Ext(sloReportOut))
			writeSLOReport(base+"-"+cellSlug(sc.Name)+".json", c, sc)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "nvmcp-sim: %d/%d sweep cells failed\n", failed, len(cells))
		return 1
	}
	return 0
}

// cellSlug makes a sweep cell name filesystem-safe.
func cellSlug(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		}
		return '-'
	}, name)
}

// writeFile streams write into path, surfacing the Close error. No os.Exit
// here, so the deferred Close always runs.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return write(f)
}
