package main

import (
	"strings"
	"testing"

	"nvmcp/internal/scenario"
)

// TestPresetListingFleetColumn pins the -list-presets contract: fleet-backed
// presets show their generated topology, everything else shows "-", and the
// column order keeps `awk '$3 == "-preset"'` (the Makefile's preset sweep)
// matching exactly the cluster-shaped presets.
func TestPresetListingFleetColumn(t *testing.T) {
	var buf strings.Builder
	printPresets(&buf, "quick")
	out := buf.String()

	rows := map[string]string{}
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if i < 2 { // header + rule
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			t.Fatalf("preset row has fewer than 4 columns: %q", line)
		}
		rows[fields[0]] = line
	}

	for _, p := range scenario.Presets() {
		line, ok := rows[p.ID]
		if !ok {
			t.Errorf("preset %q missing from listing", p.ID)
			continue
		}
		fields := strings.Fields(line)
		if p.ClusterShaped() {
			if fields[2] != "-preset" {
				t.Errorf("%s: field 3 = %q; Makefile awk sweep expects \"-preset\"", p.ID, fields[2])
			}
			sc := p.Build(scenario.ScaleQuick)
			if sc.Fleet != nil && !strings.Contains(line, "p/") {
				t.Errorf("%s: fleet preset row lacks a topology summary: %q", p.ID, line)
			}
			if sc.Fleet == nil && fields[4] != "-" {
				t.Errorf("%s: non-fleet preset should show \"-\" in the fleet column: %q", p.ID, line)
			}
		} else if fields[2] == "-preset" {
			t.Errorf("%s: bench-only preset must not match the awk preset sweep: %q", p.ID, line)
		}
	}

	// The concrete shape the docs promise for a generated fleet.
	if line := rows["fleet-zone"]; !strings.Contains(line, "96n 1p/4z/8r") {
		t.Errorf("fleet-zone@quick topology column = %q, want 96n 1p/4z/8r", line)
	}
}
