// Command nvmcp-perf is the repository's performance-regression harness. It
// times a fixed set of probes — simulation-kernel microbenchmarks plus
// paper-scale scenario runs — and writes one BENCH_<id>.json record per
// probe (host wall time, simulation events dispatched, events/sec, heap
// allocations). `make bench` refreshes the records; `make bench-check`
// re-runs the probes and fails if any is more than -threshold slower than
// the checked-in baseline in bench/baseline/. A probe that trips a gate is
// re-measured up to -retries times (best reading per metric wins) so one
// noisy sample on a timeshared host cannot fail a healthy probe.
//
// Usage:
//
//	nvmcp-perf [-out dir]                  run probes, write records
//	nvmcp-perf -check bench/baseline       compare against a baseline dir
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/drift"
	"nvmcp/internal/experiments"
	"nvmcp/internal/introspect"
	"nvmcp/internal/lineage"
	"nvmcp/internal/scenario"
	"nvmcp/internal/sim"
	"nvmcp/internal/slo"
	"nvmcp/internal/workload"
)

// perfRecord is one probe's measurement, serialized to BENCH_<id>.json.
type perfRecord struct {
	ID           string  `json:"id"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	Mallocs      uint64  `json:"mallocs"`
	AllocMB      float64 `json:"alloc_mb"`
	Reps         int     `json:"reps"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	// OverheadFrac is the extra wall-time fraction an optional subsystem
	// costs when switched on (the lineage-overhead and slo-overhead probes
	// set it); check mode gates it at overheadLimit.
	OverheadFrac float64 `json:"overhead_frac,omitempty"`
	// Shards is the event-engine shard count the probe ran with (the
	// fleet-shards sweep sets it); SpeedupX is its wall-time speedup over
	// the sweep's serial run.
	Shards   int     `json:"shards,omitempty"`
	SpeedupX float64 `json:"speedup_x,omitempty"`
	// PeakWindowBytes is the staggered run's peak 5s-window checkpoint
	// fabric volume (the stagger-peak probe sets it); PeakReductionFrac is
	// how far below the unstaggered baseline it landed. Check mode requires
	// the reduction to stay strictly positive.
	PeakWindowBytes   float64 `json:"peak_window_bytes,omitempty"`
	PeakReductionFrac float64 `json:"peak_reduction_frac,omitempty"`
}

// probe is one timed workload. run returns the number of simulation events
// dispatched (0 when the probe spans many environments). reps > 1 re-runs
// the probe and keeps the fastest repetition, damping host-scheduler noise
// on the short microbenchmarks. extra, when set, runs after the timed reps
// to derive additional record fields.
type probe struct {
	id     string
	reps   int
	shards int
	run    func() uint64
	extra  func(rec *perfRecord)
}

var probes = []probe{
	{
		// Raw event schedule/dispatch rate — the floor under every
		// simulation in the repository.
		id: "sim-events", reps: 3,
		run: func() uint64 {
			const n = 2_000_000
			e := sim.NewEnv()
			count := 0
			var self func()
			self = func() {
				count++
				if count < n {
					e.Schedule(time.Microsecond, self)
				}
			}
			e.Schedule(0, self)
			e.Run()
			return e.EventsFired()
		},
	},
	{
		// Coroutine park/wake round trips — the process-switch cost the
		// channel-handoff scheduler pays on every blocking primitive.
		id: "sim-procswitch", reps: 3,
		run: func() uint64 {
			const n = 1_000_000
			e := sim.NewEnv()
			e.Go("sleeper", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					p.Sleep(time.Microsecond)
				}
			})
			e.Run()
			return e.EventsFired()
		},
	},
	{
		// One paper-scale GTC cluster run with the full policy stack —
		// the single-simulation end-to-end cost, with an events/sec rate.
		id: "cluster-paper", reps: 2,
		run: func() uint64 {
			_, c := cluster.MustRun(paperClusterCfg())
			return c.EventsFired()
		},
	},
	{
		// The same paper-scale run with lineage tracing off (the record's
		// headline wall time, held to the usual baseline threshold) and on
		// (the overhead fraction, gated at overheadLimit): tracing must be
		// free when disabled and cheap when enabled.
		id: "lineage-overhead", reps: 3,
		run: func() uint64 {
			_, c := cluster.MustRun(paperClusterCfg())
			return c.EventsFired()
		},
		extra: func(rec *perfRecord) {
			onMS := 0.0
			for r := 0; r < 3; r++ {
				cfg := paperClusterCfg()
				cfg.Lineage = &lineage.Config{Enabled: true, Strict: true}
				start := time.Now()
				cluster.MustRun(cfg)
				ms := float64(time.Since(start).Microseconds()) / 1e3
				if r == 0 || ms < onMS {
					onMS = ms
				}
			}
			rec.OverheadFrac = onMS/rec.WallMS - 1
		},
	},
	{
		// The same paper-scale run with the SLO flight recorder off (the
		// headline wall time) and on (the overhead fraction, gated at
		// overheadLimit): windowed aggregation plus online objective
		// evaluation must cost no more than 10% of the plain run.
		id: "slo-overhead", reps: 3,
		run: func() uint64 {
			_, c := cluster.MustRun(paperClusterCfg())
			return c.EventsFired()
		},
		extra: func(rec *perfRecord) {
			onMS := 0.0
			for r := 0; r < 3; r++ {
				cfg := paperClusterCfg()
				cfg.SLO = &slo.Config{Enabled: true, Spec: sloProbeSpec()}
				start := time.Now()
				cluster.MustRun(cfg)
				ms := float64(time.Since(start).Microseconds()) / 1e3
				if r == 0 || ms < onMS {
					onMS = ms
				}
			}
			rec.OverheadFrac = onMS/rec.WallMS - 1
		},
	},
	{
		// The same paper-scale run with the drift observatory off (the
		// headline wall time) and on (the overhead fraction, gated at
		// overheadLimit): the windowed estimators and per-window model
		// re-evaluation must cost no more than 10% of the plain run.
		id: "drift-overhead", reps: 3,
		run: func() uint64 {
			_, c := cluster.MustRun(paperClusterCfg())
			return c.EventsFired()
		},
		extra: func(rec *perfRecord) {
			onMS := 0.0
			for r := 0; r < 3; r++ {
				cfg := paperClusterCfg()
				cfg.Drift = &drift.Config{Enabled: true, Spec: driftProbeSpec()}
				start := time.Now()
				cluster.MustRun(cfg)
				ms := float64(time.Since(start).Microseconds()) / 1e3
				if r == 0 || ms < onMS {
					onMS = ms
				}
			}
			rec.OverheadFrac = onMS/rec.WallMS - 1
		},
	},
	{
		// Shard-count sweep over a 16-node buddy fleet: the same policy
		// stack as cluster-paper, four times the nodes, run on the serial
		// engine and on 2/4/8 shards. Each record is baseline-gated on its
		// own wall time, so a per-shard-count regression trips the check
		// even when the serial engine is unchanged.
		id: "fleet-shards-1", reps: 2, shards: 1,
		run: func() uint64 {
			_, c := cluster.MustRun(fleetClusterCfg(1))
			return c.EventsFired()
		},
		extra: func(rec *perfRecord) {
			fleetSerialMS = rec.WallMS
			rec.SpeedupX = 1
		},
	},
	{
		id: "fleet-shards-2", reps: 2, shards: 2,
		run: func() uint64 {
			_, c := cluster.MustRun(fleetClusterCfg(2))
			return c.EventsFired()
		},
		extra: fleetSpeedup,
	},
	{
		id: "fleet-shards-4", reps: 2, shards: 4,
		run: func() uint64 {
			_, c := cluster.MustRun(fleetClusterCfg(4))
			return c.EventsFired()
		},
		extra: fleetSpeedup,
	},
	{
		id: "fleet-shards-8", reps: 2, shards: 8,
		run: func() uint64 {
			_, c := cluster.MustRun(fleetClusterCfg(8))
			return c.EventsFired()
		},
		extra: fleetSpeedup,
	},
	{
		// One 1,000-node heterogeneous-fleet zone outage on the serial
		// engine: fleet generation, wave startup, the correlated domain
		// loss, and whole-zone recovery, end to end. Guards the fleet
		// paths that the sharded probes (failure-free by construction)
		// never exercise.
		id: "fleet-1k", reps: 1, shards: 1,
		run: func() uint64 {
			sc := experiments.FleetChaosScenario(1000, experiments.Paper, "spread", "zone")
			cfg, err := cluster.FromScenario(sc)
			if err != nil {
				panic(err)
			}
			cfg.Shards = 1
			_, c := cluster.MustRun(cfg)
			return c.EventsFired()
		},
	},
	{
		// Drain staggering on a burst-shaped fleet: the control plane's
		// headline effect. The timed run is the staggered one; extra re-runs
		// the same scenario unstaggered and records how far staggering cut
		// the Figure 10 peak-window quantity. Check mode fails if the
		// reduction ever drops to zero.
		id: "stagger-peak", reps: 3, shards: 1,
		run: func() uint64 {
			res, c := cluster.MustRun(staggerClusterCfg(true))
			staggerPeakBytes = res.PeakCkptWindowBytes
			return c.EventsFired()
		},
		extra: func(rec *perfRecord) {
			base, _ := cluster.MustRun(staggerClusterCfg(false))
			rec.PeakWindowBytes = staggerPeakBytes
			if base.PeakCkptWindowBytes > 0 {
				rec.PeakReductionFrac = 1 - staggerPeakBytes/base.PeakCkptWindowBytes
			}
		},
	},
	{
		// The full Figure 9 sweep at paper scale — the acceptance metric
		// the optimization work is held to.
		id: "fig9-paper", reps: 1,
		run: func() uint64 {
			experiments.RunFig9(workload.GTC(), experiments.Paper)
			return 0
		},
	},
}

// paperClusterCfg is the paper-scale GTC configuration the cluster probes
// share: the full dcpcp + buddy-precopy policy stack at evaluation size.
func paperClusterCfg() cluster.Config {
	cfg, err := cluster.FromScenario(
		scenario.Base("gtc", experiments.Paper.Scenario(), 800e6))
	if err != nil {
		panic(err)
	}
	cfg.Local = "dcpcp"
	cfg.Remote = "buddy-precopy"
	cfg.RemoteEvery = 2
	cfg.LinkBW = 1e9
	// Pinned to the serial engine: these records predate sharding and their
	// baselines must keep measuring the same machine. The fleet-shards
	// probes own the parallel numbers.
	cfg.Shards = 1
	return cfg
}

// fleetClusterCfg scales the paper configuration to a 16-node fleet so the
// shard sweep has enough buddy pairs for eight groups (the 4-node paper
// topology caps at two).
func fleetClusterCfg(shards int) cluster.Config {
	cfg := paperClusterCfg()
	cfg.Nodes = 16
	cfg.Shards = shards
	return cfg
}

// staggerClusterCfg is the stagger-peak probe's fleet: eight nodes whose
// only remote round is a burst-mode buddy drain on the same coordinated
// checkpoint, so every node hits the fabric inside one peak window unless
// the drain gate spreads them out. (Pre-copy buddies ship continuously at
// the rate cap, which makes trigger staggering a no-op — the probe must
// stay burst-shaped to measure anything.)
func staggerClusterCfg(staggered bool) cluster.Config {
	sc := &scenario.Scenario{
		Name:         "stagger-peak",
		Nodes:        8,
		CoresPerNode: 2,
		NVMPerCoreBW: 400e6,
		LinkBW:       250e6,
		Workload:     scenario.WorkloadSpec{App: "cm1", CkptMB: 24, IterSecs: 2},
		Iterations:   4,
		Local:        scenario.LocalSpec{Policy: "dcpcp"},
		Remote:       scenario.RemoteSpec{Policy: "buddy-burst", AutoRateCap: true, Every: 4},
		PayloadCap:   1024,
	}
	if staggered {
		sc.Remote.StaggerMax = 1
		sc.Remote.StaggerSlotSecs = 1.5
	}
	cfg, err := cluster.FromScenario(sc)
	if err != nil {
		panic(err)
	}
	cfg.Shards = 1
	return cfg
}

// staggerPeakBytes is the staggered run's peak window volume, stashed by
// the stagger-peak probe's timed run for its extra pass.
var staggerPeakBytes float64

// fleetSerialMS is the fleet sweep's serial wall time, stashed by the
// fleet-shards-1 probe so later shard counts can report their speedup.
var fleetSerialMS float64

func fleetSpeedup(rec *perfRecord) {
	if fleetSerialMS > 0 {
		rec.SpeedupX = fleetSerialMS / rec.WallMS
	}
}

// sloProbeSpec exercises the whole evaluation path — windowed and final
// objectives across every aggregation kind — with thresholds generous enough
// that the probe run stays violation-free (the probe times the recorder, it
// doesn't gate the scenario).
func sloProbeSpec() *slo.Spec {
	return &slo.Spec{
		Objectives: []slo.Objective{
			{Name: "peak-ckpt-window", Series: "ckpt_window_bytes",
				Direction: slo.AtMost, Threshold: 1e15, Final: true},
			{Name: "precopy-hit-rate", Series: "precopy_hit_rate",
				Direction: slo.AtLeast, Threshold: 0, Final: true},
			{Name: "availability", Series: "availability",
				Direction: slo.AtLeast, Threshold: 0, Over: 3, Tolerance: 0.5},
			{Name: "mttr", Series: "mttr_seconds",
				Direction: slo.AtMost, Threshold: 1e9, Final: true},
		},
	}
}

// driftProbeSpec exercises the full observatory path — every limit
// evaluated each window, plus phase detection — with bounds loose enough
// that the probe run stays violation-free (the probe times the estimators,
// it doesn't gate the scenario).
func driftProbeSpec() drift.Spec {
	return drift.Spec{
		Limits: []drift.Limit{
			{Quantity: drift.QtyCkptTime, MaxRelErr: 1},
			{Quantity: drift.QtyEfficiency, MaxRelErr: 1},
			{Quantity: drift.QtyPrecopyTp, MaxRelErr: 1},
			{Quantity: drift.QtyWindowBytes, MaxRelErr: 1},
		},
	}
}

// overheadLimit is the maximum tolerated wall-time cost of enabling an
// optional observability subsystem (lineage tracing with the strict
// invariant checker, the SLO flight recorder, or the drift observatory),
// as a fraction of the plain run.
const overheadLimit = 0.10

// gateFailures evaluates every check-mode gate against one measurement and
// returns a message per breach. The overhead gate is absolute, not
// baseline-relative: the subsystem switched on must stay within
// overheadLimit of the same run with it off, whatever this host's speed.
// The stagger gate is directional: staggered drains must keep the peak
// window strictly below the unstaggered run.
func gateFailures(rec, base perfRecord, threshold float64) []string {
	var fails []string
	if rec.OverheadFrac > overheadLimit {
		fails = append(fails, fmt.Sprintf("subsystem overhead %.1f%% exceeds %.0f%% limit",
			100*rec.OverheadFrac, 100*overheadLimit))
	}
	if rec.PeakWindowBytes > 0 && rec.PeakReductionFrac <= 0 {
		fails = append(fails, fmt.Sprintf("staggering no longer lowers the peak window (reduction %.1f%%)",
			100*rec.PeakReductionFrac))
	}
	if limit := base.WallMS * (1 + threshold); rec.WallMS > limit {
		fails = append(fails, fmt.Sprintf("%.1f ms vs baseline %.1f ms (limit %.1f ms, +%.0f%%)",
			rec.WallMS, base.WallMS, limit, 100*(rec.WallMS/base.WallMS-1)))
	}
	return fails
}

// bestOf merges two measurements of the same probe, keeping the best
// reading per gated metric: the faster run's wall time (with its event and
// allocation counts), the lower subsystem overhead, the larger stagger
// reduction. Check mode retries a failing probe and gates the merge, so a
// single noisy sample on a timeshared host cannot fail a healthy probe —
// while a true regression fails every retry.
func bestOf(a, b perfRecord) perfRecord {
	best, other := a, b
	if b.WallMS < a.WallMS {
		best, other = b, a
	}
	if other.OverheadFrac < best.OverheadFrac {
		best.OverheadFrac = other.OverheadFrac
	}
	if other.PeakWindowBytes > 0 && other.PeakReductionFrac > best.PeakReductionFrac {
		best.PeakWindowBytes = other.PeakWindowBytes
		best.PeakReductionFrac = other.PeakReductionFrac
	}
	return best
}

// measure runs one probe, keeping the fastest repetition's wall time and
// that repetition's allocation counts.
func measure(pb probe) perfRecord {
	rec := perfRecord{ID: pb.id, Reps: pb.reps, GoMaxProcs: runtime.GOMAXPROCS(0), Shards: pb.shards}
	for r := 0; r < pb.reps; r++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		events := pb.run()
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		ms := float64(wall.Microseconds()) / 1e3
		if r == 0 || ms < rec.WallMS {
			rec.WallMS = ms
			rec.Events = events
			rec.Mallocs = after.Mallocs - before.Mallocs
			rec.AllocMB = float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
			if events > 0 && wall > 0 {
				rec.EventsPerSec = float64(events) / wall.Seconds()
			}
		}
	}
	if pb.extra != nil {
		pb.extra(&rec)
	}
	return rec
}

func main() {
	outDir := flag.String("out", "bench", "directory for BENCH_<id>.json records")
	checkDir := flag.String("check", "", "baseline directory to compare against (enables check mode)")
	threshold := flag.Float64("threshold", 0.20, "max tolerated wall-time regression vs baseline (fraction)")
	retries := flag.Int("retries", 2, "check mode: re-measure a failing probe up to this many times before declaring regression")
	only := flag.String("only", "", "run only probes whose id starts with this prefix")
	httpAddr := flag.String("http", "", "serve live introspection (/healthz /progress, pprof) on this address, e.g. :8080")
	flag.Parse()

	var status atomic.Value
	status.Store("starting")
	if *httpAddr != "" {
		srv, err := introspect.Serve(*httpAddr, introspect.Source{
			Tool:   "nvmcp-perf",
			Status: func() string { return status.Load().(string) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-perf: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "nvmcp-perf: %v\n", err)
			}
		}()
		fmt.Printf("introspection listening on http://%s\n", srv.Addr())
	}

	regressed := false
	for _, pb := range probes {
		if *only != "" && !strings.HasPrefix(pb.id, *only) {
			continue
		}
		status.Store(pb.id)
		rec := measure(pb)
		switch {
		case rec.SpeedupX > 0:
			fmt.Printf("%-16s %10.1f ms  %12.0f events/s  %9d mallocs  %5.2fx\n",
				rec.ID, rec.WallMS, rec.EventsPerSec, rec.Mallocs, rec.SpeedupX)
		case rec.EventsPerSec > 0:
			fmt.Printf("%-16s %10.1f ms  %12.0f events/s  %9d mallocs\n",
				rec.ID, rec.WallMS, rec.EventsPerSec, rec.Mallocs)
		default:
			fmt.Printf("%-16s %10.1f ms  %9d mallocs\n", rec.ID, rec.WallMS, rec.Mallocs)
		}
		if *checkDir != "" {
			base, err := readRecord(filepath.Join(*checkDir, "BENCH_"+rec.ID+".json"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "nvmcp-perf: no baseline for %s: %v\n", rec.ID, err)
				regressed = true
				continue
			}
			fails := gateFailures(rec, base, *threshold)
			// One sample on a timeshared host can read tens of percent
			// slow; re-measure before believing it. The limits are
			// unchanged — a true regression fails every retry.
			for retry := 0; len(fails) > 0 && retry < *retries; retry++ {
				fmt.Printf("%-16s noisy reading (%s); re-measuring\n", rec.ID, fails[0])
				rec = bestOf(rec, measure(pb))
				fails = gateFailures(rec, base, *threshold)
			}
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "nvmcp-perf: REGRESSION %s: %s\n", rec.ID, f)
				regressed = true
			}
			continue
		}
		if err := writeRecord(filepath.Join(*outDir, "BENCH_"+rec.ID+".json"), rec); err != nil {
			fmt.Fprintf(os.Stderr, "nvmcp-perf: %v\n", err)
			os.Exit(1)
		}
	}
	if regressed {
		os.Exit(1)
	}
}

func readRecord(path string) (perfRecord, error) {
	var rec perfRecord
	b, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	return rec, json.Unmarshal(b, &rec)
}

func writeRecord(path string, rec perfRecord) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
