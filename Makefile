GO ?= go

.PHONY: all build test race vet fmt lint check ci presets faults invariants slo fleet serve clean bench bench-check bench-shards

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint is fmt + vet plus grep-enforced idioms the toolchain doesn't check:
# the module is go 1.22, where loop variables are per-iteration, so `x := x`
# shadow copies are dead weight and must not come back.
lint: fmt vet
	@out="$$(grep -rn --include='*.go' -E '^[[:space:]]*([a-zA-Z_][a-zA-Z0-9_]*) := \1$$' . || true)"; \
	if [ -n "$$out" ]; then \
		echo "redundant loop-variable copies (go 1.22 scopes per iteration):"; \
		echo "$$out"; exit 1; \
	fi

check: lint test

# presets smoke-runs every cluster-shaped preset at tiny scale under the
# race detector — the fast end-to-end gate that the scenario layer, policy
# registry and cluster composition still agree.
presets:
	$(GO) run -race ./cmd/nvmcp-sim -list-presets
	@for p in $$($(GO) run ./cmd/nvmcp-sim -list-presets | awk '$$3 == "-preset" {print $$1}'); do \
		echo "== preset $$p (tiny) =="; \
		$(GO) run -race ./cmd/nvmcp-sim -preset $$p -scale tiny || exit 1; \
	done

# faults runs the fault-heavy configurations under the race detector: the
# cascade preset, the checked-in scenario (which must recover through the
# remote AND bottom tiers), and the per-tier MTTR comparison.
faults:
	$(GO) run -race ./cmd/nvmcp-sim -preset faults -scale tiny
	$(GO) run -race ./cmd/nvmcp-sim -scenario docs/scenarios/faults-cascade.json
	$(GO) run -race ./cmd/nvmcp-bench availability

# invariants runs the online lineage checker end to end: the invariant test
# suite (every preset must trace clean, corrupted streams must be flagged)
# and the introspection handlers under the race detector, then an explicit
# strict run of the fault cascade — a violation fails the command. The shard
# determinism suite rides along: byte-identical artifacts at any GOMAXPROCS
# is an invariant of the partitioned engine.
invariants:
	$(GO) test -race ./internal/lineage/ ./internal/introspect/
	$(GO) test -race -run 'TestShardDeterminism' ./internal/cluster/
	$(GO) run ./cmd/nvmcp-sim -preset faults -scale tiny -invariants
	$(GO) run ./cmd/nvmcp-sim -scenario docs/scenarios/zone-outage.json -invariants

# fleet is the fleet-scale chaos gate: the topology / placement /
# survivability test suites under the race detector, the fleet end-to-end
# tests in the cluster package (-short skips the 1k-node determinism audit,
# which `make race` already runs), and the checked-in must-survive artifact:
# a whole-zone loss under spread placement must recover every chunk with the
# lineage invariant checker on, emitting the stress-report pair as it goes.
fleet:
	$(GO) test -race ./internal/topo/ ./internal/policy/ ./internal/stress/ ./internal/scenario/
	$(GO) test -race -short -run 'TestFleet|TestZoneOutage' ./internal/cluster/
	$(GO) run -race ./cmd/nvmcp-sim -scenario docs/scenarios/zone-outage.json -invariants -stress-report-out bench/fleet-check.html

# serve is the control-plane gate: the admission/backpressure and HTTP API
# suites under the race detector, then the end-to-end serve tests, which
# build the real nvmcp-sim binary, boot `-serve` on an ephemeral port, drive
# it over HTTP, and hold the served checksum to the batch run plus the live
# zone-outage injection to a lossless replanned recovery.
serve:
	$(GO) test -race ./internal/controlplane/
	$(GO) test -count=1 -run 'TestServe' ./cmd/nvmcp-sim/

# slo runs the SLO engine gate: the evaluator/report/diff test suite, both
# SLO presets in strict mode (any objective breach fails the command), a
# regression diff of a fresh slo-paper report against the checked-in
# baseline (the simulation is deterministic, so the reports must agree),
# and a must-fail check that a breaching scenario exits non-zero.
slo:
	$(GO) test -race ./internal/slo/
	$(GO) run ./cmd/nvmcp-sim -preset slo-paper -scale tiny -slo-strict -slo-report-out bench/slo-check.html
	$(GO) run ./cmd/nvmcp-sim -preset slo-faults -scale tiny -slo-strict
	$(GO) run ./cmd/nvmcp-analyze -diff bench/baseline/slo-paper.json bench/slo-check.json
	@if $(GO) run ./cmd/nvmcp-sim -scenario docs/scenarios/slo-breach.json -slo-strict >/dev/null 2>&1; then \
		echo "slo-breach scenario passed strict mode — the gate is not gating"; exit 1; \
	else echo "slo-breach correctly fails strict mode"; fi

# drift runs the model-drift observatory gate: the estimator/report test
# suite under the race detector, the slo-paper preset with its drift limits
# in strict mode at paper scale (the measured estimators must stay within
# the preset's tolerance of the offline §III model), and a must-fire check:
# a phase-shifting workload whose re-dirty regime breaks the model's
# assumptions must trip the drift gate with a non-zero exit.
drift:
	$(GO) test -race ./internal/drift/
	$(GO) run ./cmd/nvmcp-sim -preset slo-paper -scale paper -drift-strict -drift-report-out bench/drift-check.html
	@if $(GO) run ./cmd/nvmcp-sim -scenario docs/scenarios/drift-breach.json -drift-strict >/dev/null 2>&1; then \
		echo "drift-breach scenario passed strict mode — the gate is not gating"; exit 1; \
	else echo "drift-breach correctly fails strict mode"; fi

# ci is the gate the workflow runs: lint (fmt + vet + grep idioms), the full
# test suite under the race detector (obs publication crosses host
# goroutines), the preset and fault-cascade smoke sweeps, the lineage
# invariant gate, the SLO gate, the model-drift gate, the fleet-scale chaos
# gate, the control-plane serve gate, and the perf regression check against
# the checked-in baseline.
ci: lint race presets faults invariants slo drift fleet serve bench-check

# bench refreshes the perf records: the testing.B suites (sim kernel,
# resource layer, paper end-to-end) plus the nvmcp-perf probes, which write
# BENCH_<id>.json into bench/. Promote a run to the regression baseline with
#   cp bench/BENCH_*.json bench/baseline/
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sim/ ./internal/resource/
	$(GO) run ./cmd/nvmcp-perf -out bench

# bench-check re-runs the probes and fails on a >20% wall-time regression
# against the checked-in baseline. The fleet-shards records are gated per
# shard count, so losing parallel speedup trips the check even when the
# serial engine is unchanged.
bench-check:
	$(GO) run ./cmd/nvmcp-perf -check bench/baseline

# bench-shards sweeps the 16-node fleet configuration over 1/2/4/8 event-
# engine shards and refreshes the BENCH_fleet-shards-<n>.json records.
bench-shards:
	$(GO) run ./cmd/nvmcp-perf -out bench -only fleet-shards

clean:
	$(GO) clean ./...
