GO ?= go

.PHONY: all build test race vet fmt check ci presets faults clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet test

# presets smoke-runs every cluster-shaped preset at tiny scale under the
# race detector — the fast end-to-end gate that the scenario layer, policy
# registry and cluster composition still agree.
presets:
	$(GO) run -race ./cmd/nvmcp-sim -list-presets
	@for p in $$($(GO) run ./cmd/nvmcp-sim -list-presets | awk '$$3 == "-preset" {print $$1}'); do \
		echo "== preset $$p (tiny) =="; \
		$(GO) run -race ./cmd/nvmcp-sim -preset $$p -scale tiny || exit 1; \
	done

# faults runs the fault-heavy configurations under the race detector: the
# cascade preset, the checked-in scenario (which must recover through the
# remote AND bottom tiers), and the per-tier MTTR comparison.
faults:
	$(GO) run -race ./cmd/nvmcp-sim -preset faults -scale tiny
	$(GO) run -race ./cmd/nvmcp-sim -scenario docs/scenarios/faults-cascade.json
	$(GO) run -race ./cmd/nvmcp-bench availability

# ci is the gate the workflow runs: formatting, vet, the full test suite
# under the race detector (obs publication crosses host goroutines), and the
# preset and fault-cascade smoke sweeps.
ci: fmt vet race presets faults

clean:
	$(GO) clean ./...
