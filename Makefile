GO ?= go

.PHONY: all build test race vet fmt check ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet test

# ci is the gate the workflow runs: formatting, vet, and the full test
# suite under the race detector (obs publication crosses host goroutines).
ci: fmt vet race

clean:
	$(GO) clean ./...
