// Package remote implements the paper's remote-checkpoint machinery: an
// ARMCI-like remote memory interface over the RDMA fabric, plus the per-node
// asynchronous helper process (Section V) that owns remote checkpoints. Each
// node has a buddy node holding a two-version remote copy of its checkpoint
// chunks in the buddy's NVM.
//
// Two policies are provided. AsyncBurst is the paper's baseline: the helper
// sits idle until the remote checkpoint point, then ships every chunk at full
// rate, overlapped with the application's next compute phase — producing the
// interconnect bursts of Figure 10. PreCopy ships chunks incrementally as
// soon as the local checkpoint path stages them (optionally after a
// DCPC-style delay into the remote interval and rate-capped), so the remote
// checkpoint point finds most data already resident and the peak interconnect
// usage drops by roughly half.
package remote

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Scheme selects the helper policy.
type Scheme int

const (
	// AsyncBurst ships everything at the remote checkpoint point.
	AsyncBurst Scheme = iota
	// PreCopy ships staged chunks incrementally ahead of the checkpoint.
	PreCopy
)

func (s Scheme) String() string {
	if s == PreCopy {
		return "precopy"
	}
	return "burst"
}

// Config tunes a node's helper agent.
type Config struct {
	Scheme Scheme
	// RateCap throttles pre-copy shipping in bytes/sec (0 = uncapped).
	// Burst catch-up traffic at the checkpoint point is never capped.
	RateCap float64
	// Delay holds pre-copy shipping until this long after the start of
	// each remote interval (the paper's remote DCPCP delay; 0 ships as
	// soon as data is staged).
	Delay time.Duration
	// ScanTick is the helper's idle poll period (default 200ms).
	ScanTick time.Duration
	// ShipTimeout bounds one ship attempt's estimated wire time under the
	// current link state; an attempt whose estimate exceeds it (a degraded
	// link) or whose buddy is down counts as failed and is retried with
	// exponential backoff (default DefaultShipTimeout).
	ShipTimeout time.Duration
	// MaxShipRetries bounds the backoff retries per chunk pass before the
	// helper fails over to a live buddy — or gives the pass up, degrading
	// to whatever the bottom tier holds (default DefaultMaxShipRetries).
	MaxShipRetries int
	// RetryBackoff seeds the exponential backoff between retries, doubling
	// each attempt up to a 5s cap (default DefaultRetryBackoff).
	RetryBackoff time.Duration
	// Rec publishes helper activity — ship events, wake/sleep edges and
	// spans on the helper lane — onto the run's observability bus (nil-safe).
	Rec *obs.Recorder
}

// Degraded-mode retry defaults. The timeout is generous — rate-capped
// pre-copy legitimately ships large chunks over seconds — and trips only
// when fault injection degrades a link by an order of magnitude.
const (
	DefaultShipTimeout    = 60 * time.Second
	DefaultMaxShipRetries = 6
	DefaultRetryBackoff   = 100 * time.Millisecond
	maxRetryBackoff       = 5 * time.Second
)

// helperLane is the tid used for helper spans in trace timelines.
const helperLane = 999

// chunkKey identifies a chunk across the mesh.
type chunkKey struct {
	proc string
	id   uint64
}

// remoteChunk is the buddy-side two-version container.
type remoteChunk struct {
	name      string // chunk variable name, set at first ship
	size      int64
	versions  [2][]byte
	seqs      [2]uint64
	sums      [2]uint64
	committed int // -1 before first remote commit
	inflight  bool
}

// objName renders the cluster-wide object name, "<proc>/<chunk>", preferring
// the variable name and falling back to the numeric id for copies that
// predate naming.
func objName(key chunkKey, rc *remoteChunk) string {
	if rc.name != "" {
		return key.proc + "/" + rc.name
	}
	return fmt.Sprintf("%s/%d", key.proc, key.id)
}

// Mesh owns the buddy-side remote stores and the agents.
type Mesh struct {
	env    *sim.Env
	fabric *interconnect.Fabric
	nvm    []*mem.Device // per-node NVM (destination write charges + capacity)
	agents []*Agent
	data   []map[chunkKey]*remoteChunk // indexed by holding (buddy) node
	down   []bool                      // per-node liveness, set by fault injection

	// Counters: "ships", "ship_bytes", "remote_commits", "fetches".
	Counters trace.Counters

	rec *obs.Recorder
}

// SetRecorder attaches the mesh to the run's observability bus; mesh-level
// counters are mirrored as "remote_fetches" / "remote_commits".
func (m *Mesh) SetRecorder(r *obs.Recorder) { m.rec = r }

// NewMesh builds a remote-checkpoint mesh over a fabric; nvm[i] is node i's
// NVM device.
func NewMesh(env *sim.Env, fabric *interconnect.Fabric, nvm []*mem.Device) *Mesh {
	if len(nvm) != fabric.Nodes() {
		panic("remote: nvm device count must match fabric nodes")
	}
	m := &Mesh{
		env:    env,
		fabric: fabric,
		nvm:    nvm,
		agents: make([]*Agent, fabric.Nodes()),
		data:   make([]map[chunkKey]*remoteChunk, fabric.Nodes()),
		down:   make([]bool, fabric.Nodes()),
	}
	for i := range m.data {
		m.data[i] = make(map[chunkKey]*remoteChunk)
	}
	return m
}

// Agent returns node i's helper agent (nil until AddAgent).
func (m *Mesh) Agent(node int) *Agent { return m.agents[node] }

// AddAgent starts the helper process for a node, shipping to buddy.
func (m *Mesh) AddAgent(node, buddy int, cfg Config) *Agent {
	if m.agents[node] != nil {
		panic(fmt.Sprintf("remote: node %d already has an agent", node))
	}
	if cfg.ScanTick == 0 {
		cfg.ScanTick = 200 * time.Millisecond
	}
	if cfg.ShipTimeout == 0 {
		cfg.ShipTimeout = DefaultShipTimeout
	}
	if cfg.MaxShipRetries == 0 {
		cfg.MaxShipRetries = DefaultMaxShipRetries
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	a := &Agent{
		mesh:    m,
		node:    node,
		buddy:   buddy,
		cfg:     cfg,
		wake:    sim.NewSignal(m.env),
		shipped: make(map[chunkKey]uint64),
		idle:    sim.NewCompletion(m.env),
	}
	a.idle.Complete()
	a.intervalStart = m.env.Now()
	a.proc = m.env.Go(fmt.Sprintf("helper/node%d", node), a.run)
	m.agents[node] = a
	return a
}

// RemoveAgent stops and detaches a node's agent (no-op if absent). Remote
// data already shipped to buddies stays available for Fetch once a new agent
// is attached.
func (m *Mesh) RemoveAgent(node int) {
	if a := m.agents[node]; a != nil {
		a.Stop()
		m.agents[node] = nil
	}
}

// SetNodeDown flips a node's liveness. Helpers refuse to ship toward a down
// buddy (they back off, then fail over); Fetch treats data held at a down
// node as unreachable.
func (m *Mesh) SetNodeDown(node int, down bool) { m.down[node] = down }

// NodeDown reports a node's liveness flag.
func (m *Mesh) NodeDown(node int) bool { return m.down[node] }

// DropNode discards every remote copy held at a node — a hard failure took
// its NVM. Copies OF the node's own data, held at its buddy, survive.
func (m *Mesh) DropNode(node int) {
	m.data[node] = make(map[chunkKey]*remoteChunk)
}

// Fetch retrieves the committed remote copy of a chunk belonging to procName
// on srcNode, pulling it from the buddy across the fabric into srcNode's
// NVM — the hard-failure recovery path. seq is the committed copy's staged
// generation (for lineage); ok is false when the buddy holds no committed
// version or is itself down.
func (m *Mesh) Fetch(p *sim.Proc, srcNode int, procName string, id uint64) ([]byte, int64, uint64, bool) {
	a := m.agents[srcNode]
	if a == nil || m.down[a.buddy] {
		return nil, 0, 0, false
	}
	rc, ok := m.data[a.buddy][chunkKey{procName, id}]
	if !ok || rc.committed < 0 {
		return nil, 0, 0, false
	}
	m.Counters.Add("fetches", 1)
	m.rec.Add("remote_fetches", 1)
	m.fabric.RDMARead(p, a.buddy, srcNode, rc.size)
	m.nvm[srcNode].WriteBytes(p, rc.size)
	return rc.versions[rc.committed], rc.size, rc.seqs[rc.committed], true
}

// HolderOf returns which node holds srcNode's remote checkpoints, or -1
// when srcNode has no agent (e.g. it was removed by fault injection).
func (m *Mesh) HolderOf(srcNode int) int {
	if a := m.agents[srcNode]; a != nil {
		return a.buddy
	}
	return -1
}

// CommittedObject identifies one committed remote chunk copy for drains to
// lower storage levels (the PFS).
type CommittedObject struct {
	Name    string // "<proc>/<chunkName>" — the cluster-wide lineage key
	Size    int64
	Version uint64 // the committed slot's staged sequence
}

// CommittedList enumerates the committed remote copies held at a node, in
// deterministic (name) order.
func (m *Mesh) CommittedList(holder int) []CommittedObject {
	var out []CommittedObject
	for key, rc := range m.data[holder] {
		if rc.committed < 0 {
			continue
		}
		out = append(out, CommittedObject{
			Name:    objName(key, rc),
			Size:    rc.size,
			Version: rc.seqs[rc.committed],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CommittedData returns the committed payload of a named remote copy,
// charging the holder's NVM read path.
func (m *Mesh) CommittedData(p *sim.Proc, holder int, name string) ([]byte, bool) {
	for key, rc := range m.data[holder] {
		if rc.committed < 0 || objName(key, rc) != name {
			continue
		}
		m.nvm[holder].ReadBytes(p, rc.size)
		return rc.versions[rc.committed], true
	}
	return nil, false
}

// Agent is one node's asynchronous checkpoint helper.
type Agent struct {
	mesh  *Mesh
	node  int
	buddy int
	cfg   Config
	proc  *sim.Proc
	wake  *sim.Signal

	stores        []*core.Store
	shipped       map[chunkKey]uint64 // last shipped CleanSeq
	intervalStart time.Duration
	bursting      bool
	burstTarget   map[chunkKey]uint64 // staged seqs captured at trigger
	burstDone     *sim.Completion
	idle          *sim.Completion
	stopped       bool

	// Meter tracks helper busy time — Table V's helper-core utilization.
	Meter trace.Meter
	// Counters: "ships", "ship_bytes", "commits", "scan_rounds".
	Counters trace.Counters
}

// Register adds a local rank's store to the helper's scan set.
func (a *Agent) Register(s *core.Store) { a.stores = append(a.stores, s) }

// Buddy returns the destination node.
func (a *Agent) Buddy() int { return a.buddy }

// BeginRemoteInterval marks the start of a remote checkpoint interval,
// re-arming the pre-copy delay.
func (a *Agent) BeginRemoteInterval() {
	a.intervalStart = a.mesh.env.Now()
	if a.cfg.Scheme == PreCopy && a.cfg.Delay > 0 {
		a.mesh.env.Schedule(a.cfg.Delay, a.wake.Broadcast)
	}
	a.wake.Broadcast()
}

// TriggerRemote starts a remote checkpoint: the helper catches up everything
// staged as of this instant that is not yet resident at the buddy, then
// commits the remote versions. The catch-up overlaps the application's next
// compute phase (Figure 5's non-blocking remote checkpoint) and, in pre-copy
// mode, stays rate-capped so the interconnect peak is bounded. The returned
// completion fires when the remote versions commit; the application itself
// does not block on it.
func (a *Agent) TriggerRemote(p *sim.Proc) *sim.Completion {
	if a.bursting {
		return a.burstDone
	}
	a.bursting = true
	a.burstDone = sim.NewCompletion(a.mesh.env)
	a.burstTarget = make(map[chunkKey]uint64)
	for _, s := range a.stores {
		for _, st := range s.Snapshot(p) {
			if st.CleanSeq > 0 {
				a.burstTarget[chunkKey{s.Proc().Name(), st.ID}] = st.CleanSeq
			}
		}
	}
	a.wake.Broadcast()
	return a.burstDone
}

// Stop terminates the helper. An in-flight burst is abandoned and its
// completion released so no waiter hangs on a dead agent.
func (a *Agent) Stop() {
	a.stopped = true
	if a.proc != nil && !a.proc.Done() {
		a.proc.Kill()
	}
	if a.bursting {
		a.bursting = false
		a.burstDone.Complete()
	}
}

// run is the helper main loop. Wake/sleep edges (not every scan tick) are
// published as events, so the bus shows the helper's duty cycle without
// drowning in polls.
func (a *Agent) run(p *sim.Proc) {
	busy := false
	for !a.stopped {
		st, store := a.nextToShip(p)
		if store == nil {
			if a.bursting {
				// Burst drained: commit the remote checkpoint.
				a.commitRemote(p)
				a.bursting = false
				a.burstDone.Complete()
			}
			if busy {
				busy = false
				a.cfg.Rec.Emit(obs.EvHelperSleep, "", 0, nil)
			}
			a.wake.WaitTimeout(p, a.cfg.ScanTick)
			continue
		}
		if !busy {
			busy = true
			a.cfg.Rec.Emit(obs.EvHelperWake, "", 0, nil)
		}
		a.idle = sim.NewCompletion(a.mesh.env)
		a.shipWithRetry(p, st, store)
		a.idle.Complete()
	}
}

// shipBlocked is the pre-flight check for one ship attempt: a non-empty
// reason means the attempt would fail (buddy dead, link down, or the link
// so degraded the estimated wire time blows the per-ship timeout).
func (a *Agent) shipBlocked(size int64) string {
	m := a.mesh
	if m.down[a.buddy] {
		return "buddy-down"
	}
	eta, ok := m.fabric.EstimateTransfer(a.node, a.buddy, size, a.cfg.RateCap)
	if !ok {
		return "link-down"
	}
	if eta > a.cfg.ShipTimeout {
		return "ship-timeout"
	}
	return ""
}

// shipWithRetry wraps ship with the degraded-mode protocol: blocked attempts
// back off exponentially (bounded), then the helper fails over to a live
// buddy if its own is dead, or gives this pass up — the chunk stays
// unshipped and the next scan retries, so a transient outage self-heals
// while a permanent one degrades to the bottom tier.
func (a *Agent) shipWithRetry(p *sim.Proc, st core.ChunkState, store *core.Store) {
	attempt := 0
	for {
		reason := a.shipBlocked(st.Size)
		if reason == "" {
			a.ship(p, st, store)
			return
		}
		if attempt < a.cfg.MaxShipRetries {
			a.count("ship_retries", 1)
			a.cfg.Rec.Emit(obs.EvShipRetry, store.Proc().Name()+"/"+st.Name,
				st.Size, map[string]string{"reason": reason, "attempt": fmt.Sprintf("%d", attempt)})
			backoff := a.cfg.RetryBackoff << uint(attempt)
			if backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
			p.Sleep(backoff)
			attempt++
			continue
		}
		if a.mesh.down[a.buddy] && a.failover() {
			attempt = 0
			continue
		}
		a.count("ships_dropped", 1)
		return
	}
}

// failover re-buddies the helper to the nearest live node, invalidating its
// shipped ledger so every chunk re-ships to the new holder. Returns false
// when no live candidate exists.
func (a *Agent) failover() bool {
	m := a.mesh
	n := len(m.data)
	for k := 1; k < n; k++ {
		cand := (a.buddy + k) % n
		if cand == a.node || m.down[cand] {
			continue
		}
		old := a.buddy
		a.buddy = cand
		a.shipped = make(map[chunkKey]uint64)
		a.count("buddy_failovers", 1)
		a.cfg.Rec.Emit(obs.EvBuddyFailover, "", 0, map[string]string{
			"from": fmt.Sprintf("%d", old), "to": fmt.Sprintf("%d", cand),
		})
		return true
	}
	return false
}

// nextToShip scans registered stores for a chunk whose staged data is newer
// than what the buddy holds. While a remote checkpoint is draining, only the
// chunks belonging to its trigger-time cut are shipped; between checkpoints,
// pre-copy mode ships anything freshly staged once the interval delay has
// passed.
func (a *Agent) nextToShip(p *sim.Proc) (core.ChunkState, *core.Store) {
	if !a.bursting {
		if a.cfg.Scheme != PreCopy || a.mesh.env.Now() < a.intervalStart+a.cfg.Delay {
			return core.ChunkState{}, nil
		}
	}
	a.count("scan_rounds", 1)
	for _, s := range a.stores {
		for _, st := range s.Snapshot(p) {
			key := chunkKey{s.Proc().Name(), st.ID}
			if st.CleanSeq == 0 {
				continue // never staged locally; nothing durable to ship
			}
			if a.bursting {
				target := a.burstTarget[key]
				if target == 0 || a.shipped[key] >= target {
					continue
				}
			} else if a.shipped[key] >= st.CleanSeq {
				continue
			}
			return st, s
		}
	}
	return core.ChunkState{}, nil
}

// count mirrors a helper counter onto the obs registry under a helper_
// prefix, keeping it distinct from the per-store checkpoint counters.
func (a *Agent) count(name string, delta int64) {
	a.Counters.Add(name, delta)
	a.cfg.Rec.Add("helper_"+name, delta)
}

// HelperCPURate is the helper core's effective processing rate for
// checkpoint data (metadata walk, chunk read, work-request posting, buffer
// management): the CPU side of shipping a chunk, as distinct from the wire
// time, which is NIC DMA. It determines the Table V utilization numbers.
const HelperCPURate = 400e6 // bytes/sec

// ship moves one chunk's staged payload to the buddy: local NVM read, RDMA
// write across the fabric, buddy NVM write, and an in-progress version
// update on the buddy. Only the helper's CPU work is metered — the RDMA
// transfer itself is NIC DMA and costs wall time, not helper CPU.
func (a *Agent) ship(p *sim.Proc, st core.ChunkState, store *core.Store) {
	key := chunkKey{store.Proc().Name(), st.ID}
	data, ok := store.StagedData(p, st.ID)
	if !ok {
		return
	}
	shipStart := p.Now()
	defer func() {
		if a.cfg.Rec.SpansActive() {
			a.cfg.Rec.Span("ship "+key.proc+"/"+st.Name, "remote",
				helperLane, shipStart, p.Now()-shipStart,
				map[string]string{"bytes": fmt.Sprintf("%d", st.Size)})
		}
		a.cfg.Rec.Emit(obs.EvChunkShipped, key.proc+"/"+st.Name,
			st.Size, map[string]string{
				"buddy": strconv.Itoa(a.buddy),
				"seq":   strconv.FormatUint(st.CleanSeq, 10),
			})
	}()
	a.Meter.Start(p.Now())
	cpuStart := p.Now()

	m := a.mesh
	rc, exists := m.data[a.buddy][key]
	if !exists {
		if err := m.nvm[a.buddy].Reserve(2 * st.Size); err != nil {
			// Buddy NVM full: surface loudly — experiments must size NVM.
			panic(fmt.Sprintf("remote: buddy node %d NVM exhausted shipping %s/%d: %v",
				a.buddy, key.proc, key.id, err))
		}
		rc = &remoteChunk{name: st.Name, size: st.Size, committed: -1}
		m.data[a.buddy][key] = rc
	}

	// Local NVM read of the staged chunk plus the helper's per-byte CPU
	// work, padded up to the HelperCPURate budget.
	store.Kernel().NVM.ReadBytes(p, st.Size)
	cpuBudget := time.Duration(float64(st.Size) / HelperCPURate * float64(time.Second))
	if spent := p.Now() - cpuStart; spent < cpuBudget {
		p.Sleep(cpuBudget - spent)
	}
	a.Meter.Stop(p.Now())
	// Across the wire: NIC DMA, unmetered. The configured rate cap applies
	// to pre-copy shipping and to its checkpoint-time catch-up alike —
	// bounding the peak is the point; the AsyncBurst baseline sets no cap.
	m.fabric.RDMAWrite(p, a.node, a.buddy, st.Size, a.cfg.RateCap)
	// Into the buddy's NVM.
	m.nvm[a.buddy].WriteBytes(p, st.Size)

	slot := 0
	if rc.committed == 0 {
		slot = 1
	}
	rc.versions[slot] = append([]byte(nil), data...)
	rc.seqs[slot] = st.CleanSeq
	rc.sums[slot] = st.Checksum
	rc.inflight = true
	a.shipped[key] = st.CleanSeq

	a.count("ships", 1)
	a.count("ship_bytes", st.Size)
	// Mesh totals stay on the legacy counters only: the agent mirror above
	// already feeds the cluster rollup once.
	m.Counters.Add("ships", 1)
	m.Counters.Add("ship_bytes", st.Size)
}

// commitRemote flips the committed version of every chunk this agent shipped
// since the last remote commit. Chunks from other source nodes that happen
// to share the same buddy are left alone.
func (a *Agent) commitRemote(p *sim.Proc) {
	mine := make(map[string]bool, len(a.stores))
	for _, s := range a.stores {
		mine[s.Proc().Name()] = true
	}
	type flipped struct {
		name string
		size int64
		seq  uint64
	}
	var flips []flipped
	for key, rc := range a.mesh.data[a.buddy] {
		if !rc.inflight || !mine[key.proc] {
			continue
		}
		if rc.committed == 0 {
			rc.committed = 1
		} else {
			rc.committed = 0
		}
		rc.inflight = false
		flips = append(flips, flipped{objName(key, rc), rc.size, rc.seqs[rc.committed]})
	}
	// Per-chunk commit events go out in name order: map iteration order must
	// not leak into the (otherwise deterministic) event stream.
	sort.Slice(flips, func(i, j int) bool { return flips[i].name < flips[j].name })
	for _, f := range flips {
		a.cfg.Rec.Emit(obs.EvRemoteChunkCommit, f.name, f.size, map[string]string{
			"seq":   strconv.FormatUint(f.seq, 10),
			"buddy": strconv.Itoa(a.buddy),
		})
	}
	a.count("commits", 1)
	a.mesh.Counters.Add("remote_commits", 1)
	a.mesh.rec.Add("remote_commits", 1)
	a.cfg.Rec.Emit(obs.EvRemoteCommit, "", 0, map[string]string{
		"buddy": fmt.Sprintf("%d", a.buddy),
	})
}

// Shipped reports the last shipped sequence for a chunk (testing aid).
func (a *Agent) Shipped(procName string, id uint64) uint64 {
	return a.shipped[chunkKey{procName, id}]
}
