package remote

import (
	"testing"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// A hard loss mid-ship must never leave a half-shipped chunk looking
// remotely committed: the buddy-side state flips only after the full RDMA
// write lands and the burst commit runs.
func TestHardLossMidShipLeavesNothingRemotelyCommitted(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 200*mem.MB, true)
		c.WriteAll(p)
		r.store.ChkptAll(p)
		agent.TriggerRemote(p) // no Await: the failure interrupts the burst
		p.Sleep(10 * time.Millisecond)
		// The RDMA write for the 200MB chunk is in flight; the source node
		// hard-fails now.
		r.mesh.RemoveAgent(0)
		if got := r.mesh.CommittedList(1); len(got) != 0 {
			t.Fatalf("buddy lists %d committed copies after a mid-ship loss, want 0", len(got))
		}
		// Even with the node back, the half shipment must not be fetchable.
		agent2 := r.mesh.AddAgent(0, 1, Config{Scheme: AsyncBurst})
		agent2.Register(r.store)
		if _, _, _, ok := r.mesh.Fetch(p, 0, "rank0", c.ID); ok {
			t.Error("half-shipped chunk fetchable as a committed remote copy")
		}
		agent2.Stop()
	})
	e.Run()
}

// A loss mid-ship of version 2 must leave the committed version 1 intact
// and fetchable — the two-version remote layout is exactly for this.
func TestHardLossMidShipPreservesPriorCommittedVersion(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 200*mem.MB, true)
		c.WriteAll(p)
		r.store.ChkptAll(p)
		agent.TriggerRemote(p).Await(p) // v1 remotely committed
		v1, _, _, ok := r.mesh.Fetch(p, 0, "rank0", c.ID)
		if !ok {
			t.Fatal("v1 fetch failed")
		}
		v1 = append([]byte(nil), v1...)

		c.WriteAll(p)
		r.store.ChkptAll(p)
		agent.TriggerRemote(p) // v2 ship starts...
		p.Sleep(10 * time.Millisecond)
		r.mesh.RemoveAgent(0) // ...and dies mid-wire

		agent2 := r.mesh.AddAgent(0, 1, Config{Scheme: AsyncBurst})
		agent2.Register(r.store)
		got, _, _, ok := r.mesh.Fetch(p, 0, "rank0", c.ID)
		if !ok {
			t.Fatal("committed v1 unfetchable after mid-ship loss of v2")
		}
		for i := range v1 {
			if got[i] != v1[i] {
				t.Fatal("half-shipped v2 corrupted the committed v1 copy")
			}
		}
		agent2.Stop()
	})
	e.Run()
}

// With the buddy down, the helper backs off MaxShipRetries times and then
// fails over to the nearest live node; the burst completes against the new
// buddy and the data is fetchable from it.
func TestBuddyFailoverAfterRetriesExhausted(t *testing.T) {
	e := sim.NewEnv()
	fabric := interconnect.New(e, 3, 0)
	nvms := []*mem.Device{
		mem.NewPCM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB),
	}
	k0 := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[0])
	mesh := NewMesh(e, fabric, nvms)
	agent := mesh.AddAgent(0, 1, Config{
		Scheme:         AsyncBurst,
		MaxShipRetries: 2,
		RetryBackoff:   10 * time.Millisecond,
	})
	store := core.NewStore(k0.Attach("rank0"), core.Options{})
	agent.Register(store)
	e.Go("app", func(p *sim.Proc) {
		c, _ := store.NVAlloc(p, "field", 20*mem.MB, true)
		c.WriteAll(p)
		store.ChkptAll(p)
		mesh.SetNodeDown(1, true)
		agent.TriggerRemote(p).Await(p)
		if got := agent.Buddy(); got != 2 {
			t.Errorf("buddy after failover = %d, want 2", got)
		}
		if got := agent.Counters.Get("ship_retries"); got < 2 {
			t.Errorf("ship_retries = %d, want >= 2 before failover", got)
		}
		if got := agent.Counters.Get("buddy_failovers"); got != 1 {
			t.Errorf("buddy_failovers = %d, want 1", got)
		}
		if _, _, _, ok := mesh.Fetch(p, 0, "rank0", c.ID); !ok {
			t.Error("chunk not fetchable from the failover buddy")
		}
		agent.Stop()
	})
	e.Run()
}

// A transient outage shorter than the backoff budget self-heals with no
// failover: the retries ride it out and the original buddy keeps the data.
func TestTransientBuddyOutageSelfHealsWithoutFailover(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{
		Scheme:         AsyncBurst,
		MaxShipRetries: 6,
		RetryBackoff:   50 * time.Millisecond,
	})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 20*mem.MB, true)
		c.WriteAll(p)
		r.store.ChkptAll(p)
		r.mesh.SetNodeDown(1, true)
		done := agent.TriggerRemote(p)
		p.Sleep(120 * time.Millisecond) // within the backoff budget
		r.mesh.SetNodeDown(1, false)
		done.Await(p)
		if got := agent.Buddy(); got != 1 {
			t.Errorf("buddy = %d after transient outage, want 1 (no failover)", got)
		}
		if agent.Counters.Get("ship_retries") == 0 {
			t.Error("no retries recorded during the outage")
		}
		if agent.Counters.Get("buddy_failovers") != 0 {
			t.Error("failover triggered by a transient outage")
		}
		if _, _, _, ok := r.mesh.Fetch(p, 0, "rank0", c.ID); !ok {
			t.Error("chunk not fetchable after the outage healed")
		}
		agent.Stop()
	})
	e.Run()
}
