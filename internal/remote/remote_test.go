package remote

import (
	"fmt"
	"testing"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// rig is a two-node cluster: rank0 on node 0 checkpoints remotely to node 1.
type rig struct {
	env    *sim.Env
	fabric *interconnect.Fabric
	mesh   *Mesh
	k0     *nvmkernel.Kernel
	store  *core.Store
}

func newRig(e *sim.Env, cfg Config) (*rig, *Agent) {
	fabric := interconnect.New(e, 2, 0)
	nvms := []*mem.Device{mem.NewPCM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB)}
	k0 := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[0])
	mesh := NewMesh(e, fabric, nvms)
	agent := mesh.AddAgent(0, 1, cfg)
	store := core.NewStore(k0.Attach("rank0"), core.Options{})
	agent.Register(store)
	return &rig{env: e, fabric: fabric, mesh: mesh, k0: k0, store: store}, agent
}

func TestBurstShipsEverythingAtTrigger(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 100*mem.MB, true)
		c.WriteAll(p)
		r.store.ChkptAll(p) // local checkpoint stages the data
		if agent.Counters.Get("ships") != 0 {
			t.Error("burst agent shipped before trigger")
		}
		done := agent.TriggerRemote(p)
		done.Await(p)
		if agent.Counters.Get("ships") != 1 {
			t.Errorf("ships = %d, want 1", agent.Counters.Get("ships"))
		}
		if agent.Counters.Get("commits") != 1 {
			t.Errorf("remote commits = %d, want 1", agent.Counters.Get("commits"))
		}
		agent.Stop()
	})
	e.Run()
	if got := r.fabric.Bytes(interconnect.ClassCkpt); got != float64(100*mem.MB) {
		t.Fatalf("fabric ckpt bytes = %v, want 100MB", got)
	}
}

func TestPreCopyShipsIncrementally(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: PreCopy, ScanTick: 50 * time.Millisecond})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 100*mem.MB, true)
		agent.BeginRemoteInterval()
		c.WriteAll(p)
		r.store.PreCopyChunk(p, c, 0) // local staging
		p.Sleep(time.Second)          // compute; helper ships in background
		if agent.Counters.Get("ships") != 1 {
			t.Errorf("pre-copy ships = %d, want 1 before trigger", agent.Counters.Get("ships"))
		}
		done := agent.TriggerRemote(p)
		done.Await(p)
		// Nothing new to ship at the trigger: data already resident.
		if agent.Counters.Get("ships") != 1 {
			t.Errorf("ships = %d after trigger, want still 1", agent.Counters.Get("ships"))
		}
		agent.Stop()
	})
	e.Run()
}

func TestPreCopyRespectsDelay(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{
		Scheme:   PreCopy,
		Delay:    2 * time.Second,
		ScanTick: 50 * time.Millisecond,
	})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 50*mem.MB, true)
		agent.BeginRemoteInterval()
		c.WriteAll(p)
		r.store.PreCopyChunk(p, c, 0)
		p.Sleep(time.Second)
		if agent.Counters.Get("ships") != 0 {
			t.Errorf("shipped before the remote delay elapsed")
		}
		p.Sleep(1500 * time.Millisecond)
		if agent.Counters.Get("ships") != 1 {
			t.Errorf("ships = %d after delay, want 1", agent.Counters.Get("ships"))
		}
		agent.Stop()
	})
	e.Run()
}

func TestUnstagedChunkIsNotShipped(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: PreCopy, ScanTick: 20 * time.Millisecond})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 50*mem.MB, true)
		agent.BeginRemoteInterval()
		c.WriteAll(p) // dirty in DRAM, never staged to NVM
		p.Sleep(time.Second)
		if agent.Counters.Get("ships") != 0 {
			t.Error("helper shipped data that was never durably staged")
		}
		agent.Stop()
	})
	e.Run()
}

func TestFetchRecoversCommittedRemoteCopy(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: AsyncBurst})
	var want []byte
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 30*mem.MB, true)
		c.WriteAll(p)
		r.store.ChkptAll(p)
		want, _ = r.store.StagedData(p, c.ID)
		want = append([]byte(nil), want...)
		agent.TriggerRemote(p).Await(p)

		// Hard failure of node 0: local NVM gone; fetch from buddy.
		r.k0.HardFail()
		data, size, _, ok := r.mesh.Fetch(p, 0, "rank0", c.ID)
		if !ok {
			t.Error("remote fetch failed")
			return
		}
		if size != 30*mem.MB {
			t.Errorf("fetched size = %d", size)
		}
		for i := range want {
			if data[i] != want[i] {
				t.Error("fetched data differs from committed checkpoint")
				return
			}
		}
		agent.Stop()
	})
	e.Run()
	if r.mesh.Counters.Get("fetches") != 1 {
		t.Fatal("fetch not counted")
	}
}

func TestFetchWithoutRemoteCommitFails(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 10*mem.MB, true)
		c.WriteAll(p)
		r.store.ChkptAll(p)
		// No TriggerRemote: buddy has nothing committed.
		if _, _, _, ok := r.mesh.Fetch(p, 0, "rank0", c.ID); ok {
			t.Error("fetch returned data that was never remotely committed")
		}
		agent.Stop()
	})
	e.Run()
}

func TestRemoteTwoVersionsSurviveNewShipment(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 10*mem.MB, true)
		c.WriteAll(p)
		r.store.ChkptAll(p)
		agent.TriggerRemote(p).Await(p)
		v1, _, _, _ := r.mesh.Fetch(p, 0, "rank0", c.ID)
		v1 = append([]byte(nil), v1...)

		// Second round: new data shipped but NOT remotely committed —
		// fetch must still return version 1.
		c.WriteAll(p)
		r.store.ChkptAll(p)
		p.Sleep(5 * time.Second) // helper idle: burst mode, no trigger
		got, _, _, ok := r.mesh.Fetch(p, 0, "rank0", c.ID)
		if !ok {
			t.Error("fetch failed")
			return
		}
		for i := range v1 {
			if got[i] != v1[i] {
				t.Error("uncommitted shipment overwrote the committed remote version")
				return
			}
		}
		agent.Stop()
	})
	e.Run()
}

func TestRepeatedTriggerShipsOnlyNewData(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		a, _ := r.store.NVAlloc(p, "a", 10*mem.MB, true)
		b, _ := r.store.NVAlloc(p, "init-only", 10*mem.MB, true)
		a.WriteAll(p)
		b.WriteAll(p)
		r.store.ChkptAll(p)
		agent.TriggerRemote(p).Await(p)
		if agent.Counters.Get("ships") != 2 {
			t.Errorf("first round ships = %d, want 2", agent.Counters.Get("ships"))
		}
		// Only a changes; b is GTC-style init-only.
		a.WriteAll(p)
		r.store.ChkptAll(p)
		agent.TriggerRemote(p).Await(p)
		if agent.Counters.Get("ships") != 3 {
			t.Errorf("total ships = %d, want 3 (b unchanged)", agent.Counters.Get("ships"))
		}
		agent.Stop()
	})
	e.Run()
}

func TestAgentShipsMultipleRanksInRegistrationOrder(t *testing.T) {
	e := sim.NewEnv()
	fabric := interconnect.New(e, 2, 0)
	nvms := []*mem.Device{mem.NewPCM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB)}
	k0 := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[0])
	mesh := NewMesh(e, fabric, nvms)
	agent := mesh.AddAgent(0, 1, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		var stores []*core.Store
		for i := 0; i < 3; i++ {
			s := core.NewStore(k0.Attach(fmt.Sprintf("rank%d", i)), core.Options{})
			agent.Register(s)
			c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
			c.WriteAll(p)
			s.ChkptAll(p)
			stores = append(stores, s)
		}
		agent.TriggerRemote(p).Await(p)
		if got := agent.Counters.Get("ships"); got != 3 {
			t.Errorf("ships = %d, want one per rank", got)
		}
		// Each rank's copy is individually fetchable.
		k0.HardFail()
		for i := range stores {
			if _, _, _, ok := mesh.Fetch(p, 0, fmt.Sprintf("rank%d", i), core.GenID("field")); !ok {
				t.Errorf("rank%d copy missing at buddy", i)
			}
		}
		agent.Stop()
	})
	e.Run()
}

func TestTwoSourcesSharingOneBuddyStayIsolated(t *testing.T) {
	// Nodes 0 and 2 both ship to node 1; a commit by one agent must not
	// flip the other's in-flight versions.
	e := sim.NewEnv()
	fabric := interconnect.New(e, 3, 0)
	nvms := []*mem.Device{mem.NewPCM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB)}
	k0 := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[0])
	k2 := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[2])
	mesh := NewMesh(e, fabric, nvms)
	a0 := mesh.AddAgent(0, 1, Config{Scheme: AsyncBurst})
	a2 := mesh.AddAgent(2, 1, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		s0 := core.NewStore(k0.Attach("n0rank"), core.Options{})
		s2 := core.NewStore(k2.Attach("n2rank"), core.Options{})
		a0.Register(s0)
		a2.Register(s2)
		for _, s := range []*core.Store{s0, s2} {
			c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
			c.WriteAll(p)
			s.ChkptAll(p)
		}
		// Only node 0 triggers; node 2's data was never shipped, let alone
		// committed.
		a0.TriggerRemote(p).Await(p)
		if _, _, _, ok := mesh.Fetch(p, 0, "n0rank", core.GenID("field")); !ok {
			t.Error("node 0's copy missing")
		}
		if _, _, _, ok := mesh.Fetch(p, 2, "n2rank", core.GenID("field")); ok {
			t.Error("node 2's data fetchable without its own remote commit")
		}
		a0.Stop()
		a2.Stop()
	})
	e.Run()
}

func TestHelperMeterTracksBusyTime(t *testing.T) {
	e := sim.NewEnv()
	r, agent := newRig(e, Config{Scheme: AsyncBurst})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "field", 400*mem.MB, true)
		c.WriteAll(p)
		r.store.ChkptAll(p)
		agent.TriggerRemote(p).Await(p)
		p.Sleep(10 * time.Second)
		agent.Stop()
	})
	e.Run()
	util := agent.Meter.Utilization(e.Now())
	if util <= 0 || util > 0.5 {
		t.Fatalf("helper utilization = %v, want small positive fraction", util)
	}
}

func TestPreCopyReducesPeakInterconnectVsBurst(t *testing.T) {
	// The Figure 10 effect in miniature: the same data volume, shipped
	// either spread out (capped pre-copy) or all at once.
	run := func(cfg Config) float64 {
		e := sim.NewEnv()
		r, agent := newRig(e, cfg)
		e.Go("app", func(p *sim.Proc) {
			c, _ := r.store.NVAlloc(p, "field", 200*mem.MB, true)
			for iter := 0; iter < 3; iter++ {
				agent.BeginRemoteInterval()
				c.WriteAll(p)
				r.store.ChkptAll(p)
				p.Sleep(10 * time.Second)
				agent.TriggerRemote(p).Await(p)
			}
			agent.Stop()
		})
		e.Run()
		peak, _ := r.fabric.PeakCkptWindow(e.Now(), 2*time.Second)
		return peak
	}
	burstPeak := run(Config{Scheme: AsyncBurst})
	precopyPeak := run(Config{
		Scheme:   PreCopy,
		RateCap:  40 * 1e6,
		ScanTick: 100 * time.Millisecond,
	})
	if precopyPeak >= burstPeak {
		t.Fatalf("pre-copy peak (%v) not below burst peak (%v)", precopyPeak, burstPeak)
	}
	if precopyPeak > 0.6*burstPeak {
		t.Fatalf("pre-copy peak %v vs burst %v: want roughly half or less", precopyPeak, burstPeak)
	}
}
