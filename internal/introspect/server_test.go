package introspect

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
)

// TestConcurrentPollersGetConsistentRates is the regression test for the
// shared lastPoll/lastEvents pair: with two scrapers interleaved, the old
// code handed the second one a ~0 events_per_sec (its baseline had just been
// advanced by the first), while the first read roughly double. The fix
// derives the rate from a shared monotonic sample history, so both pollers
// observe the same positive rate.
func TestConcurrentPollersGetConsistentRates(t *testing.T) {
	env := sim.NewEnv()
	o := obs.New(env)
	r := o.Recorder(0, "rank0")

	s := newServer()
	clock := time.Unix(1000, 0)
	s.now = func() time.Time { return clock }
	src := Source{Obs: o, Tool: "test"}

	// Poller A establishes the baseline at t=0 with zero events.
	if rate := s.progress(src).EventsPerSec; rate != 0 {
		t.Fatalf("first poll rate = %g, want 0", rate)
	}
	for i := 0; i < 100; i++ {
		r.Emit(obs.EvIteration, "", 0, nil)
	}
	// Poller A again, one second later: 100 events/s.
	clock = clock.Add(time.Second)
	if rate := s.progress(src).EventsPerSec; rate < 99 || rate > 101 {
		t.Fatalf("poller A rate = %g, want ~100", rate)
	}
	// Poller B lands 100ms behind A. Against the pre-fix shared pair its
	// baseline is A's just-written (t=1s, 100) sample, so it computed
	// (100-100)/0.1 = 0 despite 100 events flowing. Against the monotonic
	// history it measures from the t=0 sample: 100/1.1 ≈ 91.
	clock = clock.Add(100 * time.Millisecond)
	rate := s.progress(src).EventsPerSec
	if rate <= 0 {
		t.Fatalf("poller B rate = %g, want > 0 (pre-fix corruption)", rate)
	}
	if rate < 85 || rate > 101 {
		t.Fatalf("poller B rate = %g, want ~91", rate)
	}
}

// TestRateSampleHistoryStaysBounded hammers the rate path and checks the
// sample history both ages out and respects the hard cap.
func TestRateSampleHistoryStaysBounded(t *testing.T) {
	s := newServer()
	clock := time.Unix(1000, 0)
	s.now = func() time.Time { return clock }
	for i := 0; i < 10_000; i++ {
		clock = clock.Add(time.Millisecond)
		s.observeRate(i)
	}
	s.mu.Lock()
	n := len(s.samples)
	s.mu.Unlock()
	if n > maxRateSamples+1 {
		t.Fatalf("sample history = %d entries, cap %d", n, maxRateSamples)
	}
}

// TestCloseDrainsInflightRequests is the regression test for the hard-drop
// shutdown: the old Close() called http.Server.Close, which severs active
// connections, so a scraper mid-request saw an EOF. The graceful path must
// let the in-flight request finish inside the drain deadline.
func TestCloseDrainsInflightRequests(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	src := Source{Tool: "test", Status: func() string {
		once.Do(func() { close(entered) })
		<-release
		return "draining"
	}}
	srv, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	// White-box: a resident server must not be slowloris-able.
	if srv.http.ReadHeaderTimeout == 0 || srv.http.WriteTimeout == 0 {
		t.Fatalf("server timeouts unset: readHeader=%v write=%v",
			srv.http.ReadHeaderTimeout, srv.http.WriteTimeout)
	}

	type result struct {
		body string
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr().String() + "/progress")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{body: string(b), code: resp.StatusCode, err: err}
	}()

	<-entered // the request is now in flight inside the handler
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.Close() }()
	// Let Shutdown begin its drain before the handler is released; a hard
	// Close here (the pre-fix behavior) severs the connection immediately.
	time.Sleep(50 * time.Millisecond)
	close(release)

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request dropped during Close: %v", res.err)
	}
	if res.code != 200 || !strings.Contains(res.body, "draining") {
		t.Fatalf("in-flight response = %d %q", res.code, res.body)
	}
	if err := <-closeErr; err != nil {
		t.Fatalf("Close() = %v, want graceful drain", err)
	}
	// The serve loop exited cleanly: the error channel closes empty.
	select {
	case err, ok := <-srv.ServeErr():
		if ok {
			t.Fatalf("ServeErr delivered %v on clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeErr not closed after Close")
	}
}

// TestAPIHandlerMount checks that a Source.API handler is reachable under
// /api/ and absent otherwise.
func TestAPIHandlerMount(t *testing.T) {
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	mux := NewMux(Source{Tool: "test", API: api})
	if rec := get(t, mux, "/api/jobs"); rec.Code != http.StatusTeapot {
		t.Fatalf("/api/jobs = %d, want handler's %d", rec.Code, http.StatusTeapot)
	}
	bare := NewMux(Source{Tool: "test"})
	if rec := get(t, bare, "/api/jobs"); rec.Code != 404 {
		t.Fatalf("/api/jobs without API = %d, want 404", rec.Code)
	}
}
