package introspect

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nvmcp/internal/drift"
	"nvmcp/internal/lineage"
	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
	"nvmcp/internal/slo"
)

// rig builds an observer + attached tracer with a little traffic on the bus.
func rig(t *testing.T) (*obs.Observer, *lineage.Tracer) {
	t.Helper()
	env := sim.NewEnv()
	o := obs.New(env)
	tr := lineage.Attach(o, lineage.Config{Enabled: true})
	r := o.Recorder(0, "rank0")
	env.Go("emitter", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r.Emit(obs.EvChunkStaged, "field", 64, map[string]string{"seq": "1"})
		r.Emit(obs.EvChunkCommit, "field", 64, map[string]string{"seq": "1"})
	})
	env.Run()
	return o, tr
}

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestHealthzAndMetrics(t *testing.T) {
	o, tr := rig(t)
	mux := NewMux(Source{Obs: o, Lineage: tr, Tool: "test"})
	if rec := get(t, mux, "/healthz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}
	rec := get(t, mux, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "lineage_transitions_total") {
		t.Fatalf("/metrics lacks lineage transition counters:\n%.400s", rec.Body.String())
	}
}

func TestProgressReportsVirtualTimeAndRate(t *testing.T) {
	o, tr := rig(t)
	mux := NewMux(Source{Obs: o, Lineage: tr, Tool: "test", Status: func() string { return "done" }})
	var p Progress
	if rec := get(t, mux, "/progress"); json.Unmarshal(rec.Body.Bytes(), &p) != nil {
		t.Fatalf("bad /progress body: %s", rec.Body.String())
	}
	if p.Tool != "test" || p.Status != "done" {
		t.Fatalf("progress identity = %+v", p)
	}
	if p.VirtualUS != 2_000_000 || p.Events != 2 {
		t.Fatalf("progress = %+v, want virtual_us=2000000 events=2", p)
	}
	// Second poll: no new events, so the host-side rate is zero.
	if rec := get(t, mux, "/progress"); json.Unmarshal(rec.Body.Bytes(), &p) != nil {
		t.Fatalf("bad second /progress body: %s", rec.Body.String())
	}
	if p.EventsPerSec != 0 {
		t.Fatalf("idle rate = %g, want 0", p.EventsPerSec)
	}
}

func TestLineageEndpointsServeSlashKeys(t *testing.T) {
	o, tr := rig(t)
	mux := NewMux(Source{Obs: o, Lineage: tr, Tool: "test"})
	var index struct {
		Chunks []string `json:"chunks"`
	}
	if rec := get(t, mux, "/lineage"); json.Unmarshal(rec.Body.Bytes(), &index) != nil {
		t.Fatalf("bad /lineage body: %s", rec.Body.String())
	}
	if len(index.Chunks) != 1 || index.Chunks[0] != "rank0/field" {
		t.Fatalf("chunk index = %v", index.Chunks)
	}
	// The chunk key contains a slash; the wildcard route must capture it.
	rec := get(t, mux, "/lineage/rank0/field")
	if rec.Code != 200 {
		t.Fatalf("/lineage/rank0/field = %d %s", rec.Code, rec.Body.String())
	}
	var h lineage.History
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Chunk != "rank0/field" || len(h.Records) != 2 {
		t.Fatalf("history = %+v", h)
	}
	if rec := get(t, mux, "/lineage/rank9/ghost"); rec.Code != 404 {
		t.Fatalf("unknown chunk = %d, want 404", rec.Code)
	}
}

func TestLineageDisabledIs404WithHint(t *testing.T) {
	o, _ := rig(t)
	mux := NewMux(Source{Obs: o, Tool: "test"})
	rec := get(t, mux, "/lineage/rank0/field")
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "-lineage") {
		t.Fatalf("disabled lineage = %d %q", rec.Code, rec.Body.String())
	}
}

// Tools that drive many short-lived simulations (nvmcp-bench, nvmcp-perf)
// mount the server with no observer: health, status, and pprof must still
// work, and /metrics must 404 rather than panic.
func TestNilObserverDegradesGracefully(t *testing.T) {
	mux := NewMux(Source{Tool: "bench", Status: func() string { return "fig9" }})
	if rec := get(t, mux, "/healthz"); rec.Code != 200 {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	if rec := get(t, mux, "/metrics"); rec.Code != 404 {
		t.Fatalf("/metrics without observer = %d, want 404", rec.Code)
	}
	var p Progress
	if rec := get(t, mux, "/progress"); json.Unmarshal(rec.Body.Bytes(), &p) != nil {
		t.Fatalf("bad /progress body: %s", rec.Body.String())
	}
	if p.Tool != "bench" || p.Status != "fig9" || p.Events != 0 {
		t.Fatalf("progress = %+v", p)
	}
}

func TestPprofIndexIsMounted(t *testing.T) {
	o, _ := rig(t)
	mux := NewMux(Source{Obs: o, Tool: "test"})
	if rec := get(t, mux, "/debug/pprof/"); rec.Code != 200 {
		t.Fatalf("/debug/pprof/ = %d", rec.Code)
	}
}

// TestConcurrentPollsWhilePublishing drives handler reads from several
// goroutines while the bus keeps publishing — the -race contract the live
// server depends on.
func TestConcurrentPollsWhilePublishing(t *testing.T) {
	env := sim.NewEnv()
	o := obs.New(env)
	tr := lineage.Attach(o, lineage.Config{Enabled: true})
	mux := NewMux(Source{Obs: o, Lineage: tr, Tool: "test"})
	r := o.Recorder(0, "rank0")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get(t, mux, "/progress")
				get(t, mux, "/metrics")
				get(t, mux, "/lineage")
			}
		}()
	}
	env.Go("emitter", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			r.Emit(obs.EvChunkStaged, "field", 64, map[string]string{"seq": "1"})
			r.Emit(obs.EvChunkCommit, "field", 64, map[string]string{"seq": "1"})
			p.Sleep(time.Millisecond)
		}
	})
	env.Run()
	close(stop)
	wg.Wait()
}

func TestDriftDisabledIs404WithHint(t *testing.T) {
	o, _ := rig(t)
	mux := NewMux(Source{Obs: o, Tool: "test"})
	for _, path := range []string{"/drift", "/drift/timeseries"} {
		rec := get(t, mux, path)
		if rec.Code != 404 || !strings.Contains(rec.Body.String(), "-drift") {
			t.Fatalf("%s without observatory = %d %q, want 404 with the -drift hint",
				path, rec.Code, rec.Body.String())
		}
	}
}

func TestDriftEndpoints(t *testing.T) {
	env := sim.NewEnv()
	o := obs.New(env)
	in := drift.Inputs{Ranks: 2, IterTime: 2 * time.Second}
	in.Params.TCompute = 20 * time.Second
	in.Params.IntervalLocal = 4 * time.Second
	in.Params.CkptSize = 64 << 20
	in.Params.NVMBWPerCore = 100e6
	d := drift.Attach(o, drift.Config{Enabled: true}, in)
	r := o.Recorder(0, "rank0")
	env.Go("emitter", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r.Emit(obs.EvCheckpointCommit, "", 64<<20,
			map[string]string{"dur_us": "700000", "copied": "4"})
		p.Sleep(5 * time.Second) // crosses one 5s window boundary
		r.Emit(obs.EvIteration, "", 0, nil)
	})
	env.Run()
	d.Finalize(7 * time.Second)

	mux := NewMux(Source{Obs: o, Drift: d, Tool: "test"})
	rec := get(t, mux, "/drift")
	if rec.Code != 200 {
		t.Fatalf("/drift = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Baseline    drift.Baseline     `json:"baseline"`
		Summary     drift.Summary      `json:"summary"`
		PhaseShifts []drift.PhaseShift `json:"phase_shifts"`
		Violations  []drift.Violation  `json:"violations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /drift body: %v\n%s", err, rec.Body.String())
	}
	if body.Summary.Windows != 2 {
		t.Fatalf("summary windows = %d, want 1 full + 1 tail", body.Summary.Windows)
	}
	if body.Baseline.TLclUS == 0 {
		t.Fatalf("baseline t_lcl missing: %+v", body.Baseline)
	}

	rec = get(t, mux, "/drift/timeseries")
	if rec.Code != 200 {
		t.Fatalf("/drift/timeseries = %d", rec.Code)
	}
	var ts struct {
		WindowUS int64          `json:"window_us"`
		Windows  []drift.Window `json:"windows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ts); err != nil {
		t.Fatalf("bad timeseries body: %v", err)
	}
	if ts.WindowUS != drift.DefaultWindow.Microseconds() || len(ts.Windows) != 2 {
		t.Fatalf("timeseries = window_us %d, %d windows; want %d, 2",
			ts.WindowUS, len(ts.Windows), drift.DefaultWindow.Microseconds())
	}
	if _, ok := ts.Windows[0].Values["err_"+drift.QtyCkptTime]; !ok {
		t.Fatalf("window 0 lacks the ckpt_time gauge: %v", ts.Windows[0].Values)
	}
}

// TestAllRoutesContentType pins every introspection route to an explicit
// Content-Type: the JSON surfaces must all declare application/json (so
// curl | jq and browser tooling never sniff), the text surfaces text/plain.
func TestAllRoutesContentType(t *testing.T) {
	env := sim.NewEnv()
	o := obs.New(env)
	tr := lineage.Attach(o, lineage.Config{Enabled: true})
	sr := slo.Attach(o, slo.Config{Enabled: true, Spec: &slo.Spec{Objectives: []slo.Objective{
		{Name: "availability", Direction: slo.AtLeast, Threshold: 0},
	}}})
	d := drift.Attach(o, drift.Config{Enabled: true}, drift.Inputs{Ranks: 1})
	r := o.Recorder(0, "rank0")
	env.Go("emitter", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r.Emit(obs.EvChunkStaged, "field", 64, map[string]string{"seq": "1"})
		r.Emit(obs.EvChunkCommit, "field", 64, map[string]string{"seq": "1"})
	})
	env.Run()
	sr.Finalize(2 * time.Second)
	d.Finalize(2 * time.Second)
	mux := NewMux(Source{Obs: o, Lineage: tr, SLO: sr, Drift: d, Tool: "test"})

	jsonRoutes := []string{
		"/progress",
		"/lineage", "/lineage/rank0/field",
		"/slo", "/slo/timeseries",
		"/drift", "/drift/timeseries",
	}
	for _, path := range jsonRoutes {
		rec := get(t, mux, path)
		if rec.Code != 200 {
			t.Errorf("%s = %d: %s", path, rec.Code, rec.Body.String())
			continue
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s Content-Type = %q, want application/json", path, ct)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Errorf("%s body is not valid JSON: %.200s", path, rec.Body.String())
		}
	}
	for path, want := range map[string]string{
		"/healthz": "text/plain; charset=utf-8",
		"/metrics": "text/plain; version=0.0.4",
	} {
		rec := get(t, mux, path)
		if rec.Code != 200 {
			t.Errorf("%s = %d", path, rec.Code)
			continue
		}
		if ct := rec.Header().Get("Content-Type"); ct != want {
			t.Errorf("%s Content-Type = %q, want %q", path, ct, want)
		}
	}
}

func TestSLODisabledIs404WithHint(t *testing.T) {
	o, _ := rig(t)
	mux := NewMux(Source{Obs: o, Tool: "test"})
	for _, path := range []string{"/slo", "/slo/timeseries"} {
		rec := get(t, mux, path)
		if rec.Code != 404 || !strings.Contains(rec.Body.String(), "-slo") {
			t.Fatalf("%s without recorder = %d %q, want 404 with the -slo hint",
				path, rec.Code, rec.Body.String())
		}
	}
}

func TestSLOEndpoints(t *testing.T) {
	env := sim.NewEnv()
	o := obs.New(env)
	sr := slo.Attach(o, slo.Config{Enabled: true, Spec: &slo.Spec{Objectives: []slo.Objective{
		{Name: "availability", Direction: slo.AtLeast, Threshold: 0.5},
	}}})
	r := o.Recorder(0, "rank0")
	env.Go("emitter", func(p *sim.Proc) {
		p.Sleep(7 * time.Second) // crosses one 5s window boundary
		r.Emit(obs.EvChunkCommit, "field", 64, nil)
	})
	env.Run()
	sr.Finalize(7 * time.Second)

	mux := NewMux(Source{Obs: o, SLO: sr, Tool: "test"})
	rec := get(t, mux, "/slo")
	if rec.Code != 200 {
		t.Fatalf("/slo = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/slo Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Summary    slo.Summary           `json:"summary"`
		Objectives []slo.ObjectiveStatus `json:"objectives"`
		Violations []slo.Violation       `json:"violations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /slo body: %v\n%s", err, rec.Body.String())
	}
	if body.Summary.Windows != 2 {
		t.Fatalf("summary windows = %d, want 1 full + 1 tail", body.Summary.Windows)
	}
	if len(body.Objectives) != 1 || body.Objectives[0].Name != "availability" {
		t.Fatalf("objectives = %+v", body.Objectives)
	}

	rec = get(t, mux, "/slo/timeseries")
	if rec.Code != 200 {
		t.Fatalf("/slo/timeseries = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/slo/timeseries Content-Type = %q, want application/json", ct)
	}
	var ts struct {
		Series  []string     `json:"series"`
		Windows []slo.Window `json:"windows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ts); err != nil {
		t.Fatalf("bad timeseries body: %v", err)
	}
	if len(ts.Series) != len(slo.SeriesNames()) {
		t.Fatalf("series catalog = %v", ts.Series)
	}
	if len(ts.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(ts.Windows))
	}
}
