// Package introspect is the live run-introspection server: a small HTTP
// surface over a running (or finished) simulation exposing Prometheus
// metrics, liveness, simulation progress, per-chunk lineage queries, and the
// standard pprof handlers. The CLIs mount it behind a `-http :PORT` flag, so
// a long paper-scale run can be watched — and profiled — while the virtual
// clock is still advancing.
//
// Every read goes through race-safe snapshots (obs.Progress, the metrics
// registry's own locking, and the lineage tracer's mutex); the server never
// touches the simulation environment directly, so HTTP goroutines cannot
// race the single-threaded virtual clock.
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"nvmcp/internal/lineage"
	"nvmcp/internal/obs"
	"nvmcp/internal/slo"
)

// Source is the set of run surfaces the server reads. Every field degrades
// gracefully: nil Obs (tools that drive many short-lived simulations, like
// nvmcp-bench) turns /metrics into a 404 and zeroes the progress counters,
// nil Lineage turns lineage endpoints into 404s with a hint, and nil Status
// reports "running".
type Source struct {
	// Obs is the run's observability hub (metrics + progress).
	Obs *obs.Observer
	// Lineage is the run's causal chunk tracer (nil when disabled).
	Lineage *lineage.Tracer
	// SLO is the run's flight recorder (nil when disabled).
	SLO *slo.Recorder
	// Tool names the binary serving (e.g. "nvmcp-sim").
	Tool string
	// Status, when set, reports the run phase ("running", "done", ...).
	Status func() string
}

// Progress is the /progress response body.
type Progress struct {
	Tool   string `json:"tool"`
	Status string `json:"status"`
	// VirtualUS is the newest event's virtual timestamp in microseconds —
	// how far the simulated clock has advanced.
	VirtualUS int64 `json:"virtual_us"`
	// Events is the total event count published so far.
	Events int `json:"events"`
	// EventsPerSec is the event rate between this poll and the previous
	// one, measured in host wall time (0 on the first poll).
	EventsPerSec float64 `json:"events_per_sec"`
	// Epoch is the current recovery epoch (lineage tracer; 0 without one).
	Epoch int `json:"epoch"`
	// Violations counts lineage invariant breaches so far.
	Violations int `json:"violations"`
}

// Server wraps the HTTP listener for clean shutdown.
type Server struct {
	http *http.Server
	addr net.Addr

	mu         sync.Mutex
	lastPoll   time.Time
	lastEvents int
}

// NewMux builds the introspection routing table (exported separately so
// tests drive handlers without a listener).
func NewMux(src Source) *http.ServeMux {
	s := &Server{}
	return s.mux(src)
}

func (s *Server) mux(src Source) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if src.Obs == nil {
			http.Error(w, "no metrics registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := src.Obs.Registry().WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.progress(src))
	})
	mux.HandleFunc("GET /lineage", func(w http.ResponseWriter, r *http.Request) {
		if src.Lineage == nil {
			http.Error(w, "lineage tracing disabled (run with -lineage)", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"chunks":     src.Lineage.Chunks(),
			"violations": src.Lineage.Violations(),
			"summary":    src.Lineage.Summary(),
		})
	})
	// Chunk keys contain slashes ("rank3/ions"), so the route needs the
	// trailing-wildcard form.
	mux.HandleFunc("GET /lineage/{chunk...}", func(w http.ResponseWriter, r *http.Request) {
		if src.Lineage == nil {
			http.Error(w, "lineage tracing disabled (run with -lineage)", http.StatusNotFound)
			return
		}
		chunk := r.PathValue("chunk")
		h, ok := src.Lineage.History(chunk)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown chunk %q (GET /lineage lists keys)", chunk),
				http.StatusNotFound)
			return
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		if src.SLO == nil {
			http.Error(w, "SLO recording disabled (run with -slo)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, map[string]any{
			"summary":    src.SLO.Summary(),
			"objectives": src.SLO.Objectives(),
			"violations": src.SLO.Violations(),
		})
	})
	mux.HandleFunc("GET /slo/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if src.SLO == nil {
			http.Error(w, "SLO recording disabled (run with -slo)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, map[string]any{
			"series":  slo.SeriesNames(),
			"windows": src.SLO.Windows(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) progress(src Source) Progress {
	p := Progress{Tool: src.Tool, Status: "running"}
	if src.Obs != nil {
		p.VirtualUS, p.Events = src.Obs.Progress()
	}
	if src.Status != nil {
		p.Status = src.Status()
	}
	if src.Lineage != nil {
		p.Epoch = src.Lineage.Epoch()
		p.Violations = src.Lineage.ViolationCount()
	}
	// The rate is host-side: events accrued since the previous poll over the
	// wall time between the polls.
	now := time.Now()
	s.mu.Lock()
	if !s.lastPoll.IsZero() {
		if dt := now.Sub(s.lastPoll).Seconds(); dt > 0 {
			p.EventsPerSec = float64(p.Events-s.lastEvents) / dt
		}
	}
	s.lastPoll, s.lastEvents = now, p.Events
	s.mu.Unlock()
	return p
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve starts the introspection server on addr (e.g. ":8080" or
// "127.0.0.1:0") in a background goroutine and returns once the listener is
// bound, so callers can print the resolved address before the run starts.
func Serve(addr string, src Source) (*Server, error) {
	s := &Server{}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", addr, err)
	}
	s.addr = ln.Addr()
	s.http = &http.Server{Handler: s.mux(src)}
	go func() {
		// ErrServerClosed is the clean-shutdown path; anything else would
		// have surfaced at Listen time.
		_ = s.http.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.addr }

// Close stops the listener.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}
