// Package introspect is the live run-introspection server: a small HTTP
// surface over a running (or finished) simulation exposing Prometheus
// metrics, liveness, simulation progress, per-chunk lineage queries, and the
// standard pprof handlers. The CLIs mount it behind a `-http :PORT` flag, so
// a long paper-scale run can be watched — and profiled — while the virtual
// clock is still advancing. With an API handler attached (nvmcp-sim -serve),
// the same listener also fronts the checkpoint control plane under /api/.
//
// Every read goes through race-safe snapshots (obs.Progress, the metrics
// registry's own locking, and the lineage tracer's mutex); the server never
// touches the simulation environment directly, so HTTP goroutines cannot
// race the single-threaded virtual clock.
package introspect

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"nvmcp/internal/drift"
	"nvmcp/internal/lineage"
	"nvmcp/internal/obs"
	"nvmcp/internal/slo"
)

// Source is the set of run surfaces the server reads. Every field degrades
// gracefully: nil Obs (tools that drive many short-lived simulations, like
// nvmcp-bench) turns /metrics into a 404 and zeroes the progress counters,
// nil Lineage turns lineage endpoints into 404s with a hint, and nil Status
// reports "running".
type Source struct {
	// Obs is the run's observability hub (metrics + progress).
	Obs *obs.Observer
	// Lineage is the run's causal chunk tracer (nil when disabled).
	Lineage *lineage.Tracer
	// SLO is the run's flight recorder (nil when disabled).
	SLO *slo.Recorder
	// Drift is the run's model-drift observatory (nil when disabled).
	Drift *drift.Observatory
	// Tool names the binary serving (e.g. "nvmcp-sim").
	Tool string
	// Status, when set, reports the run phase ("running", "done", ...).
	Status func() string
	// API, when set, is mounted under /api/ (the control plane's job
	// surface in serving mode; nil for plain batch-run introspection).
	API http.Handler
}

// Progress is the /progress response body.
type Progress struct {
	Tool   string `json:"tool"`
	Status string `json:"status"`
	// VirtualUS is the newest event's virtual timestamp in microseconds —
	// how far the simulated clock has advanced.
	VirtualUS int64 `json:"virtual_us"`
	// Events is the total event count published so far.
	Events int `json:"events"`
	// EventsPerSec is the recent event rate in host wall time, derived from
	// a shared monotonic sample history (0 on the first poll), so any number
	// of concurrent scrapers observe the same rate.
	EventsPerSec float64 `json:"events_per_sec"`
	// Epoch is the current recovery epoch (lineage tracer; 0 without one).
	Epoch int `json:"epoch"`
	// Violations counts lineage invariant breaches so far.
	Violations int `json:"violations"`
}

// rateLookback bounds how far back the rate computation reaches: the rate is
// measured against the oldest retained sample, and samples age out once a
// newer one is itself lookback-old. Heavy scraping therefore converges on a
// smoothed ~lookback-wide window instead of poller-pair deltas.
const rateLookback = 10 * time.Second

// maxRateSamples hard-caps the sample history so pathological scrape storms
// cannot grow it without bound inside one lookback window.
const maxRateSamples = 256

// rateSample is one (wall time, cumulative events) observation.
type rateSample struct {
	t      time.Time
	events int
}

// Server wraps the HTTP listener for clean shutdown.
type Server struct {
	http  *http.Server
	addr  net.Addr
	errc  chan error
	drain time.Duration

	// now is the wall clock (swapped for a fake in tests).
	now func() time.Time

	mu sync.Mutex
	// samples is the shared monotonic poll history the event rate derives
	// from. Every poller appends and reads the same series, so concurrent
	// scrapers cannot steal each other's baseline (the old single
	// lastPoll/lastEvents pair handed one scraper ~2x the rate and the
	// other ~0).
	samples []rateSample
}

func newServer() *Server {
	return &Server{now: time.Now, drain: drainTimeout}
}

// NewMux builds the introspection routing table (exported separately so
// tests drive handlers without a listener).
func NewMux(src Source) *http.ServeMux {
	return newServer().mux(src)
}

func (s *Server) mux(src Source) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if src.Obs == nil {
			http.Error(w, "no metrics registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := src.Obs.Registry().WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.progress(src))
	})
	mux.HandleFunc("GET /lineage", func(w http.ResponseWriter, r *http.Request) {
		if src.Lineage == nil {
			http.Error(w, "lineage tracing disabled (run with -lineage)", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"chunks":     src.Lineage.Chunks(),
			"violations": src.Lineage.Violations(),
			"summary":    src.Lineage.Summary(),
		})
	})
	// Chunk keys contain slashes ("rank3/ions"), so the route needs the
	// trailing-wildcard form.
	mux.HandleFunc("GET /lineage/{chunk...}", func(w http.ResponseWriter, r *http.Request) {
		if src.Lineage == nil {
			http.Error(w, "lineage tracing disabled (run with -lineage)", http.StatusNotFound)
			return
		}
		chunk := r.PathValue("chunk")
		h, ok := src.Lineage.History(chunk)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown chunk %q (GET /lineage lists keys)", chunk),
				http.StatusNotFound)
			return
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		if src.SLO == nil {
			http.Error(w, "SLO recording disabled (run with -slo)", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"summary":    src.SLO.Summary(),
			"objectives": src.SLO.Objectives(),
			"violations": src.SLO.Violations(),
		})
	})
	mux.HandleFunc("GET /slo/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if src.SLO == nil {
			http.Error(w, "SLO recording disabled (run with -slo)", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"series":  slo.SeriesNames(),
			"windows": src.SLO.Windows(),
		})
	})
	mux.HandleFunc("GET /drift", func(w http.ResponseWriter, r *http.Request) {
		if src.Drift == nil {
			http.Error(w, "drift recording disabled (run with -drift)", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"baseline":     src.Drift.Baseline(),
			"summary":      src.Drift.Summary(),
			"phase_shifts": src.Drift.PhaseShifts(),
			"violations":   src.Drift.Violations(),
		})
	})
	mux.HandleFunc("GET /drift/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if src.Drift == nil {
			http.Error(w, "drift recording disabled (run with -drift)", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"window_us": src.Drift.WindowDuration().Microseconds(),
			"windows":   src.Drift.Windows(),
		})
	})
	if src.API != nil {
		mux.Handle("/api/", src.API)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) progress(src Source) Progress {
	p := Progress{Tool: src.Tool, Status: "running"}
	if src.Obs != nil {
		p.VirtualUS, p.Events = src.Obs.Progress()
	}
	if src.Status != nil {
		p.Status = src.Status()
	}
	if src.Lineage != nil {
		p.Epoch = src.Lineage.Epoch()
		p.Violations = src.Lineage.ViolationCount()
	}
	p.EventsPerSec = s.observeRate(p.Events)
	return p
}

// observeRate folds one poll into the shared sample history and returns the
// event rate against the oldest retained sample. The history is monotonic
// and shared by all pollers: a new scraper joining mid-run measures against
// the same baseline as everyone else instead of resetting it.
func (s *Server) observeRate(events int) float64 {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Age out leading samples: once the *next* sample is itself old enough
	// to anchor the lookback, the current base carries no extra information.
	for len(s.samples) > 1 &&
		(now.Sub(s.samples[1].t) >= rateLookback || len(s.samples) > maxRateSamples) {
		s.samples = s.samples[1:]
	}
	rate := 0.0
	if len(s.samples) > 0 {
		base := s.samples[0]
		if dt := now.Sub(base.t).Seconds(); dt > 0 {
			rate = float64(events-base.events) / dt
		}
	}
	s.samples = append(s.samples, rateSample{t: now, events: events})
	return rate
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serving limits. ReadHeaderTimeout bounds how long a connection may dribble
// its request head (the slowloris hole a resident control plane cannot
// leave open); WriteTimeout must outlast the longest legitimate response —
// /debug/pprof/profile blocks for its full sample window (30s by default) —
// so it is generous rather than tight. drainTimeout is how long Close waits
// for in-flight requests before dropping the stragglers.
const (
	readHeaderTimeout = 5 * time.Second
	writeTimeout      = 2 * time.Minute
	idleTimeout       = 2 * time.Minute
	drainTimeout      = 5 * time.Second
)

// Serve starts the introspection server on addr (e.g. ":8080" or
// "127.0.0.1:0") in a background goroutine and returns once the listener is
// bound, so callers can print the resolved address before the run starts.
// Asynchronous serve failures are published on ServeErr.
func Serve(addr string, src Source) (*Server, error) {
	s := newServer()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", addr, err)
	}
	s.addr = ln.Addr()
	s.http = &http.Server{
		Handler:           s.mux(src),
		ReadHeaderTimeout: readHeaderTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	s.errc = make(chan error, 1)
	go func() {
		if err := s.http.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.errc <- fmt.Errorf("introspect: serve %s: %w", s.addr, err)
		}
		close(s.errc)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.addr }

// ServeErr reports asynchronous failures from the serve loop. The channel
// closes when the loop exits; a clean shutdown closes it without a value.
func (s *Server) ServeErr() <-chan error { return s.errc }

// Close gracefully shuts the server down: the listener closes immediately,
// in-flight requests get a drain deadline to finish, and only stragglers
// past the deadline are dropped.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.drain)
	defer cancel()
	if err := s.http.Shutdown(ctx); err != nil {
		// The drain deadline expired with requests still in flight: fall
		// back to the hard drop, but report that the drain was cut short.
		if cerr := s.http.Close(); cerr != nil && cerr != http.ErrServerClosed {
			return cerr
		}
		return fmt.Errorf("introspect: drain cut short after %v: %w", s.drain, err)
	}
	return nil
}
