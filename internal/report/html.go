// Package report holds the shared inline-SVG/HTML rendering helpers used by
// the self-contained run reports (SLO, drift, fleet stress). Every renderer
// emits byte-stable output for a deterministic run: no external assets, no
// wall-clock content, all styling via the shared design-token palette with
// light/dark steps.
package report

import (
	"fmt"
	"html"
	"math"
	"sort"
	"strings"
)

// WriteHead opens a self-contained page: doctype, the design-token palette
// (chart surfaces, ink hierarchy, hairline grid, six categorical series
// slots, reserved status colors), and the shared card/table/tooltip CSS.
// Dark steps are declared under both the media query and an explicit
// data-theme scope.
func WriteHead(b *strings.Builder, title string) {
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n<title>")
	b.WriteString(html.EscapeString(title))
	b.WriteString("</title>\n<style>\n")
	b.WriteString(paletteCSS)
	b.WriteString("</style>\n</head>\n<body class=\"viz-root\">\n")
}

const paletteCSS = `.viz-root {
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --axis: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #d07c2a;
  --series-3: #2aa053;
  --series-4: #9a5bd0;
  --series-5: #d0492a;
  --series-6: #2ab2c4;
  --status-critical: #d03b3b;
  --status-good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :where(.viz-root) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --axis: #383835;
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --axis: #383835;
  --series-1: #3987e5;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; font-weight: 600; margin: 28px 0 8px; color: var(--text-primary); }
.meta { color: var(--text-secondary); font-size: 13px; margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 8px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .k { font-size: 12px; color: var(--text-secondary); }
.tile .v { font-size: 22px; font-weight: 600; margin-top: 2px; }
.tile .v.bad { color: var(--status-critical); }
.verdict { font-size: 14px; font-weight: 600; margin: 6px 0; }
.verdict.ok { color: var(--status-good); }
.verdict.bad { color: var(--status-critical); }
table.data {
  border-collapse: collapse; font-size: 13px;
  background: var(--surface-1); border: 1px solid var(--gridline); border-radius: 8px;
}
table.data th, table.data td { padding: 6px 12px; text-align: left; border-bottom: 1px solid var(--gridline); }
table.data th { color: var(--text-secondary); font-weight: 600; }
table.data tr:last-child td { border-bottom: none; }
table.data td.num { text-align: right; font-variant-numeric: tabular-nums; }
.pass { color: var(--status-good); }
.fail { color: var(--status-critical); font-weight: 600; }
.chart-card {
  background: var(--surface-1); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 12px 16px 8px; margin-bottom: 14px; max-width: 700px;
  position: relative;
}
.chart-card .t { font-size: 13px; font-weight: 600; }
.chart-card .s { font-size: 12px; color: var(--text-secondary); margin-bottom: 4px; }
.chart-card .s .viol { color: var(--status-critical); font-weight: 600; }
.legend { font-size: 12px; color: var(--text-secondary); margin: 4px 0 8px; }
.legend .sw { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin: 0 4px 0 12px; vertical-align: baseline; }
.legend .sw:first-child { margin-left: 0; }
.tooltip {
  position: absolute; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--axis); border-radius: 6px;
  padding: 4px 8px; font-size: 12px; color: var(--text-primary);
  box-shadow: 0 2px 6px rgba(0,0,0,0.12); white-space: nowrap; z-index: 2;
}
details { margin-top: 12px; }
details summary { cursor: pointer; color: var(--text-secondary); font-size: 13px; }
svg text { font-family: inherit; }
`

// WriteTail closes the page, installing the nearest-point hover tooltip:
// each chart point carries its label in data-l; the crosshair picks the
// closest point by x within the plot. Charts without data-l points (or
// without a tooltip div) are skipped, so the script is safe on every page.
func WriteTail(b *strings.Builder) {
	b.WriteString(`<script>
document.querySelectorAll('.chart-card').forEach(function (card) {
  var svg = card.querySelector('svg');
  var tip = card.querySelector('.tooltip');
  if (!svg || !tip) return;
  var pts = Array.prototype.slice.call(svg.querySelectorAll('circle[data-l]'));
  if (!pts.length) return;
  svg.addEventListener('mousemove', function (ev) {
    var rect = svg.getBoundingClientRect();
    var sx = svg.viewBox.baseVal.width / rect.width;
    var x = (ev.clientX - rect.left) * sx;
    var best = null, bd = 1e9;
    pts.forEach(function (p) {
      var d = Math.abs(parseFloat(p.getAttribute('cx')) - x);
      if (d < bd) { bd = d; best = p; }
    });
    if (!best || bd > 40) { tip.style.display = 'none'; return; }
    tip.textContent = best.getAttribute('data-l');
    tip.style.display = 'block';
    var cx = parseFloat(best.getAttribute('cx')) / sx;
    tip.style.left = Math.min(cx + 12, rect.width - 150) + 'px';
    tip.style.top = (parseFloat(best.getAttribute('cy')) / sx - 8) + 'px';
  });
  svg.addEventListener('mouseleave', function () { tip.style.display = 'none'; });
});
</script>
</body>
</html>
`)
}

// Chart geometry (SVG user units), shared by every step chart.
const (
	ChartW, ChartH = 660, 220
	PadL, PadR     = 62, 14
	PadT, PadB     = 14, 30
	PlotW          = ChartW - PadL - PadR
	PlotH          = ChartH - PadT - PadB
)

// StepPoint is one windowed sample: a horizontal segment over
// [StartUS, EndUS) at value V. Label is the hover tooltip text; Bad renders
// the point as a status-critical marker instead of an invisible hover
// target.
type StepPoint struct {
	StartUS, EndUS int64
	V              float64
	Label          string
	Bad            bool
}

// StepSeries is one step line on a chart. Color picks a categorical slot
// (1-6); Dashed renders the line dashed (predictions, references).
type StepSeries struct {
	Name   string
	Color  int
	Dashed bool
	Points []StepPoint
}

// Threshold draws a dashed annotation line with a right-edge label.
type Threshold struct {
	Label string
	V     float64
}

// StepChart renders windowed series as step lines: one horizontal segment
// per window, joined while windows are contiguous, broken across no-data
// gaps. SubHTML (already-escaped) is the card's secondary line; Fmt formats
// y-axis values; ClampZero pins the y floor at zero when every value and
// threshold is non-negative.
type StepChart struct {
	Title      string
	SubHTML    string
	Series     []StepSeries
	Thresholds []Threshold
	Fmt        func(float64) string
	ClampZero  bool
}

// WriteStepChart renders the chart card: title, legend (multi-series only),
// gridlines and ticks, threshold annotations, the step lines, and hover /
// violation markers with tooltip labels.
func WriteStepChart(b *strings.Builder, c StepChart) {
	fmtV := c.Fmt
	if fmtV == nil {
		fmtV = TrimFloat
	}
	var all []StepPoint
	for _, s := range c.Series {
		all = append(all, s.Points...)
	}
	if len(all) == 0 {
		return
	}

	// Scales: x spans the union of windows, y spans values plus thresholds
	// with an 8% pad; near-zero floors anchor at zero for readability.
	t0, t1 := math.Inf(1), math.Inf(-1)
	lo, hi := all[0].V, all[0].V
	for _, p := range all {
		t0 = math.Min(t0, float64(p.StartUS)/1e6)
		t1 = math.Max(t1, float64(p.EndUS)/1e6)
		lo, hi = math.Min(lo, p.V), math.Max(hi, p.V)
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	for _, th := range c.Thresholds {
		lo, hi = math.Min(lo, th.V), math.Max(hi, th.V)
	}
	if lo > 0 && lo < hi*0.5 {
		lo = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.08
	lo, hi = lo-pad, hi+pad
	if c.ClampZero && lo < 0 {
		lo = 0
	}
	xOf := func(t float64) float64 { return PadL + (t-t0)/(t1-t0)*PlotW }
	yOf := func(v float64) float64 { return PadT + (hi-v)/(hi-lo)*PlotH }

	fmt.Fprintf(b, "<div class=\"chart-card\"><div class=\"t\">%s</div>\n", html.EscapeString(c.Title))
	if c.SubHTML != "" {
		fmt.Fprintf(b, "<div class=\"s\">%s</div>\n", c.SubHTML)
	}
	if len(c.Series) > 1 {
		b.WriteString("<div class=\"legend\">")
		for _, s := range c.Series {
			fmt.Fprintf(b, "<span class=\"sw\" style=\"background:var(--series-%d)\"></span>%s",
				colorSlot(s.Color), html.EscapeString(s.Name))
		}
		b.WriteString("</div>\n")
	}

	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"%s over virtual time\">\n",
		ChartW, ChartH, html.EscapeString(c.Title))

	// Recessive horizontal gridlines + y tick labels (muted ink).
	for _, tv := range NiceTicks(lo, hi, 4) {
		y := yOf(tv)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"var(--gridline)\" stroke-width=\"1\"/>\n",
			PadL, y, ChartW-PadR, y)
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%.1f\" fill=\"var(--text-muted)\" font-size=\"11\" text-anchor=\"end\">%s</text>\n",
			PadL-6, y+4, html.EscapeString(fmtV(tv)))
	}
	// Baseline axis + x tick labels.
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"var(--axis)\" stroke-width=\"1\"/>\n",
		PadL, ChartH-PadB, ChartW-PadR, ChartH-PadB)
	for _, tv := range NiceTicks(t0, t1, 5) {
		x := xOf(tv)
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%d\" fill=\"var(--text-muted)\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n",
			x, ChartH-PadB+16, html.EscapeString(FmtSecs(tv)))
	}

	// Threshold lines: dashed, secondary ink (annotations, not series),
	// labeled at the right edge.
	for _, th := range c.Thresholds {
		y := yOf(th.V)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"var(--text-muted)\" stroke-width=\"1\" stroke-dasharray=\"5 4\"/>\n",
			PadL, y, ChartW-PadR, y)
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%.1f\" fill=\"var(--text-secondary)\" font-size=\"11\" text-anchor=\"end\">%s</text>\n",
			ChartW-PadR, y-4, html.EscapeString(th.Label))
	}

	// Step lines.
	for _, s := range c.Series {
		var path strings.Builder
		prevEnd := int64(math.MinInt64)
		for _, p := range s.Points {
			x0, x1 := xOf(float64(p.StartUS)/1e6), xOf(float64(p.EndUS)/1e6)
			y := yOf(p.V)
			if p.StartUS == prevEnd {
				fmt.Fprintf(&path, "L%.1f %.1f L%.1f %.1f ", x0, y, x1, y)
			} else {
				fmt.Fprintf(&path, "M%.1f %.1f L%.1f %.1f ", x0, y, x1, y)
			}
			prevEnd = p.EndUS
		}
		dash := ""
		if s.Dashed {
			dash = " stroke-dasharray=\"6 4\""
		}
		fmt.Fprintf(b, "<path d=\"%s\" fill=\"none\" stroke=\"var(--series-%d)\" stroke-width=\"2\" stroke-linejoin=\"round\"%s/>\n",
			strings.TrimSpace(path.String()), colorSlot(s.Color), dash)
	}

	// Hover targets at window midpoints (invisible until hovered via the
	// tooltip script; bad windows get a visible critical marker with a 2px
	// surface ring).
	for _, s := range c.Series {
		for _, p := range s.Points {
			xm := xOf((float64(p.StartUS) + float64(p.EndUS)) / 2e6)
			y := yOf(p.V)
			if p.Bad {
				fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"6\" fill=\"var(--surface-1)\"/>\n", xm, y)
				fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"var(--status-critical)\" data-l=\"%s\"><title>%s</title></circle>\n",
					xm, y, html.EscapeString(p.Label), html.EscapeString(p.Label))
			} else {
				fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"8\" fill=\"transparent\" data-l=\"%s\"><title>%s</title></circle>\n",
					xm, y, html.EscapeString(p.Label), html.EscapeString(p.Label))
			}
		}
	}
	b.WriteString("</svg>\n<div class=\"tooltip\"></div>\n</div>\n")
}

func colorSlot(c int) int {
	if c < 1 || c > 6 {
		return 1
	}
	return c
}

// FmtBytes renders a byte quantity in IEC units.
func FmtBytes(v float64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case math.Abs(v) >= gib:
		return fmt.Sprintf("%.2f GiB", v/gib)
	case math.Abs(v) >= mib:
		return fmt.Sprintf("%.1f MiB", v/mib)
	case math.Abs(v) >= kib:
		return fmt.Sprintf("%.1f KiB", v/kib)
	}
	return fmt.Sprintf("%.0f B", v)
}

// FmtPct renders a 0-1 fraction as a percentage.
func FmtPct(v float64) string {
	p := v * 100
	if p == math.Trunc(p) {
		return fmt.Sprintf("%.0f%%", p)
	}
	return fmt.Sprintf("%.1f%%", p)
}

// FmtSecs renders a duration in seconds.
func FmtSecs(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0fs", v)
	}
	return fmt.Sprintf("%.2fs", v)
}

// TrimFloat renders with at most three decimals, trailing zeros trimmed.
func TrimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// NiceTicks returns ~n round-valued ticks inside [lo, hi].
func NiceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 1 {
		return nil
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch frac := raw / mag; {
	case frac <= 1:
		step = mag
	case frac <= 2:
		step = 2 * mag
	case frac <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step*1e-9; t += step {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}
