package core_test

import (
	"fmt"

	"nvmcp/internal/core"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// Example shows the basic Table III workflow: allocate checkpoint variables,
// compute, checkpoint, and observe that unmodified chunks are skipped.
func Example() {
	env := sim.NewEnv()
	kernel := nvmkernel.New(env, mem.NewDRAM(env, 8*mem.GB), mem.NewPCM(env, 8*mem.GB))

	env.Go("app", func(p *sim.Proc) {
		store := core.NewStore(kernel.Attach("rank0"), core.Options{})

		field, _ := store.NVAlloc(p, "field", 64*mem.MB, true)
		grid, _ := store.NVAlloc(p, "grid", 16*mem.MB, true)

		field.WriteAll(p)
		grid.WriteAll(p)
		st := store.ChkptAll(p)
		fmt.Printf("first checkpoint: %d copied, %d skipped\n", st.ChunksCopied, st.ChunksSkipped)

		field.Write(p, 0, mem.MB) // only field changes
		st = store.ChkptAll(p)
		fmt.Printf("second checkpoint: %d copied, %d skipped\n", st.ChunksCopied, st.ChunksSkipped)
	})
	env.Run()
	// Output:
	// first checkpoint: 2 copied, 0 skipped
	// second checkpoint: 1 copied, 1 skipped
}

// ExampleStore_PreCopyChunk stages a dirty chunk in the background so the
// coordinated checkpoint has nothing left to move.
func ExampleStore_PreCopyChunk() {
	env := sim.NewEnv()
	kernel := nvmkernel.New(env, mem.NewDRAM(env, 8*mem.GB), mem.NewPCM(env, 8*mem.GB))
	env.Go("app", func(p *sim.Proc) {
		store := core.NewStore(kernel.Attach("rank0"), core.Options{})
		c, _ := store.NVAlloc(p, "field", 32*mem.MB, true)
		c.WriteAll(p)

		moved := store.PreCopyChunk(p, c, 0)
		fmt.Printf("pre-copied %d MB\n", moved/mem.MB)

		st := store.ChkptAll(p)
		fmt.Printf("checkpoint copied %d bytes\n", st.BytesCopied)
	})
	env.Run()
	// Output:
	// pre-copied 32 MB
	// checkpoint copied 0 bytes
}

// ExampleGenID derives stable chunk identifiers from variable names.
func ExampleGenID() {
	fmt.Println(core.GenID("electrons") == core.GenID("electrons"))
	fmt.Println(core.GenID("electrons") == core.GenID("ions"))
	// Output:
	// true
	// false
}
