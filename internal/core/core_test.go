package core

import (
	"errors"
	"testing"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// rig bundles a one-node simulation with a kernel and runs fn in an
// application process.
type rig struct {
	env *sim.Env
	k   *nvmkernel.Kernel
}

func newRig() *rig {
	e := sim.NewEnv()
	k := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB))
	return &rig{env: e, k: k}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc, s *Store)) {
	t.Helper()
	r.env.Go("app", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		fn(p, s)
	})
	r.env.Run()
}

func TestGenIDStableAndDistinct(t *testing.T) {
	if GenID("electrons") != GenID("electrons") {
		t.Fatal("GenID not deterministic")
	}
	if GenID("electrons") == GenID("ions") {
		t.Fatal("GenID collision on distinct names")
	}
}

func TestNVAllocBasics(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, err := s.NVAlloc(p, "field", 10*mem.MB, true)
		if err != nil {
			t.Fatal(err)
		}
		if c.Size != 10*mem.MB || !c.Persistent || c.Restored {
			t.Fatalf("chunk state: %+v", c)
		}
		if len(c.Data()) != DefaultPayloadCap {
			t.Fatalf("payload len = %d, want cap %d", len(c.Data()), DefaultPayloadCap)
		}
		if _, err := s.NVAlloc(p, "field", mem.MB, true); !errors.Is(err, ErrChunkExists) {
			t.Fatalf("duplicate alloc err = %v", err)
		}
		if _, err := s.NVAlloc(p, "bad", 0, true); !errors.Is(err, ErrBadDims) {
			t.Fatalf("zero-size alloc err = %v", err)
		}
		if s.ChunkByName("field") != c || s.Chunk(c.ID) != c {
			t.Fatal("lookup mismatch")
		}
	})
}

func TestNV2DAlloc(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, err := s.NV2DAlloc(p, "grid", 1024, 512, 8)
		if err != nil {
			t.Fatal(err)
		}
		if c.Size != 1024*512*8 {
			t.Fatalf("2D size = %d", c.Size)
		}
		if _, err := s.NV2DAlloc(p, "bad", -1, 2, 8); !errors.Is(err, ErrBadDims) {
			t.Fatalf("bad dims err = %v", err)
		}
	})
}

func TestSmallChunkFullPayload(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "small", 1000, true)
		if len(c.Data()) != 1000 {
			t.Fatalf("small chunk payload = %d, want full 1000", len(c.Data()))
		}
	})
}

func TestCheckpointSizeCountsPersistentOnly(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		s.NVAlloc(p, "a", 5*mem.MB, true)
		s.NVAlloc(p, "b", 3*mem.MB, false)
		s.NVAlloc(p, "c", 2*mem.MB, true)
		if got := s.CheckpointSize(); got != 7*mem.MB {
			t.Fatalf("CheckpointSize = %d, want 7MB", got)
		}
	})
}

func TestChkptAllCopiesDirtyChunksAndCharges(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "field", 200*mem.MB, true)
		if err := c.WriteAll(p); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		st := s.ChkptAll(p)
		if st.ChunksCopied != 1 || st.BytesCopied != 200*mem.MB {
			t.Fatalf("stats = %+v", st)
		}
		// ~210MB at 2GB/s NVM write is ~105ms; the copy dominates.
		elapsed := p.Now() - start
		if elapsed < 90*time.Millisecond || elapsed > 200*time.Millisecond {
			t.Fatalf("checkpoint took %v, want ~100ms (NVM-write-bound)", elapsed)
		}
		if !c.Committed() || c.Version != 1 {
			t.Fatalf("commit state: committed=%v version=%d", c.Committed(), c.Version)
		}
	})
}

func TestUnmodifiedChunkSkippedOnSecondCheckpoint(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "init-only", 50*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		// GTC's init-only chunks: no modification before the next checkpoint.
		st := s.ChkptAll(p)
		if st.ChunksCopied != 0 || st.ChunksSkipped != 1 {
			t.Fatalf("second checkpoint stats = %+v, want skip", st)
		}
		if st.BytesCopied != 0 {
			t.Fatalf("copied %d bytes for clean chunk", st.BytesCopied)
		}
		if c.Version != 1 {
			t.Fatalf("version advanced without new data: %d", c.Version)
		}
	})
}

func TestModificationAfterCheckpointRedirties(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		if c.Dirty() {
			t.Fatal("chunk dirty right after checkpoint")
		}
		if !c.Protected() {
			t.Fatal("chunk not re-protected after checkpoint")
		}
		c.Write(p, 0, 100)
		if !c.Dirty() {
			t.Fatal("modification not detected")
		}
		st := s.ChkptAll(p)
		if st.ChunksCopied != 1 {
			t.Fatalf("redirtied chunk not copied: %+v", st)
		}
		if c.Version != 2 {
			t.Fatalf("version = %d, want 2", c.Version)
		}
	})
}

func TestChunkLevelFaultCostOncePerInterval(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		// Many writes in one interval: only the first should fault.
		for i := 0; i < 100; i++ {
			c.Write(p, int64(i*1000), 1000)
		}
	})
	if got := r.k.Counters.Get("protection_faults"); got != 1 {
		t.Fatalf("protection_faults = %d, want 1", got)
	}
}

func TestPreCopyShrinksCheckpointWork(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		a, _ := s.NVAlloc(p, "a", 50*mem.MB, true)
		b, _ := s.NVAlloc(p, "b", 50*mem.MB, true)
		a.WriteAll(p)
		b.WriteAll(p)
		// Background pre-copy stages chunk a.
		if n := s.PreCopyChunk(p, a, 0); n != 50*mem.MB {
			t.Fatalf("precopy moved %d", n)
		}
		st := s.ChkptAll(p)
		if st.ChunksCopied != 1 || st.ChunksSkipped != 1 {
			t.Fatalf("stats = %+v: pre-copied chunk should be skipped", st)
		}
		if st.BytesCopied != 50*mem.MB {
			t.Fatalf("checkpoint copied %d, want only b's 50MB", st.BytesCopied)
		}
		// Both chunks must still commit.
		if a.Version != 1 || b.Version != 1 {
			t.Fatalf("versions a=%d b=%d", a.Version, b.Version)
		}
	})
}

func TestPreCopyCleanChunkIsNoop(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "a", 10*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		if n := s.PreCopyChunk(p, c, 0); n != 0 {
			t.Fatalf("precopy of clean chunk moved %d bytes", n)
		}
	})
}

func TestPreCopiedThenModifiedChunkRecopied(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "hot", 20*mem.MB, true)
		c.WriteAll(p)
		s.PreCopyChunk(p, c, 0)
		c.Write(p, 0, 4096) // hot chunk: modified after pre-copy
		st := s.ChkptAll(p)
		if st.ChunksCopied != 1 {
			t.Fatalf("modified-after-precopy chunk not recopied: %+v", st)
		}
		// Total data moved exceeds the checkpoint size: pre-copy did extra
		// work — the cost the DCPCP predictor exists to avoid.
		total := s.Counters.Get("precopy_bytes") + s.Counters.Get("ckpt_bytes")
		if total != 40*mem.MB {
			t.Fatalf("total copied = %d, want 40MB", total)
		}
	})
}

func TestStoreDuringStageRedirtiesChunk(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "hot", 400*mem.MB, true)
		c.WriteAll(p)
		// Background pre-copy takes ~0.2s; write into the chunk mid-copy.
		copier := p.Env().Go("copier", func(q *sim.Proc) {
			s.PreCopyChunk(q, c, 0)
		})
		p.Sleep(50 * time.Millisecond)
		if err := c.Write(p, 0, 4096); err != nil {
			t.Fatal(err)
		}
		p.Join(copier)
		if !c.Dirty() {
			t.Fatal("store during an in-flight stage was not observed; the chunk must stay dirty")
		}
		st := s.ChkptAll(p)
		if st.ChunksCopied != 1 {
			t.Fatalf("checkpoint did not recopy the raced chunk: %+v", st)
		}
	})
}

func TestForceFullCopiesCleanChunks(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "a", 10*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		st := s.ChkptAllForce(p)
		if st.ChunksCopied != 1 || st.BytesCopied != 10*mem.MB {
			t.Fatalf("ChkptAllForce stats = %+v, want full copy", st)
		}
		if c.Version != 2 {
			t.Fatalf("version = %d, want 2", c.Version)
		}
	})
}

func TestAdoptRemoteInstallsDataAndRedirties(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "a", mem.MB, true)
		data := make([]byte, len(c.Data()))
		for i := range data {
			data[i] = 0x5A
		}
		if err := s.AdoptRemote(p, c, data, 7); err != nil {
			t.Fatal(err)
		}
		if !c.Restored || c.Version != 7 || !c.Dirty() {
			t.Fatalf("adopt state: restored=%v v=%d dirty=%v", c.Restored, c.Version, c.Dirty())
		}
		if c.Data()[0] != 0x5A {
			t.Fatal("adopted data not installed")
		}
		oversize := make([]byte, c.Size+1)
		if err := s.AdoptRemote(p, c, oversize, 8); err == nil {
			t.Fatal("oversized adoption succeeded")
		}
	})
}

func TestChkptID(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		a, _ := s.NVAlloc(p, "a", 10*mem.MB, true)
		b, _ := s.NVAlloc(p, "b", 10*mem.MB, true)
		a.WriteAll(p)
		b.WriteAll(p)
		st, err := s.ChkptID(p, a.ID)
		if err != nil || st.ChunksCopied != 1 {
			t.Fatalf("ChkptID: %+v err=%v", st, err)
		}
		if a.Version != 1 || b.Version != 0 {
			t.Fatalf("versions a=%d b=%d, want 1,0", a.Version, b.Version)
		}
		if _, err := s.ChkptID(p, 999999); !errors.Is(err, ErrNoChunk) {
			t.Fatalf("unknown id err = %v", err)
		}
	})
}

func TestWriteOutOfRange(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "a", 1000, true)
		if err := c.Write(p, 900, 200); err == nil {
			t.Fatal("out-of-range write succeeded")
		}
		if err := c.Write(p, -1, 10); err == nil {
			t.Fatal("negative offset write succeeded")
		}
		if err := c.Write(p, 0, 0); err != nil {
			t.Fatalf("zero-length write: %v", err)
		}
	})
}

func TestRestartRestoresCommittedData(t *testing.T) {
	r := newRig()
	var want []byte
	r.env.Go("life1", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, _ := s.NVAlloc(p, "field", 5*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		c.Write(p, 0, mem.MB) // dirty again, NOT checkpointed
		want = append([]byte(nil), nil...)
		// The restore must produce the committed content, not the dirty one;
		// grab the staged payload as ground truth.
		data, ok := s.StagedData(p, c.ID)
		if !ok {
			t.Error("no staged data")
		}
		want = append([]byte(nil), data...)
		s.Proc().Exit()
		r.k.SoftReset()
	})
	r.env.Run()
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, err := s.NVAlloc(p, "field", 5*mem.MB, true)
		if err != nil {
			t.Error(err)
			return
		}
		if !c.Restored || c.Version != 1 {
			t.Errorf("restored=%v version=%d", c.Restored, c.Version)
		}
		for i := range want {
			if c.Data()[i] != want[i] {
				t.Errorf("restored byte %d = %x, want %x", i, c.Data()[i], want[i])
				return
			}
		}
		if c.Dirty() {
			t.Error("freshly restored chunk should be clean")
		}
	})
	r.env.Run()
}

func TestRestartWithoutCheckpointStartsFresh(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "never-checkpointed", 5*mem.MB, true)
		c.WriteAll(p)
		// no ChkptAll
	})
	r.k.SoftReset()
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, err := s.NVAlloc(p, "never-checkpointed", 5*mem.MB, true)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Restored {
			t.Error("chunk restored without a committed checkpoint")
		}
	})
	r.env.Run()
}

func TestRestartSizeMismatchIgnoresOldData(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "field", 5*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
	})
	r.k.SoftReset()
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, err := s.NVAlloc(p, "field", 8*mem.MB, true) // problem size changed
		if err != nil {
			t.Error(err)
			return
		}
		if c.Restored {
			t.Error("size-mismatched chunk must not restore")
		}
	})
	r.env.Run()
}

func TestCrashMidCheckpointRevertsToPreviousVersion(t *testing.T) {
	r := newRig()
	var v1 []byte
	r.env.Go("life1", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, _ := s.NVAlloc(p, "field", 50*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		data, _ := s.StagedData(p, c.ID)
		v1 = append([]byte(nil), data...)
		// Second checkpoint: stage the new data but crash before commit —
		// PreCopyChunk stages without flipping the commit record.
		c.WriteAll(p)
		s.PreCopyChunk(p, c, 0)
		p.KillSelf() // crash before ChkptAll could commit
	})
	r.env.Run()
	r.k.SoftReset()
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, err := s.NVAlloc(p, "field", 50*mem.MB, true)
		if err != nil {
			t.Error(err)
			return
		}
		if !c.Restored || c.Version != 1 {
			t.Errorf("restored=%v version=%d, want v1", c.Restored, c.Version)
			return
		}
		for i := range v1 {
			if c.Data()[i] != v1[i] {
				t.Error("recovered data is not the committed version")
				return
			}
		}
	})
	r.env.Run()
}

func TestSingleVersionCrashMidStageLosesLocalCopy(t *testing.T) {
	e := sim.NewEnv()
	k := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB))
	e.Go("life1", func(p *sim.Proc) {
		s := NewStore(k.Attach("rank0"), Options{SingleVersion: true})
		c, _ := s.NVAlloc(p, "field", 50*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		c.WriteAll(p)
		// Begin restaging over the only copy, then crash mid-operation.
		p.Env().Go("crasher", func(q *sim.Proc) {
			q.Sleep(time.Millisecond)
			p.Kill()
		})
		s.ChkptAll(p)
		t.Error("checkpoint survived the crash")
	})
	e.Run()
	k.SoftReset()
	e.Go("life2", func(p *sim.Proc) {
		s := NewStore(k.Attach("rank0"), Options{SingleVersion: true})
		c, err := s.NVAlloc(p, "field", 50*mem.MB, true)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Restored {
			t.Error("single-version mode restored a torn checkpoint")
		}
	})
	e.Run()
}

func TestLazyRestoreDefersAndVerifiesOnRead(t *testing.T) {
	r := newRig()
	var want []byte
	r.env.Go("life1", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, _ := s.NVAlloc(p, "field", 100*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		data, _ := s.StagedData(p, c.ID)
		want = append([]byte(nil), data...)
	})
	r.env.Run()
	r.k.SoftReset()
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{LazyRestore: true})
		allocStart := p.Now()
		c, err := s.NVAlloc(p, "field", 100*mem.MB, true)
		if err != nil {
			t.Error(err)
			return
		}
		allocTime := p.Now() - allocStart
		if !c.Restored || !c.RestorePending() {
			t.Errorf("restored=%v pending=%v, want lazy restore armed", c.Restored, c.RestorePending())
		}
		// Allocation must be near-instant: no 100MB copy yet.
		if allocTime > time.Millisecond {
			t.Errorf("lazy NVAlloc took %v, want ~0", allocTime)
		}
		// First read materializes: pays the copy and verifies content.
		readStart := p.Now()
		if err := c.Read(p, 0, 4096); err != nil {
			t.Error(err)
			return
		}
		readTime := p.Now() - readStart
		if readTime < 5*time.Millisecond {
			t.Errorf("materializing read took %v, want a real copy", readTime)
		}
		if c.RestorePending() {
			t.Error("still pending after read")
		}
		for i := range want {
			if c.Data()[i] != want[i] {
				t.Error("lazy-restored data differs from committed checkpoint")
				return
			}
		}
		if got := s.Counters.Get("lazy_restores"); got != 1 {
			t.Errorf("lazy_restores = %d", got)
		}
	})
	r.env.Run()
}

func TestLazyRestoreSkippedOnFullOverwrite(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "field", 100*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
	})
	r.k.SoftReset()
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{LazyRestore: true})
		c, _ := s.NVAlloc(p, "field", 100*mem.MB, true)
		start := p.Now()
		// The application discards the old state: overwrite everything.
		if err := c.WriteAll(p); err != nil {
			t.Error(err)
			return
		}
		// Only fault/protect costs — no 100MB copy.
		if took := p.Now() - start; took > time.Millisecond {
			t.Errorf("full overwrite of lazy chunk took %v, want no copy", took)
		}
		if got := s.Counters.Get("lazy_restores_skipped"); got != 1 {
			t.Errorf("lazy_restores_skipped = %d", got)
		}
		// The overwritten data must checkpoint and be the new content.
		st := s.ChkptAll(p)
		if st.ChunksCopied != 1 {
			t.Errorf("post-overwrite checkpoint: %+v", st)
		}
	})
	r.env.Run()
}

func TestLazyRestorePartialWriteMaterializesFirst(t *testing.T) {
	r := newRig()
	var want []byte
	r.env.Go("life1", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		data, _ := s.StagedData(p, c.ID)
		want = append([]byte(nil), data...)
	})
	r.env.Run()
	r.k.SoftReset()
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{LazyRestore: true})
		c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
		// A partial write must land on top of the restored bytes.
		if err := c.Write(p, 0, 100); err != nil {
			t.Error(err)
			return
		}
		// Bytes far from the written range must be the checkpoint's.
		lo, _ := c.payloadRange(5*mem.MB, 100)
		for i := lo; i < lo+100 && i < len(want); i++ {
			if c.Data()[i] != want[i] {
				t.Error("partial write lost restored bytes")
				return
			}
		}
	})
	r.env.Run()
}

func TestForcedCheckpointMaterializesLazyChunk(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
	})
	r.k.SoftReset()
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{LazyRestore: true})
		c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
		st := s.ChkptAllForce(p)
		if st.ChunksCopied != 1 {
			t.Errorf("forced checkpoint: %+v", st)
		}
		if c.RestorePending() {
			t.Error("pending restore survived a forced stage")
		}
	})
	r.env.Run()
}

func TestNVDeleteReleasesEverything(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "tmp", 30*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		if err := s.NVDelete(p, c); err != nil {
			t.Fatal(err)
		}
		if s.ChunkByName("tmp") != nil {
			t.Fatal("chunk still listed")
		}
		if err := s.NVDelete(p, c); !errors.Is(err, ErrNoChunk) {
			t.Fatalf("double delete err = %v", err)
		}
		if st := s.Alloc().Stats(); st.Allocated != 0 {
			t.Fatalf("NVM heap leak: %+v", st)
		}
		// Deleted chunks must not restore after restart.
		if s.HasCommitted(p, "tmp") {
			t.Fatal("commit record survived delete")
		}
	})
	if r.k.DRAM.Used != 0 {
		t.Fatalf("DRAM leak: %d", r.k.DRAM.Used)
	}
}

func TestNVAttachBehavesLikePersistentChunk(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, err := s.NVAttach(p, "lmp-array", 10*mem.MB)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Attached || !c.Persistent {
			t.Fatalf("attach flags: %+v", c)
		}
		c.WriteAll(p)
		st := s.ChkptAll(p)
		if st.ChunksCopied != 1 {
			t.Fatalf("attached chunk not checkpointed: %+v", st)
		}
	})
}

func TestNVReallocGrowPreservesDataAndRedirties(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "grow", 1000, true)
		c.WriteAll(p)
		first := append([]byte(nil), c.Data()...)
		s.ChkptAll(p)
		if err := s.NVRealloc(p, c, 2000); err != nil {
			t.Fatal(err)
		}
		if c.Size != 2000 {
			t.Fatalf("Size = %d", c.Size)
		}
		for i := range first {
			if c.Data()[i] != first[i] {
				t.Fatal("realloc lost payload prefix")
			}
		}
		if !c.Dirty() {
			t.Fatal("realloc'd chunk must be dirty")
		}
		st := s.ChkptAll(p)
		if st.BytesCopied != 2000 {
			t.Fatalf("post-realloc checkpoint copied %d", st.BytesCopied)
		}
	})
}

func TestSnapshotReflectsState(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		a, _ := s.NVAlloc(p, "a", mem.MB, true)
		s.NVAlloc(p, "scratch", mem.MB, false)
		a.WriteAll(p)
		s.PreCopyChunk(p, a, 0)
		snap := s.Snapshot(p)
		if len(snap) != 1 {
			t.Fatalf("snapshot has %d entries, want 1 (persistent only)", len(snap))
		}
		cs := snap[0]
		if cs.Name != "a" || !cs.StagePending || cs.ModSeq != cs.CleanSeq {
			t.Fatalf("snapshot = %+v", cs)
		}
	})
}

func TestOnModifyCallbackFires(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "a", mem.MB, true)
		events := 0
		s.OnModify(func(got *Chunk) {
			if got != c {
				t.Error("callback got wrong chunk")
			}
			events++
		})
		c.WriteAll(p)
		s.ChkptAll(p) // re-protects
		c.Write(p, 0, 10)
		c.Write(p, 10, 10) // same interval: no second fault
		if events != 1 {
			t.Fatalf("modify events = %d, want 1 (chunk was unprotected at first write)", events)
		}
	})
}

func TestStagedDataChecksumRoundTrip(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		c, _ := s.NVAlloc(p, "a", mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
		data, ok := s.StagedData(p, c.ID)
		if !ok {
			t.Fatal("no staged data after checkpoint")
		}
		snap := s.Snapshot(p)
		if checksum(data, c.Size) != snap[0].Checksum {
			t.Fatal("checksum mismatch between staged data and snapshot")
		}
	})
}

func TestDirtyLocalOrdering(t *testing.T) {
	newRig().run(t, func(p *sim.Proc, s *Store) {
		names := []string{"z", "a", "m"}
		for _, n := range names {
			c, _ := s.NVAlloc(p, n, mem.MB, true)
			c.WriteAll(p)
		}
		dirty := s.DirtyLocal()
		if len(dirty) != 3 {
			t.Fatalf("dirty count = %d", len(dirty))
		}
		for i, c := range dirty {
			if c.Name != names[i] {
				t.Fatalf("dirty order %v, want allocation order %v", c.Name, names[i])
			}
		}
	})
}
