package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// TestRandomOperationSequences drives a store through seeded random
// operation sequences — writes, pre-copies, checkpoints, process restarts —
// and checks the library's core guarantees at every restart:
//
//  1. a chunk restores if and only if it has a committed version;
//  2. restored content equals the most recently committed staged payload;
//  3. committed versions never move backwards;
//  4. a clean chunk is never re-copied by a checkpoint.
func TestRandomOperationSequences(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomOps(t, seed)
		})
	}
}

func runRandomOps(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	e := sim.NewEnv()
	k := nvmkernel.New(e, mem.NewDRAM(e, 32*mem.GB), mem.NewPCM(e, 32*mem.GB))

	type oracle struct {
		committed map[string][]byte // last committed payload per chunk name
		versions  map[string]uint64
	}
	o := oracle{committed: make(map[string][]byte), versions: make(map[string]uint64)}

	names := []string{"a", "b", "c", "d"}
	sizes := map[string]int64{"a": 3 * mem.MB, "b": 700 * mem.KB, "c": 12 * mem.MB, "d": 40 * mem.KB}
	lazy := seed%2 == 0 // alternate lazy/eager restores across seeds

	const lives = 5
	for life := 0; life < lives; life++ {
		e.Go(fmt.Sprintf("life%d", life), func(p *sim.Proc) {
			s := NewStore(k.Attach("rank0"), Options{LazyRestore: lazy})
			chunks := make(map[string]*Chunk, len(names))
			for _, n := range names {
				c, err := s.NVAlloc(p, n, sizes[n], true)
				if err != nil {
					t.Errorf("life %d alloc %s: %v", life, n, err)
					return
				}
				chunks[n] = c

				// Invariant 1: restores happen iff a commit exists.
				_, hasCommit := o.committed[n]
				if c.Restored != hasCommit {
					t.Errorf("life %d: %s restored=%v but oracle commit=%v", life, n, c.Restored, hasCommit)
				}
				// Invariant 2: restored content matches the oracle.
				if hasCommit {
					if err := c.Read(p, 0, c.Size); err != nil { // materialize if lazy
						t.Errorf("life %d read %s: %v", life, n, err)
						return
					}
					want := o.committed[n]
					for i := range want {
						if c.Data()[i] != want[i] {
							t.Errorf("life %d: %s restored content differs at byte %d", life, n, i)
							break
						}
					}
					// Invariant 3: version monotonic.
					if c.Version < o.versions[n] {
						t.Errorf("life %d: %s version went back: %d < %d", life, n, c.Version, o.versions[n])
					}
				}
			}

			ops := 10 + rng.Intn(20)
			for i := 0; i < ops; i++ {
				name := names[rng.Intn(len(names))]
				c := chunks[name]
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // partial write
					off := rng.Int63n(c.Size)
					n := rng.Int63n(c.Size-off) + 1
					if err := c.Write(p, off, n); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				case 4, 5: // full rewrite
					if err := c.WriteAll(p); err != nil {
						t.Errorf("writeall: %v", err)
						return
					}
				case 6: // background pre-copy
					s.PreCopyChunk(p, c, 0)
				case 7, 8: // coordinated checkpoint
					before := make(map[string]bool, len(chunks))
					for n2, c2 := range chunks {
						before[n2] = c2.Dirty()
					}
					st := s.ChkptAll(p)
					// Invariant 4: only dirty chunks are copied.
					wantCopies := 0
					for _, d := range before {
						if d {
							wantCopies++
						}
					}
					if st.ChunksCopied != wantCopies {
						t.Errorf("ckpt copied %d chunks, oracle says %d dirty", st.ChunksCopied, wantCopies)
					}
					for n2, c2 := range chunks {
						data, ok := s.StagedData(p, c2.ID)
						if c2.Committed() && ok {
							o.committed[n2] = append([]byte(nil), data...)
							o.versions[n2] = c2.Version
						}
					}
				case 9: // single-chunk checkpoint
					if _, err := s.ChkptID(p, c.ID); err != nil {
						t.Errorf("chkptid: %v", err)
						return
					}
					if data, ok := s.StagedData(p, c.ID); ok {
						o.committed[name] = append([]byte(nil), data...)
						o.versions[name] = c.Version
					}
				}
			}
		})
		e.Run()
		k.SoftReset()
	}
}

func TestPayloadRangeProperty(t *testing.T) {
	e := sim.NewEnv()
	k := nvmkernel.New(e, mem.NewDRAM(e, 8*mem.GB), mem.NewPCM(e, 8*mem.GB))
	var c *Chunk
	e.Go("setup", func(p *sim.Proc) {
		s := NewStore(k.Attach("rank0"), Options{})
		c, _ = s.NVAlloc(p, "x", 16*mem.MB, true)
	})
	e.Run()

	f := func(off32, n32 uint32) bool {
		off := int64(off32) % c.Size
		n := int64(n32)%(c.Size-off) + 1
		lo, ln := c.payloadRange(off, n)
		// The mapped range is always within the payload and non-empty for
		// non-empty writes.
		return lo >= 0 && ln >= 1 && lo+ln <= len(c.Data())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumProperties(t *testing.T) {
	// Same data+size -> same sum; differing size or any byte flip -> (with
	// overwhelming probability) different sum.
	f := func(data []byte, size32 uint32) bool {
		size := int64(size32)
		a := checksum(data, size)
		if checksum(data, size) != a {
			return false
		}
		if checksum(data, size+1) == a {
			return false
		}
		if len(data) > 0 {
			mutated := append([]byte(nil), data...)
			mutated[0] ^= 0xFF
			if checksum(mutated, size) == a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGenIDUniquenessProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return GenID(a) == GenID(b)
		}
		return GenID(a) != GenID(b) // collisions astronomically unlikely
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
