package core

import (
	"testing"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// FuzzChunkWriteCheckpointRestore decodes the input as write-ranges and
// checkpoint points against one chunk, then restarts the process and checks
// that the restored contents match the last committed payload exactly. Each
// 4-byte record is (op, offLo, offHi, len16): op's low two bits select
// write / full-rewrite / checkpoint.
func FuzzChunkWriteCheckpointRestore(f *testing.F) {
	f.Add([]byte{0, 10, 0, 50, 2, 0, 0, 0, 0, 99, 1, 7})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{0, 1, 2, 3, 0, 4, 5, 6, 2, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := sim.NewEnv()
		k := nvmkernel.New(e, mem.NewDRAM(e, 8*mem.GB), mem.NewPCM(e, 8*mem.GB))
		const size = 256 * 1024 // fully real payload
		var committed []byte
		e.Go("life1", func(p *sim.Proc) {
			s := NewStore(k.Attach("rank0"), Options{PayloadCap: size})
			c, err := s.NVAlloc(p, "x", size, true)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i+3 < len(data) && i < 4*128; i += 4 {
				switch data[i] & 3 {
				case 0, 3:
					off := (int64(data[i+1]) | int64(data[i+2])<<8) * 7 % size
					n := int64(data[i+3])*137%(size-off) + 1
					if err := c.Write(p, off, n); err != nil {
						t.Fatal(err)
					}
				case 1:
					if err := c.WriteAll(p); err != nil {
						t.Fatal(err)
					}
				case 2:
					s.ChkptAll(p)
					if d, ok := s.StagedData(p, c.ID); ok {
						committed = append(committed[:0], d...)
					}
				}
			}
		})
		e.Run()
		if committed == nil {
			return // nothing was ever checkpointed
		}
		k.SoftReset()
		e.Go("life2", func(p *sim.Proc) {
			s := NewStore(k.Attach("rank0"), Options{PayloadCap: size})
			c, err := s.NVAlloc(p, "x", size, true)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Restored {
				t.Fatal("committed chunk did not restore")
			}
			for i := range committed {
				if c.Data()[i] != committed[i] {
					t.Fatalf("restored byte %d differs", i)
				}
			}
		})
		e.Run()
	})
}
