package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
)

// ckptOneChunk runs a first process lifetime that allocates, writes, and
// locally commits one 10MB chunk named "field".
func ckptOneChunk(r *rig) {
	r.env.Go("life1", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, _ := s.NVAlloc(p, "field", 10*mem.MB, true)
		c.WriteAll(p)
		s.ChkptAll(p)
	})
	r.env.Run()
	r.k.SoftReset()
}

func TestCorruptCommittedNamesVictimsDeterministically(t *testing.T) {
	r := newRig()
	ckptOneChunk(r)
	victims := CorruptCommitted(r.k, rand.New(rand.NewSource(1)), 1, false)
	if len(victims) != 1 {
		t.Fatalf("corrupted %d chunks, want 1", len(victims))
	}
	if victims[0].Proc != "rank0" || !strings.HasPrefix(victims[0].Key(), "rank0/") {
		t.Fatalf("victim = %+v, want proc rank0", victims[0])
	}
	if victims[0].Seq == 0 {
		t.Fatalf("victim %+v carries no staged generation", victims[0])
	}
	// Asking for more victims than exist corrupts only what is there.
	if extra := CorruptCommitted(r.k, rand.New(rand.NewSource(2)), 99, true); len(extra) != 1 {
		t.Fatalf("second pass corrupted %d chunks, want 1", len(extra))
	}
}

func TestCorruptionSurfacesAsChecksumErrorOnEagerRestore(t *testing.T) {
	r := newRig()
	ckptOneChunk(r)
	CorruptCommitted(r.k, rand.New(rand.NewSource(1)), 1, false)
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		if _, err := s.NVAlloc(p, "field", 10*mem.MB, true); !errors.Is(err, ErrChecksum) {
			t.Errorf("strict restore err = %v, want ErrChecksum", err)
		}
	})
	r.env.Run()
}

// Satellite: the lazy-restore path must also catch corruption — deferred to
// the materializing read, not skipped.
func TestCorruptionSurfacesAsChecksumErrorOnLazyRead(t *testing.T) {
	r := newRig()
	ckptOneChunk(r)
	CorruptCommitted(r.k, rand.New(rand.NewSource(1)), 1, true)
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{LazyRestore: true})
		c, err := s.NVAlloc(p, "field", 10*mem.MB, true)
		if err != nil {
			t.Errorf("lazy NVAlloc err = %v, want deferred verification", err)
			return
		}
		if !c.RestorePending() {
			t.Error("lazy restore not armed over corrupted data")
		}
		if err := c.Read(p, 0, 4096); !errors.Is(err, ErrChecksum) {
			t.Errorf("materializing read err = %v, want ErrChecksum", err)
		}
	})
	r.env.Run()
}

func TestSalvageCorruptLeavesChunkUnrestoredForCascade(t *testing.T) {
	r := newRig()
	ckptOneChunk(r)
	CorruptCommitted(r.k, rand.New(rand.NewSource(1)), 1, false)
	r.env.Go("life2", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{SalvageCorrupt: true})
		c, err := s.NVAlloc(p, "field", 10*mem.MB, true)
		if err != nil {
			t.Errorf("salvage NVAlloc err = %v, want nil", err)
			return
		}
		if c.Restored {
			t.Error("corrupted chunk reported as restored under salvage")
		}
		if got := s.Counters.Get("restore_checksum_errors"); got != 1 {
			t.Errorf("restore_checksum_errors = %d, want 1", got)
		}
		// The damaged version's commit record is gone: a fresh lifetime sees
		// a clean allocation, not a second checksum failure.
		c.WriteAll(p)
		s.ChkptAll(p)
	})
	r.env.Run()
	r.k.SoftReset()
	r.env.Go("life3", func(p *sim.Proc) {
		s := NewStore(r.k.Attach("rank0"), Options{})
		c, err := s.NVAlloc(p, "field", 10*mem.MB, true)
		if err != nil {
			t.Errorf("post-salvage restore err = %v", err)
			return
		}
		if !c.Restored {
			t.Error("re-checkpointed chunk did not restore after salvage")
		}
	})
	r.env.Run()
}
