// Package core implements the NVM-checkpoint user library — the paper's
// Table III interface. Applications allocate checkpoint variables as chunks:
// each chunk has a DRAM working copy the application computes on (shadow
// buffering, Figure 3) and up to two persistent NVM versions (a committed
// checkpoint and an in-progress one), placed in the process's NVM heap by the
// jemalloc-style allocator. Chunk-granularity write protection detects
// modifications: the first store to a clean chunk takes one protection fault,
// marks the whole chunk dirty, and unprotects it — the cheap dirty tracking
// that makes pre-copy affordable (Section IV).
//
// A local checkpoint (ChkptAll) stages every dirty persistent chunk into the
// in-progress NVM version — charging the DRAM→NVM copy to the NVM device's
// shared write bandwidth — flushes caches, then atomically flips commit
// records, so a crash mid-checkpoint always recovers the previous committed
// version. Pre-copy engines stage chunks ahead of time through the same path
// (PreCopyChunk), leaving only re-dirtied chunks for checkpoint time.
package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmalloc"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Library errors.
var (
	ErrChunkExists = errors.New("core: chunk already allocated")
	ErrNoChunk     = errors.New("core: no such chunk")
	ErrChecksum    = errors.New("core: checkpoint checksum mismatch")
	ErrNoCommitted = errors.New("core: no committed checkpoint version")
	ErrBadDims     = errors.New("core: non-positive dimensions")
)

// GenID derives a stable chunk identifier from a variable name — the paper's
// genid(varname).
func GenID(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// DefaultPayloadCap bounds the real bytes backing each chunk. Timing always
// uses the full virtual size; the payload is what checksums and restore
// verification actually check. Unit tests may set Options.PayloadCap to the
// chunk size for fully real contents.
const DefaultPayloadCap = 64 * 1024

// Options configures a Store.
type Options struct {
	// PayloadCap caps the real payload bytes per chunk (0 = DefaultPayloadCap).
	PayloadCap int
	// SingleVersion keeps only one NVM version per chunk — the paper's
	// degraded mode when local NVM space is constrained: a crash during
	// checkpointing then loses the local copy and recovery must fall back
	// to the remote node.
	SingleVersion bool
	// NoChecksum disables the optional per-chunk checksum verified on
	// restart (it is on by default).
	NoChecksum bool
	// LazyRestore defers the NVM→DRAM copy of restored chunks until first
	// access — the recovery optimization the paper leaves as future work
	// ("read speeds of NVMs are comparable to DRAM"): the application
	// resumes immediately and pays per-chunk restore cost on touch. A
	// chunk whose first post-restart access overwrites it entirely never
	// pays the copy at all.
	LazyRestore bool
	// SalvageCorrupt turns a restore-time checksum mismatch from a fatal
	// error into a degraded-mode signal: the damaged version's commit
	// record is cleared and the chunk is left un-restored, so the caller's
	// recovery cascade can fetch it from the next tier (buddy, then PFS)
	// instead of failing the restart. Lazy materialization stays strict —
	// by first touch the application is already running and there is no
	// cascade to fall back on.
	SalvageCorrupt bool
}

// Store is one process's (rank's) checkpoint library instance.
type Store struct {
	env   *sim.Env
	kproc *nvmkernel.Process
	alloc *nvmalloc.Allocator
	opts  Options

	chunks map[uint64]*Chunk
	order  []uint64 // allocation order, for deterministic iteration

	onModify []func(*Chunk)

	// rec publishes events and registry metrics; nil outside instrumented
	// runs (every method on a nil recorder is a no-op).
	rec *obs.Recorder
	// ckptRound numbers this store's coordinated checkpoints for the event
	// stream's per-round grouping.
	ckptRound int

	// Counters: "precopy_bytes", "ckpt_bytes", "chunks_copied",
	// "chunks_skipped", "commits", "restores". The obs metrics registry
	// (when a Recorder is attached) supersedes these for machine-readable
	// output; they remain the zero-dependency in-process view.
	Counters trace.Counters
}

// SetRecorder attaches the observability handle this store publishes
// checkpoint events and metrics through. Call it before allocations so
// restore events are captured.
func (s *Store) SetRecorder(r *obs.Recorder) { s.rec = r }

// count bumps a named counter in both the legacy in-process set and the
// attached metrics registry.
func (s *Store) count(name string, delta int64) {
	s.Counters.Add(name, delta)
	s.rec.Add(name, delta)
}

// NewStore builds a checkpoint library instance for the attached kernel
// process.
func NewStore(kproc *nvmkernel.Process, opts Options) *Store {
	if opts.PayloadCap == 0 {
		opts.PayloadCap = DefaultPayloadCap
	}
	// A restarted process re-initializes its NVM heap: stale heap regions
	// from the previous incarnation are unmapped (their capacity would
	// otherwise leak), while checkpoint data and commit records live in the
	// kernel's persistent metadata and survive untouched.
	for _, id := range kproc.NVMRegions() {
		if strings.HasPrefix(id, "ckpt-heap/") {
			_ = kproc.NVMUnmap(nil, id)
		}
	}
	return &Store{
		env:    kproc.Kernel().Env(),
		kproc:  kproc,
		alloc:  nvmalloc.New(kproc, "ckpt-heap"),
		opts:   opts,
		chunks: make(map[uint64]*Chunk),
	}
}

// Kernel returns the node kernel this store runs on.
func (s *Store) Kernel() *nvmkernel.Kernel { return s.kproc.Kernel() }

// Proc returns the kernel process identity.
func (s *Store) Proc() *nvmkernel.Process { return s.kproc }

// Alloc returns the underlying NVM heap allocator (for inspection).
func (s *Store) Alloc() *nvmalloc.Allocator { return s.alloc }

// OnModify registers a callback fired on the first modification of a clean
// chunk (i.e. on each chunk-level protection fault). Pre-copy engines use it
// to maintain dirty sets and prediction counters.
func (s *Store) OnModify(fn func(*Chunk)) { s.onModify = append(s.onModify, fn) }

// Chunks returns all chunks in allocation order.
func (s *Store) Chunks() []*Chunk {
	out := make([]*Chunk, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.chunks[id])
	}
	return out
}

// Chunk returns the chunk with the given id, or nil.
func (s *Store) Chunk(id uint64) *Chunk { return s.chunks[id] }

// ChunkByName returns the chunk allocated under name, or nil.
func (s *Store) ChunkByName(name string) *Chunk { return s.chunks[GenID(name)] }

// DirtyLocal returns persistent chunks modified since their last staging
// (pre-copy or checkpoint), in allocation order.
func (s *Store) DirtyLocal() []*Chunk {
	var out []*Chunk
	for _, id := range s.order {
		if c := s.chunks[id]; c.Persistent && c.needsStage() {
			out = append(out, c)
		}
	}
	return out
}

// CheckpointSize returns the total virtual size of persistent chunks — the
// per-process checkpoint data size D of the performance model.
func (s *Store) CheckpointSize() int64 {
	var total int64
	for _, id := range s.order {
		if c := s.chunks[id]; c.Persistent {
			total += c.Size
		}
	}
	return total
}

// NVAlloc allocates (or, on restart, recovers) a checkpoint chunk — the
// paper's nvalloc(id, size, pflg). With persist=true the chunk participates
// in checkpoints, and if a committed version already exists in this node's
// NVM (from before a restart) its contents are restored into the fresh DRAM
// working copy and verified against the stored checksum.
func (s *Store) NVAlloc(p *sim.Proc, name string, size int64, persist bool) (*Chunk, error) {
	id := GenID(name)
	if _, ok := s.chunks[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrChunkExists, name)
	}
	if size <= 0 {
		return nil, fmt.Errorf("%w: %s size %d", ErrBadDims, name, size)
	}
	c, err := s.newChunk(p, id, name, size, persist, false)
	if err != nil {
		return nil, err
	}
	if persist {
		if err := s.tryRestore(p, c); err != nil {
			return nil, err
		}
	}
	s.chunks[id] = c
	s.order = append(s.order, id)
	return c, nil
}

// NV2DAlloc is the Fortran-style 2D allocation wrapper: a dim1 x dim2 array
// of elem-byte elements.
func (s *Store) NV2DAlloc(p *sim.Proc, name string, dim1, dim2, elem int64) (*Chunk, error) {
	if dim1 <= 0 || dim2 <= 0 || elem <= 0 {
		return nil, fmt.Errorf("%w: %s %dx%dx%d", ErrBadDims, name, dim1, dim2, elem)
	}
	return s.NVAlloc(p, name, dim1*dim2*elem, true)
}

// NVAttach creates a shadow NVM chunk for memory the application already
// manages itself — the lazy path for codes (like LAMMPS) with custom memory
// management where checkpoint sizes are not statically known.
func (s *Store) NVAttach(p *sim.Proc, name string, size int64) (*Chunk, error) {
	id := GenID(name)
	if _, ok := s.chunks[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrChunkExists, name)
	}
	c, err := s.newChunk(p, id, name, size, true, true)
	if err != nil {
		return nil, err
	}
	s.chunks[id] = c
	s.order = append(s.order, id)
	return c, nil
}

// NVRealloc grows (or shrinks) a chunk, preserving the DRAM payload prefix
// and discarding staged-but-uncommitted NVM data (the next checkpoint
// restages at the new size).
func (s *Store) NVRealloc(p *sim.Proc, c *Chunk, newSize int64) error {
	if newSize <= 0 {
		return fmt.Errorf("%w: realloc %s to %d", ErrBadDims, c.Name, newSize)
	}
	if newSize == c.Size {
		return nil
	}
	for i := 0; i < c.slots(); i++ {
		if c.nvmExtent[i].Size != 0 {
			if err := s.alloc.Free(p, c.nvmExtent[i].Addr); err != nil {
				return err
			}
		}
		ext, err := s.alloc.Alloc(p, newSize)
		if err != nil {
			return err
		}
		c.nvmExtent[i] = ext
	}
	oldData := c.dram.Data
	if err := s.kproc.DRAMFree(c.dramID()); err != nil {
		return err
	}
	c.Size = newSize
	dram, err := s.kproc.DRAMAlloc(c.dramID(), newSize, s.payloadLen(newSize))
	if err != nil {
		return err
	}
	copy(dram.Data, oldData)
	c.dram = dram
	c.installFaultHandler()
	c.stagePending = false
	c.markDirty(p)
	return nil
}

// NVDelete removes a chunk and all its NVM state ('nvdelete').
func (s *Store) NVDelete(p *sim.Proc, c *Chunk) error {
	if _, ok := s.chunks[c.ID]; !ok {
		return fmt.Errorf("%w: %s", ErrNoChunk, c.Name)
	}
	delete(s.chunks, c.ID)
	for i, id := range s.order {
		if id == c.ID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if err := s.kproc.DRAMFree(c.dramID()); err != nil {
		return err
	}
	for i := 0; i < c.slots(); i++ {
		if c.nvmExtent[i].Size != 0 {
			if err := s.alloc.Free(p, c.nvmExtent[i].Addr); err != nil {
				return err
			}
		}
	}
	k := s.kproc.Kernel()
	k.MetaLock.Lock(p)
	s.kproc.SetMeta(p, c.metaKey(), nil)
	for i := 0; i < c.slots(); i++ {
		s.kproc.SetMeta(p, c.dataKey(i), nil)
	}
	k.MetaLock.Unlock(p)
	return nil
}

// newChunk builds a chunk: DRAM working region plus NVM heap extents for its
// version slots.
func (s *Store) newChunk(p *sim.Proc, id uint64, name string, size int64, persist, attached bool) (*Chunk, error) {
	c := &Chunk{
		ID:         id,
		Name:       name,
		Size:       size,
		Persistent: persist,
		Attached:   attached,
		store:      s,
		committed:  -1,
	}
	dram, err := s.kproc.DRAMAlloc(c.dramID(), size, s.payloadLen(size))
	if err != nil {
		return nil, err
	}
	c.dram = dram
	if persist {
		for i := 0; i < c.slots(); i++ {
			ext, err := s.alloc.Alloc(p, size)
			if err != nil {
				// Roll back so a failed alloc leaks nothing.
				_ = s.kproc.DRAMFree(c.dramID())
				for j := 0; j < i; j++ {
					_ = s.alloc.Free(p, c.nvmExtent[j].Addr)
				}
				return nil, err
			}
			c.nvmExtent[i] = ext
		}
	}
	c.installFaultHandler()
	return c, nil
}

// payloadLen returns the real payload length for a chunk of the given
// virtual size.
func (s *Store) payloadLen(size int64) int {
	if size < int64(s.opts.PayloadCap) {
		return int(size)
	}
	return s.opts.PayloadCap
}

// notifyModify runs registered modification callbacks.
func (s *Store) notifyModify(c *Chunk) {
	for _, fn := range s.onModify {
		fn(c)
	}
}

// nvmDevice returns the node NVM device.
func (s *Store) nvmDevice() *mem.Device { return s.kproc.Kernel().NVM }

// dramDevice returns the node DRAM device.
func (s *Store) dramDevice() *mem.Device { return s.kproc.Kernel().DRAM }
