package core

import (
	"fmt"
	"hash/fnv"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
)

// commitRecord is the per-chunk durable commit pointer kept in the kernel's
// persistent metadata: which slot holds the committed version, its version
// number, checksum, and size. The flip of this record is the atomic commit
// point of a checkpoint.
type commitRecord struct {
	Slot     int
	Version  uint64
	Checksum uint64
	Size     int64
	// Seq is the modification-sequence generation the committed payload
	// captured (the chunk's cleanSeq at commit) — the causal identity lineage
	// tracing follows across tiers.
	Seq uint64
	// Name is the chunk's variable name, carried so post-mortem inspection
	// (corruption injection, lineage) can name victims without a live Store.
	Name string
}

// CkptStats summarizes one checkpoint operation.
type CkptStats struct {
	// BytesCopied is the data moved DRAM→NVM during this call (pre-copied
	// chunks that stayed clean contribute nothing).
	BytesCopied int64
	// ChunksCopied / ChunksSkipped count chunks staged here vs. already
	// staged (or unmodified since the last commit).
	ChunksCopied  int
	ChunksSkipped int
	// Committed counts chunks whose commit record flipped.
	Committed int
	// Duration is the virtual time the call took.
	Duration time.Duration
}

// stageChunk copies one chunk's DRAM working data into its in-progress NVM
// slot: a bandwidth-charged DRAM→NVM copy of the full virtual size, the real
// payload stored durably, a cache flush, and re-arming of write protection.
// rateCap > 0 throttles the copy (background pre-copy streams).
func (s *Store) stageChunk(p *sim.Proc, c *Chunk, rateCap float64) int64 {
	target := c.targetSlot()
	k := s.kproc.Kernel()
	// Capture the modification sequence and re-arm write protection BEFORE
	// the copy starts: a store landing while the pre-copy is in flight must
	// fault and mark the chunk dirty again, so it is copied once more — the
	// "additional work" for chunks modified just before the checkpoint step
	// that the paper measures as slightly higher pre-copy data volume.
	// Without arming first, a mid-copy store would be silently absorbed or
	// lost depending on timing.
	seqAtStart := c.modSeq
	invalidated := false
	if c.pending != nil {
		// Staging a lazily-restored chunk (forced checkpoints do this):
		// its committed bytes must be in DRAM before they can be re-staged.
		if err := s.materialize(p, c, false); err != nil {
			panic(fmt.Sprintf("core: lazy restore of %s failed during stage: %v", c.Name, err))
		}
	}
	c.Protect(p)
	if c.slots() == 1 && c.committed >= 0 {
		// Single-version mode overwrites the only copy: invalidate the
		// commit record first so a crash mid-stage is detected rather
		// than silently restoring torn data.
		k.MetaLock.Lock(p)
		s.kproc.SetMeta(p, c.metaKey(), nil)
		k.MetaLock.Unlock(p)
		c.committed = -1
		invalidated = true
	}
	if rateCap > 0 {
		mem.CopyCapped(p, s.dramDevice(), s.nvmDevice(), c.Size, rateCap)
	} else {
		mem.Copy(p, s.dramDevice(), s.nvmDevice(), c.Size)
	}
	data := append([]byte(nil), c.dram.Data...)
	k.MetaLock.Lock(p)
	s.kproc.SetMeta(p, c.dataKey(target), data)
	k.MetaLock.Unlock(p)
	// Flush processor caches before the data may be marked consistent.
	p.Sleep(s.nvmDevice().FlushCost(c.Size))
	c.stagedSum = checksum(data, c.Size)
	c.cleanSeq = seqAtStart
	c.stagePending = true
	attrs := map[string]string{"seq": u64str(seqAtStart)}
	if invalidated {
		// Single-version overwrite: the previously committed local copy is
		// gone until the next commit flip (lineage marks the tier invalid).
		attrs["inval"] = "1"
	}
	s.rec.Emit(obs.EvChunkStaged, c.Name, c.Size, attrs)
	s.count("staged_bytes", c.Size)
	s.count("staged_chunks", 1)
	// Protection stays armed from the start of the stage; if a mid-copy
	// store faulted, the chunk is already unprotected and dirty, and the
	// next stage re-arms.
	return c.Size
}

// PreCopyChunk stages a chunk ahead of the coordinated checkpoint if it is
// dirty, returning the bytes copied (0 if it was clean). This is the copy
// that pre-copy engines run in the background, optionally rate-capped.
func (s *Store) PreCopyChunk(p *sim.Proc, c *Chunk, rateCap float64) int64 {
	if !c.Persistent || !c.needsStage() {
		return 0
	}
	n := s.stageChunk(p, c, rateCap)
	s.count("precopy_bytes", n)
	s.count("chunks_precopied", 1)
	return n
}

// ChkptAll is the coordinated local checkpoint — the paper's nvchkptall().
// Every persistent chunk still dirty is staged now (this is the data volume
// pre-copy exists to shrink); then all staged chunks' commit records flip
// atomically under the metadata lock.
func (s *Store) ChkptAll(p *sim.Proc) CkptStats { return s.chkptAll(p, false) }

// ChkptAllForce stages and commits every persistent chunk regardless of
// modification state — a classic coordinated checkpoint without
// NVM-checkpoints' protection-based dirty tracking. It is the 'no pre-copy'
// baseline of Figures 7 and 8 (which is why the baseline moves more data:
// init-only chunks are rewritten every checkpoint).
func (s *Store) ChkptAllForce(p *sim.Proc) CkptStats { return s.chkptAll(p, true) }

func (s *Store) chkptAll(p *sim.Proc, force bool) CkptStats {
	start := p.Now()
	round := s.ckptRound
	s.ckptRound++
	s.rec.Emit(obs.EvCheckpointBegin, "", 0,
		map[string]string{"round": fmt.Sprintf("%d", round)})
	var st CkptStats
	for _, c := range s.Chunks() {
		if !c.Persistent {
			continue
		}
		if force || c.needsStage() {
			st.BytesCopied += s.stageChunk(p, c, 0)
			st.ChunksCopied++
		} else {
			st.ChunksSkipped++
		}
	}
	st.Committed = s.commit(p)
	st.Duration = p.Now() - start
	s.count("ckpt_bytes", st.BytesCopied)
	s.count("chunks_copied", int64(st.ChunksCopied))
	s.count("chunks_skipped", int64(st.ChunksSkipped))
	s.count("commits", 1)
	s.rec.Emit(obs.EvCheckpointCommit, "", st.BytesCopied, map[string]string{
		"round":   fmt.Sprintf("%d", round),
		"copied":  fmt.Sprintf("%d", st.ChunksCopied),
		"skipped": fmt.Sprintf("%d", st.ChunksSkipped),
		"dur_us":  fmt.Sprintf("%d", st.Duration.Microseconds()),
	})
	return st
}

// ChkptID checkpoints a single chunk — the paper's nvchkptid(id).
func (s *Store) ChkptID(p *sim.Proc, id uint64) (CkptStats, error) {
	c, ok := s.chunks[id]
	if !ok {
		return CkptStats{}, fmt.Errorf("%w: id %d", ErrNoChunk, id)
	}
	start := p.Now()
	var st CkptStats
	if c.needsStage() {
		st.BytesCopied = s.stageChunk(p, c, 0)
		st.ChunksCopied = 1
	} else {
		st.ChunksSkipped = 1
	}
	st.Committed = s.commitChunk(p, c)
	st.Duration = p.Now() - start
	s.count("ckpt_bytes", st.BytesCopied)
	return st, nil
}

// commit flips commit records for every chunk with staged data, under the
// metadata lock shared with the checkpoint helper.
func (s *Store) commit(p *sim.Proc) int {
	n := 0
	for _, c := range s.Chunks() {
		n += s.commitChunk(p, c)
	}
	return n
}

func (s *Store) commitChunk(p *sim.Proc, c *Chunk) int {
	if !c.Persistent || !c.stagePending {
		return 0
	}
	k := s.kproc.Kernel()
	k.MetaLock.Lock(p)
	target := c.targetSlot()
	c.Version++
	s.kproc.SetMeta(p, c.metaKey(), commitRecord{
		Slot:     target,
		Version:  c.Version,
		Checksum: c.stagedSum,
		Size:     c.Size,
		Seq:      c.cleanSeq,
		Name:     c.Name,
	})
	k.MetaLock.Unlock(p)
	c.committed = target
	c.stagePending = false
	s.rec.Emit(obs.EvChunkCommit, c.Name, c.Size, map[string]string{
		"seq":     u64str(c.cleanSeq),
		"version": u64str(c.Version),
	})
	return 1
}

// tryRestore recovers a chunk's contents from a committed NVM version left
// by a previous incarnation of this process, verifying the checksum. It is
// a no-op when no commit record exists (fresh allocation) or the recorded
// size no longer matches the requested size (the application changed its
// problem configuration).
func (s *Store) tryRestore(p *sim.Proc, c *Chunk) error {
	k := s.kproc.Kernel()
	k.MetaLock.Lock(p)
	v, ok := s.kproc.GetMeta(p, c.metaKey())
	k.MetaLock.Unlock(p)
	if !ok || v == nil {
		return nil
	}
	rec, ok := v.(commitRecord)
	if !ok || rec.Size != c.Size {
		return nil
	}
	k.MetaLock.Lock(p)
	dv, ok := s.kproc.GetMeta(p, c.dataKey(rec.Slot))
	k.MetaLock.Unlock(p)
	if !ok || dv == nil {
		return fmt.Errorf("%w: %s has commit record but no data", ErrNoCommitted, c.Name)
	}
	data := dv.([]byte)
	if s.opts.LazyRestore {
		// Defer the data fetch: record where the committed bytes live and
		// materialize on first access.
		c.pending = &pendingRestore{data: data, sum: rec.Checksum}
	} else {
		// Timed NVM→DRAM fetch (reads run near DRAM speed, Table I).
		mem.Copy(p, s.nvmDevice(), s.dramDevice(), c.Size)
		copy(c.dram.Data, data)
		if !s.opts.NoChecksum && checksum(data, c.Size) != rec.Checksum {
			if s.opts.SalvageCorrupt {
				// Clear the damaged version's commit record and leave the
				// chunk un-restored; the caller's cascade takes it from here.
				k.MetaLock.Lock(p)
				s.kproc.SetMeta(p, c.metaKey(), nil)
				k.MetaLock.Unlock(p)
				s.count("restore_checksum_errors", 1)
				s.rec.Emit(obs.EvChecksumError, c.Name, c.Size,
					map[string]string{"action": "salvage", "seq": u64str(rec.Seq)})
				return nil
			}
			return fmt.Errorf("%w: %s", ErrChecksum, c.Name)
		}
	}
	c.committed = rec.Slot
	c.Version = rec.Version
	c.Restored = true
	c.cleanSeq = c.modSeq
	c.Protect(p)
	s.count("restores", 1)
	source := "local"
	if s.opts.LazyRestore {
		source = "lazy"
	}
	// "seq" is the restored payload's generation in the previous
	// incarnation's sequence domain; "reseq" is the chunk's clean sequence in
	// THIS incarnation's domain (sequence numbering restarts per process
	// lifetime), which is what later ship events will reference.
	s.rec.Emit(obs.EvRestore, c.Name, c.Size, map[string]string{
		"source":  source,
		"seq":     u64str(rec.Seq),
		"version": u64str(rec.Version),
		"reseq":   u64str(c.cleanSeq),
	})
	return nil
}

// pendingRestore holds a lazily-restored chunk's committed bytes until first
// access.
type pendingRestore struct {
	data []byte
	sum  uint64
}

// materialize completes a deferred restore: the timed NVM→DRAM copy plus
// checksum verification. overwrite=true skips the data movement entirely —
// the caller is about to clobber the whole chunk anyway.
func (s *Store) materialize(p *sim.Proc, c *Chunk, overwrite bool) error {
	pr := c.pending
	c.pending = nil
	if pr == nil || overwrite {
		s.count("lazy_restores_skipped", 1)
		return nil
	}
	mem.Copy(p, s.nvmDevice(), s.dramDevice(), c.Size)
	copy(c.dram.Data, pr.data)
	if !s.opts.NoChecksum && checksum(pr.data, c.Size) != pr.sum {
		return fmt.Errorf("%w: %s (lazy)", ErrChecksum, c.Name)
	}
	s.count("lazy_restores", 1)
	return nil
}

// adopt installs externally fetched checkpoint data as the chunk's working
// contents. The chunk is left dirty so the next local checkpoint
// re-establishes a local NVM copy.
func (s *Store) adopt(p *sim.Proc, c *Chunk, data []byte, version uint64, source, counter string) error {
	if int64(len(data)) > c.Size {
		return fmt.Errorf("core: adopt %s: %d payload bytes exceed chunk size %d",
			c.Name, len(data), c.Size)
	}
	copy(c.dram.Data, data)
	c.pending = nil
	c.Restored = true
	c.Version = version
	c.markDirty(p)
	s.count(counter, 1)
	s.rec.Emit(obs.EvRestore, c.Name, c.Size, map[string]string{"source": source})
	return nil
}

// AdoptRemote installs checkpoint data fetched from a remote node — the
// hard-failure recovery path, when the local NVM was lost with the node.
func (s *Store) AdoptRemote(p *sim.Proc, c *Chunk, data []byte, version uint64) error {
	return s.adopt(p, c, data, version, "remote", "remote_restores")
}

// AdoptBottom installs checkpoint data read back from the bottom (PFS)
// tier — the cascade's last rung, when both the local version and the
// remote copy of a chunk are gone.
func (s *Store) AdoptBottom(p *sim.Proc, c *Chunk, data []byte, version uint64) error {
	return s.adopt(p, c, data, version, "bottom", "bottom_restores")
}

// HasCommitted reports whether a committed local checkpoint exists for the
// named variable without allocating a chunk — used by restart logic to
// decide between local recovery and remote fetch.
func (s *Store) HasCommitted(p *sim.Proc, name string) bool {
	id := GenID(name)
	k := s.kproc.Kernel()
	k.MetaLock.Lock(p)
	v, ok := s.kproc.GetMeta(p, fmt.Sprintf("cmeta/%d", id))
	k.MetaLock.Unlock(p)
	if !ok || v == nil {
		return false
	}
	_, isRec := v.(commitRecord)
	return isRec
}

// ChunkState is a helper-visible snapshot of one chunk's checkpoint state.
type ChunkState struct {
	ID       uint64
	Name     string
	Size     int64
	ModSeq   uint64
	CleanSeq uint64
	// StagedVersion identifies the staged data generation: helpers ship a
	// chunk when its CleanSeq advanced past what they last sent.
	StagePending bool
	Version      uint64
	Checksum     uint64
}

// Snapshot returns the checkpoint state of all persistent chunks under the
// metadata lock — the interface the asynchronous remote-checkpoint helper
// uses to find dirty chunks (Section V).
func (s *Store) Snapshot(p *sim.Proc) []ChunkState {
	k := s.kproc.Kernel()
	k.MetaLock.Lock(p)
	defer k.MetaLock.Unlock(p)
	out := make([]ChunkState, 0, len(s.order))
	for _, id := range s.order {
		c := s.chunks[id]
		if !c.Persistent {
			continue
		}
		out = append(out, ChunkState{
			ID:           c.ID,
			Name:         c.Name,
			Size:         c.Size,
			ModSeq:       c.modSeq,
			CleanSeq:     c.cleanSeq,
			StagePending: c.stagePending,
			Version:      c.Version,
			Checksum:     c.stagedSum,
		})
	}
	return out
}

// StagedData returns the payload most recently staged to NVM for a chunk
// (the in-progress version if a stage is pending, otherwise the committed
// one), for the remote helper to ship. ok is false when nothing was ever
// staged.
func (s *Store) StagedData(p *sim.Proc, id uint64) ([]byte, bool) {
	c, ok := s.chunks[id]
	if !ok {
		return nil, false
	}
	slot := c.committed
	if c.stagePending {
		slot = c.targetSlot()
	}
	if slot < 0 {
		return nil, false
	}
	k := s.kproc.Kernel()
	k.MetaLock.Lock(p)
	v, ok := s.kproc.GetMeta(p, c.dataKey(slot))
	k.MetaLock.Unlock(p)
	if !ok || v == nil {
		return nil, false
	}
	return v.([]byte), true
}

// ContentChecksum digests every persistent chunk's working payload in
// allocation order — the run-level fingerprint fault-injection tests compare
// against a fault-free twin to prove recovery reconstructed the exact
// application state.
func (s *Store) ContentChecksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, id := range s.order {
		c := s.chunks[id]
		if !c.Persistent {
			continue
		}
		for i := 0; i < 8; i++ {
			buf[i] = byte(c.ID >> (8 * i))
		}
		h.Write(buf[:])
		data := c.dram.Data
		if c.pending != nil {
			data = c.pending.data
		}
		h.Write(data)
	}
	return h.Sum64()
}
