package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"nvmcp/internal/nvmkernel"
)

// CorruptVictim identifies one committed chunk payload damaged by
// CorruptCommitted: which process held it, the chunk's variable name (falling
// back to the numeric metadata id for records that predate names), and the
// committed generation's sequence and version — enough for lineage tracing
// to mark exactly which copy went bad.
type CorruptVictim struct {
	Proc    string
	Chunk   string
	Size    int64
	Seq     uint64
	Version uint64
}

// Key returns the victim's cluster-wide lineage key, "proc/chunk".
func (v CorruptVictim) Key() string { return v.Proc + "/" + v.Chunk }

// CorruptCommitted damages up to max committed chunk payloads across every
// process with persistent state on k, leaving commit records untouched so
// the damage surfaces as ErrChecksum at the next restore. With torn=false a
// single byte of each victim gets a bit-flip (PCM media error); with
// torn=true the payload's tail half is zeroed (a write torn by power loss).
// Victims are chosen with rng over a sorted enumeration of processes and
// metadata keys, so placement is reproducible under a fixed seed. Returns
// the damaged chunks sorted by Key.
func CorruptCommitted(k *nvmkernel.Kernel, rng *rand.Rand, max int, torn bool) []CorruptVictim {
	if max <= 0 {
		max = 1
	}
	type victim struct {
		proc string
		id   string
		rec  commitRecord
		data []byte
	}
	var victims []victim
	procs := k.ProcessNames()
	sort.Strings(procs)
	for _, proc := range procs {
		for _, key := range k.MetaKeys(proc) {
			id, ok := strings.CutPrefix(key, "cmeta/")
			if !ok {
				continue
			}
			v, ok := k.QueryMeta(nil, proc, key)
			if !ok || v == nil {
				continue
			}
			rec, ok := v.(commitRecord)
			if !ok {
				continue
			}
			dv, ok := k.QueryMeta(nil, proc, fmt.Sprintf("cdata/%s/%d", id, rec.Slot))
			if !ok || dv == nil {
				continue
			}
			data, ok := dv.([]byte)
			if !ok || len(data) == 0 {
				continue
			}
			victims = append(victims, victim{proc: proc, id: id, rec: rec, data: data})
		}
	}
	// Sample without replacement: shuffle the candidate order, take max.
	rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
	if len(victims) > max {
		victims = victims[:max]
	}
	out := make([]CorruptVictim, 0, len(victims))
	for _, v := range victims {
		if torn {
			for i := len(v.data) / 2; i < len(v.data); i++ {
				v.data[i] = 0
			}
		} else {
			v.data[rng.Intn(len(v.data))] ^= 1 << uint(rng.Intn(8))
		}
		// The mutation is in place, so a coincidental no-op (the pattern
		// already held those bytes) would silently inject nothing; force a
		// mismatch in that case.
		if checksum(v.data, v.rec.Size) == v.rec.Checksum {
			v.data[0] ^= 0xFF
		}
		name := v.rec.Name
		if name == "" {
			name = v.id
		}
		out = append(out, CorruptVictim{
			Proc:    v.proc,
			Chunk:   name,
			Size:    v.rec.Size,
			Seq:     v.rec.Seq,
			Version: v.rec.Version,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
