package core

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"nvmcp/internal/nvmalloc"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
)

// Chunk is one checkpoint variable: a DRAM working copy the application
// computes on, shadowed by one or two NVM version slots. Dirty state is a
// pair of sequence numbers: modSeq advances on each observed modification
// (chunk-level protection fault) and cleanSeq is set to modSeq whenever the
// chunk is staged to NVM or restored; the chunk needs (re)staging whenever
// they differ.
type Chunk struct {
	ID         uint64
	Name       string
	Size       int64
	Persistent bool
	Attached   bool
	// Restored is true when this chunk's contents were recovered from a
	// committed NVM version at allocation time.
	Restored bool
	// Version counts committed checkpoints of this chunk.
	Version uint64
	// ModCount counts observed modification episodes (protection faults),
	// feeding the DCPCP prediction table.
	ModCount int64

	store     *Store
	dram      *nvmkernel.Region
	nvmExtent [2]nvmalloc.Extent
	committed int // committed slot index, -1 before first commit

	modSeq       uint64
	cleanSeq     uint64
	stagePending bool   // staged data awaiting the next commit flip
	stagedSum    uint64 // checksum of staged payload
	writeSeq     uint64 // content pattern generator
	pending      *pendingRestore
}

// slots returns how many NVM version slots the chunk keeps.
func (c *Chunk) slots() int {
	if c.store.opts.SingleVersion {
		return 1
	}
	return 2
}

// targetSlot returns the in-progress slot staging writes into.
func (c *Chunk) targetSlot() int {
	if c.slots() == 1 {
		return 0
	}
	if c.committed == 0 {
		return 1
	}
	return 0
}

func (c *Chunk) dramID() string          { return fmt.Sprintf("work/%d", c.ID) }
func (c *Chunk) metaKey() string         { return fmt.Sprintf("cmeta/%d", c.ID) }
func (c *Chunk) dataKey(slot int) string { return fmt.Sprintf("cdata/%d/%d", c.ID, slot) }

// needsStage reports whether the chunk was modified (or never staged) since
// its last staging or restore.
func (c *Chunk) needsStage() bool { return c.modSeq != c.cleanSeq }

// Dirty is the exported view of needsStage.
func (c *Chunk) Dirty() bool { return c.needsStage() }

// Committed reports whether any checkpoint version has been committed.
func (c *Chunk) Committed() bool { return c.committed >= 0 }

// Data exposes the DRAM working payload (real bytes; possibly smaller than
// Size under payload scaling).
func (c *Chunk) Data() []byte { return c.dram.Data }

// installFaultHandler arms chunk-level dirty tracking: the first store to a
// protected chunk takes one fault, unprotects the entire chunk, and marks it
// dirty.
func (c *Chunk) installFaultHandler() {
	c.modSeq = 1
	c.dram.SetFaultHandler(func(p *sim.Proc, r *nvmkernel.Region, page int) {
		r.Unprotect(p)
		c.markDirty(p)
	})
}

// markDirty advances the modification sequence and notifies listeners. A
// chunk dirtied while its staged (but uncommitted) copy was current is a
// re-dirty: the pre-copy work just done is wasted and the chunk must move
// again at checkpoint time — the quantity Figure 9's re-dirty rate measures.
func (c *Chunk) markDirty(p *sim.Proc) {
	// One lineage event per clean→dirty edge, carrying the new generation's
	// sequence: a redirty when the staged copy was current (pre-copy work
	// wasted), a plain dirty otherwise. Already-dirty chunks advance modSeq
	// silently — the next stage captures the latest sequence anyway.
	if c.modSeq == c.cleanSeq {
		if c.stagePending {
			c.store.rec.Emit(obs.EvChunkReDirtied, c.Name, c.Size,
				map[string]string{"seq": u64str(c.modSeq + 1)})
			c.store.count("redirtied_chunks", 1)
		} else {
			c.store.rec.Emit(obs.EvChunkDirty, c.Name, c.Size,
				map[string]string{"seq": u64str(c.modSeq + 1)})
		}
	}
	c.modSeq++
	c.ModCount++
	c.store.notifyModify(c)
}

// Write models the application storing to [off, off+n) of the chunk during
// computation. It costs nothing except a protection fault when the chunk was
// clean (application stores run at DRAM speed as part of compute). The real
// payload bytes covering the range are mutated deterministically so that
// checkpoints and restores can be verified end to end.
func (c *Chunk) Write(p *sim.Proc, off, n int64) error {
	if off < 0 || n < 0 || off+n > c.Size {
		return fmt.Errorf("core: write [%d,%d) out of chunk %s size %d", off, off+n, c.Name, c.Size)
	}
	if n == 0 {
		return nil
	}
	if c.pending != nil {
		// Lazily-restored chunk touched for the first time. A write that
		// covers the whole chunk makes the old bytes dead — skip the copy.
		if err := c.store.materialize(p, c, n == c.Size); err != nil {
			return err
		}
	}
	if _, err := c.dram.TouchWrite(p, off, n); err != nil {
		return err
	}
	c.writeSeq++
	lo, ln := c.payloadRange(off, n)
	for i := lo; i < lo+ln; i++ {
		c.dram.Data[i] = byte(uint64(i)*2654435761 + c.writeSeq*97 + c.ID)
	}
	return nil
}

// WriteAll modifies the whole chunk (the common HPC case: checkpoint data
// structures fully change every iteration).
func (c *Chunk) WriteAll(p *sim.Proc) error { return c.Write(p, 0, c.Size) }

// SeedWrites pins the content-pattern generator so the next Write produces
// bytes that depend only on the seed and the chunk identity. Workloads seed
// each write from the iteration number, making a replayed iteration after a
// restart regenerate byte-identical contents no matter which tier the chunk
// was recovered from.
func (c *Chunk) SeedWrites(seq uint64) { c.writeSeq = seq }

// Read models the application reading the chunk's contents. Reads cost
// nothing (data is in DRAM) except when a lazy restore is pending, in which
// case the deferred NVM→DRAM fetch happens now.
func (c *Chunk) Read(p *sim.Proc, off, n int64) error {
	if off < 0 || n < 0 || off+n > c.Size {
		return fmt.Errorf("core: read [%d,%d) out of chunk %s size %d", off, off+n, c.Name, c.Size)
	}
	if c.pending != nil {
		return c.store.materialize(p, c, false)
	}
	return nil
}

// RestorePending reports whether a lazy restore has not yet materialized.
func (c *Chunk) RestorePending() bool { return c.pending != nil }

// Protect re-arms write protection over the chunk so the next modification
// is observed. Pre-copy engines call this after copying a chunk; the
// prediction learning phase calls it after each fault to count episodes.
func (c *Chunk) Protect(p *sim.Proc) { c.dram.Protect(p) }

// DeferProtect re-arms protection as soon as the current write retires —
// safe to call from modification callbacks, which run inside the faulting
// write.
func (c *Chunk) DeferProtect() { c.dram.DeferProtect() }

// Protected reports whether modification tracking is armed.
func (c *Chunk) Protected() bool { return c.dram.Protected() }

// Region exposes the DRAM working region (for the page-level ablation).
func (c *Chunk) Region() *nvmkernel.Region { return c.dram }

// ModSeq returns the current modification sequence number.
func (c *Chunk) ModSeq() uint64 { return c.modSeq }

// StagedSeq returns the sequence captured at the last staging/restore.
func (c *Chunk) StagedSeq() uint64 { return c.cleanSeq }

// payloadRange maps a virtual byte range onto the (possibly scaled) payload.
func (c *Chunk) payloadRange(off, n int64) (int, int) {
	l := int64(len(c.dram.Data))
	if l == 0 {
		return 0, 0
	}
	if l == c.Size {
		return int(off), int(n)
	}
	lo := off * l / c.Size
	hi := (off + n) * l / c.Size
	if hi <= lo {
		hi = lo + 1
	}
	if hi > l {
		hi = l
	}
	return int(lo), int(hi - lo)
}

// checksum hashes a payload together with the chunk's virtual size, so a
// size change never collides with a content change.
func checksum(data []byte, size int64) uint64 {
	h := fnv.New64a()
	var sz [8]byte
	for i := 0; i < 8; i++ {
		sz[i] = byte(size >> (8 * i))
	}
	h.Write(sz[:])
	h.Write(data)
	return h.Sum64()
}

// u64str renders a sequence/version number for event attributes.
func u64str(v uint64) string { return strconv.FormatUint(v, 10) }

// String implements fmt.Stringer.
func (c *Chunk) String() string {
	return fmt.Sprintf("core.Chunk{%s %dB v%d dirty=%v}", c.Name, c.Size, c.Version, c.Dirty())
}
