package ramdisk

import (
	"errors"
	"testing"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
)

func newFS(e *sim.Env) (*FS, *mem.Device) {
	dram := mem.NewDRAM(e, 8*mem.GB)
	return New(e, dram), dram
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	fs, dram := newFS(e)
	e.Go("w", func(p *sim.Proc) {
		f := fs.Open(p, "ckpt.0")
		if err := f.Write(p, 10*mem.MB); err != nil {
			t.Error(err)
		}
		if f.Size() != 10*mem.MB {
			t.Errorf("size = %d", f.Size())
		}
		if err := f.Seek(p, 0); err != nil {
			t.Error(err)
		}
		if err := f.Read(p, 10*mem.MB); err != nil {
			t.Error(err)
		}
		if err := f.Read(p, 1); !errors.Is(err, ErrShortRead) {
			t.Errorf("read past EOF err = %v", err)
		}
		f.Close(p)
		if err := f.Write(p, 1); !errors.Is(err, ErrClosed) {
			t.Errorf("write after close err = %v", err)
		}
	})
	e.Run()
	if dram.Used != 10*mem.MB {
		t.Fatalf("DRAM used = %d, want 10MB", dram.Used)
	}
}

func TestWriteChargesKernelPath(t *testing.T) {
	e := sim.NewEnv()
	fs, _ := newFS(e)
	var took time.Duration
	e.Go("w", func(p *sim.Proc) {
		f := fs.Open(p, "x")
		start := p.Now()
		f.Write(p, mem.MB)
		took = p.Now() - start
	})
	e.Run()
	// 1MB + 30% serialization at 8GB/s ≈ 163us, plus 256 pages of kernel
	// work ≈ 43us, plus syscall.
	if took < 150*time.Microsecond || took > 350*time.Microsecond {
		t.Fatalf("1MB write took %v, want ~210us", took)
	}
	if got := fs.Counters.Get("kernel_sync_calls"); got != 3 {
		t.Fatalf("kernel_sync_calls = %d, want 3 per write", got)
	}
}

func TestOverwriteDoesNotGrow(t *testing.T) {
	e := sim.NewEnv()
	fs, dram := newFS(e)
	e.Go("w", func(p *sim.Proc) {
		f := fs.Open(p, "x")
		f.Write(p, mem.MB)
		f.Seek(p, 0)
		f.Write(p, mem.MB)
		if f.Size() != mem.MB {
			t.Errorf("size = %d after overwrite", f.Size())
		}
	})
	e.Run()
	if dram.Used != mem.MB {
		t.Fatalf("DRAM used = %d, want 1MB", dram.Used)
	}
}

func TestConcurrentWritersContendOnKernelLocks(t *testing.T) {
	e := sim.NewEnv()
	fs, _ := newFS(e)
	const writers = 12
	for i := 0; i < writers; i++ {
		e.Go("w", func(p *sim.Proc) {
			f := fs.Open(p, "ckpt."+string(rune('a'+i)))
			for j := 0; j < 4; j++ {
				if err := f.Write(p, 8*mem.MB); err != nil {
					t.Error(err)
				}
			}
		})
	}
	e.Run()
	if fs.LockWaitTime() <= 0 {
		t.Fatal("12 concurrent writers produced no lock contention")
	}
	wantSync := int64(writers * 4 * 3)
	if got := fs.Counters.Get("kernel_sync_calls"); got != wantSync {
		t.Fatalf("kernel_sync_calls = %d, want %d", got, wantSync)
	}
}

func TestRamdiskSlowerThanPlainMemcpy(t *testing.T) {
	// The Section IV motivation: same DRAM destination, but the VFS path
	// must be substantially slower than a plain bandwidth-charged copy.
	run := func(useFS bool) time.Duration {
		e := sim.NewEnv()
		fs, dram := newFS(e)
		const n = 12
		for i := 0; i < n; i++ {
			e.Go("w", func(p *sim.Proc) {
				size := 100 * mem.MB
				if useFS {
					f := fs.Open(p, "ckpt."+string(rune('a'+i)))
					// Checkpoints write in bounded-size I/O calls.
					for off := int64(0); off < size; off += 8 * mem.MB {
						if err := f.Write(p, 8*mem.MB); err != nil {
							t.Error(err)
						}
					}
				} else {
					dram.WriteBytes(p, size)
				}
			})
		}
		e.Run()
		return e.Now()
	}
	memT := run(false)
	fsT := run(true)
	if fsT <= memT {
		t.Fatalf("ramdisk (%v) not slower than memory (%v)", fsT, memT)
	}
	slowdown := float64(fsT-memT) / float64(memT)
	if slowdown < 0.2 {
		t.Fatalf("ramdisk slowdown = %.1f%%, want substantial (>20%%)", slowdown*100)
	}
}

func TestTruncateReleasesBacking(t *testing.T) {
	e := sim.NewEnv()
	fs, dram := newFS(e)
	e.Go("w", func(p *sim.Proc) {
		f := fs.Open(p, "x")
		f.Write(p, 5*mem.MB)
		if err := f.Truncate(p); err != nil {
			t.Error(err)
		}
		if f.Size() != 0 {
			t.Errorf("size = %d after truncate", f.Size())
		}
	})
	e.Run()
	if dram.Used != 0 {
		t.Fatalf("DRAM used = %d after truncate", dram.Used)
	}
}

func TestRemove(t *testing.T) {
	e := sim.NewEnv()
	fs, dram := newFS(e)
	e.Go("w", func(p *sim.Proc) {
		f := fs.Open(p, "x")
		f.Write(p, mem.MB)
		if err := fs.Remove(p, "x"); err != nil {
			t.Error(err)
		}
		if fs.Exists("x") {
			t.Error("file exists after remove")
		}
		if err := fs.Remove(p, "x"); !errors.Is(err, ErrNoFile) {
			t.Errorf("double remove err = %v", err)
		}
	})
	e.Run()
	if dram.Used != 0 {
		t.Fatalf("DRAM used = %d after remove", dram.Used)
	}
}

func TestOpenExistingKeepsContents(t *testing.T) {
	e := sim.NewEnv()
	fs, _ := newFS(e)
	e.Go("w", func(p *sim.Proc) {
		f := fs.Open(p, "x")
		f.Write(p, mem.MB)
		f.Close(p)
		g := fs.Open(p, "x")
		if g.Size() != mem.MB {
			t.Errorf("reopened size = %d", g.Size())
		}
	})
	e.Run()
}
