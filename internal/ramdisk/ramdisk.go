// Package ramdisk models the baseline the paper argues against: checkpoints
// written through a file-system interface to a DRAM-backed ramdisk. Although
// the bits land in the same DRAM as a memory checkpoint, every write pays
// user↔kernel transitions, per-page kernel bookkeeping partly under shared
// VFS locks (contended across the node's cores), and serialization copies —
// the costs the MADBench2 motivation experiment in Section IV measures:
// ~3x more kernel synchronization calls, ~31% more lock waiting, and up to
// 46% slower checkpoints at 300 MB/core.
package ramdisk

import (
	"errors"
	"fmt"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Cost defaults, calibrated against the paper's MADBench2 observations.
const (
	// DefaultSyscallCost is one user↔kernel round trip.
	DefaultSyscallCost = 300 * time.Nanosecond
	// DefaultAllocPerPage is kernel page allocation work per 4 KB page
	// (performed outside the shared locks; allocation is mostly per-CPU).
	DefaultAllocPerPage = 100 * time.Nanosecond
	// DefaultInsertPerPage is page-cache (radix tree) insertion work per
	// page, also mostly parallel.
	DefaultInsertPerPage = 50 * time.Nanosecond
	// DefaultLockedPerPage is the residual per-page work that must hold a
	// shared kernel lock (batched tree-node updates, superblock counters);
	// this is what the node's cores contend on.
	DefaultLockedPerPage = 10 * time.Nanosecond
	// DefaultSerializationFraction is the extra data movement the I/O path
	// performs beyond the single payload copy (bounce buffering, iovec
	// marshalling) for small files; it grows toward roughly twice this as
	// files outgrow the caches (see serFraction), which is what widens the
	// ramdisk-vs-memory gap with checkpoint size in the MADBench experiment.
	DefaultSerializationFraction = 0.25
	// serGrowthScale is the file size at which half the serialization
	// growth has kicked in.
	serGrowthScale = 150 << 20
)

// Errors.
var (
	ErrClosed    = errors.New("ramdisk: file closed")
	ErrNoFile    = errors.New("ramdisk: no such file")
	ErrShortRead = errors.New("ramdisk: read past end of file")
)

// FS is one node's ramdisk file system.
type FS struct {
	env  *sim.Env
	dram *mem.Device

	// allocLock and mapLock are the shared kernel locks every writer
	// contends on; their WaitTime fields feed the lock-wait comparison.
	allocLock *sim.Mutex
	mapLock   *sim.Mutex

	SyscallCost           time.Duration
	AllocPerPage          time.Duration
	InsertPerPage         time.Duration
	LockedPerPage         time.Duration
	SerializationFraction float64

	files map[string]*inode

	// Counters: "syscalls", "kernel_sync_calls", "bytes_written",
	// "bytes_read".
	Counters trace.Counters
}

type inode struct {
	name string
	size int64
}

// New creates a ramdisk over the node's DRAM device.
func New(env *sim.Env, dram *mem.Device) *FS {
	return &FS{
		env:                   env,
		dram:                  dram,
		allocLock:             sim.NewMutex(env),
		mapLock:               sim.NewMutex(env),
		SyscallCost:           DefaultSyscallCost,
		AllocPerPage:          DefaultAllocPerPage,
		InsertPerPage:         DefaultInsertPerPage,
		LockedPerPage:         DefaultLockedPerPage,
		SerializationFraction: DefaultSerializationFraction,
		files:                 make(map[string]*inode),
	}
}

// serFraction returns the serialization surcharge for a file of the given
// size: the base fraction, growing by up to another base's worth as the file
// outgrows cache-resident bounce buffers.
func (fs *FS) serFraction(fileSize int64) float64 {
	growth := float64(fileSize) / float64(fileSize+serGrowthScale)
	return fs.SerializationFraction * (1 + growth)
}

// LockWaitTime returns total time processes spent waiting on the shared
// kernel locks — the quantity the paper reports as 31% higher than the
// memory-checkpoint approach.
func (fs *FS) LockWaitTime() time.Duration {
	return fs.allocLock.WaitTime + fs.mapLock.WaitTime
}

// File is an open ramdisk file with a position cursor.
type File struct {
	fs     *FS
	ino    *inode
	pos    int64
	closed bool
	// ownLock serializes writes on this descriptor (the inode mutex).
	ownLock *sim.Mutex
}

func (fs *FS) syscall(p *sim.Proc) {
	fs.Counters.Add("syscalls", 1)
	p.Sleep(fs.SyscallCost)
}

// Open opens (creating if necessary) a file. Truncation is the caller's
// choice via Truncate.
func (fs *FS) Open(p *sim.Proc, name string) *File {
	fs.syscall(p)
	ino, ok := fs.files[name]
	if !ok {
		ino = &inode{name: name}
		fs.files[name] = ino
	}
	return &File{fs: fs, ino: ino, ownLock: sim.NewMutex(fs.env)}
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Remove deletes a file, releasing its DRAM backing.
func (fs *FS) Remove(p *sim.Proc, name string) error {
	fs.syscall(p)
	ino, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	fs.dram.Release(ino.size)
	delete(fs.files, name)
	return nil
}

// Write appends-or-overwrites n bytes at the cursor, charging the full VFS
// path: syscall, inode lock, page allocation and page-cache insertion under
// shared kernel locks, the payload copy, and the serialization surcharge.
func (f *File) Write(p *sim.Proc, n int64) error {
	if f.closed {
		return ErrClosed
	}
	if n <= 0 {
		return nil
	}
	fs := f.fs
	fs.syscall(p)
	fs.Counters.Add("bytes_written", n)

	// Inode lock: writes to one descriptor are serialized. Sync call 1.
	fs.Counters.Add("kernel_sync_calls", 1)
	f.ownLock.Lock(p)
	defer f.ownLock.Unlock(p)

	newEnd := f.pos + n
	growth := newEnd - f.ino.size
	pages := (n + mem.PageSize - 1) / mem.PageSize

	if growth > 0 {
		if err := fs.dram.Reserve(growth); err != nil {
			return err
		}
		f.ino.size = newEnd
	}

	// Per-page kernel work (allocation, radix-tree insertion): mostly
	// parallel, so charged outside the shared locks.
	p.Sleep(time.Duration(pages) * (fs.AllocPerPage + fs.InsertPerPage))

	// Residual work under the shared allocation lock. Sync call 2.
	fs.Counters.Add("kernel_sync_calls", 1)
	fs.allocLock.Lock(p)
	p.Sleep(time.Duration(pages) * fs.LockedPerPage)
	fs.allocLock.Unlock(p)

	// Residual work under the shared mapping lock. Sync call 3.
	fs.Counters.Add("kernel_sync_calls", 1)
	fs.mapLock.Lock(p)
	p.Sleep(time.Duration(pages) * fs.LockedPerPage)
	fs.mapLock.Unlock(p)

	// copy_from_user plus the serialization surcharge, through shared
	// DRAM bandwidth.
	total := n + int64(float64(n)*fs.serFraction(f.ino.size))
	fs.dram.WriteBytes(p, total)

	f.pos = newEnd
	return nil
}

// Read fetches n bytes at the cursor: syscall plus a copy_to_user through
// DRAM read bandwidth.
func (f *File) Read(p *sim.Proc, n int64) error {
	if f.closed {
		return ErrClosed
	}
	if n <= 0 {
		return nil
	}
	if f.pos+n > f.ino.size {
		return fmt.Errorf("%w: at %d+%d of %d", ErrShortRead, f.pos, n, f.ino.size)
	}
	fs := f.fs
	fs.syscall(p)
	fs.Counters.Add("bytes_read", n)
	fs.dram.ReadBytes(p, n)
	f.pos += n
	return nil
}

// Seek moves the cursor to an absolute offset.
func (f *File) Seek(p *sim.Proc, off int64) error {
	if f.closed {
		return ErrClosed
	}
	f.fs.syscall(p)
	f.pos = off
	return nil
}

// Truncate resets the file to zero length, releasing its backing pages.
func (f *File) Truncate(p *sim.Proc) error {
	if f.closed {
		return ErrClosed
	}
	f.fs.syscall(p)
	f.fs.dram.Release(f.ino.size)
	f.ino.size = 0
	f.pos = 0
	return nil
}

// Close closes the descriptor.
func (f *File) Close(p *sim.Proc) {
	if f.closed {
		return
	}
	f.fs.syscall(p)
	f.closed = true
}

// Size returns the file's current size.
func (f *File) Size() int64 { return f.ino.size }
