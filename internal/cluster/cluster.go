// Package cluster assembles the full system: nodes with DRAM + NVM and a
// kernel each, an RDMA fabric between them, MPI-rank-like application
// processes running a workload spec, per-rank local checkpoint engines,
// a pluggable remote checkpoint tier (buddy replication or erasure parity),
// an optional bottom storage tier (PFS drain), coordinated local checkpoints
// at iteration boundaries, asynchronous remote checkpoints every K-th local
// one, and failure injection with multilevel recovery (local NVM restore for
// soft failures, remote-tier fetch for hard ones).
//
// Policies are composed by name through internal/policy — the cluster holds
// no scheme-specific branches. This is the harness behind Figures 7, 8, 9
// and 10 and Table V.
package cluster

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/drift"
	"nvmcp/internal/fault"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/lineage"
	"nvmcp/internal/mem"
	"nvmcp/internal/model"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/obs"
	"nvmcp/internal/pfs"
	"nvmcp/internal/policy"
	"nvmcp/internal/remote"
	"nvmcp/internal/sim"
	"nvmcp/internal/slo"
	"nvmcp/internal/topo"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// FailureEvent schedules one injected failure.
type FailureEvent struct {
	// After is the absolute virtual time of the failure.
	After time.Duration
	// Node is the failing node (for buddy-loss: the node whose remote
	// copies are lost — the fault strikes whichever node holds them).
	Node int
	// Hard marks an unrecoverable node failure (NVM lost); otherwise the
	// failure is soft (processes die, NVM survives). Legacy shorthand for
	// Kind == fault.Hard.
	Hard bool
	// Kind selects the failure class (soft/hard/nvm-corrupt/link-flap/
	// buddy-loss); empty falls back to Hard's soft/hard split.
	Kind fault.Kind
	// Chunks bounds how many committed chunks an nvm-corrupt fault damages
	// (0 means 1); Torn switches the damage from bit-flips to torn writes.
	Chunks int
	Torn   bool
	// Duration and Factor shape a link-flap: outage length and residual
	// bandwidth fraction (0 = fully down).
	Duration time.Duration
	Factor   float64
	// Provider/Zone/Rack address the failure domain of a correlated kind
	// (rack-outage, zone-outage, provider-outage); they need Config.Topo.
	Provider int
	Zone     int
	Rack     int
	// Soft makes a domain outage spare the victims' NVM.
	Soft bool
	// Waves and WaveDelay shape a link-storm's seeded rack-to-rack cascade.
	Waves     int
	WaveDelay time.Duration
}

// EffectiveKind resolves the event's failure class: an explicit Kind wins,
// otherwise Hard selects fault.Hard and the default is fault.Soft.
func (f FailureEvent) EffectiveKind() fault.Kind {
	if f.Kind != "" {
		return f.Kind
	}
	if f.Hard {
		return fault.Hard
	}
	return fault.Soft
}

// toFault lowers the event into the injector's representation.
func (f FailureEvent) toFault() fault.Event {
	return fault.Event{
		At:        f.After,
		Node:      f.Node,
		Kind:      f.EffectiveKind(),
		Chunks:    f.Chunks,
		Torn:      f.Torn,
		Duration:  f.Duration,
		Factor:    f.Factor,
		Provider:  f.Provider,
		Zone:      f.Zone,
		Rack:      f.Rack,
		Soft:      f.Soft,
		Waves:     f.Waves,
		WaveDelay: f.WaveDelay,
	}
}

// NodeShape is one node's machine shape in a heterogeneous (generated)
// fleet. Zero-valued fields fall back to the Config-level defaults.
type NodeShape struct {
	Cores        int
	DRAM         int64
	NVM          int64
	NVMPerCoreBW float64
}

// Config describes one cluster run.
type Config struct {
	Nodes        int
	CoresPerNode int
	DRAMPerNode  int64
	NVMPerNode   int64
	// NVMPerCoreBW, when non-zero, pins the effective NVM write bandwidth
	// per core (the Figures 7/8 x-axis); zero uses the Table I PCM device.
	NVMPerCoreBW float64
	LinkBW       float64

	// Shapes gives each node its own machine shape (heterogeneous fleets);
	// when set its length must equal Nodes, and the Config-level fields
	// above become the defaults for a shape's zero-valued fields.
	Shapes []NodeShape
	// Topo assigns every node a (provider, zone, rack) failure-domain
	// coordinate, enabling correlated fault kinds and topology-aware
	// replica placement. Nil means no domain structure.
	Topo *topo.Topology
	// NodeStart staggers node startup: node n's ranks begin their first
	// iteration NodeStart[n] into the run (generated fleet ramp-up).
	NodeStart []time.Duration
	// Placement selects the remote tier's replica placement ("" or
	// "spread" for zone anti-affinity over Topo, "naive" for the paper's
	// ring/consecutive-groups layout).
	Placement string

	App        workload.AppSpec
	Iterations int

	// Local names the local pre-copy policy ("" or "none", "cpc", "dcpc",
	// "dcpcp" — see policy.Names(policy.KindLocal)).
	Local        string
	LocalRateCap float64
	// LocalEvery takes a coordinated local checkpoint every N-th iteration
	// (default 1): the knob for checkpoint-interval studies — recovery
	// rolls back to the last *checkpointed* iteration.
	LocalEvery int
	// ForceFull disables dirty tracking at checkpoints (the classic
	// full-checkpoint baseline used for 'no pre-copy' comparisons).
	ForceFull bool
	// NoCheckpoint disables checkpointing entirely (the ideal run used as
	// the efficiency denominator).
	NoCheckpoint bool

	// Remote names the remote checkpoint tier ("" or "none", "buddy-burst",
	// "buddy-precopy", "erasure"), triggered every RemoteEvery-th local
	// checkpoint.
	Remote        string
	RemoteRateCap float64
	RemoteDelay   time.Duration
	RemoteEvery   int
	// RemoteGroup hints the tier's redundancy group size (0 = tier default).
	RemoteGroup int

	// Bottom names the bottom storage tier ("" or "none", "pfs-drain"),
	// drained once after the remote level settles.
	Bottom            string
	BottomAggregateBW float64
	BottomStripeBW    float64

	Failures []FailureEvent
	// FaultModel, when set, adds stochastic failures on top of Failures:
	// exponential inter-arrival times per class, seeded and deterministic.
	// Nodes defaults to the cluster's node count.
	FaultModel *fault.Model
	// FaultSeed seeds the injector's corruption RNG (victim selection and
	// bit positions for nvm-corrupt faults).
	FaultSeed int64

	// PayloadCap caps real payload bytes per chunk (default 4 KB for
	// cluster-scale runs; unit tests use larger).
	PayloadCap    int
	SingleVersion bool

	// Tracer, when set, redirects the run's Chrome-trace span output —
	// compute iterations, quiesce, coordinated checkpoints per rank,
	// remote-checkpoint triggers, helper ship spans, and failures — into an
	// externally owned recorder. Without it the same spans accumulate in the
	// cluster's Observer, whose sinks render them on demand.
	Tracer *trace.SpanRecorder

	// Lineage, when set and enabled, attaches the per-chunk causal tracer
	// and online invariant checker to the run's event bus. Strict mode makes
	// Run fail loudly on the first invariant violation.
	Lineage *lineage.Config

	// SLO, when set and enabled, attaches the virtual-time flight recorder
	// (windowed SLO time series + online objective evaluation) to the run's
	// event bus. Strict mode makes Run fail loudly on the first objective
	// breach.
	SLO *slo.Config

	// Drift, when set and enabled, attaches the model-drift observatory to
	// the run's event bus: windowed online estimators of the §III model
	// inputs, per-window model re-evaluation with measured values, drift
	// gauges and phase-change detection. Strict mode makes Run fail loudly
	// when a drift limit is violated. Sharding-compatible: sharded runs
	// replay the merged event stream through the same fold after the run.
	Drift *drift.Config

	// Stagger, when enabled, gates remote (buddy) drains behind an
	// admission gate: at most MaxConcurrent node drains in flight, grants
	// Slot apart — the control plane's cap on peak interconnect usage
	// (Fig 9/10's ckpt_window_bytes). Global coupling: pins the serial
	// engine.
	Stagger policy.StaggerSpec
	// ReplanOnFailure re-homes remote replica placement away from the
	// victims of a hard or correlated failure during recovery (needs a
	// Replanner-capable remote tier, i.e. the buddy policies).
	ReplanOnFailure bool
	// Control, when set, hooks an external controller (the checkpoint
	// control plane) into the run: live injection, cancellation, ticks.
	// Global coupling: pins the serial engine.
	Control *Control

	// Shards partitions the node set onto N independent event engines run in
	// conservative lockstep (see DESIGN.md §12). 0 leaves the choice to the
	// process-wide DefaultShards (which itself defaults to the classic serial
	// engine), 1 pins the serial engine, ShardsAuto resolves
	// min(GOMAXPROCS, topology limit) at build time. Requests the topology
	// cannot honor are capped; configurations with global coupling (failures,
	// a bottom tier, a non-shard-local remote policy, lineage/SLO/tracing)
	// fall back to the serial engine with an EvEngineWarn on the bus.
	Shards int

	// nodeOffset / rankOffset shift this instance's node and rank numbering
	// when it runs as one shard of a partitioned cluster, so recorder scopes,
	// process names and span lanes stay globally unique and the merged
	// observability streams read like one cluster's.
	nodeOffset int
	rankOffset int
	// shardFallback records why a requested sharded run fell back to the
	// serial engine, surfaced as an EvEngineWarn once the bus exists.
	shardFallback string
}

func (cfg *Config) setDefaults() {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.CoresPerNode == 0 {
		cfg.CoresPerNode = 12
	}
	if cfg.DRAMPerNode == 0 {
		cfg.DRAMPerNode = 48 * mem.GB
	}
	if cfg.NVMPerNode == 0 {
		cfg.NVMPerNode = 48 * mem.GB
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 5
	}
	if cfg.LocalEvery == 0 {
		cfg.LocalEvery = 1
	}
	if cfg.RemoteEvery == 0 {
		cfg.RemoteEvery = 4
	}
	if cfg.PayloadCap == 0 {
		cfg.PayloadCap = 4096
	}
}

// coresOf is node n's rank count: its shape's, or the homogeneous default.
func (cfg *Config) coresOf(n int) int {
	if n < len(cfg.Shapes) && cfg.Shapes[n].Cores > 0 {
		return cfg.Shapes[n].Cores
	}
	return cfg.CoresPerNode
}

// rankBases is the prefix-sum rank numbering of a (possibly heterogeneous)
// node set: rankBases()[n] is node n's first rank, rankBases()[Nodes] the
// total rank count. Homogeneous clusters reduce to n*CoresPerNode.
func (cfg *Config) rankBases() []int {
	rb := make([]int, cfg.Nodes+1)
	for n := 0; n < cfg.Nodes; n++ {
		rb[n+1] = rb[n] + cfg.coresOf(n)
	}
	return rb
}

// totalRanks is the cluster's rank (process) count across all node shapes.
func (cfg *Config) totalRanks() int {
	t := 0
	for n := 0; n < cfg.Nodes; n++ {
		t += cfg.coresOf(n)
	}
	return t
}

// Validate checks a configuration after defaulting, returning an actionable
// error instead of letting a degenerate run proceed silently.
func (cfg *Config) Validate() error {
	if cfg.Nodes < 1 {
		return fmt.Errorf("cluster: nodes must be >= 1, got %d", cfg.Nodes)
	}
	if cfg.CoresPerNode < 1 {
		return fmt.Errorf("cluster: cores per node must be >= 1, got %d", cfg.CoresPerNode)
	}
	if cfg.DRAMPerNode <= 0 || cfg.NVMPerNode <= 0 {
		return fmt.Errorf("cluster: device capacities must be positive (dram %d, nvm %d)",
			cfg.DRAMPerNode, cfg.NVMPerNode)
	}
	if cfg.NVMPerCoreBW < 0 || cfg.LinkBW < 0 {
		return fmt.Errorf("cluster: bandwidths must be non-negative (nvm/core %g, link %g)",
			cfg.NVMPerCoreBW, cfg.LinkBW)
	}
	if cfg.LocalRateCap < 0 || cfg.RemoteRateCap < 0 {
		return fmt.Errorf("cluster: rate caps must be non-negative (local %g, remote %g)",
			cfg.LocalRateCap, cfg.RemoteRateCap)
	}
	if cfg.Iterations < 1 {
		return fmt.Errorf("cluster: iterations must be >= 1, got %d", cfg.Iterations)
	}
	if cfg.LocalEvery < 1 || cfg.RemoteEvery < 1 {
		return fmt.Errorf("cluster: checkpoint intervals must be >= 1 (local %d, remote %d)",
			cfg.LocalEvery, cfg.RemoteEvery)
	}
	if len(cfg.App.Chunks) == 0 {
		return fmt.Errorf("cluster: workload %q has no chunks", cfg.App.Name)
	}
	if cfg.PayloadCap < 1 {
		return fmt.Errorf("cluster: payload cap must be >= 1, got %d", cfg.PayloadCap)
	}
	if cfg.Shards < ShardsAuto {
		return fmt.Errorf("cluster: shards must be >= 0 (or ShardsAuto), got %d", cfg.Shards)
	}
	if len(cfg.Shapes) != 0 && len(cfg.Shapes) != cfg.Nodes {
		return fmt.Errorf("cluster: %d node shapes for %d nodes", len(cfg.Shapes), cfg.Nodes)
	}
	for n, s := range cfg.Shapes {
		if s.Cores < 0 || s.DRAM < 0 || s.NVM < 0 || s.NVMPerCoreBW < 0 {
			return fmt.Errorf("cluster: node %d shape has negative fields: %+v", n, s)
		}
	}
	if cfg.Topo != nil && cfg.Topo.Nodes() != cfg.Nodes {
		return fmt.Errorf("cluster: topology covers %d nodes, cluster has %d", cfg.Topo.Nodes(), cfg.Nodes)
	}
	if len(cfg.NodeStart) != 0 && len(cfg.NodeStart) != cfg.Nodes {
		return fmt.Errorf("cluster: %d node start delays for %d nodes", len(cfg.NodeStart), cfg.Nodes)
	}
	for n, d := range cfg.NodeStart {
		if d < 0 {
			return fmt.Errorf("cluster: node %d start delay %v is negative", n, d)
		}
	}
	if _, err := policy.ParsePlacement(cfg.Placement); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if cfg.Stagger.MaxConcurrent < 0 || cfg.Stagger.Slot < 0 {
		return fmt.Errorf("cluster: stagger fields must be non-negative (max %d, slot %v)",
			cfg.Stagger.MaxConcurrent, cfg.Stagger.Slot)
	}
	for i, f := range cfg.Failures {
		if !f.EffectiveKind().Correlated() && (f.Node < 0 || f.Node >= cfg.Nodes) {
			return fmt.Errorf("cluster: failure %d targets node %d, cluster has nodes 0..%d",
				i, f.Node, cfg.Nodes-1)
		}
		if f.After <= 0 {
			return fmt.Errorf("cluster: failure %d scheduled at %v; must be after t=0", i, f.After)
		}
		if f.Hard && f.Kind != "" && f.Kind != fault.Hard {
			return fmt.Errorf("cluster: failure %d sets hard but kind %q", i, f.Kind)
		}
		if err := f.toFault().Validate(cfg.Nodes, cfg.Topo); err != nil {
			return fmt.Errorf("cluster: failure %d: %w", i, err)
		}
	}
	if m := cfg.FaultModel; m != nil {
		if m.Horizon <= 0 {
			return fmt.Errorf("cluster: fault model horizon must be positive, got %v", m.Horizon)
		}
		if m.MTBFSoft < 0 || m.MTBFHard < 0 || m.MTBFRack < 0 || m.MTBFZone < 0 {
			return fmt.Errorf("cluster: fault model MTBFs must be non-negative (soft %v, hard %v, rack %v, zone %v)",
				m.MTBFSoft, m.MTBFHard, m.MTBFRack, m.MTBFZone)
		}
		if m.MTBFSoft == 0 && m.MTBFHard == 0 && m.MTBFRack == 0 && m.MTBFZone == 0 {
			return fmt.Errorf("cluster: fault model needs at least one positive MTBF")
		}
		if (m.MTBFRack > 0 || m.MTBFZone > 0) && cfg.Topo == nil && m.Topo == nil {
			return fmt.Errorf("cluster: fault model rack/zone MTBFs need a topology")
		}
		if m.Nodes < 0 || m.Nodes > cfg.Nodes {
			return fmt.Errorf("cluster: fault model spans %d nodes, cluster has %d", m.Nodes, cfg.Nodes)
		}
	}
	if _, err := policy.Parse(policy.KindLocal, cfg.Local); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if _, err := policy.Parse(policy.KindRemote, cfg.Remote); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if _, err := policy.Parse(policy.KindBottom, cfg.Bottom); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	// ExecTime is when the last rank finished its final iteration
	// (excluding remote-checkpoint drain).
	ExecTime time.Duration
	// LocalCkpts counts coordinated checkpoint rounds completed.
	LocalCkpts int
	// RemoteCkpts counts remote checkpoint triggers.
	RemoteCkpts int
	// CkptTimePerRank is the mean, per rank, of time spent blocked in
	// coordinated local checkpoints.
	CkptTimePerRank time.Duration
	// DataToNVMPerRank is the mean bytes a rank moved DRAM→NVM over the
	// run (pre-copy plus checkpoint — the Figures 7/8 right axis).
	DataToNVMPerRank float64
	// HelperUtil is each remote-tier helper's busy fraction (Table V).
	HelperUtil []float64
	// PreCopyBytes and CkptBytes split DataToNVM by origin.
	PreCopyBytes int64
	CkptBytes    int64
	// Restores / RemoteRestores count chunk recoveries after failures.
	Restores       int64
	RemoteRestores int64
	// PreCopyHitRate is the fraction of DRAM→NVM checkpoint traffic moved by
	// background pre-copy rather than at the blocking checkpoint (Figure 9).
	PreCopyHitRate float64
	// ReDirtyRate is re-dirtied (wasted) pre-copies per pre-copied chunk.
	ReDirtyRate float64
	// PeakCkptWindowBytes is the largest checkpoint volume the fabric moved
	// in any PeakWindow-wide window (Figure 10).
	PeakCkptWindowBytes float64
	// BottomObjects / BottomBytes / BottomDrainTime summarize the bottom
	// tier's end-of-run drain (zero when no bottom tier is configured).
	BottomObjects   int
	BottomBytes     int64
	BottomDrainTime time.Duration
	// FailuresInjected counts failures that actually fired.
	FailuresInjected int
	// FailuresSkipped counts scheduled failures dropped because no epoch was
	// live or another failure was already pending.
	FailuresSkipped int
	// Corruptions is how many committed chunks nvm-corrupt faults damaged;
	// LinkFlaps counts link-degradation events.
	Corruptions int
	LinkFlaps   int
	// RecoveryLocal/Remote/Bottom/Lost split post-failure chunk recoveries
	// by the cascade tier that served them.
	RecoveryLocal  int64
	RecoveryRemote int64
	RecoveryBottom int64
	RecoveryLost   int64
	// ShipRetries / BuddyFailovers count helper degraded-mode activity.
	ShipRetries    int64
	BuddyFailovers int64
	// MTTR is the mean failure→all-ranks-recovered repair time; DegradedTime
	// sums repair windows and link-flap outages.
	MTTR         time.Duration
	DegradedTime time.Duration
	// LineageViolations counts online invariant-checker breaches (zero when
	// the lineage tracer is disabled).
	LineageViolations int
	// SLOViolations counts objective breach episodes from the SLO flight
	// recorder (zero when SLO recording is disabled).
	SLOViolations int
	// DriftViolations counts drift-limit breach episodes from the model-drift
	// observatory (zero when drift recording is disabled).
	DriftViolations int
	// WorkloadChecksum fingerprints the final epoch's application memory; a
	// faulted run must match its fault-free twin.
	WorkloadChecksum uint64
	// Ranks is the total rank count.
	Ranks int
	// DrainGrants / DrainMaxQueued report the stagger gate's admissions and
	// deepest backlog (zero when staggering is off).
	DrainGrants    int
	DrainMaxQueued int
	// Replans counts placement re-plans applied during recovery.
	Replans int
}

// Cluster is a running (or finished) simulation instance.
type Cluster struct {
	Cfg    Config
	Env    *sim.Env
	Fabric *interconnect.Fabric
	// Obs is the run's observability hub: typed events, metrics, spans.
	Obs *obs.Observer
	// Lineage is the run's causal chunk tracer (nil unless Cfg.Lineage
	// enables it).
	Lineage *lineage.Tracer
	// SLO is the run's flight recorder (nil unless Cfg.SLO enables it).
	SLO *slo.Recorder
	// Drift is the run's model-drift observatory (nil unless Cfg.Drift
	// enables it). On sharded runs it is populated at collect time from the
	// merged event stream.
	Drift *drift.Observatory

	kernels []*nvmkernel.Kernel
	// rankBase is the prefix-sum rank numbering over this instance's nodes
	// (rankBase[n] = node n's first rank; rankBase[Nodes] = total ranks).
	rankBase []int
	barrier  rendezvous
	// newBarrier, when set, supplies the rendezvous ranks block on at
	// checkpoint boundaries instead of a fresh sim.Barrier — the sharded
	// engine injects each shard's cross-barrier gate here.
	newBarrier func(parties int) rendezvous
	// sharded is non-nil on the coordinator cluster of a partitioned run.
	sharded *shardEngine

	localPol   policy.LocalPolicy
	remoteTier policy.RemoteTier
	bottomTier policy.BottomTier

	// epoch state
	rankProcs []*sim.Proc
	engines   []policy.LocalEngine
	allStores []*core.Store
	// epochStores holds only the live epoch's stores (allStores accumulates
	// across recovery epochs) — the set the final content checksum walks.
	epochStores []*core.Store
	lastRemote  map[int]*sim.Completion
	// lastDrain chains mid-run bottom drains per holder node so drains of
	// successive remote bursts never overlap.
	lastDrain map[int]*sim.Completion

	committedIter  int
	pendingFailure *fault.Event
	ranksLive      bool
	appDone        time.Duration
	helperUtil     []float64
	bottomStats    pfs.DrainStats

	ckptTime   []time.Duration // per rank index, accumulated
	localCount int
	remCount   int
	failCount  int

	// control-plane machinery
	drainGate *policy.DrainGate
	injector  *fault.Injector
	// epochGen counts epoch spawns so deferred drain-admit processes can
	// detect that the epoch they queued for died.
	epochGen int
	// driveDone flips when the driver finishes teardown; the control tick
	// stops re-arming on it so the event queue can drain.
	driveDone   bool
	aborted     string
	replanCount int

	// degraded-mode bookkeeping
	skipCount     int
	corruptCount  int
	flapCount     int
	failureAt     time.Duration
	recoverWait   int
	mttrTotal     time.Duration
	mttrN         int
	degradedTotal time.Duration
	workSum       uint64
}

// rendezvous is the coordination point rank processes block on at
// checkpoint boundaries: a per-epoch sim.Barrier in the serial engine, a
// cross-shard gate in the sharded one.
type rendezvous interface {
	Await(p *sim.Proc)
}

// New builds a cluster (devices, kernels, fabric, policy tiers) without
// running it. The configuration is validated; policy names resolve through
// the registry.
func New(cfg Config) (*Cluster, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Drift != nil && cfg.Drift.Enabled {
		// Validate here, before the shard branch: the sharded coordinator
		// builds its observatory only at collect time.
		if err := cfg.Drift.Spec.Validate(); err != nil {
			return nil, err
		}
	}
	if want := cfg.Shards; want == 0 {
		want = DefaultShards
		if want > 1 || want == ShardsAuto {
			// Policy-driven sharding (the cmds' -shards flag): quietly keep
			// the serial engine when the config cannot shard, so ambient
			// defaults never change a run's event stream.
			if shardBlocker(&cfg) == "" {
				if n := resolveShardCount(&cfg, want); n > 1 {
					cfg.Shards = n
					return newSharded(cfg)
				}
			}
		}
	} else if want > 1 || want == ShardsAuto {
		// Explicit request in the Config: shard if possible, and say why not
		// when it is not.
		if reason := shardBlocker(&cfg); reason == "" {
			if n := resolveShardCount(&cfg, want); n > 1 {
				cfg.Shards = n
				return newSharded(cfg)
			}
			cfg.shardFallback = "topology supports only one shard"
		} else {
			cfg.shardFallback = reason
		}
	}
	localEntry, _ := policy.Parse(policy.KindLocal, cfg.Local)
	remoteEntry, _ := policy.Parse(policy.KindRemote, cfg.Remote)
	bottomEntry, _ := policy.Parse(policy.KindBottom, cfg.Bottom)

	remoteOpts := policy.RemoteOptions{
		RateCap:   cfg.RemoteRateCap,
		Delay:     cfg.RemoteDelay,
		Group:     cfg.RemoteGroup,
		Placement: cfg.Placement,
	}

	env := sim.NewEnv()
	// The remote tier may ask for extra non-compute fabric nodes (e.g.
	// erasure parity holders); those get NVM but no kernel or ranks, and —
	// being provisioned outside the fleet — no failure-domain coordinate.
	extra := remoteEntry.Remote().ExtraNodes(cfg.Nodes, remoteOpts)
	totalNodes := cfg.Nodes + extra
	fabric := interconnect.New(env, totalNodes, cfg.LinkBW)
	kernels := make([]*nvmkernel.Kernel, cfg.Nodes)
	nvms := make([]*mem.Device, totalNodes)
	for n := 0; n < cfg.Nodes; n++ {
		dramCap, nvmCap := cfg.DRAMPerNode, cfg.NVMPerNode
		bw, cores := cfg.NVMPerCoreBW, cfg.coresOf(n)
		if n < len(cfg.Shapes) {
			s := cfg.Shapes[n]
			if s.DRAM > 0 {
				dramCap = s.DRAM
			}
			if s.NVM > 0 {
				nvmCap = s.NVM
			}
			if s.NVMPerCoreBW > 0 {
				bw = s.NVMPerCoreBW
			}
		}
		dram := mem.NewDRAM(env, dramCap)
		var nvm *mem.Device
		if bw > 0 {
			nvm = mem.NewPCMWithPerCoreBW(env, nvmCap, bw, cores)
		} else {
			nvm = mem.NewPCM(env, nvmCap)
		}
		kernels[n] = nvmkernel.New(env, dram, nvm)
		nvms[n] = nvm
	}
	for n := cfg.Nodes; n < totalNodes; n++ {
		nvms[n] = mem.NewPCM(env, cfg.NVMPerNode)
	}
	o := obs.New(env)
	if cfg.shardFallback != "" {
		o.Emit(obs.Event{Type: obs.EvEngineWarn, Actor: "cluster", Attrs: map[string]string{
			"code": "shard-fallback",
			"msg": fmt.Sprintf("shards=%d requested but running serial: %s",
				cfg.Shards, cfg.shardFallback),
		}})
	}
	if cfg.Tracer == nil {
		// No trace sink will read spans from this run; turning recording
		// off also lets hot sites skip per-span name formatting.
		o.SetSpansEnabled(false)
	}
	o.UseSpanRecorder(cfg.Tracer)
	fabric.SetRecorder(o.Recorder(cfg.nodeOffset, "fabric"))

	remoteTier, err := remoteEntry.Remote().NewTier(policy.RemoteRuntime{
		Env:          env,
		Fabric:       fabric,
		NVMs:         nvms,
		ComputeNodes: cfg.Nodes,
		Recorder:     o.Recorder,
		Topo:         cfg.Topo,
	}, remoteOpts)
	if err != nil {
		return nil, fmt.Errorf("cluster: remote policy %q: %w", remoteEntry.Name, err)
	}
	bottomTier, err := bottomEntry.Bottom().NewTier(env, policy.BottomOptions{
		AggregateBW: cfg.BottomAggregateBW,
		StripeBW:    cfg.BottomStripeBW,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: bottom policy %q: %w", bottomEntry.Name, err)
	}
	if bottomTier != nil && remoteTier == nil {
		return nil, fmt.Errorf("cluster: bottom policy %q needs a remote tier to drain from", bottomEntry.Name)
	}
	// The PFS mirrors its drain writes onto the event bus so the lineage
	// tracer (and trace sinks) see bottom-tier copies land.
	if fs := policy.PFSOf(bottomTier); fs != nil {
		fs.SetRecorder(o.Recorder(0, "pfs"))
	}
	var tracer *lineage.Tracer
	if cfg.Lineage != nil && cfg.Lineage.Enabled {
		tracer = lineage.Attach(o, *cfg.Lineage)
	}
	var recorder *slo.Recorder
	if cfg.SLO != nil && cfg.SLO.Enabled {
		if err := cfg.SLO.Spec.Validate(); err != nil {
			return nil, err
		}
		recorder = slo.Attach(o, *cfg.SLO)
	}
	var observatory *drift.Observatory
	if cfg.Drift != nil && cfg.Drift.Enabled {
		observatory = drift.Attach(o, *cfg.Drift, driftInputs(&cfg))
	}

	rankBase := cfg.rankBases()
	return &Cluster{
		Cfg:        cfg,
		Env:        env,
		Fabric:     fabric,
		Obs:        o,
		Lineage:    tracer,
		SLO:        recorder,
		Drift:      observatory,
		kernels:    kernels,
		rankBase:   rankBase,
		localPol:   localEntry.Local(),
		remoteTier: remoteTier,
		bottomTier: bottomTier,
		lastRemote: make(map[int]*sim.Completion),
		lastDrain:  make(map[int]*sim.Completion),
		ckptTime:   make([]time.Duration, rankBase[cfg.Nodes]),
		drainGate:  policy.NewDrainGate(env, cfg.Stagger),
	}, nil
}

// driftInputs lowers the declared configuration to the §III model inputs the
// drift observatory predicts from: the analyze-time parameters an operator
// would compute offline, before any telemetry corrects them.
func driftInputs(cfg *Config) drift.Inputs {
	re, _ := policy.Parse(policy.KindRemote, cfg.Remote)
	remoteOn := re != nil && re.Name != "none"
	p := model.Params{
		TCompute:      cfg.App.IterTime * time.Duration(cfg.Iterations),
		CkptSize:      cfg.App.CheckpointSize(),
		NVMBWPerCore:  cfg.NVMPerCoreBW,
		IntervalLocal: cfg.App.IterTime * time.Duration(cfg.LocalEvery),
	}
	if remoteOn {
		p.IntervalRemote = cfg.App.IterTime * time.Duration(cfg.LocalEvery*cfg.RemoteEvery)
		p.RemoteBWPerCore = cfg.RemoteRateCap
		if p.RemoteBWPerCore <= 0 && cfg.CoresPerNode > 0 {
			// No explicit drain cap: a node's ranks share the fabric link.
			p.RemoteBWPerCore = cfg.LinkBW / float64(cfg.CoresPerNode)
		}
	}
	if m := cfg.FaultModel; m != nil {
		p.MTBFLocal = m.MTBFSoft
		p.MTBFRemote = m.MTBFHard
	}
	return drift.Inputs{
		Params:   p,
		Ranks:    cfg.totalRanks(),
		IterTime: cfg.App.IterTime,
		RemoteOn: remoteOn,
	}
}

// nodeOfRank resolves a rank to its owning node through the prefix sums.
func (c *Cluster) nodeOfRank(rank int) int {
	return sort.Search(c.Cfg.Nodes, func(n int) bool { return c.rankBase[n+1] > rank })
}

// Kernel returns node n's kernel (for tests). Nodes are numbered globally;
// on a sharded cluster the lookup resolves into the owning shard.
func (c *Cluster) Kernel(n int) *nvmkernel.Kernel {
	if c.sharded != nil {
		sub := c.sharded.shardOf(n)
		return sub.kernels[n-sub.Cfg.nodeOffset]
	}
	return c.kernels[n]
}

// Mesh returns the buddy tier's remote mesh, or nil when the remote policy is
// not buddy-based (lower-level surface for tests and drain experiments). A
// sharded cluster has one mesh per shard; this returns shard 0's.
func (c *Cluster) Mesh() *remote.Mesh {
	if c.sharded != nil {
		return c.sharded.subs[0].Mesh()
	}
	return policy.BuddyMesh(c.remoteTier)
}

// RemoteTier returns the composed remote tier (nil when disabled). A sharded
// cluster has one tier instance per shard; this returns shard 0's, which is
// enough for "is the remote level on" checks.
func (c *Cluster) RemoteTier() policy.RemoteTier {
	if c.sharded != nil {
		return c.sharded.subs[0].remoteTier
	}
	return c.remoteTier
}

// EventsFired counts simulation events dispatched by the run's engine —
// summed across shards in sharded mode (the coordinator's merge env
// dispatches almost nothing itself).
func (c *Cluster) EventsFired() uint64 {
	if c.sharded != nil {
		return c.sharded.group.EventsFired()
	}
	return c.Env.EventsFired()
}

// CkptFabricBytes is the checkpoint-class traffic the fabric moved, summed
// across shards in sharded mode (where the coordinator has no fabric of its
// own and c.Fabric is nil).
func (c *Cluster) CkptFabricBytes() float64 {
	if c.sharded != nil {
		var t float64
		for _, sub := range c.sharded.subs {
			t += sub.Fabric.Bytes(interconnect.ClassCkpt)
		}
		return t
	}
	return c.Fabric.Bytes(interconnect.ClassCkpt)
}

// Run executes the configured workload to completion (surviving injected
// failures) and returns the result summary.
func Run(cfg Config) (Result, *Cluster, error) {
	c, err := New(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	res, err := c.Execute()
	return res, c, err
}

// Execute runs an already-built cluster to completion. Callers that need the
// cluster's surfaces before the run starts (e.g. to mount a live
// introspection server over Obs and Lineage) use New + Execute instead of
// Run.
func (c *Cluster) Execute() (Result, error) {
	if c.sharded != nil {
		return c.executeSharded()
	}
	events := make([]fault.Event, 0, len(c.Cfg.Failures))
	for _, f := range c.Cfg.Failures {
		events = append(events, f.toFault())
	}
	if m := c.Cfg.FaultModel; m != nil {
		mm := *m
		if mm.Nodes == 0 {
			mm.Nodes = c.Cfg.Nodes
		}
		if mm.Topo == nil {
			mm.Topo = c.Cfg.Topo
		}
		events = append(events, mm.Schedule()...)
	}
	// A Control-enabled run keeps the injector around even with no
	// pre-scheduled events, so commands arriving over the API can inject
	// failures mid-flight.
	if len(events) > 0 || c.Cfg.Control != nil {
		c.injector = fault.NewInjector(c.Env, c.Cfg.FaultSeed, c.Cfg.Topo, fault.Surfaces{
			Kill:       c.injectFailure,
			CorruptNVM: c.corruptNVM,
			FlapLink:   c.flapLink,
		})
		c.injector.ScheduleAll(events)
	}
	c.startControl()
	c.Env.Go("driver", c.drive)
	c.Env.Run()
	res := c.collect()
	if c.aborted != "" {
		return res, fmt.Errorf("cluster: run aborted: %s", c.aborted)
	}
	if c.Lineage != nil && c.Cfg.Lineage.Strict {
		if err := c.Lineage.Err(); err != nil {
			return res, err
		}
	}
	if c.SLO != nil && c.SLO.Strict() {
		if err := c.SLO.Err(); err != nil {
			return res, err
		}
	}
	if c.Drift != nil && c.Drift.Strict() {
		if err := c.Drift.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// RelaunchDelay is the job relaunch latency charged on every restart
// (scheduler requeue, process startup) — the fixed term of any MTTR before
// the restore traffic itself.
const RelaunchDelay = 2 * time.Second

// MustRun is Run for callers with statically known-good configurations
// (experiment harnesses, examples, tests); it panics on a config error.
func MustRun(cfg Config) (Result, *Cluster) {
	res, c, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res, c
}

// drive runs epochs (spawn ranks, join, recover) until the job completes.
func (c *Cluster) drive(p *sim.Proc) {
	for {
		procs := c.spawnEpoch(p)
		c.ranksLive = true
		for _, rp := range procs {
			p.Join(rp)
		}
		c.ranksLive = false
		if c.pendingFailure == nil || c.aborted != "" {
			break
		}
		f := *c.pendingFailure
		c.pendingFailure = nil
		c.recover(p, f)
	}
	c.appDone = p.Now()
	c.workSum = c.contentChecksum()
	// Drain outstanding remote checkpoints, then shut everything down.
	for n := 0; n < c.Cfg.Nodes; n++ {
		if done := c.lastRemote[n]; done != nil {
			done.Await(p)
		}
	}
	// Capture helper utilization before the tier is torn down; the
	// denominator is the post-drain clock since the helpers may still have
	// been working past the application's completion.
	if c.remoteTier != nil {
		c.helperUtil = c.remoteTier.Utilization(p.Now())
	}
	c.drainBottom(p)
	c.shutdown()
	c.driveDone = true
}

// drainBottom flushes every remote holder's committed objects to the bottom
// tier, one concurrent drain per holder (the hierarchy experiment's final
// stage). No-op without a bottom tier.
func (c *Cluster) drainBottom(p *sim.Proc) {
	if c.bottomTier == nil || c.remoteTier == nil {
		return
	}
	// Mid-run drains chained off remote bursts must settle first so the final
	// sweep never runs concurrently against the same holder.
	for n := 0; n < c.Fabric.Nodes(); n++ {
		if comp := c.lastDrain[n]; comp != nil {
			comp.Await(p)
		}
	}
	start := p.Now()
	var procs []*sim.Proc
	for n := 0; n < c.Fabric.Nodes(); n++ {
		src := c.remoteTier.DrainSource(n)
		if src == nil {
			continue
		}
		procs = append(procs, c.Env.Go(fmt.Sprintf("drain/node%d", n), func(dp *sim.Proc) {
			st := c.bottomTier.Drain(dp, src)
			c.bottomStats.Objects += st.Objects
			c.bottomStats.Bytes += st.Bytes
		}))
	}
	for _, dp := range procs {
		p.Join(dp)
	}
	c.bottomStats.Duration = p.Now() - start
}

// spawnEpoch builds fresh per-epoch machinery (barrier, tier epoch state,
// engines, stores) and spawns one process per rank, resuming at the committed
// iteration.
func (c *Cluster) spawnEpoch(p *sim.Proc) []*sim.Proc {
	cfg := c.Cfg
	ranks := c.rankBase[cfg.Nodes]
	if c.newBarrier != nil {
		c.barrier = c.newBarrier(ranks)
	} else {
		c.barrier = sim.NewBarrier(c.Env, ranks)
	}
	c.engines = nil
	c.epochStores = nil
	c.epochGen++
	if c.remoteTier != nil {
		c.remoteTier.BeginEpoch()
	}
	start := c.committedIter
	procs := make([]*sim.Proc, 0, ranks)
	for r := 0; r < ranks; r++ {
		procs = append(procs, c.Env.Go(fmt.Sprintf("rank%d", r+cfg.rankOffset), func(p *sim.Proc) {
			c.rankBody(p, r, start)
		}))
	}
	c.rankProcs = procs
	return procs
}

// rankBody is one application process: setup/recovery, then the iterate →
// coordinated-checkpoint loop.
func (c *Cluster) rankBody(p *sim.Proc, rank, startIter int) {
	cfg := c.Cfg
	node := c.nodeOfRank(rank)
	lane := rank - c.rankBase[node]
	cores := cfg.coresOf(node)
	leader := lane == 0
	kernel := c.kernels[node]
	// Fleet ramp-up: a node's ranks come up NodeStart[node] into the run.
	// Restart epochs relaunch everyone together (RelaunchDelay covers it).
	if startIter == 0 && node < len(cfg.NodeStart) && cfg.NodeStart[node] > 0 {
		p.Sleep(cfg.NodeStart[node])
	}
	// Names and recorder scopes carry the shard offsets so the merged
	// observability streams of a partitioned run number ranks and nodes
	// globally; all engine-side indexing stays shard-local.
	name := fmt.Sprintf("rank%d", rank+cfg.rankOffset)
	rec := c.Obs.Recorder(node+cfg.nodeOffset, name)
	if leader && rec.SpansActive() {
		rec.NameProcess(fmt.Sprintf("node%d", node+cfg.nodeOffset))
	}

	store := core.NewStore(kernel.Attach(name), core.Options{
		PayloadCap:    cfg.PayloadCap,
		SingleVersion: cfg.SingleVersion,
		// A corrupted local version must surface as a degraded-mode signal
		// (drop to the next cascade tier), not a fatal restore error.
		SalvageCorrupt: true,
	})
	// Attach before workload setup so restore events are captured too.
	store.SetRecorder(rec)
	c.allStores = append(c.allStores, store)
	c.epochStores = append(c.epochStores, store)

	// Stagger each rank's communication phases so co-located ranks do not
	// inject at identical instants — real ranks drift apart; perfect
	// alignment would manufacture artificial self-contention.
	spec := cfg.App
	if spec.CommPerIter > 0 {
		n := len(spec.CommPhases)
		if n == 0 {
			n = workload.DefaultCommOps
			for i := 0; i < n; i++ {
				spec.CommPhases = append(spec.CommPhases, (float64(i)+0.5)/float64(n))
			}
		} else {
			spec.CommPhases = append([]float64(nil), spec.CommPhases...)
		}
		offset := float64(lane) / float64(cores) / float64(n)
		for i := range spec.CommPhases {
			ph := spec.CommPhases[i] + offset
			if ph > 1 {
				ph -= 1
			}
			spec.CommPhases[i] = ph
		}
	}

	app, err := workload.Setup(p, store, spec)
	if err != nil {
		panic(fmt.Sprintf("cluster: rank %d setup: %v", rank, err))
	}
	// Post-failure recovery cascade, per chunk: a surviving local version
	// restored in place ("local"), else the remote tier's committed copy
	// (buddy replica or parity rebuild, "remote"), else the bottom tier's
	// drained object ("bottom"). A chunk no tier can serve is "lost" — the
	// replayed iterations regenerate it.
	if startIter > 0 {
		reg := c.Obs.Registry()
		for _, ch := range app.Chunks {
			tier := "local"
			if !ch.Restored {
				tier = "lost"
				var fetchSeq uint64
				if c.remoteTier != nil {
					if data, _, seq, ok := c.remoteTier.Fetch(p, node, lane, name, ch.ID); ok {
						if err := store.AdoptRemote(p, ch, data, 0); err != nil {
							panic(err)
						}
						tier, fetchSeq = "remote", seq
					}
				}
				if tier == "lost" && c.bottomTier != nil {
					if data, _, seq, ok := c.bottomTier.Fetch(p, name+"/"+ch.Name); ok {
						if err := store.AdoptBottom(p, ch, data, 0); err != nil {
							panic(err)
						}
						tier, fetchSeq = "bottom", seq
					}
				}
				rec.Emit(obs.EvChunkRecovered, name+"/"+ch.Name,
					ch.Size, map[string]string{
						"tier": tier,
						"seq":  strconv.FormatUint(fetchSeq, 10),
					})
			}
			reg.Counter("recovery_path", obs.Labels{"tier": tier}).Add(1)
			rec.Child(tier).Add("recovery_chunks", 1)
		}
		// The last rank through the cascade closes the repair window.
		c.recoverWait--
		if c.recoverWait == 0 {
			mttr := p.Now() - c.failureAt
			c.mttrTotal += mttr
			c.mttrN++
			c.degradedTotal += mttr
			rec.Emit(obs.EvRepairDone, "", 0, map[string]string{
				"mttr_us": strconv.FormatInt(mttr.Microseconds(), 10),
			})
		}
	}
	app.SyncIteration(int64(startIter))
	app.Comm = func(p *sim.Proc, bytes int64) {
		c.Fabric.Send(p, node, (node+1)%cfg.Nodes, bytes)
	}

	var engine policy.LocalEngine
	if !cfg.NoCheckpoint {
		engine = c.localPol.NewEngine(store, policy.LocalOptions{
			RateCap:   cfg.LocalRateCap,
			BWPerCore: kernel.NVM.PerCoreWriteBW(cores),
			Rec:       rec,
			TraceLane: lane,
		})
		c.engines = append(c.engines, engine)
	}
	if c.remoteTier != nil {
		c.remoteTier.Register(node, store)
	}

	for iter := startIter; iter < cfg.Iterations; iter++ {
		if engine != nil && iter%cfg.LocalEvery == 0 {
			engine.BeginInterval(p)
		}
		if c.remoteTier != nil && leader && iter%cfg.RemoteEvery == 0 {
			c.remoteTier.BeginInterval(node)
		}
		iterStart := p.Now()
		if err := app.Iterate(p); err != nil {
			panic(err)
		}
		if rec.SpansActive() {
			rec.Span(fmt.Sprintf("iter %d", iter), "compute", lane,
				iterStart, p.Now()-iterStart, nil)
		}
		rec.Emit(obs.EvIteration, "", 0,
			map[string]string{"iter": strconv.Itoa(iter)})
		if cfg.NoCheckpoint {
			c.barrier.Await(p)
			if rank == 0 {
				c.committedIter = iter + 1
			}
			continue
		}
		if (iter+1)%cfg.LocalEvery != 0 {
			// Mid-interval iteration: no coordinated checkpoint; recovery
			// would roll back to the last checkpointed iteration.
			continue
		}
		qStart := p.Now()
		engine.Quiesce(p)
		if d := p.Now() - qStart; d > 0 {
			rec.Span("quiesce", "ckpt", lane, qStart, d, nil)
		}
		c.barrier.Await(p) // coordinated checkpoint entry
		ckStart := p.Now()
		var st core.CkptStats
		if cfg.ForceFull {
			st = store.ChkptAllForce(p)
		} else {
			st = store.ChkptAll(p)
		}
		engine.OnCheckpoint(ckStart)
		c.ckptTime[rank] += st.Duration
		if rec.SpansActive() {
			rec.Span("local ckpt", "ckpt", lane, ckStart, st.Duration,
				map[string]string{"copied": fmt.Sprintf("%d", st.ChunksCopied),
					"skipped": fmt.Sprintf("%d", st.ChunksSkipped)})
		}
		c.barrier.Await(p) // checkpoint exit
		if rank == 0 {
			c.committedIter = iter + 1
			c.localCount++
		}
		if c.remoteTier != nil && leader && (iter+1)%cfg.RemoteEvery == 0 {
			c.lastRemote[node] = c.triggerRemote(p, node)
			rec.Instant("remote trigger", "remote", lane, p.Now(), nil)
			rec.Emit(obs.EvRemoteTrigger, "", 0,
				map[string]string{"iter": fmt.Sprintf("%d", iter)})
			if c.bottomTier != nil {
				c.scheduleDrain(node, c.lastRemote[node])
			}
			if rank == 0 {
				c.remCount++
			}
		}
	}
}

// injectFailure fires from scheduler context: it kills every rank process
// and records the failure for the driver's recovery pass. A buddy-loss fault
// resolves its victim first — the node physically holding ev.Node's remote
// copies — and takes that node's NVM with it. Faults that land while no epoch
// is live (or while another failure is pending) are not silently dropped:
// they are counted and published as skipped.
func (c *Cluster) injectFailure(ev fault.Event) {
	if !c.ranksLive || c.pendingFailure != nil {
		reason := "ranks-not-live"
		if c.pendingFailure != nil {
			reason = "failure-pending"
		}
		c.skipCount++
		srec := c.Obs.Recorder(ev.Node, "cluster")
		srec.Add("failures_skipped", 1)
		srec.Emit(obs.EvFailureSkipped, "", 0,
			map[string]string{"kind": string(ev.Kind), "reason": reason})
		return
	}
	if ev.Kind == fault.BuddyLoss && c.remoteTier != nil {
		if holder := c.remoteTier.HolderOf(ev.Node); holder >= 0 && holder < c.Cfg.Nodes {
			ev.Node = holder
		}
	}
	c.pendingFailure = &ev
	c.failCount++
	c.failureAt = c.Env.Now()
	victims, hard := c.failureEffect(ev)
	if c.remoteTier != nil {
		for _, n := range victims {
			c.remoteTier.NodeFailed(n, hard)
		}
	}
	frec := c.Obs.Recorder(ev.Node, "cluster")
	frec.Instant(string(ev.Kind)+" failure", "failure", 0, c.Env.Now(), nil)
	attrs := map[string]string{
		"kind":  string(ev.Kind),
		"cause": ev.Label(),
		"hard":  strconv.FormatBool(hard),
	}
	if ev.Kind.Correlated() {
		// Domain outages fail many nodes at once; downstream consumers
		// (the lineage invariant checker in particular) need the full
		// victim set to invalidate every copy the outage takes with it.
		ids := make([]string, len(victims))
		for i, n := range victims {
			ids[i] = strconv.Itoa(n)
		}
		attrs["victims"] = strings.Join(ids, ",")
	}
	frec.Emit(obs.EvFailure, "", 0, attrs)
	for _, rp := range c.rankProcs {
		if !rp.Done() {
			rp.Kill()
		}
	}
}

// failureEffect resolves an event's victim node set (domain kinds fail every
// node of the targeted domain atomically) and whether the victims' NVM dies
// with them: hard and buddy-loss faults always, domain outages unless Soft.
func (c *Cluster) failureEffect(ev fault.Event) (victims []int, hard bool) {
	victims = ev.Victims(c.Cfg.Topo)
	switch {
	case ev.Kind == fault.Hard || ev.Kind == fault.BuddyLoss:
		hard = true
	case ev.Kind.Correlated():
		hard = !ev.Soft
	}
	return victims, hard
}

// corruptNVM damages committed chunk payloads on ev.Node's NVM (bit-flips, or
// torn writes when ev.Torn). The damage is latent: it surfaces only when a
// later recovery's restore hits the checksum mismatch.
func (c *Cluster) corruptNVM(rng *rand.Rand, ev fault.Event) int {
	if ev.Node < 0 || ev.Node >= len(c.kernels) {
		return 0
	}
	victims := core.CorruptCommitted(c.kernels[ev.Node], rng, ev.Chunks, ev.Torn)
	c.corruptCount += len(victims)
	rec := c.Obs.Recorder(ev.Node, "cluster")
	rec.Add("nvm_corruptions", int64(len(victims)))
	rec.Emit(obs.EvNVMCorrupt, fmt.Sprintf("%d chunks", len(victims)), 0,
		map[string]string{"torn": fmt.Sprintf("%t", ev.Torn)})
	for _, v := range victims {
		rec.Emit(obs.EvChunkCorrupt, v.Key(), v.Size, map[string]string{
			"seq":     strconv.FormatUint(v.Seq, 10),
			"version": strconv.FormatUint(v.Version, 10),
			"torn":    fmt.Sprintf("%t", ev.Torn),
			"cause":   ev.Label(),
		})
	}
	return len(victims)
}

// flapLink degrades (Factor in (0,1)) or cuts (Factor 0) a node's fabric
// links and schedules the restore after ev.Duration. In-flight transfers
// stall or stretch; helpers see the outage through their pre-flight estimate
// and back off.
func (c *Cluster) flapLink(ev fault.Event) {
	c.flapCount++
	c.degradedTotal += ev.Duration
	c.Fabric.SetLinkFactor(ev.Node, ev.Factor)
	c.Obs.Recorder(ev.Node, "cluster").Emit(obs.EvLinkFlap, "", 0,
		map[string]string{
			"factor": fmt.Sprintf("%g", ev.Factor),
			"secs":   fmt.Sprintf("%g", ev.Duration.Seconds()),
			"cause":  ev.Label(),
		})
	node := ev.Node
	c.Env.Schedule(ev.Duration, func() {
		c.Fabric.RestoreLink(node)
		c.Obs.Recorder(node, "cluster").Emit(obs.EvLinkRestore, "", 0, nil)
	})
}

// scheduleDrain chains a bottom-tier drain of node's remote holder behind the
// burst that done tracks, making drained objects available for bottom-tier
// recovery mid-run rather than only at the end. Drains on one holder are
// serialized; pfs drains are version-idempotent so overlap with the final
// sweep is harmless in content, only double-costed — hence the chaining.
func (c *Cluster) scheduleDrain(node int, done *sim.Completion) {
	holder := c.remoteTier.HolderOf(node)
	src := c.remoteTier.DrainSource(holder)
	if src == nil {
		return
	}
	prev := c.lastDrain[holder]
	comp := sim.NewCompletion(c.Env)
	c.lastDrain[holder] = comp
	c.Env.Go(fmt.Sprintf("drain/mid/node%d", holder), func(p *sim.Proc) {
		if prev != nil {
			prev.Await(p)
		}
		done.Await(p)
		st := c.bottomTier.Drain(p, src)
		c.bottomStats.Objects += st.Objects
		c.bottomStats.Bytes += st.Bytes
		comp.Complete()
	})
}

// contentChecksum fingerprints every live store's persistent chunk contents,
// in process-name order, so runs of the same scenario compare bit-for-bit.
func (c *Cluster) contentChecksum() uint64 {
	stores := append([]*core.Store(nil), c.epochStores...)
	sort.Slice(stores, func(i, j int) bool {
		return stores[i].Proc().Name() < stores[j].Proc().Name()
	})
	h := fnv.New64a()
	var buf [8]byte
	for _, s := range stores {
		sum := s.ContentChecksum()
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
		h.Write([]byte(s.Proc().Name()))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// recover applies the failure's effect on the machines and tears down the
// dead epoch's machinery. The whole job restarts from the last coordinated
// checkpoint: every node's processes are gone (DRAM state lost), NVM
// survives everywhere except a hard-failed node.
func (c *Cluster) recover(p *sim.Proc, f fault.Event) {
	for _, e := range c.engines {
		e.Stop()
	}
	victims, hard := c.failureEffect(f)
	dead := make(map[int]bool, len(victims))
	for _, n := range victims {
		dead[n] = true
	}
	for n, k := range c.kernels {
		if hard && dead[n] {
			k.HardFail()
		} else {
			k.SoftReset()
		}
	}
	// Re-home replica placement away from the victims before the next
	// epoch's BeginEpoch rebuilds the helper agents: a hard or correlated
	// loss took (or will keep taking) the copies those nodes held, so the
	// re-rung plan stops routing anyone's remote copies at them.
	if c.Cfg.ReplanOnFailure && c.remoteTier != nil && (hard || f.Kind.Correlated()) {
		if rp, ok := c.remoteTier.(policy.Replanner); ok && rp.Replan(victims) {
			c.replanCount++
			ids := make([]string, len(victims))
			for i, n := range victims {
				ids[i] = strconv.Itoa(n)
			}
			c.Obs.Recorder(f.Node, "cluster").Emit(obs.EvReplan, "", 0,
				map[string]string{
					"kind":  string(f.Kind),
					"avoid": strings.Join(ids, ","),
				})
		}
	}
	c.recoverWait = c.rankBase[c.Cfg.Nodes]
	p.Sleep(RelaunchDelay)
	if c.remoteTier != nil {
		for _, n := range victims {
			c.remoteTier.NodeRecovered(n)
		}
	}
	c.Obs.Recorder(f.Node, "cluster").Emit(obs.EvRecovery, "", 0,
		map[string]string{
			"resume_iter": fmt.Sprintf("%d", c.committedIter),
			"kind":        string(f.Kind),
			"cause":       f.Label(),
		})
}

// shutdown stops engines and the remote tier so the event queue drains.
func (c *Cluster) shutdown() {
	for _, e := range c.engines {
		e.Stop()
	}
	if c.remoteTier != nil {
		c.remoteTier.Shutdown()
	}
}

// collect aggregates counters into a Result.
func (c *Cluster) collect() Result {
	cfg := c.Cfg
	ranks := c.rankBase[cfg.Nodes]
	res := Result{
		ExecTime:         c.appDone,
		LocalCkpts:       c.localCount,
		RemoteCkpts:      c.remCount,
		FailuresInjected: c.failCount,
		Ranks:            ranks,
	}
	var ckptTotal time.Duration
	for _, d := range c.ckptTime {
		ckptTotal += d
	}
	res.CkptTimePerRank = ckptTotal / time.Duration(ranks)
	for _, s := range c.allStores {
		res.PreCopyBytes += s.Counters.Get("precopy_bytes")
		res.CkptBytes += s.Counters.Get("ckpt_bytes")
		res.Restores += s.Counters.Get("restores")
		res.RemoteRestores += s.Counters.Get("remote_restores")
	}
	res.DataToNVMPerRank = float64(res.PreCopyBytes+res.CkptBytes) / float64(ranks)
	res.HelperUtil = c.helperUtil
	res.BottomObjects = c.bottomStats.Objects
	res.BottomBytes = c.bottomStats.Bytes
	res.BottomDrainTime = c.bottomStats.Duration

	// Derived figures from the obs registry's cluster-scope rollups: the
	// Figure 9 pre-copy hit and re-dirty rates and the Figure 10 peak
	// per-window checkpoint traffic. Published back as gauges so the report
	// sinks pick them up.
	reg := c.Obs.Registry()
	pre := float64(reg.Counter("precopy_bytes", nil).Get())
	ck := float64(reg.Counter("ckpt_bytes", nil).Get())
	if pre+ck > 0 {
		res.PreCopyHitRate = pre / (pre + ck)
	}
	precopied := float64(reg.Counter("chunks_precopied", nil).Get())
	if precopied > 0 {
		res.ReDirtyRate = float64(reg.Counter("redirtied_chunks", nil).Get()) / precopied
	}
	res.PeakCkptWindowBytes, _ = reg.Timeline("fabric_bytes", obs.Labels{"class": "ckpt"}).
		PeakDiffBucket(c.Env.Now(), PeakWindow)
	reg.Gauge("precopy_hit_rate", nil).Set(res.PreCopyHitRate)
	reg.Gauge("redirty_rate", nil).Set(res.ReDirtyRate)
	reg.Gauge("peak_ckpt_window_bytes", nil).Set(res.PeakCkptWindowBytes)

	// Degraded-mode accounting: which cascade tier served each recovered
	// chunk, helper retry/failover effort, and repair-time gauges.
	res.FailuresSkipped = c.skipCount
	res.Corruptions = c.corruptCount
	res.LinkFlaps = c.flapCount
	res.RecoveryLocal = reg.Counter("recovery_path", obs.Labels{"tier": "local"}).Get()
	res.RecoveryRemote = reg.Counter("recovery_path", obs.Labels{"tier": "remote"}).Get()
	res.RecoveryBottom = reg.Counter("recovery_path", obs.Labels{"tier": "bottom"}).Get()
	res.RecoveryLost = reg.Counter("recovery_path", obs.Labels{"tier": "lost"}).Get()
	res.ShipRetries = reg.Counter("helper_ship_retries", nil).Get()
	res.BuddyFailovers = reg.Counter("helper_buddy_failovers", nil).Get()
	if c.mttrN > 0 {
		res.MTTR = c.mttrTotal / time.Duration(c.mttrN)
	}
	res.DegradedTime = c.degradedTotal
	if c.Lineage != nil {
		res.LineageViolations = c.Lineage.ViolationCount()
	}
	if c.SLO != nil {
		// Seal the flight recorder at the run's end so the tail window and
		// the final (whole-run) objectives are evaluated before strict-mode
		// checks and report building read it.
		c.SLO.Finalize(c.Env.Now())
		res.SLOViolations = c.SLO.ViolationCount()
	}
	if c.Drift != nil {
		// Same sealing order as the SLO recorder: close the tail window
		// before strict checks and report building read the observatory.
		c.Drift.Finalize(c.Env.Now())
		res.DriftViolations = c.Drift.ViolationCount()
	}
	res.WorkloadChecksum = c.workSum
	reg.Gauge("mttr_seconds", nil).Set(res.MTTR.Seconds())
	reg.Gauge("degraded_seconds_total", nil).Set(res.DegradedTime.Seconds())
	if c.drainGate != nil {
		res.DrainGrants = c.drainGate.Grants
		res.DrainMaxQueued = c.drainGate.MaxQueued
	}
	res.Replans = c.replanCount
	return res
}

// PeakWindow is the window width used for the peak-interconnect-usage figure
// (Figure 10 samples checkpoint traffic in 5-second buckets).
const PeakWindow = 5 * time.Second
