// Package cluster assembles the full system: nodes with DRAM + NVM and a
// kernel each, an RDMA fabric between them, MPI-rank-like application
// processes running a workload spec, per-rank pre-copy engines, per-node
// remote-checkpoint helper agents, coordinated local checkpoints at every
// iteration boundary, asynchronous remote checkpoints every K-th local one,
// and failure injection with multilevel recovery (local NVM restore for soft
// failures, buddy-node fetch for hard ones).
//
// This is the harness behind Figures 7, 8, 9 and 10 and Table V.
package cluster

import (
	"fmt"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/obs"
	"nvmcp/internal/precopy"
	"nvmcp/internal/remote"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// FailureEvent schedules one injected failure.
type FailureEvent struct {
	// After is the absolute virtual time of the failure.
	After time.Duration
	// Node is the failing node.
	Node int
	// Hard marks an unrecoverable node failure (NVM lost); otherwise the
	// failure is soft (processes die, NVM survives).
	Hard bool
}

// Config describes one cluster run.
type Config struct {
	Nodes        int
	CoresPerNode int
	DRAMPerNode  int64
	NVMPerNode   int64
	// NVMPerCoreBW, when non-zero, pins the effective NVM write bandwidth
	// per core (the Figures 7/8 x-axis); zero uses the Table I PCM device.
	NVMPerCoreBW float64
	LinkBW       float64

	App        workload.AppSpec
	Iterations int

	// LocalScheme selects the local pre-copy policy.
	LocalScheme  precopy.Scheme
	LocalRateCap float64
	// LocalEvery takes a coordinated local checkpoint every N-th iteration
	// (default 1): the knob for checkpoint-interval studies — recovery
	// rolls back to the last *checkpointed* iteration.
	LocalEvery int
	// ForceFull disables dirty tracking at checkpoints (the classic
	// full-checkpoint baseline used for 'no pre-copy' comparisons).
	ForceFull bool
	// NoCheckpoint disables checkpointing entirely (the ideal run used as
	// the efficiency denominator).
	NoCheckpoint bool

	// Remote enables buddy-node remote checkpoints every RemoteEvery-th
	// local checkpoint.
	Remote        bool
	RemoteScheme  remote.Scheme
	RemoteRateCap float64
	RemoteDelay   time.Duration
	RemoteEvery   int

	Failures []FailureEvent

	// PayloadCap caps real payload bytes per chunk (default 4 KB for
	// cluster-scale runs; unit tests use larger).
	PayloadCap    int
	SingleVersion bool

	// Tracer, when set, redirects the run's Chrome-trace span output —
	// compute iterations, quiesce, coordinated checkpoints per rank,
	// remote-checkpoint triggers, helper ship spans, and failures — into an
	// externally owned recorder. Without it the same spans accumulate in the
	// cluster's Observer, whose sinks render them on demand.
	Tracer *trace.SpanRecorder
}

func (cfg *Config) setDefaults() {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.CoresPerNode == 0 {
		cfg.CoresPerNode = 12
	}
	if cfg.DRAMPerNode == 0 {
		cfg.DRAMPerNode = 48 * mem.GB
	}
	if cfg.NVMPerNode == 0 {
		cfg.NVMPerNode = 48 * mem.GB
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 5
	}
	if cfg.LocalEvery == 0 {
		cfg.LocalEvery = 1
	}
	if cfg.RemoteEvery == 0 {
		cfg.RemoteEvery = 4
	}
	if cfg.PayloadCap == 0 {
		cfg.PayloadCap = 4096
	}
}

// Result summarizes a run.
type Result struct {
	// ExecTime is when the last rank finished its final iteration
	// (excluding remote-checkpoint drain).
	ExecTime time.Duration
	// LocalCkpts counts coordinated checkpoint rounds completed.
	LocalCkpts int
	// RemoteCkpts counts remote checkpoint triggers.
	RemoteCkpts int
	// CkptTimePerRank is the mean, per rank, of time spent blocked in
	// coordinated local checkpoints.
	CkptTimePerRank time.Duration
	// DataToNVMPerRank is the mean bytes a rank moved DRAM→NVM over the
	// run (pre-copy plus checkpoint — the Figures 7/8 right axis).
	DataToNVMPerRank float64
	// HelperUtil is each node helper's busy fraction over the run (Table V).
	HelperUtil []float64
	// PreCopyBytes and CkptBytes split DataToNVM by origin.
	PreCopyBytes int64
	CkptBytes    int64
	// Restores / RemoteRestores count chunk recoveries after failures.
	Restores       int64
	RemoteRestores int64
	// PreCopyHitRate is the fraction of DRAM→NVM checkpoint traffic moved by
	// background pre-copy rather than at the blocking checkpoint (Figure 9).
	PreCopyHitRate float64
	// ReDirtyRate is re-dirtied (wasted) pre-copies per pre-copied chunk.
	ReDirtyRate float64
	// PeakCkptWindowBytes is the largest checkpoint volume the fabric moved
	// in any PeakWindow-wide window (Figure 10).
	PeakCkptWindowBytes float64
	// FailuresInjected counts failures that actually fired.
	FailuresInjected int
	// Ranks is the total rank count.
	Ranks int
}

// Cluster is a running (or finished) simulation instance.
type Cluster struct {
	Cfg    Config
	Env    *sim.Env
	Fabric *interconnect.Fabric
	Mesh   *remote.Mesh
	// Obs is the run's observability hub: typed events, metrics, spans.
	Obs *obs.Observer

	kernels []*nvmkernel.Kernel
	barrier *sim.Barrier

	// epoch state
	rankProcs  []*sim.Proc
	engines    []*precopy.Engine
	allStores  []*core.Store
	lastRemote map[int]*sim.Completion

	committedIter  int
	pendingFailure *FailureEvent
	ranksLive      bool
	appDone        time.Duration
	helperUtil     []float64

	ckptTime   []time.Duration // per rank index, accumulated
	localCount int
	remCount   int
	failCount  int
}

// New builds a cluster (devices, kernels, fabric, mesh) without running it.
func New(cfg Config) *Cluster {
	cfg.setDefaults()
	env := sim.NewEnv()
	fabric := interconnect.New(env, cfg.Nodes, cfg.LinkBW)
	kernels := make([]*nvmkernel.Kernel, cfg.Nodes)
	nvms := make([]*mem.Device, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		dram := mem.NewDRAM(env, cfg.DRAMPerNode)
		var nvm *mem.Device
		if cfg.NVMPerCoreBW > 0 {
			nvm = mem.NewPCMWithPerCoreBW(env, cfg.NVMPerNode, cfg.NVMPerCoreBW, cfg.CoresPerNode)
		} else {
			nvm = mem.NewPCM(env, cfg.NVMPerNode)
		}
		kernels[n] = nvmkernel.New(env, dram, nvm)
		nvms[n] = nvm
	}
	o := obs.New(env)
	o.UseSpanRecorder(cfg.Tracer)
	fabric.SetRecorder(o.Recorder(0, "fabric"))
	mesh := remote.NewMesh(env, fabric, nvms)
	mesh.SetRecorder(o.Recorder(0, "mesh"))
	return &Cluster{
		Cfg:        cfg,
		Env:        env,
		Fabric:     fabric,
		Mesh:       mesh,
		Obs:        o,
		kernels:    kernels,
		lastRemote: make(map[int]*sim.Completion),
		ckptTime:   make([]time.Duration, cfg.Nodes*cfg.CoresPerNode),
	}
}

// Kernel returns node n's kernel (for tests).
func (c *Cluster) Kernel(n int) *nvmkernel.Kernel { return c.kernels[n] }

// Run executes the configured workload to completion (surviving injected
// failures) and returns the result summary.
func Run(cfg Config) (Result, *Cluster) {
	c := New(cfg)
	for i := range c.Cfg.Failures {
		f := c.Cfg.Failures[i]
		c.Env.At(f.After, func() { c.injectFailure(f) })
	}
	c.Env.Go("driver", c.drive)
	c.Env.Run()
	return c.collect(), c
}

// drive runs epochs (spawn ranks, join, recover) until the job completes.
func (c *Cluster) drive(p *sim.Proc) {
	for {
		procs := c.spawnEpoch(p)
		c.ranksLive = true
		for _, rp := range procs {
			p.Join(rp)
		}
		c.ranksLive = false
		if c.pendingFailure == nil {
			break
		}
		f := *c.pendingFailure
		c.pendingFailure = nil
		c.recover(p, f)
	}
	c.appDone = p.Now()
	// Drain outstanding remote checkpoints, then shut everything down.
	for n := 0; n < c.Cfg.Nodes; n++ {
		if done := c.lastRemote[n]; done != nil {
			done.Await(p)
		}
	}
	// Capture helper utilization before the agents are torn down; the
	// denominator is the post-drain clock since the helpers may still have
	// been working past the application's completion.
	if c.Cfg.Remote {
		for n := 0; n < c.Cfg.Nodes; n++ {
			if a := c.Mesh.Agent(n); a != nil {
				c.helperUtil = append(c.helperUtil, a.Meter.Utilization(p.Now()))
			}
		}
	}
	c.shutdown()
}

// spawnEpoch builds fresh per-epoch machinery (barrier, agents, engines,
// stores) and spawns one process per rank, resuming at the committed
// iteration.
func (c *Cluster) spawnEpoch(p *sim.Proc) []*sim.Proc {
	cfg := c.Cfg
	ranks := cfg.Nodes * cfg.CoresPerNode
	c.barrier = sim.NewBarrier(c.Env, ranks)
	c.engines = nil
	if cfg.Remote {
		for n := 0; n < cfg.Nodes; n++ {
			c.Mesh.RemoveAgent(n)
			c.Mesh.AddAgent(n, (n+1)%cfg.Nodes, remote.Config{
				Scheme:  cfg.RemoteScheme,
				RateCap: cfg.RemoteRateCap,
				Delay:   cfg.RemoteDelay,
				Rec:     c.Obs.Recorder(n, "helper"),
			})
		}
	}
	start := c.committedIter
	procs := make([]*sim.Proc, 0, ranks)
	for r := 0; r < ranks; r++ {
		r := r
		procs = append(procs, c.Env.Go(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			c.rankBody(p, r, start)
		}))
	}
	c.rankProcs = procs
	return procs
}

// rankBody is one application process: setup/recovery, then the iterate →
// coordinated-checkpoint loop.
func (c *Cluster) rankBody(p *sim.Proc, rank, startIter int) {
	cfg := c.Cfg
	node := rank / cfg.CoresPerNode
	lane := rank % cfg.CoresPerNode
	leader := lane == 0
	kernel := c.kernels[node]
	name := fmt.Sprintf("rank%d", rank)
	rec := c.Obs.Recorder(node, name)
	if leader {
		rec.NameProcess(fmt.Sprintf("node%d", node))
	}

	store := core.NewStore(kernel.Attach(name), core.Options{
		PayloadCap:    cfg.PayloadCap,
		SingleVersion: cfg.SingleVersion,
	})
	// Attach before workload setup so restore events are captured too.
	store.SetRecorder(rec)
	c.allStores = append(c.allStores, store)

	// Stagger each rank's communication phases so co-located ranks do not
	// inject at identical instants — real ranks drift apart; perfect
	// alignment would manufacture artificial self-contention.
	spec := cfg.App
	if spec.CommPerIter > 0 {
		n := len(spec.CommPhases)
		if n == 0 {
			n = workload.DefaultCommOps
			for i := 0; i < n; i++ {
				spec.CommPhases = append(spec.CommPhases, (float64(i)+0.5)/float64(n))
			}
		} else {
			spec.CommPhases = append([]float64(nil), spec.CommPhases...)
		}
		offset := float64(rank%cfg.CoresPerNode) / float64(cfg.CoresPerNode) / float64(n)
		for i := range spec.CommPhases {
			ph := spec.CommPhases[i] + offset
			if ph > 1 {
				ph -= 1
			}
			spec.CommPhases[i] = ph
		}
	}

	app, err := workload.Setup(p, store, spec)
	if err != nil {
		panic(fmt.Sprintf("cluster: rank %d setup: %v", rank, err))
	}
	// Hard-failure recovery: chunks with no local version are fetched from
	// the buddy's committed remote copy.
	if cfg.Remote && startIter > 0 {
		for _, ch := range app.Chunks {
			if ch.Restored {
				continue
			}
			if data, _, ok := c.Mesh.Fetch(p, node, name, ch.ID); ok {
				if err := store.AdoptRemote(p, ch, data, 0); err != nil {
					panic(err)
				}
			}
		}
	}
	app.Comm = func(p *sim.Proc, bytes int64) {
		c.Fabric.Send(p, node, (node+1)%cfg.Nodes, bytes)
	}

	var engine *precopy.Engine
	if !cfg.NoCheckpoint {
		engine = precopy.New(store, precopy.Config{
			Scheme:    cfg.LocalScheme,
			RateCap:   cfg.LocalRateCap,
			BWPerCore: kernel.NVM.PerCoreWriteBW(cfg.CoresPerNode),
			Rec:       rec,
			TraceLane: lane,
		})
		c.engines = append(c.engines, engine)
	}
	if cfg.Remote {
		c.Mesh.Agent(node).Register(store)
	}

	for iter := startIter; iter < cfg.Iterations; iter++ {
		if engine != nil && iter%cfg.LocalEvery == 0 {
			engine.BeginInterval(p)
		}
		if cfg.Remote && leader && iter%cfg.RemoteEvery == 0 {
			c.Mesh.Agent(node).BeginRemoteInterval()
		}
		iterStart := p.Now()
		if err := app.Iterate(p); err != nil {
			panic(err)
		}
		rec.Span(fmt.Sprintf("iter %d", iter), "compute", lane,
			iterStart, p.Now()-iterStart, nil)
		rec.Emit(obs.EvIteration, "", 0,
			map[string]string{"iter": fmt.Sprintf("%d", iter)})
		if cfg.NoCheckpoint {
			c.barrier.Await(p)
			if rank == 0 {
				c.committedIter = iter + 1
			}
			continue
		}
		if (iter+1)%cfg.LocalEvery != 0 {
			// Mid-interval iteration: no coordinated checkpoint; recovery
			// would roll back to the last checkpointed iteration.
			continue
		}
		qStart := p.Now()
		engine.Quiesce(p)
		if d := p.Now() - qStart; d > 0 {
			rec.Span("quiesce", "ckpt", lane, qStart, d, nil)
		}
		c.barrier.Await(p) // coordinated checkpoint entry
		ckStart := p.Now()
		var st core.CkptStats
		if cfg.ForceFull {
			st = store.ChkptAllForce(p)
		} else {
			st = store.ChkptAll(p)
		}
		engine.OnCheckpoint(ckStart)
		c.ckptTime[rank] += st.Duration
		rec.Span("local ckpt", "ckpt", lane, ckStart, st.Duration,
			map[string]string{"copied": fmt.Sprintf("%d", st.ChunksCopied),
				"skipped": fmt.Sprintf("%d", st.ChunksSkipped)})
		c.barrier.Await(p) // checkpoint exit
		if rank == 0 {
			c.committedIter = iter + 1
			c.localCount++
		}
		if cfg.Remote && leader && (iter+1)%cfg.RemoteEvery == 0 {
			c.lastRemote[node] = c.Mesh.Agent(node).TriggerRemote(p)
			rec.Instant("remote trigger", "remote", lane, p.Now(), nil)
			rec.Emit(obs.EvRemoteTrigger, "", 0,
				map[string]string{"iter": fmt.Sprintf("%d", iter)})
			if rank == 0 {
				c.remCount++
			}
		}
	}
}

// injectFailure fires from scheduler context: it kills every rank process
// and records the failure for the driver's recovery pass.
func (c *Cluster) injectFailure(f FailureEvent) {
	if !c.ranksLive || c.pendingFailure != nil {
		return
	}
	c.pendingFailure = &f
	c.failCount++
	kind := "soft failure"
	if f.Hard {
		kind = "hard failure"
	}
	frec := c.Obs.Recorder(f.Node, "cluster")
	frec.Instant(kind, "failure", 0, c.Env.Now(), nil)
	frec.Emit(obs.EvFailure, "", 0, map[string]string{"kind": kind})
	for _, rp := range c.rankProcs {
		if !rp.Done() {
			rp.Kill()
		}
	}
}

// recover applies the failure's effect on the machines and tears down the
// dead epoch's machinery. The whole job restarts from the last coordinated
// checkpoint: every node's processes are gone (DRAM state lost), NVM
// survives everywhere except a hard-failed node.
func (c *Cluster) recover(p *sim.Proc, f FailureEvent) {
	for _, e := range c.engines {
		e.Stop()
	}
	for n, k := range c.kernels {
		if f.Hard && n == f.Node {
			k.HardFail()
		} else {
			k.SoftReset()
		}
	}
	// Job relaunch latency (scheduler requeue, process startup).
	p.Sleep(2 * time.Second)
	c.Obs.Recorder(f.Node, "cluster").Emit(obs.EvRecovery, "", 0,
		map[string]string{"resume_iter": fmt.Sprintf("%d", c.committedIter)})
}

// shutdown stops engines and helper agents so the event queue drains.
func (c *Cluster) shutdown() {
	for _, e := range c.engines {
		e.Stop()
	}
	for n := 0; n < c.Cfg.Nodes; n++ {
		c.Mesh.RemoveAgent(n)
	}
}

// collect aggregates counters into a Result.
func (c *Cluster) collect() Result {
	cfg := c.Cfg
	ranks := cfg.Nodes * cfg.CoresPerNode
	res := Result{
		ExecTime:         c.appDone,
		LocalCkpts:       c.localCount,
		RemoteCkpts:      c.remCount,
		FailuresInjected: c.failCount,
		Ranks:            ranks,
	}
	var ckptTotal time.Duration
	for _, d := range c.ckptTime {
		ckptTotal += d
	}
	res.CkptTimePerRank = ckptTotal / time.Duration(ranks)
	for _, s := range c.allStores {
		res.PreCopyBytes += s.Counters.Get("precopy_bytes")
		res.CkptBytes += s.Counters.Get("ckpt_bytes")
		res.Restores += s.Counters.Get("restores")
		res.RemoteRestores += s.Counters.Get("remote_restores")
	}
	res.DataToNVMPerRank = float64(res.PreCopyBytes+res.CkptBytes) / float64(ranks)
	res.HelperUtil = c.helperUtil

	// Derived figures from the obs registry's cluster-scope rollups: the
	// Figure 9 pre-copy hit and re-dirty rates and the Figure 10 peak
	// per-window checkpoint traffic. Published back as gauges so the report
	// sinks pick them up.
	reg := c.Obs.Registry()
	pre := float64(reg.Counter("precopy_bytes", nil).Get())
	ck := float64(reg.Counter("ckpt_bytes", nil).Get())
	if pre+ck > 0 {
		res.PreCopyHitRate = pre / (pre + ck)
	}
	precopied := float64(reg.Counter("chunks_precopied", nil).Get())
	if precopied > 0 {
		res.ReDirtyRate = float64(reg.Counter("redirtied_chunks", nil).Get()) / precopied
	}
	res.PeakCkptWindowBytes, _ = reg.Timeline("fabric_bytes", obs.Labels{"class": "ckpt"}).
		PeakDiffBucket(c.Env.Now(), PeakWindow)
	reg.Gauge("precopy_hit_rate", nil).Set(res.PreCopyHitRate)
	reg.Gauge("redirty_rate", nil).Set(res.ReDirtyRate)
	reg.Gauge("peak_ckpt_window_bytes", nil).Set(res.PeakCkptWindowBytes)
	return res
}

// PeakWindow is the window width used for the peak-interconnect-usage figure
// (Figure 10 samples checkpoint traffic in 5-second buckets).
const PeakWindow = 5 * time.Second
