package cluster

import (
	"path/filepath"
	"strings"
	"testing"

	"nvmcp/internal/drift"
	"nvmcp/internal/scenario"
)

// loadDriftBreach loads the checked-in must-fire artifact: a
// phase-shifting workload whose post-shift re-dirty regime breaks the
// model's staging assumptions.
func loadDriftBreach(t *testing.T) Config {
	t.Helper()
	sc, err := scenario.LoadFile(filepath.Join("..", "..", "docs", "scenarios", "drift-breach.json"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestDriftBreachScenarioMustFire pins docs/scenarios/drift-breach.json
// as a gate that gates: the seeded workload phase shift must trip the
// phase detector exactly once (the shift window, not the settled
// post-shift regime), and the scenario's drift limits — clean before the
// shift — must fire violations after it.
func TestDriftBreachScenarioMustFire(t *testing.T) {
	cfg := loadDriftBreach(t)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if c.Drift == nil {
		t.Fatal("drift-breach.json attached no observatory — the drift block stopped lowering")
	}
	if res.DriftViolations == 0 {
		t.Fatal("drift-breach.json fired no violations — the must-fail gate is vacuous")
	}
	shifts := c.Drift.PhaseShifts()
	if len(shifts) != 1 {
		t.Fatalf("phase detector fired %d times, want exactly once at the seeded shift: %+v",
			len(shifts), shifts)
	}
	if shifts[0].To <= shifts[0].From {
		t.Fatalf("detected shift is not an up-shift in re-dirty regime: %+v", shifts[0])
	}
	// Every violation must come after (or at) the detected shift: the
	// pre-shift windows are the scenario's proof that the limits are sane.
	for _, v := range c.Drift.Violations() {
		if v.Window < shifts[0].Window {
			t.Errorf("violation at window %d predates the phase shift at window %d: %+v",
				v.Window, shifts[0].Window, v)
		}
	}
}

// TestDriftStrictFailsBreachScenario drives the same artifact through the
// strict gate the Makefile uses: Execute must return the drift error.
func TestDriftStrictFailsBreachScenario(t *testing.T) {
	cfg := loadDriftBreach(t)
	cfg.Drift.Strict = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(); err == nil {
		t.Fatal("strict drift run passed on the must-fire breach scenario")
	} else if !strings.Contains(err.Error(), "drift violation") {
		t.Fatalf("strict failure is not a drift violation: %v", err)
	}
}

// TestDriftObserveOnlyNeverFails holds observe-only semantics: with no
// limits declared the observatory estimates and predicts but can never
// fail a run, whatever the workload does.
func TestDriftObserveOnlyNeverFails(t *testing.T) {
	cfg := loadDriftBreach(t)
	cfg.Drift = &drift.Config{Enabled: true, Strict: true} // strict but limitless
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatalf("observe-only drift failed the run: %v", err)
	}
	if res.DriftViolations != 0 {
		t.Fatalf("observe-only run reported %d violations", res.DriftViolations)
	}
	if len(c.Drift.Windows()) == 0 {
		t.Fatal("observe-only observatory recorded no windows")
	}
}
