package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"nvmcp/internal/drift"
	"nvmcp/internal/lineage"
	"nvmcp/internal/obs"
	"nvmcp/internal/scenario"
)

// shardCfg is a buddy-replicated four-node config eligible for sharding.
func shardCfg(shards int) Config {
	cfg := smallCfg()
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	cfg.Iterations = 4
	cfg.Local = "dcpcp"
	cfg.Remote = "buddy-precopy"
	cfg.RemoteEvery = 2
	cfg.LinkBW = 1e9
	cfg.Shards = shards
	return cfg
}

// runArtifacts executes cfg and serializes everything the determinism
// contract covers: the full RunReport, the merged event stream, and the
// lineage/SLO summaries when those consumers are attached.
func runArtifacts(t *testing.T, cfg Config) []byte {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Obs.BuildReport("shard-test", cfg, res)
	if c.Lineage != nil {
		rep.Lineage = c.Lineage.Summary()
	}
	if c.SLO != nil {
		rep.SLO = c.SLO.Summary()
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	if err := c.Obs.WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// atGOMAXPROCS runs fn under each requested GOMAXPROCS, restoring the
// original setting afterwards.
func atGOMAXPROCS(t *testing.T, procs []int, fn func(procs int) []byte) [][]byte {
	t.Helper()
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	out := make([][]byte, len(procs))
	for i, p := range procs {
		runtime.GOMAXPROCS(p)
		out[i] = fn(p)
	}
	return out
}

// TestShardDeterminismAcrossGOMAXPROCS is the sharded engine's core
// contract: at a fixed shard count, the RunReport and the merged event
// stream are byte-identical no matter how many host cores execute the
// shards.
func TestShardDeterminismAcrossGOMAXPROCS(t *testing.T) {
	arts := atGOMAXPROCS(t, []int{1, 2, 8}, func(int) []byte {
		return runArtifacts(t, shardCfg(2))
	})
	for i := 1; i < len(arts); i++ {
		if !bytes.Equal(arts[0], arts[i]) {
			t.Fatalf("sharded artifacts differ between GOMAXPROCS runs 0 and %d (%d vs %d bytes)",
				i, len(arts[0]), len(arts[i]))
		}
	}
}

// driftShardCfg widens the buddy fleet to eight nodes (four shard groups)
// and attaches the drift observatory with every quantity under a loose
// limit, so the whole estimator/limit path runs on both engines.
func driftShardCfg(shards int) Config {
	cfg := shardCfg(shards)
	cfg.Nodes = 8
	cfg.Drift = &drift.Config{Enabled: true, Spec: drift.Spec{
		Limits: []drift.Limit{
			{Quantity: drift.QtyCkptTime, MaxRelErr: 1},
			{Quantity: drift.QtyEfficiency, MaxRelErr: 1},
			{Quantity: drift.QtyPrecopyTp, MaxRelErr: 1},
			{Quantity: drift.QtyWindowBytes, MaxRelErr: 1},
		},
	}}
	return cfg
}

// driftArtifacts executes cfg and serializes the full drift report — the
// windows with every estimator value, phase shifts, violations, summary.
func driftArtifacts(t *testing.T, cfg Config) []byte {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if c.Drift == nil {
		t.Fatal("drift observatory not attached")
	}
	var buf bytes.Buffer
	if err := drift.WriteJSON(&buf, drift.BuildReport(c.Drift, drift.Meta{Tool: "shard-test"})); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "violations=%d\n", res.DriftViolations)
	return buf.Bytes()
}

// TestShardDeterminismDriftReport holds the observatory to the partitioned
// engine's determinism contract: at a fixed shard count — serial tap or
// four-shard replay over the merged stream — the drift report is
// byte-identical no matter how many host cores execute the run.
func TestShardDeterminismDriftReport(t *testing.T) {
	for _, shards := range []int{1, 4} {
		arts := atGOMAXPROCS(t, []int{1, 2, 8}, func(int) []byte {
			return driftArtifacts(t, driftShardCfg(shards))
		})
		for i := 1; i < len(arts); i++ {
			if !bytes.Equal(arts[0], arts[i]) {
				t.Fatalf("shards=%d: drift reports differ between GOMAXPROCS runs 0 and %d (%d vs %d bytes)",
					shards, i, len(arts[0]), len(arts[i]))
			}
		}
	}
}

// TestShardDeterminismFaultsFallback drives the serial-fallback path with
// the faults preset (failure injection blocks sharding) plus the lineage
// tracer attached, across GOMAXPROCS: the fallback must be taken, warned
// about exactly once, and its full artifact set — report, event stream,
// lineage summary, SLO summary — must stay byte-identical.
func TestShardDeterminismFaultsFallback(t *testing.T) {
	build := func() Config {
		p, ok := scenario.PresetByID("faults")
		if !ok || p.Build == nil {
			t.Fatal("faults preset missing")
		}
		cfg, err := FromScenario(p.Build(scenario.ScaleQuick))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 8
		cfg.Lineage = &lineage.Config{Enabled: true}
		return cfg
	}
	arts := atGOMAXPROCS(t, []int{1, 2, 8}, func(int) []byte {
		return runArtifacts(t, build())
	})
	for i := 1; i < len(arts); i++ {
		if !bytes.Equal(arts[0], arts[i]) {
			t.Fatalf("fallback artifacts differ between GOMAXPROCS runs 0 and %d", i)
		}
	}
	// The fallback must be visible on the bus.
	c, err := New(build())
	if err != nil {
		t.Fatal(err)
	}
	if c.sharded != nil {
		t.Fatal("faults preset must not shard")
	}
	warned := false
	for _, ev := range c.Obs.Events() {
		if ev.Type == obs.EvEngineWarn && ev.Attrs["code"] == "shard-fallback" {
			warned = true
		}
	}
	if !warned {
		t.Fatal("serial fallback left no shard-fallback warning on the bus")
	}
}

// TestShardedRunMatchesSerialInvariants checks the structural figures a
// partitioned run must share with its serial twin: same rank count, same
// checkpoint cadence, same per-rank iteration count, and a helper per node.
func TestShardedRunMatchesSerialInvariants(t *testing.T) {
	serialCfg := shardCfg(1)
	serial, cSerial, err := Run(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	shardedCfg := shardCfg(2)
	c, err := New(shardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.sharded == nil {
		t.Fatal("config did not shard")
	}
	if got := len(c.sharded.subs); got != 2 {
		t.Fatalf("shards = %d, want 2", got)
	}
	sharded, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Ranks != serial.Ranks {
		t.Fatalf("ranks: sharded %d vs serial %d", sharded.Ranks, serial.Ranks)
	}
	if sharded.LocalCkpts != serial.LocalCkpts {
		t.Fatalf("local ckpts: sharded %d vs serial %d", sharded.LocalCkpts, serial.LocalCkpts)
	}
	if sharded.RemoteCkpts != serial.RemoteCkpts {
		t.Fatalf("remote ckpts: sharded %d vs serial %d", sharded.RemoteCkpts, serial.RemoteCkpts)
	}
	if len(sharded.HelperUtil) != len(serial.HelperUtil) {
		t.Fatalf("helpers: sharded %d vs serial %d", len(sharded.HelperUtil), len(serial.HelperUtil))
	}
	wantIters := serialCfg.Iterations * serial.Ranks
	if got := c.Obs.EventCount(obs.EvIteration); got != wantIters {
		t.Fatalf("merged iteration events = %d, want %d", got, wantIters)
	}
	if got := cSerial.Obs.EventCount(obs.EvIteration); got != wantIters {
		t.Fatalf("serial iteration events = %d, want %d", got, wantIters)
	}
	if c.EventsFired() == 0 {
		t.Fatal("sharded cluster reports zero events fired")
	}
	// Merged streams number nodes globally: nodes 2 and 3 live in shard 1.
	maxNode := 0
	for _, ev := range c.Obs.Events() {
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
	}
	if maxNode != shardedCfg.Nodes-1 {
		t.Fatalf("merged events reach node %d, want %d", maxNode, shardedCfg.Nodes-1)
	}
	if c.CkptFabricBytes() <= 0 {
		t.Fatal("sharded fabric moved no checkpoint bytes")
	}
}

// TestAutoShardsRespectsTopology pins the auto resolution rule:
// min(GOMAXPROCS, topology limit), where a buddy ring needs two nodes per
// shard and ineligible configs resolve to one.
func TestAutoShardsRespectsTopology(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	runtime.GOMAXPROCS(8)

	buddy := shardCfg(0)
	if got := AutoShards(buddy); got != 2 {
		t.Fatalf("buddy over 4 nodes: auto = %d, want 2 (ring needs 2 nodes/shard)", got)
	}
	none := shardCfg(0)
	none.Remote = "none"
	if got := AutoShards(none); got != 4 {
		t.Fatalf("remote=none over 4 nodes: auto = %d, want 4", got)
	}
	blocked := shardCfg(0)
	blocked.Bottom = "pfs-drain"
	if got := AutoShards(blocked); got != 1 {
		t.Fatalf("bottom-tier config: auto = %d, want 1", got)
	}

	runtime.GOMAXPROCS(1)
	if got := AutoShards(none); got != 1 {
		t.Fatalf("GOMAXPROCS=1: auto = %d, want 1", got)
	}
}

// TestScenarioShardsLowered checks the scenario spec's shards field reaches
// the cluster config and survives validation.
func TestScenarioShardsLowered(t *testing.T) {
	p, _ := scenario.PresetByID("fig8")
	sc := p.Build(scenario.ScaleQuick)
	sc.Shards = 2
	cfg, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 2 {
		t.Fatalf("scenario shards not lowered: got %d", cfg.Shards)
	}
	sc.Shards = -1
	if err := sc.Validate(); err == nil {
		t.Fatal("negative scenario shards validated")
	}
}
