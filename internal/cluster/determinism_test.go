package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"nvmcp/internal/scenario"
)

// presetReport runs a preset scenario and serializes its full RunReport —
// config echo, per-round checkpoint aggregation, every metric, event count
// and virtual end time.
func presetReport(t *testing.T, presetID string, scale scenario.Scale) []byte {
	t.Helper()
	p, ok := scenario.PresetByID(presetID)
	if !ok || p.Build == nil {
		t.Fatalf("preset %q missing or bench-only", presetID)
	}
	cfg, err := FromScenario(p.Build(scale))
	if err != nil {
		t.Fatal(err)
	}
	res, c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Obs.BuildReport("determinism-test", cfg, res)
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunReportDeterministic asserts the simulation is bit-reproducible:
// two identical runs — one clean, one driving the failure-injection and
// multi-level recovery paths — must produce byte-identical RunReports.
// This is the contract the hot-path optimizations are held to; a float
// summed in map order or a goroutine racing the virtual clock shows up
// here as a diff.
func TestRunReportDeterministic(t *testing.T) {
	for _, tc := range []struct {
		preset string
		scale  scenario.Scale
	}{
		{"fig8", scenario.ScaleQuick}, // clean run, dcpcp local checkpoints
		{"faults", scenario.ScaleQuick},
	} {
		first := presetReport(t, tc.preset, tc.scale)
		for run := 2; run <= 3; run++ {
			if again := presetReport(t, tc.preset, tc.scale); !bytes.Equal(first, again) {
				t.Errorf("preset %s: run %d report differs from run 1\nrun 1: %d bytes\nrun %d: %d bytes",
					tc.preset, run, len(first), run, len(again))
			}
		}
	}
}
