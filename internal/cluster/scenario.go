package cluster

import (
	"time"

	"nvmcp/internal/drift"
	"nvmcp/internal/fault"
	"nvmcp/internal/policy"
	"nvmcp/internal/scenario"
	"nvmcp/internal/slo"
)

// FromScenario lowers a declarative scenario into a runnable Config. The
// scenario is validated; policy names pass through to the registry untouched,
// so a scheme registered in internal/policy is reachable from a JSON file
// with no cluster changes.
func FromScenario(sc *scenario.Scenario) (Config, error) {
	if err := sc.Validate(); err != nil {
		return Config{}, err
	}
	app, err := sc.AppSpec()
	if err != nil {
		return Config{}, err
	}
	remoteRate, err := sc.ResolvedRemoteRateCap()
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Nodes:        sc.Nodes,
		CoresPerNode: sc.CoresPerNode,
		DRAMPerNode:  sc.DRAMPerNode,
		NVMPerNode:   sc.NVMPerNode,
		NVMPerCoreBW: sc.NVMPerCoreBW,
		LinkBW:       sc.LinkBW,
		Placement:    sc.Remote.Placement,

		App:        app,
		Iterations: sc.Iterations,

		Local:        sc.Local.Policy,
		LocalRateCap: sc.Local.RateCap,
		LocalEvery:   sc.Local.Every,
		ForceFull:    sc.Local.ForceFull,
		NoCheckpoint: sc.NoCheckpoint,

		Remote:        sc.Remote.Policy,
		RemoteRateCap: remoteRate,
		RemoteDelay:   time.Duration(sc.Remote.DelaySecs * float64(time.Second)),
		RemoteEvery:   sc.Remote.Every,
		RemoteGroup:   sc.Remote.Group,
		Stagger: policy.StaggerSpec{
			MaxConcurrent: sc.Remote.StaggerMax,
			Slot:          time.Duration(sc.Remote.StaggerSlotSecs * float64(time.Second)),
		},
		ReplanOnFailure: sc.Remote.Replan,

		Bottom:            sc.Bottom.Policy,
		BottomAggregateBW: sc.Bottom.AggregateBW,
		BottomStripeBW:    sc.Bottom.StripeBW,

		PayloadCap:    sc.PayloadCap,
		SingleVersion: sc.SingleVersion,

		Shards: sc.Shards,
	}
	if sc.Fleet != nil {
		// A fleet spec generates the machine shape: per-node cores/memory/BW,
		// the failure-domain topology, and the staggered start times. Ranks
		// are heterogeneous, so CoresPerNode stays 1 and the per-node shape
		// carries the real core count.
		fl, err := sc.Fleet.Expand()
		if err != nil {
			return Config{}, err
		}
		cfg.Nodes = sc.Fleet.Nodes
		cfg.CoresPerNode = 1
		cfg.Topo = fl.Topo
		cfg.NodeStart = fl.Start
		cfg.Shapes = make([]NodeShape, len(fl.Shapes))
		for i, s := range fl.Shapes {
			cfg.Shapes[i] = NodeShape{
				Cores:        s.Cores,
				DRAM:         s.DRAM,
				NVM:          s.NVM,
				NVMPerCoreBW: s.NVMPerCoreBW,
			}
		}
	}
	for _, f := range sc.Failures {
		cfg.Failures = append(cfg.Failures, FailureFromSpec(f))
	}
	if m := sc.FaultModel; m != nil {
		cfg.FaultModel = &fault.Model{
			MTBFSoft: time.Duration(m.MTBFSoftSecs * float64(time.Second)),
			MTBFHard: time.Duration(m.MTBFHardSecs * float64(time.Second)),
			MTBFRack: time.Duration(m.MTBFRackSecs * float64(time.Second)),
			MTBFZone: time.Duration(m.MTBFZoneSecs * float64(time.Second)),
			Horizon:  time.Duration(m.HorizonSecs * float64(time.Second)),
			Seed:     m.Seed,
			Nodes:    cfg.Nodes,
			Topo:     cfg.Topo,
		}
	}
	cfg.FaultSeed = sc.FaultSeed
	if sc.SLO != nil {
		// A scenario that declares objectives gets the flight recorder
		// automatically; strict mode stays a caller decision (-slo-strict).
		cfg.SLO = &slo.Config{Enabled: true, Spec: sc.SLO}
	}
	if sc.Drift != nil {
		// Same shape for drift limits: declaring them turns the observatory
		// on; strict stays a caller decision (-drift-strict).
		cfg.Drift = &drift.Config{Enabled: true, Spec: *sc.Drift}
	}
	return cfg, nil
}

// FailureFromSpec lowers one declarative failure into the cluster's event
// form — shared by scenario lowering above and the control plane's live
// injection API, so a fault described over HTTP means exactly what the same
// JSON means in a scenario file.
func FailureFromSpec(f scenario.FailureSpec) FailureEvent {
	return FailureEvent{
		After:     time.Duration(f.AtSecs * float64(time.Second)),
		Node:      f.Node,
		Hard:      f.Hard,
		Kind:      fault.Kind(f.Kind),
		Chunks:    f.Chunks,
		Torn:      f.Torn,
		Duration:  time.Duration(f.DurationSecs * float64(time.Second)),
		Factor:    f.Factor,
		Provider:  f.Provider,
		Zone:      f.Zone,
		Rack:      f.Rack,
		Soft:      f.Soft,
		Waves:     f.Waves,
		WaveDelay: time.Duration(f.WaveDelaySecs * float64(time.Second)),
	}
}

// RunScenario builds and runs a scenario end to end.
func RunScenario(sc *scenario.Scenario) (Result, *Cluster, error) {
	cfg, err := FromScenario(sc)
	if err != nil {
		return Result{}, nil, err
	}
	return Run(cfg)
}
