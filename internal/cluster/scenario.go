package cluster

import (
	"time"

	"nvmcp/internal/fault"
	"nvmcp/internal/scenario"
	"nvmcp/internal/slo"
)

// FromScenario lowers a declarative scenario into a runnable Config. The
// scenario is validated; policy names pass through to the registry untouched,
// so a scheme registered in internal/policy is reachable from a JSON file
// with no cluster changes.
func FromScenario(sc *scenario.Scenario) (Config, error) {
	if err := sc.Validate(); err != nil {
		return Config{}, err
	}
	app, err := sc.AppSpec()
	if err != nil {
		return Config{}, err
	}
	remoteRate, err := sc.ResolvedRemoteRateCap()
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Nodes:        sc.Nodes,
		CoresPerNode: sc.CoresPerNode,
		DRAMPerNode:  sc.DRAMPerNode,
		NVMPerNode:   sc.NVMPerNode,
		NVMPerCoreBW: sc.NVMPerCoreBW,
		LinkBW:       sc.LinkBW,

		App:        app,
		Iterations: sc.Iterations,

		Local:        sc.Local.Policy,
		LocalRateCap: sc.Local.RateCap,
		LocalEvery:   sc.Local.Every,
		ForceFull:    sc.Local.ForceFull,
		NoCheckpoint: sc.NoCheckpoint,

		Remote:        sc.Remote.Policy,
		RemoteRateCap: remoteRate,
		RemoteDelay:   time.Duration(sc.Remote.DelaySecs * float64(time.Second)),
		RemoteEvery:   sc.Remote.Every,
		RemoteGroup:   sc.Remote.Group,

		Bottom:            sc.Bottom.Policy,
		BottomAggregateBW: sc.Bottom.AggregateBW,
		BottomStripeBW:    sc.Bottom.StripeBW,

		PayloadCap:    sc.PayloadCap,
		SingleVersion: sc.SingleVersion,

		Shards: sc.Shards,
	}
	for _, f := range sc.Failures {
		cfg.Failures = append(cfg.Failures, FailureEvent{
			After:    time.Duration(f.AtSecs * float64(time.Second)),
			Node:     f.Node,
			Hard:     f.Hard,
			Kind:     fault.Kind(f.Kind),
			Chunks:   f.Chunks,
			Torn:     f.Torn,
			Duration: time.Duration(f.DurationSecs * float64(time.Second)),
			Factor:   f.Factor,
		})
	}
	if m := sc.FaultModel; m != nil {
		cfg.FaultModel = &fault.Model{
			MTBFSoft: time.Duration(m.MTBFSoftSecs * float64(time.Second)),
			MTBFHard: time.Duration(m.MTBFHardSecs * float64(time.Second)),
			Horizon:  time.Duration(m.HorizonSecs * float64(time.Second)),
			Seed:     m.Seed,
			Nodes:    sc.Nodes,
		}
	}
	cfg.FaultSeed = sc.FaultSeed
	if sc.SLO != nil {
		// A scenario that declares objectives gets the flight recorder
		// automatically; strict mode stays a caller decision (-slo-strict).
		cfg.SLO = &slo.Config{Enabled: true, Spec: sc.SLO}
	}
	return cfg, nil
}

// RunScenario builds and runs a scenario end to end.
func RunScenario(sc *scenario.Scenario) (Result, *Cluster, error) {
	cfg, err := FromScenario(sc)
	if err != nil {
		return Result{}, nil, err
	}
	return Run(cfg)
}
