package cluster

import (
	"bytes"
	"path/filepath"
	"testing"

	"nvmcp/internal/scenario"
)

// fleetCfg lowers one of the fleet presets into a runnable Config.
func fleetCfg(t *testing.T, presetID string, scale scenario.Scale) Config {
	t.Helper()
	p, ok := scenario.PresetByID(presetID)
	if !ok || p.Build == nil {
		t.Fatalf("preset %q missing or bench-only", presetID)
	}
	cfg, err := FromScenario(p.Build(scale))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestFleetZoneOutagePlacement is the survivability contract behind the
// stress reports: under the block-contiguous topology a zone outage with
// spread (zone-interleaved) buddy placement loses nothing — every victim's
// remote copy lives in the surviving zone — while naive (ring) placement
// co-locates buddies in-zone and demonstrably loses chunks.
func TestFleetZoneOutagePlacement(t *testing.T) {
	spread, _, err := Run(fleetCfg(t, "fleet-zone", scenario.ScaleTiny))
	if err != nil {
		t.Fatal(err)
	}
	if spread.FailuresInjected != 1 {
		t.Fatalf("spread: injected %d failures, want 1", spread.FailuresInjected)
	}
	if spread.RecoveryLost != 0 {
		t.Fatalf("spread placement lost %d chunks across a zone outage, want 0", spread.RecoveryLost)
	}
	if spread.RecoveryRemote == 0 {
		t.Fatalf("spread: zone outage recovered no chunks from the remote tier — outage had no bite")
	}

	naive, _, err := Run(fleetCfg(t, "fleet-naive", scenario.ScaleTiny))
	if err != nil {
		t.Fatal(err)
	}
	if naive.FailuresInjected != 1 {
		t.Fatalf("naive: injected %d failures, want 1", naive.FailuresInjected)
	}
	if naive.RecoveryLost == 0 {
		t.Fatalf("naive placement lost no chunks across a zone outage — the anti-affinity demo is vacuous")
	}
}

// TestZoneOutageScenarioMustSurvive pins the checked-in must-survive
// artifact: docs/scenarios/zone-outage.json loses a whole zone and must
// recover every chunk, replaying to the exact final workload state of the
// same scenario with the outage stripped out.
func TestZoneOutageScenarioMustSurvive(t *testing.T) {
	load := func() *scenario.Scenario {
		sc, err := scenario.LoadFile(filepath.Join("..", "..", "docs", "scenarios", "zone-outage.json"))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	run := func(sc *scenario.Scenario) Result {
		cfg, err := FromScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	faulted := run(load())
	if faulted.FailuresInjected != 1 {
		t.Fatalf("injected %d failures, want the one zone outage", faulted.FailuresInjected)
	}
	if faulted.RecoveryLost != 0 {
		t.Fatalf("zone-outage.json lost %d chunks, must survive with 0", faulted.RecoveryLost)
	}
	if faulted.RecoveryRemote == 0 {
		t.Fatal("zone outage recovered nothing from the remote tier — the scenario stopped biting")
	}

	twin := load()
	twin.Failures = nil
	clean := run(twin)
	if faulted.WorkloadChecksum != clean.WorkloadChecksum {
		t.Fatalf("post-recovery workload state diverged from the fault-free twin: %016x vs %016x",
			faulted.WorkloadChecksum, clean.WorkloadChecksum)
	}
}

// TestFleetHeterogeneousRanks checks the prefix-sum rank mapping: a fleet
// mixing 1- and 2-core templates must produce exactly sum(cores) ranks, and
// the run must still account checkpoint time for every one of them.
func TestFleetHeterogeneousRanks(t *testing.T) {
	cfg := fleetCfg(t, "fleet-zone", scenario.ScaleTiny)
	want := 0
	for _, s := range cfg.Shapes {
		want += s.Cores
	}
	if want <= cfg.Nodes {
		t.Fatalf("fleet expansion produced no multi-core nodes (%d ranks over %d nodes); the heterogeneity test is vacuous", want, cfg.Nodes)
	}
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != want {
		t.Fatalf("run reported %d ranks, want sum of per-node cores %d", res.Ranks, want)
	}
	if res.LocalCkpts == 0 || res.CkptTimePerRank <= 0 {
		t.Fatalf("heterogeneous fleet recorded no checkpoint work (ckpts %d, per-rank %v)", res.LocalCkpts, res.CkptTimePerRank)
	}
}

// TestFleetDeterminismAcrossGOMAXPROCS is the fleet determinism audit: a
// 1000-node heterogeneous fleet with wave startup, seeded jitter and a zone
// outage must produce a byte-identical RunReport whether the host gives the
// scheduler one core or eight. All fleet randomness flows from the scenario
// seed through one rand stream consumed in node order, so nothing here may
// depend on goroutine interleaving.
func TestFleetDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-node fleet runs are not -short material")
	}
	if raceEnabled {
		t.Skip("byte-equality audit; the plain run covers it at a fraction of the race-mode cost")
	}
	build := func() Config {
		p, ok := scenario.PresetByID("fleet-zone")
		if !ok || p.Build == nil {
			t.Fatal("fleet-zone preset missing")
		}
		sc := p.Build(scenario.ScalePaper)
		// Three iterations and a 2MB payload keep the 1k-node run lean while
		// still spanning the 5s outage (iterations land at t=2,4,6), one
		// post-recovery round, and real chunk traffic on every rank.
		sc.Iterations = 3
		sc.Workload.CkptMB = 2
		cfg, err := FromScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	arts := atGOMAXPROCS(t, []int{1, 8}, func(int) []byte {
		return runArtifacts(t, build())
	})
	if !bytes.Equal(arts[0], arts[1]) {
		t.Fatalf("1k-fleet artifacts differ between GOMAXPROCS 1 and 8 (%d vs %d bytes)",
			len(arts[0]), len(arts[1]))
	}
}

// TestFleetShardedEligibleRuns drives the sharded engine over a
// heterogeneous fleet: a failure-free fleet config (severity none) is
// shard-eligible, and the per-shard slicing of shapes, start times and
// topology must keep the rank count and the artifact bytes stable across
// GOMAXPROCS.
func TestFleetShardedEligibleRuns(t *testing.T) {
	build := func() Config {
		cfg := fleetCfg(t, "fleet-zone", scenario.ScaleTiny)
		cfg.Failures = nil
		cfg.Shards = 2
		return cfg
	}
	cfg := build()
	if reason := shardBlocker(&cfg); reason != "" {
		t.Fatalf("failure-free fleet config should shard, blocked: %s", reason)
	}
	want := 0
	for _, s := range cfg.Shapes {
		want += s.Cores
	}
	res, c, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if c.sharded == nil {
		t.Fatal("run did not take the sharded engine")
	}
	if res.Ranks != want {
		t.Fatalf("sharded fleet reported %d ranks, want %d", res.Ranks, want)
	}
	arts := atGOMAXPROCS(t, []int{1, 8}, func(int) []byte {
		return runArtifacts(t, build())
	})
	if !bytes.Equal(arts[0], arts[1]) {
		t.Fatalf("sharded fleet artifacts differ between GOMAXPROCS 1 and 8")
	}
}
