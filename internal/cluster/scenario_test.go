package cluster

import (
	"path/filepath"
	"strings"
	"testing"

	"nvmcp/internal/scenario"
)

// TestPresetsRunAtTinyScale smoke-runs every cluster-shaped preset end to end
// at the tiny scale — the same sweep `make presets` runs under -race.
func TestPresetsRunAtTinyScale(t *testing.T) {
	for _, p := range scenario.Presets() {
		if !p.ClusterShaped() {
			continue
		}
		t.Run(p.ID, func(t *testing.T) {
			t.Parallel()
			sc, err := scenario.BuildPreset(p.ID, scenario.ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.ExecTime <= 0 {
				t.Fatalf("preset %s ran for %v", p.ID, res.ExecTime)
			}
			if res.LocalCkpts == 0 {
				t.Fatalf("preset %s took no local checkpoints", p.ID)
			}
			if sc.Remote.Policy != "" && sc.Remote.Policy != "none" && res.RemoteCkpts == 0 {
				t.Fatalf("preset %s configures remote %q but took no remote checkpoints",
					p.ID, sc.Remote.Policy)
			}
			if sc.Bottom.Policy == "pfs-drain" && res.BottomObjects == 0 {
				t.Fatalf("preset %s configures a bottom tier but drained nothing", p.ID)
			}
		})
	}
}

// TestErasureScenarioFromFile is the acceptance check that a new remote tier
// composes purely from a JSON file: the shipped erasure scenario must run with
// no cluster code knowing anything erasure-specific.
func TestErasureScenarioFromFile(t *testing.T) {
	sc, err := scenario.LoadFile(filepath.Join("..", "..", "docs", "scenarios", "erasure-remote.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the file's quick-sized run for test speed; policies stay as
	// declared.
	sc.Workload.CkptMB = 24
	sc.Workload.IterSecs = 2
	sc.Iterations = 2
	res, c, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Remote.Policy != "erasure" {
		t.Fatalf("scenario file declares remote %q", sc.Remote.Policy)
	}
	if res.RemoteCkpts == 0 {
		t.Fatal("erasure scenario committed no parity rounds")
	}
	if c.RemoteTier() == nil {
		t.Fatal("erasure scenario built no remote tier")
	}
}

func TestFromScenarioErrors(t *testing.T) {
	base := func() *scenario.Scenario {
		return &scenario.Scenario{
			Nodes: 2, CoresPerNode: 2, Iterations: 1,
			Workload: scenario.WorkloadSpec{App: "gtc", CkptMB: 24, IterSecs: 2},
		}
	}
	bad := base()
	bad.Nodes = 0
	if _, err := FromScenario(bad); err == nil || !strings.Contains(err.Error(), "nodes must be >= 1") {
		t.Errorf("degenerate shape: %v", err)
	}
	bad = base()
	bad.Remote.Policy = "carrier-pigeon"
	if _, err := FromScenario(bad); err == nil || !strings.Contains(err.Error(), `unknown remote policy "carrier-pigeon"`) {
		t.Errorf("unknown policy: %v", err)
	}
	// A bottom tier with nothing to drain from is a build-time error.
	orphan := base()
	orphan.Local.Policy = "dcpcp"
	orphan.Bottom.Policy = "pfs-drain"
	if _, _, err := RunScenario(orphan); err == nil || !strings.Contains(err.Error(), "needs a remote tier") {
		t.Errorf("bottom without remote: %v", err)
	}
}

// TestAutoRateCapLowersIntoConfig checks the declarative auto_rate_cap knob
// resolves to the paper's 2·D·ranks/interval shipping cap in the built Config.
func TestAutoRateCapLowersIntoConfig(t *testing.T) {
	sc := scenario.Base("gtc", scenario.ScaleTiny, 400e6)
	sc.Local.Policy = "dcpcp"
	sc.Remote = scenario.RemoteSpec{Policy: "buddy-precopy", AutoRateCap: true, Every: 2}
	cfg, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	app, err := sc.AppSpec()
	if err != nil {
		t.Fatal(err)
	}
	want := scenario.AutoRemoteRateCap(app.CheckpointSize(), sc.CoresPerNode, app.IterTime, 2)
	if cfg.RemoteRateCap != want || want <= 0 {
		t.Fatalf("RemoteRateCap = %g, want %g", cfg.RemoteRateCap, want)
	}
}
