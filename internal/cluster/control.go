package cluster

import (
	"fmt"
	"time"

	"nvmcp/internal/fault"
	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
)

// Control hooks an external controller — the checkpoint control plane — into
// a run. Both callbacks execute in scheduler context on the simulation
// goroutine: they may inspect the cluster and call Inject or Abort, but must
// never block on host-side synchronization that an HTTP handler might hold
// (the handler queues commands; the tick applies them). Because the hooks
// couple the whole cluster to one controller, a Config carrying a Control
// always runs on the serial engine.
type Control struct {
	// Tick is the virtual-time interval between OnTick callbacks
	// (default 1s).
	Tick time.Duration
	// OnStart fires once at virtual t=0, before the driver spawns the
	// first epoch — the deterministic point to apply commands queued
	// before the run began.
	OnStart func(c *Cluster)
	// OnTick fires every Tick while the run is live.
	OnTick func(c *Cluster, now time.Duration)
}

// startControl arms the Control callbacks on the event queue. The recurring
// tick re-arms itself only while the driver is live, so the event queue can
// drain and Env.Run can return once the run completes.
func (c *Cluster) startControl() {
	ctl := c.Cfg.Control
	if ctl == nil {
		return
	}
	tick := ctl.Tick
	if tick <= 0 {
		tick = time.Second
	}
	if ctl.OnStart != nil {
		c.Env.Schedule(0, func() { ctl.OnStart(c) })
	}
	if ctl.OnTick != nil {
		var arm func()
		arm = func() {
			if c.driveDone {
				return
			}
			ctl.OnTick(c, c.Env.Now())
			c.Env.Schedule(tick, arm)
		}
		c.Env.Schedule(tick, arm)
	}
}

// Inject schedules one failure event into the live run at ev.After on the
// *absolute* virtual clock (past instants are clamped to now). Scheduler-
// context only — control hooks call it; HTTP handlers must queue instead.
// Faults landing while no epoch is live are counted as skipped, exactly like
// pre-scheduled ones.
func (c *Cluster) Inject(ev FailureEvent) error {
	if c.injector == nil {
		return fmt.Errorf("cluster: live injection needs a Control-enabled run")
	}
	f := ev.toFault()
	if err := f.Validate(c.Cfg.Nodes, c.Cfg.Topo); err != nil {
		return fmt.Errorf("cluster: inject: %w", err)
	}
	if now := c.Env.Now(); f.At < now {
		f.At = now
	}
	c.injector.ScheduleAll([]fault.Event{f})
	return nil
}

// Abort cancels the run: every live rank process is killed and the driver
// finishes its teardown (final drains, shutdown) instead of respawning, so
// Env.Run still exits cleanly and artifacts stay readable. Execute reports
// the abort as an error. Scheduler-context only.
func (c *Cluster) Abort(reason string) {
	if c.aborted != "" || c.driveDone {
		return
	}
	c.aborted = reason
	c.Obs.Emit(obs.Event{
		Type: obs.EvAbort, Actor: "control",
		Attrs: map[string]string{"reason": reason},
	})
	for _, rp := range c.rankProcs {
		if !rp.Done() {
			rp.Kill()
		}
	}
}

// Aborted reports the Abort reason, or "" for a normal run.
func (c *Cluster) Aborted() string { return c.aborted }

// ValidateFailure checks an event against the cluster's shape without
// scheduling it — the pre-flight the control plane's HTTP layer runs before
// queuing a command, so a malformed injection fails the request instead of
// surfacing as a note at the next tick. Host-safe: only immutable
// configuration is read.
func (c *Cluster) ValidateFailure(ev FailureEvent) error {
	return ev.toFault().Validate(c.Cfg.Nodes, c.Cfg.Topo)
}

// triggerRemote starts node's remote checkpoint. Without a stagger gate it
// is the tier trigger itself; with one, the trigger is deferred to a
// drain-admit process that queues on the gate, so the rank's trigger point
// stays non-blocking while the fabric sees at most MaxConcurrent node
// drains Slot apart. The returned completion fires once the (possibly
// deferred) remote commit lands — the same contract the driver's end-of-run
// drain and the bottom tier's chaining rely on.
func (c *Cluster) triggerRemote(p *sim.Proc, node int) *sim.Completion {
	if c.drainGate == nil {
		return c.remoteTier.Trigger(p, node)
	}
	outer := sim.NewCompletion(c.Env)
	epoch := c.epochGen
	c.Env.Go(fmt.Sprintf("drain-admit/node%d", node), func(gp *sim.Proc) {
		c.drainGate.Acquire(gp)
		// The epoch may have died while we queued: its helper agents are
		// gone and the respawned epoch re-triggers on its own, so a stale
		// grant releases without touching the tier.
		if c.epochGen == epoch {
			c.remoteTier.Trigger(gp, node).Await(gp)
		}
		c.drainGate.Release()
		outer.Complete()
	})
	return outer
}
