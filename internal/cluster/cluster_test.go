package cluster

import (
	"strings"
	"testing"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// smallApp is a fast two-chunk workload for cluster plumbing tests.
func smallApp() workload.AppSpec {
	return workload.AppSpec{
		Name: "tiny",
		Chunks: []workload.ChunkSpec{
			{Name: "field", Size: 40 * mem.MB, ModPhases: []float64{0.5}},
			{Name: "static", Size: 20 * mem.MB, InitOnly: true},
		},
		IterTime: 2 * time.Second,
	}
}

func smallCfg() Config {
	return Config{
		Nodes:        2,
		CoresPerNode: 2,
		App:          smallApp(),
		Iterations:   3,
	}
}

func TestRunCompletesAllIterations(t *testing.T) {
	cfg := smallCfg()
	res, _ := MustRun(cfg)
	if res.LocalCkpts != cfg.Iterations {
		t.Fatalf("LocalCkpts = %d, want %d", res.LocalCkpts, cfg.Iterations)
	}
	if res.ExecTime < 6*time.Second {
		t.Fatalf("ExecTime = %v, implausibly short", res.ExecTime)
	}
	if res.Ranks != 4 {
		t.Fatalf("Ranks = %d", res.Ranks)
	}
}

func TestDirtyTrackingSkipsInitOnlyChunks(t *testing.T) {
	cfg := smallCfg()
	cfg.Local = "none"
	tracked, _ := MustRun(cfg)
	cfg2 := smallCfg()
	cfg2.ForceFull = true
	full, _ := MustRun(cfg2)
	// Tracked: init-only 20MB copied once; full: every checkpoint.
	perIterExtra := float64(20*mem.MB) * float64(cfg.Iterations-1)
	gotExtra := full.DataToNVMPerRank - tracked.DataToNVMPerRank
	if gotExtra < perIterExtra*0.9 || gotExtra > perIterExtra*1.1 {
		t.Fatalf("extra data in full mode = %v, want ~%v", gotExtra, perIterExtra)
	}
}

func TestPreCopyShrinksBlockingCheckpointTime(t *testing.T) {
	base := smallCfg()
	base.ForceFull = true
	noPre, _ := MustRun(base)

	pre := smallCfg()
	pre.Local = "cpc"
	withPre, _ := MustRun(pre)

	if withPre.CkptTimePerRank >= noPre.CkptTimePerRank {
		t.Fatalf("pre-copy ckpt time %v not below baseline %v",
			withPre.CkptTimePerRank, noPre.CkptTimePerRank)
	}
	if withPre.PreCopyBytes == 0 {
		t.Fatal("no pre-copy bytes recorded")
	}
	if withPre.ExecTime > noPre.ExecTime {
		t.Fatalf("pre-copy run slower overall: %v vs %v", withPre.ExecTime, noPre.ExecTime)
	}
}

func TestNoCheckpointIsFastest(t *testing.T) {
	ideal := smallCfg()
	ideal.NoCheckpoint = true
	idealRes, _ := MustRun(ideal)

	real := smallCfg()
	real.ForceFull = true
	realRes, _ := MustRun(real)

	if idealRes.ExecTime >= realRes.ExecTime {
		t.Fatalf("ideal run (%v) not faster than checkpointed run (%v)",
			idealRes.ExecTime, realRes.ExecTime)
	}
	if idealRes.LocalCkpts != 0 {
		t.Fatalf("ideal run performed %d checkpoints", idealRes.LocalCkpts)
	}
}

func TestRemoteCheckpointsTriggerEveryK(t *testing.T) {
	cfg := smallCfg()
	cfg.Iterations = 4
	cfg.Remote = "buddy-burst"
	cfg.RemoteEvery = 2
	res, c := MustRun(cfg)
	if res.RemoteCkpts != 2 {
		t.Fatalf("RemoteCkpts = %d, want 2", res.RemoteCkpts)
	}
	if got := c.Mesh().Counters.Get("ships"); got == 0 {
		t.Fatal("no chunks shipped to buddies")
	}
	if len(res.HelperUtil) != cfg.Nodes {
		t.Fatalf("HelperUtil entries = %d, want %d", len(res.HelperUtil), cfg.Nodes)
	}
	for _, u := range res.HelperUtil {
		if u <= 0 || u > 0.9 {
			t.Fatalf("helper utilization = %v, want small positive", u)
		}
	}
}

func TestRemotePreCopyMovesDataBeforeTrigger(t *testing.T) {
	cfg := smallCfg()
	cfg.Iterations = 4
	cfg.Remote = "buddy-precopy"
	cfg.RemoteEvery = 4
	cfg.Local = "cpc" // stages chunks early so the helper can ship
	res, c := MustRun(cfg)
	if res.RemoteCkpts != 1 {
		t.Fatalf("RemoteCkpts = %d, want 1", res.RemoteCkpts)
	}
	if got := c.Mesh().Counters.Get("ships"); got == 0 {
		t.Fatal("pre-copy helper shipped nothing")
	}
}

func TestSoftFailureRecoversFromLocalNVM(t *testing.T) {
	cfg := smallCfg()
	cfg.Iterations = 4
	// Fail after the second checkpoint (~2 iterations of 2s + ckpt time).
	cfg.Failures = []FailureEvent{{After: 5 * time.Second, Node: 0, Hard: false}}
	res, _ := MustRun(cfg)
	if res.FailuresInjected != 1 {
		t.Fatalf("FailuresInjected = %d", res.FailuresInjected)
	}
	if res.Restores == 0 {
		t.Fatal("no local restores after soft failure")
	}
	// All iterations still completed (job finished after recovery).
	if res.LocalCkpts < cfg.Iterations {
		t.Fatalf("LocalCkpts = %d, want >= %d (redone work counts)", res.LocalCkpts, cfg.Iterations)
	}
}

func TestHardFailureRecoversFromBuddy(t *testing.T) {
	cfg := smallCfg()
	cfg.Iterations = 4
	cfg.Remote = "buddy-burst"
	cfg.RemoteEvery = 1 // remote checkpoint every iteration
	cfg.Failures = []FailureEvent{{After: 7 * time.Second, Node: 0, Hard: true}}
	res, _ := MustRun(cfg)
	if res.FailuresInjected != 1 {
		t.Fatalf("FailuresInjected = %d", res.FailuresInjected)
	}
	if res.RemoteRestores == 0 {
		t.Fatal("hard-failed node did not recover chunks from its buddy")
	}
	// The surviving node restores locally.
	if res.Restores == 0 {
		t.Fatal("surviving node did not restore locally")
	}
}

func TestLocalEverySkipsIntermediateCheckpoints(t *testing.T) {
	cfg := smallCfg()
	cfg.Iterations = 6
	cfg.LocalEvery = 3
	res, _ := MustRun(cfg)
	if res.LocalCkpts != 2 {
		t.Fatalf("LocalCkpts = %d, want 2 (every 3rd of 6 iterations)", res.LocalCkpts)
	}
}

func TestLocalEveryRecoveryRollsBackToCheckpointBoundary(t *testing.T) {
	cfg := smallCfg()
	cfg.Iterations = 6
	cfg.LocalEvery = 2
	// Fail mid-way: after the iter-1 checkpoint (~4s+ckpt), during iter 2/3.
	cfg.Failures = []FailureEvent{{After: 7 * time.Second, Node: 0}}
	res, _ := MustRun(cfg)
	if res.FailuresInjected != 1 {
		t.Fatalf("FailuresInjected = %d", res.FailuresInjected)
	}
	// The run still completes all 6 iterations, re-running the lost ones:
	// checkpoints = 3 scheduled + redone rounds >= 3.
	if res.LocalCkpts < 3 {
		t.Fatalf("LocalCkpts = %d, want >= 3", res.LocalCkpts)
	}
	if res.Restores == 0 {
		t.Fatal("no restores after failure")
	}
}

func TestTracerRecordsTimeline(t *testing.T) {
	cfg := smallCfg()
	cfg.Remote = "buddy-burst"
	cfg.RemoteEvery = 1
	cfg.Failures = []FailureEvent{{After: 3 * time.Second, Node: 0}}
	rec := trace.NewSpanRecorder()
	cfg.Tracer = rec
	MustRun(cfg)
	if rec.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	var sb strings.Builder
	if err := rec.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"iter 0"`, `"local ckpt"`, `"remote trigger"`, `"soft failure"`, `"ship `} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s", want)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := smallCfg()
	cfg.Local = "dcpcp"
	cfg.Remote = "buddy-precopy"
	cfg.RemoteEvery = 2
	first, _ := MustRun(cfg)
	for i := 0; i < 3; i++ {
		got, _ := MustRun(cfg)
		if got.ExecTime != first.ExecTime ||
			got.DataToNVMPerRank != first.DataToNVMPerRank ||
			got.CkptTimePerRank != first.CkptTimePerRank {
			t.Fatalf("run %d differs: %+v vs %+v", i, got, first)
		}
	}
}

func TestCommunicationContendWithRemoteCheckpoint(t *testing.T) {
	app := smallApp()
	app.CommPerIter = 200 * mem.MB

	// A slow link keeps checkpoint shipping in flight long enough to meet
	// the application's communication bursts.
	quiet := Config{Nodes: 2, CoresPerNode: 2, App: app, Iterations: 3, LinkBW: 100e6}
	quietRes, _ := MustRun(quiet)

	noisy := quiet
	noisy.Remote = "buddy-burst"
	noisy.RemoteEvery = 1
	noisyRes, _ := MustRun(noisy)

	if noisyRes.ExecTime <= quietRes.ExecTime {
		t.Fatalf("remote checkpoint traffic added no noise: %v vs %v",
			noisyRes.ExecTime, quietRes.ExecTime)
	}
}
