//go:build race

package cluster

// raceEnabled reports whether this binary was built with the race detector.
// The 1k-node determinism audit skips under race: it asserts byte-equality
// of artifacts (covered by the plain `go test` run at a fraction of the
// cost), and its two 1,000-node runs push the package past the race suite's
// timeout on slow hosts. The smaller fleet and shard determinism tests keep
// exercising the same code paths under the detector.
const raceEnabled = true
