package cluster

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"nvmcp/internal/drift"
	"nvmcp/internal/obs"
	"nvmcp/internal/policy"
	"nvmcp/internal/sim"
)

// The sharded engine (DESIGN.md §12) partitions the node set into contiguous
// groups, builds one fully independent sub-cluster per group — its own
// sim.Env, fabric, kernels, stores, remote-tier instance and Observer — and
// runs the group in conservative lockstep: between coordinated-checkpoint
// rendezvous the shards exchange nothing, so each may run arbitrarily far
// ahead (the lookahead is the whole barrier interval); at the rendezvous no
// shard proceeds before the slowest shard's arrival time. Determinism at a
// fixed shard count is by construction: shards share no mutable state, and
// every cross-shard reduction (the release time, the merged observability
// streams, the folded checksum) is ordered by shard index.

// ShardsAuto, set as Config.Shards or DefaultShards, resolves the shard
// count to min(GOMAXPROCS, topology limit) at cluster build time.
const ShardsAuto = -1

// DefaultShards is the process-wide shard policy applied when a Config
// leaves Shards at zero: 0 keeps the classic serial engine, ShardsAuto
// resolves per run, a positive count is used directly (capped by the
// topology). The cmds' -shards flag sets it; the library default stays
// serial so embedded runs and the existing test corpus are untouched.
var DefaultShards = 0

// shardEngine is the coordinator state hung off a partitioned Cluster.
type shardEngine struct {
	subs    []*Cluster
	group   *sim.ShardGroup
	barrier *sim.CrossBarrier
}

// shardOf returns the sub-cluster owning global node n.
func (se *shardEngine) shardOf(n int) *Cluster {
	for _, sub := range se.subs {
		if n < sub.Cfg.nodeOffset+sub.Cfg.Nodes {
			return sub
		}
	}
	return se.subs[len(se.subs)-1]
}

// shardBlocker reports why cfg must run on the serial engine, or "" when the
// topology partitions cleanly. Sharding models loosely-coupled node groups,
// so anything with global coupling pins the run to one engine: failure
// injection (faults broadcast a kill to every rank), a bottom tier (one
// shared file system), a remote policy whose data flows cross groups, and
// the whole-run bus consumers (lineage, SLO, span tracing) that need one
// globally ordered stream *during* the run rather than after the merge.
func shardBlocker(cfg *Config) string {
	if len(cfg.Failures) > 0 || cfg.FaultModel != nil {
		return "failure injection broadcasts across the whole cluster"
	}
	if e, _ := policy.Parse(policy.KindBottom, cfg.Bottom); e != nil && e.Name != "none" {
		return fmt.Sprintf("bottom tier %q drains to one shared store", e.Name)
	}
	re, _ := policy.Parse(policy.KindRemote, cfg.Remote)
	if sl, ok := re.Remote().(policy.ShardLocalPolicy); !ok || !sl.ShardLocal() {
		return fmt.Sprintf("remote policy %q spans node groups", re.Name)
	}
	if cfg.Lineage != nil && cfg.Lineage.Enabled {
		return "lineage tracing needs one live globally-ordered event bus"
	}
	if cfg.SLO != nil && cfg.SLO.Enabled {
		return "SLO recording needs one live globally-ordered event bus"
	}
	if cfg.Tracer != nil {
		return "span tracing records into one externally-owned recorder"
	}
	if cfg.Control != nil {
		return "external control hooks couple the whole cluster to one controller"
	}
	if cfg.Stagger.Enabled() {
		return "drain staggering gates every node behind one admission gate"
	}
	return ""
}

// maxShardCount is the topology's shard ceiling: every shard needs enough
// nodes for its remote-tier instance to function (two for a buddy ring).
func maxShardCount(cfg *Config) int {
	min := 1
	if e, _ := policy.Parse(policy.KindRemote, cfg.Remote); e != nil {
		if sl, ok := e.Remote().(policy.ShardLocalPolicy); ok && sl.MinShardNodes() > min {
			min = sl.MinShardNodes()
		}
	}
	return cfg.Nodes / min
}

// resolveShardCount lowers a shard request (a count, or ShardsAuto) to the
// effective count, capped by the topology.
func resolveShardCount(cfg *Config, req int) int {
	n := req
	if n == ShardsAuto {
		n = runtime.GOMAXPROCS(0)
	}
	if max := maxShardCount(cfg); n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

// AutoShards reports the shard count a configuration resolves to under
// ShardsAuto on this host: min(GOMAXPROCS, topology limit), or 1 when the
// configuration cannot shard at all.
func AutoShards(cfg Config) int {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return 1
	}
	if shardBlocker(&cfg) != "" {
		return 1
	}
	return resolveShardCount(&cfg, ShardsAuto)
}

// newSharded builds the coordinator cluster: one sub-cluster per contiguous
// node group, a CrossBarrier with one gate per shard injected as each sub's
// checkpoint rendezvous, and a merge environment whose Observer receives the
// deterministic flush-time merge of every shard's streams. cfg.Shards holds
// the resolved count and cfg passed Validate.
func newSharded(cfg Config) (*Cluster, error) {
	n := cfg.Shards
	base, rem := cfg.Nodes/n, cfg.Nodes%n
	bases := cfg.rankBases()
	subs := make([]*Cluster, 0, n)
	envs := make([]*sim.Env, 0, n)
	parties := make([]int, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		span := base
		if i < rem {
			span++
		}
		sub := cfg
		sub.Shards = 1
		sub.Nodes = span
		// One global observatory replays the merged stream at collect time;
		// per-shard live taps would each see only a slice of the cluster.
		sub.Drift = nil
		sub.nodeOffset = off
		sub.rankOffset = bases[off]
		if len(cfg.Shapes) > 0 {
			sub.Shapes = cfg.Shapes[off : off+span]
		}
		if len(cfg.NodeStart) > 0 {
			sub.NodeStart = cfg.NodeStart[off : off+span]
		}
		if cfg.Topo != nil {
			sub.Topo = cfg.Topo.Slice(off, off+span)
		}
		c, err := New(sub)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		subs = append(subs, c)
		envs = append(envs, c.Env)
		parties = append(parties, bases[off+span]-bases[off])
		off += span
	}
	group := sim.NewShardGroup(envs...)
	cb := sim.NewCrossBarrier(group, parties)
	for i, sub := range subs {
		gate := cb.Gate(i)
		sub.newBarrier = func(int) rendezvous { return gate }
	}
	env := sim.NewEnv()
	c := &Cluster{
		Cfg:     cfg,
		Env:     env,
		Obs:     obs.New(env),
		sharded: &shardEngine{subs: subs, group: group, barrier: cb},
	}
	c.Obs.SetSpansEnabled(false)
	return c, nil
}

// executeSharded is the coordinator loop: advance every shard concurrently
// until each pauses at a filled gate or drains idle; when the rendezvous is
// full, release it at the slowest shard's arrival time and go again. A round
// that parks ranks without filling the rendezvous means the shards' barrier
// cadences diverged — a structural bug, reported loudly rather than hung.
func (c *Cluster) executeSharded() (Result, error) {
	se := c.sharded
	for _, sub := range se.subs {
		sub.Env.Go("driver", sub.drive)
	}
	for {
		se.group.RunRound()
		if se.barrier.Full() {
			se.barrier.Release()
			continue
		}
		if n := se.barrier.Arrivals(); n > 0 {
			return Result{}, fmt.Errorf("cluster: sharded run wedged with %d ranks gated (%s)",
				n, se.barrier.State())
		}
		break
	}
	// Align the merge clock with the slowest shard so the merged report's
	// virtual end time covers every shard's events.
	c.Env.RunUntil(se.group.MaxNow())
	res := c.collectSharded()
	if c.Drift != nil && c.Drift.Strict() {
		if err := c.Drift.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// collectSharded folds the shards into one Result and merges their
// observability streams into the coordinator's Observer. Every fold is
// ordered by shard index, so the output at a fixed shard count is
// byte-stable regardless of GOMAXPROCS.
func (c *Cluster) collectSharded() Result {
	se := c.sharded
	shardObs := make([]*obs.Observer, len(se.subs))
	subResults := make([]Result, len(se.subs))
	for i, sub := range se.subs {
		subResults[i] = sub.collect()
		shardObs[i] = sub.Obs
	}
	obs.MergeShards(c.Obs, shardObs)

	cfg := c.Cfg
	ranks := cfg.totalRanks()
	res := Result{Ranks: ranks}
	var ckptTotal time.Duration
	h := fnv.New64a()
	var buf [8]byte
	for i, sr := range subResults {
		sub := se.subs[i]
		if sr.ExecTime > res.ExecTime {
			res.ExecTime = sr.ExecTime
		}
		// The cross-shard barrier aligns every round, so per-shard round
		// counts agree; max() reads the common value without assuming it.
		if sr.LocalCkpts > res.LocalCkpts {
			res.LocalCkpts = sr.LocalCkpts
		}
		if sr.RemoteCkpts > res.RemoteCkpts {
			res.RemoteCkpts = sr.RemoteCkpts
		}
		for _, d := range sub.ckptTime {
			ckptTotal += d
		}
		res.PreCopyBytes += sr.PreCopyBytes
		res.CkptBytes += sr.CkptBytes
		res.Restores += sr.Restores
		res.RemoteRestores += sr.RemoteRestores
		res.HelperUtil = append(res.HelperUtil, sr.HelperUtil...)
		if sr.BottomDrainTime > res.BottomDrainTime {
			res.BottomDrainTime = sr.BottomDrainTime
		}
		res.BottomObjects += sr.BottomObjects
		res.BottomBytes += sr.BottomBytes
		// Fold the per-shard content checksums in shard order: the global
		// fingerprint of a partitioned run, stable at a fixed shard count.
		for b := 0; b < 8; b++ {
			buf[b] = byte(sub.workSum >> (8 * b))
		}
		h.Write(buf[:])
	}
	res.CkptTimePerRank = ckptTotal / time.Duration(ranks)
	res.DataToNVMPerRank = float64(res.PreCopyBytes+res.CkptBytes) / float64(ranks)
	res.WorkloadChecksum = h.Sum64()

	// Cluster-level rates and the Figure 10 peak re-derive from the merged
	// registry (the per-shard gauge values absorbed by the merge are only
	// the last shard's; overwrite them with the global figures).
	reg := c.Obs.Registry()
	pre := float64(reg.Counter("precopy_bytes", nil).Get())
	ck := float64(reg.Counter("ckpt_bytes", nil).Get())
	if pre+ck > 0 {
		res.PreCopyHitRate = pre / (pre + ck)
	}
	precopied := float64(reg.Counter("chunks_precopied", nil).Get())
	if precopied > 0 {
		res.ReDirtyRate = float64(reg.Counter("redirtied_chunks", nil).Get()) / precopied
	}
	res.PeakCkptWindowBytes, _ = reg.Timeline("fabric_bytes", obs.Labels{"class": "ckpt"}).
		PeakDiffBucket(c.Env.Now(), PeakWindow)
	reg.Gauge("precopy_hit_rate", nil).Set(res.PreCopyHitRate)
	reg.Gauge("redirty_rate", nil).Set(res.ReDirtyRate)
	reg.Gauge("peak_ckpt_window_bytes", nil).Set(res.PeakCkptWindowBytes)
	reg.Gauge("mttr_seconds", nil).Set(0)
	reg.Gauge("degraded_seconds_total", nil).Set(0)
	res.ShipRetries = reg.Counter("helper_ship_retries", nil).Get()
	res.BuddyFailovers = reg.Counter("helper_buddy_failovers", nil).Get()

	// The drift observatory folds from events alone, so the sharded path
	// replays the deterministic merged stream through the same fold the
	// serial path taps live — reports come out byte-identical at any
	// GOMAXPROCS for a fixed shard count.
	if cfg.Drift != nil && cfg.Drift.Enabled {
		d := drift.New(*cfg.Drift, driftInputs(&cfg), reg)
		d.Replay(c.Obs.Events())
		d.Finalize(c.Env.Now())
		c.Drift = d
		res.DriftViolations = d.ViolationCount()
	}
	return res
}
