package cluster

import (
	"testing"
	"time"

	"nvmcp/internal/fault"
	"nvmcp/internal/scenario"
)

// The acceptance run for the fault framework: the checked-in cascade preset
// (link flap, latent NVM corruption, buddy loss) must recover through every
// tier and still end with the exact application state of a fault-free run.
func TestFaultCascadePresetRecoversThroughEveryTier(t *testing.T) {
	sc, err := scenario.BuildPreset("faults", scenario.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	faulted, _, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	clean := *sc
	clean.Failures = nil
	baseline, _, err := RunScenario(&clean)
	if err != nil {
		t.Fatal(err)
	}

	if faulted.FailuresInjected != 1 {
		t.Errorf("FailuresInjected = %d, want 1 (the buddy loss)", faulted.FailuresInjected)
	}
	if faulted.LinkFlaps != 1 {
		t.Errorf("LinkFlaps = %d, want 1", faulted.LinkFlaps)
	}
	if faulted.Corruptions == 0 {
		t.Error("nvm-corrupt fault damaged no chunks")
	}
	if faulted.ShipRetries == 0 {
		t.Error("link flap caused no helper ship retries")
	}
	if faulted.RecoveryRemote == 0 {
		t.Error("no chunks recovered from the remote tier")
	}
	if faulted.RecoveryBottom == 0 {
		t.Error("no chunks recovered from the bottom tier (corruption + buddy loss should force it)")
	}
	if faulted.RecoveryLost != 0 {
		t.Errorf("RecoveryLost = %d, want 0: every chunk had a surviving copy somewhere", faulted.RecoveryLost)
	}
	if faulted.MTTR <= 0 {
		t.Errorf("MTTR = %v, want > 0", faulted.MTTR)
	}
	if faulted.DegradedTime <= 0 {
		t.Errorf("DegradedTime = %v, want > 0", faulted.DegradedTime)
	}
	if faulted.WorkloadChecksum == 0 || baseline.WorkloadChecksum == 0 {
		t.Fatal("workload checksum not computed")
	}
	if faulted.WorkloadChecksum != baseline.WorkloadChecksum {
		t.Errorf("final state diverged: faulted %016x vs fault-free %016x",
			faulted.WorkloadChecksum, baseline.WorkloadChecksum)
	}
}

// Satellite: a failure that cannot be delivered is counted and reported,
// never silently dropped.
func TestFailureAfterCompletionIsCountedAsSkipped(t *testing.T) {
	cfg := smallCfg()
	cfg.Failures = []FailureEvent{{After: 24 * time.Hour, Node: 0}}
	res, _ := MustRun(cfg)
	if res.FailuresInjected != 0 {
		t.Fatalf("failure fired after completion: %d", res.FailuresInjected)
	}
	if res.FailuresSkipped != 1 {
		t.Fatalf("FailuresSkipped = %d, want 1", res.FailuresSkipped)
	}
}

func TestSecondFailureDuringRecoveryIsSkipped(t *testing.T) {
	cfg := smallCfg()
	cfg.Iterations = 4
	cfg.Failures = []FailureEvent{
		{After: 5 * time.Second, Node: 0},
		{After: 5100 * time.Millisecond, Node: 1}, // lands while recovery is pending
	}
	res, _ := MustRun(cfg)
	if res.FailuresInjected != 1 {
		t.Fatalf("FailuresInjected = %d, want 1", res.FailuresInjected)
	}
	if res.FailuresSkipped != 1 {
		t.Fatalf("FailuresSkipped = %d, want 1", res.FailuresSkipped)
	}
}

// The stochastic model plugs into the cluster config: MTBF-drawn soft
// failures fire and recover like scripted ones.
func TestStochasticFaultModelInjectsAndRecovers(t *testing.T) {
	cfg := smallCfg()
	cfg.Iterations = 4
	cfg.FaultModel = &fault.Model{
		MTBFSoft: 6 * time.Second,
		Horizon:  20 * time.Second,
		Seed:     2,
	}
	res, _ := MustRun(cfg)
	if res.FailuresInjected == 0 {
		t.Fatal("model with a 6s MTBF over a ~10s run injected nothing")
	}
	// Every drawn event is accounted for: delivered or counted as skipped.
	drawn := *cfg.FaultModel
	drawn.Nodes = cfg.Nodes
	if want := len(drawn.Schedule()); res.FailuresInjected+res.FailuresSkipped != want {
		t.Fatalf("injected %d + skipped %d != %d drawn events",
			res.FailuresInjected, res.FailuresSkipped, want)
	}
	if res.Restores == 0 {
		t.Fatal("no restores after stochastic soft failures")
	}
	if res.LocalCkpts < cfg.Iterations {
		t.Fatalf("LocalCkpts = %d, want >= %d: the job must still finish", res.LocalCkpts, cfg.Iterations)
	}
}

// Legacy configs (Hard bool, no Kind) and kind-tagged events must agree.
func TestEffectiveKindBackCompat(t *testing.T) {
	cases := []struct {
		ev   FailureEvent
		want fault.Kind
	}{
		{FailureEvent{}, fault.Soft},
		{FailureEvent{Hard: true}, fault.Hard},
		{FailureEvent{Kind: fault.BuddyLoss}, fault.BuddyLoss},
		{FailureEvent{Hard: true, Kind: fault.Hard}, fault.Hard},
	}
	for i, tc := range cases {
		if got := tc.ev.EffectiveKind(); got != tc.want {
			t.Errorf("case %d: EffectiveKind = %q, want %q", i, got, tc.want)
		}
	}
}
