package cluster

import (
	"strings"
	"testing"
	"time"

	"nvmcp/internal/obs"
	"nvmcp/internal/scenario"
)

// staggerScenario is a drain-burst magnet: eight nodes whose only remote
// round lands on the same coordinated checkpoint, with burst-mode buddies
// (no background pre-copy shipping), so unstaggered drains all hit the
// fabric inside one peak window.
func staggerScenario(staggered bool) *scenario.Scenario {
	sc := &scenario.Scenario{
		Name:         "stagger-probe",
		Nodes:        8,
		CoresPerNode: 2,
		NVMPerCoreBW: 400e6,
		LinkBW:       250e6,
		Workload:     scenario.WorkloadSpec{App: "cm1", CkptMB: 24, IterSecs: 2},
		Iterations:   4,
		Local:        scenario.LocalSpec{Policy: "dcpcp"},
		Remote:       scenario.RemoteSpec{Policy: "buddy-burst", AutoRateCap: true, Every: 4},
		PayloadCap:   1024,
	}
	if staggered {
		sc.Remote.StaggerMax = 1
		sc.Remote.StaggerSlotSecs = 1.5
	}
	return sc
}

func runScenario(t *testing.T, sc *scenario.Scenario) Result {
	t.Helper()
	res, _, err := RunScenario(sc)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return res
}

// TestStaggerLowersPeakWindow is the control plane's headline effect: gating
// node drains through the stagger gate must cut the Figure 10 peak
// interconnect quantity, and — because drains only move already-snapshotted
// data later — must leave the workload's final state untouched.
func TestStaggerLowersPeakWindow(t *testing.T) {
	base := runScenario(t, staggerScenario(false))
	stag := runScenario(t, staggerScenario(true))

	if base.PeakCkptWindowBytes <= 0 {
		t.Fatalf("baseline run moved no ckpt bytes on the fabric: %+v", base)
	}
	if stag.PeakCkptWindowBytes >= base.PeakCkptWindowBytes {
		t.Fatalf("staggering did not lower the peak window: staggered %.0f >= baseline %.0f",
			stag.PeakCkptWindowBytes, base.PeakCkptWindowBytes)
	}
	if stag.DrainGrants == 0 {
		t.Fatal("staggered run recorded no drain grants")
	}
	if stag.DrainMaxQueued == 0 {
		t.Fatal("staggered run recorded no drain queueing — the gate never backpressured")
	}
	if base.DrainGrants != 0 {
		t.Fatalf("unstaggered run recorded %d drain grants, want 0", base.DrainGrants)
	}
	if stag.WorkloadChecksum != base.WorkloadChecksum {
		t.Fatalf("staggering changed the workload checksum: %016x != %016x",
			stag.WorkloadChecksum, base.WorkloadChecksum)
	}
}

// TestReplanOnZoneOutage: with replan-on-failure armed, a zone outage makes
// the buddy tier recompute placement avoiding the dead zone before the next
// epoch, and the run still converges with nothing lost.
func TestReplanOnZoneOutage(t *testing.T) {
	p, ok := scenario.PresetByID("fleet-zone")
	if !ok {
		t.Fatal("fleet-zone preset missing")
	}
	sc := p.Build(scenario.ScaleTiny)
	sc.Remote.Replan = true
	res, c, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailuresInjected != 1 {
		t.Fatalf("injected %d failures, want 1", res.FailuresInjected)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d, want 1", res.Replans)
	}
	if got := c.Obs.EventCount(obs.EvReplan); got != 1 {
		t.Fatalf("EvReplan count = %d, want 1", got)
	}
	if res.RecoveryLost != 0 {
		t.Fatalf("replanned run lost %d chunks, want 0", res.RecoveryLost)
	}
}

// TestControlTickLiveInjection drives the in-run command path the control
// plane uses: an OnTick hook injects a failure into the live run, and the
// injector treats it exactly like a pre-scheduled fault.
func TestControlTickLiveInjection(t *testing.T) {
	sc, err := scenario.BuildPreset("quick", scenario.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	cfg.Control = &Control{
		Tick: 500 * time.Millisecond,
		OnTick: func(c *Cluster, now time.Duration) {
			if injected {
				return
			}
			injected = true
			if err := c.Inject(FailureEvent{After: now + 500*time.Millisecond, Node: 0}); err != nil {
				t.Errorf("live inject: %v", err)
			}
		},
	}
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailuresInjected != 1 {
		t.Fatalf("injected %d failures, want 1", res.FailuresInjected)
	}
	if res.RecoveryLost != 0 {
		t.Fatalf("lost %d chunks, want 0", res.RecoveryLost)
	}
}

// TestControlAbort: an abort from a control tick kills the ranks, lets the
// driver tear down cleanly, and surfaces as an Execute error plus an EvAbort
// on the bus.
func TestControlAbort(t *testing.T) {
	sc, err := scenario.BuildPreset("quick", scenario.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Control = &Control{
		Tick:   time.Second,
		OnTick: func(c *Cluster, now time.Duration) { c.Abort("test-stop") },
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Execute()
	if err == nil || !strings.Contains(err.Error(), "aborted: test-stop") {
		t.Fatalf("Execute err = %v, want abort error", err)
	}
	if c.Aborted() != "test-stop" {
		t.Fatalf("Aborted() = %q", c.Aborted())
	}
	if got := c.Obs.EventCount(obs.EvAbort); got != 1 {
		t.Fatalf("EvAbort count = %d, want 1", got)
	}
}

// TestInjectNeedsControl: live injection without a Control-enabled run (no
// injector) must fail loudly instead of silently dropping the fault.
func TestInjectNeedsControl(t *testing.T) {
	sc, err := scenario.BuildPreset("quick", scenario.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(FailureEvent{After: time.Second}); err == nil {
		t.Fatal("Inject on a Control-less cluster: want error")
	}
}
