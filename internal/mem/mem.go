// Package mem models the node-local memory devices of the paper's Table I:
// DRAM and a PCM-class NVM. Each device couples capacity accounting with
// fair-shared read/write bandwidth pipes and per-page latencies. The paper
// emulates PCM by partitioning DRAM and injecting memcpy delays; here the
// same delays come from the simulation's bandwidth model, which additionally
// reproduces per-core bandwidth collapse under concurrent access (Figure 4).
package mem

import (
	"fmt"
	"time"

	"nvmcp/internal/resource"
	"nvmcp/internal/sim"
)

// Byte-size units.
const (
	KB = int64(1) << 10
	MB = int64(1) << 20
	GB = int64(1) << 30
)

// PageSize is the virtual-memory page granularity used throughout.
const PageSize = 4 * KB

// Table I hardware parameters (five-year PCM projection cited by the paper).
const (
	// DRAMWriteBW is DRAM's aggregate write bandwidth (~8 GB/s).
	DRAMWriteBW = 8 * 1000 * 1000 * 1000
	// PCMWriteBW is PCM's aggregate write bandwidth (~2 GB/s).
	PCMWriteBW = 2 * 1000 * 1000 * 1000
	// DRAMPageLatency is the DRAM page access latency (~20-50 ns).
	DRAMPageLatency = 35 * time.Nanosecond
	// PCMPageWriteLatency is the PCM page write latency (~1 us).
	PCMPageWriteLatency = time.Microsecond
	// PCMPageReadLatency is the PCM page read latency (~50 ns),
	// comparable to DRAM.
	PCMPageReadLatency = 50 * time.Nanosecond
	// CachelineSize is the processor cacheline granularity used by the
	// flush-on-commit path.
	CachelineSize = 64
	// CachelineFlushLatency approximates one clflush+drain.
	CachelineFlushLatency = 100 * time.Nanosecond

	// PCMWriteEndurance is PCM's per-cell write endurance (Table I: 10^8,
	// vs 10^16 for DRAM).
	PCMWriteEndurance = 1e8
	// DRAMWriteEndurance is DRAM's effective per-cell endurance.
	DRAMWriteEndurance = 1e16
	// PCMWriteEnergyPerBit is PCM's write energy in joules/bit — the paper
	// notes 40x higher than DRAM's.
	PCMWriteEnergyPerBit = 40 * DRAMWriteEnergyPerBit
	// DRAMWriteEnergyPerBit approximates DRAM write energy (~1 pJ/bit).
	DRAMWriteEnergyPerBit = 1e-12
)

// Fig4Beta is the DRAM contention coefficient calibrated so that 12
// concurrent copy streams each retain ~33 % of single-stream bandwidth — the
// 67 % per-core drop the paper measures with the LANL parallel memcpy
// benchmark (Figure 4) at its 33 MB point.
var Fig4Beta = resource.BetaForPerFlowDrop(12, 0.33)

// fig4CalibrationSize is the copy size at which Fig4Beta was calibrated.
const fig4CalibrationSize = 33 * MB

// DRAMCacheBytes approximates the last-level cache capacity that absorbs
// part of small copies, softening their bandwidth contention: Figure 4 shows
// the per-core drop deepening with copy size.
const DRAMCacheBytes = 8 * MB

// DRAMBetaForCopySize returns the contention coefficient for streams of the
// given copy size: beta scales with the fraction of each copy that misses
// the cache, normalized so the 33 MB calibration point keeps Fig4Beta.
func DRAMBetaForCopySize(size int64) float64 {
	if size <= 0 {
		return 0
	}
	missFrac := func(s int64) float64 { return float64(s) / float64(s+DRAMCacheBytes) }
	return Fig4Beta * missFrac(size) / missFrac(fig4CalibrationSize)
}

// NewDRAMWithBeta builds a DRAM device with an explicit contention
// coefficient (used by the memcpy benchmark's per-size sweeps).
func NewDRAMWithBeta(env *sim.Env, capacity int64, beta float64) *Device {
	d := NewDRAM(env, capacity)
	scale := resource.SaturatingScaling(beta)
	d.Write = resource.NewPipe(env, "dram-write", DRAMWriteBW, scale)
	d.Read = resource.NewPipe(env, "dram-read", DRAMWriteBW, scale)
	return d
}

// Device is a memory device: capacity accounting plus shared read and write
// bandwidth and per-page latencies.
type Device struct {
	Name      string
	Write     *resource.Pipe
	Read      *resource.Pipe
	Capacity  int64
	Used      int64
	PageWrite time.Duration
	PageRead  time.Duration
	// Persistent marks the device's contents as surviving process and node
	// soft restarts (true for NVM, false for DRAM).
	Persistent bool

	// Endurance is the per-cell write endurance (writes before wear-out).
	Endurance float64
	// WriteEnergyPerBit is the energy cost of writing one bit, in joules.
	WriteEnergyPerBit float64
	// BytesWritten accumulates all write traffic, feeding wear and energy
	// projections.
	BytesWritten int64
}

// NewDRAM builds a DRAM device: high bandwidth, sub-linear scaling under
// concurrent streams per the Figure 4 calibration.
func NewDRAM(env *sim.Env, capacity int64) *Device {
	scale := resource.SaturatingScaling(Fig4Beta)
	return &Device{
		Name:              "dram",
		Write:             resource.NewPipe(env, "dram-write", DRAMWriteBW, scale),
		Read:              resource.NewPipe(env, "dram-read", DRAMWriteBW, scale),
		Capacity:          capacity,
		PageWrite:         DRAMPageLatency,
		PageRead:          DRAMPageLatency,
		Endurance:         DRAMWriteEndurance,
		WriteEnergyPerBit: DRAMWriteEnergyPerBit,
	}
}

// NewPCM builds a PCM-class NVM device with Table I parameters: ~2 GB/s
// aggregate write bandwidth that a single stream can saturate (flat
// scaling — more writers only divide it), and read bandwidth comparable to
// DRAM.
func NewPCM(env *sim.Env, capacity int64) *Device {
	return &Device{
		Name:              "pcm",
		Write:             resource.NewPipe(env, "pcm-write", PCMWriteBW, resource.FlatScaling()),
		Read:              resource.NewPipe(env, "pcm-read", DRAMWriteBW, resource.SaturatingScaling(Fig4Beta)),
		Capacity:          capacity,
		PageWrite:         PCMPageWriteLatency,
		PageRead:          PCMPageReadLatency,
		Persistent:        true,
		Endurance:         PCMWriteEndurance,
		WriteEnergyPerBit: PCMWriteEnergyPerBit,
	}
}

// NewPCMWithPerCoreBW builds an NVM device whose effective write bandwidth
// per core is perCore bytes/sec when cores streams write concurrently — the
// x-axis knob of Figures 7 and 8.
func NewPCMWithPerCoreBW(env *sim.Env, capacity int64, perCore float64, cores int) *Device {
	d := NewPCM(env, capacity)
	d.Write = resource.NewPipe(env, "pcm-write", perCore*float64(cores), resource.FlatScaling())
	return d
}

// Reserve claims size bytes of capacity, failing when the device is full.
func (d *Device) Reserve(size int64) error {
	if size < 0 {
		return fmt.Errorf("mem: negative reservation %d on %s", size, d.Name)
	}
	if d.Used+size > d.Capacity {
		return fmt.Errorf("mem: %s out of space: used %d + %d > capacity %d",
			d.Name, d.Used, size, d.Capacity)
	}
	d.Used += size
	return nil
}

// Release returns size bytes of capacity.
func (d *Device) Release(size int64) {
	d.Used -= size
	if d.Used < 0 {
		panic("mem: release below zero on " + d.Name)
	}
}

// Free returns the unreserved capacity.
func (d *Device) Free() int64 { return d.Capacity - d.Used }

// WriteBytes blocks p while size bytes are written to the device, sharing
// write bandwidth with all concurrent writers, and accounts the traffic for
// wear and energy projections.
func (d *Device) WriteBytes(p *sim.Proc, size int64) {
	if size > 0 {
		d.BytesWritten += size
	}
	d.Write.Transfer(p, size)
}

// WriteEnergy returns the energy spent on writes so far, in joules.
func (d *Device) WriteEnergy() float64 {
	return float64(d.BytesWritten) * 8 * d.WriteEnergyPerBit
}

// LifetimeYearsAt projects how many years the device lasts under a sustained
// write load of the given bytes/sec, assuming ideal wear leveling over the
// whole capacity: lifetime = capacity × endurance / write rate. (Durations
// this long overflow time.Duration, hence years as float64.)
func (d *Device) LifetimeYearsAt(bytesPerSec float64) float64 {
	if bytesPerSec <= 0 || d.Endurance <= 0 {
		return 0
	}
	const secondsPerYear = 365.25 * 24 * 3600
	return float64(d.Capacity) * d.Endurance / bytesPerSec / secondsPerYear
}

// ReadBytes blocks p while size bytes are read from the device.
func (d *Device) ReadBytes(p *sim.Proc, size int64) {
	d.Read.Transfer(p, size)
}

// FlushCost returns the time to flush size bytes of dirty cachelines to the
// device, charged at commit time so data is durable before a checkpoint is
// marked consistent.
func (d *Device) FlushCost(size int64) time.Duration {
	lines := (size + CachelineSize - 1) / CachelineSize
	return time.Duration(lines) * CachelineFlushLatency / 64
	// The /64 reflects flush pipelining: modern flush loops retire about
	// 64 lines per drain period rather than serializing each clflush.
}

// PerCoreWriteBW returns the effective write bandwidth each of n concurrent
// writers receives (NVMBW_core in the paper's model).
func (d *Device) PerCoreWriteBW(n int) float64 { return d.Write.PerFlowRate(n) }

// Copy moves size bytes from src to dst, blocking p for the duration. The
// transfer is charged to the slower of src's read path and dst's write path
// — for DRAM→PCM that is PCM's write pipe, which is exactly the contention
// the pre-copy mechanisms fight.
func Copy(p *sim.Proc, src, dst *Device, size int64) {
	if size <= 0 {
		return
	}
	dst.BytesWritten += size
	bottleneck(src, dst).Transfer(p, size)
}

// CopyCapped is Copy with a per-stream rate ceiling (a throttled background
// pre-copy stream).
func CopyCapped(p *sim.Proc, src, dst *Device, size int64, maxRate float64) {
	if size <= 0 {
		return
	}
	dst.BytesWritten += size
	bottleneck(src, dst).TransferCapped(p, size, maxRate)
}

func bottleneck(src, dst *Device) *resource.Pipe {
	if src.Read.SingleRate() < dst.Write.SingleRate() {
		return src.Read
	}
	return dst.Write
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("mem.Device{%s cap=%d used=%d}", d.Name, d.Capacity, d.Used)
}
