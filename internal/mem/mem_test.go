package mem

import (
	"math"
	"testing"
	"time"

	"nvmcp/internal/sim"
)

func TestTableIDeviceParameters(t *testing.T) {
	e := sim.NewEnv()
	dram := NewDRAM(e, 48*GB)
	pcm := NewPCM(e, 24*GB)
	if dram.Write.SingleRate() != DRAMWriteBW {
		t.Fatalf("DRAM write BW = %v", dram.Write.SingleRate())
	}
	if pcm.Write.SingleRate() != PCMWriteBW {
		t.Fatalf("PCM write BW = %v", pcm.Write.SingleRate())
	}
	if PCMWriteBW*4 != DRAMWriteBW {
		t.Fatal("Table I: PCM bandwidth should be 4x lower than DRAM")
	}
	if PCMPageWriteLatency < 10*DRAMPageLatency {
		t.Fatal("Table I: PCM write latency should be ~10x DRAM")
	}
	if !pcm.Persistent || dram.Persistent {
		t.Fatal("persistence flags wrong")
	}
}

func TestCapacityAccounting(t *testing.T) {
	e := sim.NewEnv()
	d := NewPCM(e, 10*MB)
	if err := d.Reserve(6 * MB); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve(6 * MB); err == nil {
		t.Fatal("over-reservation succeeded")
	}
	if d.Free() != 4*MB {
		t.Fatalf("Free = %d, want 4MB", d.Free())
	}
	d.Release(6 * MB)
	if d.Used != 0 {
		t.Fatalf("Used = %d, want 0", d.Used)
	}
	if err := d.Reserve(-1); err == nil {
		t.Fatal("negative reservation succeeded")
	}
}

func TestReleaseBelowZeroPanics(t *testing.T) {
	e := sim.NewEnv()
	d := NewPCM(e, MB)
	defer func() {
		if recover() == nil {
			t.Fatal("Release below zero did not panic")
		}
	}()
	d.Release(1)
}

func TestCopyUsesBottleneck(t *testing.T) {
	e := sim.NewEnv()
	dram := NewDRAM(e, GB)
	pcm := NewPCM(e, GB)
	var dur time.Duration
	e.Go("w", func(p *sim.Proc) {
		start := p.Now()
		Copy(p, dram, pcm, 2*1000*1000*1000) // 2 decimal GB at 2 GB/s
		dur = p.Now() - start
	})
	e.Run()
	if diff := (dur - time.Second).Abs(); diff > 5*time.Millisecond {
		t.Fatalf("DRAM->PCM 2GB took %v, want ~1s (PCM write bound)", dur)
	}
	if pcm.Write.Transfers != 1 || dram.Read.Transfers != 0 {
		t.Fatal("copy did not charge the PCM write pipe")
	}
}

func TestCopyBackFromPCMUsesFasterPath(t *testing.T) {
	e := sim.NewEnv()
	dram := NewDRAM(e, GB)
	pcm := NewPCM(e, GB)
	var dur time.Duration
	e.Go("w", func(p *sim.Proc) {
		start := p.Now()
		Copy(p, pcm, dram, 8*1000*1000*1000)
		dur = p.Now() - start
	})
	e.Run()
	// PCM read is DRAM-comparable (Table I): 8 GB at 8 GB/s ~ 1s.
	if diff := (dur - time.Second).Abs(); diff > 10*time.Millisecond {
		t.Fatalf("PCM->DRAM 8GB took %v, want ~1s", dur)
	}
}

func TestNVMPerCoreBandwidthCollapse(t *testing.T) {
	e := sim.NewEnv()
	pcm := NewPCM(e, GB)
	one := pcm.PerCoreWriteBW(1)
	twelve := pcm.PerCoreWriteBW(12)
	if one != PCMWriteBW {
		t.Fatalf("per-core at 1 = %v, want device BW", one)
	}
	if got := twelve * 12; math.Abs(got-PCMWriteBW) > 1 {
		t.Fatal("flat scaling: 12 cores should split the device bandwidth")
	}
	if twelve > 170*1000*1000 {
		t.Fatalf("per-core at 12 = %.0f, want ~167 MB/s", twelve)
	}
}

func TestDRAMPerCoreDropMatchesFig4Calibration(t *testing.T) {
	e := sim.NewEnv()
	dram := NewDRAM(e, GB)
	retain := dram.Write.PerFlowRate(12) / dram.Write.PerFlowRate(1)
	if math.Abs(retain-0.33) > 0.01 {
		t.Fatalf("12-core per-core retention = %v, want ~0.33 (67%% drop)", retain)
	}
}

func TestNewPCMWithPerCoreBW(t *testing.T) {
	e := sim.NewEnv()
	d := NewPCMWithPerCoreBW(e, GB, 400e6, 12)
	if got := d.PerCoreWriteBW(12); math.Abs(got-400e6) > 1 {
		t.Fatalf("per-core BW = %v, want 400 MB/s", got)
	}
}

func TestConcurrentNVMWritesShareBandwidth(t *testing.T) {
	e := sim.NewEnv()
	pcm := NewPCM(e, GB)
	const n = 4
	var finish [n]time.Duration
	for i := 0; i < n; i++ {
		e.Go("w", func(p *sim.Proc) {
			pcm.WriteBytes(p, 500*1000*1000)
			finish[i] = p.Now()
		})
	}
	e.Run()
	// 4 x 500MB over a shared 2 GB/s: all finish together at 1s.
	for _, f := range finish {
		if diff := (f - time.Second).Abs(); diff > 5*time.Millisecond {
			t.Fatalf("writer finished at %v, want ~1s", f)
		}
	}
}

func TestFlushCostScalesWithSize(t *testing.T) {
	e := sim.NewEnv()
	pcm := NewPCM(e, GB)
	small := pcm.FlushCost(4 * KB)
	large := pcm.FlushCost(4 * MB)
	if small <= 0 || large <= 0 {
		t.Fatal("flush costs must be positive")
	}
	ratio := float64(large) / float64(small)
	if math.Abs(ratio-1024) > 20 {
		t.Fatalf("flush cost ratio = %v, want ~1024", ratio)
	}
}

func TestDRAMBetaForCopySize(t *testing.T) {
	// Monotone in size, anchored at the 33MB calibration point.
	at33 := DRAMBetaForCopySize(33 * MB)
	if math.Abs(at33-Fig4Beta) > 1e-12 {
		t.Fatalf("beta(33MB) = %v, want Fig4Beta %v", at33, Fig4Beta)
	}
	if DRAMBetaForCopySize(MB) >= at33 {
		t.Fatal("small copies should contend less")
	}
	if DRAMBetaForCopySize(512*MB) <= at33 {
		t.Fatal("large copies should contend more")
	}
	if DRAMBetaForCopySize(0) != 0 || DRAMBetaForCopySize(-1) != 0 {
		t.Fatal("non-positive sizes should have zero beta")
	}
}

func TestNewDRAMWithBetaAndReads(t *testing.T) {
	e := sim.NewEnv()
	d := NewDRAMWithBeta(e, GB, 0) // linear scaling: no contention
	if got := d.Write.PerFlowRate(4); math.Abs(got-DRAMWriteBW) > 1 {
		t.Fatalf("beta=0 per-flow rate = %v, want full BW", got)
	}
	var took time.Duration
	e.Go("r", func(p *sim.Proc) {
		start := p.Now()
		d.ReadBytes(p, int64(DRAMWriteBW)) // 1s worth of reads
		took = p.Now() - start
	})
	e.Run()
	if diff := (took - time.Second).Abs(); diff > 5*time.Millisecond {
		t.Fatalf("read took %v, want ~1s", took)
	}
}

func TestCopyZeroAndStringers(t *testing.T) {
	e := sim.NewEnv()
	dram := NewDRAM(e, GB)
	pcm := NewPCM(e, GB)
	e.Go("w", func(p *sim.Proc) {
		Copy(p, dram, pcm, 0)
		CopyCapped(p, dram, pcm, -1, 100)
	})
	e.Run()
	if pcm.BytesWritten != 0 {
		t.Fatal("zero-size copies accounted bytes")
	}
	if s := pcm.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestWearAndEnergyAccounting(t *testing.T) {
	e := sim.NewEnv()
	dram := NewDRAM(e, GB)
	pcm := NewPCM(e, GB)
	e.Go("w", func(p *sim.Proc) {
		pcm.WriteBytes(p, 100*MB)
		Copy(p, dram, pcm, 50*MB) // accounted to the destination
		Copy(p, pcm, dram, 25*MB) // accounted to DRAM, not PCM
	})
	e.Run()
	if pcm.BytesWritten != 150*MB {
		t.Fatalf("PCM BytesWritten = %d, want 150MB", pcm.BytesWritten)
	}
	if dram.BytesWritten != 25*MB {
		t.Fatalf("DRAM BytesWritten = %d, want 25MB", dram.BytesWritten)
	}
	wantJ := float64(150*MB) * 8 * PCMWriteEnergyPerBit
	if got := pcm.WriteEnergy(); math.Abs(got-wantJ) > wantJ*1e-9 {
		t.Fatalf("PCM energy = %v, want %v", got, wantJ)
	}
	// Table I: PCM write energy per bit is 40x DRAM's.
	if PCMWriteEnergyPerBit != 40*DRAMWriteEnergyPerBit {
		t.Fatal("energy ratio wrong")
	}
}

func TestLifetimeProjection(t *testing.T) {
	e := sim.NewEnv()
	pcm := NewPCM(e, GB)
	// 1 GiB capacity * 1e8 endurance / 1 GiB/s = 1e8 seconds ≈ 3.17 years.
	years := pcm.LifetimeYearsAt(float64(GB))
	if math.Abs(years-3.17) > 0.05 {
		t.Fatalf("lifetime = %v years, want ~3.17", years)
	}
	// Double the write rate halves the lifetime.
	if got := pcm.LifetimeYearsAt(float64(2 * GB)); math.Abs(got-years/2) > 1e-9 {
		t.Fatalf("lifetime at 2x rate = %v, want %v", got, years/2)
	}
	if pcm.LifetimeYearsAt(0) != 0 {
		t.Fatal("zero rate should project zero (undefined) lifetime")
	}
	// DRAM effectively never wears out under the same load.
	dram := NewDRAM(e, GB)
	if dram.LifetimeYearsAt(float64(GB)) < 1e6 {
		t.Fatal("DRAM lifetime implausibly short")
	}
}

func TestCopyCappedThrottles(t *testing.T) {
	e := sim.NewEnv()
	dram := NewDRAM(e, GB)
	pcm := NewPCM(e, GB)
	var dur time.Duration
	e.Go("w", func(p *sim.Proc) {
		start := p.Now()
		CopyCapped(p, dram, pcm, 100*1000*1000, 100*1000*1000) // 100MB at 100MB/s cap
		dur = p.Now() - start
	})
	e.Run()
	if diff := (dur - time.Second).Abs(); diff > 5*time.Millisecond {
		t.Fatalf("capped copy took %v, want ~1s", dur)
	}
}
