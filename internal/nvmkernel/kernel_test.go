package nvmkernel

import (
	"errors"
	"testing"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
)

func newTestKernel(e *sim.Env) *Kernel {
	dram := mem.NewDRAM(e, 4*mem.GB)
	nvm := mem.NewPCM(e, 2*mem.GB)
	return New(e, dram, nvm)
}

func TestNVMMapCreateAndReattach(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		r, existed, err := pr.NVMMap(p, "chunk1", 10*mem.MB, 64)
		if err != nil || existed {
			t.Errorf("first map: existed=%v err=%v", existed, err)
		}
		r.Data[0] = 0xAB
		pr.Exit()

		// Simulated restart: same persistent name finds the region.
		pr2 := k.Attach("rank0")
		r2, existed, err := pr2.NVMMap(p, "chunk1", 10*mem.MB, 64)
		if err != nil || !existed {
			t.Errorf("re-map: existed=%v err=%v", existed, err)
		}
		if r2.Data[0] != 0xAB {
			t.Error("NVM contents did not survive process restart")
		}
	})
	e.Run()
	if k.NVM.Used != 10*mem.MB {
		t.Fatalf("NVM used = %d, want 10MB (one region)", k.NVM.Used)
	}
}

func TestNVMMapChargesSyscall(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	var took time.Duration
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		start := p.Now()
		if _, _, err := pr.NVMMap(p, "c", mem.MB, 16); err != nil {
			t.Error(err)
		}
		took = p.Now() - start
	})
	e.Run()
	if took != DefaultSyscallCost {
		t.Fatalf("nvmmap took %v, want %v", took, DefaultSyscallCost)
	}
	if k.Counters.Get("syscalls") != 1 {
		t.Fatalf("syscalls = %d, want 1", k.Counters.Get("syscalls"))
	}
}

func TestNVMMapOutOfSpace(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		if _, _, err := pr.NVMMap(p, "big", 3*mem.GB, 16); err == nil {
			t.Error("oversized nvmmap succeeded")
		}
	})
	e.Run()
	if k.NVM.Used != 0 {
		t.Fatalf("failed map leaked %d bytes", k.NVM.Used)
	}
}

func TestNVMUnmapReleasesSpace(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		pr.NVMMap(p, "c", 100*mem.MB, 16)
		if err := pr.NVMUnmap(p, "c"); err != nil {
			t.Error(err)
		}
		if err := pr.NVMUnmap(p, "c"); !errors.Is(err, ErrNoSuchRegion) {
			t.Errorf("double unmap err = %v", err)
		}
	})
	e.Run()
	if k.NVM.Used != 0 {
		t.Fatalf("NVM used = %d after unmap", k.NVM.Used)
	}
}

func TestDRAMRegionsDoNotSurviveExit(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		if _, err := pr.DRAMAlloc("work", 50*mem.MB, 64); err != nil {
			t.Error(err)
		}
		if _, err := pr.DRAMAlloc("work", mem.MB, 16); !errors.Is(err, ErrExists) {
			t.Errorf("duplicate DRAMAlloc err = %v", err)
		}
		pr.Exit()
	})
	e.Run()
	if k.DRAM.Used != 0 {
		t.Fatalf("DRAM used = %d after exit, want 0", k.DRAM.Used)
	}
}

func TestSoftResetKeepsNVMDropsDRAM(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		pr.NVMMap(p, "ckpt", 10*mem.MB, 32)
		pr.DRAMAlloc("work", 10*mem.MB, 32)
		k.SoftReset()
		pr2 := k.Attach("rank0")
		if _, existed, _ := pr2.NVMMap(p, "ckpt", 10*mem.MB, 32); !existed {
			t.Error("NVM region lost across soft reset")
		}
	})
	e.Run()
	if k.DRAM.Used != 0 {
		t.Fatalf("DRAM used = %d after soft reset", k.DRAM.Used)
	}
	if k.NVM.Used != 10*mem.MB {
		t.Fatalf("NVM used = %d, want 10MB", k.NVM.Used)
	}
}

func TestHardFailWipesNVM(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		pr.NVMMap(p, "ckpt", 10*mem.MB, 32)
		k.HardFail()
		pr2 := k.Attach("rank0")
		if _, existed, _ := pr2.NVMMap(p, "ckpt", 10*mem.MB, 32); existed {
			t.Error("NVM region survived hard failure")
		}
	})
	e.Run()
	if got := k.Counters.Get("hard_failures"); got != 1 {
		t.Fatalf("hard_failures = %d", got)
	}
}

func TestProtectionFaultChargesCostAndRunsHandler(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		r, _ := pr.DRAMAlloc("chunk", 64*mem.KB, 64)
		dirty := false
		r.SetFaultHandler(func(p *sim.Proc, fr *Region, page int) {
			dirty = true
			fr.Unprotect(p) // chunk-level: unprotect the whole chunk
		})
		r.Protect(p)
		start := p.Now()
		faulted, err := r.TouchWrite(p, 0, 128)
		if err != nil || !faulted {
			t.Errorf("TouchWrite: faulted=%v err=%v", faulted, err)
		}
		if !dirty {
			t.Error("handler did not run")
		}
		elapsed := p.Now() - start
		want := k.FaultCost + k.ProtectCost
		if elapsed != want {
			t.Errorf("fault path took %v, want %v", elapsed, want)
		}
		// Second write: no protection left, no fault.
		faulted, _ = r.TouchWrite(p, 0, 128)
		if faulted {
			t.Error("faulted on unprotected page")
		}
	})
	e.Run()
	if k.Counters.Get("protection_faults") != 1 {
		t.Fatalf("protection_faults = %d, want 1", k.Counters.Get("protection_faults"))
	}
}

func TestChunkLevelHandlerFaultsOncePerChunk(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		r, _ := pr.DRAMAlloc("chunk", 10*mem.PageSize, 64)
		r.SetFaultHandler(func(p *sim.Proc, fr *Region, page int) { fr.Unprotect(p) })
		r.Protect(p)
		// A write spanning all 10 pages must raise exactly one fault.
		if _, err := r.TouchWrite(p, 0, 10*mem.PageSize); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if got := k.Counters.Get("protection_faults"); got != 1 {
		t.Fatalf("protection_faults = %d, want 1 (chunk-level)", got)
	}
}

func TestPageLevelHandlerFaultsPerPage(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		r, _ := pr.DRAMAlloc("chunk", 10*mem.PageSize, 64)
		// Page-level ablation: the handler unprotects only the faulting page.
		r.SetFaultHandler(func(p *sim.Proc, fr *Region, page int) {
			fr.prot.clear(page)
		})
		r.Protect(p)
		if _, err := r.TouchWrite(p, 0, 10*mem.PageSize); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if got := k.Counters.Get("protection_faults"); got != 10 {
		t.Fatalf("protection_faults = %d, want 10 (page-level)", got)
	}
}

func TestTouchWriteWithoutHandlerFails(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		r, _ := pr.DRAMAlloc("chunk", mem.PageSize, 16)
		r.Protect(p)
		if _, err := r.TouchWrite(p, 0, 8); !errors.Is(err, ErrNoHandler) {
			t.Errorf("err = %v, want ErrNoHandler", err)
		}
	})
	e.Run()
}

func TestNVDirtyBitsCollectAndClear(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		r, _, _ := pr.NVMMap(p, "c", 8*mem.PageSize, 64)
		r.MarkNVDirty(0, mem.PageSize)                // page 0
		r.MarkNVDirty(5*mem.PageSize, 2*mem.PageSize) // pages 5,6
		if r.DirtyPages() != 3 {
			t.Errorf("DirtyPages = %d, want 3", r.DirtyPages())
		}
		got := r.CollectNVDirty(p)
		if len(got) != 3 || got[0] != 0 || got[1] != 5 || got[2] != 6 {
			t.Errorf("CollectNVDirty = %v", got)
		}
		if r.DirtyPages() != 0 {
			t.Error("dirty bits not cleared by collect")
		}
	})
	e.Run()
}

func TestMetaSurvivesSoftResetSharedWithHelper(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		k.MetaLock.Lock(p)
		pr.SetMeta(p, "chunktable", []string{"a", "b"})
		k.MetaLock.Unlock(p)
	})
	var helperSaw []string
	e.Go("helper", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		k.MetaLock.Lock(p)
		v, ok := k.QueryMeta(p, "rank0", "chunktable")
		k.MetaLock.Unlock(p)
		if !ok {
			t.Error("helper could not load metadata")
			return
		}
		helperSaw = v.([]string)
	})
	e.Run()
	if len(helperSaw) != 2 || helperSaw[0] != "a" {
		t.Fatalf("helper saw %v", helperSaw)
	}
	k.SoftReset()
	e.Go("restarted", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		if _, ok := pr.GetMeta(p, "chunktable"); !ok {
			t.Error("metadata lost across soft reset")
		}
	})
	e.Run()
}

func TestRegionPagesRounding(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		r, _ := pr.DRAMAlloc("tiny", 1, 1)
		if r.Pages() != 1 {
			t.Errorf("1-byte region pages = %d, want 1", r.Pages())
		}
		r2, _ := pr.DRAMAlloc("odd", mem.PageSize+1, 1)
		if r2.Pages() != 2 {
			t.Errorf("page+1 region pages = %d, want 2", r2.Pages())
		}
	})
	e.Run()
}

func TestFlushCostCharged(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	var took time.Duration
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		r, _, _ := pr.NVMMap(p, "c", 10*mem.MB, 64)
		start := p.Now()
		r.Flush(p, 10*mem.MB)
		took = p.Now() - start
	})
	e.Run()
	if took <= 0 {
		t.Fatal("flush charged no time")
	}
	if k.Counters.Get("cache_flushes") != 1 {
		t.Fatal("flush not counted")
	}
}

func TestAccessorsAndPageLevelHelpers(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	e.Go("app", func(p *sim.Proc) {
		pr := k.Attach("rank0")
		if pr.Name() != "rank0" || pr.Kernel() != k || k.Env() != e {
			t.Error("accessor mismatch")
		}
		r, _, _ := pr.NVMMap(p, "c", 4*mem.PageSize, 16)
		if pr.NVMRegion("c") != r || pr.NVMRegion("missing") != nil {
			t.Error("NVMRegion lookup wrong")
		}
		if ids := pr.NVMRegions(); len(ids) != 1 || ids[0] != "c" {
			t.Errorf("NVMRegions = %v", ids)
		}
		if r.Owner() != pr {
			t.Error("Owner mismatch")
		}
		// Page-level protect/unprotect pair.
		r.ProtectPage(p, 2)
		if !r.PageProtected(2) || r.PageProtected(1) {
			t.Error("ProtectPage wrong")
		}
		if !r.Protected() {
			t.Error("Protected() should see page 2")
		}
		r.UnprotectPage(p, 2)
		if r.Protected() {
			t.Error("still protected after UnprotectPage")
		}
		// DeferProtect applies at the end of the next write.
		r.SetFaultHandler(func(fp *sim.Proc, fr *Region, page int) { fr.Unprotect(fp) })
		r.DeferProtect()
		if _, err := r.TouchWrite(p, 0, 8); err != nil {
			t.Error(err)
		}
		if !r.Protected() {
			t.Error("DeferProtect did not apply after the write")
		}
		// DRAMFree path.
		if _, err := pr.DRAMAlloc("w", mem.PageSize, 0); err != nil {
			t.Error(err)
		}
		if err := pr.DRAMFree("w"); err != nil {
			t.Error(err)
		}
		if err := pr.DRAMFree("w"); err == nil {
			t.Error("double DRAMFree succeeded")
		}
		if names := k.ProcessNames(); len(names) != 1 || names[0] != "rank0" {
			t.Errorf("ProcessNames = %v", names)
		}
		if r.String() == "" || r.Kind.String() != "nvm" || DRAMRegion.String() != "dram" {
			t.Error("stringers wrong")
		}
	})
	e.Run()
}

func TestAttachTwicePanics(t *testing.T) {
	e := sim.NewEnv()
	k := newTestKernel(e)
	k.Attach("rank0")
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	k.Attach("rank0")
}
