// Package nvmkernel emulates the paper's Linux NVM kernel manager: the
// OS-level component that exposes NVM as virtual memory. It provides
// per-process NVM containers mapped with an nvmmap-like call, page tables
// with chunk-granularity write protection and fault delivery, per-page
// 'nvdirty' bits (the paper's optimization that lets the remote-checkpoint
// helper find dirty NVM pages without protection faults), cache-flush-before-
// commit, and a persistent metadata store that survives process restarts and
// node reboots (soft failures) but not hard node failures.
//
// Cost accounting follows the paper's split: control-path costs (user↔kernel
// transitions, protection faults, mprotect calls) are charged here in virtual
// time; bulk data movement is charged by the caller through the mem package's
// bandwidth models, so nothing is double-counted.
package nvmkernel

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Control-path cost defaults. The fault cost is the paper's "6-12 usec" per
// protection fault; syscall cost is a user↔kernel round trip.
const (
	DefaultFaultCost   = 9 * time.Microsecond
	DefaultSyscallCost = 300 * time.Nanosecond
	DefaultProtectCost = 1 * time.Microsecond // one mprotect call
)

// Common kernel errors.
var (
	ErrNoSuchRegion = errors.New("nvmkernel: no such region")
	ErrExists       = errors.New("nvmkernel: region already mapped")
	ErrNoHandler    = errors.New("nvmkernel: write fault with no handler installed")
	ErrNVMLost      = errors.New("nvmkernel: NVM contents lost (hard failure)")
)

// RegionKind says which device backs a region.
type RegionKind int

const (
	// DRAMRegion backs the working copy the application computes on.
	DRAMRegion RegionKind = iota
	// NVMRegion backs a persistent shadow chunk.
	NVMRegion
)

func (k RegionKind) String() string {
	if k == NVMRegion {
		return "nvm"
	}
	return "dram"
}

// FaultHandler is invoked (in the faulting process's context, before the
// write proceeds) when a store hits a write-protected page. page is the index
// within the region. Handlers typically unprotect the whole region and mark
// the owning chunk dirty — that is the paper's chunk-level protection.
type FaultHandler func(p *sim.Proc, r *Region, page int)

// Kernel is one node's NVM manager.
type Kernel struct {
	env  *sim.Env
	NVM  *mem.Device
	DRAM *mem.Device

	// MetaLock serializes metadata access between application processes
	// and the asynchronous checkpoint helper, as in the paper.
	MetaLock *sim.Mutex

	// Costs are configurable for the page-vs-chunk ablation.
	FaultCost   time.Duration
	SyscallCost time.Duration
	ProtectCost time.Duration

	// Counters tracks faults, syscalls, flushes, and mprotect calls.
	Counters trace.Counters

	store map[string]*procStore // persistent per-process state, by name
	procs map[string]*Process   // currently attached processes
}

// procStore is what NVM remembers about a process across restarts.
type procStore struct {
	regions map[string]*Region
	meta    map[string]any
}

// New builds a kernel managing the given devices.
func New(env *sim.Env, dram, nvm *mem.Device) *Kernel {
	return &Kernel{
		env:         env,
		NVM:         nvm,
		DRAM:        dram,
		MetaLock:    sim.NewMutex(env),
		FaultCost:   DefaultFaultCost,
		SyscallCost: DefaultSyscallCost,
		ProtectCost: DefaultProtectCost,
		store:       make(map[string]*procStore),
		procs:       make(map[string]*Process),
	}
}

// Env returns the simulation environment.
func (k *Kernel) Env() *sim.Env { return k.env }

func (k *Kernel) syscall(p *sim.Proc) {
	k.Counters.Add("syscalls", 1)
	if p != nil {
		p.Sleep(k.SyscallCost)
	}
}

// Attach connects a process (by persistent name) to the kernel, creating its
// store on first attach. Re-attaching after a restart finds surviving NVM
// regions.
func (k *Kernel) Attach(name string) *Process {
	if _, ok := k.procs[name]; ok {
		panic("nvmkernel: process " + name + " attached twice")
	}
	ps, ok := k.store[name]
	if !ok {
		ps = &procStore{regions: make(map[string]*Region), meta: make(map[string]any)}
		k.store[name] = ps
	}
	proc := &Process{k: k, name: name, store: ps, dram: make(map[string]*Region)}
	k.procs[name] = proc
	return proc
}

// HardFail models an unrecoverable node failure: all NVM contents and
// metadata are lost and every attached process is detached.
func (k *Kernel) HardFail() {
	for _, ps := range k.store {
		for _, r := range ps.regions {
			k.NVM.Release(r.VirtualSize)
		}
	}
	k.store = make(map[string]*procStore)
	k.detachAll()
	k.Counters.Add("hard_failures", 1)
}

// SoftReset models a node reboot or process-group crash: DRAM contents are
// lost, NVM survives. Attached processes are detached and must re-Attach.
func (k *Kernel) SoftReset() {
	k.detachAll()
	k.Counters.Add("soft_resets", 1)
}

func (k *Kernel) detachAll() {
	for name := range k.procs {
		k.procs[name].releaseDRAM()
	}
	k.procs = make(map[string]*Process)
	// A process killed while holding the metadata lock would otherwise
	// leave it held forever; all lock users are dead at reset time.
	k.MetaLock = sim.NewMutex(k.env)
}

// Process is a process's view of the kernel: its address space of DRAM
// regions plus its persistent NVM container.
type Process struct {
	k     *Kernel
	name  string
	store *procStore
	dram  map[string]*Region
}

// Name returns the process's persistent identity.
func (pr *Process) Name() string { return pr.name }

// Kernel returns the owning kernel.
func (pr *Process) Kernel() *Kernel { return pr.k }

// Exit detaches the process, releasing DRAM but keeping NVM state.
func (pr *Process) Exit() {
	pr.releaseDRAM()
	delete(pr.k.procs, pr.name)
}

func (pr *Process) releaseDRAM() {
	for id, r := range pr.dram {
		pr.k.DRAM.Release(r.VirtualSize)
		delete(pr.dram, id)
	}
}

// NVMMap maps (creating if absent) a persistent NVM region of virtualSize
// bytes whose real payload is payloadSize bytes. It reports whether the
// region already existed — after a restart this is how checkpoint data is
// found again. Charged as one syscall (the paper's 'nvmmap').
func (pr *Process) NVMMap(p *sim.Proc, id string, virtualSize int64, payloadSize int) (*Region, bool, error) {
	pr.k.syscall(p)
	if r, ok := pr.store.regions[id]; ok {
		return r, true, nil
	}
	if err := pr.k.NVM.Reserve(virtualSize); err != nil {
		return nil, false, err
	}
	r := newRegion(pr, id, NVMRegion, virtualSize, payloadSize)
	pr.store.regions[id] = r
	pr.k.Counters.Add("nvmmap", 1)
	return r, false, nil
}

// NVMUnmap deletes a persistent region and releases its space ('nvdelete').
func (pr *Process) NVMUnmap(p *sim.Proc, id string) error {
	pr.k.syscall(p)
	r, ok := pr.store.regions[id]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoSuchRegion, pr.name, id)
	}
	delete(pr.store.regions, id)
	pr.k.NVM.Release(r.VirtualSize)
	return nil
}

// NVMRegion returns a mapped region without side effects, or nil.
func (pr *Process) NVMRegion(id string) *Region { return pr.store.regions[id] }

// NVMRegions returns the ids of all mapped NVM regions (restart discovery).
func (pr *Process) NVMRegions() []string {
	ids := make([]string, 0, len(pr.store.regions))
	for id := range pr.store.regions {
		ids = append(ids, id)
	}
	return ids
}

// DRAMAlloc allocates a volatile region (ordinary heap memory; no syscall
// cost — the allocator amortizes brk/mmap).
func (pr *Process) DRAMAlloc(id string, virtualSize int64, payloadSize int) (*Region, error) {
	if _, ok := pr.dram[id]; ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrExists, pr.name, id)
	}
	if err := pr.k.DRAM.Reserve(virtualSize); err != nil {
		return nil, err
	}
	r := newRegion(pr, id, DRAMRegion, virtualSize, payloadSize)
	pr.dram[id] = r
	return r, nil
}

// DRAMFree releases a volatile region.
func (pr *Process) DRAMFree(id string) error {
	r, ok := pr.dram[id]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoSuchRegion, pr.name, id)
	}
	delete(pr.dram, id)
	pr.k.DRAM.Release(r.VirtualSize)
	return nil
}

// SetMeta stores a named metadata value in the process's persistent NVM
// metadata area (the per-process metadata structure of Section V). Callers
// must hold MetaLock when the helper may be reading concurrently.
func (pr *Process) SetMeta(p *sim.Proc, key string, v any) {
	pr.k.syscall(p)
	pr.store.meta[key] = v
}

// GetMeta loads a named metadata value; ok is false if absent or lost.
func (pr *Process) GetMeta(p *sim.Proc, key string) (any, bool) {
	pr.k.syscall(p)
	v, ok := pr.store.meta[key]
	return v, ok
}

// QueryMeta lets another process (the checkpoint helper) load a process's
// metadata by name — the paper's "system interface which loads the entire
// metadata structure to the [helper] process address space".
func (k *Kernel) QueryMeta(p *sim.Proc, procName, key string) (any, bool) {
	k.syscall(p)
	ps, ok := k.store[procName]
	if !ok {
		return nil, false
	}
	v, ok := ps.meta[key]
	return v, ok
}

// ProcessNames lists processes with persistent state on this node.
func (k *Kernel) ProcessNames() []string {
	names := make([]string, 0, len(k.store))
	for n := range k.store {
		names = append(names, n)
	}
	return names
}

// MetaKeys returns a process's persistent metadata keys in sorted order —
// the deterministic enumeration fault injection walks to pick victims.
// Unknown processes yield nil.
func (k *Kernel) MetaKeys(procName string) []string {
	ps, ok := k.store[procName]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(ps.meta))
	for key := range ps.meta {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}
