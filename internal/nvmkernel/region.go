package nvmkernel

import (
	"fmt"
	"math/bits"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
)

// pageSet is a fixed-size bitset over page indices. Regions at paper scale
// run to hundreds of thousands of pages, and the page tables are touched on
// every simulated store, so the set is packed 64 pages per word: allocation
// and clearing move 1/8th the memory of a []bool, and range scans
// (anyProtected, CollectNVDirty) skip 64 clean pages per load.
//
// Invariant: bits at and above the page count are always zero, so word-wise
// "any bit set" and popcount need no tail masking.
type pageSet []uint64

func newPageSet(pages int) pageSet { return make(pageSet, (pages+63)/64) }

func (s pageSet) get(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }
func (s pageSet) set(i int)      { s[i>>6] |= 1 << (uint(i) & 63) }
func (s pageSet) clear(i int)    { s[i>>6] &^= 1 << (uint(i) & 63) }

// setAll sets the first n bits.
func (s pageSet) setAll(n int) {
	for w := range s {
		s[w] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		s[len(s)-1] = (1 << rem) - 1
	}
}

func (s pageSet) clearAll() {
	for w := range s {
		s[w] = 0
	}
}

func (s pageSet) any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// anyInRange reports whether any bit in [from, to] is set.
func (s pageSet) anyInRange(from, to int) bool {
	if from > to {
		return false
	}
	fw, tw := from>>6, to>>6
	loMask := ^uint64(0) << (uint(from) & 63)
	hiMask := ^uint64(0) >> (63 - uint(to)&63)
	if fw == tw {
		return s[fw]&loMask&hiMask != 0
	}
	if s[fw]&loMask != 0 {
		return true
	}
	for w := fw + 1; w < tw; w++ {
		if s[w] != 0 {
			return true
		}
	}
	return s[tw]&hiMask != 0
}

// setRange sets every bit in [from, to].
func (s pageSet) setRange(from, to int) {
	if from > to {
		return
	}
	fw, tw := from>>6, to>>6
	loMask := ^uint64(0) << (uint(from) & 63)
	hiMask := ^uint64(0) >> (63 - uint(to)&63)
	if fw == tw {
		s[fw] |= loMask & hiMask
		return
	}
	s[fw] |= loMask
	for w := fw + 1; w < tw; w++ {
		s[w] = ^uint64(0)
	}
	s[tw] |= hiMask
}

func (s pageSet) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Region is a contiguous mapped range: a page table with protection and
// nvdirty bits, plus a real data payload. VirtualSize drives all timing and
// capacity accounting; Data holds the (possibly scaled-down) real bytes that
// checksums and restore verification operate on.
type Region struct {
	ID          string
	Kind        RegionKind
	VirtualSize int64
	Data        []byte

	owner          *Process
	pages          int
	prot           pageSet // write-protected pages
	nvdirty        pageSet // kernel-maintained dirty bits (NVM regions)
	handler        FaultHandler
	pendingProtect bool
}

func newRegion(pr *Process, id string, kind RegionKind, virtualSize int64, payloadSize int) *Region {
	pages := int((virtualSize + mem.PageSize - 1) / mem.PageSize)
	if pages == 0 {
		pages = 1
	}
	return &Region{
		ID:          id,
		Kind:        kind,
		VirtualSize: virtualSize,
		Data:        make([]byte, payloadSize),
		owner:       pr,
		pages:       pages,
		prot:        newPageSet(pages),
		nvdirty:     newPageSet(pages),
	}
}

// Pages returns the number of pages in the region.
func (r *Region) Pages() int { return r.pages }

// Owner returns the owning process.
func (r *Region) Owner() *Process { return r.owner }

// SetFaultHandler installs the chunk-level protection-fault handler.
func (r *Region) SetFaultHandler(h FaultHandler) { r.handler = h }

// Protect write-protects every page of the region (one mprotect call).
func (r *Region) Protect(p *sim.Proc) {
	r.owner.k.Counters.Add("mprotect", 1)
	if p != nil {
		p.Sleep(r.owner.k.ProtectCost)
	}
	r.prot.setAll(r.pages)
}

// Unprotect clears write protection on every page (one mprotect call).
func (r *Region) Unprotect(p *sim.Proc) {
	r.owner.k.Counters.Add("mprotect", 1)
	if p != nil {
		p.Sleep(r.owner.k.ProtectCost)
	}
	r.prot.clearAll()
}

// UnprotectPage clears write protection on a single page — the page-level
// pre-copy ablation's fault handler, which pays one fault per page.
func (r *Region) UnprotectPage(p *sim.Proc, page int) {
	r.owner.k.Counters.Add("mprotect", 1)
	if p != nil {
		p.Sleep(r.owner.k.ProtectCost)
	}
	r.prot.clear(page)
}

// ProtectPage write-protects a single page (page-level pre-copy ablation).
func (r *Region) ProtectPage(p *sim.Proc, page int) {
	r.owner.k.Counters.Add("mprotect", 1)
	if p != nil {
		p.Sleep(r.owner.k.ProtectCost)
	}
	r.prot.set(page)
}

// Protected reports whether any page of the region is write-protected.
func (r *Region) Protected() bool { return r.prot.any() }

// PageProtected reports whether one page is write-protected.
func (r *Region) PageProtected(page int) bool { return r.prot.get(page) }

// TouchWrite models the application storing to [off, off+n). If any touched
// page is write-protected, a protection fault is charged (FaultCost) and the
// installed handler runs before the store retires; with no handler the write
// fails, as a real segfault would. It returns whether a fault occurred.
//
// Only the first faulting page raises a fault: the paper's chunk-level
// handler unprotects the whole chunk, so one fault per modified chunk is the
// intended behaviour; the page-level ablation re-protects page by page and
// therefore faults once per page.
func (r *Region) TouchWrite(p *sim.Proc, off, n int64) (bool, error) {
	if n <= 0 {
		return false, nil
	}
	first := int(off / mem.PageSize)
	last := int((off + n - 1) / mem.PageSize)
	if last >= r.pages {
		last = r.pages - 1
	}
	if !r.prot.anyInRange(first, last) {
		// Clean fast path: most stores land on already-unprotected pages,
		// so the per-page fault loop below is skipped entirely.
		if r.pendingProtect {
			r.pendingProtect = false
			r.Protect(p)
		}
		return false, nil
	}
	faulted := false
	for pg := first; pg <= last; pg++ {
		if !r.prot.get(pg) {
			continue
		}
		if r.handler == nil {
			return false, fmt.Errorf("%w: %s/%s page %d", ErrNoHandler, r.owner.name, r.ID, pg)
		}
		r.owner.k.Counters.Add("protection_faults", 1)
		if p != nil {
			p.Sleep(r.owner.k.FaultCost)
		}
		r.handler(p, r, pg)
		faulted = true
		if !r.prot.get(pg) {
			// Chunk-level handler unprotected the whole range; the
			// remaining pages cannot fault again.
			if !r.anyProtected(pg+1, last) {
				break
			}
		}
	}
	if r.pendingProtect {
		// A fault handler (e.g. the DCPCP episode counter) asked for
		// re-protection; it takes effect once the faulting store retires,
		// never mid-write — re-protecting inside the handler would make
		// the same store fault on every page.
		r.pendingProtect = false
		r.Protect(p)
	}
	return faulted, nil
}

// DeferProtect requests that the region be write-protected again as soon as
// the in-flight write completes. Outside a write it applies at the next
// TouchWrite; use Protect for immediate effect.
func (r *Region) DeferProtect() { r.pendingProtect = true }

func (r *Region) anyProtected(from, to int) bool {
	return r.prot.anyInRange(from, to)
}

// MarkNVDirty sets the kernel-maintained dirty bits for the page range
// covering [off, off+n) — called by the checkpoint path after writing chunk
// data into an NVM region, so the remote helper can find modified pages
// without protection faults (the paper's 'nvdirty' bit).
func (r *Region) MarkNVDirty(off, n int64) {
	if n <= 0 {
		return
	}
	first := int(off / mem.PageSize)
	last := int((off + n - 1) / mem.PageSize)
	if last >= r.pages {
		last = r.pages - 1
	}
	r.nvdirty.setRange(first, last)
}

// DirtyPages returns the count of nvdirty pages.
func (r *Region) DirtyPages() int { return r.nvdirty.count() }

// CollectNVDirty returns and clears the nvdirty page indices — the syscall
// the helper uses to identify dirty NVM pages of a chunk.
func (r *Region) CollectNVDirty(p *sim.Proc) []int {
	r.owner.k.syscall(p)
	var out []int
	for wi, w := range r.nvdirty {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << uint(b)
		}
		r.nvdirty[wi] = 0
	}
	return out
}

// Flush charges the cacheline-flush cost for size bytes of the region's
// device — the paper flushes processor caches before marking data consistent.
func (r *Region) Flush(p *sim.Proc, size int64) {
	dev := r.owner.k.DRAM
	if r.Kind == NVMRegion {
		dev = r.owner.k.NVM
	}
	r.owner.k.Counters.Add("cache_flushes", 1)
	if p != nil {
		p.Sleep(dev.FlushCost(size))
	}
}

// String implements fmt.Stringer.
func (r *Region) String() string {
	return fmt.Sprintf("nvmkernel.Region{%s/%s %s %dB}", r.owner.name, r.ID, r.Kind, r.VirtualSize)
}
