package nvmkernel

import (
	"fmt"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
)

// Region is a contiguous mapped range: a page table slice with protection and
// nvdirty bits, plus a real data payload. VirtualSize drives all timing and
// capacity accounting; Data holds the (possibly scaled-down) real bytes that
// checksums and restore verification operate on.
type Region struct {
	ID          string
	Kind        RegionKind
	VirtualSize int64
	Data        []byte

	owner          *Process
	pages          int
	prot           []bool // write-protected pages
	nvdirty        []bool // kernel-maintained dirty bits (NVM regions)
	handler        FaultHandler
	pendingProtect bool
}

func newRegion(pr *Process, id string, kind RegionKind, virtualSize int64, payloadSize int) *Region {
	pages := int((virtualSize + mem.PageSize - 1) / mem.PageSize)
	if pages == 0 {
		pages = 1
	}
	return &Region{
		ID:          id,
		Kind:        kind,
		VirtualSize: virtualSize,
		Data:        make([]byte, payloadSize),
		owner:       pr,
		pages:       pages,
		prot:        make([]bool, pages),
		nvdirty:     make([]bool, pages),
	}
}

// Pages returns the number of pages in the region.
func (r *Region) Pages() int { return r.pages }

// Owner returns the owning process.
func (r *Region) Owner() *Process { return r.owner }

// SetFaultHandler installs the chunk-level protection-fault handler.
func (r *Region) SetFaultHandler(h FaultHandler) { r.handler = h }

// Protect write-protects every page of the region (one mprotect call).
func (r *Region) Protect(p *sim.Proc) {
	r.owner.k.Counters.Add("mprotect", 1)
	if p != nil {
		p.Sleep(r.owner.k.ProtectCost)
	}
	for i := range r.prot {
		r.prot[i] = true
	}
}

// Unprotect clears write protection on every page (one mprotect call).
func (r *Region) Unprotect(p *sim.Proc) {
	r.owner.k.Counters.Add("mprotect", 1)
	if p != nil {
		p.Sleep(r.owner.k.ProtectCost)
	}
	for i := range r.prot {
		r.prot[i] = false
	}
}

// UnprotectPage clears write protection on a single page — the page-level
// pre-copy ablation's fault handler, which pays one fault per page.
func (r *Region) UnprotectPage(p *sim.Proc, page int) {
	r.owner.k.Counters.Add("mprotect", 1)
	if p != nil {
		p.Sleep(r.owner.k.ProtectCost)
	}
	r.prot[page] = false
}

// ProtectPage write-protects a single page (page-level pre-copy ablation).
func (r *Region) ProtectPage(p *sim.Proc, page int) {
	r.owner.k.Counters.Add("mprotect", 1)
	if p != nil {
		p.Sleep(r.owner.k.ProtectCost)
	}
	r.prot[page] = true
}

// Protected reports whether any page of the region is write-protected.
func (r *Region) Protected() bool {
	for _, b := range r.prot {
		if b {
			return true
		}
	}
	return false
}

// PageProtected reports whether one page is write-protected.
func (r *Region) PageProtected(page int) bool { return r.prot[page] }

// TouchWrite models the application storing to [off, off+n). If any touched
// page is write-protected, a protection fault is charged (FaultCost) and the
// installed handler runs before the store retires; with no handler the write
// fails, as a real segfault would. It returns whether a fault occurred.
//
// Only the first faulting page raises a fault: the paper's chunk-level
// handler unprotects the whole chunk, so one fault per modified chunk is the
// intended behaviour; the page-level ablation re-protects page by page and
// therefore faults once per page.
func (r *Region) TouchWrite(p *sim.Proc, off, n int64) (bool, error) {
	if n <= 0 {
		return false, nil
	}
	first := int(off / mem.PageSize)
	last := int((off + n - 1) / mem.PageSize)
	if last >= r.pages {
		last = r.pages - 1
	}
	faulted := false
	for pg := first; pg <= last; pg++ {
		if !r.prot[pg] {
			continue
		}
		if r.handler == nil {
			return false, fmt.Errorf("%w: %s/%s page %d", ErrNoHandler, r.owner.name, r.ID, pg)
		}
		r.owner.k.Counters.Add("protection_faults", 1)
		if p != nil {
			p.Sleep(r.owner.k.FaultCost)
		}
		r.handler(p, r, pg)
		faulted = true
		if !r.prot[pg] {
			// Chunk-level handler unprotected the whole range; the
			// remaining pages cannot fault again.
			if !r.anyProtected(pg+1, last) {
				break
			}
		}
	}
	if r.pendingProtect {
		// A fault handler (e.g. the DCPCP episode counter) asked for
		// re-protection; it takes effect once the faulting store retires,
		// never mid-write — re-protecting inside the handler would make
		// the same store fault on every page.
		r.pendingProtect = false
		r.Protect(p)
	}
	return faulted, nil
}

// DeferProtect requests that the region be write-protected again as soon as
// the in-flight write completes. Outside a write it applies at the next
// TouchWrite; use Protect for immediate effect.
func (r *Region) DeferProtect() { r.pendingProtect = true }

func (r *Region) anyProtected(from, to int) bool {
	for pg := from; pg <= to; pg++ {
		if r.prot[pg] {
			return true
		}
	}
	return false
}

// MarkNVDirty sets the kernel-maintained dirty bits for the page range
// covering [off, off+n) — called by the checkpoint path after writing chunk
// data into an NVM region, so the remote helper can find modified pages
// without protection faults (the paper's 'nvdirty' bit).
func (r *Region) MarkNVDirty(off, n int64) {
	if n <= 0 {
		return
	}
	first := int(off / mem.PageSize)
	last := int((off + n - 1) / mem.PageSize)
	if last >= r.pages {
		last = r.pages - 1
	}
	for pg := first; pg <= last; pg++ {
		r.nvdirty[pg] = true
	}
}

// DirtyPages returns the count of nvdirty pages.
func (r *Region) DirtyPages() int {
	n := 0
	for _, d := range r.nvdirty {
		if d {
			n++
		}
	}
	return n
}

// CollectNVDirty returns and clears the nvdirty page indices — the syscall
// the helper uses to identify dirty NVM pages of a chunk.
func (r *Region) CollectNVDirty(p *sim.Proc) []int {
	r.owner.k.syscall(p)
	var out []int
	for pg, d := range r.nvdirty {
		if d {
			out = append(out, pg)
			r.nvdirty[pg] = false
		}
	}
	return out
}

// Flush charges the cacheline-flush cost for size bytes of the region's
// device — the paper flushes processor caches before marking data consistent.
func (r *Region) Flush(p *sim.Proc, size int64) {
	dev := r.owner.k.DRAM
	if r.Kind == NVMRegion {
		dev = r.owner.k.NVM
	}
	r.owner.k.Counters.Add("cache_flushes", 1)
	if p != nil {
		p.Sleep(dev.FlushCost(size))
	}
}

// String implements fmt.Stringer.
func (r *Region) String() string {
	return fmt.Sprintf("nvmkernel.Region{%s/%s %s %dB}", r.owner.name, r.ID, r.Kind, r.VirtualSize)
}
