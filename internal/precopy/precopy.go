// Package precopy implements the paper's three local pre-copy schemes
// (Section IV): chunk-based pre-copy (CPC), delayed chunk pre-copy (DCPC),
// and delayed pre-copy with prediction (DCPCP). An Engine is a background
// process attached to one rank's checkpoint store. It watches chunk-level
// modification events (protection faults surfaced through core.Store's
// OnModify hook), and stages dirty chunks to NVM ahead of the coordinated
// checkpoint so that the checkpoint itself moves less data at lower peak
// bandwidth.
//
//   - CPC copies a chunk as soon as it goes dirty — maximal overlap, but hot
//     chunks are copied repeatedly.
//   - DCPC waits until the pre-copy threshold T_p = I − D/NVMBW_core of each
//     interval has passed (learned from the first checkpoint and re-adapted
//     every interval), so short-lived re-dirtying early in the interval costs
//     nothing.
//   - DCPCP additionally learns, during the first interval, how many times
//     each chunk is modified per iteration (Figure 6's prediction table) and
//     refuses to pre-copy a chunk until its modification count for the
//     current interval has reached the learned count — hot chunks that keep
//     changing until the end of the iteration are left for the checkpoint.
package precopy

import (
	"strconv"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/model"
	"nvmcp/internal/obs"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Scheme selects the pre-copy policy.
type Scheme int

const (
	// NoPreCopy disables background copying; every dirty chunk is moved at
	// the coordinated checkpoint.
	NoPreCopy Scheme = iota
	// CPC copies chunks as soon as they are modified.
	CPC
	// DCPC delays pre-copy until the adaptive threshold within each interval.
	DCPC
	// DCPCP is DCPC plus the per-chunk modification-count prediction table.
	DCPCP
)

func (s Scheme) String() string {
	switch s {
	case CPC:
		return "cpc"
	case DCPC:
		return "dcpc"
	case DCPCP:
		return "dcpcp"
	default:
		return "none"
	}
}

// Config tunes an Engine.
type Config struct {
	Scheme Scheme
	// RateCap throttles background copies in bytes/sec (0 = uncapped);
	// the background stream then leaves NVM bandwidth headroom for any
	// concurrent foreground work.
	RateCap float64
	// BWPerCore is the effective NVM write bandwidth per core used by the
	// threshold calculation (NVMBW_core).
	BWPerCore float64
	// PollTick bounds how long the worker sleeps with no work (default 50ms).
	PollTick time.Duration
	// Rec publishes engine activity onto the run's observability bus
	// (nil-safe; nil disables instrumentation).
	Rec *obs.Recorder
	// TraceLane is the tid spans are drawn in on the engine's node.
	TraceLane int
}

// Engine is one rank's background pre-copy worker.
type Engine struct {
	cfg   Config
	store *core.Store
	env   *sim.Env
	proc  *sim.Proc
	wake  *sim.Signal

	intervalStart time.Duration
	interval      time.Duration // learned checkpoint interval I
	threshold     time.Duration // learned T_p
	learned       bool          // first checkpoint seen

	// prediction table (DCPCP)
	predicted map[uint64]int64 // learned modification episodes per interval
	modsNow   map[uint64]int64 // episodes observed this interval

	quiesced bool
	copying  bool
	copyDone *sim.Completion
	stopped  bool

	// Meter tracks worker busy time (pre-copy CPU usage).
	Meter trace.Meter
	// Counters: "mod_events", "precopy_copies", "precopy_bytes", and
	// "raced_copies" (chunks modified again while their pre-copy was in
	// flight — work the checkpoint must redo).
	Counters trace.Counters
}

// New attaches an engine to a store and starts its background worker.
func New(store *core.Store, cfg Config) *Engine {
	if cfg.PollTick == 0 {
		cfg.PollTick = 50 * time.Millisecond
	}
	env := store.Kernel().Env()
	e := &Engine{
		cfg:       cfg,
		store:     store,
		env:       env,
		wake:      sim.NewSignal(env),
		copyDone:  sim.NewCompletion(env),
		predicted: make(map[uint64]int64),
		modsNow:   make(map[uint64]int64),
	}
	e.copyDone.Complete() // not copying initially
	store.OnModify(e.onModify)
	if cfg.Scheme != NoPreCopy {
		e.proc = env.Go("precopy/"+store.Proc().Name(), e.run)
	}
	return e
}

// Scheme returns the engine's policy.
func (e *Engine) Scheme() Scheme { return e.cfg.Scheme }

// Threshold returns the current DCPC threshold T_p (0 until learned).
func (e *Engine) Threshold() time.Duration { return e.threshold }

// Predicted returns the learned modification count for a chunk (0 if none).
func (e *Engine) Predicted(id uint64) int64 { return e.predicted[id] }

// onModify runs inside the faulting application process whenever a clean
// chunk is first modified: it updates per-interval episode counters, re-arms
// protection when more episodes must be counted, and nudges the worker.
func (e *Engine) onModify(c *core.Chunk) {
	if e.cfg.Scheme == NoPreCopy {
		return
	}
	e.modsNow[c.ID]++
	e.count("mod_events", 1)
	switch e.cfg.Scheme {
	case DCPCP:
		// Keep counting episodes until the prediction is met (or while
		// learning); each re-protect costs the app one mprotect and the
		// next touch one fault — the dirt-tracking cost the paper notes.
		// The re-protect is deferred to the end of the faulting write.
		if !e.learned || e.modsNow[c.ID] < e.predicted[c.ID] {
			c.DeferProtect()
		}
	case CPC, DCPC:
		// Chunk-level tracking only: one fault per interval per chunk.
	}
	e.wake.Broadcast()
}

// BeginInterval marks the start of a compute interval (right after a
// coordinated checkpoint). For delayed schemes it schedules the threshold
// wakeup.
func (e *Engine) BeginInterval(p *sim.Proc) {
	e.intervalStart = e.env.Now()
	e.quiesced = false
	for id := range e.modsNow {
		delete(e.modsNow, id)
	}
	if e.cfg.Scheme != NoPreCopy {
		// Arm modification tracking on chunks that are not yet protected
		// (fresh allocations; staged chunks are already protected).
		for _, c := range e.store.Chunks() {
			if c.Persistent && !c.Protected() {
				c.Protect(p)
			}
		}
	}
	if e.cfg.Scheme == DCPC || e.cfg.Scheme == DCPCP {
		if e.learned {
			e.env.Schedule(e.threshold, e.wake.Broadcast)
		}
	}
	e.wake.Broadcast()
}

// OnCheckpoint informs the engine that a coordinated checkpoint just
// completed, letting it learn or adapt the interval, checkpoint volume and
// prediction table. ckptStart is when the checkpoint began.
func (e *Engine) OnCheckpoint(ckptStart time.Duration) {
	if e.cfg.Scheme == NoPreCopy {
		return
	}
	interval := ckptStart - e.intervalStart
	if interval <= 0 {
		return
	}
	e.interval = interval
	if e.cfg.BWPerCore > 0 {
		e.threshold = model.PreCopyThreshold(e.interval, e.store.CheckpointSize(), e.cfg.BWPerCore)
	}
	if !e.learned {
		// End of the learning phase: freeze the prediction table.
		for id, n := range e.modsNow {
			e.predicted[id] = n
		}
		e.learned = true
	} else if e.cfg.Scheme == DCPCP {
		// Continuous adaptation: follow drift in modification behaviour.
		for id, n := range e.modsNow {
			if n > e.predicted[id] {
				e.predicted[id] = n
			}
		}
	}
}

// Quiesce stops the worker from starting new copies and waits for any copy
// in flight, so the coordinated checkpoint never races a background stage.
func (e *Engine) Quiesce(p *sim.Proc) {
	e.quiesced = true
	e.copyDone.Await(p)
}

// Stop terminates the worker permanently.
func (e *Engine) Stop() {
	e.stopped = true
	if e.proc != nil && !e.proc.Done() {
		e.proc.Kill()
	}
}

// run is the background worker loop.
func (e *Engine) run(p *sim.Proc) {
	for !e.stopped {
		c := e.nextCandidate()
		if c == nil {
			e.wake.WaitTimeout(p, e.cfg.PollTick)
			continue
		}
		e.copying = true
		e.copyDone = sim.NewCompletion(e.env)
		start := p.Now()
		e.Meter.Start(start)
		seqBefore := c.ModSeq()
		n := e.store.PreCopyChunk(p, c, e.cfg.RateCap)
		e.Meter.Stop(p.Now())
		e.copying = false
		e.copyDone.Complete()
		if n > 0 {
			raced := c.ModSeq() != seqBefore
			e.count("precopy_copies", 1)
			// precopy_bytes is already published by core.Store.PreCopyChunk;
			// mirroring it here would double the cluster rollup.
			e.Counters.Add("precopy_bytes", n)
			if raced {
				e.count("raced_copies", 1)
			}
			e.cfg.Rec.Emit(obs.EvPrecopyCopy, c.Name, n, map[string]string{
				"raced": strconv.FormatBool(raced),
				"seq":   strconv.FormatUint(c.StagedSeq(), 10),
			})
			if e.cfg.Rec.SpansActive() {
				e.cfg.Rec.Span("precopy "+c.Name, "precopy", e.cfg.TraceLane,
					start, p.Now()-start, nil)
			}
		}
	}
}

// count mirrors a legacy counter onto the obs registry. precopy_bytes is the
// exception (core already publishes it) and keeps the raw Counters path.
func (e *Engine) count(name string, delta int64) {
	e.Counters.Add(name, delta)
	e.cfg.Rec.Add(name, delta)
}

// nextCandidate picks the next chunk eligible for background staging, in
// allocation order, or nil when none is eligible yet.
func (e *Engine) nextCandidate() *core.Chunk {
	if e.quiesced || e.stopped {
		return nil
	}
	switch e.cfg.Scheme {
	case CPC:
		// Eager: anything dirty.
	case DCPC, DCPCP:
		if !e.learned {
			return nil // learning interval: observe only
		}
		if e.env.Now() < e.intervalStart+e.threshold {
			return nil
		}
	default:
		return nil
	}
	for _, c := range e.store.DirtyLocal() {
		if e.cfg.Scheme == DCPCP {
			if e.modsNow[c.ID] < e.predicted[c.ID] {
				continue // still expected to change; leave it alone
			}
		}
		return c
	}
	return nil
}
