package precopy

import (
	"testing"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// rig wires a one-rank store with an engine under test.
type rig struct {
	env   *sim.Env
	k     *nvmkernel.Kernel
	store *core.Store
}

func newRig(e *sim.Env) *rig {
	k := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB))
	return &rig{env: e, k: k, store: core.NewStore(k.Attach("rank0"), core.Options{})}
}

func TestNoPreCopySchemeDoesNothing(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: NoPreCopy})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "a", 50*mem.MB, true)
		eng.BeginInterval(p)
		c.WriteAll(p)
		p.Sleep(time.Second)
	})
	e.Run()
	if got := r.store.Counters.Get("precopy_bytes"); got != 0 {
		t.Fatalf("NoPreCopy moved %d bytes", got)
	}
}

func TestCPCCopiesDirtyChunkInBackground(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: CPC})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "a", 100*mem.MB, true)
		// Write before arming the interval so the engine sees one clean
		// modification; a write racing an in-flight copy re-dirties the
		// chunk and legitimately costs a second copy.
		c.WriteAll(p)
		eng.BeginInterval(p)
		p.Sleep(2 * time.Second) // compute: engine copies in background
		eng.Quiesce(p)
		st := r.store.ChkptAll(p)
		if st.BytesCopied != 0 {
			t.Errorf("checkpoint still copied %d bytes after CPC pre-copy", st.BytesCopied)
		}
		if st.Committed != 1 {
			t.Errorf("committed = %d", st.Committed)
		}
		eng.Stop()
	})
	e.Run()
	if got := eng.Counters.Get("precopy_copies"); got != 1 {
		t.Fatalf("precopy_copies = %d, want 1", got)
	}
}

func TestCPCRecopiesHotChunk(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: CPC})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "hot", 100*mem.MB, true)
		eng.BeginInterval(p)
		for i := 0; i < 3; i++ {
			c.WriteAll(p)
			p.Sleep(time.Second)
		}
		eng.Quiesce(p)
		eng.Stop()
	})
	e.Run()
	// CPC pays for the hot chunk repeatedly — the cost DCPCP avoids.
	if got := eng.Counters.Get("precopy_copies"); got < 2 {
		t.Fatalf("precopy_copies = %d, want >= 2 for a hot chunk", got)
	}
}

func TestDCPCWaitsForLearningThenThreshold(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	// 100 MB at 1 GB/s -> T_c = 0.1s; with I = 2s, T_p ~ 1.9s.
	eng := New(r.store, Config{Scheme: DCPC, BWPerCore: 1e9})
	var firstIntervalCopies, secondIntervalEarlyCopies int64
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "a", 100*mem.MB, true)
		// Interval 1 (learning): no pre-copy expected.
		eng.BeginInterval(p)
		c.WriteAll(p)
		p.Sleep(2 * time.Second)
		firstIntervalCopies = eng.Counters.Get("precopy_copies")
		eng.Quiesce(p)
		ckStart := p.Now()
		r.store.ChkptAll(p)
		eng.OnCheckpoint(ckStart)

		// Interval 2: modification right away; engine must hold off until
		// the threshold.
		eng.BeginInterval(p)
		c.WriteAll(p)
		p.Sleep(eng.Threshold() / 2)
		secondIntervalEarlyCopies = eng.Counters.Get("precopy_copies")
		p.Sleep(2*time.Second - eng.Threshold()/2)
		eng.Quiesce(p)
		st := r.store.ChkptAll(p)
		if st.BytesCopied != 0 {
			t.Errorf("delayed pre-copy missed the chunk; checkpoint copied %d", st.BytesCopied)
		}
		eng.Stop()
	})
	e.Run()
	if firstIntervalCopies != 0 {
		t.Fatalf("learning interval did %d pre-copies, want 0", firstIntervalCopies)
	}
	if secondIntervalEarlyCopies != 0 {
		t.Fatalf("pre-copy ran before the threshold (%v)", eng.Threshold())
	}
	if eng.Threshold() <= time.Second {
		t.Fatalf("threshold = %v, want ~1.9s", eng.Threshold())
	}
}

func TestDCPCPLearnsPredictionTable(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: DCPCP, BWPerCore: 1e9})
	e.Go("app", func(p *sim.Proc) {
		c3, _ := r.store.NVAlloc(p, "c3", 10*mem.MB, true) // modified 3x/iter
		c1, _ := r.store.NVAlloc(p, "c1", 10*mem.MB, true) // modified 1x/iter
		eng.BeginInterval(p)
		for i := 0; i < 3; i++ {
			c3.WriteAll(p)
			p.Sleep(300 * time.Millisecond)
		}
		c1.WriteAll(p)
		p.Sleep(time.Second)
		eng.Quiesce(p)
		ckStart := p.Now()
		r.store.ChkptAll(p)
		eng.OnCheckpoint(ckStart)
		if got := eng.Predicted(c3.ID); got != 3 {
			t.Errorf("predicted(c3) = %d, want 3", got)
		}
		if got := eng.Predicted(c1.ID); got != 1 {
			t.Errorf("predicted(c1) = %d, want 1", got)
		}
		eng.Stop()
	})
	e.Run()
}

func TestDCPCPHoldsHotChunkUntilPredictedCount(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: DCPCP, BWPerCore: 1e9, PollTick: 10 * time.Millisecond})
	e.Go("app", func(p *sim.Proc) {
		hot, _ := r.store.NVAlloc(p, "hot", 100*mem.MB, true)
		iterate := func() {
			eng.BeginInterval(p)
			// 3 modification episodes spread over the interval, the last
			// near the end — pre-copying after episode 1 or 2 is waste.
			for i := 0; i < 3; i++ {
				hot.WriteAll(p)
				p.Sleep(600 * time.Millisecond)
			}
			eng.Quiesce(p)
			ckStart := p.Now()
			r.store.ChkptAll(p)
			eng.OnCheckpoint(ckStart)
		}
		iterate() // learning
		copiesAfterLearning := eng.Counters.Get("precopy_copies")
		iterate() // predicted
		copies := eng.Counters.Get("precopy_copies") - copiesAfterLearning
		// Exactly one pre-copy: after the third (final) modification.
		if copies != 1 {
			t.Errorf("pre-copies in predicted interval = %d, want 1", copies)
		}
		eng.Stop()
	})
	e.Run()
}

func TestDCPCPAdaptsWhenChunkTurnsHot(t *testing.T) {
	// The paper: "We continuously adapt [the prediction] to deal with
	// application changes across iterations." A chunk learned at one
	// episode per interval that later also gets modified *after* its
	// pre-copy (the copy re-arms protection, so the late store faults and
	// is counted) must have its prediction raised — mispredictions are
	// observable exactly when they cost a re-copy.
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: DCPCP, BWPerCore: 1e9, PollTick: 10 * time.Millisecond})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "drifter", 10*mem.MB, true)
		// Learning interval: one episode.
		eng.BeginInterval(p)
		c.WriteAll(p)
		p.Sleep(2 * time.Second)
		eng.Quiesce(p)
		ck := p.Now()
		r.store.ChkptAll(p)
		eng.OnCheckpoint(ck)
		if got := eng.Predicted(c.ID); got != 1 {
			t.Errorf("predicted after learning = %d, want 1", got)
		}
		// Drifted interval: one early episode, the engine pre-copies at
		// the threshold, then a late second episode hits the re-armed
		// protection.
		eng.BeginInterval(p)
		c.WriteAll(p)
		p.Sleep(2 * time.Second) // engine copies ~at the learned threshold
		c.WriteAll(p)            // late store: faults, counted as episode 2
		p.Sleep(200 * time.Millisecond)
		eng.Quiesce(p)
		ck = p.Now()
		r.store.ChkptAll(p)
		eng.OnCheckpoint(ck)
		if got := eng.Predicted(c.ID); got != 2 {
			t.Errorf("predicted after drift = %d, want 2", got)
		}
		eng.Stop()
	})
	e.Run()
}

func TestEngineThresholdAdaptsToBandwidth(t *testing.T) {
	// T_p = I - D/BW re-derives every checkpoint: more checkpoint data
	// means an earlier threshold.
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: DCPC, BWPerCore: 1e9})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "a", 100*mem.MB, true)
		run := func() time.Duration {
			eng.BeginInterval(p)
			c.WriteAll(p)
			p.Sleep(2 * time.Second)
			eng.Quiesce(p)
			ck := p.Now()
			r.store.ChkptAll(p)
			eng.OnCheckpoint(ck)
			return eng.Threshold()
		}
		t1 := run()
		// Grow the checkpoint: threshold must move earlier (smaller T_p).
		r.store.NVAlloc(p, "b", 900*mem.MB, true)
		r.store.ChunkByName("b").WriteAll(p)
		t2 := run()
		if t2 >= t1 {
			t.Errorf("threshold did not shrink with more data: %v -> %v", t1, t2)
		}
		eng.Stop()
	})
	e.Run()
}

func TestQuiesceBlocksUntilCopyDone(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: CPC})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "big", 1000*mem.MB, true)
		c.WriteAll(p)
		eng.BeginInterval(p)
		p.Sleep(time.Millisecond) // let the engine start its ~0.5s copy
		start := p.Now()
		eng.Quiesce(p)
		waited := p.Now() - start
		if waited <= 0 {
			t.Error("Quiesce returned while a copy was in flight")
		}
		if c.Dirty() {
			t.Error("chunk still dirty after quiesced pre-copy")
		}
		eng.Stop()
	})
	e.Run()
}

func TestRateCapSlowsBackgroundStream(t *testing.T) {
	run := func(cap float64) time.Duration {
		e := sim.NewEnv()
		r := newRig(e)
		eng := New(r.store, Config{Scheme: CPC, RateCap: cap})
		var took time.Duration
		e.Go("app", func(p *sim.Proc) {
			c, _ := r.store.NVAlloc(p, "a", 100*mem.MB, true)
			eng.BeginInterval(p)
			c.WriteAll(p)
			p.Sleep(time.Millisecond)
			start := p.Now()
			eng.Quiesce(p)
			took = p.Now() - start
			eng.Stop()
		})
		e.Run()
		return took
	}
	capped := run(50 * 1e6)
	uncapped := run(0)
	if capped <= uncapped {
		t.Fatalf("capped copy (%v) should take longer than uncapped (%v)", capped, uncapped)
	}
}

func TestStopKillsWorker(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: CPC})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "a", 10*mem.MB, true)
		eng.BeginInterval(p)
		c.WriteAll(p)
		eng.Stop()
	})
	e.Run() // must terminate: a live worker would keep polling forever
	if e.LiveProcs() != 0 {
		t.Fatalf("%d processes still live after Stop", e.LiveProcs())
	}
}

func TestMeterAccumulatesBusyTime(t *testing.T) {
	e := sim.NewEnv()
	r := newRig(e)
	eng := New(r.store, Config{Scheme: CPC})
	e.Go("app", func(p *sim.Proc) {
		c, _ := r.store.NVAlloc(p, "a", 200*mem.MB, true)
		eng.BeginInterval(p)
		c.WriteAll(p)
		p.Sleep(2 * time.Second)
		eng.Quiesce(p)
		eng.Stop()
	})
	e.Run()
	busy := eng.Meter.Busy(e.Now())
	// 210MB at 2GB/s ~ 0.1s busy.
	if busy < 50*time.Millisecond || busy > 500*time.Millisecond {
		t.Fatalf("worker busy = %v, want ~100ms", busy)
	}
}
