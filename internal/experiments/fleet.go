package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/scenario"
	"nvmcp/internal/stress"
	"nvmcp/internal/trace"
)

// ---------------------------------------------------------------------------
// Fleet-scale chaos: MTTR/availability over fleet size × domain-loss
// severity × placement, plus the survivability analysis proving (or
// refuting) that a zone loss never destroys all copies of a chunk.

// FleetResult is the experiment's output: a full stress report, ready for
// stress.WriteJSON / stress.WriteHTML.
type FleetResult struct {
	Report stress.Report `json:"report"`
}

// FleetSizes is the fleet-size axis of the matrix per scale.
func FleetSizes(scale Scale) []int {
	if scale == Paper {
		return []int{1000, 10000}
	}
	return []int{48, 96}
}

// fleetCell is one matrix point before it runs.
type fleetCell struct {
	sc     *scenario.Scenario
	shards int
	// twin marks the serial fault-free run whose checksum the faulted cells
	// of the same fleet size are compared against.
	twin bool
}

// FleetChaosScenario builds one cell's declarative scenario: a generated
// heterogeneous fleet (3:1 mix of 1-core and 2-core shapes, wave startup
// with seeded jitter) with the requested placement and one injected domain
// loss. Exported so gates can replay exactly what the experiment reports on.
func FleetChaosScenario(nodes int, scale Scale, placement, severity string) *scenario.Scenario {
	ckptMB := 4.0
	if scale == Paper {
		// Paper sizes trade per-rank volume for node count: the matrix is
		// about domain survivability and recovery latency, not bandwidth.
		ckptMB = 1
	}
	providers, zones, racks := 1, 2, 2
	if nodes >= 1000 {
		providers, zones, racks = 2, 4, 4
	}
	sc := &scenario.Scenario{
		Name:         fmt.Sprintf("fleet-%d-%s-%s", nodes, severity, placement),
		NVMPerCoreBW: 400e6,
		LinkBW:       1e9,
		Workload:     scenario.WorkloadSpec{App: "cm1", CkptMB: ckptMB, CommMB: -1, IterSecs: 2},
		Iterations:   4,
		Local:        scenario.LocalSpec{Policy: "dcpcp"},
		Remote: scenario.RemoteSpec{
			Policy: "buddy-precopy", AutoRateCap: true, Every: 1, Placement: placement,
		},
		Fleet: &scenario.FleetSpec{
			Nodes: nodes, Seed: 42,
			Providers: providers, ZonesPerProvider: zones, RacksPerZone: racks,
			Templates: []scenario.NodeTemplate{
				{Name: "std", Weight: 3, Cores: 1},
				{Name: "big", Weight: 1, Cores: 2},
			},
			Startup: scenario.StartupSpec{
				Pattern: scenario.StartupWave, SpreadSecs: 1, Waves: 4, JitterSecs: 0.2,
			},
		},
		FaultSeed:  42,
		PayloadCap: 1024,
	}
	// The loss lands at t=5s, after every node's first remote commit
	// (iterations finish by ~3.2s even for the last startup wave).
	switch severity {
	case "rack":
		sc.Failures = []scenario.FailureSpec{{AtSecs: 5, Kind: "rack-outage", Rack: 1}}
	case "zone":
		sc.Failures = []scenario.FailureSpec{{AtSecs: 5, Kind: "zone-outage", Zone: 1}}
	}
	return sc
}

// RunFleet runs the chaos matrix. Per fleet size: a serial fault-free twin
// (the checksum reference), the same cell on the auto-sharded engine (the
// only cell eligible to shard — failure injection pins the rest serial), a
// rack loss and a zone loss under spread placement, and the zone loss again
// under the paper's naive ring placement, which co-locates buddies in-zone
// on the block-contiguous fleet and demonstrably loses chunks.
func RunFleet(scale Scale) FleetResult {
	var allCells []stress.Cell
	var survs []*stress.Survivability
	for _, nodes := range FleetSizes(scale) {
		sharded := FleetChaosScenario(nodes, scale, "spread", "none")
		sharded.Name += "-sharded"
		cellsIn := []fleetCell{
			{sc: FleetChaosScenario(nodes, scale, "spread", "none"), shards: 1, twin: true},
			{sc: sharded, shards: cluster.ShardsAuto},
			{sc: FleetChaosScenario(nodes, scale, "spread", "rack"), shards: 1},
			{sc: FleetChaosScenario(nodes, scale, "spread", "zone"), shards: 1},
			{sc: FleetChaosScenario(nodes, scale, "naive", "zone"), shards: 1},
		}
		cells := make([]stress.Cell, len(cellsIn))
		cellSurv := make([]*stress.Survivability, len(cellsIn))
		// One size at a time: a 10k-node cluster is a big object, and the
		// sweep already runs the size's five cells concurrently.
		sweep(len(cellsIn), func(i int) {
			fc := cellsIn[i]
			cfg, err := cluster.FromScenario(fc.sc)
			if err != nil {
				panic(err)
			}
			cfg.Shards = fc.shards
			res, c := cluster.MustRun(cfg)
			cells[i] = stress.CellFromRun(fc.sc, c, res)
			if fc.shards == 1 && stress.SeverityOf(fc.sc) == "zone" {
				cellSurv[i] = stress.AnalyzeRun(c)
			}
		})
		// The serial fault-free twin's checksum is the must-match reference:
		// a faulted run that recovered everything replays to the same final
		// workload state. (The sharded cell folds per-shard checksums and is
		// not comparable.)
		var twin string
		for i, fc := range cellsIn {
			if fc.twin {
				twin = cells[i].Checksum
			}
		}
		for i, fc := range cellsIn {
			if fc.shards == 1 && !fc.twin && twin != "" {
				ok := cells[i].Checksum == twin
				cells[i].ChecksumOK = &ok
			}
		}
		allCells = append(allCells, cells...)
		// Survivability is placement-static; keep the largest fleet's pair.
		if nodes == FleetSizes(scale)[len(FleetSizes(scale))-1] {
			for _, s := range cellSurv {
				if s != nil {
					survs = append(survs, s)
				}
			}
		}
	}
	meta := stress.Meta{Tool: "nvmcp-bench", Scenario: "fleet", Seed: 42}
	return FleetResult{Report: stress.BuildReport(meta, survs, allCells)}
}

// PrintFleet renders the matrix and the survivability verdicts.
func PrintFleet(w io.Writer, r FleetResult) {
	fmt.Fprintln(w, "== Fleet-scale chaos: domain losses vs placement ==")
	tb := &trace.Table{Header: []string{
		"cell", "topology", "severity", "placement", "shards",
		"exec", "MTTR", "avail", "lost", "checksum",
	}}
	for _, c := range r.Report.Cells {
		sum := "-"
		if c.ChecksumOK != nil {
			if *c.ChecksumOK {
				sum = "ok"
			} else {
				sum = "DIVERGED"
			}
		}
		tb.AddRow(
			c.Name, c.Topology, c.Severity, c.Placement,
			fmt.Sprintf("%d", c.Shards),
			(time.Duration(c.ExecSecs * float64(time.Second))).Round(time.Millisecond).String(),
			(time.Duration(c.MTTRSecs * float64(time.Second))).Round(time.Millisecond).String(),
			trace.FmtPct(c.AvailabilityPct/100),
			fmt.Sprintf("%d", c.RecoveryLost),
			sum,
		)
	}
	tb.Write(w)
	for _, s := range r.Report.Survivability {
		fmt.Fprintln(w, s.Verdict())
	}
}
