package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/scenario"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// Fig9Point is one configuration of the remote-checkpoint efficiency
// experiment: efficiency (ideal/actual runtime) for asynchronous remote
// checkpointing with and without pre-copy.
type Fig9Point struct {
	BWPerCore      float64
	RemoteEvery    int // K: local checkpoints per remote interval
	RemoteInterval time.Duration

	IdealExec time.Duration
	NoPreExec time.Duration
	PreExec   time.Duration
	EffNoPre  float64
	EffPre    float64
	OvhNoPre  float64
	OvhPre    float64
	// PreHitRate / ReDirtyRate characterize the local pre-copy under the
	// pre-copy remote run, from the obs registry rollups: the fraction of
	// checkpoint data moved ahead of the blocking step, and the wasted
	// (re-dirtied) pre-copies per pre-copied chunk.
	PreHitRate  float64
	ReDirtyRate float64
}

// Fig9Result is the full sweep plus the paper's headline averages.
type Fig9Result struct {
	App    string
	Scale  Scale
	Points []Fig9Point
	// AvgOvhNoPre / AvgOvhPre correspond to the paper's 10.6% vs 6.2%
	// (a ~40% reduction in remote checkpoint overhead).
	AvgOvhNoPre float64
	AvgOvhPre   float64
}

// RunFig9 reproduces Figure 9: GTC with asynchronous remote checkpoints to a
// buddy node, sweeping the remote interval (K = 1..4 local checkpoints per
// remote, local interval ~40 s → remote ~47-180 s with checkpoint time
// included) and the effective NVM bandwidth. 'no pre-copy' triggers a full
// asynchronous burst at each remote checkpoint; 'pre-copy' ships staged
// chunks incrementally, rate-capped, with a DCPC-style delay.
func RunFig9(app workload.AppSpec, scale Scale) Fig9Result {
	out := Fig9Result{App: app.Name, Scale: scale}
	bws := []float64{400e6, 800e6, 1600e6}
	ks := []int{1, 2, 4}
	if scale == Quick {
		bws = []float64{400e6, 1600e6}
		ks = []int{1, 3}
	}
	type cell struct{ bw, k int }
	var cells []cell
	for bi := range bws {
		for ki := range ks {
			cells = append(cells, cell{bi, ki})
		}
	}
	out.Points = make([]Fig9Point, len(cells))
	sweep(len(cells), func(i int) {
		bw, k := bws[cells[i].bw], ks[cells[i].k]
		base := baseConfig(app, scale, bw)
		if k > base.Iterations {
			base.Iterations = k
		}
		base.RemoteEvery = k
		base.Local = "dcpcp"
		base.LinkBW = fig9LinkBW(scale)

		ideal := idealTime(base)

		noPre := base
		noPre.Remote = "buddy-burst"
		noPreRes, _ := cluster.MustRun(noPre)

		pre := base
		pre.Remote = "buddy-precopy"
		interval := time.Duration(k) * base.App.IterTime
		// Budget twice the minimum sustained shipping rate (the scenario
		// layer's auto cap): incremental shipping re-sends chunks re-staged
		// within the interval, and the headroom lets the post-trigger
		// catch-up finish promptly. Shipping this slowly leaves the
		// application's communication the bulk of the link whenever they
		// overlap; the remote commit may finish into the following segment —
		// exactly Figure 5c's overlap.
		pre.RemoteRateCap = scenario.AutoRemoteRateCap(
			base.App.CheckpointSize(), base.CoresPerNode, base.App.IterTime, k)
		preRes, _ := cluster.MustRun(pre)

		out.Points[i] = Fig9Point{
			BWPerCore:      bw,
			RemoteEvery:    k,
			RemoteInterval: interval,
			IdealExec:      ideal,
			NoPreExec:      noPreRes.ExecTime,
			PreExec:        preRes.ExecTime,
			EffNoPre:       float64(ideal) / float64(noPreRes.ExecTime),
			EffPre:         float64(ideal) / float64(preRes.ExecTime),
			OvhNoPre:       overhead(noPreRes.ExecTime, ideal),
			OvhPre:         overhead(preRes.ExecTime, ideal),
			PreHitRate:     preRes.PreCopyHitRate,
			ReDirtyRate:    preRes.ReDirtyRate,
		}
	})
	var sumNo, sumPre float64
	for _, pt := range out.Points {
		sumNo += pt.OvhNoPre
		sumPre += pt.OvhPre
	}
	n := float64(len(out.Points))
	out.AvgOvhNoPre = sumNo / n
	out.AvgOvhPre = sumPre / n
	return out
}

// fig9LinkBW sizes the per-node link so a node's remote checkpoint volume
// takes an appreciable fraction of the interval, as it does on the paper's
// testbed (12 ranks × ~430 MB over one 40 Gbps link ≈ seconds of transfer).
// Paper scale uses the effective per-node share of the fabric — raw QDR is
// ~4 GB/s, but switch oversubscription and bidirectional neighbour traffic
// leave roughly a quarter of that to any one node's egress under load.
// Quick runs shrink data volume, so the link shrinks with it to preserve the
// contention shape.
func fig9LinkBW(scale Scale) float64 {
	if scale == Paper {
		return 1e9
	}
	return 250e6
}

// PrintFig9 renders the efficiency sweep.
func PrintFig9(w io.Writer, r Fig9Result) {
	fmt.Fprintf(w, "== Remote checkpoint efficiency, %s (%s scale): async pre-copy vs async burst ==\n", r.App, r.Scale)
	tb := &trace.Table{Header: []string{
		"NVM BW/core", "K", "remote interval", "eff no-pre", "eff pre", "ovh no-pre", "ovh pre",
		"hit rate", "re-dirty",
	}}
	for _, pt := range r.Points {
		tb.AddRow(
			trace.FmtRate(pt.BWPerCore),
			fmt.Sprintf("%d", pt.RemoteEvery),
			pt.RemoteInterval.String(),
			fmt.Sprintf("%.3f", pt.EffNoPre),
			fmt.Sprintf("%.3f", pt.EffPre),
			trace.FmtPct(pt.OvhNoPre),
			trace.FmtPct(pt.OvhPre),
			trace.FmtPct(pt.PreHitRate),
			trace.FmtPct(pt.ReDirtyRate),
		)
	}
	tb.Write(w)
	fmt.Fprintf(w, "average overhead: no-pre %s, pre %s (paper: 10.6%% vs 6.2%%, ~40%% reduction)\n",
		trace.FmtPct(r.AvgOvhNoPre), trace.FmtPct(r.AvgOvhPre))
}
