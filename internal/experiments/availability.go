package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/model"
	"nvmcp/internal/scenario"
	"nvmcp/internal/trace"
)

// ---------------------------------------------------------------------------
// Availability: measured MTTR per recovery tier vs the §III restart model.

// AvailabilityRow is one faulted run whose recovery is dominated by a tier.
type AvailabilityRow struct {
	// Path names the dominant recovery tier of the injected fault class.
	Path string
	// Kind is the injected fault schedule, in taxonomy terms.
	Kind string
	// MTTR is the measured failure→all-ranks-recovered repair time.
	MTTR time.Duration
	// ModelMTTR is the §III prediction: the relaunch delay plus the
	// matching restart term (R_lcl for soft failures, R_rmt when the data
	// must cross the fabric).
	ModelMTTR time.Duration
	// Recovered* split the post-failure chunk recoveries by source tier.
	RecoveredLocal  int64
	RecoveredRemote int64
	RecoveredBottom int64
	// Degraded is total time in degraded mode (repair plus link outages).
	Degraded time.Duration
}

// availabilityBase is the CM1 configuration shared by every availability
// run: the same shape as the "faults" preset, minus the fault schedule.
func availabilityBase(scale Scale) *scenario.Scenario {
	sc := scenario.Base("cm1", scale.Scenario(), 400e6)
	sc.Name = "availability"
	sc.LinkBW = 250e6
	if scale == Paper {
		sc.LinkBW = 1e9
	}
	sc.Workload.CommMB = -1
	sc.Workload.IterSecs = 3
	sc.Iterations = 6
	sc.Local = scenario.LocalSpec{Policy: "dcpcp"}
	sc.Remote = scenario.RemoteSpec{Policy: "buddy-precopy", AutoRateCap: true, Every: 2}
	sc.Bottom = scenario.BottomSpec{Policy: "pfs-drain"}
	return sc
}

// AvailabilityScenario is one availability run's declarative shape: a fully
// built scenario plus the fault class injected and the recovery tier expected
// to dominate it. Exported so invariant checks can replay the exact runs the
// experiment reports on.
type AvailabilityScenario struct {
	// Path names the dominant recovery tier of the injected fault class.
	Path string
	// Kind is the injected fault schedule, in taxonomy terms.
	Kind string
	// Scenario is the runnable configuration (availabilityBase plus the
	// fault schedule).
	Scenario *scenario.Scenario
}

// AvailabilityScenarios builds the experiment's three faulted runs — soft
// (local restore), hard (remote fetch), and NVM corruption compounded by
// buddy loss (PFS fetch for the damaged chunks). The faults land
// mid-interval after the second remote checkpoint commits, mirroring the
// "faults" preset timing.
func AvailabilityScenarios(scale Scale) []AvailabilityScenario {
	runs := []AvailabilityScenario{
		{Path: "local", Kind: "soft"},
		{Path: "remote", Kind: "hard"},
		{Path: "bottom", Kind: "nvm-corrupt + buddy-loss"},
	}
	failures := [][]scenario.FailureSpec{
		{{AtSecs: 10.5, Node: 1, Kind: "soft"}},
		{{AtSecs: 10.5, Node: 1, Kind: "hard"}},
		{
			{AtSecs: 10.5, Node: 1, Kind: "nvm-corrupt", Chunks: 4},
			{AtSecs: 10.8, Node: 1, Kind: "buddy-loss"},
		},
	}
	for i := range runs {
		sc := availabilityBase(scale)
		sc.Failures = failures[i]
		sc.FaultSeed = 7
		runs[i].Scenario = sc
	}
	return runs
}

// RunAvailability executes the availability scenarios and compares each
// measured MTTR against the Section III restart terms.
func RunAvailability(scale Scale) []AvailabilityRow {
	runs := AvailabilityScenarios(scale)
	rows := make([]AvailabilityRow, len(runs))
	sweep(len(runs), func(i int) {
		sc := runs[i].Scenario
		res, _, err := cluster.RunScenario(sc)
		if err != nil {
			panic(err)
		}
		app, err := sc.AppSpec()
		if err != nil {
			panic(err)
		}
		p := model.Params{
			CkptSize:        app.CheckpointSize(),
			NVMBWPerCore:    sc.NVMPerCoreBW,
			RemoteBWPerCore: sc.LinkBW / float64(sc.CoresPerNode),
		}
		// Soft failures restore every rank from local NVM in parallel at
		// per-core bandwidth; anything harder is dominated by the failed
		// node's ranks pulling their chunks across the shared link (the few
		// PFS-recovered chunks ride inside that window).
		predicted := cluster.RelaunchDelay + p.RestartLocal()
		if runs[i].Path != "local" {
			predicted = cluster.RelaunchDelay + p.RestartRemote()
		}
		rows[i] = AvailabilityRow{
			Path:            runs[i].Path,
			Kind:            runs[i].Kind,
			MTTR:            res.MTTR,
			ModelMTTR:       predicted,
			RecoveredLocal:  res.RecoveryLocal,
			RecoveredRemote: res.RecoveryRemote,
			RecoveredBottom: res.RecoveryBottom,
			Degraded:        res.DegradedTime,
		}
	})
	return rows
}

// PrintAvailability renders the MTTR comparison.
func PrintAvailability(w io.Writer, rows []AvailabilityRow) {
	fmt.Fprintln(w, "== Availability: measured MTTR per recovery tier vs §III restart model ==")
	tb := &trace.Table{Header: []string{
		"path", "fault", "MTTR", "model", "local", "remote", "bottom", "degraded",
	}}
	for _, r := range rows {
		tb.AddRow(
			r.Path,
			r.Kind,
			r.MTTR.Round(time.Millisecond).String(),
			r.ModelMTTR.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.RecoveredLocal),
			fmt.Sprintf("%d", r.RecoveredRemote),
			fmt.Sprintf("%d", r.RecoveredBottom),
			r.Degraded.Round(time.Millisecond).String(),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "model = relaunch delay + R_lcl (soft) or + R_rmt (hard/buddy-loss); see DESIGN.md")
}
