package experiments

import (
	"fmt"
	"io"

	"nvmcp/internal/cluster"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// EnduranceRow projects NVM wear and write energy for one checkpoint scheme.
type EnduranceRow struct {
	Scheme string
	// WriteRate is the sustained NVM write load in bytes/sec per node.
	WriteRate float64
	// LifetimeYears is the projected device lifetime in years under that
	// load, assuming ideal wear leveling (Table I: 10^8 write endurance).
	LifetimeYears float64
	// EnergyPerHour is the NVM write energy per node-hour in joules
	// (Table I: 40x DRAM's per-bit write energy).
	EnergyPerHour float64
	// BytesPerCkpt is the NVM write volume per checkpoint round per node.
	BytesPerCkpt float64
}

// RunEndurance evaluates a dimension the paper's Table I raises but its
// evaluation leaves open: PCM's 10^8 write endurance and 40x write energy
// mean checkpoint schemes that move *more* data (CPC's repeated hot-chunk
// copies; forced full checkpoints) age the device faster and burn more
// energy. The run measures each scheme's sustained NVM write rate on the
// LAMMPS workload and projects lifetime and energy.
func RunEndurance(scale Scale) []EnduranceRow {
	type schemeDef struct {
		name      string
		policy    string
		forceFull bool
	}
	schemes := []schemeDef{
		{"full checkpoint (no tracking)", "none", true},
		{"dirty tracking, no pre-copy", "none", false},
		{"CPC (eager)", "cpc", false},
		{"DCPCP (delayed+prediction)", "dcpcp", false},
	}
	rows := make([]EnduranceRow, len(schemes))
	sweep(len(schemes), func(i int) {
		sd := schemes[i]
		cfg := baseConfig(workload.LAMMPSRhodo(), scale, 400e6)
		cfg.App.CommPerIter = 0
		cfg.Local = sd.policy
		cfg.ForceFull = sd.forceFull
		res, c := cluster.MustRun(cfg)

		// Sum NVM write traffic over all nodes and normalize per node.
		var written int64
		for n := 0; n < cfg.Nodes; n++ {
			written += c.Kernel(n).NVM.BytesWritten
		}
		perNode := float64(written) / float64(cfg.Nodes)
		rate := perNode / res.ExecTime.Seconds()
		dev := c.Kernel(0).NVM
		energyPerSec := rate * 8 * dev.WriteEnergyPerBit
		rows[i] = EnduranceRow{
			Scheme:        sd.name,
			WriteRate:     rate,
			LifetimeYears: dev.LifetimeYearsAt(rate),
			EnergyPerHour: energyPerSec * 3600,
			BytesPerCkpt:  perNode / float64(res.LocalCkpts),
		}
	})
	return rows
}

// PrintEndurance renders the wear/energy projection.
func PrintEndurance(w io.Writer, rows []EnduranceRow) {
	fmt.Fprintln(w, "== NVM endurance & write energy by checkpoint scheme (LAMMPS, Table I device) ==")
	tb := &trace.Table{Header: []string{
		"scheme", "NVM writes/ckpt/node", "sustained rate", "projected lifetime", "write energy/node-hour",
	}}
	for _, r := range rows {
		tb.AddRow(
			r.Scheme,
			trace.FmtBytes(r.BytesPerCkpt),
			trace.FmtRate(r.WriteRate),
			fmtYears(r.LifetimeYears),
			fmt.Sprintf("%.1f J", r.EnergyPerHour),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "(ideal wear leveling over the device; 10^8 writes/cell, 40x DRAM write energy —")
	fmt.Fprintln(w, " eager pre-copy's repeated copies are paid in device lifetime and energy)")
}

func fmtYears(y float64) string {
	if y >= 100 {
		return fmt.Sprintf("%.0f years", y)
	}
	return fmt.Sprintf("%.1f years", y)
}
