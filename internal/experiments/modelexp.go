package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/model"
	"nvmcp/internal/trace"
)

// ModelRow is one analytic-model evaluation point.
type ModelRow struct {
	BWPerCore  float64
	Interval   time.Duration
	TLocal     time.Duration
	Efficiency float64
	PreCopyTp  time.Duration
}

// RunModel evaluates the Section III performance model over the Figures 7/8
// bandwidth sweep, reporting the local checkpoint burden, predicted
// efficiency, and the DCPC pre-copy threshold T_p for each point. It is the
// closed-form companion to the simulated experiments.
func RunModel() []ModelRow {
	var rows []ModelRow
	for _, bw := range BWSweepPerCore {
		p := model.Params{
			TCompute:               1000 * time.Second,
			MTBFLocal:              500 * time.Second,
			MTBFRemote:             5000 * time.Second,
			IntervalLocal:          40 * time.Second,
			IntervalRemote:         160 * time.Second,
			CkptSize:               410 * mem.MB,
			NVMBWPerCore:           bw,
			RemoteBWPerCore:        100e6,
			RemoteOverheadFraction: 0.05,
		}
		rows = append(rows, ModelRow{
			BWPerCore:  bw,
			Interval:   p.IntervalLocal,
			TLocal:     p.TLocal(),
			Efficiency: p.Efficiency(),
			PreCopyTp:  model.PreCopyThreshold(p.IntervalLocal, p.CkptSize, bw),
		})
	}
	return rows
}

// PrintModel renders the analytic sweep.
func PrintModel(w io.Writer, rows []ModelRow) {
	fmt.Fprintln(w, "== Section III analytic model: 410MB/core, I=40s, MTBF 500s/5000s ==")
	tb := &trace.Table{Header: []string{"NVM BW/core", "T_lcl total", "efficiency", "pre-copy T_p"}}
	for _, r := range rows {
		tb.AddRow(
			trace.FmtRate(r.BWPerCore),
			r.TLocal.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", r.Efficiency),
			r.PreCopyTp.Round(time.Millisecond).String(),
		)
	}
	tb.Write(w)
}
