package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/model"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// IntervalRow is one checkpoint-interval point under failure injection.
type IntervalRow struct {
	Interval time.Duration
	// ExecTime is the measured completion time including failures,
	// recovery and recomputation.
	ExecTime time.Duration
	// Failures actually struck the run.
	Failures int
}

// IntervalResult carries the sweep plus Young's analytic optimum.
type IntervalResult struct {
	MTBF  time.Duration
	Ideal time.Duration
	Rows  []IntervalRow
	// YoungOpt is sqrt(2 * t_ckpt * MTBF) for the run's checkpoint cost —
	// the first-order optimal interval the measured U-curve should bracket.
	YoungOpt time.Duration
	// Best is the measured best interval.
	Best time.Duration
}

// RunInterval reproduces the classic checkpoint-interval trade-off the
// Section III model implies: checkpoint too often and the overhead
// dominates; too rarely and each failure wastes long recomputation. CM1
// runs under seeded exponential soft failures while the local checkpoint
// interval sweeps 1-8 iterations; the measured optimum should bracket
// Young's analytic sqrt(2 · t_ckpt · MTBF).
func RunInterval(scale Scale) IntervalResult {
	base := baseConfig(workload.CM1(), scale, 200e6)
	base.App.CommPerIter = 0
	// Fine-grained iterations let the sweep reach below the optimum, so
	// the U-curve shows both rising flanks.
	base.App.IterTime = 5 * time.Second
	base.Iterations = 48
	base.Local = "none"

	mtbf := 90 * time.Second
	ideal := idealTime(base)

	// One seeded failure schedule shared by every interval choice, so the
	// sweep varies exactly one thing.
	rng := rand.New(rand.NewSource(7))
	var fails []cluster.FailureEvent
	for t := time.Duration(0); ; {
		t += time.Duration(rng.ExpFloat64() * float64(mtbf))
		if t > 4*ideal {
			break
		}
		fails = append(fails, cluster.FailureEvent{After: t, Node: 0})
	}

	intervals := []int{1, 2, 4, 8, 16}
	rows := make([]IntervalRow, len(intervals))
	sweep(len(intervals), func(i int) {
		cfg := base
		cfg.LocalEvery = intervals[i]
		cfg.Failures = fails
		res, _ := cluster.MustRun(cfg)
		rows[i] = IntervalRow{
			Interval: time.Duration(intervals[i]) * base.App.IterTime,
			ExecTime: res.ExecTime,
			Failures: res.FailuresInjected,
		}
	})

	// Checkpoint cost for Young's formula: D at the per-core share.
	tCkpt := time.Duration(float64(base.App.CheckpointSize()) / 200e6 * float64(time.Second))
	out := IntervalResult{
		MTBF:     mtbf,
		Ideal:    ideal,
		Rows:     rows,
		YoungOpt: model.OptimalInterval(tCkpt, mtbf),
	}
	best := rows[0]
	for _, r := range rows[1:] {
		if r.ExecTime < best.ExecTime {
			best = r
		}
	}
	out.Best = best.Interval
	return out
}

// PrintInterval renders the interval sweep.
func PrintInterval(w io.Writer, r IntervalResult) {
	fmt.Fprintf(w, "== Checkpoint interval under failures (CM1, MTBF %v, ideal %v) ==\n",
		r.MTBF, r.Ideal.Round(time.Second))
	tb := &trace.Table{Header: []string{"interval", "exec time", "overhead vs ideal", "failures hit"}}
	for _, row := range r.Rows {
		tb.AddRow(
			row.Interval.String(),
			row.ExecTime.Round(time.Millisecond).String(),
			trace.FmtPct(overhead(row.ExecTime, r.Ideal)),
			fmt.Sprintf("%d", row.Failures),
		)
	}
	tb.Write(w)
	fmt.Fprintf(w, "measured best interval: %v; Young's first-order optimum: %v\n",
		r.Best, r.YoungOpt.Round(time.Second))
}
