package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/mem"
	"nvmcp/internal/scenario"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// PrintTable1 renders the Table I device parameters the mem package encodes.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "== Table I: NVM vs DRAM hardware parameters (model constants) ==")
	tb := &trace.Table{Header: []string{"attribute", "DRAM", "PCM"}}
	tb.AddRow("write bandwidth", trace.FmtRate(mem.DRAMWriteBW), trace.FmtRate(mem.PCMWriteBW))
	tb.AddRow("page write latency", mem.DRAMPageLatency.String(), mem.PCMPageWriteLatency.String())
	tb.AddRow("page read latency", mem.DRAMPageLatency.String(), mem.PCMPageReadLatency.String())
	tb.Write(w)
}

// Table4Row is one application's chunk-size distribution.
type Table4Row struct {
	App        string
	ChunkCount int
	TotalSize  int64
	SubMB      float64
	Mid10to20  float64
	Mid50to100 float64
	Over100    float64
}

// RunTable4 computes the chunk-size distribution of each workload spec.
func RunTable4() []Table4Row {
	var rows []Table4Row
	for _, spec := range workload.Specs() {
		sub, mid1, mid2, over := workload.SizeDistribution(spec)
		rows = append(rows, Table4Row{
			App:        spec.Name,
			ChunkCount: len(spec.Chunks),
			TotalSize:  spec.CheckpointSize(),
			SubMB:      sub,
			Mid10to20:  mid1,
			Mid50to100: mid2,
			Over100:    over,
		})
	}
	return rows
}

// PrintTable4 renders the distribution in the paper's bucket layout.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "== Table IV: chunk size distribution by count (%) ==")
	tb := &trace.Table{Header: []string{
		"application", "chunks", "ckpt size", "500K-1MB", "10-20MB", "50-100MB", "above 100MB",
	}}
	for _, r := range rows {
		tb.AddRow(
			r.App,
			fmt.Sprintf("%d", r.ChunkCount),
			trace.FmtBytes(float64(r.TotalSize)),
			trace.FmtPct(r.SubMB),
			trace.FmtPct(r.Mid10to20),
			trace.FmtPct(r.Mid50to100),
			trace.FmtPct(r.Over100),
		)
	}
	tb.Write(w)
}

// Table5Row reports helper-core CPU utilization at one per-core checkpoint
// volume, for burst vs pre-copy remote checkpointing.
type Table5Row struct {
	DataPerCore int64
	UtilNoPre   float64
	UtilPre     float64
}

// RunTable5 reproduces Table V: the average CPU utilization of the dedicated
// checkpoint helper core at 370/472/588 MB per core, roughly doubling with
// pre-copy (the helper works throughout the interval instead of bursting),
// while staying a small fraction of node-wide CPU.
func RunTable5(scale Scale) []Table5Row {
	var rows []Table5Row
	sizes := []int64{370 * mem.MB, 472 * mem.MB, 588 * mem.MB}
	for _, size := range sizes {
		app := workload.LAMMPSRhodo().ScaledTo(size)
		run := func(policy string) float64 {
			cfg := baseConfig(app, scale, 800e6)
			// Table V pins data volume per core, so do not rescale.
			cfg.App = app
			if scale == Quick {
				cfg.App.IterTime = 20 * time.Second
			}
			cfg.Remote = policy
			cfg.RemoteEvery = 2
			cfg.Local = "dcpcp"
			if policy == "buddy-precopy" {
				cfg.RemoteRateCap = scenario.AutoRemoteRateCap(
					cfg.App.CheckpointSize(), cfg.CoresPerNode, cfg.App.IterTime, cfg.RemoteEvery)
			}
			res, _ := cluster.MustRun(cfg)
			var sum float64
			for _, u := range res.HelperUtil {
				sum += u
			}
			if len(res.HelperUtil) == 0 {
				return 0
			}
			return sum / float64(len(res.HelperUtil))
		}
		rows = append(rows, Table5Row{
			DataPerCore: size,
			UtilNoPre:   run("buddy-burst"),
			UtilPre:     run("buddy-precopy"),
		})
	}
	return rows
}

// PrintTable5 renders helper utilization.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "== Table V: checkpoint helper core average CPU utilization ==")
	tb := &trace.Table{Header: []string{"data/core", "no pre-copy util", "pre-copy util"}}
	for _, r := range rows {
		tb.AddRow(
			trace.FmtBytes(float64(r.DataPerCore)),
			trace.FmtPct(r.UtilNoPre),
			trace.FmtPct(r.UtilPre),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "(paper: pre-copy roughly doubles helper utilization — 12.9-14.8% -> 24.5-28.3%)")
}
