package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// ---------------------------------------------------------------------------
// ABL-PAGE: page-level vs chunk-level protection granularity.

// PageAblationRow compares the dirty-tracking cost of one full rewrite of a
// data set under page-level vs chunk-level write protection.
type PageAblationRow struct {
	DataSize  int64
	PageTime  time.Duration // fault cost with per-page protection
	ChunkTime time.Duration // fault cost with chunk-level protection
	// PageFaults and ChunkFaults count protection faults taken.
	PageFaults  int64
	ChunkFaults int64
}

// RunPageAblation quantifies the paper's Section IV argument: HPC checkpoint
// data structures fully change each iteration, so page-level pre-copy pays a
// 6-12 µs fault on *every* page (~3 s per GB), while chunk-level protection
// pays one fault per chunk. The data is organized as 16 MB chunks and fully
// rewritten once.
func RunPageAblation() []PageAblationRow {
	var rows []PageAblationRow
	for _, size := range []int64{64 * mem.MB, 256 * mem.MB, mem.GB} {
		rows = append(rows, PageAblationRow{
			DataSize:    size,
			PageTime:    protectionRewriteCost(size, true),
			ChunkTime:   protectionRewriteCost(size, false),
			PageFaults:  size / mem.PageSize,
			ChunkFaults: size / (16 * mem.MB),
		})
	}
	return rows
}

// protectionRewriteCost measures the virtual time of fully rewriting size
// bytes of protected chunks under the chosen protection granularity.
func protectionRewriteCost(size int64, pageLevel bool) time.Duration {
	env := sim.NewEnv()
	k := nvmkernel.New(env, mem.NewDRAM(env, 2*size+mem.GB), mem.NewPCM(env, mem.GB))
	var elapsed time.Duration
	env.Go("app", func(p *sim.Proc) {
		pr := k.Attach("abl")
		const chunkSize = 16 * mem.MB
		var regions []*nvmkernel.Region
		for off := int64(0); off < size; off += chunkSize {
			r, err := pr.DRAMAlloc(fmt.Sprintf("c%d", off), chunkSize, 0)
			if err != nil {
				panic(err)
			}
			if pageLevel {
				r.SetFaultHandler(func(p *sim.Proc, fr *nvmkernel.Region, page int) {
					fr.UnprotectPage(p, page)
				})
			} else {
				r.SetFaultHandler(func(p *sim.Proc, fr *nvmkernel.Region, page int) {
					fr.Unprotect(p)
				})
			}
			r.Protect(p)
			regions = append(regions, r)
		}
		start := p.Now()
		for _, r := range regions {
			if _, err := r.TouchWrite(p, 0, chunkSize); err != nil {
				panic(err)
			}
		}
		elapsed = p.Now() - start
	})
	env.Run()
	return elapsed
}

// PrintPageAblation renders the comparison.
func PrintPageAblation(w io.Writer, rows []PageAblationRow) {
	fmt.Fprintln(w, "== Ablation: page-level vs chunk-level pre-copy protection ==")
	tb := &trace.Table{Header: []string{"data", "page faults", "page-level cost", "chunk faults", "chunk-level cost"}}
	for _, r := range rows {
		tb.AddRow(
			trace.FmtBytes(float64(r.DataSize)),
			fmt.Sprintf("%d", r.PageFaults),
			r.PageTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.ChunkFaults),
			r.ChunkTime.Round(time.Microsecond).String(),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "(paper: 6-12us per fault, ~3s of fault handling per GB at page granularity)")
}

// ---------------------------------------------------------------------------
// ABL-DIRECT: direct NVM heap vs shadow buffering.

// DirectAblationRow compares placing the working set directly in NVM against
// shadow buffering, at one write intensity.
type DirectAblationRow struct {
	// WriteRatio is bytes written per iteration / checkpoint size.
	WriteRatio int
	DirectT    time.Duration // working set in NVM: every store pays NVM bandwidth
	ShadowT    time.Duration // working set in DRAM + checkpoint copy
	IdealT     time.Duration // DRAM only, no checkpointing
	// Slowdowns vs ideal.
	DirectSlowdown float64
	ShadowSlowdown float64
}

// RunDirectAblation reproduces the Li et al. observation the paper leans on:
// exposing NVM directly as the compute heap slows write-intensive codes (up
// to ~25%), which is why NVM-checkpoints keeps computation in DRAM and
// shadow-buffers to NVM. One core iterates: compute 10 s, write
// ratio × 100 MB of working data, checkpoint 100 MB.
func RunDirectAblation() []DirectAblationRow {
	const (
		ckptSize = 100 * mem.MB
		compute  = 10 * time.Second
		iters    = 5
	)
	run := func(ratio int, direct bool) time.Duration {
		env := sim.NewEnv()
		dram := mem.NewDRAM(env, 8*mem.GB)
		nvm := mem.NewPCM(env, 8*mem.GB)
		env.Go("app", func(p *sim.Proc) {
			for i := 0; i < iters; i++ {
				p.Sleep(compute)
				writes := int64(ratio) * ckptSize
				if direct {
					// Stores go straight to the NVM heap.
					nvm.WriteBytes(p, writes)
				} else {
					// Stores hit DRAM; the checkpoint copies once.
					dram.WriteBytes(p, writes)
					mem.Copy(p, dram, nvm, ckptSize)
				}
			}
		})
		env.Run()
		return env.Now()
	}
	ideal := func(ratio int) time.Duration {
		env := sim.NewEnv()
		dram := mem.NewDRAM(env, 8*mem.GB)
		env.Go("app", func(p *sim.Proc) {
			for i := 0; i < iters; i++ {
				p.Sleep(compute)
				dram.WriteBytes(p, int64(ratio)*ckptSize)
			}
		})
		env.Run()
		return env.Now()
	}
	var rows []DirectAblationRow
	for _, ratio := range []int{1, 4, 16, 64} {
		id := ideal(ratio)
		d := run(ratio, true)
		s := run(ratio, false)
		rows = append(rows, DirectAblationRow{
			WriteRatio:     ratio,
			DirectT:        d,
			ShadowT:        s,
			IdealT:         id,
			DirectSlowdown: overhead(d, id),
			ShadowSlowdown: overhead(s, id),
		})
	}
	return rows
}

// PrintDirectAblation renders the comparison.
func PrintDirectAblation(w io.Writer, rows []DirectAblationRow) {
	fmt.Fprintln(w, "== Ablation: direct NVM heap vs shadow buffering ==")
	tb := &trace.Table{Header: []string{"write ratio", "direct", "shadow", "ideal", "direct slowdown", "shadow slowdown"}}
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%dx", r.WriteRatio),
			r.DirectT.Round(time.Millisecond).String(),
			r.ShadowT.Round(time.Millisecond).String(),
			r.IdealT.Round(time.Millisecond).String(),
			trace.FmtPct(r.DirectSlowdown),
			trace.FmtPct(r.ShadowSlowdown),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "(paper, citing Li et al.: direct NVM slows write-intensive codes up to ~25%)")
}

// ---------------------------------------------------------------------------
// ABL-SERIAL: dedicated-core serialized copy vs parallel fair sharing.

// SerialAblationRow compares Dong et al.'s dedicated-checkpoint-core
// serialization against NVM-checkpoints' parallel per-core copies.
type SerialAblationRow struct {
	DataPerCore int64
	SerialT     time.Duration
	ParallelT   time.Duration
	// SerialPenalty is (serial-parallel)/parallel.
	SerialPenalty float64
}

// SerialHandoff is the per-chunk producer/consumer cost of funnelling copies
// through a dedicated core (queueing, lock, wakeup).
const SerialHandoff = 150 * time.Microsecond

// RunSerialAblation shows why the paper rejects thread-level serialization:
// with 12 cores' checkpoints funnelled through one helper core, each chunk
// pays a handoff, which dominates when per-core data is small — "slower
// checkpoints when the total checkpoint data size is less than the effective
// per core bandwidth".
func RunSerialAblation() []SerialAblationRow {
	const cores = 12
	run := func(perCore int64, serial bool) time.Duration {
		env := sim.NewEnv()
		nvm := mem.NewPCM(env, 64*mem.GB)
		if serial {
			env.Go("helper", func(p *sim.Proc) {
				for i := 0; i < cores; i++ {
					p.Sleep(SerialHandoff)
					nvm.WriteBytes(p, perCore)
				}
			})
		} else {
			for i := 0; i < cores; i++ {
				env.Go(fmt.Sprintf("core%d", i), func(p *sim.Proc) {
					nvm.WriteBytes(p, perCore)
				})
			}
		}
		env.Run()
		return env.Now()
	}
	var rows []SerialAblationRow
	for _, perCore := range []int64{256 * mem.KB, mem.MB, 16 * mem.MB, 128 * mem.MB} {
		s := run(perCore, true)
		par := run(perCore, false)
		rows = append(rows, SerialAblationRow{
			DataPerCore:   perCore,
			SerialT:       s,
			ParallelT:     par,
			SerialPenalty: overhead(s, par),
		})
	}
	return rows
}

// PrintSerialAblation renders the comparison.
func PrintSerialAblation(w io.Writer, rows []SerialAblationRow) {
	fmt.Fprintln(w, "== Ablation: dedicated-core serialized copy vs parallel copies (12 cores) ==")
	tb := &trace.Table{Header: []string{"data/core", "serialized", "parallel", "serialization penalty"}}
	for _, r := range rows {
		tb.AddRow(
			trace.FmtBytes(float64(r.DataPerCore)),
			r.SerialT.Round(time.Microsecond).String(),
			r.ParallelT.Round(time.Microsecond).String(),
			trace.FmtPct(r.SerialPenalty),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "(penalty shrinks as per-core data grows: serialization only hurts small checkpoints)")
}
