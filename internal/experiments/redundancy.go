package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/erasure"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/remote"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// RedundancyResult compares buddy replication against XOR parity for the
// remote checkpoint level.
type RedundancyResult struct {
	Members   int
	CkptPerND int64 // checkpoint bytes per node

	BuddyFootprint  int64 // remote NVM held per protected node
	ParityFootprint int64 // remote NVM held per protected node

	BuddyShip  int64 // fabric bytes per remote round per node
	ParityShip int64

	BuddyRecover  time.Duration // hard-failure recovery of one node
	ParityRecover time.Duration
}

// RunRedundancy quantifies the trade-off the paper's related work points at
// (Plank et al.): buddy replication holds a full extra copy of every node's
// checkpoint remotely but recovers with one transfer; a G-member XOR parity
// group holds 1/G as much remote state per protected node but must read the
// parity plus G−1 survivors to rebuild one node.
func RunRedundancy() RedundancyResult {
	const members = 4
	spec := workload.GTC().ScaledTo(100 * mem.MB)
	spec.IterTime = 5 * time.Second
	spec.CommPerIter = 0
	out := RedundancyResult{Members: members, CkptPerND: spec.CheckpointSize()}

	// --- Buddy replication -------------------------------------------------
	{
		e := sim.NewEnv()
		fabric := interconnect.New(e, 2, 0)
		nvms := []*mem.Device{mem.NewPCM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB)}
		k := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[0])
		mesh := remote.NewMesh(e, fabric, nvms)
		agent := mesh.AddAgent(0, 1, remote.Config{Scheme: remote.AsyncBurst})
		var store *core.Store
		e.Go("life1", func(p *sim.Proc) {
			store = core.NewStore(k.Attach("rank0"), core.Options{})
			agent.Register(store)
			app, err := workload.Setup(p, store, spec)
			if err != nil {
				panic(err)
			}
			_ = app
			store.ChkptAll(p)
			agent.TriggerRemote(p).Await(p)
			agent.Stop()
		})
		e.Run()
		out.BuddyFootprint = nvms[1].Used
		out.BuddyShip = int64(fabric.Bytes(interconnect.ClassCkpt))

		// The stopped agent still routes Fetch to the buddy.
		k.HardFail()
		e.Go("recover", func(p *sim.Proc) {
			s := core.NewStore(k.Attach("rank0"), core.Options{})
			app, err := workload.Setup(p, s, spec)
			if err != nil {
				panic(err)
			}
			start := p.Now()
			for _, c := range app.Chunks {
				if c.Restored {
					continue
				}
				data, _, _, ok := mesh.Fetch(p, 0, "rank0", c.ID)
				if !ok {
					panic("buddy copy missing")
				}
				if err := s.AdoptRemote(p, c, data, 0); err != nil {
					panic(err)
				}
			}
			out.BuddyRecover = p.Now() - start
		})
		e.Run()
	}

	// --- XOR parity group --------------------------------------------------
	{
		e := sim.NewEnv()
		nodes := members + 1
		fabric := interconnect.New(e, nodes, 0)
		nvms := make([]*mem.Device, nodes)
		kernels := make([]*nvmkernel.Kernel, nodes)
		for i := range nvms {
			nvms[i] = mem.NewPCM(e, 16*mem.GB)
			kernels[i] = nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[i])
		}
		memberIDs := make([]int, members)
		for i := range memberIDs {
			memberIDs[i] = i
		}
		g := erasure.NewGroup(e, fabric, nvms, memberIDs, members)
		e.Go("life1", func(p *sim.Proc) {
			for i := 0; i < members; i++ {
				s := core.NewStore(kernels[i].Attach(fmt.Sprintf("rank%d", i)), core.Options{})
				app, err := workload.Setup(p, s, spec)
				if err != nil {
					panic(err)
				}
				_ = app
				s.ChkptAll(p)
				g.Register(i, s)
			}
			if err := g.CommitParity(p); err != nil {
				panic(err)
			}
		})
		e.Run()
		// Footprint per protected node: the parity total divided by G.
		out.ParityFootprint = g.RemoteFootprint() / int64(members) * 1 // per node share
		out.ParityShip = g.Counters.Get("ship_bytes") / int64(members)

		kernels[0].HardFail()
		e.Go("recover", func(p *sim.Proc) {
			s := core.NewStore(kernels[0].Attach("rank0"), core.Options{})
			if _, err := workload.Setup(p, s, spec); err != nil {
				panic(err)
			}
			start := p.Now()
			if err := g.Reconstruct(p, 0, []*core.Store{s}); err != nil {
				panic(err)
			}
			out.ParityRecover = p.Now() - start
		})
		e.Run()
	}
	return out
}

// PrintRedundancy renders the comparison.
func PrintRedundancy(w io.Writer, r RedundancyResult) {
	fmt.Fprintf(w, "== Remote redundancy: buddy replication vs %d-member XOR parity ==\n", r.Members)
	fmt.Fprintf(w, "checkpoint data per node: %s\n", trace.FmtBytes(float64(r.CkptPerND)))
	tb := &trace.Table{Header: []string{"scheme", "remote NVM / protected node", "fabric bytes / round / node", "hard-failure recovery"}}
	tb.AddRow("buddy replication",
		trace.FmtBytes(float64(r.BuddyFootprint)),
		trace.FmtBytes(float64(r.BuddyShip)),
		r.BuddyRecover.Round(time.Millisecond).String(),
	)
	tb.AddRow(fmt.Sprintf("XOR parity (G=%d)", r.Members),
		trace.FmtBytes(float64(r.ParityFootprint)),
		trace.FmtBytes(float64(r.ParityShip)),
		r.ParityRecover.Round(time.Millisecond).String(),
	)
	tb.Write(w)
	fmt.Fprintln(w, "(parity divides remote memory by G but multiplies recovery traffic by G —")
	fmt.Fprintln(w, " the trade-off behind the paper's choice of plain buddy copies at 2x memory)")
}
