package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// MADBenchRow compares the ramdisk and in-memory checkpoint paths at one
// per-core data size (Section IV's motivation experiment).
type MADBenchRow struct {
	SizePerCore int64
	RamdiskT    time.Duration
	MemoryT     time.Duration
	// Slowdown is (ramdisk-memory)/memory; the paper reports 46% at 300MB.
	Slowdown float64
	// SyncRatio is ramdisk kernel sync calls / memory path sync calls
	// (paper: ~3x).
	SyncRatio float64
	// LockWaitRamdisk / LockWaitMemory are the kernel-lock waiting times
	// (paper: ramdisk waits 31% more).
	LockWaitRamdisk time.Duration
	LockWaitMemory  time.Duration
}

// RunMADBench sweeps the MADBench2-style checkpoint from 50 to 300 MB/core
// on a 12-core node, comparing the ramdisk (VFS) and memory (allocation +
// memcpy) approaches — both ultimately writing the same DRAM.
func RunMADBench() []MADBenchRow {
	const cores = 12
	var rows []MADBenchRow
	for _, size := range []int64{50 * mem.MB, 100 * mem.MB, 200 * mem.MB, 300 * mem.MB} {
		e1 := sim.NewEnv()
		fs := workload.MADBenchRamdisk(e1, mem.NewDRAM(e1, 64*mem.GB), cores, size)
		e2 := sim.NewEnv()
		m := workload.MADBenchMemory(e2, mem.NewDRAM(e2, 64*mem.GB), cores, size)
		rows = append(rows, MADBenchRow{
			SizePerCore:     size,
			RamdiskT:        fs.CheckpointT,
			MemoryT:         m.CheckpointT,
			Slowdown:        float64(fs.CheckpointT-m.CheckpointT) / float64(m.CheckpointT),
			SyncRatio:       float64(fs.SyncCalls) / float64(m.SyncCalls),
			LockWaitRamdisk: fs.LockWait,
			LockWaitMemory:  m.LockWait,
		})
	}
	return rows
}

// PrintMADBench renders the comparison.
func PrintMADBench(w io.Writer, rows []MADBenchRow) {
	fmt.Fprintln(w, "== MADBench2: ramdisk vs in-memory checkpoint, 12 cores (Section IV) ==")
	tb := &trace.Table{Header: []string{
		"size/core", "ramdisk", "memory", "slowdown", "sync-call ratio", "lock wait (rd)", "lock wait (mem)",
	}}
	for _, r := range rows {
		tb.AddRow(
			trace.FmtBytes(float64(r.SizePerCore)),
			r.RamdiskT.Round(time.Microsecond).String(),
			r.MemoryT.Round(time.Microsecond).String(),
			trace.FmtPct(r.Slowdown),
			fmt.Sprintf("%.1fx", r.SyncRatio),
			r.LockWaitRamdisk.Round(time.Microsecond).String(),
			r.LockWaitMemory.Round(time.Microsecond).String(),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "(paper: ramdisk 46% slower at 300MB, 3x more kernel sync calls, 31% more lock waiting)")
}
