package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestRestartPathsOrdering(t *testing.T) {
	rows := RunRestart()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Lazy resume is near-instant; eager scales with size; remote is
		// the slowest full-recovery path (link slower than local NVM read).
		if r.LazyResume > time.Millisecond {
			t.Errorf("%d: lazy resume = %v, want ~0", r.CkptSize, r.LazyResume)
		}
		if r.EagerLocal <= r.LazyResume {
			t.Errorf("%d: eager (%v) not above lazy resume (%v)", r.CkptSize, r.EagerLocal, r.LazyResume)
		}
		if r.RemoteFetch <= r.EagerLocal {
			t.Errorf("%d: remote fetch (%v) not above eager local (%v)", r.CkptSize, r.RemoteFetch, r.EagerLocal)
		}
		// Lazy restore never loses to eager across resume+first iteration:
		// GTC's per-iteration arrays are fully overwritten and skip their
		// copies entirely.
		if r.LazyFirstIter > r.EagerFirstIter {
			t.Errorf("%d: lazy+iter (%v) worse than eager+iter (%v)",
				r.CkptSize, r.LazyFirstIter, r.EagerFirstIter)
		}
	}
	// Eager restart time grows with checkpoint size.
	for i := 1; i < len(rows); i++ {
		if rows[i].EagerLocal <= rows[i-1].EagerLocal {
			t.Fatal("eager restart did not grow with checkpoint size")
		}
	}
}

func TestTransparentComparisonShape(t *testing.T) {
	r := RunTransparent()
	// Within scaling round-off of the live state.
	if diff := r.AppBytes - r.CkptState; diff < -1024 || diff > 1024 {
		t.Fatalf("app-initiated moved %d, want ~the live state %d", r.AppBytes, r.CkptState)
	}
	if r.FullBytes != r.Footprint {
		t.Fatalf("transparent full moved %d, want the footprint %d", r.FullBytes, r.Footprint)
	}
	if r.IncrBytes != r.Footprint/2 {
		t.Fatalf("incremental moved %d, want the dirtied half %d", r.IncrBytes, r.Footprint/2)
	}
	if !(r.AppT < r.IncrT && r.IncrT < r.FullT) {
		t.Fatalf("ordering app(%v) < incr(%v) < full(%v) violated", r.AppT, r.IncrT, r.FullT)
	}
	if r.IncrFaults != r.Footprint/2/4096 {
		t.Fatalf("incremental faults = %d, want one per dirtied page", r.IncrFaults)
	}
}

func TestFailureModelShape(t *testing.T) {
	rows := RunFailureModel(Quick)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SimEff < rows[i-1].SimEff {
			t.Fatal("simulated efficiency fell as MTBF grew")
		}
		if rows[i].ModelEff < rows[i-1].ModelEff {
			t.Fatal("model efficiency fell as MTBF grew")
		}
	}
	// With failures hitting, recovery restores must be recorded.
	for _, r := range rows {
		if r.Failures > 0 && r.LocalRestore == 0 {
			t.Fatalf("MTBF %v: %d failures but no restores", r.MTBF, r.Failures)
		}
		if r.SimEff <= 0 || r.SimEff > 1 {
			t.Fatalf("sim efficiency out of range: %v", r.SimEff)
		}
	}
}

func TestEnduranceEagerSchemeWearsFaster(t *testing.T) {
	rows := RunEndurance(Quick)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]EnduranceRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
		if r.LifetimeYears <= 0 || r.WriteRate <= 0 || r.EnergyPerHour <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	cpc := byName["CPC (eager)"]
	dcpcp := byName["DCPCP (delayed+prediction)"]
	if cpc.WriteRate <= dcpcp.WriteRate*1.2 {
		t.Fatalf("CPC write rate %v not clearly above DCPCP %v", cpc.WriteRate, dcpcp.WriteRate)
	}
	if cpc.LifetimeYears >= dcpcp.LifetimeYears {
		t.Fatalf("CPC lifetime %v not below DCPCP %v", cpc.LifetimeYears, dcpcp.LifetimeYears)
	}
	if cpc.EnergyPerHour <= dcpcp.EnergyPerHour {
		t.Fatal("CPC energy not above DCPCP")
	}
}

func TestIntervalUCurve(t *testing.T) {
	r := RunInterval(Quick)
	if len(r.Rows) < 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	best, worstLong := r.Rows[0], r.Rows[len(r.Rows)-1]
	for _, row := range r.Rows {
		if row.ExecTime < best.ExecTime {
			best = row
		}
	}
	// The minimum must be interior or at least not the longest interval,
	// and the longest interval must be clearly worse (recomputation loss).
	if best.Interval == worstLong.Interval {
		t.Fatal("longest interval came out best; no recomputation penalty visible")
	}
	if worstLong.ExecTime < best.ExecTime*2 {
		t.Fatalf("longest interval (%v) not clearly worse than best (%v)",
			worstLong.ExecTime, best.ExecTime)
	}
	// Young's optimum lands within a factor of ~2 of the measured best.
	ratio := float64(r.Best) / float64(r.YoungOpt)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("measured best %v vs Young %v: ratio %.2f out of range", r.Best, r.YoungOpt, ratio)
	}
	// Shortest interval pays more checkpoint overhead than the best.
	if r.Rows[0].ExecTime <= best.ExecTime && r.Rows[0].Interval != best.Interval {
		t.Fatal("over-frequent checkpointing showed no cost")
	}
}

func TestRedundancyTradeoff(t *testing.T) {
	r := RunRedundancy()
	// Parity holds a fraction of buddy's remote memory...
	if r.ParityFootprint*2 >= r.BuddyFootprint {
		t.Fatalf("parity footprint %d not clearly below buddy %d", r.ParityFootprint, r.BuddyFootprint)
	}
	// ...but recovery costs more.
	if r.ParityRecover <= r.BuddyRecover {
		t.Fatalf("parity recovery %v not above buddy %v", r.ParityRecover, r.BuddyRecover)
	}
	// Steady-state shipping volume is comparable (each node sends its D).
	ratio := float64(r.ParityShip) / float64(r.BuddyShip)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("ship ratio = %.2f, want ~1", ratio)
	}
}

func TestHierarchyMultilevelBeatsPFSDirect(t *testing.T) {
	r := RunHierarchy(Quick)
	if r.MultiOvh >= r.PFSDirectOvh/3 {
		t.Fatalf("multilevel overhead %.3f not clearly below PFS-direct %.3f",
			r.MultiOvh, r.PFSDirectOvh)
	}
	// The durability ladder widens outward: local blocking < remote async
	// window, and the PFS drain moved every committed object.
	if r.LocalLatency >= r.RemoteLatency {
		t.Fatalf("local latency %v not below remote window %v", r.LocalLatency, r.RemoteLatency)
	}
	if r.PFSObjects == 0 {
		t.Fatal("nothing drained to the PFS")
	}
}

func TestNewExperimentPrinters(t *testing.T) {
	var sb strings.Builder
	PrintRestart(&sb, RunRestart())
	PrintTransparent(&sb, RunTransparent())
	PrintFailureModel(&sb, RunFailureModel(Quick))
	PrintEndurance(&sb, RunEndurance(Quick))
	PrintInterval(&sb, RunInterval(Quick))
	out := sb.String()
	for _, want := range []string{"Restart paths", "Transparent vs", "Failure injection", "endurance", "Checkpoint interval"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q", want)
		}
	}
}
