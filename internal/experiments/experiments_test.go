package experiments

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvmcp/internal/workload"
)

func TestFig4ShapeAndCalibration(t *testing.T) {
	r := RunFig4()
	pts := r.Points[33<<20]
	if pts[0].Procs != 1 || pts[len(pts)-1].Procs != 12 {
		t.Fatalf("proc axis wrong: %+v", pts)
	}
	drop := 1 - pts[len(pts)-1].PerCoreBW/pts[0].PerCoreBW
	if drop < 0.6 || drop > 0.75 {
		t.Fatalf("33MB per-core drop = %.2f, want ~0.67", drop)
	}
	// Larger copies contend at least as hard as smaller ones.
	small := r.Points[1<<20]
	large := r.Points[512<<20]
	if large[len(large)-1].PerCoreBW > small[len(small)-1].PerCoreBW+1 {
		t.Fatal("512MB copies outperform 1MB copies at 12 procs")
	}
}

func TestMADBenchHeadline(t *testing.T) {
	rows := RunMADBench()
	last := rows[len(rows)-1]
	if last.SizePerCore != 300<<20 {
		t.Fatalf("last row size = %d", last.SizePerCore)
	}
	// Paper: ~46% slower at 300MB/core; accept the right neighbourhood.
	if last.Slowdown < 0.3 || last.Slowdown > 0.65 {
		t.Fatalf("300MB ramdisk slowdown = %.2f, want ~0.46", last.Slowdown)
	}
	if last.SyncRatio < 2.5 {
		t.Fatalf("sync ratio = %.1f, want ~3x", last.SyncRatio)
	}
	if last.LockWaitRamdisk <= last.LockWaitMemory {
		t.Fatal("ramdisk lock wait not above memory path")
	}
}

func TestLocalExperimentShape(t *testing.T) {
	r := RunLocal(workload.LAMMPSRhodo(), Quick)
	if len(r.Points) != len(BWSweepPerCore) {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, pt := range r.Points {
		// Pre-copy must beat no-pre-copy and ramdisk everywhere.
		if pt.PreExec > pt.NoPreExec {
			t.Fatalf("at %v BW: pre-copy exec %v worse than no-pre %v",
				pt.BWPerCore, pt.PreExec, pt.NoPreExec)
		}
		if pt.PreExec > pt.RamdiskExec {
			t.Fatalf("at %v BW: pre-copy exec %v worse than ramdisk %v",
				pt.BWPerCore, pt.PreExec, pt.RamdiskExec)
		}
		if pt.PreOverhead > pt.NoPreOverhead {
			t.Fatal("pre-copy overhead above baseline")
		}
		if pt.IdealExec >= pt.PreExec {
			t.Fatal("ideal not fastest")
		}
	}
	// The gap must widen as bandwidth shrinks (contention is the enemy).
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if (last.NoPreOverhead - last.PreOverhead) < (first.NoPreOverhead - first.PreOverhead) {
		t.Fatal("pre-copy benefit did not grow as NVM bandwidth fell")
	}
}

func TestLocalGTCCopiesLessDataWithTracking(t *testing.T) {
	r := RunLocal(workload.GTC(), Quick)
	for _, pt := range r.Points {
		// GTC's init-only chunk: dirty tracking copies strictly less data.
		if pt.PreData >= pt.NoPreData {
			t.Fatalf("pre-copy data %v not below baseline %v (init-only chunk should be skipped)",
				pt.PreData, pt.NoPreData)
		}
	}
}

func TestCM1BenefitsLessThanLAMMPS(t *testing.T) {
	lammps := RunLocal(workload.LAMMPSRhodo(), Quick)
	cm1 := RunLocal(workload.CM1(), Quick)
	// Compare the benefit at the most constrained bandwidth point.
	lb := lammps.Points[len(lammps.Points)-1]
	cb := cm1.Points[len(cm1.Points)-1]
	lBenefit := lb.NoPreOverhead - lb.PreOverhead
	cBenefit := cb.NoPreOverhead - cb.PreOverhead
	// The fluid bandwidth model equalizes small- and large-chunk contention,
	// so CM1's suppression is weaker here than the paper's (<5% benefit);
	// the reproducible property is that CM1 never benefits *more* than
	// LAMMPS (see EXPERIMENTS.md for the divergence note).
	if cBenefit > lBenefit+0.02 {
		t.Fatalf("CM1 benefit (%.3f) clearly exceeds LAMMPS benefit (%.3f); paper says CM1 <5%%",
			cBenefit, lBenefit)
	}
}

func TestFig9PreCopyBeatsBurst(t *testing.T) {
	r := RunFig9(workload.GTC(), Quick)
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range r.Points {
		// Individual corner points may invert slightly at quick scale
		// (shrunken data volumes compress the shipping window); the
		// paper-comparable claim is the average reduction below.
		if pt.EffPre < pt.EffNoPre-0.015 {
			t.Fatalf("pre-copy efficiency %.3f clearly below burst %.3f at K=%d BW=%v",
				pt.EffPre, pt.EffNoPre, pt.RemoteEvery, pt.BWPerCore)
		}
		if pt.EffPre <= 0 || pt.EffPre > 1 {
			t.Fatalf("efficiency out of range: %v", pt.EffPre)
		}
	}
	if r.AvgOvhPre >= r.AvgOvhNoPre*0.8 {
		t.Fatalf("average overhead: pre %.3f not clearly below burst %.3f (paper: ~40%% reduction)",
			r.AvgOvhPre, r.AvgOvhNoPre)
	}
}

func TestFig10PeakReduction(t *testing.T) {
	r := RunFig10(workload.LAMMPSRhodo(), Quick)
	if r.BurstPeak <= 0 || r.PrePeak <= 0 {
		t.Fatalf("degenerate peaks: %+v", r)
	}
	// Paper: pre-copy peak is roughly half the burst peak.
	if r.PeakReduction < 0.25 {
		t.Fatalf("peak reduction = %.2f, want substantial (~0.5)", r.PeakReduction)
	}
}

func TestTable4RowsCoverAllApps(t *testing.T) {
	rows := RunTable4()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := r.SubMB + r.Mid10to20 + r.Mid50to100 + r.Over100
		if sum <= 0 || sum > 1.0001 {
			t.Fatalf("%s bucket shares sum to %v", r.App, sum)
		}
	}
}

func TestTable5PreCopyRoughlyDoublesHelperUtil(t *testing.T) {
	rows := RunTable5(Quick)
	for _, r := range rows {
		if r.UtilPre <= r.UtilNoPre {
			t.Fatalf("at %d: pre-copy util %.3f not above burst %.3f",
				r.DataPerCore, r.UtilPre, r.UtilNoPre)
		}
		if r.UtilPre > 0.8 {
			t.Fatalf("helper util %.3f implausibly high", r.UtilPre)
		}
	}
	// Utilization grows with data volume.
	if rows[len(rows)-1].UtilNoPre < rows[0].UtilNoPre {
		t.Fatal("burst util shrank with more data")
	}
}

func TestPageAblationScalesPerGB(t *testing.T) {
	rows := RunPageAblation()
	for _, r := range rows {
		if r.PageTime <= r.ChunkTime {
			t.Fatalf("page-level (%v) not costlier than chunk-level (%v)", r.PageTime, r.ChunkTime)
		}
	}
	// ~1GB at 9us+1us(protect) per 4KB page: in the seconds range.
	gb := rows[len(rows)-1]
	if gb.PageTime < time.Second || gb.PageTime > 10*time.Second {
		t.Fatalf("1GB page-level cost = %v, want seconds (paper: ~3s/GB)", gb.PageTime)
	}
}

func TestDirectAblationWriteIntensityHurts(t *testing.T) {
	rows := RunDirectAblation()
	for i := 1; i < len(rows); i++ {
		if rows[i].DirectSlowdown < rows[i-1].DirectSlowdown-0.01 {
			t.Fatal("direct-NVM slowdown did not grow with write intensity")
		}
	}
	last := rows[len(rows)-1]
	if last.DirectSlowdown < 0.1 {
		t.Fatalf("write-intensive direct slowdown = %.2f, want >= 10%% (paper: up to 25%%)", last.DirectSlowdown)
	}
	if last.ShadowSlowdown >= last.DirectSlowdown {
		t.Fatal("shadow buffering not better than direct NVM for write-intensive code")
	}
}

func TestSerialAblationPenaltyShrinksWithSize(t *testing.T) {
	rows := RunSerialAblation()
	if rows[0].SerialPenalty <= rows[len(rows)-1].SerialPenalty {
		t.Fatal("serialization penalty did not shrink with per-core data size")
	}
	if rows[0].SerialPenalty < 0.05 {
		t.Fatalf("small-data serialization penalty = %.3f, want noticeable", rows[0].SerialPenalty)
	}
}

func TestModelRowsMonotone(t *testing.T) {
	rows := RunModel()
	for i := 1; i < len(rows); i++ {
		if rows[i].TLocal < rows[i-1].TLocal {
			t.Fatal("T_lcl shrank as bandwidth fell")
		}
		if rows[i].Efficiency > rows[i-1].Efficiency {
			t.Fatal("efficiency rose as bandwidth fell")
		}
		if rows[i].PreCopyTp > rows[i-1].PreCopyTp {
			t.Fatal("pre-copy threshold rose as bandwidth fell")
		}
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb)
	PrintTable4(&sb, RunTable4())
	PrintModel(&sb, RunModel())
	PrintFig4(&sb, RunFig4())
	PrintMADBench(&sb, RunMADBench())
	out := sb.String()
	for _, want := range []string{"Table I", "Table IV", "analytic model", "memcpy", "MADBench"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q", want)
		}
	}
	if len(out) < 1000 {
		t.Fatalf("printer output suspiciously short: %d bytes", len(out))
	}
}

func TestSweepBoundsConcurrency(t *testing.T) {
	old := sweepWorkers
	defer func() { sweepWorkers = old }()
	sweepWorkers = 4

	var active, peak atomic.Int64
	var mu sync.Mutex
	seen := make(map[int]bool)
	sweep(1000, func(i int) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched() // give other workers a chance to overlap
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		active.Add(-1)
	})
	if p := peak.Load(); p > 4 {
		t.Fatalf("sweep ran %d points at once, bound is 4", p)
	}
	if len(seen) != 1000 {
		t.Fatalf("sweep visited %d distinct points, want 1000", len(seen))
	}
}
