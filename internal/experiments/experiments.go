// Package experiments implements one harness per table and figure of the
// paper's evaluation (plus the Section IV motivation experiment and three
// ablations), producing the same rows and series the paper reports. Each
// experiment has a Run function returning typed results and a Print function
// rendering them; cmd/nvmcp-bench and the top-level benchmarks are thin
// wrappers over these.
//
// Absolute numbers come from the simulation substrate, not the authors'
// testbed; the quantities to compare against the paper are the shapes —
// who wins, by roughly what factor, and where the crossovers fall.
// EXPERIMENTS.md records paper-vs-measured for every artifact.
package experiments

import (
	"sync"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/mem"
	"nvmcp/internal/precopy"
	"nvmcp/internal/workload"
)

// Scale selects experiment size: Quick for CI-friendly runs, Paper for the
// full 48-rank configuration of the evaluation.
type Scale int

const (
	// Quick runs 2 nodes x 4 cores with short runs.
	Quick Scale = iota
	// Paper runs 4 nodes x 12 cores (48 MPI processes) as in Section VI.
	Paper
)

func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "quick"
}

// nodes/cores/iterations for a scale.
func (s Scale) dims() (nodes, cores, iters int) {
	if s == Paper {
		return 4, 12, 4
	}
	return 2, 4, 3
}

// BWSweepPerCore is the Figures 7/8 x-axis: effective NVM write bandwidth
// per core, descending (the paper sweeps decreasing parallel bandwidth; a
// 2 GB/s device split across 12 cores with DRAM interference leaves on the
// order of 100-400 MB/s per core, the regime where its 'no pre-copy'
// overheads reach ~15%).
var BWSweepPerCore = []float64{1600e6, 800e6, 400e6, 200e6, 100e6}

// baseConfig assembles the common cluster configuration for an app at a
// scale and per-core NVM bandwidth.
func baseConfig(app workload.AppSpec, scale Scale, bwPerCore float64) cluster.Config {
	nodes, cores, iters := scale.dims()
	if scale == Quick {
		// Keep virtual volumes proportional to the smaller machine so
		// quick runs finish fast but preserve contention shape; the
		// communication volume scales with the data volume.
		factor := float64(100*mem.MB) / float64(app.CheckpointSize())
		app = app.ScaledTo(100 * mem.MB)
		app.CommPerIter = int64(float64(app.CommPerIter) * factor)
		app.IterTime = 10 * time.Second
	}
	return cluster.Config{
		Nodes:        nodes,
		CoresPerNode: cores,
		App:          app,
		Iterations:   iters,
		NVMPerCoreBW: bwPerCore,
		// Large chunk payloads are pointless at cluster scale; timing uses
		// virtual sizes.
		PayloadCap: 2048,
	}
}

// idealTime runs the no-checkpoint, no-failure configuration — the
// denominator of every efficiency and overhead number.
func idealTime(cfg cluster.Config) time.Duration {
	cfg.NoCheckpoint = true
	cfg.LocalScheme = precopy.NoPreCopy
	cfg.Remote = false
	res, _ := cluster.Run(cfg)
	return res.ExecTime
}

// overhead returns (actual-ideal)/ideal.
func overhead(actual, ideal time.Duration) float64 {
	return float64(actual-ideal) / float64(ideal)
}

// sweep evaluates fn(i) for i in [0, n) concurrently, one host goroutine per
// point. Every point is an independent simulation with its own virtual
// clock, so parallel evaluation changes nothing about the (deterministic)
// results — it only uses the host's cores for the parameter sweep, the way
// an HPC parameter study would.
func sweep(n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}
