// Package experiments implements one harness per table and figure of the
// paper's evaluation (plus the Section IV motivation experiment and three
// ablations), producing the same rows and series the paper reports. Each
// experiment has a Run function returning typed results and a Print function
// rendering them; cmd/nvmcp-bench and the top-level benchmarks are thin
// wrappers over these.
//
// Absolute numbers come from the simulation substrate, not the authors'
// testbed; the quantities to compare against the paper are the shapes —
// who wins, by roughly what factor, and where the crossovers fall.
// EXPERIMENTS.md records paper-vs-measured for every artifact.
package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/scenario"
	"nvmcp/internal/workload"
)

// Scale selects experiment size: Quick for CI-friendly runs, Paper for the
// full 48-rank configuration of the evaluation.
type Scale int

const (
	// Quick runs 2 nodes x 4 cores with short runs.
	Quick Scale = iota
	// Paper runs 4 nodes x 12 cores (48 MPI processes) as in Section VI.
	Paper
)

func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "quick"
}

// Scenario maps the experiment scale onto the scenario layer's scale names.
func (s Scale) Scenario() scenario.Scale {
	if s == Paper {
		return scenario.ScalePaper
	}
	return scenario.ScaleQuick
}

// BWSweepPerCore is the Figures 7/8 x-axis: effective NVM write bandwidth
// per core, descending (the paper sweeps decreasing parallel bandwidth; a
// 2 GB/s device split across 12 cores with DRAM interference leaves on the
// order of 100-400 MB/s per core, the regime where its 'no pre-copy'
// overheads reach ~15%).
var BWSweepPerCore = []float64{1600e6, 800e6, 400e6, 200e6, 100e6}

// baseConfig assembles the common cluster configuration for an app at a
// scale and per-core NVM bandwidth by lowering the scenario layer's base
// shape (quick runs re-scale volumes so contention shape survives at speed).
func baseConfig(app workload.AppSpec, scale Scale, bwPerCore float64) cluster.Config {
	cfg, err := cluster.FromScenario(scenario.Base(app.Name, scale.Scenario(), bwPerCore))
	if err != nil {
		panic(err)
	}
	return cfg
}

// idealTime runs the no-checkpoint, no-failure configuration — the
// denominator of every efficiency and overhead number.
func idealTime(cfg cluster.Config) time.Duration {
	cfg.NoCheckpoint = true
	cfg.Local = "none"
	cfg.Remote = "none"
	cfg.Bottom = "none"
	res, _ := cluster.MustRun(cfg)
	return res.ExecTime
}

// overhead returns (actual-ideal)/ideal.
func overhead(actual, ideal time.Duration) float64 {
	return float64(actual-ideal) / float64(ideal)
}

// sweepWorkers bounds sweep's host-goroutine fan-out. One worker per host
// core: each point is a whole simulation (its own Env spawns a goroutine per
// simulated process), so oversubscribing beyond the core count only adds
// scheduler pressure and memory for stacks. Variable so tests can exercise
// the bound.
var sweepWorkers = runtime.GOMAXPROCS(0)

// sweep evaluates fn(i) for i in [0, n) on a bounded worker pool. Every
// point is an independent simulation with its own virtual clock, so parallel
// evaluation changes nothing about the (deterministic) results — it only
// uses the host's cores for the parameter sweep, the way an HPC parameter
// study would.
func sweep(n int, fn func(i int)) {
	workers := sweepWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
