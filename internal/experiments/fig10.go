package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/obs"
	"nvmcp/internal/scenario"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// Fig10Result is the peak-interconnect-usage experiment: per-window
// checkpoint bytes over the run's timeline for burst vs pre-copy remote
// checkpointing, plus the peaks.
type Fig10Result struct {
	App    string
	Scale  Scale
	Window time.Duration

	BurstSeries []float64
	PreSeries   []float64
	BurstPeak   float64
	PrePeak     float64
	// PeakReduction is 1 - PrePeak/BurstPeak (the paper reports up to 46%
	// reduced peak interconnect usage, with pre-copy's peak about half).
	PeakReduction float64
}

// RunFig10 reproduces Figure 10: LAMMPS with remote checkpoints, comparing
// the interconnect usage timeline of the asynchronous burst and the pre-copy
// helper. The series are checkpoint bytes transferred per window.
func RunFig10(app workload.AppSpec, scale Scale) Fig10Result {
	nodesIters := func(base *cluster.Config) {
		base.RemoteEvery = 2
		base.Local = "dcpcp"
		if base.Iterations < 4 {
			base.Iterations = 4
		}
	}
	window := 10 * time.Second
	if scale == Quick {
		window = 5 * time.Second
	}

	run := func(policy string) (series []float64, peak float64) {
		base := baseConfig(app, scale, 800e6)
		nodesIters(&base)
		base.Remote = policy
		base.LinkBW = fig9LinkBW(scale)
		if policy == "buddy-precopy" {
			base.RemoteRateCap = scenario.AutoRemoteRateCap(
				base.App.CheckpointSize(), base.CoresPerNode, base.App.IterTime, base.RemoteEvery)
		}
		res, c := cluster.MustRun(base)
		end := res.ExecTime
		// Read the fabric's cumulative checkpoint series through the obs
		// registry — the same timeline every other sink sees.
		tl := c.Obs.Registry().Timeline("fabric_bytes", obs.Labels{"class": interconnect.ClassCkpt.String()})
		series = tl.DiffBuckets(end, window)
		peak, _ = tl.PeakDiffBucket(end, window)
		return series, peak
	}

	burstSeries, burstPeak := run("buddy-burst")
	preSeries, prePeak := run("buddy-precopy")
	red := 0.0
	if burstPeak > 0 {
		red = 1 - prePeak/burstPeak
	}
	return Fig10Result{
		App:           app.Name,
		Scale:         scale,
		Window:        window,
		BurstSeries:   burstSeries,
		PreSeries:     preSeries,
		BurstPeak:     burstPeak,
		PrePeak:       prePeak,
		PeakReduction: red,
	}
}

// PrintFig10 renders the two timelines side by side with sparkline bars.
func PrintFig10(w io.Writer, r Fig10Result) {
	fmt.Fprintf(w, "== Peak interconnect usage, %s (%s scale), %v windows ==\n", r.App, r.Scale, r.Window)
	max := r.BurstPeak
	if r.PrePeak > max {
		max = r.PrePeak
	}
	n := len(r.BurstSeries)
	if len(r.PreSeries) > n {
		n = len(r.PreSeries)
	}
	tb := &trace.Table{Header: []string{"t", "burst", "", "pre-copy", ""}}
	for i := 0; i < n; i++ {
		var b, p float64
		if i < len(r.BurstSeries) {
			b = r.BurstSeries[i]
		}
		if i < len(r.PreSeries) {
			p = r.PreSeries[i]
		}
		tb.AddRow(
			(time.Duration(i) * r.Window).String(),
			trace.FmtBytes(b), bar(b, max),
			trace.FmtBytes(p), bar(p, max),
		)
	}
	tb.Write(w)
	fmt.Fprintf(w, "peak: burst %s, pre-copy %s — reduction %s (paper: up to 46%%, peak roughly halved)\n",
		trace.FmtBytes(r.BurstPeak), trace.FmtBytes(r.PrePeak), trace.FmtPct(r.PeakReduction))
}

func bar(v, max float64) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * 30)
	return strings.Repeat("#", n)
}
