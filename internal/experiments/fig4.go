package experiments

import (
	"fmt"
	"io"

	"nvmcp/internal/mem"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// Fig4Result holds the parallel-memcpy bandwidth sweep: per-core copy
// bandwidth vs concurrent process count, for several copy sizes.
type Fig4Result struct {
	Sizes  []int64
	Procs  []int
	Points map[int64][]workload.MemcpyResult // keyed by size
}

// RunFig4 reproduces Figure 4 (LANL parallel memcpy): effective per-core
// DRAM copy bandwidth collapsing as process count rises, for 1/33/512 MB
// copies. The DRAM model is calibrated so 12 processes retain ~33% of
// single-process bandwidth at the 33 MB point.
func RunFig4() Fig4Result {
	sizes := []int64{1 * mem.MB, 33 * mem.MB, 512 * mem.MB}
	procs := []int{1, 2, 4, 6, 8, 10, 12}
	out := Fig4Result{Sizes: sizes, Procs: procs, Points: make(map[int64][]workload.MemcpyResult)}
	for _, size := range sizes {
		out.Points[size] = workload.MemcpySweep(procs, size)
	}
	return out
}

// PrintFig4 renders the sweep.
func PrintFig4(w io.Writer, r Fig4Result) {
	fmt.Fprintln(w, "== Parallel memcpy bandwidth per core (LANL benchmark, Figure 4) ==")
	header := []string{"procs"}
	for _, s := range r.Sizes {
		header = append(header, trace.FmtBytes(float64(s)))
	}
	tb := &trace.Table{Header: header}
	for i, n := range r.Procs {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range r.Sizes {
			row = append(row, trace.FmtRate(r.Points[s][i].PerCoreBW))
		}
		tb.AddRow(row...)
	}
	tb.Write(w)
	for _, s := range r.Sizes {
		pts := r.Points[s]
		drop := 1 - pts[len(pts)-1].PerCoreBW/pts[0].PerCoreBW
		fmt.Fprintf(w, "per-core drop at 12 procs (%s): %s (paper: ~67%% at 33 MB)\n",
			trace.FmtBytes(float64(s)), trace.FmtPct(drop))
	}
}
