package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/model"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/remote"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
	"nvmcp/internal/transparent"
	"nvmcp/internal/workload"
)

// ---------------------------------------------------------------------------
// Restart-path comparison (the paper's future-work recovery optimization).

// RestartRow compares recovery paths for one checkpoint size.
type RestartRow struct {
	CkptSize int64
	// EagerLocal is the classic restart: every chunk copied NVM→DRAM
	// before the application resumes.
	EagerLocal time.Duration
	// LazyResume is the time until the application can resume with lazy
	// restore (allocation only).
	LazyResume time.Duration
	// LazyFirstIter is lazy resume plus the first full iteration, during
	// which the deferred copies materialize on touch.
	LazyFirstIter time.Duration
	// EagerFirstIter is eager restart plus one iteration, for comparison.
	EagerFirstIter time.Duration
	// RemoteFetch is the hard-failure path: every chunk pulled from the
	// buddy node across the fabric.
	RemoteFetch time.Duration
}

// RunRestart measures the three recovery paths over a checkpoint-size sweep
// using the GTC chunk profile: eager local restore (t ∝ D at NVM read
// speed), lazy restore (resume immediately, pay on touch — and chunks that
// are fully overwritten never pay), and remote fetch after a hard failure
// (t ∝ D at link speed).
func RunRestart() []RestartRow {
	sizes := []int64{100 * mem.MB, 400 * mem.MB, 1600 * mem.MB}
	rows := make([]RestartRow, len(sizes))
	sweep(len(sizes), func(i int) {
		rows[i] = restartPoint(sizes[i])
	})
	return rows
}

func restartPoint(size int64) RestartRow {
	spec := workload.GTC().ScaledTo(size)
	spec.IterTime = 10 * time.Second
	spec.CommPerIter = 0

	// Build one node + buddy, run one checkpointed life, remote-commit,
	// then measure each recovery path from identical state.
	prepare := func() (*sim.Env, *nvmkernel.Kernel, *remote.Mesh) {
		e := sim.NewEnv()
		fabric := interconnect.New(e, 2, 0)
		nvms := []*mem.Device{mem.NewPCM(e, 64*mem.GB), mem.NewPCM(e, 64*mem.GB)}
		k := nvmkernel.New(e, mem.NewDRAM(e, 64*mem.GB), nvms[0])
		mesh := remote.NewMesh(e, fabric, nvms)
		agent := mesh.AddAgent(0, 1, remote.Config{Scheme: remote.AsyncBurst})
		e.Go("life1", func(p *sim.Proc) {
			s := core.NewStore(k.Attach("rank0"), core.Options{})
			agent.Register(s)
			app, err := workload.Setup(p, s, spec)
			if err != nil {
				panic(err)
			}
			if err := app.Iterate(p); err != nil {
				panic(err)
			}
			s.ChkptAll(p)
			agent.TriggerRemote(p).Await(p)
			// Stop the helper so its poll loop stops generating events and
			// the simulation can drain.
			agent.Stop()
		})
		e.Run()
		mesh.RemoveAgent(0)
		k.SoftReset()
		return e, k, mesh
	}

	measure := func(lazy, iterate bool) time.Duration {
		e, k, _ := prepare()
		var took time.Duration
		e.Go("life2", func(p *sim.Proc) {
			start := p.Now()
			s := core.NewStore(k.Attach("rank0"), core.Options{LazyRestore: lazy})
			app, err := workload.Setup(p, s, spec)
			if err != nil {
				panic(err)
			}
			if iterate {
				if err := app.Iterate(p); err != nil {
					panic(err)
				}
			}
			took = p.Now() - start
		})
		e.Run()
		return took
	}

	remoteFetch := func() time.Duration {
		e, k, mesh := prepare()
		// Re-attach an agent so Fetch knows the buddy; stop it immediately —
		// only its routing is needed, not its poll loop.
		mesh.AddAgent(0, 1, remote.Config{Scheme: remote.AsyncBurst}).Stop()
		k.HardFail()
		var took time.Duration
		e.Go("life2", func(p *sim.Proc) {
			start := p.Now()
			s := core.NewStore(k.Attach("rank0"), core.Options{})
			app, err := workload.Setup(p, s, spec)
			if err != nil {
				panic(err)
			}
			for _, c := range app.Chunks {
				if c.Restored {
					continue
				}
				data, _, _, ok := mesh.Fetch(p, 0, "rank0", c.ID)
				if !ok {
					panic("remote copy missing for " + c.Name)
				}
				if err := s.AdoptRemote(p, c, data, 0); err != nil {
					panic(err)
				}
			}
			took = p.Now() - start
		})
		e.Run()
		return took
	}

	return RestartRow{
		CkptSize:       size,
		EagerLocal:     measure(false, false),
		LazyResume:     measure(true, false),
		LazyFirstIter:  measure(true, true),
		EagerFirstIter: measure(false, true),
		RemoteFetch:    remoteFetch(),
	}
}

// PrintRestart renders the recovery-path comparison.
func PrintRestart(w io.Writer, rows []RestartRow) {
	fmt.Fprintln(w, "== Restart paths: eager local vs lazy restore vs remote fetch (GTC profile) ==")
	tb := &trace.Table{Header: []string{
		"ckpt size", "eager local", "lazy resume", "eager+1 iter", "lazy+1 iter", "remote fetch",
	}}
	for _, r := range rows {
		tb.AddRow(
			trace.FmtBytes(float64(r.CkptSize)),
			r.EagerLocal.Round(time.Millisecond).String(),
			r.LazyResume.Round(time.Microsecond).String(),
			r.EagerFirstIter.Round(time.Millisecond).String(),
			r.LazyFirstIter.Round(time.Millisecond).String(),
			r.RemoteFetch.Round(time.Millisecond).String(),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "(lazy restore resumes immediately and pays per chunk on first touch;")
	fmt.Fprintln(w, " fully-overwritten chunks — GTC's per-iteration arrays — never pay at all)")
}

// ---------------------------------------------------------------------------
// Transparent vs application-initiated checkpointing.

// TransparentRow compares the two checkpoint models at one footprint ratio.
type TransparentRow struct {
	Footprint  int64
	CkptState  int64
	AppT       time.Duration // application-initiated, chunk tracking
	FullT      time.Duration // transparent, full image copy
	IncrT      time.Duration // transparent, page-level incremental
	IncrFaults int64         // protection faults the incremental round paid
	AppBytes   int64
	FullBytes  int64
	IncrBytes  int64
}

// RunTransparent compares one steady-state checkpoint round of the three
// models for an application whose live checkpoint state is 400 MB inside a
// 1 GB process image, with half of the image's pages dirtied per iteration —
// the Section II trade-off (transparent = bigger volume; page-level
// incremental = per-page fault costs) made measurable.
func RunTransparent() TransparentRow {
	const (
		footprint = mem.GB
		ckptState = 400 * mem.MB
		dirtied   = footprint / 2
	)
	row := TransparentRow{Footprint: footprint, CkptState: ckptState}

	// Application-initiated: chunks for the live state only.
	{
		e := sim.NewEnv()
		k := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB))
		e.Go("app", func(p *sim.Proc) {
			s := core.NewStore(k.Attach("proc"), core.Options{})
			spec := workload.GTC().ScaledTo(ckptState)
			app, err := workload.Setup(p, s, spec)
			if err != nil {
				panic(err)
			}
			s.ChkptAll(p) // baseline round
			for _, c := range app.Chunks {
				c.WriteAll(p)
			}
			start := p.Now()
			st := s.ChkptAll(p)
			row.AppT = p.Now() - start
			row.AppBytes = st.BytesCopied
		})
		e.Run()
	}

	run := func(mode transparent.Mode) (time.Duration, int64, int64) {
		e := sim.NewEnv()
		k := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB))
		var dur time.Duration
		var bytes, faults int64
		e.Go("app", func(p *sim.Proc) {
			c, err := transparent.New(p, k.Attach("proc"), footprint)
			if err != nil {
				panic(err)
			}
			c.SetMode(mode)
			c.Checkpoint(p) // baseline round
			before := k.Counters.Get("protection_faults")
			if err := c.Touch(p, 0, dirtied); err != nil {
				panic(err)
			}
			start := p.Now()
			st := c.Checkpoint(p)
			dur = p.Now() - start
			bytes = st.BytesCopied
			faults = k.Counters.Get("protection_faults") - before
		})
		e.Run()
		return dur, bytes, faults
	}
	row.FullT, row.FullBytes, _ = run(transparent.FullCopy)
	row.IncrT, row.IncrBytes, row.IncrFaults = run(transparent.Incremental)
	return row
}

// PrintTransparent renders the model comparison.
func PrintTransparent(w io.Writer, r TransparentRow) {
	fmt.Fprintln(w, "== Transparent vs application-initiated checkpointing ==")
	fmt.Fprintf(w, "process image %s, live checkpoint state %s, half the image dirtied per iteration\n",
		trace.FmtBytes(float64(r.Footprint)), trace.FmtBytes(float64(r.CkptState)))
	tb := &trace.Table{Header: []string{"model", "ckpt time", "bytes moved", "faults"}}
	tb.AddRow("application-initiated (chunks)", r.AppT.Round(time.Millisecond).String(),
		trace.FmtBytes(float64(r.AppBytes)), "per chunk")
	tb.AddRow("transparent full copy", r.FullT.Round(time.Millisecond).String(),
		trace.FmtBytes(float64(r.FullBytes)), "0")
	tb.AddRow("transparent incremental (page)", r.IncrT.Round(time.Millisecond).String(),
		trace.FmtBytes(float64(r.IncrBytes)), fmt.Sprintf("%d", r.IncrFaults))
	tb.Write(w)
	fmt.Fprintln(w, "(Section II: transparent checkpoints move the whole footprint or pay per-page faults;")
	fmt.Fprintln(w, " application-initiated checkpoints move only the marked state at chunk-fault cost)")
}

// ---------------------------------------------------------------------------
// Failure-model validation: simulator vs Section III analytic model.

// FailureRow is one MTBF point: efficiency with real injected failures vs
// the analytic prediction.
type FailureRow struct {
	MTBF         time.Duration
	Failures     int
	SimEff       float64
	ModelEff     float64
	LocalRestore int64
}

// RunFailureModel injects exponentially-distributed soft failures at several
// machine MTBFs into a CM1 run and compares the measured efficiency
// (ideal/actual) against the Section III model's prediction for the same
// parameters. Seeded and deterministic.
func RunFailureModel(scale Scale) []FailureRow {
	mtbfs := []time.Duration{60 * time.Second, 120 * time.Second, 300 * time.Second}
	rows := make([]FailureRow, len(mtbfs))
	sweep(len(mtbfs), func(i int) {
		rows[i] = failurePoint(mtbfs[i], scale)
	})
	return rows
}

func failurePoint(mtbf time.Duration, scale Scale) FailureRow {
	base := baseConfig(workload.CM1(), scale, 400e6)
	base.App.CommPerIter = 0 // isolate checkpoint+failure effects
	base.Iterations = 6
	base.Local = "dcpcp"

	ideal := idealTime(base)

	// Exponential soft-failure schedule over a generous horizon, alternating
	// nodes, seeded for determinism. Failures landing while the job is
	// restarting are dropped by the cluster (documented behaviour).
	rng := rand.New(rand.NewSource(42))
	horizon := 3 * ideal
	var fails []cluster.FailureEvent
	t := time.Duration(0)
	for i := 0; ; i++ {
		t += time.Duration(rng.ExpFloat64() * float64(mtbf))
		if t > horizon {
			break
		}
		fails = append(fails, cluster.FailureEvent{After: t, Node: i % base.Nodes})
	}
	cfg := base
	cfg.Failures = fails
	res, _ := cluster.MustRun(cfg)

	localMTBF, remoteMTBF := mtbf, 100000*time.Hour // soft-only injection
	params := model.Params{
		TCompute:      time.Duration(cfg.Iterations) * cfg.App.IterTime,
		MTBFLocal:     localMTBF,
		MTBFRemote:    remoteMTBF,
		IntervalLocal: cfg.App.IterTime,
		// Remote checkpointing disabled: one local per "remote interval".
		IntervalRemote: time.Duration(cfg.Iterations) * cfg.App.IterTime,
		CkptSize:       cfg.App.CheckpointSize(),
		NVMBWPerCore:   400e6,
		// Remote terms are inert at these settings.
		RemoteBWPerCore:        1e12,
		RemoteOverheadFraction: 0,
	}
	return FailureRow{
		MTBF:         mtbf,
		Failures:     res.FailuresInjected,
		SimEff:       float64(ideal) / float64(res.ExecTime),
		ModelEff:     params.Efficiency(),
		LocalRestore: res.Restores,
	}
}

// PrintFailureModel renders the validation table.
func PrintFailureModel(w io.Writer, rows []FailureRow) {
	fmt.Fprintln(w, "== Failure injection: simulated efficiency vs Section III model ==")
	tb := &trace.Table{Header: []string{"MTBF", "failures hit", "chunks restored", "sim efficiency", "model efficiency"}}
	for _, r := range rows {
		tb.AddRow(
			r.MTBF.String(),
			fmt.Sprintf("%d", r.Failures),
			fmt.Sprintf("%d", r.LocalRestore),
			fmt.Sprintf("%.3f", r.SimEff),
			fmt.Sprintf("%.3f", r.ModelEff),
		)
	}
	tb.Write(w)
	fmt.Fprintln(w, "(soft failures only; every recovery restores from local NVM — the multilevel design's")
	fmt.Fprintln(w, " fast path. At low MTBF the first-order model is optimistic: it counts failures")
	fmt.Fprintln(w, " against compute time only, while in the simulation failures also strike during")
	fmt.Fprintln(w, " recovery and recomputation, compounding the lost work.)")
}
