package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/mem"
	"nvmcp/internal/ramdisk"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// LocalPoint is one x-axis point of Figures 7/8 (and the CM1 variant): the
// application execution time and total data copied to NVM, for the pre-copy
// and no-pre-copy local checkpoint schemes, at one effective NVM bandwidth
// per core.
type LocalPoint struct {
	BWPerCore float64

	IdealExec   time.Duration
	NoPreExec   time.Duration
	PreExec     time.Duration
	RamdiskExec time.Duration

	// Per-rank data moved DRAM→NVM over the whole run (right axis).
	NoPreData float64
	PreData   float64

	// Overheads relative to the ideal (no-checkpoint) run.
	NoPreOverhead float64
	PreOverhead   float64
}

// LocalResult is a full Figure 7/8-style sweep for one application.
type LocalResult struct {
	App    string
	Scale  Scale
	Points []LocalPoint
}

// RunLocal reproduces the local-checkpoint experiments (Figure 7 for
// LAMMPS, Figure 8 for GTC, the in-text CM1 result): 48 ranks checkpoint
// every iteration; 'no pre-copy' is the classic full coordinated checkpoint,
// 'pre-copy' is DCPCP with dirty tracking; a ramdisk baseline writes the same
// volume through the VFS path.
func RunLocal(app workload.AppSpec, scale Scale) LocalResult {
	out := LocalResult{App: app.Name, Scale: scale}
	out.Points = make([]LocalPoint, len(BWSweepPerCore))
	sweep(len(BWSweepPerCore), func(i int) {
		bw := BWSweepPerCore[i]
		base := baseConfig(app, scale, bw)

		ideal := idealTime(base)

		noPre := base
		noPre.ForceFull = true
		noPre.Local = "none"
		noPreRes, _ := cluster.MustRun(noPre)

		pre := base
		pre.Local = "dcpcp"
		preRes, _ := cluster.MustRun(pre)

		out.Points[i] = LocalPoint{
			BWPerCore:     bw,
			IdealExec:     ideal,
			NoPreExec:     noPreRes.ExecTime,
			PreExec:       preRes.ExecTime,
			RamdiskExec:   ramdiskLocal(base, ideal),
			NoPreData:     noPreRes.DataToNVMPerRank,
			PreData:       preRes.DataToNVMPerRank,
			NoPreOverhead: overhead(noPreRes.ExecTime, ideal),
			PreOverhead:   overhead(preRes.ExecTime, ideal),
		}
	})
	return out
}

// ramdiskLocal measures the same iterate/checkpoint loop with the local
// checkpoint written through a per-node ramdisk file system instead of the
// NVM staging path — the "RAMdisk approach" pre-copy is compared against.
// As in the paper, the ramdisk sits on the *emulated NVM* (NVM used as a
// fast disk), so it pays the same device bandwidth plus the VFS path costs.
func ramdiskLocal(cfg cluster.Config, ideal time.Duration) time.Duration {
	env := sim.NewEnv()
	ranks := cfg.Nodes * cfg.CoresPerNode
	barrier := sim.NewBarrier(env, ranks)
	ckptSize := cfg.App.CheckpointSize()

	fss := make([]*ramdisk.FS, cfg.Nodes)
	for n := range fss {
		var dev *mem.Device
		if cfg.NVMPerCoreBW > 0 {
			dev = mem.NewPCMWithPerCoreBW(env, cfg.NVMPerNode+64*mem.GB, cfg.NVMPerCoreBW, cfg.CoresPerNode)
		} else {
			dev = mem.NewPCM(env, cfg.NVMPerNode+64*mem.GB)
		}
		fss[n] = ramdisk.New(env, dev)
	}
	var done time.Duration
	for r := 0; r < ranks; r++ {
		env.Go(fmt.Sprintf("rd-rank%d", r), func(p *sim.Proc) {
			node := r / cfg.CoresPerNode
			f := fss[node].Open(p, fmt.Sprintf("ckpt.%d", r))
			for iter := 0; iter < cfg.Iterations; iter++ {
				p.Sleep(cfg.App.IterTime)
				barrier.Await(p)
				if err := f.Seek(p, 0); err != nil {
					panic(err)
				}
				for off := int64(0); off < ckptSize; off += workload.MADBenchIOSize {
					n := workload.MADBenchIOSize
					if off+n > ckptSize {
						n = ckptSize - off
					}
					if err := f.Write(p, n); err != nil {
						panic(err)
					}
				}
				barrier.Await(p)
			}
			if t := p.Now(); t > done {
				done = t
			}
		})
	}
	env.Run()
	// The loop above has no communication or fault costs, so normalize:
	// charge its checkpoint cost on top of the same ideal compute time.
	computeOnly := time.Duration(cfg.Iterations) * cfg.App.IterTime
	return ideal + (done - computeOnly)
}

// PrintLocal renders a LocalResult in the paper's two-axis form.
func PrintLocal(w io.Writer, r LocalResult) {
	fmt.Fprintf(w, "== Local checkpoint, %s (%s scale): pre-copy (DCPCP) vs no pre-copy vs ramdisk ==\n", r.App, r.Scale)
	tb := &trace.Table{Header: []string{
		"NVM BW/core", "ideal", "no-pre exec", "pre exec", "ramdisk exec",
		"no-pre ovh", "pre ovh", "no-pre data/rank", "pre data/rank",
	}}
	for _, pt := range r.Points {
		tb.AddRow(
			trace.FmtRate(pt.BWPerCore),
			pt.IdealExec.Round(time.Millisecond).String(),
			pt.NoPreExec.Round(time.Millisecond).String(),
			pt.PreExec.Round(time.Millisecond).String(),
			pt.RamdiskExec.Round(time.Millisecond).String(),
			trace.FmtPct(pt.NoPreOverhead),
			trace.FmtPct(pt.PreOverhead),
			trace.FmtBytes(pt.NoPreData),
			trace.FmtBytes(pt.PreData),
		)
	}
	tb.Write(w)
}
