package experiments

import (
	"fmt"
	"io"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/pfs"
	"nvmcp/internal/scenario"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
	"nvmcp/internal/workload"
)

// HierarchyResult compares checkpointing straight to the PFS against the
// full three-level hierarchy (local NVM → buddy NVM → PFS drain).
type HierarchyResult struct {
	Ideal time.Duration

	// PFSDirect: every coordinated checkpoint blocks on the shared PFS.
	PFSDirectExec time.Duration
	PFSDirectOvh  float64

	// Multilevel: local NVM checkpoints (DCPCP) + async buddy + lazy PFS
	// drain. Exec overhead plus the durability ladder latencies.
	MultiExec time.Duration
	MultiOvh  float64
	// LocalLatency is the blocking local checkpoint time per round.
	LocalLatency time.Duration
	// RemoteLatency is trigger→remote-commit for the last round.
	RemoteLatency time.Duration
	// PFSLatency is remote-commit→PFS-durable for the last round's data.
	PFSLatency time.Duration
	// PFSObjects is how many checkpoint objects reached the PFS.
	PFSObjects int
}

// RunHierarchy reproduces the paper's Section I/II motivation: PFS-only
// checkpointing does not scale (all ranks contend for a few GB/s of global
// I/O bandwidth — the cited multilevel work reports 30-40% improvements),
// while the multilevel design keeps the blocking path at local-NVM speed and
// pushes durability outward asynchronously: buddy NVM within the remote
// interval, PFS eventually via a lazy drain.
func RunHierarchy(scale Scale) HierarchyResult {
	base := baseConfig(workload.GTC(), scale, 800e6)
	base.App.CommPerIter = 0
	var out HierarchyResult
	out.Ideal = idealTime(base)

	// --- PFS-direct --------------------------------------------------------
	out.PFSDirectExec = pfsDirect(base)
	out.PFSDirectOvh = overhead(out.PFSDirectExec, out.Ideal)

	// --- Multilevel: local + buddy + PFS drain, one composed cluster run ----
	multi := base
	multi.Local = "dcpcp"
	multi.Remote = "buddy-precopy"
	multi.RemoteEvery = 2
	multi.RemoteRateCap = scenario.AutoRemoteRateCap(
		base.App.CheckpointSize(), base.CoresPerNode, base.App.IterTime, multi.RemoteEvery)
	multi.Bottom = "pfs-drain"
	res, _ := cluster.MustRun(multi)
	out.MultiExec = res.ExecTime
	out.MultiOvh = overhead(res.ExecTime, out.Ideal)
	out.LocalLatency = res.CkptTimePerRank / time.Duration(res.LocalCkpts)

	// Remote latency: approximate as the post-trigger catch-up window —
	// bounded by one node's checkpoint volume at the shipping budget.
	nodeD := float64(base.App.CheckpointSize()) * float64(base.CoresPerNode)
	out.RemoteLatency = time.Duration(nodeD / multi.RemoteRateCap * float64(time.Second))

	// The bottom tier drained the committed buddy copies at end of run.
	out.PFSLatency = res.BottomDrainTime
	out.PFSObjects = res.BottomObjects
	return out
}

// pfsDirect runs the iterate/checkpoint loop with every rank writing its
// checkpoint synchronously to the shared PFS.
func pfsDirect(cfg cluster.Config) time.Duration {
	env := sim.NewEnv()
	fs := pfs.New(env, 0, 0)
	ranks := cfg.Nodes * cfg.CoresPerNode
	barrier := sim.NewBarrier(env, ranks)
	ckptSize := cfg.App.CheckpointSize()
	var done time.Duration
	for r := 0; r < ranks; r++ {
		env.Go(fmt.Sprintf("pfs-rank%d", r), func(p *sim.Proc) {
			for iter := 0; iter < cfg.Iterations; iter++ {
				p.Sleep(cfg.App.IterTime)
				barrier.Await(p)
				fs.Write(p, fmt.Sprintf("ckpt/%d", r), ckptSize, uint64(iter+1), nil)
				barrier.Await(p)
			}
			if t := p.Now(); t > done {
				done = t
			}
		})
	}
	env.Run()
	return done
}

// PrintHierarchy renders the comparison.
func PrintHierarchy(w io.Writer, r HierarchyResult) {
	fmt.Fprintln(w, "== Storage hierarchy: PFS-direct vs multilevel (local NVM -> buddy -> PFS) ==")
	tb := &trace.Table{Header: []string{"scheme", "exec time", "overhead"}}
	tb.AddRow("ideal (no checkpoints)", r.Ideal.Round(time.Millisecond).String(), "-")
	tb.AddRow("PFS-direct (blocking)", r.PFSDirectExec.Round(time.Millisecond).String(), trace.FmtPct(r.PFSDirectOvh))
	tb.AddRow("multilevel (NVM-checkpoints)", r.MultiExec.Round(time.Millisecond).String(), trace.FmtPct(r.MultiOvh))
	tb.Write(w)
	fmt.Fprintf(w, "multilevel durability ladder: local %v (blocking) -> buddy ~%v (async) -> PFS +%v (lazy drain, %d objects)\n",
		r.LocalLatency.Round(time.Millisecond),
		r.RemoteLatency.Round(time.Millisecond),
		r.PFSLatency.Round(time.Millisecond),
		r.PFSObjects)
	fmt.Fprintln(w, "(the cited multilevel literature reports 30-40% improvement over PFS-only checkpointing)")
}
