package workload

import (
	"fmt"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/ramdisk"
	"nvmcp/internal/sim"
)

// MADBenchResult reports one MADBench2-style run (Section IV motivation
// experiment: ramdisk vs in-memory checkpointing of the same data to the
// same DRAM).
type MADBenchResult struct {
	Cores        int
	SizePerCore  int64
	CheckpointT  time.Duration // wall time of the coordinated write phase
	SyncCalls    int64         // kernel synchronization calls observed
	LockWait     time.Duration // time spent waiting on kernel locks
	BytesWritten int64
}

// MADBenchIOSize is the I/O call granularity of the driver (checkpoints
// write in bounded-size operations).
const MADBenchIOSize = 8 * mem.MB

// MADBenchRamdisk runs the checkpoint phase of MADBench2 through the
// ramdisk's file-system interface: every core opens its own file and writes
// sizePerCore bytes in MADBenchIOSize calls, all cores concurrently.
func MADBenchRamdisk(env *sim.Env, dram *mem.Device, cores int, sizePerCore int64) MADBenchResult {
	fs := ramdisk.New(env, dram)
	for i := 0; i < cores; i++ {
		env.Go(fmt.Sprintf("madbench-fs-%d", i), func(p *sim.Proc) {
			f := fs.Open(p, fmt.Sprintf("ckpt.%d", i))
			for off := int64(0); off < sizePerCore; off += MADBenchIOSize {
				n := MADBenchIOSize
				if off+n > sizePerCore {
					n = sizePerCore - off
				}
				if err := f.Write(p, n); err != nil {
					panic(err)
				}
			}
			f.Close(p)
		})
	}
	env.Run()
	return MADBenchResult{
		Cores:        cores,
		SizePerCore:  sizePerCore,
		CheckpointT:  env.Now(),
		SyncCalls:    fs.Counters.Get("kernel_sync_calls"),
		LockWait:     fs.LockWaitTime(),
		BytesWritten: fs.Counters.Get("bytes_written"),
	}
}

// MADBenchMemory runs the same phase with each I/O call replaced by an
// allocation plus memcpy (exactly the paper's substitution): per operation,
// one allocator-lock acquisition with a short metadata hold, then the copy
// through DRAM bandwidth — one kernel synchronization per operation against
// the ramdisk path's three.
func MADBenchMemory(env *sim.Env, dram *mem.Device, cores int, sizePerCore int64) MADBenchResult {
	const allocHold = 2 * time.Microsecond
	allocLock := sim.NewMutex(env)
	var syncCalls int64
	for i := 0; i < cores; i++ {
		env.Go(fmt.Sprintf("madbench-mem-%d", i), func(p *sim.Proc) {
			for off := int64(0); off < sizePerCore; off += MADBenchIOSize {
				n := MADBenchIOSize
				if off+n > sizePerCore {
					n = sizePerCore - off
				}
				allocLock.Lock(p)
				syncCalls++
				p.Sleep(allocHold)
				if err := dram.Reserve(n); err != nil {
					allocLock.Unlock(p)
					panic(err)
				}
				allocLock.Unlock(p)
				dram.WriteBytes(p, n)
			}
		})
	}
	env.Run()
	return MADBenchResult{
		Cores:        cores,
		SizePerCore:  sizePerCore,
		CheckpointT:  env.Now(),
		SyncCalls:    syncCalls,
		LockWait:     allocLock.WaitTime,
		BytesWritten: int64(cores) * sizePerCore,
	}
}
