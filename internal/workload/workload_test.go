package workload

import (
	"math"
	"testing"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

func TestSpecSizesMatchPaperScale(t *testing.T) {
	cases := []struct {
		spec     AppSpec
		min, max int64
	}{
		{GTC(), 400 * mem.MB, 470 * mem.MB},         // paper: ~433 MB/core
		{LAMMPSRhodo(), 390 * mem.MB, 450 * mem.MB}, // paper: ~410 MB/proc
		{CM1(), 370 * mem.MB, 430 * mem.MB},         // paper: ~400 MB fixed
	}
	for _, c := range cases {
		got := c.spec.CheckpointSize()
		if got < c.min || got > c.max {
			t.Errorf("%s checkpoint size = %d MB, want %d-%d MB",
				c.spec.Name, got/mem.MB, c.min/mem.MB, c.max/mem.MB)
		}
	}
}

func TestTableIVDistributionShapes(t *testing.T) {
	// GTC and LAMMPS are large-chunk heavy; CM1 is small/mid-chunk heavy
	// with almost nothing above 100MB — the property that drives the
	// difference in pre-copy benefit.
	subG, midG, _, overG := SizeDistribution(GTC())
	if overG < 0.35 || overG > 0.55 {
		t.Errorf("GTC over-100MB share = %v, want ~0.45", overG)
	}
	if subG < 0.35 || subG > 0.55 {
		t.Errorf("GTC sub-MB share = %v, want ~0.45", subG)
	}
	if midG < 0.05 || midG > 0.2 {
		t.Errorf("GTC 10-20MB share = %v, want ~0.09", midG)
	}
	_, _, _, overL := SizeDistribution(LAMMPSRhodo())
	if overL < 0.2 || overL > 0.35 {
		t.Errorf("LAMMPS over-100MB share = %v, want ~0.25", overL)
	}
	_, _, _, overC := SizeDistribution(CM1())
	if overC >= 0.05 {
		t.Errorf("CM1 over-100MB share = %v, want < 0.05", overC)
	}
}

func TestScaledTo(t *testing.T) {
	spec := GTC().ScaledTo(100 * mem.MB)
	got := spec.CheckpointSize()
	if math.Abs(float64(got)-float64(100*mem.MB)) > float64(mem.MB) {
		t.Fatalf("scaled size = %d, want ~100MB", got)
	}
	if len(spec.Chunks) != len(GTC().Chunks) {
		t.Fatal("scaling changed chunk count")
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"gtc", "lammps-rhodo", "cm1"} {
		if _, ok := SpecByName(name); !ok {
			t.Errorf("SpecByName(%q) not found", name)
		}
	}
	if _, ok := SpecByName("nope"); ok {
		t.Error("SpecByName(nope) found something")
	}
}

func newStore(e *sim.Env) *core.Store {
	k := nvmkernel.New(e, mem.NewDRAM(e, 32*mem.GB), mem.NewPCM(e, 16*mem.GB))
	return core.NewStore(k.Attach("rank0"), core.Options{})
}

func TestSetupAllocatesAndInitializes(t *testing.T) {
	e := sim.NewEnv()
	s := newStore(e)
	e.Go("app", func(p *sim.Proc) {
		app, err := Setup(p, s, GTC())
		if err != nil {
			t.Error(err)
			return
		}
		if len(app.Chunks) != len(GTC().Chunks) {
			t.Errorf("chunks = %d", len(app.Chunks))
		}
		if got := s.CheckpointSize(); got != GTC().CheckpointSize() {
			t.Errorf("store checkpoint size = %d", got)
		}
		// All chunks are dirty after init: first checkpoint moves everything.
		if n := len(s.DirtyLocal()); n != len(app.Chunks) {
			t.Errorf("dirty after init = %d", n)
		}
	})
	e.Run()
}

func TestIterateTakesIterTimeAndModifies(t *testing.T) {
	e := sim.NewEnv()
	s := newStore(e)
	e.Go("app", func(p *sim.Proc) {
		spec := GTC()
		app, err := Setup(p, s, spec)
		if err != nil {
			t.Error(err)
			return
		}
		s.ChkptAll(p) // clean slate
		start := p.Now()
		if err := app.Iterate(p); err != nil {
			t.Error(err)
			return
		}
		elapsed := p.Now() - start
		// Compute time plus small fault overhead; no comm wired.
		if elapsed < spec.IterTime || elapsed > spec.IterTime+time.Second {
			t.Errorf("iteration took %v, want ~%v", elapsed, spec.IterTime)
		}
		// Init-only chunk must stay clean; the rest are dirty again.
		if s.ChunkByName("grid-static").Dirty() {
			t.Error("init-only chunk dirtied by iteration")
		}
		if s.ChunkByName("electrons").Dirty() == false {
			t.Error("per-iteration chunk not dirtied")
		}
		if app.Iterations != 1 {
			t.Errorf("Iterations = %d", app.Iterations)
		}
	})
	e.Run()
}

func TestIterateCommBurstsWired(t *testing.T) {
	e := sim.NewEnv()
	s := newStore(e)
	e.Go("app", func(p *sim.Proc) {
		spec := CM1()
		app, err := Setup(p, s, spec)
		if err != nil {
			t.Error(err)
			return
		}
		var sent int64
		var bursts int
		app.Comm = func(p *sim.Proc, n int64) {
			sent += n
			bursts++
		}
		app.Iterate(p)
		if bursts != DefaultCommOps {
			t.Errorf("comm exchanges = %d, want %d", bursts, DefaultCommOps)
		}
		per := spec.CommPerIter / DefaultCommOps
		if sent != per*DefaultCommOps {
			t.Errorf("sent = %d, want ~%d", sent, spec.CommPerIter)
		}
	})
	e.Run()
}

func TestHotChunkModifiedThreeTimesPerIteration(t *testing.T) {
	e := sim.NewEnv()
	s := newStore(e)
	e.Go("app", func(p *sim.Proc) {
		app, err := Setup(p, s, LAMMPSRhodo())
		if err != nil {
			t.Error(err)
			return
		}
		hot := s.ChunkByName("x-positions")
		before := hot.ModCount
		// Keep protection armed so each episode is observable.
		s.OnModify(func(c *core.Chunk) { c.DeferProtect() })
		hot.Protect(p)
		app.Iterate(p)
		if got := hot.ModCount - before; got != 3 {
			t.Errorf("hot chunk episodes = %d, want 3 (Figure 6's C3)", got)
		}
	})
	e.Run()
}

func TestAMRChunksGrowAcrossIterations(t *testing.T) {
	e := sim.NewEnv()
	s := newStore(e)
	e.Go("app", func(p *sim.Proc) {
		spec := AMR()
		spec.CommPerIter = 0
		spec.IterTime = 2 * time.Second
		app, err := Setup(p, s, spec)
		if err != nil {
			t.Error(err)
			return
		}
		before := s.CheckpointSize()
		for i := 0; i < 3; i++ {
			if err := app.Iterate(p); err != nil {
				t.Error(err)
				return
			}
			st := s.ChkptAll(p)
			if st.ChunksCopied == 0 {
				t.Error("grown chunks not recheckpointed")
			}
		}
		after := s.CheckpointSize()
		// 8 patches grew 1.15^3 ≈ 1.52x; the two static chunks did not.
		if after <= before {
			t.Fatalf("checkpoint size did not grow: %d -> %d", before, after)
		}
		patch := s.ChunkByName("patch-0")
		growth := 1.15 * 1.15 * 1.15 * 0.99
		wantMin := int64(float64(24*mem.MB) * growth)
		if patch.Size < wantMin {
			t.Fatalf("patch-0 size = %d, want >= %d after 3 refinements", patch.Size, wantMin)
		}
		if s.ChunkByName("grid-topology").Size != 48*mem.MB {
			t.Fatal("static chunk size changed")
		}
	})
	e.Run()
}

func TestAMRAvailableByName(t *testing.T) {
	if _, ok := SpecByName("amr"); !ok {
		t.Fatal("amr spec not retrievable by name")
	}
}

func TestMADBenchRamdiskSlowerAndNoisier(t *testing.T) {
	const cores = 12
	const size = 100 * mem.MB
	e1 := sim.NewEnv()
	fsRes := MADBenchRamdisk(e1, mem.NewDRAM(e1, 64*mem.GB), cores, size)
	e2 := sim.NewEnv()
	memRes := MADBenchMemory(e2, mem.NewDRAM(e2, 64*mem.GB), cores, size)

	if fsRes.CheckpointT <= memRes.CheckpointT {
		t.Fatalf("ramdisk %v not slower than memory %v", fsRes.CheckpointT, memRes.CheckpointT)
	}
	syncRatio := float64(fsRes.SyncCalls) / float64(memRes.SyncCalls)
	if syncRatio < 2 {
		t.Fatalf("sync-call ratio = %.1f, want ~3x", syncRatio)
	}
	if fsRes.LockWait <= memRes.LockWait {
		t.Fatalf("ramdisk lock wait %v not above memory %v", fsRes.LockWait, memRes.LockWait)
	}
}

func TestMADBenchGapWidensWithSize(t *testing.T) {
	slowdown := func(size int64) float64 {
		e1 := sim.NewEnv()
		fs := MADBenchRamdisk(e1, mem.NewDRAM(e1, 64*mem.GB), 12, size)
		e2 := sim.NewEnv()
		m := MADBenchMemory(e2, mem.NewDRAM(e2, 64*mem.GB), 12, size)
		return float64(fs.CheckpointT-m.CheckpointT) / float64(m.CheckpointT)
	}
	small := slowdown(50 * mem.MB)
	large := slowdown(300 * mem.MB)
	if large < small-0.05 {
		t.Fatalf("slowdown shrank with size: %v -> %v", small, large)
	}
	// Paper: 46% slower at 300MB/core.
	if large < 0.25 || large > 0.7 {
		t.Fatalf("300MB slowdown = %.0f%%, want in the tens of percent (~46%%)", large*100)
	}
}

func TestParallelMemcpyPerCoreDrop(t *testing.T) {
	res := MemcpySweep([]int{1, 2, 4, 8, 12}, 33*mem.MB)
	if len(res) != 5 {
		t.Fatal("sweep size")
	}
	for i := 1; i < len(res); i++ {
		if res[i].PerCoreBW > res[i-1].PerCoreBW {
			t.Fatalf("per-core BW increased from %d to %d procs", res[i-1].Procs, res[i].Procs)
		}
	}
	drop := 1 - res[4].PerCoreBW/res[0].PerCoreBW
	// Figure 4: ~67% per-core drop at 12 processes.
	if drop < 0.55 || drop > 0.75 {
		t.Fatalf("per-core drop at 12 procs = %.0f%%, want ~67%%", drop*100)
	}
}
