package workload

import (
	"fmt"

	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
)

// MemcpyResult is one LANL parallel-memcpy measurement point (Figure 4).
type MemcpyResult struct {
	Procs     int
	Size      int64   // bytes copied per process
	PerCoreBW float64 // effective bytes/sec per process
	TotalBW   float64 // aggregate bytes/sec
}

// ParallelMemcpy measures the effective per-core copy bandwidth when procs
// processes each copy size bytes concurrently through the DRAM device —
// the LANL parallel memcpy benchmark the paper uses both for Figure 4 and to
// calibrate its NVM-emulation delays.
func ParallelMemcpy(env *sim.Env, dram *mem.Device, procs int, size int64) MemcpyResult {
	start := env.Now()
	for i := 0; i < procs; i++ {
		env.Go(fmt.Sprintf("memcpy-%d", i), func(p *sim.Proc) {
			dram.WriteBytes(p, size)
		})
	}
	env.Run()
	elapsed := (env.Now() - start).Seconds()
	per := 0.0
	if elapsed > 0 {
		per = float64(size) / elapsed
	}
	return MemcpyResult{
		Procs:     procs,
		Size:      size,
		PerCoreBW: per,
		TotalBW:   per * float64(procs),
	}
}

// MemcpySweep runs ParallelMemcpy for each process count on a DRAM device
// whose contention coefficient reflects the copy size (small copies are
// partially cache-absorbed, so they contend less — the size dependence
// visible in Figure 4).
func MemcpySweep(procCounts []int, size int64) []MemcpyResult {
	out := make([]MemcpyResult, 0, len(procCounts))
	beta := mem.DRAMBetaForCopySize(size)
	for _, n := range procCounts {
		env := sim.NewEnv()
		dram := mem.NewDRAMWithBeta(env, 64*mem.GB, beta)
		out = append(out, ParallelMemcpy(env, dram, n, size))
	}
	return out
}
