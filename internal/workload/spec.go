// Package workload provides synthetic versions of the paper's three
// evaluation applications — GTC, LAMMPS (Rhodo suite), and CM1 — plus the
// MADBench2-style I/O driver of the Section IV motivation experiment and the
// LANL parallel-memcpy benchmark behind Figure 4.
//
// Each application is a chunk-set specification (sizes following the Table IV
// distribution shapes) and a per-iteration modification schedule: which
// chunks are written at which fraction of the compute interval. The schedule
// is what drives pre-copy behaviour — init-only chunks (GTC's large arrays
// written once at startup), mid-iteration chunks, and hot chunks that keep
// changing until the end of the iteration (LAMMPS's 3D result array,
// Figure 6) all come from the paper's own characterization.
package workload

import (
	"fmt"
	"sort"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/mem"
	"nvmcp/internal/sim"
	"nvmcp/internal/stats"
)

// ChunkSpec describes one checkpoint variable of an application.
type ChunkSpec struct {
	Name string
	Size int64
	// ModPhases lists the fractions of the compute interval (in (0,1])
	// at which the chunk is modified each iteration. Empty plus InitOnly
	// means the chunk is written once during setup and never again.
	ModPhases []float64
	// InitOnly chunks are written during initialization only.
	InitOnly bool
	// GrowthPerIter, when > 1, grows the chunk by this factor every
	// iteration via NVRealloc — the adaptive-mesh case whose checkpoint
	// size is not statically known.
	GrowthPerIter float64
}

// AppSpec describes a synthetic application (per rank).
type AppSpec struct {
	Name string
	// Chunks is the per-rank checkpoint variable set.
	Chunks []ChunkSpec
	// IterTime is the pure-compute duration of one iteration.
	IterTime time.Duration
	// CommPerIter is how many bytes each rank sends to its neighbour per
	// iteration (application communication, spread over CommPhases).
	CommPerIter int64
	// CommPhases are the interval fractions at which communication
	// exchanges occur (defaults to DefaultCommOps evenly spread points
	// when CommPerIter > 0).
	CommPhases []float64
	// ShiftIter, when > 0 with ShiftExtraMods, changes the write behaviour
	// from that (0-based) iteration on: every non-init chunk gains
	// ShiftExtraMods extra late-interval modification phases per iteration.
	// Late writes land after pre-copy staging, so the re-dirty rate jumps —
	// a deterministic workload phase change for exercising the drift
	// observatory's phase detector.
	ShiftIter      int64
	ShiftExtraMods int
}

// DefaultCommOps is the default number of communication exchanges per
// iteration when a spec sets CommPerIter without explicit phases.
const DefaultCommOps = 12

// CheckpointSize returns the total persistent data per rank.
func (s AppSpec) CheckpointSize() int64 {
	var total int64
	for _, c := range s.Chunks {
		total += c.Size
	}
	return total
}

// Scaled returns a copy of the spec with every chunk size multiplied by
// factor (chunk counts and schedules unchanged), for experiments that pin the
// per-rank checkpoint volume.
func (s AppSpec) Scaled(factor float64) AppSpec {
	out := s
	out.Chunks = make([]ChunkSpec, len(s.Chunks))
	for i, c := range s.Chunks {
		c.Size = int64(float64(c.Size) * factor)
		if c.Size < 1 {
			c.Size = 1
		}
		out.Chunks[i] = c
	}
	return out
}

// ScaledTo returns the spec scaled so the per-rank checkpoint size is
// approximately total bytes.
func (s AppSpec) ScaledTo(total int64) AppSpec {
	return s.Scaled(float64(total) / float64(s.CheckpointSize()))
}

// GTC builds the Gyrokinetic Toroidal Code profile: a few very large 2D
// particle arrays (electrons, ions) rewritten every iteration, one large
// grid written only at initialization (the paper's observed checkpoint-size
// reduction), one mid-size array, and several small diagnostic arrays.
// Natural checkpoint size ≈ 430 MB/rank; count distribution follows
// Table IV's GTC row (~45% sub-MB, ~9% 10-20MB, ~45% above 100MB).
func GTC() AppSpec {
	chunks := []ChunkSpec{
		{Name: "electrons", Size: 104 * mem.MB, ModPhases: []float64{0.45}},
		{Name: "ions", Size: 104 * mem.MB, ModPhases: []float64{0.5}},
		{Name: "zion", Size: 104 * mem.MB, ModPhases: []float64{0.55}},
		{Name: "grid-static", Size: 104 * mem.MB, InitOnly: true},
		{Name: "fieldtime", Size: 12 * mem.MB, ModPhases: []float64{0.6}},
		{Name: "diag-flux", Size: 800 * mem.KB, ModPhases: []float64{0.3}},
		{Name: "diag-mode", Size: 800 * mem.KB, ModPhases: []float64{0.35}},
		{Name: "diag-hist", Size: 800 * mem.KB, ModPhases: []float64{0.4, 0.8}},
		{Name: "diag-entropy", Size: 800 * mem.KB, ModPhases: []float64{0.7}},
	}
	return AppSpec{
		Name:        "gtc",
		Chunks:      chunks,
		IterTime:    40 * time.Second,
		CommPerIter: 768 * mem.MB, // communication intensive: ~25% of the iteration on the wire
	}
}

// LAMMPSRhodo builds the LAMMPS Rhodo(Spin) profile: a relatively large
// number of chunks modified across different application stages, including a
// hot 3D result array modified until the very end of each iteration — the
// chunk class that motivates DCPCP (Figure 6). Natural size ≈ 420 MB/rank;
// count distribution follows Table IV's LAMMPS row.
func LAMMPSRhodo() AppSpec {
	chunks := []ChunkSpec{
		// Hot: relative molecular positions, modified until iteration end.
		{Name: "x-positions", Size: 104 * mem.MB, ModPhases: []float64{0.2, 0.6, 0.95}},
		{Name: "velocities", Size: 104 * mem.MB, ModPhases: []float64{0.25, 0.65}},
		{Name: "forces", Size: 104 * mem.MB, ModPhases: []float64{0.3}},
		{Name: "neigh-list", Size: 56 * mem.MB, ModPhases: []float64{0.4}},
		{Name: "bond-table", Size: 56 * mem.MB, ModPhases: []float64{0.5, 0.9}},
		{Name: "angle-data", Size: 6 * mem.MB, ModPhases: []float64{0.35}},
		{Name: "dihedral", Size: 4 * mem.MB, ModPhases: []float64{0.45}},
		{Name: "improper", Size: 2 * mem.MB, ModPhases: []float64{0.55}},
		{Name: "molecule-map", Size: 2 * mem.MB, ModPhases: []float64{0.6}},
		{Name: "special-bonds", Size: 1536 * mem.KB, ModPhases: []float64{0.7}},
		{Name: "tag-array", Size: 800 * mem.KB, ModPhases: []float64{0.3}},
		{Name: "type-array", Size: 800 * mem.KB, ModPhases: []float64{0.8}},
	}
	return AppSpec{
		Name:        "lammps-rhodo",
		Chunks:      chunks,
		IterTime:    40 * time.Second,
		CommPerIter: 384 * mem.MB,
	}
}

// CM1 builds the CM1 3D hurricane-simulation profile: many small and
// mid-size chunks, almost nothing above 100 MB — which is why pre-copy buys
// CM1 little (< 5% in the paper): small chunks do not contend for NVM
// bandwidth long enough to matter. Natural size ≈ 400 MB/rank.
func CM1() AppSpec {
	var chunks []ChunkSpec
	for i := 0; i < 10; i++ {
		chunks = append(chunks, ChunkSpec{
			Name:      fmt.Sprintf("scalar-%d", i),
			Size:      720 * mem.KB,
			ModPhases: []float64{0.3 + 0.05*float64(i%5)},
		})
	}
	for i := 0; i < 13; i++ {
		chunks = append(chunks, ChunkSpec{
			Name:      fmt.Sprintf("field3d-%d", i),
			Size:      22 * mem.MB,
			ModPhases: []float64{0.35 + 0.04*float64(i%6)},
		})
	}
	chunks = append(chunks, ChunkSpec{
		Name: "restart-blob", Size: 105 * mem.MB, ModPhases: []float64{0.6},
	})
	return AppSpec{
		Name:        "cm1",
		Chunks:      chunks,
		IterTime:    40 * time.Second,
		CommPerIter: 256 * mem.MB,
	}
}

// AMR builds an adaptive-mesh-refinement-style profile: chunk sizes are not
// statically known and grow as the mesh refines — the application class the
// paper's nvattach/nvrealloc interfaces exist for ("in some applications,
// the checkpoint size cannot be statically determined"). GrowthPerIter is
// the per-iteration growth factor applied by App.Iterate via NVRealloc.
func AMR() AppSpec {
	var chunks []ChunkSpec
	for i := 0; i < 8; i++ {
		chunks = append(chunks, ChunkSpec{
			Name:      fmt.Sprintf("patch-%d", i),
			Size:      24 * mem.MB,
			ModPhases: []float64{0.3 + 0.05*float64(i%6)},
			// Refining patches grow 15% per iteration.
			GrowthPerIter: 1.15,
		})
	}
	chunks = append(chunks,
		ChunkSpec{Name: "grid-topology", Size: 48 * mem.MB, ModPhases: []float64{0.5}},
		ChunkSpec{Name: "boundary", Size: 8 * mem.MB, ModPhases: []float64{0.4, 0.8}},
	)
	return AppSpec{
		Name:        "amr",
		Chunks:      chunks,
		IterTime:    40 * time.Second,
		CommPerIter: 256 * mem.MB,
	}
}

// Specs returns all three paper application profiles (AMR, an extension, is
// retrievable by name).
func Specs() []AppSpec { return []AppSpec{GTC(), LAMMPSRhodo(), CM1()} }

// SpecByName returns the named profile, or false.
func SpecByName(name string) (AppSpec, bool) {
	for _, s := range append(Specs(), AMR()) {
		if s.Name == name {
			return s, true
		}
	}
	return AppSpec{}, false
}

// TableIVBuckets are the paper's chunk-size histogram edges.
var TableIVBuckets = []float64{
	500 * 1024,      // 500 KB
	float64(mem.MB), // 1 MB
	10 * float64(mem.MB),
	20 * float64(mem.MB),
	50 * float64(mem.MB),
	100 * float64(mem.MB),
	100 * float64(mem.GB), // open top
}

// SizeDistribution returns the share (by chunk count) of an application's
// chunks falling into the paper's Table IV ranges: 500K-1MB, 10-20MB,
// 50-100MB, and above 100MB.
func SizeDistribution(spec AppSpec) (subMB, mid10to20, mid50to100, over100 float64) {
	h := stats.NewHistogram(TableIVBuckets)
	for _, c := range spec.Chunks {
		h.Add(float64(c.Size))
	}
	n := float64(len(spec.Chunks))
	if n == 0 {
		return 0, 0, 0, 0
	}
	return float64(h.Counts[0]) / n, // [500K, 1MB)
		float64(h.Counts[2]) / n, // [10MB, 20MB)
		float64(h.Counts[4]) / n, // [50MB, 100MB)
		float64(h.Counts[5]) / n // [100MB, ...)
}

// App is a rank-level instance of a spec bound to a checkpoint store.
type App struct {
	Spec   AppSpec
	Store  *core.Store
	Chunks []*core.Chunk
	// Comm, when set, is invoked for each communication burst with the
	// number of bytes to send; the cluster wires it to the fabric.
	Comm func(p *sim.Proc, bytes int64)
	// Iterations counts completed Iterate calls.
	Iterations int64
}

// writeSeedStride spaces the per-iteration write-seed bands far apart so an
// iteration's seeds never collide with another's (or with the Setup writes,
// which use the chunk's own small auto-incremented sequence).
const writeSeedStride = 1 << 16

// SyncIteration aligns the iteration counter after a restart, so Iterate's
// seeded writes replay exactly the sequence the original iteration produced.
func (a *App) SyncIteration(iter int64) { a.Iterations = iter }

// Setup allocates every chunk of the spec through the Table III interface
// and performs the initialization writes (including init-only chunks).
func Setup(p *sim.Proc, store *core.Store, spec AppSpec) (*App, error) {
	a := &App{Spec: spec, Store: store}
	for _, cs := range spec.Chunks {
		c, err := store.NVAlloc(p, cs.Name, cs.Size, true)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
		}
		if !c.Restored {
			if err := c.WriteAll(p); err != nil {
				return nil, err
			}
		}
		a.Chunks = append(a.Chunks, c)
	}
	return a, nil
}

// iterEvent is one scheduled action within an iteration.
type iterEvent struct {
	phase float64
	chunk int   // -1 for communication
	bytes int64 // communication bytes
}

// Iterate runs one compute interval: the rank sleeps through compute,
// touching each chunk at its modification phases and sending communication
// bursts at the spec's comm phases.
func (a *App) Iterate(p *sim.Proc) error {
	var events []iterEvent
	for i, cs := range a.Spec.Chunks {
		if cs.InitOnly {
			continue
		}
		for _, ph := range cs.ModPhases {
			events = append(events, iterEvent{phase: ph, chunk: i})
		}
	}
	if extra := a.Spec.ShiftExtraMods; extra > 0 && a.Spec.ShiftIter > 0 && a.Iterations >= a.Spec.ShiftIter {
		// Post-shift regime: pile extra writes into the tail of the interval.
		for i, cs := range a.Spec.Chunks {
			if cs.InitOnly {
				continue
			}
			for j := 0; j < extra; j++ {
				ph := 1 - 0.15*float64(j+1)/float64(extra+1)
				events = append(events, iterEvent{phase: ph, chunk: i})
			}
		}
	}
	if a.Spec.CommPerIter > 0 && a.Comm != nil {
		phases := a.Spec.CommPhases
		if len(phases) == 0 {
			// MPI codes exchange throughout the iteration, not in a few
			// lumps: default to DefaultCommOps evenly spread exchanges.
			for i := 0; i < DefaultCommOps; i++ {
				phases = append(phases, (float64(i)+0.5)/DefaultCommOps)
			}
		}
		per := a.Spec.CommPerIter / int64(len(phases))
		for _, ph := range phases {
			events = append(events, iterEvent{phase: ph, chunk: -1, bytes: per})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].phase < events[j].phase })

	now := 0.0
	writes := 0
	for _, ev := range events {
		if ev.phase > now {
			p.Sleep(time.Duration((ev.phase - now) * float64(a.Spec.IterTime)))
			now = ev.phase
		}
		if ev.chunk >= 0 {
			// Seed each write from (iteration, write index) so a replayed
			// iteration after a restart regenerates byte-identical chunk
			// contents regardless of which tier recovered the chunk.
			a.Chunks[ev.chunk].SeedWrites(uint64(a.Iterations)*writeSeedStride + uint64(writes))
			writes++
			if err := a.Chunks[ev.chunk].WriteAll(p); err != nil {
				return err
			}
		} else {
			a.Comm(p, ev.bytes)
		}
	}
	if now < 1 {
		p.Sleep(time.Duration((1 - now) * float64(a.Spec.IterTime)))
	}
	// Mesh refinement: growing chunks are reallocated at iteration end.
	for i, cs := range a.Spec.Chunks {
		if cs.GrowthPerIter > 1 {
			newSize := int64(float64(a.Chunks[i].Size) * cs.GrowthPerIter)
			if err := a.Store.NVRealloc(p, a.Chunks[i], newSize); err != nil {
				return err
			}
		}
	}
	a.Iterations++
	return nil
}
