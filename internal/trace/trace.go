// Package trace records virtual-time measurements — step-function timelines
// of bandwidth use, busy-time meters for helper-core utilization, and named
// counters — and renders them as the tables and series the experiments print.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Timeline records a step function of a measurement over virtual time, fed
// by calls to Set (e.g. from a resource.Pipe rate listener). Values hold
// until the next Set.
type Timeline struct {
	times  []time.Duration
	values []float64
}

// Set appends a step: from t onward the value is v. Calls must come with
// non-decreasing t; a Set at an existing timestamp overwrites the step.
func (tl *Timeline) Set(t time.Duration, v float64) {
	n := len(tl.times)
	if n > 0 && t < tl.times[n-1] {
		panic("trace: timeline set in the past")
	}
	if n > 0 && tl.times[n-1] == t {
		tl.values[n-1] = v
		return
	}
	tl.times = append(tl.times, t)
	tl.values = append(tl.values, v)
}

// Len returns the number of recorded steps.
func (tl *Timeline) Len() int { return len(tl.times) }

// At returns the value in effect at time t (0 before the first step).
func (tl *Timeline) At(t time.Duration) float64 {
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
	if i == 0 {
		return 0
	}
	return tl.values[i-1]
}

// Window returns the step function restricted to [start, end): the value in
// effect at start (stamped at start itself), followed by every step strictly
// inside the range. An empty or inverted range returns nil slices. The
// returned slices are fresh copies — callers may mutate them.
func (tl *Timeline) Window(start, end time.Duration) ([]time.Duration, []float64) {
	if end <= start {
		return nil, nil
	}
	// First step strictly after start; the entry before it (if any) is the
	// value in effect at start.
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > start })
	times := []time.Duration{start}
	values := []float64{0}
	if i > 0 {
		values[0] = tl.values[i-1]
	}
	for ; i < len(tl.times) && tl.times[i] < end; i++ {
		times = append(times, tl.times[i])
		values = append(values, tl.values[i])
	}
	return times, values
}

// Max returns the largest recorded step value.
func (tl *Timeline) Max() float64 {
	m := 0.0
	for _, v := range tl.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Integral returns the integral of the step function over [0, end] — for a
// bandwidth timeline this is total bytes moved by end.
func (tl *Timeline) Integral(end time.Duration) float64 {
	total := 0.0
	for i, t0 := range tl.times {
		if t0 >= end {
			break
		}
		t1 := end
		if i+1 < len(tl.times) && tl.times[i+1] < end {
			t1 = tl.times[i+1]
		}
		total += tl.values[i] * (t1 - t0).Seconds()
	}
	return total
}

// Buckets integrates the step function into fixed-width buckets covering
// [0, end), returning one integral per bucket — e.g. bytes transferred per
// 10-second window, the quantity Figure 10 plots.
func (tl *Timeline) Buckets(end, width time.Duration) []float64 {
	if width <= 0 {
		panic("trace: bucket width must be positive")
	}
	n := int((end + width - 1) / width)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := time.Duration(i) * width
		hi := lo + width
		if hi > end {
			hi = end
		}
		out[i] = tl.Integral(hi) - tl.Integral(lo)
	}
	return out
}

// DiffBuckets treats the timeline as a cumulative counter (each Set records
// a new running total) and returns per-bucket increments over [0, end) —
// e.g. bytes transferred per window from a cumulative-bytes series.
func (tl *Timeline) DiffBuckets(end, width time.Duration) []float64 {
	if width <= 0 {
		panic("trace: bucket width must be positive")
	}
	n := int((end + width - 1) / width)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := time.Duration(i) * width
		hi := lo + width
		if hi > end {
			hi = end
		}
		out[i] = tl.At(hi) - tl.At(lo)
	}
	return out
}

// PeakDiffBucket returns the maximum DiffBuckets increment and its index.
func (tl *Timeline) PeakDiffBucket(end, width time.Duration) (peak float64, idx int) {
	for i, v := range tl.DiffBuckets(end, width) {
		if v > peak {
			peak = v
			idx = i
		}
	}
	return peak, idx
}

// PeakBucket returns the maximum bucket integral and its index.
func (tl *Timeline) PeakBucket(end, width time.Duration) (peak float64, idx int) {
	for i, v := range tl.Buckets(end, width) {
		if v > peak {
			peak = v
			idx = i
		}
	}
	return peak, idx
}

// Meter accumulates busy time for a simulated worker (e.g. the checkpoint
// helper core), from paired Start/Stop calls in virtual time.
type Meter struct {
	busy    time.Duration
	started bool
	since   time.Duration
}

// Start marks the worker busy from time t. Starting an already-started
// meter panics — it means the instrumentation is wrong.
func (m *Meter) Start(t time.Duration) {
	if m.started {
		panic("trace: meter started twice")
	}
	m.started = true
	m.since = t
}

// Stop marks the worker idle from time t.
func (m *Meter) Stop(t time.Duration) {
	if !m.started {
		panic("trace: meter stopped while idle")
	}
	m.busy += t - m.since
	m.started = false
}

// Busy returns accumulated busy time, including a still-open interval up to now.
func (m *Meter) Busy(now time.Duration) time.Duration {
	if m.started {
		return m.busy + (now - m.since)
	}
	return m.busy
}

// Utilization returns busy time as a fraction of total elapsed time.
func (m *Meter) Utilization(now time.Duration) float64 {
	if now <= 0 {
		return 0
	}
	return float64(m.Busy(now)) / float64(now)
}

// Counters is a set of named int64 counters.
type Counters struct {
	m map[string]int64
}

// Add increments counter name by delta, creating it if needed.
func (c *Counters) Add(name string, delta int64) {
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Get returns the value of counter name (0 if absent).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table is a simple fixed-column text table for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
}

// FmtBytes renders a byte count with binary units and the IEC unit names
// that match the 2^10 divisors, e.g. "410.0 MiB".
func FmtBytes(b float64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case b >= gib:
		return fmt.Sprintf("%.2f GiB", b/gib)
	case b >= mib:
		return fmt.Sprintf("%.1f MiB", b/mib)
	case b >= kib:
		return fmt.Sprintf("%.1f KiB", b/kib)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// FmtRate renders a bytes/sec rate, e.g. "412.5 MiB/s".
func FmtRate(r float64) string { return FmtBytes(r) + "/s" }

// FmtPct renders a fraction as a percentage, e.g. "46.2%".
func FmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
