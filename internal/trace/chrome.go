package trace

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// SpanRecorder collects timeline spans and instants from a simulation run
// and serializes them in the Chrome trace-event format, viewable in
// chrome://tracing or Perfetto. Virtual times map directly onto the trace's
// microsecond timestamps.
type SpanRecorder struct {
	events []chromeEvent
	names  map[int]string // pid -> process name
}

type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"` // microseconds
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{names: make(map[int]string)}
}

// NameProcess labels a pid lane (e.g. "node0") in the viewer.
func (r *SpanRecorder) NameProcess(pid int, name string) {
	if r == nil {
		return
	}
	r.names[pid] = name
}

// Span records a completed interval on (pid, tid).
func (r *SpanRecorder) Span(name, cat string, pid, tid int, start, dur time.Duration, args map[string]string) {
	if r == nil {
		return
	}
	r.events = append(r.events, chromeEvent{
		Name: name, Cat: cat, Phase: "X",
		TS: start.Microseconds(), Dur: dur.Microseconds(),
		PID: pid, TID: tid, Args: args,
	})
}

// Instant records a point event on (pid, tid).
func (r *SpanRecorder) Instant(name, cat string, pid, tid int, at time.Duration, args map[string]string) {
	if r == nil {
		return
	}
	r.events = append(r.events, chromeEvent{
		Name: name, Cat: cat, Phase: "i",
		TS:  at.Microseconds(),
		PID: pid, TID: tid, Args: args,
	})
}

// Len returns the number of recorded events.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// WriteChrome emits the trace as Chrome trace-event JSON (the
// {"traceEvents": [...]} object form).
func (r *SpanRecorder) WriteChrome(w io.Writer) error {
	events := append([]chromeEvent(nil), r.events...)
	// Metadata events name the process lanes.
	pids := make([]int, 0, len(r.names))
	for pid := range r.names {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]string{"name": r.names[pid]},
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
