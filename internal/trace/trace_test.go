package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestTimelineAtAndMax(t *testing.T) {
	var tl Timeline
	tl.Set(0, 0)
	tl.Set(time.Second, 100)
	tl.Set(3*time.Second, 50)
	tl.Set(5*time.Second, 0)
	if v := tl.At(500 * time.Millisecond); v != 0 {
		t.Fatalf("At(0.5s) = %v, want 0", v)
	}
	if v := tl.At(2 * time.Second); v != 100 {
		t.Fatalf("At(2s) = %v, want 100", v)
	}
	if v := tl.At(10 * time.Second); v != 0 {
		t.Fatalf("At(10s) = %v, want 0", v)
	}
	if m := tl.Max(); m != 100 {
		t.Fatalf("Max = %v, want 100", m)
	}
}

func TestTimelineOverwriteSameInstant(t *testing.T) {
	var tl Timeline
	tl.Set(time.Second, 10)
	tl.Set(time.Second, 20)
	if tl.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after overwrite", tl.Len())
	}
	if v := tl.At(time.Second); v != 20 {
		t.Fatalf("At = %v, want 20", v)
	}
}

func TestTimelinePastSetPanics(t *testing.T) {
	var tl Timeline
	tl.Set(2*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Set in the past did not panic")
		}
	}()
	tl.Set(time.Second, 2)
}

func TestTimelineIntegral(t *testing.T) {
	var tl Timeline
	tl.Set(0, 10)            // 10 B/s for 2s = 20
	tl.Set(2*time.Second, 0) // idle 2s
	tl.Set(4*time.Second, 5) // 5 B/s for 1s = 5
	tl.Set(5*time.Second, 0)
	if got := tl.Integral(5 * time.Second); !almost(got, 25) {
		t.Fatalf("Integral(5s) = %v, want 25", got)
	}
	if got := tl.Integral(time.Second); !almost(got, 10) {
		t.Fatalf("Integral(1s) = %v, want 10", got)
	}
	if got := tl.Integral(0); !almost(got, 0) {
		t.Fatalf("Integral(0) = %v, want 0", got)
	}
}

func TestTimelineBucketsAndPeak(t *testing.T) {
	var tl Timeline
	tl.Set(0, 0)
	tl.Set(time.Second, 100) // burst in second bucket
	tl.Set(2*time.Second, 0)
	buckets := tl.Buckets(4*time.Second, time.Second)
	want := []float64{0, 100, 0, 0}
	for i := range want {
		if !almost(buckets[i], want[i]) {
			t.Fatalf("Buckets = %v, want %v", buckets, want)
		}
	}
	peak, idx := tl.PeakBucket(4*time.Second, time.Second)
	if !almost(peak, 100) || idx != 1 {
		t.Fatalf("PeakBucket = (%v,%d), want (100,1)", peak, idx)
	}
}

func TestTimelinePartialLastBucket(t *testing.T) {
	var tl Timeline
	tl.Set(0, 10)
	buckets := tl.Buckets(2500*time.Millisecond, time.Second)
	if len(buckets) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(buckets))
	}
	if !almost(buckets[2], 5) {
		t.Fatalf("partial bucket = %v, want 5", buckets[2])
	}
}

func TestMeterUtilization(t *testing.T) {
	var m Meter
	m.Start(0)
	m.Stop(time.Second)
	m.Start(2 * time.Second)
	m.Stop(3 * time.Second)
	if b := m.Busy(4 * time.Second); b != 2*time.Second {
		t.Fatalf("Busy = %v, want 2s", b)
	}
	if u := m.Utilization(4 * time.Second); !almost(u, 0.5) {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
}

func TestMeterOpenInterval(t *testing.T) {
	var m Meter
	m.Start(time.Second)
	if b := m.Busy(3 * time.Second); b != 2*time.Second {
		t.Fatalf("open Busy = %v, want 2s", b)
	}
}

func TestMeterMisusePanics(t *testing.T) {
	var m Meter
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Stop while idle did not panic")
			}
		}()
		m.Stop(time.Second)
	}()
	m.Start(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Start did not panic")
			}
		}()
		m.Start(time.Second)
	}()
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Add("faults", 3)
	c.Add("faults", 2)
	c.Add("copies", 1)
	if c.Get("faults") != 5 {
		t.Fatalf("faults = %d, want 5", c.Get("faults"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "copies" || names[1] != "faults" {
		t.Fatalf("Names = %v", names)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"app", "time"}}
	tb.AddRow("gtc", "1.5s")
	tb.AddRow("lammps-long", "2s")
	var sb strings.Builder
	tb.Write(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "app") || !strings.Contains(lines[0], "time") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[3], "lammps-long") {
		t.Fatalf("bad row: %q", lines[3])
	}
}

func TestSpanRecorderChromeOutput(t *testing.T) {
	r := NewSpanRecorder()
	r.NameProcess(0, "node0")
	r.Span("iter 0", "compute", 0, 1, 2*time.Second, time.Second, nil)
	r.Instant("failure", "failure", 0, 0, 5*time.Second, map[string]string{"kind": "soft"})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	var sb strings.Builder
	if err := r.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 3 { // span + instant + process_name metadata
		t.Fatalf("events = %d, want 3", len(decoded.TraceEvents))
	}
	var span map[string]any
	for _, e := range decoded.TraceEvents {
		if e["ph"] == "X" {
			span = e
		}
	}
	if span == nil || span["ts"] != float64(2_000_000) || span["dur"] != float64(1_000_000) {
		t.Fatalf("span = %v", span)
	}
	// Events are time-ordered.
	last := float64(-1)
	for _, e := range decoded.TraceEvents {
		ts, _ := e["ts"].(float64)
		if ts < last {
			t.Fatal("events not time-sorted")
		}
		last = ts
	}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	r.Span("x", "c", 0, 0, 0, time.Second, nil) // must not panic
	r.Instant("y", "c", 0, 0, 0, nil)
	r.NameProcess(0, "n")
	if r.Len() != 0 {
		t.Fatal("nil recorder recorded something")
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1023, "1023 B"},
		{1024, "1.0 KiB"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
		{1536 << 10, "1.5 MiB"},
		{float64(5) * (1 << 30), "5.00 GiB"},
		{2560 << 20, "2.50 GiB"},
	}
	for _, c := range cases {
		if got := FmtBytes(c.in); got != c.want {
			t.Fatalf("FmtBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := FmtRate(2048); got != "2.0 KiB/s" {
		t.Fatalf("FmtRate = %q", got)
	}
	if got := FmtRate(float64(3) * (1 << 30)); got != "3.00 GiB/s" {
		t.Fatalf("FmtRate = %q", got)
	}
	if got := FmtPct(0.462); got != "46.2%" {
		t.Fatalf("FmtPct = %q", got)
	}
}

// TestTimelineSetEdgeCases pins Set's contract as a table: steps at strictly
// increasing times append, a Set at the same instant overwrites in place, and
// a NaN value is stored verbatim (the timeline is a dumb recorder; callers
// that cannot tolerate NaN must filter before Set). Sets in the past panic —
// that case is pinned separately in TestTimelinePastSetPanics, and the
// zero-width window panic in TestTimelineZeroWidthWindowPanics: both are
// intentional, since either would silently corrupt every derived series.
func TestTimelineSetEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		sets []struct {
			at time.Duration
			v  float64
		}
		wantLen int
		at      time.Duration
		want    float64
		wantNaN bool
	}{
		{
			name: "strictly increasing appends",
			sets: []struct {
				at time.Duration
				v  float64
			}{{0, 1}, {time.Second, 2}, {2 * time.Second, 3}},
			wantLen: 3, at: 90 * time.Minute, want: 3,
		},
		{
			name: "same instant overwrites",
			sets: []struct {
				at time.Duration
				v  float64
			}{{time.Second, 1}, {time.Second, 7}},
			wantLen: 2, at: time.Second, want: 7,
		},
		{
			name: "zero duration step",
			sets: []struct {
				at time.Duration
				v  float64
			}{{0, 5}},
			wantLen: 1, at: 0, want: 5,
		},
		{
			name: "NaN stored verbatim",
			sets: []struct {
				at time.Duration
				v  float64
			}{{time.Second, math.NaN()}},
			wantLen: 1, at: 2 * time.Second, wantNaN: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var tl Timeline
			if c.wantLen == 2 && len(c.sets) == 2 && c.sets[0].at == c.sets[1].at {
				// Overwrite case records one step plus a leading one so the
				// overwrite is observable as not-append.
				tl.Set(0, 0)
			}
			for _, s := range c.sets {
				tl.Set(s.at, s.v)
			}
			if tl.Len() != c.wantLen {
				t.Fatalf("Len = %d, want %d", tl.Len(), c.wantLen)
			}
			got := tl.At(c.at)
			if c.wantNaN {
				if !math.IsNaN(got) {
					t.Fatalf("At(%v) = %v, want NaN", c.at, got)
				}
				return
			}
			if got != c.want {
				t.Fatalf("At(%v) = %v, want %v", c.at, got, c.want)
			}
		})
	}
}

// TestTimelineZeroWidthWindowPanics documents that a zero (or negative)
// bucket width is a programming error, not an empty result: every bucketing
// helper panics rather than looping forever or returning garbage.
func TestTimelineZeroWidthWindowPanics(t *testing.T) {
	var tl Timeline
	tl.Set(0, 1)
	for name, call := range map[string]func(){
		"Buckets":     func() { tl.Buckets(time.Second, 0) },
		"DiffBuckets": func() { tl.DiffBuckets(time.Second, 0) },
		"negative":    func() { tl.DiffBuckets(time.Second, -time.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with zero/negative width did not panic", name)
				}
			}()
			call()
		}()
	}
}

// TestTimelineDiffBucketsExactEdges pins the windowing boundary convention:
// a cumulative step landing exactly on a bucket edge belongs to the earlier
// window (DiffBuckets samples At(edge), and At treats steps as effective at
// their own timestamp).
func TestTimelineDiffBucketsExactEdges(t *testing.T) {
	var tl Timeline
	tl.Set(0, 0)
	tl.Set(10*time.Second, 100) // exactly on the first bucket edge
	tl.Set(15*time.Second, 250)
	got := tl.DiffBuckets(20*time.Second, 10*time.Second)
	want := []float64{100, 150}
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}
