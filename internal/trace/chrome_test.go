package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeChrome round-trips WriteChrome output through encoding/json.
func decodeChrome(t *testing.T, r *SpanRecorder) []chromeEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc.TraceEvents
}

func TestWriteChromeRoundTrip(t *testing.T) {
	r := NewSpanRecorder()
	r.Span("iter 0", "compute", 1, 2, 30*time.Second, 10*time.Second,
		map[string]string{"k": "v"})
	r.Instant("remote trigger", "remote", 1, 2, 45*time.Second, nil)

	events := decodeChrome(t, r)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	span := events[0]
	if span.Name != "iter 0" || span.Cat != "compute" || span.Phase != "X" {
		t.Fatalf("span event mangled: %+v", span)
	}
	if span.PID != 1 || span.TID != 2 {
		t.Fatalf("span pid/tid = %d/%d, want 1/2", span.PID, span.TID)
	}
	if span.TS != 30_000_000 || span.Dur != 10_000_000 {
		t.Fatalf("span timestamps not in microseconds: ts=%d dur=%d", span.TS, span.Dur)
	}
	if span.Args["k"] != "v" {
		t.Fatalf("span args lost: %v", span.Args)
	}
	inst := events[1]
	if inst.Phase != "i" || inst.TS != 45_000_000 || inst.Dur != 0 {
		t.Fatalf("instant event mangled: %+v", inst)
	}
}

func TestWriteChromeOrdering(t *testing.T) {
	r := NewSpanRecorder()
	// Record deliberately out of time order; the writer must sort by TS.
	r.Span("late", "c", 0, 0, 20*time.Second, time.Second, nil)
	r.Span("early", "c", 0, 0, 5*time.Second, time.Second, nil)
	r.Instant("mid", "c", 0, 0, 10*time.Second, nil)

	events := decodeChrome(t, r)
	var last int64 = -1
	for _, ev := range events {
		if ev.TS < last {
			t.Fatalf("events not sorted by ts: %d after %d", ev.TS, last)
		}
		last = ev.TS
	}
	if events[0].Name != "early" || events[2].Name != "late" {
		t.Fatalf("unexpected order: %q, %q, %q", events[0].Name, events[1].Name, events[2].Name)
	}
}

func TestWriteChromePIDNaming(t *testing.T) {
	r := NewSpanRecorder()
	r.NameProcess(3, "node3")
	r.NameProcess(0, "node0")
	r.Span("work", "c", 3, 1, time.Second, time.Second, nil)

	events := decodeChrome(t, r)
	var metas []chromeEvent
	for _, ev := range events {
		if ev.Phase == "M" {
			metas = append(metas, ev)
		}
	}
	if len(metas) != 2 {
		t.Fatalf("got %d metadata events, want 2", len(metas))
	}
	// Metadata carries ts 0, so it sorts first, in pid order.
	if metas[0].PID != 0 || metas[0].Args["name"] != "node0" {
		t.Fatalf("first meta = %+v, want pid 0 node0", metas[0])
	}
	if metas[1].PID != 3 || metas[1].Args["name"] != "node3" {
		t.Fatalf("second meta = %+v, want pid 3 node3", metas[1])
	}
	for _, m := range metas {
		if m.Name != "process_name" {
			t.Fatalf("metadata event name = %q, want process_name", m.Name)
		}
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	events := decodeChrome(t, NewSpanRecorder())
	if len(events) != 0 {
		t.Fatalf("empty recorder produced %d events", len(events))
	}
}
