package interconnect

import (
	"math"
	"testing"
	"time"

	"nvmcp/internal/sim"
)

const mb = 1 << 20

func TestTransferTiming(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 100*mb) // 100 MB/s links for easy arithmetic
	var done time.Duration
	e.Go("w", func(p *sim.Proc) {
		f.Transfer(p, 0, 1, 50*mb, ClassCkpt, 0)
		done = p.Now()
	})
	e.Run()
	want := 500 * time.Millisecond
	if diff := (done - want).Abs(); diff > 5*time.Millisecond {
		t.Fatalf("50MB over 100MB/s link took %v, want ~%v", done, want)
	}
	if got := f.Bytes(ClassCkpt); math.Abs(got-50*mb) > 1 {
		t.Fatalf("ckpt bytes = %v", got)
	}
}

func TestLocalTransferIsFree(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	var done time.Duration = -1
	e.Go("w", func(p *sim.Proc) {
		f.Transfer(p, 1, 1, 500*mb, ClassCkpt, 0)
		done = p.Now()
	})
	e.Run()
	if done != 0 {
		t.Fatalf("node-local transfer took %v", done)
	}
	if f.Bytes(ClassCkpt) != 0 {
		t.Fatal("node-local transfer crossed the fabric")
	}
}

func TestAppAndCkptContendOnSameEgress(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	var appDone, alone time.Duration
	// Baseline: app alone.
	e.Go("app-alone", func(p *sim.Proc) {
		f.Send(p, 0, 1, 50*mb)
		alone = p.Now()
	})
	e.Run()

	e2 := sim.NewEnv()
	f2 := New(e2, 2, 100*mb)
	e2.Go("app", func(p *sim.Proc) {
		f2.Send(p, 0, 1, 50*mb)
		appDone = p.Now()
	})
	e2.Go("ckpt", func(p *sim.Proc) {
		f2.RDMAWrite(p, 0, 1, 50*mb, 0)
	})
	e2.Run()
	if appDone <= alone {
		t.Fatalf("checkpoint traffic did not slow the app: %v vs %v alone", appDone, alone)
	}
}

func TestRateCapLimitsContention(t *testing.T) {
	// A capped background checkpoint stream must hurt the app less than an
	// uncapped one — the essence of pre-copy's interconnect benefit.
	run := func(cap float64) time.Duration {
		e := sim.NewEnv()
		f := New(e, 2, 100*mb)
		var appDone time.Duration
		e.Go("app", func(p *sim.Proc) {
			f.Send(p, 0, 1, 50*mb)
			appDone = p.Now()
		})
		e.Go("ckpt", func(p *sim.Proc) {
			f.RDMAWrite(p, 0, 1, 100*mb, cap)
		})
		e.Run()
		return appDone
	}
	capped := run(10 * mb) // 10 MB/s background stream
	uncapped := run(0)
	if capped >= uncapped {
		t.Fatalf("capped stream (%v) should beat uncapped (%v) for the app", capped, uncapped)
	}
}

func TestDistinctNodesDoNotContend(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 3, 100*mb)
	var d0, d1 time.Duration
	e.Go("a", func(p *sim.Proc) { f.Send(p, 0, 2, 50*mb); d0 = p.Now() })
	e.Go("b", func(p *sim.Proc) { f.Send(p, 1, 2, 50*mb); d1 = p.Now() })
	e.Run()
	want := 500 * time.Millisecond
	for _, d := range []time.Duration{d0, d1} {
		if diff := (d - want).Abs(); diff > 5*time.Millisecond {
			t.Fatalf("independent senders took %v, want ~%v", d, want)
		}
	}
}

func TestSegmentationCountsSegments(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 1000*mb)
	f.Segment = 10 * mb
	e.Go("w", func(p *sim.Proc) { f.Transfer(p, 0, 1, 35*mb, ClassCkpt, 0) })
	e.Run()
	if got := f.Counters.Get("segments"); got != 4 {
		t.Fatalf("segments = %d, want 4 (10+10+10+5)", got)
	}
}

func TestCumulativeSeriesAndPeakWindow(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	e.Go("burst", func(p *sim.Proc) {
		p.Sleep(10 * time.Second)
		f.RDMAWrite(p, 0, 1, 100*mb, 0) // 1s burst at t=10s
	})
	e.Go("spread", func(p *sim.Proc) {
		f.RDMAWrite(p, 0, 1, 50*mb, 5*mb) // 5 MB/s for 10s from t=0
	})
	e.Run()
	end := e.Now()
	peak, idx := f.PeakCkptWindow(end, 5*time.Second)
	// Windows of 5s: [0,5):~25MB, [5,10):~25MB, [10,15): 100MB burst + tail.
	if idx != 2 {
		t.Fatalf("peak window index = %d, want 2 (the burst)", idx)
	}
	if peak < 90*mb {
		t.Fatalf("peak window = %v bytes, want ~100MB", peak)
	}
}

func TestPerClassAccounting(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	e.Go("w", func(p *sim.Proc) {
		f.Send(p, 0, 1, 10*mb)
		f.RDMAWrite(p, 0, 1, 20*mb, 0)
	})
	e.Run()
	if got := f.Counters.Get("bytes_app"); got != 10*mb {
		t.Fatalf("bytes_app = %d", got)
	}
	if got := f.Counters.Get("bytes_ckpt"); got != 20*mb {
		t.Fatalf("bytes_ckpt = %d", got)
	}
}

func TestIncastBoundedByReceiverIngress(t *testing.T) {
	// Four senders converge on node 4. Without ingress modeling each
	// finishes at its own egress rate (~1s); with it the receiver's link
	// is the bottleneck (~4s).
	run := func(modelIngress bool) time.Duration {
		e := sim.NewEnv()
		f := New(e, 5, 100*mb)
		f.ModelIngress = modelIngress
		for i := 0; i < 4; i++ {
			src := i
			e.Go("tx", func(p *sim.Proc) {
				f.RDMAWrite(p, src, 4, 100*mb, 0)
			})
		}
		e.Run()
		return e.Now()
	}
	without := run(false)
	with := run(true)
	if diff := (without - time.Second).Abs(); diff > 50*time.Millisecond {
		t.Fatalf("egress-only incast took %v, want ~1s", without)
	}
	if with < 3500*time.Millisecond || with > 4500*time.Millisecond {
		t.Fatalf("ingress-modeled incast took %v, want ~4s (receiver-bound)", with)
	}
}

func TestIngressPipeliningAddsLittleWhenUncontended(t *testing.T) {
	// A single point-to-point transfer with ingress modeling is pipelined:
	// total time ≈ egress time + one segment of ingress, not 2x.
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	f.ModelIngress = true
	var took time.Duration
	e.Go("tx", func(p *sim.Proc) {
		start := p.Now()
		f.RDMAWrite(p, 0, 1, 100*mb, 0)
		took = p.Now() - start
	})
	e.Run()
	// 100MB at 100MB/s = 1s + one 16MB segment tail (~0.16s).
	if took < time.Second || took > 1300*time.Millisecond {
		t.Fatalf("pipelined transfer took %v, want ~1.16s", took)
	}
}

func TestIngressReceiverReleasedOnSenderKill(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	f.ModelIngress = true
	victim := e.Go("tx", func(p *sim.Proc) {
		f.RDMAWrite(p, 0, 1, 1000*mb, 0)
	})
	e.Go("killer", func(p *sim.Proc) {
		p.Sleep(time.Second)
		victim.Kill()
	})
	e.Run() // must terminate: a stuck receiver would keep the queue alive
	if e.LiveProcs() != 0 {
		t.Fatalf("%d processes leaked after kill", e.LiveProcs())
	}
}

func TestCongestionPenaltyCapBounds(t *testing.T) {
	// A message squeezed brutally (tiny fair share under many uncapped
	// flows) must pay at most congestionPenaltyCap x its ideal time.
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	const hogs = 16
	for i := 0; i < hogs; i++ {
		e.Go("hog", func(p *sim.Proc) { f.RDMAWrite(p, 0, 1, 400*mb, 0) })
	}
	var appTook time.Duration
	e.Go("app", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // join the melee
		start := p.Now()
		f.Send(p, 0, 1, mb)
		appTook = p.Now() - start
	})
	e.Run()
	ideal := f.Egress(0).EstimateTime(mb) + f.Latency
	// Stretch factor: 17 flows share + capped penalty: bound generously.
	maxAllowed := time.Duration(float64(ideal) * (hogs + 1 + congestionPenaltyCap + 2))
	if appTook > maxAllowed {
		t.Fatalf("1MB send took %v, exceeds stretch+cap bound %v", appTook, maxAllowed)
	}
	if f.Counters.Get("congestion_events") == 0 {
		t.Fatal("no congestion event recorded")
	}
}

func TestAppSeriesTimeline(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	e.Go("w", func(p *sim.Proc) {
		f.Send(p, 0, 1, 10*mb)
		p.Sleep(time.Second)
		f.Send(p, 0, 1, 10*mb)
	})
	e.Run()
	series := f.Series(ClassApp)
	if series.Len() == 0 {
		t.Fatal("no app series recorded")
	}
	if got := series.At(e.Now()); math.Abs(got-20*mb) > 1 {
		t.Fatalf("cumulative app bytes = %v, want 20MB", got)
	}
}

func TestClassStringer(t *testing.T) {
	if ClassApp.String() != "app" || ClassCkpt.String() != "ckpt" {
		t.Fatal("class stringers wrong")
	}
}

func TestZeroAndNegativeSizesNoop(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, 2, 100*mb)
	e.Go("w", func(p *sim.Proc) {
		f.Transfer(p, 0, 1, 0, ClassApp, 0)
		f.Transfer(p, 0, 1, -5, ClassApp, 0)
	})
	e.Run()
	if f.Counters.Get("transfers") != 0 {
		t.Fatal("zero-size transfer was counted")
	}
	if e.Now() != 0 {
		t.Fatal("zero-size transfer consumed time")
	}
}
