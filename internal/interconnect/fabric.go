// Package interconnect models the cluster fabric: one full-duplex
// InfiniBand-class link per node into a non-blocking switch. Transfers are
// segmented RDMA operations charged against the sender's egress pipe, so
// asynchronous checkpoint traffic and application communication from the same
// node contend for bandwidth exactly as in the paper's Figures 9 and 10.
// Per-class cumulative-byte series feed the peak-interconnect-usage analysis.
package interconnect

import (
	"fmt"
	"time"

	"nvmcp/internal/obs"
	"nvmcp/internal/resource"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// LinkBW is the default per-node link bandwidth: 40 Gbps InfiniBand QDR
// delivers ~4 GB/s of data after encoding overhead.
const LinkBW = 4e9

// DefaultSegment is the RDMA message segmentation granularity; large
// transfers are pipelined in segments so tracing sees smooth progress.
const DefaultSegment = 16 << 20

// DefaultLatency is the per-segment injection latency.
const DefaultLatency = 2 * time.Microsecond

// Class labels traffic for accounting.
type Class int

const (
	// ClassApp is application communication (MPI traffic).
	ClassApp Class = iota
	// ClassCkpt is checkpoint data movement.
	ClassCkpt
	numClasses
)

func (c Class) String() string {
	if c == ClassCkpt {
		return "ckpt"
	}
	return "app"
}

// Fabric is the cluster interconnect.
type Fabric struct {
	env     *sim.Env
	egress  []*resource.Pipe
	ingress []*resource.Pipe
	Segment int64
	Latency time.Duration

	// ModelIngress additionally charges each segment against the
	// receiver's ingress pipe, pipelined one segment deep — so incast
	// (many senders converging on one node, e.g. parity-group commits)
	// is bounded by the receiver's link. Off by default: the evaluation's
	// buddy-pair patterns are egress-bound and the published calibrations
	// assume sender-side charging.
	ModelIngress bool

	cumBytes [numClasses]float64
	series   [numClasses]*trace.Timeline
	// obsSeries are pre-resolved registry timeline handles (per class), so
	// per-segment accounting skips label canonicalization.
	obsSeries [numClasses]*obs.TimelineRef

	// linkFactor is each node's residual link-bandwidth fraction: 1 is
	// healthy, (0,1) degraded, 0 fully down. Fault injection flips it;
	// transfers stall on a down endpoint and slow on a degraded one.
	linkFactor []float64
	// linkWake releases transfers stalled on a down link when it recovers.
	linkWake *sim.Signal

	// Counters: "transfers", "segments", "bytes_app", "bytes_ckpt".
	Counters trace.Counters

	rec *obs.Recorder
}

// SetRecorder attaches the fabric to the run's observability bus: byte
// counters are mirrored and the per-class cumulative series is published as
// the "fabric_bytes" timeline, labeled by class (nil-safe).
func (f *Fabric) SetRecorder(r *obs.Recorder) {
	f.rec = r
	for c := Class(0); c < numClasses; c++ {
		f.obsSeries[c] = r.TimelineHandle("fabric_bytes", obs.Labels{"class": c.String()})
	}
}

// New builds a fabric for n nodes with the given per-node link bandwidth in
// bytes/sec (LinkBW if 0).
func New(env *sim.Env, n int, linkBW float64) *Fabric {
	if linkBW == 0 {
		linkBW = LinkBW
	}
	f := &Fabric{
		env:        env,
		egress:     make([]*resource.Pipe, n),
		ingress:    make([]*resource.Pipe, n),
		Segment:    DefaultSegment,
		Latency:    DefaultLatency,
		linkFactor: make([]float64, n),
		linkWake:   sim.NewSignal(env),
	}
	for i := range f.linkFactor {
		f.linkFactor[i] = 1
	}
	for i := range f.egress {
		f.egress[i] = resource.NewPipe(env, fmt.Sprintf("node%d-egress", i), linkBW, resource.FlatScaling())
		f.ingress[i] = resource.NewPipe(env, fmt.Sprintf("node%d-ingress", i), linkBW, resource.FlatScaling())
	}
	for c := range f.series {
		f.series[c] = &trace.Timeline{}
	}
	return f
}

// Nodes returns the node count.
func (f *Fabric) Nodes() int { return len(f.egress) }

// Egress returns node i's egress pipe (for utilization inspection).
func (f *Fabric) Egress(node int) *resource.Pipe { return f.egress[node] }

// Ingress returns node i's ingress pipe (active only with ModelIngress).
func (f *Fabric) Ingress(node int) *resource.Pipe { return f.ingress[node] }

// Series returns the cumulative-bytes timeline for a traffic class; use
// DiffBuckets on it for per-window transferred volume (Figure 10).
func (f *Fabric) Series(c Class) *trace.Timeline { return f.series[c] }

// SetLinkFactor sets a node's residual link-bandwidth fraction: 1 restores
// full health, a value in (0,1) degrades both directions, 0 takes the node's
// links fully down. Restoring (factor > 0) wakes transfers stalled on it.
func (f *Fabric) SetLinkFactor(node int, factor float64) {
	if factor < 0 {
		factor = 0
	}
	if factor > 1 {
		factor = 1
	}
	f.linkFactor[node] = factor
	if factor > 0 {
		f.linkWake.Broadcast()
	}
}

// RestoreLink returns a node's links to full bandwidth.
func (f *Fabric) RestoreLink(node int) { f.SetLinkFactor(node, 1) }

// LinkFactor returns a node's current residual bandwidth fraction.
func (f *Fabric) LinkFactor(node int) float64 { return f.linkFactor[node] }

// LinkUp reports whether a node's links carry any traffic at all.
func (f *Fabric) LinkUp(node int) bool { return f.linkFactor[node] > 0 }

// pathFactor is the residual fraction of the slower endpoint on a path.
func (f *Fabric) pathFactor(from, to int) float64 {
	phi := f.linkFactor[from]
	if f.linkFactor[to] < phi {
		phi = f.linkFactor[to]
	}
	return phi
}

// EstimateTransfer predicts a transfer's uncontended wire time under the
// current link state. ok=false means the path is unusable (an endpoint's
// link is down) — the remote helper's pre-flight check treats that as an
// immediately failed attempt rather than queueing into a black hole.
func (f *Fabric) EstimateTransfer(from, to int, size int64, rateCap float64) (time.Duration, bool) {
	if size <= 0 || from == to {
		return 0, true
	}
	phi := f.pathFactor(from, to)
	if phi <= 0 {
		return 0, false
	}
	segs := (size + f.Segment - 1) / f.Segment
	wire := f.egress[from].EstimateTime(size)
	if rateCap > 0 {
		if capped := time.Duration(float64(size) / rateCap * float64(time.Second)); capped > wire {
			wire = capped
		}
	}
	return time.Duration(segs)*f.Latency + time.Duration(float64(wire)/phi), true
}

// CongestionAmp scales the queueing penalty applied to application messages
// that experience bandwidth contention. Fluid fair sharing alone understates
// the damage of saturated links — credit stalls, head-of-line blocking and
// retry windows grow superlinearly as a message is squeezed — so application
// transfers pay an extra Amp·(delay²/ideal) term. This is what makes *peak*
// interconnect usage, not just total bytes, hurt the application, the effect
// the paper's remote pre-copy exists to avoid. The default is calibrated so
// that a full-rate checkpoint burst sharing a link with application traffic
// produces interference of the magnitude prior work reports (~22% slowdown
// for communication-intensive phases, G. Zheng et al. as cited in the paper).
var CongestionAmp = 4.0

// congestionPenaltyCap bounds the quadratic term to a multiple of the ideal
// transfer time so pathological contention cannot run away.
const congestionPenaltyCap = 10.0

// Transfer moves size bytes from node `from` to node `to` as a sequence of
// rate-capped RDMA segments, blocking p until completion. rateCap <= 0 means
// uncapped. Transfers to the local node are free (no link crossed). With
// ModelIngress set, segments additionally traverse the receiver's ingress
// pipe, pipelined one segment deep behind the egress leg.
func (f *Fabric) Transfer(p *sim.Proc, from, to int, size int64, class Class, rateCap float64) {
	if size <= 0 || from == to {
		return
	}
	f.Counters.Add("transfers", 1)
	pipe := f.egress[from]

	var rxQueue *sim.Queue[int64]
	var rxDone *sim.Completion
	if f.ModelIngress {
		rxQueue = sim.NewQueue[int64](f.env)
		rxDone = sim.NewCompletion(f.env)
		in := f.ingress[to]
		f.env.Go(fmt.Sprintf("rx-node%d", to), func(rp *sim.Proc) {
			for {
				seg := rxQueue.Get(rp)
				if seg < 0 {
					rxDone.Complete()
					return
				}
				if rateCap > 0 {
					in.TransferCapped(rp, seg, rateCap)
				} else {
					in.Transfer(rp, seg)
				}
			}
		})
		// If the sender unwinds (killed mid-transfer), release the receiver.
		defer func() {
			if !rxDone.Completed() {
				rxQueue.Put(-1)
			}
		}()
	}

	start := p.Now()
	remaining := size
	segments := 0
	for remaining > 0 {
		seg := f.Segment
		if seg > remaining {
			seg = remaining
		}
		// A down endpoint stalls the transfer until the link recovers; a
		// degraded one stretches the segment by the residual fraction.
		for f.pathFactor(from, to) <= 0 {
			f.Counters.Add("link_stalls", 1)
			f.linkWake.Wait(p)
		}
		phi := f.pathFactor(from, to)
		segStart := p.Now()
		p.Sleep(f.Latency)
		if rateCap > 0 {
			pipe.TransferCapped(p, seg, rateCap)
		} else {
			pipe.Transfer(p, seg)
		}
		if phi < 1 {
			elapsed := p.Now() - segStart
			p.Sleep(time.Duration(float64(elapsed) * (1 - phi) / phi))
		}
		if rxQueue != nil {
			rxQueue.Put(seg)
		}
		remaining -= seg
		segments++
		f.account(class, seg)
		f.Counters.Add("segments", 1)
	}
	if rxQueue != nil {
		rxQueue.Put(-1)
		rxDone.Await(p)
	}
	if class == ClassApp && CongestionAmp > 0 {
		ideal := time.Duration(segments)*f.Latency + pipe.EstimateTime(size)
		actual := p.Now() - start
		if actual > ideal && ideal > 0 {
			delay := (actual - ideal).Seconds()
			penalty := CongestionAmp * delay * delay / ideal.Seconds()
			if max := congestionPenaltyCap * ideal.Seconds(); penalty > max {
				penalty = max
			}
			f.Counters.Add("congestion_events", 1)
			p.Sleep(time.Duration(penalty * float64(time.Second)))
		}
	}
}

// RDMAWrite pushes size bytes from node `from` into node `to`'s memory —
// the one-sided operation the remote pre-copy helper uses.
func (f *Fabric) RDMAWrite(p *sim.Proc, from, to int, size int64, rateCap float64) {
	f.Transfer(p, from, to, size, ClassCkpt, rateCap)
}

// RDMARead pulls size bytes from node `from` into the caller's node `to` —
// used by restart to fetch a remote checkpoint. The data crosses `from`'s
// egress link.
func (f *Fabric) RDMARead(p *sim.Proc, from, to int, size int64) {
	f.Transfer(p, from, to, size, ClassCkpt, 0)
}

// Send models application communication of size bytes from one rank's node
// to another's.
func (f *Fabric) Send(p *sim.Proc, from, to int, size int64) {
	f.Transfer(p, from, to, size, ClassApp, 0)
}

func (f *Fabric) account(class Class, n int64) {
	f.cumBytes[class] += float64(n)
	f.series[class].Set(f.env.Now(), f.cumBytes[class])
	f.obsSeries[class].Set(f.cumBytes[class])
	if class == ClassApp {
		f.Counters.Add("bytes_app", n)
		f.rec.Add("fabric_bytes_app", n)
	} else {
		f.Counters.Add("bytes_ckpt", n)
		f.rec.Add("fabric_bytes_ckpt", n)
	}
}

// Bytes returns total bytes moved for a class.
func (f *Fabric) Bytes(c Class) float64 { return f.cumBytes[c] }

// PeakCkptWindow returns the peak checkpoint bytes moved in any window of
// the given width up to end — the Figure 10 metric.
func (f *Fabric) PeakCkptWindow(end, width time.Duration) (float64, int) {
	return f.series[ClassCkpt].PeakDiffBucket(end, width)
}
