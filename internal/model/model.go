// Package model implements the paper's Section III performance model: the
// two-level checkpoint timing decomposition (Equation 1 and the terms that
// follow), the failure-rate-driven checkpoint counts, restart/recomputation
// costs, application efficiency, and the pre-copy threshold used by the
// delayed pre-copy (DCPC) engine. Symbols follow Table II.
package model

import (
	"math"
	"time"
)

// Params collects the model inputs.
type Params struct {
	// TCompute is the total compute-only time of the application run.
	TCompute time.Duration
	// MTBFLocal is the mean time between failures recoverable from local
	// NVM (soft errors: process crash, node reboot).
	MTBFLocal time.Duration
	// MTBFRemote is the mean time between failures requiring remote
	// recovery (hard errors: node loss).
	MTBFRemote time.Duration
	// IntervalLocal is the local checkpoint interval I.
	IntervalLocal time.Duration
	// IntervalRemote is the remote checkpoint interval T_seg.
	IntervalRemote time.Duration
	// CkptSize is the per-process checkpoint data size D in bytes.
	CkptSize int64
	// NVMBWPerCore is the effective NVM write bandwidth per core,
	// NVMBW_core, in bytes/sec.
	NVMBWPerCore float64
	// RemoteBWPerCore is the effective interconnect bandwidth available
	// per process for remote checkpoint transfer, bytes/sec.
	RemoteBWPerCore float64
	// RemoteOverheadFraction is o_rmt expressed as a fraction of compute
	// time lost to asynchronous-checkpoint noise (alpha_comm +
	// alpha_others); measured, not derived.
	RemoteOverheadFraction float64
}

// LocalCkptTime returns t_lcl = D / NVMBW_core.
func (p Params) LocalCkptTime() time.Duration {
	return durFromSeconds(float64(p.CkptSize) / p.NVMBWPerCore)
}

// RemoteCkptTime returns t_rmt = D / remote bandwidth.
func (p Params) RemoteCkptTime() time.Duration {
	return durFromSeconds(float64(p.CkptSize) / p.RemoteBWPerCore)
}

// NLocal returns the number of local checkpoints over the run, T_compute/I.
func (p Params) NLocal() float64 {
	return float64(p.TCompute) / float64(p.IntervalLocal)
}

// NRemote returns the number of remote checkpoints, T_compute/T_seg.
func (p Params) NRemote() float64 {
	return float64(p.TCompute) / float64(p.IntervalRemote)
}

// K returns the number of local checkpoints per remote checkpoint interval.
func (p Params) K() float64 {
	return float64(p.IntervalRemote) / float64(p.IntervalLocal)
}

// TLocal returns T_lcl = N_lcl * t_lcl, the total blocking local checkpoint
// time over the run.
func (p Params) TLocal() time.Duration {
	return time.Duration(p.NLocal() * float64(p.LocalCkptTime()))
}

// ORemote returns O_rmt, the total overhead the asynchronous remote
// checkpoints impose on the application.
func (p Params) ORemote() time.Duration {
	return time.Duration(p.RemoteOverheadFraction * float64(p.TCompute))
}

// FLocal returns F_lcl, the expected number of locally recoverable failures.
func (p Params) FLocal() float64 {
	return float64(p.TCompute) / float64(p.MTBFLocal)
}

// RestartLocal returns R_lcl, the time to fetch a checkpoint from local NVM
// (read at NVM read speed, taken equal to the local checkpoint time per the
// paper's proportionality assumption).
func (p Params) RestartLocal() time.Duration { return p.LocalCkptTime() }

// RestartRemote returns R_rmt, the remote checkpoint fetch time.
func (p Params) RestartRemote() time.Duration { return p.RemoteCkptTime() }

// TLocalRecovery returns T_lclrstart + T_lclrecomp =
// F_lcl * (R_lcl + (I + t_lcl)/2): each soft failure costs a local fetch
// plus, on average, half an interval of recomputation.
func (p Params) TLocalRecovery() time.Duration {
	per := float64(p.RestartLocal()) + float64(p.IntervalLocal+p.LocalCkptTime())/2
	return time.Duration(p.FLocal() * per)
}

// TRemoteRecovery returns T_rmtrstart + T_rmtrecomp for a given total
// runtime estimate: F_rmt = T_total/MTBF_rmt hard failures, each costing a
// remote fetch plus on average K/2 redone segments of (I + t_lcl).
func (p Params) TRemoteRecovery(tTotal time.Duration) time.Duration {
	fRmt := float64(tTotal) / float64(p.MTBFRemote)
	per := float64(p.RestartRemote()) + p.K()*float64(p.IntervalLocal+p.LocalCkptTime())/2
	return time.Duration(fRmt * per)
}

// TTotal solves Equation 1,
//
//	T_total = T_compute + T_lcl + O_rmt + T_restart + T_recomp,
//
// by fixed-point iteration (the remote failure count depends on T_total
// itself). It converges in a handful of iterations for any sane MTBF.
func (p Params) TTotal() time.Duration {
	t := p.TCompute
	base := p.TCompute + p.TLocal() + p.ORemote() + p.TLocalRecovery()
	for i := 0; i < 64; i++ {
		next := base + p.TRemoteRecovery(t)
		if absDur(next-t) < time.Millisecond {
			return next
		}
		t = next
	}
	return t
}

// Efficiency returns the ratio of ideal (no-failure, no-checkpoint) runtime
// to modeled actual runtime — the y-axis of Figure 9.
func (p Params) Efficiency() float64 {
	return float64(p.TCompute) / float64(p.TTotal())
}

// PreCopyThreshold computes the DCPC pre-copy start offset within a
// checkpoint interval:
//
//	T_c = D / NVMBW_core    (time the checkpoint data needs to drain)
//	T_p = I - T_c           (how far into the interval pre-copy may wait)
//
// A non-positive result means the interval is too short to hide the copy and
// pre-copy should start immediately.
func PreCopyThreshold(interval time.Duration, ckptSize int64, bwPerCore float64) time.Duration {
	tc := durFromSeconds(float64(ckptSize) / bwPerCore)
	tp := interval - tc
	if tp < 0 {
		return 0
	}
	return tp
}

// OptimalInterval returns Young's first-order optimal checkpoint interval,
// sqrt(2 * t_ckpt * MTBF), used to pick sensible defaults for experiments.
func OptimalInterval(ckptTime, mtbf time.Duration) time.Duration {
	return durFromSeconds(math.Sqrt(2 * ckptTime.Seconds() * mtbf.Seconds()))
}

// UnrecoverableProbability estimates the probability that a buddy-pair
// remote checkpoint scheme hits an unrecoverable failure — both a node and
// its buddy failing within the same checkpoint interval, before the data
// could be re-replicated. This is the computation behind the Zheng et al.
// result the paper quotes in Section IV: with per-node MTBF of 20 years,
// 5000 nodes, a 6-minute checkpoint interval and 1200 hours of application
// time, the probability is about 0.000977%.
//
// Derivation: a node fails within an interval with probability p ≈ T/MTBF;
// the pair is lost only if the buddy also fails in that same interval and
// *after* the first failure (hence the factor 1/2); with N nodes and
// T_app/T intervals the expected number of pair losses is
// N · p² / 2 · (T_app/T), which for small values is the probability itself.
func UnrecoverableProbability(mtbfNode time.Duration, nodes int, interval, appTime time.Duration) float64 {
	p := interval.Seconds() / mtbfNode.Seconds()
	intervals := appTime.Seconds() / interval.Seconds()
	return float64(nodes) * p * p / 2 * intervals
}

// SoftErrorShare is the fraction of failures recoverable locally, per the
// LANL ASCI Q observation the paper cites (about 64% of failures are soft).
const SoftErrorShare = 0.64

// SplitMTBF splits a machine MTBF into local (soft) and remote (hard)
// components given the soft-error share s: failures arrive at rate 1/mtbf,
// a fraction s of them soft.
func SplitMTBF(mtbf time.Duration, softShare float64) (local, remote time.Duration) {
	if softShare <= 0 || softShare >= 1 {
		panic("model: soft share must be in (0,1)")
	}
	local = time.Duration(float64(mtbf) / softShare)
	remote = time.Duration(float64(mtbf) / (1 - softShare))
	return local, remote
}

func durFromSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
