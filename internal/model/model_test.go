package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// baseParams is a hand-checkable configuration:
// 400 MB checkpoint at 400 MB/s -> t_lcl = 1s; remote at 100 MB/s -> t_rmt = 4s.
func baseParams() Params {
	return Params{
		TCompute:               1000 * time.Second,
		MTBFLocal:              500 * time.Second,
		MTBFRemote:             5000 * time.Second,
		IntervalLocal:          40 * time.Second,
		IntervalRemote:         160 * time.Second,
		CkptSize:               400e6,
		NVMBWPerCore:           400e6,
		RemoteBWPerCore:        100e6,
		RemoteOverheadFraction: 0.05,
	}
}

func TestBasicTerms(t *testing.T) {
	p := baseParams()
	if got := p.LocalCkptTime(); got != time.Second {
		t.Fatalf("t_lcl = %v, want 1s", got)
	}
	if got := p.RemoteCkptTime(); got != 4*time.Second {
		t.Fatalf("t_rmt = %v, want 4s", got)
	}
	if got := p.NLocal(); got != 25 {
		t.Fatalf("N_lcl = %v, want 25", got)
	}
	if got := p.NRemote(); got != 6.25 {
		t.Fatalf("N_rmt = %v, want 6.25", got)
	}
	if got := p.K(); got != 4 {
		t.Fatalf("K = %v, want 4", got)
	}
	if got := p.TLocal(); got != 25*time.Second {
		t.Fatalf("T_lcl = %v, want 25s", got)
	}
	if got := p.ORemote(); got != 50*time.Second {
		t.Fatalf("O_rmt = %v, want 50s", got)
	}
}

func TestLocalRecoveryTerm(t *testing.T) {
	p := baseParams()
	// F_lcl = 1000/500 = 2; per-failure = R_lcl + (I + t_lcl)/2 = 1 + 20.5 = 21.5s.
	if got := p.FLocal(); got != 2 {
		t.Fatalf("F_lcl = %v", got)
	}
	want := 43 * time.Second
	if got := p.TLocalRecovery(); got != want {
		t.Fatalf("local recovery = %v, want %v", got, want)
	}
}

func TestRemoteRecoveryTerm(t *testing.T) {
	p := baseParams()
	// At T_total = 5000s: F_rmt = 1; per-failure = 4 + 4*(41)/2 = 86s.
	got := p.TRemoteRecovery(5000 * time.Second)
	want := 86 * time.Second
	if (got - want).Abs() > time.Millisecond {
		t.Fatalf("remote recovery = %v, want %v", got, want)
	}
}

func TestTTotalFixedPoint(t *testing.T) {
	p := baseParams()
	total := p.TTotal()
	// T_total = base + T_rmtrecovery(T_total);
	// base = 1000 + 25 + 50 + 43 = 1118s. Verify self-consistency.
	base := p.TCompute + p.TLocal() + p.ORemote() + p.TLocalRecovery()
	recomputed := base + p.TRemoteRecovery(total)
	if (recomputed - total).Abs() > 10*time.Millisecond {
		t.Fatalf("fixed point not converged: %v vs %v", total, recomputed)
	}
	if total <= base {
		t.Fatalf("T_total %v should exceed failure-free base %v", total, base)
	}
}

func TestEfficiencyBounds(t *testing.T) {
	p := baseParams()
	eff := p.Efficiency()
	if eff <= 0 || eff >= 1 {
		t.Fatalf("efficiency = %v, want in (0,1)", eff)
	}
	// Fewer failures and cheaper checkpoints -> higher efficiency.
	better := p
	better.MTBFLocal *= 10
	better.MTBFRemote *= 10
	better.NVMBWPerCore *= 4
	better.RemoteOverheadFraction = 0.01
	if better.Efficiency() <= eff {
		t.Fatalf("improved system less efficient: %v <= %v", better.Efficiency(), eff)
	}
}

func TestEfficiencyApproachesOneInIdealLimit(t *testing.T) {
	p := baseParams()
	p.MTBFLocal = 1e6 * time.Second
	p.MTBFRemote = 1e7 * time.Second
	p.NVMBWPerCore = 100e9
	p.RemoteOverheadFraction = 0.001
	if eff := p.Efficiency(); eff < 0.99 {
		t.Fatalf("ideal-limit efficiency = %v, want > 0.99", eff)
	}
}

func TestPreCopyThreshold(t *testing.T) {
	// D = 400MB at 400MB/s: T_c = 1s. I = 40s -> T_p = 39s.
	got := PreCopyThreshold(40*time.Second, 400e6, 400e6)
	if got != 39*time.Second {
		t.Fatalf("T_p = %v, want 39s", got)
	}
	// Interval shorter than drain time: start immediately.
	if got := PreCopyThreshold(time.Second, 400e6, 100e6); got != 0 {
		t.Fatalf("T_p = %v, want 0 when I < T_c", got)
	}
}

func TestOptimalInterval(t *testing.T) {
	// sqrt(2 * 1s * 450s) = 30s.
	got := OptimalInterval(time.Second, 450*time.Second)
	if (got - 30*time.Second).Abs() > 10*time.Millisecond {
		t.Fatalf("I_opt = %v, want 30s", got)
	}
}

func TestUnrecoverableProbabilityMatchesZheng(t *testing.T) {
	// The paper (Section IV) quotes Zheng et al.: MTBF 20 years/node, 5000
	// nodes, 6-minute checkpoint interval, 1200 hours of application time
	// -> unrecoverable probability ~0.000977%.
	const year = 365.25 * 24 * time.Hour
	got := UnrecoverableProbability(20*year, 5000, 6*time.Minute, 1200*time.Hour)
	want := 0.000977e-2
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("P = %.6e, want ~%.6e (paper's quoted 0.000977%%)", got, want)
	}
}

func TestUnrecoverableProbabilityScaling(t *testing.T) {
	const year = 365.25 * 24 * time.Hour
	base := UnrecoverableProbability(20*year, 5000, 6*time.Minute, 1200*time.Hour)
	// Doubling the interval doubles per-interval pair risk quadratically
	// but halves the interval count: net 2x.
	double := UnrecoverableProbability(20*year, 5000, 12*time.Minute, 1200*time.Hour)
	if math.Abs(double/base-2) > 1e-9 {
		t.Fatalf("interval doubling scaled by %v, want 2", double/base)
	}
	// Twice the nodes, twice the risk.
	moreNodes := UnrecoverableProbability(20*year, 10000, 6*time.Minute, 1200*time.Hour)
	if math.Abs(moreNodes/base-2) > 1e-9 {
		t.Fatalf("node doubling scaled by %v, want 2", moreNodes/base)
	}
}

func TestSplitMTBF(t *testing.T) {
	local, remote := SplitMTBF(100*time.Second, SoftErrorShare)
	// Rates must add back to the machine rate: 1/local + 1/remote = 1/mtbf.
	rate := 1/local.Seconds() + 1/remote.Seconds()
	if math.Abs(rate-0.01) > 1e-9 {
		t.Fatalf("split rates sum to %v, want 0.01", rate)
	}
	if local >= remote {
		t.Fatal("with 64% soft errors, local MTBF must be shorter than remote")
	}
}

func TestSplitMTBFPanicsOnBadShare(t *testing.T) {
	for _, s := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitMTBF share=%v did not panic", s)
				}
			}()
			SplitMTBF(time.Second, s)
		}()
	}
}

func TestEfficiencyMonotoneInLocalBandwidthProperty(t *testing.T) {
	f := func(bwScale uint8) bool {
		p := baseParams()
		lo := p
		lo.NVMBWPerCore = 100e6 + float64(bwScale)*1e6
		hi := lo
		hi.NVMBWPerCore *= 2
		return hi.Efficiency() >= lo.Efficiency()-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPreCopyThresholdNeverNegativeProperty(t *testing.T) {
	f := func(iMillis uint16, sizeMB uint16, bwMBs uint16) bool {
		i := time.Duration(iMillis) * time.Millisecond
		size := int64(sizeMB) * 1e6
		bw := float64(bwMBs)*1e6 + 1
		tp := PreCopyThreshold(i, size, bw)
		return tp >= 0 && tp <= i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
