package stress

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// SchemaVersion identifies the stress-report JSON layout. Bump on
// incompatible change.
const SchemaVersion = 1

// Meta is the run identity stamped into a report. Everything here is
// deterministic — no wall-clock timestamps — so checked-in artifacts stay
// byte-stable.
type Meta struct {
	Tool     string `json:"tool"`
	Scenario string `json:"scenario,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// Cell is one run of the stress matrix: a fleet size × failure severity ×
// placement point with its measured recovery behaviour.
type Cell struct {
	Name       string `json:"name"`
	FleetNodes int    `json:"fleet_nodes"`
	Ranks      int    `json:"ranks,omitempty"`
	// Topology is the domain shape, e.g. "1p/4z/16r".
	Topology string `json:"topology,omitempty"`
	// Severity names the injected domain loss: none, node, rack, zone,
	// provider, or storm.
	Severity  string `json:"severity"`
	Placement string `json:"placement,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Shards    int    `json:"shards,omitempty"`

	ExecSecs        float64 `json:"exec_secs"`
	MTTRSecs        float64 `json:"mttr_secs"`
	DegradedSecs    float64 `json:"degraded_secs"`
	AvailabilityPct float64 `json:"availability_pct"`

	RecoveryLocal  int64 `json:"recovery_local"`
	RecoveryRemote int64 `json:"recovery_remote"`
	RecoveryBottom int64 `json:"recovery_bottom"`
	RecoveryLost   int64 `json:"recovery_lost"`

	// Checksum is the run's final workload checksum; ChecksumOK reports
	// whether it matched the fault-free twin (nil when not compared).
	Checksum   string `json:"checksum,omitempty"`
	ChecksumOK *bool  `json:"checksum_ok,omitempty"`
}

// Report is the stable JSON artifact a stress run (or sweep) emits.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	Scenario      string `json:"scenario,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	// Survivability is the static placement analysis of the (last) run's
	// topology; sweeps that mix placements carry one entry per placement.
	Survivability []*Survivability `json:"survivability,omitempty"`
	Cells         []Cell           `json:"cells"`
}

// BuildReport assembles the artifact, sorting cells into the canonical
// (fleet size, severity, placement, name) order so the output is stable
// regardless of run order.
func BuildReport(meta Meta, survivability []*Survivability, cells []Cell) Report {
	sorted := append([]Cell(nil), cells...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.FleetNodes != b.FleetNodes {
			return a.FleetNodes < b.FleetNodes
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Placement != b.Placement {
			return a.Placement < b.Placement
		}
		return a.Name < b.Name
	})
	if sorted == nil {
		sorted = []Cell{}
	}
	return Report{
		SchemaVersion: SchemaVersion,
		Tool:          meta.Tool,
		Scenario:      meta.Scenario,
		Seed:          meta.Seed,
		Survivability: survivability,
		Cells:         sorted,
	}
}

// Round6 trims a float for the artifact: six decimals is beyond measurement
// precision and keeps the JSON tidy and stable.
func Round6(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1e6) / 1e6
}

// WriteJSON renders the report as indented, byte-stable JSON.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("stress: encode report: %w", err)
	}
	return nil
}

// ReadReportFile loads a report artifact, checking the schema version.
func ReadReportFile(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("stress: read report: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("stress: parse report %s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return rep, fmt.Errorf("stress: report %s has schema version %d, this build understands %d",
			path, rep.SchemaVersion, SchemaVersion)
	}
	return rep, nil
}
