package stress

import (
	"fmt"

	"nvmcp/internal/cluster"
	"nvmcp/internal/policy"
	"nvmcp/internal/scenario"
)

// SeverityOf names the worst domain-loss class a scenario's fault schedule
// injects: provider > zone > rack > storm > node > none. The name keys the
// report's MTTR/availability curves.
func SeverityOf(sc *scenario.Scenario) string {
	worst := "none"
	rank := map[string]int{"none": 0, "node": 1, "storm": 2, "rack": 3, "zone": 4, "provider": 5}
	bump := func(s string) {
		if rank[s] > rank[worst] {
			worst = s
		}
	}
	for _, f := range sc.Failures {
		switch f.Kind {
		case "provider-outage":
			bump("provider")
		case "zone-outage":
			bump("zone")
		case "rack-outage":
			bump("rack")
		case "link-storm":
			bump("storm")
		default:
			bump("node")
		}
	}
	if m := sc.FaultModel; m != nil {
		if m.MTBFZoneSecs > 0 {
			bump("zone")
		} else if m.MTBFRackSecs > 0 {
			bump("rack")
		} else {
			bump("node")
		}
	}
	return worst
}

// CellFromRun folds one finished cluster run into a report cell. The cell
// name, severity and placement come from the scenario; the measurements from
// the run's Result.
func CellFromRun(sc *scenario.Scenario, c *cluster.Cluster, res cluster.Result) Cell {
	cfg := c.Cfg
	// A sharded run carries its resolved shard count; a serial run may still
	// hold the ShardsAuto sentinel (or 0) it fell back from.
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	cell := Cell{
		Name:       sc.Name,
		FleetNodes: cfg.Nodes,
		Ranks:      res.Ranks,
		Severity:   SeverityOf(sc),
		Policy:     cfg.Remote,
		Shards:     shards,

		ExecSecs:     Round6(res.ExecTime.Seconds()),
		MTTRSecs:     Round6(res.MTTR.Seconds()),
		DegradedSecs: Round6(res.DegradedTime.Seconds()),

		RecoveryLocal:  res.RecoveryLocal,
		RecoveryRemote: res.RecoveryRemote,
		RecoveryBottom: res.RecoveryBottom,
		RecoveryLost:   res.RecoveryLost,

		Checksum: fmt.Sprintf("%016x", res.WorkloadChecksum),
	}
	if cfg.Topo != nil {
		cell.Topology = cfg.Topo.Summary()
	}
	if pl, err := policy.ParsePlacement(cfg.Placement); err == nil {
		cell.Placement = pl
	}
	avail := 100.0
	if res.ExecTime > 0 {
		avail = 100 * (1 - res.DegradedTime.Seconds()/res.ExecTime.Seconds())
	}
	cell.AvailabilityPct = Round6(avail)
	return cell
}

// AnalyzeRun derives the static survivability analysis from a finished
// serial run's remote tier (the tier knows where every replica was planned).
// Sharded runs return nil: each shard's tier only sees its own node span, so
// its support sets are not fleet-global — and sharded runs are by
// construction failure-free, so there is nothing to survive.
func AnalyzeRun(c *cluster.Cluster) *Survivability {
	if c == nil || c.Cfg.Topo == nil || c.Cfg.Shards > 1 {
		return nil
	}
	pi, ok := c.RemoteTier().(policy.PlacementInfo)
	if !ok {
		return nil
	}
	return Analyze(c.Cfg.Topo, pi.SupportSets(), pi.PlacementDesc(), pi.PlacementHonored())
}
