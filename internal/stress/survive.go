// Package stress turns fleet-scale chaos runs into survivability verdicts
// and a stress-report artifact (byte-stable JSON plus a self-contained HTML
// page, in the internal/slo report style): MTTR and availability as curves
// over fleet size and domain-loss severity, plus a static analysis proving
// — or refuting — that a zone loss can never destroy every copy of a chunk
// under the run's replica placement.
package stress

import (
	"fmt"

	"nvmcp/internal/topo"
)

// AtRiskCap bounds how many victim nodes a domain entry lists in the
// report; the counts are always exact.
const AtRiskCap = 16

// DomainRisk is one failure domain whose loss would make some nodes' data
// unrecoverable from the remote tier.
type DomainRisk struct {
	Domain string `json:"domain"`
	// AtRisk is how many of the domain's nodes would lose all remote
	// copies of their data along with their local NVM.
	AtRisk int `json:"at_risk"`
	// Nodes samples the at-risk node ids (at most AtRiskCap).
	Nodes []int `json:"nodes,omitempty"`
}

// LevelSurvivability aggregates one domain level (rack, zone, provider).
type LevelSurvivability struct {
	Level   string `json:"level"`
	Domains int    `json:"domains"`
	// AtRiskNodes sums the at-risk counts over every domain of the level
	// (domains fail one at a time).
	AtRiskNodes int `json:"at_risk_nodes"`
	// Risks lists only the domains with at-risk nodes.
	Risks []DomainRisk `json:"risks,omitempty"`
	// Survivable is true when no single domain loss at this level can
	// destroy all copies of any chunk.
	Survivable bool `json:"survivable"`
}

// Survivability is the static placement analysis: given where every node's
// remote copies live, which single-domain losses destroy data?
type Survivability struct {
	Placement string `json:"placement"`
	// Honored reports whether the placement's anti-affinity goal was
	// satisfiable on this topology (a single-zone fleet cannot honor zone
	// anti-affinity, for example).
	Honored bool                 `json:"anti_affinity_honored"`
	Levels  []LevelSurvivability `json:"levels"`
	// ZoneSurvivable is the headline: a zone loss never destroys all
	// copies of a chunk.
	ZoneSurvivable bool `json:"zone_survivable"`
}

// Analyze computes survivability from the fleet topology and the remote
// tier's support sets (per compute node, the fabric nodes its remote
// recovery depends on — see policy.PlacementInfo). A node's data is
// unrecoverable under the loss of domain D iff the node is in D and any of
// its support nodes is too: local NVM and every needed remote copy die
// together. Support nodes outside the topology (erasure parity holders,
// the PFS) belong to no domain and never co-fail. An empty support set
// means the node has no remote copies at all, so any domain loss covering
// it is fatal.
func Analyze(t *topo.Topology, sets [][]int, placement string, honored bool) *Survivability {
	if t == nil || sets == nil {
		return nil
	}
	out := &Survivability{Placement: placement, Honored: honored, ZoneSurvivable: true}
	for _, lvl := range []topo.Level{topo.LevelRack, topo.LevelZone, topo.LevelProvider} {
		domains := t.Domains(lvl)
		ls := LevelSurvivability{Level: lvl.String(), Domains: len(domains), Survivable: true}
		for _, d := range domains {
			members := t.NodesIn(lvl, d)
			inDomain := make(map[int]bool, len(members))
			for _, n := range members {
				inDomain[n] = true
			}
			risk := DomainRisk{Domain: d.Label(lvl)}
			for _, n := range members {
				if n >= len(sets) {
					continue
				}
				fatal := len(sets[n]) == 0
				for _, s := range sets[n] {
					if inDomain[s] {
						fatal = true
					}
				}
				if fatal {
					risk.AtRisk++
					if len(risk.Nodes) < AtRiskCap {
						risk.Nodes = append(risk.Nodes, n)
					}
				}
			}
			if risk.AtRisk > 0 {
				ls.AtRiskNodes += risk.AtRisk
				ls.Risks = append(ls.Risks, risk)
				ls.Survivable = false
				if lvl == topo.LevelZone {
					out.ZoneSurvivable = false
				}
			}
		}
		out.Levels = append(out.Levels, ls)
	}
	return out
}

// Verdict renders the headline as a one-line string for tool output.
func (s *Survivability) Verdict() string {
	if s == nil {
		return "survivability: not analyzed (no topology or no remote placement)"
	}
	if s.ZoneSurvivable {
		return fmt.Sprintf("survivability: zone loss survivable under %s placement", s.Placement)
	}
	var zone *LevelSurvivability
	for i := range s.Levels {
		if s.Levels[i].Level == "zone" {
			zone = &s.Levels[i]
		}
	}
	n := 0
	if zone != nil {
		n = zone.AtRiskNodes
	}
	return fmt.Sprintf("survivability: ZONE LOSS DESTROYS DATA under %s placement (%d node(s) at risk)",
		s.Placement, n)
}
