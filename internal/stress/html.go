package stress

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
)

// WriteHTML renders the report as a single self-contained page: run
// metadata, the survivability verdicts, MTTR and availability curves over
// fleet size (one line per severity × placement series), and the full cell
// table. No external assets, no wall-clock content — the output is
// byte-stable for a deterministic run.
func WriteHTML(w io.Writer, rep Report) error {
	var b strings.Builder
	b.WriteString(stressHTMLHead)
	writeStressHeader(&b, rep)
	writeSurvivability(&b, rep)
	writeCurves(&b, rep)
	writeCellTable(&b, rep)
	b.WriteString(stressHTMLTail)
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("stress: write html report: %w", err)
	}
	return nil
}

// Design tokens follow the SLO report's palette: light surfaces with dark
// steps under both the media query and an explicit data-theme scope,
// categorical series colors, reserved red for data-loss verdicts.
const stressHTMLHead = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Fleet stress report</title>
<style>
.viz-root {
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --axis: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #d07c2a;
  --series-3: #2aa053;
  --series-4: #9a5bd0;
  --series-5: #d0492a;
  --series-6: #2ab2c4;
  --status-critical: #d03b3b;
  --status-good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :where(.viz-root) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --axis: #383835;
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --axis: #383835;
  --series-1: #3987e5;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; font-weight: 600; margin: 28px 0 8px; }
.meta { color: var(--text-secondary); font-size: 13px; margin-bottom: 20px; }
.verdict { font-size: 14px; font-weight: 600; margin: 6px 0; }
.verdict.ok { color: var(--status-good); }
.verdict.bad { color: var(--status-critical); }
table.data {
  border-collapse: collapse; font-size: 13px;
  background: var(--surface-1); border: 1px solid var(--gridline); border-radius: 8px;
}
table.data th, table.data td { padding: 6px 12px; text-align: left; border-bottom: 1px solid var(--gridline); }
table.data th { color: var(--text-secondary); font-weight: 600; }
table.data tr:last-child td { border-bottom: none; }
table.data td.num { text-align: right; font-variant-numeric: tabular-nums; }
.pass { color: var(--status-good); }
.fail { color: var(--status-critical); font-weight: 600; }
.chart-card {
  background: var(--surface-1); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 12px 16px 8px; margin-bottom: 14px; max-width: 720px;
}
.chart-card .t { font-size: 13px; font-weight: 600; margin-bottom: 4px; }
.legend { font-size: 12px; color: var(--text-secondary); margin: 4px 0 8px; }
.legend .sw { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin: 0 4px 0 12px; vertical-align: baseline; }
</style>
</head>
<body class="viz-root">
`

const stressHTMLTail = "</body>\n</html>\n"

func writeStressHeader(b *strings.Builder, rep Report) {
	b.WriteString("<h1>Fleet stress report</h1>\n<div class=\"meta\">")
	fmt.Fprintf(b, "tool %s", html.EscapeString(rep.Tool))
	if rep.Scenario != "" {
		fmt.Fprintf(b, " · scenario %s", html.EscapeString(rep.Scenario))
	}
	if rep.Seed != 0 {
		fmt.Fprintf(b, " · seed %d", rep.Seed)
	}
	fmt.Fprintf(b, " · %d cell(s)", len(rep.Cells))
	b.WriteString("</div>\n")
}

func writeSurvivability(b *strings.Builder, rep Report) {
	if len(rep.Survivability) == 0 {
		return
	}
	b.WriteString("<h2>Survivability</h2>\n")
	for _, s := range rep.Survivability {
		if s == nil {
			continue
		}
		cls, mark := "ok", "✓"
		if !s.ZoneSurvivable {
			cls, mark = "bad", "✗"
		}
		fmt.Fprintf(b, "<div class=\"verdict %s\">%s %s</div>\n", cls, mark, html.EscapeString(s.Verdict()))
		b.WriteString("<table class=\"data\"><tr><th>level</th><th>domains</th><th>at-risk nodes</th><th>worst domain</th><th>verdict</th></tr>\n")
		for _, lvl := range s.Levels {
			worst := "—"
			if len(lvl.Risks) > 0 {
				w := lvl.Risks[0]
				for _, r := range lvl.Risks[1:] {
					if r.AtRisk > w.AtRisk {
						w = r
					}
				}
				worst = fmt.Sprintf("%s (%d)", w.Domain, w.AtRisk)
			}
			verdict := "<span class=\"pass\">survivable</span>"
			if !lvl.Survivable {
				verdict = "<span class=\"fail\">data loss</span>"
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(lvl.Level), lvl.Domains, lvl.AtRiskNodes, html.EscapeString(worst), verdict)
		}
		b.WriteString("</table>\n")
	}
}

// seriesKey groups cells into chart lines.
func seriesKey(c Cell) string {
	if c.Placement == "" {
		return c.Severity
	}
	return c.Severity + "/" + c.Placement
}

func writeCurves(b *strings.Builder, rep Report) {
	if len(rep.Cells) == 0 {
		return
	}
	sizes := uniqueSizes(rep.Cells)
	b.WriteString("<h2>Curves over fleet size</h2>\n")
	writeChart(b, rep, sizes, "MTTR (s)", func(c Cell) float64 { return c.MTTRSecs })
	writeChart(b, rep, sizes, "Availability (%)", func(c Cell) float64 { return c.AvailabilityPct })
}

func uniqueSizes(cells []Cell) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cells {
		if !seen[c.FleetNodes] {
			seen[c.FleetNodes] = true
			out = append(out, c.FleetNodes)
		}
	}
	sort.Ints(out)
	return out
}

// writeChart renders one categorical-x line chart: x positions are the
// sorted unique fleet sizes, one polyline per (severity, placement) series.
func writeChart(b *strings.Builder, rep Report, sizes []int, title string, value func(Cell) float64) {
	const w, h = 680, 240
	const ml, mr, mt, mb = 56, 16, 12, 32
	iw, ih := float64(w-ml-mr), float64(h-mt-mb)

	series := map[string][]Cell{}
	var names []string
	for _, c := range rep.Cells {
		k := seriesKey(c)
		if _, ok := series[k]; !ok {
			names = append(names, k)
		}
		series[k] = append(series[k], c)
	}
	sort.Strings(names)

	ymin, ymax := 0.0, 0.0
	first := true
	for _, c := range rep.Cells {
		v := value(c)
		if first || v < ymin {
			ymin = v
		}
		if first || v > ymax {
			ymax = v
		}
		first = false
	}
	pad := (ymax - ymin) * 0.15
	if pad == 0 {
		pad = 1
	}
	ymin -= pad
	ymax += pad
	if ymin < 0 {
		ymin = 0
	}

	xpos := func(size int) float64 {
		for i, s := range sizes {
			if s == size {
				if len(sizes) == 1 {
					return float64(ml) + iw/2
				}
				return float64(ml) + iw*float64(i)/float64(len(sizes)-1)
			}
		}
		return float64(ml)
	}
	ypos := func(v float64) float64 {
		return float64(mt) + ih*(1-(v-ymin)/(ymax-ymin))
	}

	fmt.Fprintf(b, "<div class=\"chart-card\"><div class=\"t\">%s</div>\n", html.EscapeString(title))
	b.WriteString("<div class=\"legend\">")
	for i, name := range names {
		fmt.Fprintf(b, "<span class=\"sw\" style=\"background:var(--series-%d)\"></span>%s",
			i%6+1, html.EscapeString(name))
	}
	b.WriteString("</div>\n")
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" width=\"100%%\" role=\"img\">\n", w, h)
	// Gridlines + y labels at min/mid/max.
	for _, v := range []float64{ymin, (ymin + ymax) / 2, ymax} {
		y := ypos(v)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"var(--gridline)\"/>\n", ml, y, w-mr, y)
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%.1f\" font-size=\"10\" fill=\"var(--text-muted)\" text-anchor=\"end\">%s</text>\n",
			ml-6, y+3, trimFloat(v))
	}
	// X labels: the fleet sizes.
	for _, s := range sizes {
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%d\" font-size=\"10\" fill=\"var(--text-muted)\" text-anchor=\"middle\">%d</text>\n",
			xpos(s), h-mb+16, s)
	}
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"var(--axis)\"/>\n", ml, h-mb, w-mr, h-mb)
	for i, name := range names {
		cells := append([]Cell(nil), series[name]...)
		sort.Slice(cells, func(a, b int) bool { return cells[a].FleetNodes < cells[b].FleetNodes })
		color := fmt.Sprintf("var(--series-%d)", i%6+1)
		var pts []string
		for _, c := range cells {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpos(c.FleetNodes), ypos(value(c))))
		}
		if len(pts) > 1 {
			fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n",
				strings.Join(pts, " "), color)
		}
		for _, c := range cells {
			fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"%s\"><title>%s @ %d nodes: %s</title></circle>\n",
				xpos(c.FleetNodes), ypos(value(c)), color,
				html.EscapeString(name), c.FleetNodes, trimFloat(value(c)))
		}
	}
	b.WriteString("</svg></div>\n")
}

func writeCellTable(b *strings.Builder, rep Report) {
	if len(rep.Cells) == 0 {
		return
	}
	b.WriteString("<h2>Cells</h2>\n<table class=\"data\">\n")
	b.WriteString("<tr><th>name</th><th>fleet</th><th>topology</th><th>severity</th><th>placement</th><th>MTTR (s)</th><th>avail (%)</th><th>local</th><th>remote</th><th>bottom</th><th>lost</th><th>checksum</th></tr>\n")
	for _, c := range rep.Cells {
		check := "—"
		if c.ChecksumOK != nil {
			if *c.ChecksumOK {
				check = "<span class=\"pass\">match</span>"
			} else {
				check = "<span class=\"fail\">MISMATCH</span>"
			}
		}
		lost := fmt.Sprintf("%d", c.RecoveryLost)
		if c.RecoveryLost > 0 {
			lost = fmt.Sprintf("<span class=\"fail\">%d</span>", c.RecoveryLost)
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
			html.EscapeString(c.Name), c.FleetNodes, html.EscapeString(c.Topology),
			html.EscapeString(c.Severity), html.EscapeString(c.Placement),
			trimFloat(c.MTTRSecs), trimFloat(c.AvailabilityPct),
			c.RecoveryLocal, c.RecoveryRemote, c.RecoveryBottom, lost, check)
	}
	b.WriteString("</table>\n")
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
