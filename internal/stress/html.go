package stress

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"nvmcp/internal/report"
)

// WriteHTML renders the report as a single self-contained page: run
// metadata, the survivability verdicts, MTTR and availability curves over
// fleet size (one line per severity × placement series), and the full cell
// table. No external assets, no wall-clock content — the output is
// byte-stable for a deterministic run. The palette and page chrome come
// from internal/report.
func WriteHTML(w io.Writer, rep Report) error {
	var b strings.Builder
	report.WriteHead(&b, "Fleet stress report")
	writeStressHeader(&b, rep)
	writeSurvivability(&b, rep)
	writeCurves(&b, rep)
	writeCellTable(&b, rep)
	report.WriteTail(&b)
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("stress: write html report: %w", err)
	}
	return nil
}

func writeStressHeader(b *strings.Builder, rep Report) {
	b.WriteString("<h1>Fleet stress report</h1>\n<div class=\"meta\">")
	fmt.Fprintf(b, "tool %s", html.EscapeString(rep.Tool))
	if rep.Scenario != "" {
		fmt.Fprintf(b, " · scenario %s", html.EscapeString(rep.Scenario))
	}
	if rep.Seed != 0 {
		fmt.Fprintf(b, " · seed %d", rep.Seed)
	}
	fmt.Fprintf(b, " · %d cell(s)", len(rep.Cells))
	b.WriteString("</div>\n")
}

func writeSurvivability(b *strings.Builder, rep Report) {
	if len(rep.Survivability) == 0 {
		return
	}
	b.WriteString("<h2>Survivability</h2>\n")
	for _, s := range rep.Survivability {
		if s == nil {
			continue
		}
		cls, mark := "ok", "✓"
		if !s.ZoneSurvivable {
			cls, mark = "bad", "✗"
		}
		fmt.Fprintf(b, "<div class=\"verdict %s\">%s %s</div>\n", cls, mark, html.EscapeString(s.Verdict()))
		b.WriteString("<table class=\"data\"><tr><th>level</th><th>domains</th><th>at-risk nodes</th><th>worst domain</th><th>verdict</th></tr>\n")
		for _, lvl := range s.Levels {
			worst := "—"
			if len(lvl.Risks) > 0 {
				w := lvl.Risks[0]
				for _, r := range lvl.Risks[1:] {
					if r.AtRisk > w.AtRisk {
						w = r
					}
				}
				worst = fmt.Sprintf("%s (%d)", w.Domain, w.AtRisk)
			}
			verdict := "<span class=\"pass\">survivable</span>"
			if !lvl.Survivable {
				verdict = "<span class=\"fail\">data loss</span>"
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(lvl.Level), lvl.Domains, lvl.AtRiskNodes, html.EscapeString(worst), verdict)
		}
		b.WriteString("</table>\n")
	}
}

// seriesKey groups cells into chart lines.
func seriesKey(c Cell) string {
	if c.Placement == "" {
		return c.Severity
	}
	return c.Severity + "/" + c.Placement
}

func writeCurves(b *strings.Builder, rep Report) {
	if len(rep.Cells) == 0 {
		return
	}
	sizes := uniqueSizes(rep.Cells)
	b.WriteString("<h2>Curves over fleet size</h2>\n")
	writeChart(b, rep, sizes, "MTTR (s)", func(c Cell) float64 { return c.MTTRSecs })
	writeChart(b, rep, sizes, "Availability (%)", func(c Cell) float64 { return c.AvailabilityPct })
}

func uniqueSizes(cells []Cell) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cells {
		if !seen[c.FleetNodes] {
			seen[c.FleetNodes] = true
			out = append(out, c.FleetNodes)
		}
	}
	sort.Ints(out)
	return out
}

// writeChart renders one categorical-x line chart: x positions are the
// sorted unique fleet sizes, one polyline per (severity, placement) series,
// colors from the shared categorical palette slots.
func writeChart(b *strings.Builder, rep Report, sizes []int, title string, value func(Cell) float64) {
	const w, h = 680, 240
	const ml, mr, mt, mb = 56, 16, 12, 32
	iw, ih := float64(w-ml-mr), float64(h-mt-mb)

	series := map[string][]Cell{}
	var names []string
	for _, c := range rep.Cells {
		k := seriesKey(c)
		if _, ok := series[k]; !ok {
			names = append(names, k)
		}
		series[k] = append(series[k], c)
	}
	sort.Strings(names)

	ymin, ymax := 0.0, 0.0
	first := true
	for _, c := range rep.Cells {
		v := value(c)
		if first || v < ymin {
			ymin = v
		}
		if first || v > ymax {
			ymax = v
		}
		first = false
	}
	pad := (ymax - ymin) * 0.15
	if pad == 0 {
		pad = 1
	}
	ymin -= pad
	ymax += pad
	if ymin < 0 {
		ymin = 0
	}

	xpos := func(size int) float64 {
		for i, s := range sizes {
			if s == size {
				if len(sizes) == 1 {
					return float64(ml) + iw/2
				}
				return float64(ml) + iw*float64(i)/float64(len(sizes)-1)
			}
		}
		return float64(ml)
	}
	ypos := func(v float64) float64 {
		return float64(mt) + ih*(1-(v-ymin)/(ymax-ymin))
	}

	fmt.Fprintf(b, "<div class=\"chart-card\"><div class=\"t\">%s</div>\n", html.EscapeString(title))
	b.WriteString("<div class=\"legend\">")
	for i, name := range names {
		fmt.Fprintf(b, "<span class=\"sw\" style=\"background:var(--series-%d)\"></span>%s",
			i%6+1, html.EscapeString(name))
	}
	b.WriteString("</div>\n")
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" width=\"100%%\" role=\"img\">\n", w, h)
	// Gridlines + y labels at min/mid/max.
	for _, v := range []float64{ymin, (ymin + ymax) / 2, ymax} {
		y := ypos(v)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"var(--gridline)\"/>\n", ml, y, w-mr, y)
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%.1f\" font-size=\"10\" fill=\"var(--text-muted)\" text-anchor=\"end\">%s</text>\n",
			ml-6, y+3, report.TrimFloat(v))
	}
	// X labels: the fleet sizes.
	for _, s := range sizes {
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%d\" font-size=\"10\" fill=\"var(--text-muted)\" text-anchor=\"middle\">%d</text>\n",
			xpos(s), h-mb+16, s)
	}
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"var(--axis)\"/>\n", ml, h-mb, w-mr, h-mb)
	for i, name := range names {
		cells := append([]Cell(nil), series[name]...)
		sort.Slice(cells, func(a, b int) bool { return cells[a].FleetNodes < cells[b].FleetNodes })
		color := fmt.Sprintf("var(--series-%d)", i%6+1)
		var pts []string
		for _, c := range cells {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpos(c.FleetNodes), ypos(value(c))))
		}
		if len(pts) > 1 {
			fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n",
				strings.Join(pts, " "), color)
		}
		for _, c := range cells {
			fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"%s\"><title>%s @ %d nodes: %s</title></circle>\n",
				xpos(c.FleetNodes), ypos(value(c)), color,
				html.EscapeString(name), c.FleetNodes, report.TrimFloat(value(c)))
		}
	}
	b.WriteString("</svg></div>\n")
}

func writeCellTable(b *strings.Builder, rep Report) {
	if len(rep.Cells) == 0 {
		return
	}
	b.WriteString("<h2>Cells</h2>\n<table class=\"data\">\n")
	b.WriteString("<tr><th>name</th><th>fleet</th><th>topology</th><th>severity</th><th>placement</th><th>MTTR (s)</th><th>avail (%)</th><th>local</th><th>remote</th><th>bottom</th><th>lost</th><th>checksum</th></tr>\n")
	for _, c := range rep.Cells {
		check := "—"
		if c.ChecksumOK != nil {
			if *c.ChecksumOK {
				check = "<span class=\"pass\">match</span>"
			} else {
				check = "<span class=\"fail\">MISMATCH</span>"
			}
		}
		lost := fmt.Sprintf("%d", c.RecoveryLost)
		if c.RecoveryLost > 0 {
			lost = fmt.Sprintf("<span class=\"fail\">%d</span>", c.RecoveryLost)
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
			html.EscapeString(c.Name), c.FleetNodes, html.EscapeString(c.Topology),
			html.EscapeString(c.Severity), html.EscapeString(c.Placement),
			report.TrimFloat(c.MTTRSecs), report.TrimFloat(c.AvailabilityPct),
			c.RecoveryLocal, c.RecoveryRemote, c.RecoveryBottom, lost, check)
	}
	b.WriteString("</table>\n")
}
