package stress

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"nvmcp/internal/topo"

	"os"
)

// fleet8 is 8 nodes over 2 zones × 2 racks (2 nodes per rack).
func fleet8(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.Uniform(8, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestAnalyzeSpreadBuddySurvivesZoneLoss(t *testing.T) {
	tp := fleet8(t)
	// Cross-zone buddy: node n's copy lives in the other zone.
	sets := make([][]int, 8)
	for n := range sets {
		sets[n] = []int{(n + 4) % 8}
	}
	s := Analyze(tp, sets, "spread", true)
	if s == nil {
		t.Fatal("analysis missing")
	}
	if !s.ZoneSurvivable {
		t.Fatal("cross-zone buddies must survive a zone loss")
	}
	for _, lvl := range s.Levels {
		if lvl.Level != "provider" && !lvl.Survivable {
			t.Errorf("level %s not survivable: %+v", lvl.Level, lvl.Risks)
		}
	}
	// The whole-provider loss is always fatal when every copy lives inside it.
	if s.Levels[2].Survivable {
		t.Error("single-provider fleet cannot survive losing the provider")
	}
}

func TestAnalyzeNaiveBuddyLosesZone(t *testing.T) {
	tp := fleet8(t)
	// Paper ring: buddy = n+1; nodes 0..3 are zone 0, 4..7 zone 1, so pairs
	// inside a zone die together.
	sets := make([][]int, 8)
	for n := range sets {
		sets[n] = []int{(n + 1) % 8}
	}
	s := Analyze(tp, sets, "naive", false)
	if s.ZoneSurvivable {
		t.Fatal("naive ring over a block layout must lose data on zone loss")
	}
	var zone LevelSurvivability
	for _, lvl := range s.Levels {
		if lvl.Level == "zone" {
			zone = lvl
		}
	}
	if zone.AtRiskNodes == 0 {
		t.Fatal("zone level shows no at-risk nodes")
	}
	if !strings.Contains(s.Verdict(), "ZONE LOSS DESTROYS DATA") {
		t.Errorf("verdict = %q", s.Verdict())
	}
}

func TestAnalyzeParityOutsideTopologyNeverCoFails(t *testing.T) {
	tp := fleet8(t)
	// Erasure group {0,4} with parity on extra node 8 (outside the
	// topology): reconstruction needs the other member + parity.
	sets := make([][]int, 8)
	for n := range sets {
		sets[n] = []int{(n + 4) % 8, 8}
	}
	s := Analyze(tp, sets, "spread", true)
	if !s.ZoneSurvivable {
		t.Fatal("parity holders outside the topology must not count as co-failing")
	}
}

func TestAnalyzeEmptySupportSetIsFatal(t *testing.T) {
	tp := fleet8(t)
	sets := make([][]int, 8) // no remote copies at all
	s := Analyze(tp, sets, "spread", true)
	if s.ZoneSurvivable {
		t.Fatal("no remote copies means any domain loss destroys data")
	}
}

func TestAnalyzeNilInputs(t *testing.T) {
	if Analyze(nil, [][]int{{1}}, "spread", true) != nil {
		t.Error("nil topology should yield nil analysis")
	}
	if Analyze(fleet8(t), nil, "spread", true) != nil {
		t.Error("nil support sets should yield nil analysis")
	}
	var s *Survivability
	if !strings.Contains(s.Verdict(), "not analyzed") {
		t.Error("nil verdict should say not analyzed")
	}
}

func sampleReport() Report {
	ok := true
	bad := false
	tp, _ := topo.Uniform(8, 1, 2, 2)
	sets := make([][]int, 8)
	for n := range sets {
		sets[n] = []int{(n + 4) % 8}
	}
	cells := []Cell{
		{Name: "fleet-64/zone/naive", FleetNodes: 64, Severity: "zone", Placement: "naive",
			MTTRSecs: 4.2, AvailabilityPct: 97.1, RecoveryLost: 12, ChecksumOK: &bad, Topology: "1p/2z/4r"},
		{Name: "fleet-64/zone/spread", FleetNodes: 64, Severity: "zone", Placement: "spread",
			MTTRSecs: 3.8, AvailabilityPct: 98.0, RecoveryRemote: 24, ChecksumOK: &ok, Topology: "1p/2z/4r"},
		{Name: "fleet-16/zone/spread", FleetNodes: 16, Severity: "zone", Placement: "spread",
			MTTRSecs: 1.2, AvailabilityPct: 99.0, RecoveryRemote: 8, ChecksumOK: &ok, Topology: "1p/2z/4r"},
		{Name: "fleet-16/none", FleetNodes: 16, Severity: "none",
			MTTRSecs: 0, AvailabilityPct: 100},
	}
	return BuildReport(Meta{Tool: "test", Scenario: "fleet", Seed: 7},
		[]*Survivability{Analyze(tp, sets, "spread", true)}, cells)
}

func TestBuildReportSortsCells(t *testing.T) {
	rep := sampleReport()
	if rep.Cells[0].FleetNodes != 16 || rep.Cells[len(rep.Cells)-1].FleetNodes != 64 {
		t.Fatalf("cells not sorted by fleet size: %+v", rep.Cells)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Fatal("schema version missing")
	}
}

func TestJSONRoundTripByteStable(t *testing.T) {
	rep := sampleReport()
	var a, b bytes.Buffer
	if err := WriteJSON(&a, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same report serialized differently")
	}
	path := filepath.Join(t.TempDir(), "stress.json")
	if err := os.WriteFile(path, a.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(rep.Cells) || back.Seed != rep.Seed {
		t.Fatal("round trip lost data")
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReportFile(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestHTMLSelfContainedAndStable(t *testing.T) {
	rep := sampleReport()
	var a, b bytes.Buffer
	if err := WriteHTML(&a, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTML(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same report rendered differently")
	}
	out := a.String()
	for _, want := range []string{
		"<svg", "MTTR (s)", "Availability (%)", "zone/naive", "zone/spread",
		"survivable", "MISMATCH", "Fleet stress report",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "<script src"} {
		if strings.Contains(out, banned) {
			t.Errorf("html not self-contained: found %q", banned)
		}
	}
}

func TestRound6(t *testing.T) {
	if Round6(1.23456789) != 1.234568 {
		t.Errorf("Round6 = %v", Round6(1.23456789))
	}
	if Round6(0.1+0.2) != 0.3 {
		t.Errorf("Round6(0.1+0.2) = %v", Round6(0.1+0.2))
	}
}
