package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Axis is one swept dimension: a dotted JSON field path into Scenario (e.g.
// "nvm_per_core_bw", "remote.every", "workload.ckpt_mb") and the values it
// takes.
type Axis struct {
	Field  string        `json:"field"`
	Values []interface{} `json:"values"`
}

// Sweep is a cartesian grid over a base scenario: every combination of axis
// values produces one scenario. Sweeps serialize like scenarios, so a whole
// parameter study is one JSON file.
type Sweep struct {
	Base Scenario `json:"base"`
	Axes []Axis   `json:"axes"`
}

// LoadSweep parses a sweep from JSON, rejecting unknown fields.
func LoadSweep(r io.Reader) (*Sweep, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sw Sweep
	if err := dec.Decode(&sw); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return &sw, nil
}

// Expand materializes the grid: the cartesian product of all axis values
// applied to the base, in row-major order (later axes vary fastest). Each
// result validates; scenario names carry the axis assignments. An empty axis
// list yields just the validated base.
func (sw *Sweep) Expand() ([]*Scenario, error) {
	for i, ax := range sw.Axes {
		if ax.Field == "" {
			return nil, fmt.Errorf("sweep: axis %d has no field", i)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Field)
		}
	}
	idx := make([]int, len(sw.Axes))
	var out []*Scenario
	for {
		sc, err := sw.point(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(sw.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// point builds the scenario for one grid coordinate by setting each axis
// field in the base's JSON form and decoding it back, so axis paths use the
// same names as scenario files and typos surface as unknown-field errors.
func (sw *Sweep) point(idx []int) (*Scenario, error) {
	raw, err := json.Marshal(&sw.Base)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	var tags []string
	for a, ax := range sw.Axes {
		v := ax.Values[idx[a]]
		if err := setPath(m, strings.Split(ax.Field, "."), v); err != nil {
			return nil, fmt.Errorf("sweep: axis %q: %w", ax.Field, err)
		}
		tags = append(tags, fmt.Sprintf("%s=%v", ax.Field, v))
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("sweep: point %s: %w", strings.Join(tags, ","), err)
	}
	base := sc.Name
	if base == "" {
		base = "sweep"
	}
	sc.Name = base + "/" + strings.Join(tags, ",")
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// setPath writes v at the dotted path inside the scenario's JSON object,
// creating intermediate objects (omitted optional sections) as needed.
func setPath(m map[string]interface{}, path []string, v interface{}) error {
	for i, key := range path[:len(path)-1] {
		next, ok := m[key]
		if !ok || next == nil {
			child := map[string]interface{}{}
			m[key] = child
			m = child
			continue
		}
		child, ok := next.(map[string]interface{})
		if !ok {
			return fmt.Errorf("%q is not an object", strings.Join(path[:i+1], "."))
		}
		m = child
	}
	m[path[len(path)-1]] = v
	return nil
}
