package scenario_test

import (
	"bufio"
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"nvmcp/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fullScenario exercises every section of the spec.
func fullScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:         "golden",
		Nodes:        4,
		CoresPerNode: 2,
		NVMPerCoreBW: 400e6,
		LinkBW:       250e6,
		Workload: scenario.WorkloadSpec{
			App:       "gtc",
			CkptMB:    48,
			ScaleComm: true,
			IterSecs:  4,
		},
		Iterations: 4,
		Local:      scenario.LocalSpec{Policy: "dcpcp", RateCap: 100e6},
		Remote:     scenario.RemoteSpec{Policy: "buddy-precopy", AutoRateCap: true, Every: 2},
		Bottom:     scenario.BottomSpec{Policy: "pfs-drain", AggregateBW: 2e9},
		Failures:   []scenario.FailureSpec{{AtSecs: 10, Node: 1, Hard: true}},
		PayloadCap: 2048,
		Obs:        scenario.ObsSpec{ReportOut: "report.json"},
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := fullScenario()
	buf, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.Load(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("Load of Marshal output: %v", err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\nbefore %+v\nafter  %+v", sc, back)
	}
}

func TestGoldenScenarioFile(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	want, err := fullScenario().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if *update {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("testdata/golden.json is stale (rerun with -update):\ngot\n%s\nwant\n%s", got, want)
	}
	sc, err := scenario.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, fullScenario()) {
		t.Fatalf("golden file decodes to %+v", sc)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := scenario.Load(strings.NewReader(`{"nodes": 2, "cores_per_node": 2, "iterations": 1, "workload": {"app": "gtc"}, "remotee": {}}`))
	if err == nil || !strings.Contains(err.Error(), "remotee") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	mod := func(f func(*scenario.Scenario)) *scenario.Scenario {
		sc := fullScenario()
		f(sc)
		return sc
	}
	cases := []struct {
		name string
		sc   *scenario.Scenario
		want string
	}{
		{"no nodes", mod(func(sc *scenario.Scenario) { sc.Nodes = 0 }), "nodes must be >= 1"},
		{"no cores", mod(func(sc *scenario.Scenario) { sc.CoresPerNode = 0 }), "cores_per_node must be >= 1"},
		{"no iterations", mod(func(sc *scenario.Scenario) { sc.Iterations = 0 }), "iterations must be >= 1"},
		{"negative bw", mod(func(sc *scenario.Scenario) { sc.LinkBW = -1 }), "bandwidths must be non-negative"},
		{"bad app", mod(func(sc *scenario.Scenario) { sc.Workload.App = "nope" }), `unknown workload "nope" (valid:`},
		{"bad local", mod(func(sc *scenario.Scenario) { sc.Local.Policy = "xyz" }), `local: unknown local policy "xyz"`},
		{"bad remote", mod(func(sc *scenario.Scenario) { sc.Remote.Policy = "xyz" }), `remote: unknown remote policy "xyz"`},
		{"bad bottom", mod(func(sc *scenario.Scenario) { sc.Bottom.Policy = "xyz" }), `bottom: unknown bottom policy "xyz"`},
		{"failure off-cluster", mod(func(sc *scenario.Scenario) { sc.Failures[0].Node = 4 }), "cluster has nodes 0..3"},
		{"failure at t=0", mod(func(sc *scenario.Scenario) { sc.Failures[0].AtSecs = 0 }), "must be after t=0"},
		{"negative rate cap", mod(func(sc *scenario.Scenario) { sc.Local.RateCap = -5 }), "rate caps must be >= 0"},
		{"bad failure kind", mod(func(sc *scenario.Scenario) { sc.Failures[0].Kind = "meteor" }), "unknown kind"},
		{"hard vs kind conflict", mod(func(sc *scenario.Scenario) { sc.Failures[0].Kind = "soft" }), "sets hard but kind"},
		{"negative chunks", mod(func(sc *scenario.Scenario) { sc.Failures[0].Chunks = -1 }), "chunks must be >= 0"},
		{"factor out of range", mod(func(sc *scenario.Scenario) {
			sc.Failures[0] = scenario.FailureSpec{AtSecs: 10, Node: 1, Kind: "link-flap", DurationSecs: 1, Factor: 1}
		}), "factor must be in [0,1)"},
		{"flap without duration", mod(func(sc *scenario.Scenario) {
			sc.Failures[0] = scenario.FailureSpec{AtSecs: 10, Node: 1, Kind: "link-flap"}
		}), "link-flap needs duration_secs > 0"},
		{"model without horizon", mod(func(sc *scenario.Scenario) {
			sc.FaultModel = &scenario.FaultModelSpec{MTBFSoftSecs: 30}
		}), "horizon_secs must be > 0"},
		{"model negative mtbf", mod(func(sc *scenario.Scenario) {
			sc.FaultModel = &scenario.FaultModelSpec{MTBFSoftSecs: -1, HorizonSecs: 60}
		}), "MTBFs must be >= 0"},
		{"model all classes off", mod(func(sc *scenario.Scenario) {
			sc.FaultModel = &scenario.FaultModelSpec{HorizonSecs: 60}
		}), "at least one positive MTBF"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
	if err := fullScenario().Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	// Every kind plus a stochastic model, together, validates.
	sc := fullScenario()
	sc.Failures = []scenario.FailureSpec{
		{AtSecs: 5, Node: 0, Kind: "soft"},
		{AtSecs: 6, Node: 1, Kind: "hard"},
		{AtSecs: 7, Node: 2, Kind: "nvm-corrupt", Chunks: 3, Torn: true},
		{AtSecs: 8, Node: 3, Kind: "link-flap", DurationSecs: 2, Factor: 0.1},
		{AtSecs: 9, Node: 0, Kind: "buddy-loss"},
	}
	sc.FaultModel = &scenario.FaultModelSpec{MTBFSoftSecs: 120, MTBFHardSecs: 600, HorizonSecs: 300, Seed: 1}
	sc.FaultSeed = 7
	if err := sc.Validate(); err != nil {
		t.Errorf("full fault taxonomy rejected: %v", err)
	}
}

func TestParseScale(t *testing.T) {
	for _, name := range []string{"tiny", "quick", "paper"} {
		if _, err := scenario.ParseScale(name); err != nil {
			t.Errorf("ParseScale(%q): %v", name, err)
		}
	}
	if _, err := scenario.ParseScale("huge"); err == nil || !strings.Contains(err.Error(), "valid: tiny, quick, paper") {
		t.Errorf("ParseScale(huge): %v", err)
	}
}

// TestPresetTableCompleteness checks that every experiment ID in the
// DESIGN.md §4 index resolves to a preset, so the table and the code cannot
// drift apart silently.
func TestPresetTableCompleteness(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	idRe := regexp.MustCompile(`^\|\s*([A-Z][A-Z0-9-]*)\s*\|`)
	inIndex := false
	var ids []string
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "## ") {
			inIndex = strings.HasPrefix(line, "## 4.")
			continue
		}
		if !inIndex {
			continue
		}
		if m := idRe.FindStringSubmatch(line); m != nil && m[1] != "ID" {
			ids = append(ids, m[1])
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ids) < 15 {
		t.Fatalf("only parsed %d experiment ids from DESIGN.md §4 (%v); parser broken?", len(ids), ids)
	}
	for _, id := range ids {
		if _, ok := scenario.PresetByDesignID(id); !ok {
			t.Errorf("DESIGN.md §4 id %q has no preset", id)
		}
	}
}

func TestClusterShapedPresetsBuildAtEveryScale(t *testing.T) {
	scales := []scenario.Scale{scenario.ScaleTiny, scenario.ScaleQuick, scenario.ScalePaper}
	for _, p := range scenario.Presets() {
		if !p.ClusterShaped() {
			continue
		}
		for _, s := range scales {
			sc, err := scenario.BuildPreset(p.ID, s)
			if err != nil {
				t.Errorf("BuildPreset(%q, %s): %v", p.ID, s, err)
				continue
			}
			// Presets must round-trip like hand-written files do.
			buf, err := sc.Marshal()
			if err != nil {
				t.Errorf("%s@%s: %v", p.ID, s, err)
				continue
			}
			if _, err := scenario.Load(bytes.NewReader(buf)); err != nil {
				t.Errorf("%s@%s does not round-trip: %v", p.ID, s, err)
			}
		}
	}
}

func TestBuildPresetErrors(t *testing.T) {
	_, err := scenario.BuildPreset("nope", scenario.ScaleTiny)
	if err == nil || !strings.Contains(err.Error(), `unknown preset "nope" (valid:`) {
		t.Errorf("unknown preset: %v", err)
	}
	_, err = scenario.BuildPreset("tab1", scenario.ScaleTiny)
	if err == nil || !strings.Contains(err.Error(), "nvmcp-bench tab1") {
		t.Errorf("bench-only preset should point at nvmcp-bench: %v", err)
	}
}

func TestPresetIDsSortedAndUnique(t *testing.T) {
	ids := scenario.PresetIDs()
	seen := map[string]bool{}
	for i, id := range ids {
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("PresetIDs not sorted/unique at %q: %v", id, ids)
		}
		seen[id] = true
	}
	if !seen["fig9"] || !seen["erasure"] {
		t.Fatalf("PresetIDs missing expected entries: %v", ids)
	}
}

func TestAutoRemoteRateCap(t *testing.T) {
	// 2 versions x 100 bytes x 4 ranks over a 2x5s remote interval = 80 B/s.
	got := scenario.AutoRemoteRateCap(100, 4, 5e9, 2)
	if got != 80 {
		t.Fatalf("AutoRemoteRateCap = %g, want 80", got)
	}
	if scenario.AutoRemoteRateCap(100, 4, 0, 2) != 0 {
		t.Fatal("zero iteration time should give an uncapped rate")
	}
	// every < 1 clamps to 1.
	if scenario.AutoRemoteRateCap(100, 4, 5e9, 0) != 160 {
		t.Fatal("every=0 should behave like every=1")
	}
}
