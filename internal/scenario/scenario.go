// Package scenario is the declarative configuration surface of the
// simulator: one serializable spec describing machine shape, workload,
// checkpoint policies (local, remote, bottom), failure schedule and
// observability outputs. Scenarios round-trip through JSON, validate with
// actionable errors, come as named presets for every experiment in
// DESIGN.md §4, and expand into cartesian sweeps. The cluster builds runs
// from scenarios (cluster.FromScenario); new schemes appear here for free
// once registered in internal/policy.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nvmcp/internal/drift"
	"nvmcp/internal/fault"
	"nvmcp/internal/mem"
	"nvmcp/internal/policy"
	"nvmcp/internal/slo"
	"nvmcp/internal/topo"
	"nvmcp/internal/workload"
)

// Scale names a run size: tiny (smoke tests), quick (CI-friendly) or paper
// (the full 48-rank configuration of Section VI).
type Scale string

const (
	// ScaleTiny runs 2 nodes x 2 cores with 2 short iterations.
	ScaleTiny Scale = "tiny"
	// ScaleQuick runs 2 nodes x 4 cores with 3 iterations.
	ScaleQuick Scale = "quick"
	// ScalePaper runs 4 nodes x 12 cores (48 MPI processes) x 4 iterations.
	ScalePaper Scale = "paper"
)

// ParseScale resolves a scale name.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScaleTiny, ScaleQuick, ScalePaper:
		return Scale(s), nil
	}
	return "", fmt.Errorf("unknown scale %q (valid: tiny, quick, paper)", s)
}

// Dims returns the machine and run shape for a scale.
func (s Scale) Dims() (nodes, cores, iters int) {
	switch s {
	case ScalePaper:
		return 4, 12, 4
	case ScaleTiny:
		return 2, 2, 2
	default:
		return 2, 4, 3
	}
}

// CkptMB is the per-rank checkpoint volume a scale pins the workload to
// (0 = the application's natural size).
func (s Scale) CkptMB() float64 {
	switch s {
	case ScalePaper:
		return 0
	case ScaleTiny:
		return 24
	default:
		return 100
	}
}

// IterSecs is the compute-iteration duration a scale pins (0 = natural).
func (s Scale) IterSecs() float64 {
	switch s {
	case ScalePaper:
		return 0
	case ScaleTiny:
		return 2
	default:
		return 10
	}
}

// WorkloadSpec selects and re-shapes an application profile.
type WorkloadSpec struct {
	// App names a workload profile: gtc, lammps-rhodo, cm1, amr.
	App string `json:"app"`
	// CkptMB scales the per-rank checkpoint volume to this many MB
	// (0 = the profile's natural size).
	CkptMB float64 `json:"ckpt_mb,omitempty"`
	// ScaleComm scales communication volume by the same factor as CkptMB,
	// preserving the compute/communication shape at reduced size.
	ScaleComm bool `json:"scale_comm,omitempty"`
	// CommMB overrides per-iteration communication volume in MB
	// (-1 disables communication, 0 keeps the profile's).
	CommMB float64 `json:"comm_mb,omitempty"`
	// IterSecs overrides the compute-iteration duration (0 keeps the
	// profile's).
	IterSecs float64 `json:"iter_secs,omitempty"`
	// PhaseShiftIter, when > 0, changes the workload's write behaviour from
	// that (0-based) iteration on: every non-init chunk gains
	// PhaseShiftMods extra late-interval writes per iteration, jumping the
	// re-dirty rate — a declarative workload phase change for the drift
	// observatory's phase detector.
	PhaseShiftIter int64 `json:"phase_shift_iter,omitempty"`
	// PhaseShiftMods is the number of extra late writes per chunk per
	// iteration after the shift (default 2 when PhaseShiftIter is set).
	PhaseShiftMods int `json:"phase_shift_mods,omitempty"`
}

// LocalSpec configures the local checkpoint level.
type LocalSpec struct {
	// Policy names the local pre-copy policy: none, cpc, dcpc, dcpcp.
	Policy string `json:"policy,omitempty"`
	// RateCap throttles background pre-copy in bytes/sec (0 = uncapped).
	RateCap float64 `json:"rate_cap,omitempty"`
	// Every takes a coordinated local checkpoint every N-th iteration.
	Every int `json:"every,omitempty"`
	// ForceFull disables dirty tracking (the full-checkpoint baseline).
	ForceFull bool `json:"force_full,omitempty"`
}

// RemoteSpec configures the remote checkpoint level.
type RemoteSpec struct {
	// Policy names the remote tier: none, buddy-burst, buddy-precopy,
	// erasure.
	Policy string `json:"policy,omitempty"`
	// RateCap throttles incremental shipping in bytes/sec.
	RateCap float64 `json:"rate_cap,omitempty"`
	// AutoRateCap derives the paper's pre-copy shipping cap
	// (2·D·cores / remote interval) from the workload; overrides RateCap.
	AutoRateCap bool `json:"auto_rate_cap,omitempty"`
	// DelaySecs holds shipping until this long into each remote interval.
	DelaySecs float64 `json:"delay_secs,omitempty"`
	// Every triggers a remote checkpoint every N-th local one.
	Every int `json:"every,omitempty"`
	// Group hints the redundancy group size (0 = tier default).
	Group int `json:"group,omitempty"`
	// Placement selects replica placement: spread (default, zone
	// anti-affinity over the fleet topology) or naive (the paper's n+1
	// ring / consecutive groups).
	Placement string `json:"placement,omitempty"`
	// StaggerMax, when positive, gates remote drains behind an admission
	// gate admitting at most this many node drains at once — the control
	// plane's cap on peak interconnect usage (Fig 9/10).
	StaggerMax int `json:"stagger_max,omitempty"`
	// StaggerSlotSecs spaces consecutive drain grants this far apart
	// (usable alone or with StaggerMax).
	StaggerSlotSecs float64 `json:"stagger_slot_secs,omitempty"`
	// Replan re-homes replica placement away from the victims of hard or
	// correlated failures during recovery (buddy tiers only).
	Replan bool `json:"replan_on_failure,omitempty"`
}

// BottomSpec configures the bottom storage level.
type BottomSpec struct {
	// Policy names the bottom tier: none, pfs-drain.
	Policy string `json:"policy,omitempty"`
	// AggregateBW / StripeBW size the PFS (0 = package defaults).
	AggregateBW float64 `json:"aggregate_bw,omitempty"`
	StripeBW    float64 `json:"stripe_bw,omitempty"`
}

// FailureSpec schedules one injected failure.
type FailureSpec struct {
	AtSecs float64 `json:"at_secs"`
	// Node is the failing node (for buddy-loss: the node whose remote
	// copies are lost — the fault strikes whichever node holds them).
	Node int  `json:"node"`
	Hard bool `json:"hard,omitempty"`
	// Kind selects the failure class: soft, hard, nvm-corrupt, link-flap,
	// buddy-loss. Empty falls back to Hard's soft/hard split.
	Kind string `json:"kind,omitempty"`
	// Chunks bounds how many committed chunks an nvm-corrupt fault damages
	// (0 means 1); Torn switches from bit-flips to torn writes.
	Chunks int  `json:"chunks,omitempty"`
	Torn   bool `json:"torn,omitempty"`
	// DurationSecs and Factor shape a link-flap: outage length and residual
	// bandwidth fraction (0 = fully down, must be < 1).
	DurationSecs float64 `json:"duration_secs,omitempty"`
	Factor       float64 `json:"factor,omitempty"`
	// Provider/Zone/Rack address the failure domain of a correlated kind
	// (rack-outage, zone-outage, provider-outage). Requires a fleet
	// topology.
	Provider int `json:"provider,omitempty"`
	Zone     int `json:"zone,omitempty"`
	Rack     int `json:"rack,omitempty"`
	// Soft makes a domain outage spare the victims' NVM (coordinated
	// power-cycle instead of destruction).
	Soft bool `json:"soft,omitempty"`
	// Waves and WaveDelaySecs shape a link-storm's seeded cascade: how many
	// rack-to-rack propagation rounds, and the virtual time between them.
	Waves         int     `json:"waves,omitempty"`
	WaveDelaySecs float64 `json:"wave_delay_secs,omitempty"`
}

// Event lowers the spec to a fault.Event (validation and injection share
// this mapping).
func (f FailureSpec) Event() (fault.Event, error) {
	kind, err := fault.ParseKind(f.Kind)
	if err != nil {
		return fault.Event{}, err
	}
	if f.Kind == "" && f.Hard {
		kind = fault.Hard
	}
	return fault.Event{
		At:        time.Duration(f.AtSecs * float64(time.Second)),
		Node:      f.Node,
		Kind:      kind,
		Chunks:    f.Chunks,
		Torn:      f.Torn,
		Duration:  time.Duration(f.DurationSecs * float64(time.Second)),
		Factor:    f.Factor,
		Provider:  f.Provider,
		Zone:      f.Zone,
		Rack:      f.Rack,
		Soft:      f.Soft,
		Waves:     f.Waves,
		WaveDelay: time.Duration(f.WaveDelaySecs * float64(time.Second)),
	}, nil
}

// FaultModelSpec adds stochastic failures on top of the explicit schedule:
// exponential inter-arrival per class, deterministic for a given seed.
type FaultModelSpec struct {
	MTBFSoftSecs float64 `json:"mtbf_soft_secs,omitempty"`
	MTBFHardSecs float64 `json:"mtbf_hard_secs,omitempty"`
	// MTBFRackSecs / MTBFZoneSecs draw correlated rack-outage and
	// zone-outage events over the fleet topology (fleet scenarios only).
	MTBFRackSecs float64 `json:"mtbf_rack_secs,omitempty"`
	MTBFZoneSecs float64 `json:"mtbf_zone_secs,omitempty"`
	HorizonSecs  float64 `json:"horizon_secs"`
	Seed         int64   `json:"seed,omitempty"`
}

// ObsSpec names observability artifact outputs a runner should write.
type ObsSpec struct {
	EventsOut  string `json:"events_out,omitempty"`
	MetricsOut string `json:"metrics_out,omitempty"`
	TraceOut   string `json:"trace_out,omitempty"`
	ReportOut  string `json:"report_out,omitempty"`
}

// Scenario is one declarative run description.
type Scenario struct {
	Name string `json:"name,omitempty"`

	Nodes        int     `json:"nodes"`
	CoresPerNode int     `json:"cores_per_node"`
	DRAMPerNode  int64   `json:"dram_per_node,omitempty"`
	NVMPerNode   int64   `json:"nvm_per_node,omitempty"`
	NVMPerCoreBW float64 `json:"nvm_per_core_bw,omitempty"`
	LinkBW       float64 `json:"link_bw,omitempty"`

	// Fleet generates the machine shape instead: a heterogeneous fleet of
	// templated nodes over a failure-domain topology. Mutually exclusive
	// with Nodes/CoresPerNode.
	Fleet *FleetSpec `json:"fleet,omitempty"`

	Workload   WorkloadSpec `json:"workload"`
	Iterations int          `json:"iterations"`

	Local  LocalSpec  `json:"local,omitempty"`
	Remote RemoteSpec `json:"remote,omitempty"`
	Bottom BottomSpec `json:"bottom,omitempty"`

	Failures   []FailureSpec   `json:"failures,omitempty"`
	FaultModel *FaultModelSpec `json:"fault_model,omitempty"`
	// FaultSeed seeds nvm-corrupt victim selection.
	FaultSeed int64 `json:"fault_seed,omitempty"`

	NoCheckpoint  bool `json:"no_checkpoint,omitempty"`
	PayloadCap    int  `json:"payload_cap,omitempty"`
	SingleVersion bool `json:"single_version,omitempty"`

	// Shards pins the run's event-engine shard count (0 = the runner's
	// default policy, usually auto; 1 = the serial engine). Requests the
	// topology or configuration cannot honor are capped or fall back.
	Shards int `json:"shards,omitempty"`

	Obs ObsSpec `json:"obs,omitempty"`

	// SLO declares the run's service-level objectives, evaluated online by
	// the flight recorder over fixed virtual-time windows.
	SLO *slo.Spec `json:"slo,omitempty"`

	// Drift declares the run's model-drift thresholds: the observatory
	// re-evaluates the paper's §III model each window with measured inputs
	// and bounds the predicted-vs-measured relative error per quantity.
	Drift *drift.Spec `json:"drift,omitempty"`
}

// Load parses a scenario from JSON, rejecting unknown fields so typos
// surface instead of silently configuring nothing.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadFile reads and validates a scenario file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	sc, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Marshal renders the scenario as indented JSON.
func (sc *Scenario) Marshal() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// Validate checks the scenario, returning actionable errors: unknown names
// list the valid alternatives, out-of-range numbers say the range.
func (sc *Scenario) Validate() error {
	if sc.Fleet != nil {
		if sc.Nodes != 0 || sc.CoresPerNode != 0 {
			return fmt.Errorf("scenario %s: fleet generates the machine shape; drop nodes/cores_per_node",
				sc.label())
		}
		if err := sc.Fleet.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.label(), err)
		}
	} else {
		if sc.Nodes < 1 {
			return fmt.Errorf("scenario %s: nodes must be >= 1, got %d", sc.label(), sc.Nodes)
		}
		if sc.CoresPerNode < 1 {
			return fmt.Errorf("scenario %s: cores_per_node must be >= 1, got %d", sc.label(), sc.CoresPerNode)
		}
	}
	if sc.Iterations < 1 {
		return fmt.Errorf("scenario %s: iterations must be >= 1, got %d", sc.label(), sc.Iterations)
	}
	if sc.NVMPerCoreBW < 0 || sc.LinkBW < 0 {
		return fmt.Errorf("scenario %s: bandwidths must be non-negative (nvm_per_core_bw %g, link_bw %g)",
			sc.label(), sc.NVMPerCoreBW, sc.LinkBW)
	}
	if sc.Shards < 0 {
		return fmt.Errorf("scenario %s: shards must be >= 0, got %d", sc.label(), sc.Shards)
	}
	if _, ok := workload.SpecByName(sc.Workload.App); !ok {
		var names []string
		for _, s := range workload.Specs() {
			names = append(names, s.Name)
		}
		names = append(names, "amr")
		return fmt.Errorf("scenario %s: unknown workload %q (valid: %s)",
			sc.label(), sc.Workload.App, strings.Join(names, ", "))
	}
	if sc.Workload.CkptMB < 0 {
		return fmt.Errorf("scenario %s: workload.ckpt_mb must be >= 0, got %g", sc.label(), sc.Workload.CkptMB)
	}
	if sc.Workload.CommMB < -1 {
		return fmt.Errorf("scenario %s: workload.comm_mb must be >= -1 (-1 disables communication), got %g",
			sc.label(), sc.Workload.CommMB)
	}
	if _, err := policy.Parse(policy.KindLocal, sc.Local.Policy); err != nil {
		return fmt.Errorf("scenario %s: local: %w", sc.label(), err)
	}
	if _, err := policy.Parse(policy.KindRemote, sc.Remote.Policy); err != nil {
		return fmt.Errorf("scenario %s: remote: %w", sc.label(), err)
	}
	if _, err := policy.Parse(policy.KindBottom, sc.Bottom.Policy); err != nil {
		return fmt.Errorf("scenario %s: bottom: %w", sc.label(), err)
	}
	if sc.Local.Every < 0 || sc.Remote.Every < 0 {
		return fmt.Errorf("scenario %s: checkpoint intervals must be >= 0 (local %d, remote %d)",
			sc.label(), sc.Local.Every, sc.Remote.Every)
	}
	if sc.Local.RateCap < 0 || sc.Remote.RateCap < 0 {
		return fmt.Errorf("scenario %s: rate caps must be >= 0 (local %g, remote %g)",
			sc.label(), sc.Local.RateCap, sc.Remote.RateCap)
	}
	if _, err := policy.ParsePlacement(sc.Remote.Placement); err != nil {
		return fmt.Errorf("scenario %s: remote: %w", sc.label(), err)
	}
	if sc.Remote.StaggerMax < 0 || sc.Remote.StaggerSlotSecs < 0 {
		return fmt.Errorf("scenario %s: remote stagger fields must be >= 0 (max %d, slot %gs)",
			sc.label(), sc.Remote.StaggerMax, sc.Remote.StaggerSlotSecs)
	}
	nodes := sc.EffectiveNodes()
	tp := sc.Topology()
	for i, f := range sc.Failures {
		kind, err := fault.ParseKind(f.Kind)
		if err != nil {
			return fmt.Errorf("scenario %s: failure %d: %w", sc.label(), i, err)
		}
		if !kind.Correlated() && (f.Node < 0 || f.Node >= nodes) {
			return fmt.Errorf("scenario %s: failure %d targets node %d, cluster has nodes 0..%d",
				sc.label(), i, f.Node, nodes-1)
		}
		if f.AtSecs <= 0 {
			return fmt.Errorf("scenario %s: failure %d at %gs; must be after t=0", sc.label(), i, f.AtSecs)
		}
		if f.Hard && f.Kind != "" && kind != fault.Hard {
			return fmt.Errorf("scenario %s: failure %d sets hard but kind %q", sc.label(), i, f.Kind)
		}
		if f.Chunks < 0 {
			return fmt.Errorf("scenario %s: failure %d: chunks must be >= 0, got %d", sc.label(), i, f.Chunks)
		}
		if f.Factor < 0 || f.Factor >= 1 {
			return fmt.Errorf("scenario %s: failure %d: factor must be in [0,1), got %g", sc.label(), i, f.Factor)
		}
		if kind == fault.LinkFlap && f.DurationSecs <= 0 {
			return fmt.Errorf("scenario %s: failure %d: link-flap needs duration_secs > 0", sc.label(), i)
		}
		ev, err := f.Event()
		if err != nil {
			return fmt.Errorf("scenario %s: failure %d: %w", sc.label(), i, err)
		}
		if err := ev.Validate(nodes, tp); err != nil {
			return fmt.Errorf("scenario %s: failure %d: %w", sc.label(), i, err)
		}
	}
	if m := sc.FaultModel; m != nil {
		if m.HorizonSecs <= 0 {
			return fmt.Errorf("scenario %s: fault_model.horizon_secs must be > 0, got %g", sc.label(), m.HorizonSecs)
		}
		if m.MTBFSoftSecs < 0 || m.MTBFHardSecs < 0 || m.MTBFRackSecs < 0 || m.MTBFZoneSecs < 0 {
			return fmt.Errorf("scenario %s: fault_model MTBFs must be >= 0 (soft %g, hard %g, rack %g, zone %g)",
				sc.label(), m.MTBFSoftSecs, m.MTBFHardSecs, m.MTBFRackSecs, m.MTBFZoneSecs)
		}
		if m.MTBFSoftSecs == 0 && m.MTBFHardSecs == 0 && m.MTBFRackSecs == 0 && m.MTBFZoneSecs == 0 {
			return fmt.Errorf("scenario %s: fault_model needs at least one positive MTBF", sc.label())
		}
		if (m.MTBFRackSecs > 0 || m.MTBFZoneSecs > 0) && tp == nil {
			return fmt.Errorf("scenario %s: fault_model rack/zone MTBFs need a fleet topology", sc.label())
		}
	}
	if sc.SLO != nil {
		if err := sc.SLO.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.label(), err)
		}
	}
	if sc.Drift != nil {
		if err := sc.Drift.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.label(), err)
		}
	}
	if sc.Workload.PhaseShiftIter < 0 || sc.Workload.PhaseShiftMods < 0 {
		return fmt.Errorf("scenario %s: workload phase-shift fields must be >= 0 (iter %d, mods %d)",
			sc.label(), sc.Workload.PhaseShiftIter, sc.Workload.PhaseShiftMods)
	}
	return nil
}

// EffectiveNodes is the compute-node count, fleet-aware.
func (sc *Scenario) EffectiveNodes() int {
	if sc.Fleet != nil {
		return sc.Fleet.Nodes
	}
	return sc.Nodes
}

// Topology is the fleet's failure-domain layout, or nil for fixed-shape
// scenarios (which have no provider/zone/rack coordinates).
func (sc *Scenario) Topology() *topo.Topology {
	if sc.Fleet == nil {
		return nil
	}
	tp, err := sc.Fleet.Topology()
	if err != nil {
		return nil
	}
	return tp
}

func (sc *Scenario) label() string {
	if sc.Name != "" {
		return fmt.Sprintf("%q", sc.Name)
	}
	return "(unnamed)"
}

// AppSpec resolves and re-shapes the workload profile per the spec.
func (sc *Scenario) AppSpec() (workload.AppSpec, error) {
	app, ok := workload.SpecByName(sc.Workload.App)
	if !ok {
		return workload.AppSpec{}, fmt.Errorf("scenario %s: unknown workload %q", sc.label(), sc.Workload.App)
	}
	if sc.Workload.CkptMB > 0 {
		target := int64(sc.Workload.CkptMB * float64(mem.MB))
		factor := float64(target) / float64(app.CheckpointSize())
		app = app.ScaledTo(target)
		if sc.Workload.ScaleComm {
			app.CommPerIter = int64(float64(app.CommPerIter) * factor)
		}
	}
	switch {
	case sc.Workload.CommMB < 0:
		app.CommPerIter = 0
	case sc.Workload.CommMB > 0:
		app.CommPerIter = int64(sc.Workload.CommMB * float64(mem.MB))
	}
	if sc.Workload.IterSecs > 0 {
		app.IterTime = time.Duration(sc.Workload.IterSecs * float64(time.Second))
	}
	if sc.Workload.PhaseShiftIter > 0 {
		app.ShiftIter = sc.Workload.PhaseShiftIter
		app.ShiftExtraMods = sc.Workload.PhaseShiftMods
		if app.ShiftExtraMods == 0 {
			app.ShiftExtraMods = 2
		}
	}
	return app, nil
}

// AutoRemoteRateCap is the paper's remote pre-copy shipping cap: two full
// checkpoint volumes per node (both remote versions) spread over one remote
// checkpoint interval — 2·D·cores / (every·iterTime).
func AutoRemoteRateCap(ckptSize int64, ranksPerNode int, iterTime time.Duration, every int) float64 {
	if every < 1 {
		every = 1
	}
	interval := time.Duration(every) * iterTime
	if interval <= 0 {
		return 0
	}
	return 2 * float64(ckptSize) * float64(ranksPerNode) / interval.Seconds()
}

// ResolvedRemoteRateCap returns the scenario's effective remote rate cap,
// deriving it from the (re-shaped) workload when AutoRateCap is set.
func (sc *Scenario) ResolvedRemoteRateCap() (float64, error) {
	if !sc.Remote.AutoRateCap {
		return sc.Remote.RateCap, nil
	}
	app, err := sc.AppSpec()
	if err != nil {
		return 0, err
	}
	cores := sc.CoresPerNode
	if sc.Fleet != nil {
		// Heterogeneous fleet: cap for the largest template so no node's
		// shipping starves.
		for _, tm := range sc.Fleet.Templates {
			if tm.Cores > cores {
				cores = tm.Cores
			}
		}
	}
	return AutoRemoteRateCap(app.CheckpointSize(), cores, app.IterTime, sc.Remote.Every), nil
}

// Base returns the canonical scenario skeleton for an app at a scale and
// per-core NVM bandwidth — the shared shape of every experiment preset
// (tiny/quick runs re-scale volumes so contention shape survives at speed).
func Base(appName string, scale Scale, bwPerCore float64) *Scenario {
	nodes, cores, iters := scale.Dims()
	return &Scenario{
		Name:         fmt.Sprintf("%s-%s", appName, scale),
		Nodes:        nodes,
		CoresPerNode: cores,
		NVMPerCoreBW: bwPerCore,
		Workload: WorkloadSpec{
			App:       appName,
			CkptMB:    scale.CkptMB(),
			ScaleComm: scale.CkptMB() > 0,
			IterSecs:  scale.IterSecs(),
		},
		Iterations: iters,
		// Large chunk payloads are pointless at cluster scale; timing uses
		// virtual sizes.
		PayloadCap: 2048,
	}
}
