package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"nvmcp/internal/topo"
)

// Startup pattern names.
const (
	StartupInstant     = "instant"
	StartupLinear      = "linear"
	StartupExponential = "exponential"
	StartupWave        = "wave"
)

// NodeTemplate is one weighted machine shape a generated fleet draws from.
// Zero-valued resource fields inherit the scenario-level defaults
// (dram_per_node, nvm_per_node, nvm_per_core_bw).
type NodeTemplate struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Cores  int     `json:"cores"`
	// DRAMMB / NVMMB size the node's memories in MB (0 = scenario default).
	DRAMMB int64 `json:"dram_mb,omitempty"`
	NVMMB  int64 `json:"nvm_mb,omitempty"`
	// NVMPerCoreBW overrides the per-core NVM write bandwidth (bytes/sec).
	NVMPerCoreBW float64 `json:"nvm_per_core_bw,omitempty"`
}

// StartupSpec shapes when the fleet's nodes come up. All patterns spread
// the fleet over SpreadSecs; seeded per-node jitter is added on top.
type StartupSpec struct {
	// Pattern: instant (default), linear, exponential (doubling cohorts),
	// or wave (Waves equal cohorts).
	Pattern string `json:"pattern,omitempty"`
	// SpreadSecs is the ramp length from first to last node.
	SpreadSecs float64 `json:"spread_secs,omitempty"`
	// Waves is the cohort count of the wave pattern (default 4).
	Waves int `json:"waves,omitempty"`
	// JitterSecs adds a seeded uniform [0, JitterSecs) delay per node.
	JitterSecs float64 `json:"jitter_secs,omitempty"`
}

// FleetSpec generates a heterogeneous fleet: Nodes machines drawn from
// weighted shape templates, laid out block-contiguously over a
// (provider, zone, rack) topology, starting up per a seeded pattern.
// Every random draw derives from Seed alone — no global randomness — so a
// generated fleet is a pure function of its spec.
type FleetSpec struct {
	Nodes int `json:"nodes"`
	// Seed fixes the template and jitter draws (0 is a valid fixed seed).
	Seed int64 `json:"seed,omitempty"`

	// Providers / ZonesPerProvider / RacksPerZone shape the failure-domain
	// topology (each defaults to 1).
	Providers        int `json:"providers,omitempty"`
	ZonesPerProvider int `json:"zones_per_provider,omitempty"`
	RacksPerZone     int `json:"racks_per_zone,omitempty"`

	Templates []NodeTemplate `json:"templates"`
	Startup   StartupSpec    `json:"startup,omitempty"`
}

// NodeShape is one generated node's machine shape.
type NodeShape struct {
	Template     string
	Cores        int
	DRAM         int64 // bytes; 0 = scenario default
	NVM          int64 // bytes; 0 = scenario default
	NVMPerCoreBW float64
}

// Fleet is an expanded FleetSpec: concrete per-node shapes, coordinates
// and start times.
type Fleet struct {
	Shapes []NodeShape
	Topo   *topo.Topology
	// Start is each node's startup delay from t=0.
	Start []time.Duration
	// Counts tallies nodes per template name.
	Counts map[string]int
}

func (f *FleetSpec) providers() int { return max1(f.Providers) }
func (f *FleetSpec) zones() int     { return max1(f.ZonesPerProvider) }
func (f *FleetSpec) racks() int     { return max1(f.RacksPerZone) }

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Validate checks the fleet spec with actionable errors.
func (f *FleetSpec) Validate() error {
	if f.Nodes < 1 {
		return fmt.Errorf("fleet: nodes must be >= 1, got %d", f.Nodes)
	}
	if f.Providers < 0 || f.ZonesPerProvider < 0 || f.RacksPerZone < 0 {
		return fmt.Errorf("fleet: domain counts must be >= 0 (0 = 1)")
	}
	if len(f.Templates) == 0 {
		return fmt.Errorf("fleet: at least one node template is required")
	}
	total := 0.0
	for i, tm := range f.Templates {
		if tm.Weight <= 0 {
			return fmt.Errorf("fleet: template %d (%s): weight must be > 0, got %g", i, tm.Name, tm.Weight)
		}
		if tm.Cores < 1 {
			return fmt.Errorf("fleet: template %d (%s): cores must be >= 1, got %d", i, tm.Name, tm.Cores)
		}
		if tm.DRAMMB < 0 || tm.NVMMB < 0 || tm.NVMPerCoreBW < 0 {
			return fmt.Errorf("fleet: template %d (%s): resources must be >= 0", i, tm.Name)
		}
		total += tm.Weight
	}
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return fmt.Errorf("fleet: template weights sum to %g", total)
	}
	switch f.Startup.Pattern {
	case "", StartupInstant, StartupLinear, StartupExponential, StartupWave:
	default:
		return fmt.Errorf("fleet: unknown startup pattern %q (want %s, %s, %s, or %s)",
			f.Startup.Pattern, StartupInstant, StartupLinear, StartupExponential, StartupWave)
	}
	if f.Startup.SpreadSecs < 0 || f.Startup.JitterSecs < 0 {
		return fmt.Errorf("fleet: startup spread/jitter must be >= 0 (spread %g, jitter %g)",
			f.Startup.SpreadSecs, f.Startup.JitterSecs)
	}
	if f.Startup.Waves < 0 {
		return fmt.Errorf("fleet: startup waves must be >= 0, got %d", f.Startup.Waves)
	}
	return nil
}

// Topology builds the fleet's failure-domain layout without expanding the
// node shapes (cheap enough for validation paths).
func (f *FleetSpec) Topology() (*topo.Topology, error) {
	return topo.Uniform(f.Nodes, f.providers(), f.zones(), f.racks())
}

// Expand generates the concrete fleet. The only randomness is a single
// rand.Rand seeded from f.Seed, consumed in node order (template draw,
// then jitter draw, per node) — so the expansion is byte-identical across
// runs, platforms and GOMAXPROCS.
func (f *FleetSpec) Expand() (*Fleet, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	tp, err := f.Topology()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(f.Seed))
	total := 0.0
	for _, tm := range f.Templates {
		total += tm.Weight
	}
	fleet := &Fleet{
		Shapes: make([]NodeShape, f.Nodes),
		Topo:   tp,
		Start:  make([]time.Duration, f.Nodes),
		Counts: make(map[string]int),
	}
	spread := time.Duration(f.Startup.SpreadSecs * float64(time.Second))
	jitter := time.Duration(f.Startup.JitterSecs * float64(time.Second))
	waves := f.Startup.Waves
	if waves < 1 {
		waves = 4
	}
	for i := 0; i < f.Nodes; i++ {
		// Weighted template draw.
		pick := rng.Float64() * total
		ti := 0
		for j, tm := range f.Templates {
			if pick < tm.Weight {
				ti = j
				break
			}
			pick -= tm.Weight
			ti = j
		}
		tm := f.Templates[ti]
		name := tm.Name
		if name == "" {
			name = fmt.Sprintf("template-%d", ti)
		}
		fleet.Shapes[i] = NodeShape{
			Template:     name,
			Cores:        tm.Cores,
			DRAM:         tm.DRAMMB * 1 << 20,
			NVM:          tm.NVMMB * 1 << 20,
			NVMPerCoreBW: tm.NVMPerCoreBW,
		}
		fleet.Counts[name]++

		// Startup delay: pattern fraction of the spread, plus jitter.
		frac := 0.0
		switch f.Startup.Pattern {
		case StartupLinear:
			if f.Nodes > 1 {
				frac = float64(i) / float64(f.Nodes-1)
			}
		case StartupExponential:
			// Doubling cohorts: node i joins at log2(i+1)/log2(n) of the
			// spread — half the fleet arrives in the last doubling.
			if f.Nodes > 1 {
				frac = math.Log2(float64(i+1)) / math.Log2(float64(f.Nodes))
			}
		case StartupWave:
			w := i * waves / f.Nodes
			if waves > 1 {
				frac = float64(w) / float64(waves-1)
			}
		}
		delay := time.Duration(frac * float64(spread))
		if jitter > 0 {
			delay += time.Duration(rng.Int63n(int64(jitter)))
		}
		fleet.Start[i] = delay
	}
	return fleet, nil
}

// Summary renders the fleet spec for tables, e.g. "1000 nodes 1p/4z/32r wave".
func (f *FleetSpec) Summary() string {
	pattern := f.Startup.Pattern
	if pattern == "" {
		pattern = StartupInstant
	}
	return fmt.Sprintf("%d nodes %dp/%dz/%dr %s", f.Nodes,
		f.providers(), f.providers()*f.zones(), f.providers()*f.zones()*f.racks(), pattern)
}

// TemplateMix renders the expanded fleet's template tally, sorted by name.
func (fl *Fleet) TemplateMix() string {
	names := make([]string, 0, len(fl.Counts))
	for n := range fl.Counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s×%d", n, fl.Counts[n]))
	}
	return strings.Join(parts, " ")
}

// Ranks is the fleet's total rank (core) count.
func (fl *Fleet) Ranks() int {
	total := 0
	for _, s := range fl.Shapes {
		total += s.Cores
	}
	return total
}
