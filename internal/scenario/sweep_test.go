package scenario_test

import (
	"strings"
	"testing"

	"nvmcp/internal/scenario"
)

func baseSweep() scenario.Sweep {
	return scenario.Sweep{Base: *fullScenario()}
}

func TestSweepExpandCartesianProduct(t *testing.T) {
	sw := baseSweep()
	sw.Axes = []scenario.Axis{
		{Field: "nvm_per_core_bw", Values: []interface{}{100e6, 200e6, 400e6}},
		{Field: "remote.every", Values: []interface{}{1, 2}},
	}
	scs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 6 {
		t.Fatalf("expanded %d scenarios, want 3x2=6", len(scs))
	}
	// Row-major order: the last axis varies fastest.
	wantNames := []string{
		"golden/nvm_per_core_bw=1e+08,remote.every=1",
		"golden/nvm_per_core_bw=1e+08,remote.every=2",
		"golden/nvm_per_core_bw=2e+08,remote.every=1",
		"golden/nvm_per_core_bw=2e+08,remote.every=2",
		"golden/nvm_per_core_bw=4e+08,remote.every=1",
		"golden/nvm_per_core_bw=4e+08,remote.every=2",
	}
	for i, sc := range scs {
		if sc.Name != wantNames[i] {
			t.Errorf("point %d named %q, want %q", i, sc.Name, wantNames[i])
		}
	}
	if scs[0].NVMPerCoreBW != 100e6 || scs[0].Remote.Every != 1 {
		t.Errorf("point 0 = bw %g every %d", scs[0].NVMPerCoreBW, scs[0].Remote.Every)
	}
	if scs[5].NVMPerCoreBW != 400e6 || scs[5].Remote.Every != 2 {
		t.Errorf("point 5 = bw %g every %d", scs[5].NVMPerCoreBW, scs[5].Remote.Every)
	}
	// The base must be untouched by expansion.
	if sw.Base.NVMPerCoreBW != 400e6 {
		t.Errorf("expansion mutated the base: bw %g", sw.Base.NVMPerCoreBW)
	}
}

func TestSweepNoAxesYieldsBase(t *testing.T) {
	sw := baseSweep()
	scs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("expanded %d scenarios, want 1", len(scs))
	}
	if scs[0].Name != "golden/" && scs[0].NVMPerCoreBW != sw.Base.NVMPerCoreBW {
		t.Fatalf("lone point does not match the base: %+v", scs[0])
	}
}

func TestSweepCreatesOmittedSections(t *testing.T) {
	sw := baseSweep()
	sw.Base.Bottom = scenario.BottomSpec{} // section omitted from JSON entirely
	sw.Axes = []scenario.Axis{{Field: "bottom.policy", Values: []interface{}{"none", "pfs-drain"}}}
	scs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 || scs[1].Bottom.Policy != "pfs-drain" {
		t.Fatalf("nested path on omitted section failed: %+v", scs)
	}
}

func TestSweepRejectsUnknownField(t *testing.T) {
	sw := baseSweep()
	sw.Axes = []scenario.Axis{{Field: "remote.evry", Values: []interface{}{1}}}
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "evry") {
		t.Fatalf("typoed axis field not rejected: %v", err)
	}
}

func TestSweepRejectsInvalidPoint(t *testing.T) {
	sw := baseSweep()
	sw.Axes = []scenario.Axis{{Field: "local.policy", Values: []interface{}{"dcpcp", "bogus"}}}
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), `unknown local policy "bogus"`) {
		t.Fatalf("invalid point not rejected: %v", err)
	}
}

func TestSweepAxisShapeErrors(t *testing.T) {
	sw := baseSweep()
	sw.Axes = []scenario.Axis{{Field: "", Values: []interface{}{1}}}
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "has no field") {
		t.Fatalf("empty field: %v", err)
	}
	sw.Axes = []scenario.Axis{{Field: "iterations"}}
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "has no values") {
		t.Fatalf("empty values: %v", err)
	}
}

func TestLoadSweep(t *testing.T) {
	src := `{
	  "base": {
	    "name": "bwsweep",
	    "nodes": 2, "cores_per_node": 2, "iterations": 2,
	    "workload": {"app": "gtc", "ckpt_mb": 24, "iter_secs": 2},
	    "local": {"policy": "dcpcp"}
	  },
	  "axes": [{"field": "nvm_per_core_bw", "values": [200e6, 400e6]}]
	}`
	sw, err := scenario.LoadSweep(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 || scs[0].NVMPerCoreBW != 200e6 || scs[1].NVMPerCoreBW != 400e6 {
		t.Fatalf("loaded sweep expanded wrong: %+v", scs)
	}
	if _, err := scenario.LoadSweep(strings.NewReader(`{"bse": {}}`)); err == nil {
		t.Fatal("unknown top-level sweep field not rejected")
	}
}
