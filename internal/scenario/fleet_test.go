package scenario_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"nvmcp/internal/scenario"
	"nvmcp/internal/topo"
)

func sampleFleet() *scenario.FleetSpec {
	return &scenario.FleetSpec{
		Nodes: 1000, Seed: 42,
		Providers: 2, ZonesPerProvider: 4, RacksPerZone: 4,
		Templates: []scenario.NodeTemplate{
			{Name: "std", Weight: 3, Cores: 1},
			{Name: "big", Weight: 1, Cores: 2, DRAMMB: 512, NVMMB: 2048},
		},
		Startup: scenario.StartupSpec{Pattern: scenario.StartupWave, SpreadSecs: 10, Waves: 4, JitterSecs: 1},
	}
}

func TestFleetExpandDeterministic(t *testing.T) {
	a, err := sampleFleet().Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleFleet().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Shapes, b.Shapes) || !reflect.DeepEqual(a.Start, b.Start) {
		t.Fatal("same spec expanded to different fleets")
	}
	other := sampleFleet()
	other.Seed = 43
	c, err := other.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Shapes, c.Shapes) && reflect.DeepEqual(a.Start, c.Start) {
		t.Fatal("different seeds expanded identically")
	}
}

func TestFleetTemplateMixTracksWeights(t *testing.T) {
	fl, err := sampleFleet().Expand()
	if err != nil {
		t.Fatal(err)
	}
	std := fl.Counts["std"]
	if std < 650 || std > 850 {
		t.Fatalf("3:1 weighting drew %d/1000 std nodes", std)
	}
	if std+fl.Counts["big"] != 1000 {
		t.Fatalf("counts do not cover the fleet: %v", fl.Counts)
	}
	if fl.Topo.Nodes() != 1000 || fl.Topo.Summary() != "2p/8z/32r" {
		t.Fatalf("topology %s over %d nodes", fl.Topo.Summary(), fl.Topo.Nodes())
	}
	// Big nodes got their template's resources; ranks sum the mixed cores.
	for _, s := range fl.Shapes {
		if s.Template == "big" && (s.Cores != 2 || s.DRAM != 512<<20 || s.NVM != 2048<<20) {
			t.Fatalf("big node shape %+v", s)
		}
	}
	if fl.Ranks() != std+2*fl.Counts["big"] {
		t.Fatalf("Ranks() = %d", fl.Ranks())
	}
	if !strings.Contains(fl.TemplateMix(), "std×") {
		t.Fatalf("TemplateMix() = %q", fl.TemplateMix())
	}
}

func TestFleetStartupPatterns(t *testing.T) {
	base := func() *scenario.FleetSpec {
		return &scenario.FleetSpec{
			Nodes:     64,
			Templates: []scenario.NodeTemplate{{Name: "n", Weight: 1, Cores: 1}},
		}
	}

	// Instant (default): everyone at t=0.
	fl, err := base().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for n, d := range fl.Start {
		if d != 0 {
			t.Fatalf("instant startup delayed node %d by %v", n, d)
		}
	}

	// Linear without jitter: monotone ramp from 0 to the full spread.
	f := base()
	f.Startup = scenario.StartupSpec{Pattern: scenario.StartupLinear, SpreadSecs: 10}
	fl, err = f.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if fl.Start[0] != 0 || fl.Start[63] != 10*time.Second {
		t.Fatalf("linear endpoints %v .. %v", fl.Start[0], fl.Start[63])
	}
	for n := 1; n < 64; n++ {
		if fl.Start[n] < fl.Start[n-1] {
			t.Fatalf("linear ramp not monotone at node %d", n)
		}
	}

	// Exponential: doubling cohorts — half the fleet lands in the last
	// sixth of the spread (log2(32)/log2(64) = 5/6).
	f = base()
	f.Startup = scenario.StartupSpec{Pattern: scenario.StartupExponential, SpreadSecs: 12}
	fl, err = f.Expand()
	if err != nil {
		t.Fatal(err)
	}
	late := 0
	for _, d := range fl.Start {
		if d >= 10*time.Second {
			late++
		}
	}
	if late < 32 {
		t.Fatalf("exponential startup: only %d/64 nodes in the last sixth", late)
	}

	// Wave: exactly Waves distinct start times without jitter.
	f = base()
	f.Startup = scenario.StartupSpec{Pattern: scenario.StartupWave, SpreadSecs: 9, Waves: 4}
	fl, err = f.Expand()
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[time.Duration]bool{}
	for _, d := range fl.Start {
		distinct[d] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("wave startup produced %d cohorts, want 4 (%v)", len(distinct), distinct)
	}

	// Jitter stays within its bound and stays seeded.
	f = base()
	f.Startup = scenario.StartupSpec{Pattern: scenario.StartupWave, SpreadSecs: 9, Waves: 3, JitterSecs: 0.5}
	fl, err = f.Expand()
	if err != nil {
		t.Fatal(err)
	}
	fl2, err := f.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fl.Start, fl2.Start) {
		t.Fatal("jittered startup not reproducible")
	}
	// The 3 waves land on multiples of 4.5s; jitter must move someone off
	// the grid but never past its 0.5s bound.
	jittered := false
	for n, d := range fl.Start {
		if rem := d % (4500 * time.Millisecond); rem != 0 {
			jittered = true
			if rem >= 500*time.Millisecond {
				t.Fatalf("node %d jittered by %v, bound is 0.5s", n, rem)
			}
		}
	}
	if !jittered {
		t.Fatal("jitter never moved a start time")
	}
}

func TestFleetValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*scenario.FleetSpec)
		want string
	}{
		{"no nodes", func(f *scenario.FleetSpec) { f.Nodes = 0 }, "nodes must be >= 1"},
		{"no templates", func(f *scenario.FleetSpec) { f.Templates = nil }, "at least one node template"},
		{"zero weight", func(f *scenario.FleetSpec) { f.Templates[0].Weight = 0 }, "weight must be > 0"},
		{"zero cores", func(f *scenario.FleetSpec) { f.Templates[0].Cores = 0 }, "cores must be >= 1"},
		{"negative dram", func(f *scenario.FleetSpec) { f.Templates[1].DRAMMB = -1 }, "resources must be >= 0"},
		{"bad pattern", func(f *scenario.FleetSpec) { f.Startup.Pattern = "thunder" }, "unknown startup pattern"},
		{"negative spread", func(f *scenario.FleetSpec) { f.Startup.SpreadSecs = -1 }, "spread/jitter must be >= 0"},
		{"negative waves", func(f *scenario.FleetSpec) { f.Startup.Waves = -1 }, "waves must be >= 0"},
	}
	for _, tc := range cases {
		f := sampleFleet()
		tc.mod(f)
		err := f.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v missing %q", tc.name, err, tc.want)
		}
	}
}

// fleetScenario is a fleet-shaped scenario exercising domain failures.
func fleetScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name: "fleet-golden",
		Fleet: &scenario.FleetSpec{
			Nodes: 48, Seed: 7,
			ZonesPerProvider: 2, RacksPerZone: 3,
			Templates: []scenario.NodeTemplate{{Name: "std", Weight: 1, Cores: 1}},
		},
		Workload:   scenario.WorkloadSpec{App: "cm1", CkptMB: 8, CommMB: -1, IterSecs: 2},
		Iterations: 3,
		Local:      scenario.LocalSpec{Policy: "dcpcp"},
		Remote:     scenario.RemoteSpec{Policy: "buddy-precopy", Every: 1, Placement: "spread"},
		Failures: []scenario.FailureSpec{
			{AtSecs: 3, Kind: "zone-outage", Zone: 1},
			{AtSecs: 4, Kind: "rack-outage", Zone: 0, Rack: 2, Soft: true},
			{AtSecs: 5, Node: 24, Kind: "link-storm", DurationSecs: 1, Waves: 2, WaveDelaySecs: 0.25},
		},
		FaultModel: &scenario.FaultModelSpec{MTBFRackSecs: 30, MTBFZoneSecs: 90, HorizonSecs: 6, Seed: 3},
		PayloadCap: 1024,
	}
}

func TestFleetScenarioValidatesAndRoundTrips(t *testing.T) {
	sc := fleetScenario()
	if err := sc.Validate(); err != nil {
		t.Fatalf("fleet scenario rejected: %v", err)
	}
	if sc.EffectiveNodes() != 48 {
		t.Fatalf("EffectiveNodes = %d", sc.EffectiveNodes())
	}
	if tp := sc.Topology(); tp == nil || tp.Summary() != "1p/2z/6r" {
		t.Fatalf("Topology = %v", sc.Topology())
	}
	buf, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.Load(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("fleet scenario does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\nbefore %+v\nafter  %+v", sc, back)
	}
}

func TestFleetScenarioValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*scenario.Scenario)
		want string
	}{
		{"fleet plus nodes", func(sc *scenario.Scenario) { sc.Nodes = 4 }, "drop nodes/cores_per_node"},
		{"bad placement", func(sc *scenario.Scenario) { sc.Remote.Placement = "everywhere" }, "unknown placement"},
		{"empty domain", func(sc *scenario.Scenario) { sc.Failures[0].Zone = 9 }, "targets empty domain"},
		{"domain with node", func(sc *scenario.Scenario) { sc.Failures[0].Node = 3 }, "targets a domain, not a node"},
		{"storm origin off-fleet", func(sc *scenario.Scenario) { sc.Failures[2].Node = 99 }, "cluster has nodes 0..47"},
		{"bad fleet", func(sc *scenario.Scenario) { sc.Fleet.Templates = nil }, "at least one node template"},
	}
	for _, tc := range cases {
		sc := fleetScenario()
		tc.mod(sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v missing %q", tc.name, err, tc.want)
		}
	}

	// Domain kinds and correlated MTBFs need a fleet topology.
	sc := fullScenario()
	sc.Failures = []scenario.FailureSpec{{AtSecs: 3, Kind: "zone-outage", Zone: 1}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "needs a fleet topology") {
		t.Errorf("zone outage without fleet: %v", err)
	}
	sc = fullScenario()
	sc.FaultModel = &scenario.FaultModelSpec{MTBFRackSecs: 30, HorizonSecs: 10}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "need a fleet topology") {
		t.Errorf("rack MTBF without fleet: %v", err)
	}
}

func TestFleetPresetsDeclareDomains(t *testing.T) {
	for _, id := range []string{"fleet-zone", "fleet-naive", "fleet-storm", "fleet-chaos"} {
		for _, s := range []scenario.Scale{scenario.ScaleTiny, scenario.ScaleQuick, scenario.ScalePaper} {
			sc, err := scenario.BuildPreset(id, s)
			if err != nil {
				t.Errorf("BuildPreset(%q, %s): %v", id, s, err)
				continue
			}
			if sc.Fleet == nil || sc.Topology() == nil {
				t.Errorf("%s@%s is not fleet-shaped", id, s)
				continue
			}
			if s == scenario.ScalePaper && sc.Fleet.Nodes < 1000 {
				t.Errorf("%s@paper has %d nodes, want >= 1000", id, sc.Fleet.Nodes)
			}
			if zones := len(sc.Topology().Domains(topo.LevelZone)); zones < 2 && id != "fleet-chaos" {
				t.Errorf("%s@%s has %d zones; domain presets need at least 2", id, s, zones)
			}
		}
	}
}
