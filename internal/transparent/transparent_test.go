package transparent

import (
	"errors"
	"testing"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

func newRig(e *sim.Env) *nvmkernel.Kernel {
	return nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB))
}

func TestFullCopyCheckpointsWholeImage(t *testing.T) {
	e := sim.NewEnv()
	k := newRig(e)
	e.Go("app", func(p *sim.Proc) {
		c, err := New(p, k.Attach("proc"), 512*mem.MB)
		if err != nil {
			t.Error(err)
			return
		}
		c.Touch(p, 0, mem.MB) // only 1MB modified...
		st := c.Checkpoint(p)
		if st.BytesCopied != 512*mem.MB {
			t.Errorf("full copy moved %d, want whole image", st.BytesCopied)
		}
		// ...and full mode keeps copying everything each time.
		st = c.Checkpoint(p)
		if st.BytesCopied != 512*mem.MB {
			t.Errorf("second full copy moved %d", st.BytesCopied)
		}
	})
	e.Run()
}

func TestIncrementalCopiesOnlyDirtyPages(t *testing.T) {
	e := sim.NewEnv()
	k := newRig(e)
	e.Go("app", func(p *sim.Proc) {
		c, err := New(p, k.Attach("proc"), 512*mem.MB)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetMode(Incremental)
		// First checkpoint is always full (no baseline yet).
		st := c.Checkpoint(p)
		if st.BytesCopied != 512*mem.MB {
			t.Errorf("first incremental checkpoint moved %d", st.BytesCopied)
		}
		// Dirty 16 pages' worth; only those move next time.
		if err := c.Touch(p, 0, 16*mem.PageSize); err != nil {
			t.Error(err)
		}
		if c.DirtyPages() != 16 {
			t.Errorf("DirtyPages = %d, want 16", c.DirtyPages())
		}
		st = c.Checkpoint(p)
		if st.PagesCopied != 16 || st.BytesCopied != 16*mem.PageSize {
			t.Errorf("incremental stats = %+v", st)
		}
		if c.DirtyPages() != 0 {
			t.Error("dirty set not reset after checkpoint")
		}
	})
	e.Run()
}

func TestIncrementalPaysPerPageFaults(t *testing.T) {
	e := sim.NewEnv()
	k := newRig(e)
	e.Go("app", func(p *sim.Proc) {
		c, _ := New(p, k.Attach("proc"), 64*mem.MB)
		c.SetMode(Incremental)
		c.Checkpoint(p)
		before := k.Counters.Get("protection_faults")
		// Rewrite everything: one fault per page — the cost the paper's
		// chunk-level design exists to avoid.
		if err := c.Touch(p, 0, 64*mem.MB); err != nil {
			t.Error(err)
		}
		faults := k.Counters.Get("protection_faults") - before
		if faults != 64*mem.MB/mem.PageSize {
			t.Errorf("faults = %d, want one per page (%d)", faults, 64*mem.MB/mem.PageSize)
		}
	})
	e.Run()
}

func TestRestoreAfterRestart(t *testing.T) {
	e := sim.NewEnv()
	k := newRig(e)
	e.Go("life1", func(p *sim.Proc) {
		c, _ := New(p, k.Attach("proc"), 128*mem.MB)
		c.Touch(p, 0, mem.MB)
		c.Checkpoint(p)
	})
	e.Run()
	k.SoftReset()
	e.Go("life2", func(p *sim.Proc) {
		c, err := New(p, k.Attach("proc"), 128*mem.MB)
		if err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		if err := c.Restore(p); err != nil {
			t.Error(err)
			return
		}
		if took := p.Now() - start; took <= 0 {
			t.Error("restore was free")
		}
		if c.Version() != 1 {
			t.Errorf("restored version = %d", c.Version())
		}
	})
	e.Run()
}

func TestRestoreWithoutCheckpointFails(t *testing.T) {
	e := sim.NewEnv()
	k := newRig(e)
	e.Go("app", func(p *sim.Proc) {
		c, _ := New(p, k.Attach("proc"), 64*mem.MB)
		if err := c.Restore(p); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("err = %v, want ErrNoCheckpoint", err)
		}
	})
	e.Run()
}

func TestTouchOutOfRange(t *testing.T) {
	e := sim.NewEnv()
	k := newRig(e)
	e.Go("app", func(p *sim.Proc) {
		c, _ := New(p, k.Attach("proc"), mem.MB)
		if err := c.Touch(p, mem.MB-10, 100); err == nil {
			t.Error("out-of-range touch succeeded")
		}
	})
	e.Run()
}

func TestTransparentVsChunkFootprint(t *testing.T) {
	// The paper's Section II point: transparent checkpoints move the whole
	// footprint even when the application's live checkpoint state is a
	// fraction of it.
	e := sim.NewEnv()
	k := newRig(e)
	var transparentT, fullBytes time.Duration = 0, 0
	_ = fullBytes
	e.Go("app", func(p *sim.Proc) {
		c, _ := New(p, k.Attach("proc"), mem.GB) // 1GB footprint
		start := p.Now()
		st := c.Checkpoint(p)
		transparentT = p.Now() - start
		if st.BytesCopied != mem.GB {
			t.Errorf("transparent moved %d", st.BytesCopied)
		}
	})
	e.Run()
	// 1GB at 2GB/s NVM write ≈ 0.54s; an application-initiated 400MB
	// checkpoint would take ~0.21s — the footprint ratio is the cost.
	if transparentT < 400*time.Millisecond {
		t.Fatalf("transparent checkpoint took %v, implausibly fast", transparentT)
	}
}
