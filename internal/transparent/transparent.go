// Package transparent implements the checkpointing model the paper contrasts
// with (Section II) and names as a future generalization of its mechanisms:
// transparent, whole-address-space checkpoints. Instead of the application
// marking checkpoint variables, the entire process image is replicated to
// NVM — either in full at every checkpoint, or incrementally with page-level
// write protection (the classic pre-copy of transparent systems, whose
// per-page fault cost the paper's chunk-level design avoids).
//
// It is built on the same nvmkernel substrate as the application-initiated
// library, so the two models are directly comparable: same devices, same
// fault costs, same commit discipline.
package transparent

import (
	"errors"
	"fmt"
	"time"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// Mode selects how checkpoints find the bytes to move.
type Mode int

const (
	// FullCopy replicates the whole image every checkpoint.
	FullCopy Mode = iota
	// Incremental write-protects the image and copies only pages dirtied
	// since the previous checkpoint, paying one protection fault per page.
	Incremental
)

func (m Mode) String() string {
	if m == Incremental {
		return "incremental"
	}
	return "full"
}

// Errors.
var (
	ErrNoCheckpoint = errors.New("transparent: no committed checkpoint")
	ErrChecksum     = errors.New("transparent: image checksum mismatch")
)

// Stats summarizes one transparent checkpoint.
type Stats struct {
	BytesCopied int64
	PagesCopied int
	Duration    time.Duration
}

// imageRecord is the durable commit pointer for the process image.
type imageRecord struct {
	Slot    int
	Version uint64
	Size    int64
}

// Checkpointer snapshots one process's entire address space.
type Checkpointer struct {
	kproc *nvmkernel.Process
	image *nvmkernel.Region
	size  int64
	mode  Mode

	committed int // committed slot, -1 before first commit
	version   uint64
	dirty     map[int]bool // page index -> dirtied since last checkpoint

	// Counters: "checkpoints", "pages_copied", "bytes_copied", "restores".
	Counters trace.Counters
}

// New builds a checkpointer for a process whose image (heap, globals,
// stacks) occupies size bytes of DRAM. Two NVM slots of the same size are
// reserved for the image versions.
func New(p *sim.Proc, kproc *nvmkernel.Process, size int64) (*Checkpointer, error) {
	c := &Checkpointer{
		kproc:     kproc,
		size:      size,
		committed: -1,
		dirty:     make(map[int]bool),
	}
	img, err := kproc.DRAMAlloc("process-image", size, 0)
	if err != nil {
		return nil, err
	}
	c.image = img
	for slot := 0; slot < 2; slot++ {
		if _, _, err := kproc.NVMMap(p, c.slotID(slot), size, 0); err != nil {
			return nil, fmt.Errorf("transparent: reserving image slot: %w", err)
		}
	}
	img.SetFaultHandler(func(fp *sim.Proc, r *nvmkernel.Region, page int) {
		r.UnprotectPage(fp, page)
		c.dirty[page] = true
	})
	return c, nil
}

func (c *Checkpointer) slotID(slot int) string { return fmt.Sprintf("timage/%d", slot) }
func (c *Checkpointer) metaKey() string        { return "tmeta" }

// SetMode selects full-copy or incremental checkpointing. Incremental mode
// arms page-level protection from the next checkpoint onward.
func (c *Checkpointer) SetMode(m Mode) { c.mode = m }

// Mode returns the current mode.
func (c *Checkpointer) Mode() Mode { return c.mode }

// Size returns the image size.
func (c *Checkpointer) Size() int64 { return c.size }

// DirtyPages returns how many pages are dirty since the last checkpoint
// (meaningful in Incremental mode after the first checkpoint).
func (c *Checkpointer) DirtyPages() int { return len(c.dirty) }

// Touch models the application storing to [off, off+n) of its address
// space. In incremental mode, stores to protected pages fault (charged per
// page) and mark those pages dirty.
func (c *Checkpointer) Touch(p *sim.Proc, off, n int64) error {
	if off < 0 || n < 0 || off+n > c.size {
		return fmt.Errorf("transparent: touch [%d,%d) outside image of %d", off, off+n, c.size)
	}
	_, err := c.image.TouchWrite(p, off, n)
	return err
}

// Checkpoint snapshots the image into the in-progress NVM slot and flips the
// commit record. Full mode copies everything; incremental mode copies only
// dirty pages (everything, on the first checkpoint) and then re-protects
// them for the next round.
func (c *Checkpointer) Checkpoint(p *sim.Proc) Stats {
	start := p.Now()
	k := c.kproc.Kernel()
	target := 0
	if c.committed == 0 {
		target = 1
	}

	var bytes int64
	var pages int
	if c.mode == FullCopy || c.committed < 0 {
		bytes = c.size
		pages = c.image.Pages()
	} else {
		pages = len(c.dirty)
		bytes = int64(pages) * mem.PageSize
		if bytes > c.size {
			bytes = c.size
		}
	}
	mem.Copy(p, k.DRAM, k.NVM, bytes)
	p.Sleep(k.NVM.FlushCost(bytes))

	k.MetaLock.Lock(p)
	c.version++
	c.kproc.SetMeta(p, c.metaKey(), imageRecord{Slot: target, Version: c.version, Size: c.size})
	k.MetaLock.Unlock(p)
	c.committed = target

	if c.mode == Incremental {
		// Re-arm protection so the next round's dirty set is tracked.
		c.image.Protect(p)
		for pg := range c.dirty {
			delete(c.dirty, pg)
		}
	}
	c.Counters.Add("checkpoints", 1)
	c.Counters.Add("pages_copied", int64(pages))
	c.Counters.Add("bytes_copied", bytes)
	return Stats{BytesCopied: bytes, PagesCopied: pages, Duration: p.Now() - start}
}

// Restore loads the committed image back into DRAM after a restart.
func (c *Checkpointer) Restore(p *sim.Proc) error {
	k := c.kproc.Kernel()
	k.MetaLock.Lock(p)
	v, ok := c.kproc.GetMeta(p, c.metaKey())
	k.MetaLock.Unlock(p)
	if !ok || v == nil {
		return ErrNoCheckpoint
	}
	rec, isRec := v.(imageRecord)
	if !isRec || rec.Size != c.size {
		return ErrNoCheckpoint
	}
	mem.Copy(p, k.NVM, k.DRAM, c.size)
	c.committed = rec.Slot
	c.version = rec.Version
	c.Counters.Add("restores", 1)
	return nil
}

// Version returns the committed checkpoint version.
func (c *Checkpointer) Version() uint64 { return c.version }
