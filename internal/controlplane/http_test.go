package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func apiRig(t *testing.T, cfg Config) (*Plane, *httptest.Server) {
	t.Helper()
	pl := New(cfg)
	srv := httptest.NewServer(pl.Handler())
	t.Cleanup(func() {
		srv.Close()
		pl.Close()
	})
	return pl, srv
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestAPISubmitQueryLifecycle(t *testing.T) {
	pl, srv := apiRig(t, Config{})
	_ = pl

	var st JobStatus
	code := doJSON(t, "POST", srv.URL+"/api/jobs",
		SubmitRequest{Preset: "quick", Scale: "tiny", Label: "via-http"}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d, want 202", code)
	}
	if st.ID == 0 || st.Label != "via-http" {
		t.Fatalf("submit status = %+v", st)
	}

	deadline := time.Now().Add(pollTimeout)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
		if code := doJSON(t, "GET", fmt.Sprintf("%s/api/jobs/%d", srv.URL, st.ID), nil, &st); code != 200 {
			t.Fatalf("query code = %d", code)
		}
	}
	if st.State != StateDone || st.Result == nil || st.Result.WorkloadChecksum == "" {
		t.Fatalf("finished job = %+v", st)
	}

	var list []JobStatus
	if code := doJSON(t, "GET", srv.URL+"/api/jobs", nil, &list); code != 200 || len(list) != 1 {
		t.Fatalf("list code=%d len=%d", code, len(list))
	}
	var ps PlaneStatus
	if code := doJSON(t, "GET", srv.URL+"/api/plane", nil, &ps); code != 200 || ps.Done != 1 {
		t.Fatalf("plane code=%d status=%+v", code, ps)
	}

	// Error surface: bad body 400, unknown job 404, command on done 409.
	if code := doJSON(t, "POST", srv.URL+"/api/jobs", map[string]int{"preset": 3}, nil); code != 400 {
		t.Fatalf("bad submit code = %d, want 400", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/api/jobs/42", nil, nil); code != 404 {
		t.Fatalf("unknown job code = %d, want 404", code)
	}
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/api/jobs/%d", srv.URL, st.ID), nil, nil); code != 409 {
		t.Fatalf("cancel done code = %d, want 409", code)
	}
}

func TestAPIQueueFullRejectsWith429(t *testing.T) {
	_, srv := apiRig(t, Config{MaxRunning: 1, QueueDepth: 1})

	var held JobStatus
	doJSON(t, "POST", srv.URL+"/api/jobs", SubmitRequest{Preset: "quick", Scale: "tiny", Hold: true}, &held)
	doJSON(t, "POST", srv.URL+"/api/jobs", SubmitRequest{Preset: "quick", Scale: "tiny"}, nil)

	var apiErr apiError
	code := doJSON(t, "POST", srv.URL+"/api/jobs", SubmitRequest{Preset: "quick", Scale: "tiny"}, &apiErr)
	if code != http.StatusTooManyRequests || apiErr.Reason != "queue-full" {
		t.Fatalf("overflow submit: code=%d body=%+v, want 429/queue-full", code, apiErr)
	}
}

func TestAPIHeldInjectionThenStart(t *testing.T) {
	_, srv := apiRig(t, Config{})

	var st JobStatus
	doJSON(t, "POST", srv.URL+"/api/jobs", SubmitRequest{Preset: "quick", Scale: "tiny", Hold: true}, &st)
	if st.State != StateHeld {
		t.Fatalf("state = %s, want held", st.State)
	}
	base := fmt.Sprintf("%s/api/jobs/%d", srv.URL, st.ID)

	if code := doJSON(t, "POST", base+"/events",
		map[string]any{"at_secs": 1, "node": 0}, nil); code != http.StatusAccepted {
		t.Fatalf("inject code = %d, want 202", code)
	}
	// Invalid specs fail the request, not the run.
	var apiErr apiError
	if code := doJSON(t, "POST", base+"/events",
		map[string]any{"at_secs": 1, "node": 99}, &apiErr); code != 400 {
		t.Fatalf("bad inject code = %d (%+v), want 400", code, apiErr)
	}
	if code := doJSON(t, "POST", base+"/start", nil, &st); code != 200 {
		t.Fatalf("start code = %d", code)
	}

	deadline := time.Now().Add(pollTimeout)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
		doJSON(t, "GET", base, nil, &st)
	}
	if st.State != StateDone || st.Result.FailuresInjected != 1 || st.Result.RecoveryLost != 0 {
		t.Fatalf("finished = %s, result = %+v; want done with 1 injected failure, 0 lost", st.State, st.Result)
	}
}

// TestAPIConcurrentSubmitQueryCancel hammers the API from many goroutines —
// the regression surface for lock ordering between HTTP handlers, the
// admission pump, and the in-simulation control ticks. Run under -race.
func TestAPIConcurrentSubmitQueryCancel(t *testing.T) {
	pl, srv := apiRig(t, Config{MaxRunning: 2, QueueDepth: 64})

	const submitters = 4
	const jobsEach = 3
	var wg sync.WaitGroup
	ids := make(chan int, submitters*jobsEach)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < jobsEach; i++ {
				var st JobStatus
				code := doJSON(t, "POST", srv.URL+"/api/jobs",
					SubmitRequest{Preset: "quick", Scale: "tiny",
						Label: fmt.Sprintf("s%d-%d", s, i), Hold: i%2 == 0}, &st)
				if code != http.StatusAccepted {
					t.Errorf("submit code = %d", code)
					return
				}
				ids <- st.ID
			}
		}(s)
	}

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 3; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					doJSON(t, "GET", srv.URL+"/api/jobs", nil, nil)
					doJSON(t, "GET", srv.URL+"/api/plane", nil, nil)
				}
			}
		}()
	}

	wg.Wait()
	close(ids)
	rng := rand.New(rand.NewSource(7))
	for id := range ids {
		base := fmt.Sprintf("%s/api/jobs/%d", srv.URL, id)
		switch rng.Intn(3) {
		case 0:
			doJSON(t, "DELETE", base, CancelRequest{Reason: "churn"}, nil)
		case 1:
			doJSON(t, "POST", base+"/start", nil, nil)
		}
		// The rest run (or wait) to completion on their own; held jobs
		// that were neither started nor canceled drain at Close.
	}
	close(stop)
	pollers.Wait()

	pl.Close()
	for _, st := range pl.Jobs() {
		if !st.State.Terminal() {
			t.Errorf("job %d (%s) ended non-terminal: %s", st.ID, st.Label, st.State)
		}
	}
}
