package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"nvmcp/internal/scenario"
)

// SubmitRequest is the POST /api/jobs body: a preset name (with an optional
// scale) or an inline scenario, plus per-job scheduling knobs. The stagger
// and replan fields overlay the scenario's remote spec, so a stock preset
// can be served with drain staggering without editing the preset.
type SubmitRequest struct {
	Preset   string             `json:"preset,omitempty"`
	Scale    string             `json:"scale,omitempty"`
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	Label    string             `json:"label,omitempty"`
	// Hold parks the granted job until POST /api/jobs/{id}/start; failure
	// events posted while held are injected at virtual t=0, making them
	// exactly as deterministic as scenario-file faults.
	Hold            bool    `json:"hold,omitempty"`
	StaggerMax      int     `json:"stagger_max,omitempty"`
	StaggerSlotSecs float64 `json:"stagger_slot_secs,omitempty"`
	Replan          bool    `json:"replan_on_failure,omitempty"`
}

// CancelRequest is the optional DELETE /api/jobs/{id} body.
type CancelRequest struct {
	Reason string `json:"reason,omitempty"`
}

// apiError is every non-2xx body: a human message plus a machine reason.
type apiError struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the plane's job API, rooted at /api/ — mount it as
// introspect.Source.API so the batch introspection endpoints (/progress,
// /metrics, pprof) and the job surface share one server.
func (pl *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/plane", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, pl.PlaneStatus())
	})
	mux.HandleFunc("GET /api/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, pl.Jobs())
	})
	mux.HandleFunc("POST /api/jobs", pl.handleSubmit)
	mux.HandleFunc("GET /api/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		st, err := pl.Status(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /api/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		var req CancelRequest
		if r.ContentLength > 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, apiError{Error: "bad cancel body: " + err.Error()})
				return
			}
		}
		if err := pl.Cancel(id, req.Reason); err != nil {
			writeErr(w, err)
			return
		}
		st, err := pl.Status(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /api/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		var spec scenario.FailureSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad failure spec: " + err.Error()})
			return
		}
		if err := pl.Inject(id, spec); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "queued"})
	})
	mux.HandleFunc("POST /api/jobs/{id}/start", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		if err := pl.Start(id); err != nil {
			writeErr(w, err)
			return
		}
		st, err := pl.Status(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	return mux
}

// handleSubmit resolves the request into a scenario and submits it. The
// decode is strict — a misspelled knob ("replan" for "replan_on_failure")
// must fail the request, not silently submit without it.
func (pl *Plane) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad submit body: " + err.Error()})
		return
	}
	sc, err := resolveSubmit(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	st, err := pl.Submit(sc, SubmitOptions{Label: req.Label, Hold: req.Hold})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// resolveSubmit picks the job's scenario (preset or inline) and overlays the
// per-job scheduling knobs.
func resolveSubmit(req *SubmitRequest) (*scenario.Scenario, error) {
	var sc *scenario.Scenario
	switch {
	case req.Preset != "" && req.Scenario != nil:
		return nil, fmt.Errorf("preset and scenario are mutually exclusive")
	case req.Preset != "":
		scaleName := req.Scale
		if scaleName == "" {
			scaleName = "quick"
		}
		scale, err := scenario.ParseScale(scaleName)
		if err != nil {
			return nil, err
		}
		sc, err = scenario.BuildPreset(req.Preset, scale)
		if err != nil {
			return nil, err
		}
	case req.Scenario != nil:
		sc = req.Scenario
	default:
		return nil, fmt.Errorf("submit needs a preset or an inline scenario")
	}
	if req.StaggerMax > 0 {
		sc.Remote.StaggerMax = req.StaggerMax
	}
	if req.StaggerSlotSecs > 0 {
		sc.Remote.StaggerSlotSecs = req.StaggerSlotSecs
	}
	if req.Replan {
		sc.Remote.Replan = true
	}
	return sc, nil
}

// jobID parses the {id} path segment, answering 400 itself on failure.
func jobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job id: " + r.PathValue("id")})
		return 0, false
	}
	return id, true
}

// writeErr maps plane errors onto status codes: backpressure is 429 (503
// once the plane is closing), unknown jobs 404, commands against finished
// jobs 409, and anything else — scenario validation, failure pre-flight —
// a 400.
func writeErr(w http.ResponseWriter, err error) {
	var rej *RejectError
	switch {
	case errors.As(err, &rej):
		code := http.StatusTooManyRequests
		if rej.Reason == "plane-closed" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, apiError{Error: rej.Msg, Reason: rej.Reason})
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
	case errors.Is(err, ErrFinished):
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to salvage
}

// PollDone blocks until the job finishes or the deadline passes — a
// convenience for in-process embedders (tests, the serve gate).
func (pl *Plane) PollDone(id int, timeout time.Duration) (JobStatus, error) {
	pl.mu.Lock()
	j, ok := pl.jobs[id]
	pl.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return pl.Status(id)
	case <-time.After(timeout):
		st, _ := pl.Status(id)
		return JobStatus{}, fmt.Errorf("controlplane: job %d still %s after %v", id, st.State, timeout)
	}
}
