// Package controlplane is the resident checkpoint control plane: a service
// that wraps cluster.New/Execute behind an admission queue so many simulated
// application runs share one host. Clients submit checkpoint jobs (a preset
// name or an inline scenario); a scheduler grants them against shared fabric
// budgets and a live checkpoint-window ceiling, applying backpressure —
// reject when the queue is full or a job's demand can never fit, delay while
// the aggregate would breach — and releases queued jobs as headroom recovers.
//
// Every granted job runs its own deterministic simulation on its own
// virtual clock, with a cluster.Control hook ticking it: HTTP handlers never
// touch a live run directly, they queue commands (inject a failure, abort)
// that the tick applies in scheduler context. Because control hooks pin the
// serial engine and ticks mutate nothing, a served run's workload checksum
// is byte-identical to the same scenario run in batch mode with -shards 1.
package controlplane

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/drift"
	"nvmcp/internal/obs"
	"nvmcp/internal/scenario"
)

// Config shapes the plane's admission policy.
type Config struct {
	// MaxRunning caps concurrently running (or held) jobs (default 2).
	MaxRunning int
	// QueueDepth caps jobs waiting for admission; a submit beyond it is
	// rejected with reason "queue-full" (default 8).
	QueueDepth int
	// FabricBudget caps the aggregate declared remote-drain demand
	// (bytes/sec) across running jobs; 0 means unlimited. A single job
	// whose demand alone exceeds the budget is rejected outright, since
	// no amount of waiting would admit it.
	FabricBudget float64
	// WindowBudget caps the live checkpoint fabric volume (bytes moved in
	// the last cluster.PeakWindow across all running jobs) that admission
	// tolerates; 0 means unlimited. Queued jobs wait with reason
	// "window-slo" while the live load plus the candidate's projected
	// window volume would breach it, and admit as the running jobs'
	// checkpoint bursts drain.
	WindowBudget float64
	// Tick is the host-side re-admission poll interval (default 25ms) —
	// how often the scheduler re-reads live window load for jobs parked
	// on "window-slo" or "fabric-budget".
	Tick time.Duration
	// Admission selects what the window check charges: AdmissionDeclared
	// (default) projects each candidate's declared demand against the live
	// window load; AdmissionBurnRate consults running jobs' live SLO
	// error-budget burn (holding admission with reason "slo-burn" while any
	// running job burns budget) and their drift-corrected window forecasts
	// instead of raw fabric reads. Burn-rate mode force-enables the drift
	// observatory on submitted jobs so the forecast exists.
	Admission string
}

// Admission modes.
const (
	AdmissionDeclared = "declared"
	AdmissionBurnRate = "burn-rate"
)

// burnHoldThreshold is the MaxBurn level at which burn-rate admission
// parks queued jobs: half of some objective's breach horizon violating.
const burnHoldThreshold = 0.5

// ParseAdmission validates an admission mode name ("" = declared).
func ParseAdmission(s string) (string, error) {
	switch s {
	case "", AdmissionDeclared:
		return AdmissionDeclared, nil
	case AdmissionBurnRate:
		return AdmissionBurnRate, nil
	}
	return "", fmt.Errorf("controlplane: unknown admission mode %q (valid: %s, %s)",
		s, AdmissionDeclared, AdmissionBurnRate)
}

func (c Config) admission() string {
	if c.Admission == AdmissionBurnRate {
		return AdmissionBurnRate
	}
	return AdmissionDeclared
}

func (c Config) maxRunning() int {
	if c.MaxRunning < 1 {
		return 2
	}
	return c.MaxRunning
}

func (c Config) queueDepth() int {
	if c.QueueDepth < 1 {
		return 8
	}
	return c.QueueDepth
}

func (c Config) tick() time.Duration {
	if c.Tick <= 0 {
		return 25 * time.Millisecond
	}
	return c.Tick
}

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: admitted to the queue, waiting for a grant.
	StateQueued State = "queued"
	// StateHeld: granted a slot but waiting for an explicit /start —
	// the deterministic window for pre-run failure injection.
	StateHeld State = "held"
	// StateRunning: the simulation is executing.
	StateRunning State = "running"
	// StateDone / StateFailed / StateCanceled are terminal.
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ErrUnknownJob is returned for an id the plane has never issued.
var ErrUnknownJob = errors.New("controlplane: unknown job")

// ErrFinished is returned when a command targets a terminal job.
var ErrFinished = errors.New("controlplane: job already finished")

// RejectError is admission backpressure: the submit was refused, with a
// machine-readable reason ("queue-full", "demand-exceeds-budget",
// "plane-closed").
type RejectError struct {
	Reason string
	Msg    string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("controlplane: rejected (%s): %s", e.Reason, e.Msg)
}

// command is one queued control action, applied to the live run by the
// cluster.Control tick in scheduler context.
type command struct {
	inject *cluster.FailureEvent
	abort  string
}

// Job is one submitted checkpoint run. All mutable fields are guarded by
// the plane's mutex.
type Job struct {
	ID       int
	Label    string
	Scenario *scenario.Scenario
	// Demand is the job's declared fabric demand in bytes/sec: the
	// resolved remote-drain rate cap times the node count (falling back
	// to per-node link bandwidth when the drain is uncapped).
	Demand float64

	state       State
	reason      string
	waitReason  string
	hold        bool
	canceled    bool
	notes       []string
	pending     []command
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	cluster *cluster.Cluster
	res     cluster.Result
	haveRes bool

	startOnce sync.Once
	started   chan struct{}
	done      chan struct{}
}

// releaseStart releases a held job into execution (idempotent).
func (j *Job) releaseStart() {
	j.startOnce.Do(func() { close(j.started) })
}

// Done exposes the job's completion channel (closed at a terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// SubmitOptions tune one submission.
type SubmitOptions struct {
	// Label is a free-form client tag echoed in status.
	Label string
	// Hold parks the job after its grant until Start — commands queued
	// while held are applied at virtual t=0, making mid-run injections
	// deterministic with respect to the run.
	Hold bool
}

// Plane is the resident scheduler.
type Plane struct {
	cfg Config

	mu            sync.Mutex
	jobs          map[int]*Job
	order         []int
	queue         []*Job
	nextID        int
	running       int
	runningDemand float64
	rejected      int
	closed        bool

	ticker   *time.Ticker
	tickStop chan struct{}
	tickDone chan struct{}
}

// New starts a plane: the re-admission ticker is live until Close.
func New(cfg Config) *Plane {
	pl := &Plane{
		cfg:      cfg,
		jobs:     make(map[int]*Job),
		ticker:   time.NewTicker(cfg.tick()),
		tickStop: make(chan struct{}),
		tickDone: make(chan struct{}),
	}
	go func() {
		defer close(pl.tickDone)
		for {
			select {
			case <-pl.ticker.C:
				pl.pump()
			case <-pl.tickStop:
				return
			}
		}
	}()
	return pl
}

// Submit validates the scenario, applies admission control, and — when
// admitted — queues the job for a grant. The returned status reflects the
// post-pump state, so an immediately grantable job already reads as running
// (or held).
func (pl *Plane) Submit(sc *scenario.Scenario, opts SubmitOptions) (JobStatus, error) {
	cfg, err := cluster.FromScenario(sc)
	if err != nil {
		return JobStatus{}, err
	}
	// The control hooks pin the serial engine anyway; pinning explicitly
	// keeps the event stream free of fallback warnings and byte-identical
	// to a `-shards 1` batch run of the same scenario.
	cfg.Shards = 1
	if pl.cfg.admission() == AdmissionBurnRate && cfg.Drift == nil {
		// Burn-rate admission steers on each run's drift-corrected window
		// forecast, so the observatory must be live even for scenarios that
		// declare no drift limits of their own.
		cfg.Drift = &drift.Config{Enabled: true}
	}
	demand := declaredDemand(cfg)
	if pl.cfg.FabricBudget > 0 && demand > pl.cfg.FabricBudget {
		return JobStatus{}, &RejectError{
			Reason: "demand-exceeds-budget",
			Msg: fmt.Sprintf("job demands %.0f B/s, fabric budget is %.0f B/s",
				demand, pl.cfg.FabricBudget),
		}
	}

	j := &Job{
		Label:    opts.Label,
		Scenario: sc,
		Demand:   demand,
		state:    StateQueued,
		hold:     opts.Hold,
		started:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	cfg.Control = &cluster.Control{
		OnStart: func(c *cluster.Cluster) { pl.applyCommands(j, c) },
		OnTick:  func(c *cluster.Cluster, _ time.Duration) { pl.applyCommands(j, c) },
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return JobStatus{}, err
	}
	j.cluster = c

	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return JobStatus{}, &RejectError{Reason: "plane-closed", Msg: "the plane is shutting down"}
	}
	if len(pl.queue) >= pl.cfg.queueDepth() {
		pl.rejected++
		pl.mu.Unlock()
		return JobStatus{}, &RejectError{
			Reason: "queue-full",
			Msg: fmt.Sprintf("%d jobs already queued (depth %d)",
				len(pl.queue), pl.cfg.queueDepth()),
		}
	}
	pl.nextID++
	j.ID = pl.nextID
	j.submittedAt = time.Now()
	pl.jobs[j.ID] = j
	pl.order = append(pl.order, j.ID)
	pl.queue = append(pl.queue, j)
	pl.mu.Unlock()

	pl.pump()
	st, _ := pl.Status(j.ID)
	return st, nil
}

// declaredDemand estimates a job's steady fabric appetite: the remote tier's
// resolved per-node drain rate times the node count. An uncapped drain can
// burst at link speed, so the per-node link bandwidth is the fallback;
// a job with no remote tier declares zero.
func declaredDemand(cfg cluster.Config) float64 {
	if cfg.Remote == "" || cfg.Remote == "none" {
		return 0
	}
	rate := cfg.RemoteRateCap
	if rate <= 0 {
		rate = cfg.LinkBW
	}
	if rate <= 0 {
		return 0
	}
	return rate * float64(cfg.Nodes)
}

// pump grants queued jobs in FIFO order while the admission checks pass.
// The head blocking preserves submission order: a small job never jumps a
// large one that is still waiting for budget.
func (pl *Plane) pump() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	burnMode := pl.cfg.admission() == AdmissionBurnRate
	for len(pl.queue) > 0 {
		j := pl.queue[0]
		windowLoad := pl.liveWindowLoadLocked
		if burnMode {
			windowLoad = pl.forecastWindowLoadLocked
		}
		switch {
		case pl.running >= pl.cfg.maxRunning():
			j.waitReason = "max-running"
			return
		case pl.cfg.FabricBudget > 0 && pl.running > 0 &&
			pl.runningDemand+j.Demand > pl.cfg.FabricBudget:
			j.waitReason = "fabric-budget"
			return
		case burnMode && pl.running > 0 && pl.maxBurnLocked() >= burnHoldThreshold:
			j.waitReason = "slo-burn"
			return
		case pl.cfg.WindowBudget > 0 && pl.running > 0 &&
			windowLoad()+j.Demand*cluster.PeakWindow.Seconds() > pl.cfg.WindowBudget:
			j.waitReason = "window-slo"
			return
		}
		pl.queue = pl.queue[1:]
		j.waitReason = ""
		pl.running++
		pl.runningDemand += j.Demand
		if j.hold {
			j.state = StateHeld
		} else {
			j.state = StateRunning
			j.releaseStart()
		}
		go pl.runJob(j)
	}
}

// liveWindowLoadLocked sums, over every running job, the checkpoint bytes
// its fabric moved in the trailing cluster.PeakWindow of *its* virtual
// clock — the live quantity the ckpt_window_bytes SLO watches. Reads go
// through the observer's mutex-guarded progress timestamp, never a
// simulation clock, so this is safe from the host side of a live run.
func (pl *Plane) liveWindowLoadLocked() float64 {
	var sum float64
	for _, j := range pl.jobs {
		if j.state != StateRunning || j.cluster == nil {
			continue
		}
		sum += liveWindowBytes(j.cluster)
	}
	return sum
}

// forecastWindowLoadLocked is the burn-rate variant of the window check: it
// charges each running job its drift observatory's per-window bytes forecast
// (the larger of the §III model's prediction and the last measured window,
// both corrected by live estimator state) instead of a raw fabric read. Runs
// whose observatory has not closed a window yet fall back to the live read.
func (pl *Plane) forecastWindowLoadLocked() float64 {
	var sum float64
	for _, j := range pl.jobs {
		if j.state != StateRunning || j.cluster == nil {
			continue
		}
		if d := j.cluster.Drift; d != nil {
			if fc, ok := d.ForecastWindowBytes(); ok {
				sum += fc
				continue
			}
		}
		sum += liveWindowBytes(j.cluster)
	}
	return sum
}

// maxBurnLocked is the worst live SLO error-budget burn fraction across
// running jobs; runs without a flight recorder contribute zero.
func (pl *Plane) maxBurnLocked() float64 {
	var burn float64
	for _, j := range pl.jobs {
		if j.state != StateRunning || j.cluster == nil || j.cluster.SLO == nil {
			continue
		}
		if b := j.cluster.SLO.MaxBurn(); b > burn {
			burn = b
		}
	}
	return burn
}

// liveWindowBytes reads one run's trailing-window checkpoint fabric volume.
func liveWindowBytes(c *cluster.Cluster) float64 {
	tus, _ := c.Obs.Progress()
	now := time.Duration(tus) * time.Microsecond
	tl := c.Obs.Registry().Timeline("fabric_bytes", obs.Labels{"class": "ckpt"})
	cur := tl.At(now)
	var prev float64
	if now > cluster.PeakWindow {
		prev = tl.At(now - cluster.PeakWindow)
	}
	return cur - prev
}

// runJob owns one admission slot from grant to terminal state.
func (pl *Plane) runJob(j *Job) {
	<-j.started
	pl.mu.Lock()
	if j.canceled {
		pl.finishLocked(j, StateCanceled, nonEmpty(j.reason, "canceled before start"))
		pl.releaseSlotLocked(j)
		pl.mu.Unlock()
		close(j.done)
		pl.pump()
		return
	}
	j.state = StateRunning
	j.startedAt = time.Now()
	c := j.cluster
	pl.mu.Unlock()

	res, err := c.Execute()

	pl.mu.Lock()
	j.res = res
	j.haveRes = true
	switch {
	case err == nil:
		pl.finishLocked(j, StateDone, "")
	case c.Aborted() != "" && j.canceled:
		pl.finishLocked(j, StateCanceled, c.Aborted())
	default:
		pl.finishLocked(j, StateFailed, err.Error())
	}
	pl.releaseSlotLocked(j)
	pl.mu.Unlock()
	close(j.done)
	pl.pump()
}

func (pl *Plane) finishLocked(j *Job, s State, reason string) {
	j.state = s
	j.reason = reason
	j.finishedAt = time.Now()
}

func (pl *Plane) releaseSlotLocked(j *Job) {
	pl.running--
	pl.runningDemand -= j.Demand
}

// applyCommands drains the job's command queue inside the simulation (the
// Control tick calls it in scheduler context). Injection errors that slip
// past the HTTP pre-flight become job notes rather than run failures.
func (pl *Plane) applyCommands(j *Job, c *cluster.Cluster) {
	pl.mu.Lock()
	cmds := j.pending
	j.pending = nil
	pl.mu.Unlock()
	for _, cmd := range cmds {
		switch {
		case cmd.abort != "":
			c.Abort(cmd.abort)
		case cmd.inject != nil:
			if err := c.Inject(*cmd.inject); err != nil {
				pl.mu.Lock()
				j.notes = append(j.notes, fmt.Sprintf("inject dropped: %v", err))
				pl.mu.Unlock()
			}
		}
	}
}

// Start releases a held job (idempotent; a no-op for jobs already running).
func (pl *Plane) Start(id int) error {
	pl.mu.Lock()
	j, ok := pl.jobs[id]
	if !ok {
		pl.mu.Unlock()
		return ErrUnknownJob
	}
	if j.state.Terminal() {
		pl.mu.Unlock()
		return ErrFinished
	}
	j.hold = false
	if j.state == StateHeld {
		j.state = StateRunning
	}
	pl.mu.Unlock()
	j.releaseStart()
	pl.pump()
	return nil
}

// Cancel stops a job: a queued job leaves the queue immediately; a held or
// running one gets an abort command that the next control tick applies, so
// the simulation tears down cleanly and its artifacts stay readable.
func (pl *Plane) Cancel(id int, reason string) error {
	pl.mu.Lock()
	j, ok := pl.jobs[id]
	if !ok {
		pl.mu.Unlock()
		return ErrUnknownJob
	}
	if j.state.Terminal() {
		pl.mu.Unlock()
		return ErrFinished
	}
	reason = nonEmpty(reason, "canceled by client")
	switch j.state {
	case StateQueued:
		for i, q := range pl.queue {
			if q == j {
				pl.queue = append(pl.queue[:i], pl.queue[i+1:]...)
				break
			}
		}
		pl.finishLocked(j, StateCanceled, reason)
		pl.mu.Unlock()
		close(j.done)
		pl.pump()
		return nil
	default: // held or running
		j.canceled = true
		j.reason = reason
		j.pending = append(j.pending, command{abort: reason})
		held := j.state == StateHeld
		pl.mu.Unlock()
		if held {
			j.releaseStart()
		}
		return nil
	}
}

// Inject queues one failure event for a live job; the next control tick
// schedules it on the run's virtual clock (held jobs apply it at t=0, so a
// pre-start injection is exactly as deterministic as a scenario-file fault).
func (pl *Plane) Inject(id int, spec scenario.FailureSpec) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	j, ok := pl.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	if j.state.Terminal() {
		return ErrFinished
	}
	ev := cluster.FailureFromSpec(spec)
	if err := j.cluster.ValidateFailure(ev); err != nil {
		return err
	}
	j.pending = append(j.pending, command{inject: &ev})
	return nil
}

// Close drains the plane: queued jobs are canceled, held and running ones
// aborted, and the call returns once every job reaches a terminal state.
func (pl *Plane) Close() {
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		<-pl.tickDone
		return
	}
	pl.closed = true
	var wait []*Job
	for _, q := range pl.queue {
		pl.finishLocked(q, StateCanceled, "plane shutdown")
		close(q.done)
	}
	pl.queue = nil
	for _, j := range pl.jobs {
		if j.state == StateHeld || j.state == StateRunning {
			j.canceled = true
			if j.reason == "" {
				j.reason = "plane shutdown"
			}
			j.pending = append(j.pending, command{abort: "plane shutdown"})
			j.releaseStart()
			wait = append(wait, j)
		}
	}
	pl.mu.Unlock()
	close(pl.tickStop)
	pl.ticker.Stop()
	<-pl.tickDone
	for _, j := range wait {
		<-j.done
	}
}

func nonEmpty(s, fallback string) string {
	if s != "" {
		return s
	}
	return fallback
}
