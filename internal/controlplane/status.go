package controlplane

import (
	"fmt"
	"time"
)

// JobStatus is one job's externally visible snapshot (the GET /api/jobs
// response element). Virtual-time fields come from the run's observer, so a
// snapshot of a live job is safe and consistent.
type JobStatus struct {
	ID       int    `json:"id"`
	Label    string `json:"label,omitempty"`
	Scenario string `json:"scenario"`
	State    State  `json:"state"`
	// Reason explains a terminal state ("" for done).
	Reason string `json:"reason,omitempty"`
	// WaitReason explains why a queued job is parked: "max-running",
	// "fabric-budget", "window-slo", or (burn-rate admission) "slo-burn".
	WaitReason string `json:"wait_reason,omitempty"`
	// CancelRequested marks a live job whose abort is queued but has not
	// yet landed on the virtual clock.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	Hold            bool `json:"hold,omitempty"`
	Nodes           int  `json:"nodes"`
	// DemandBPS is the declared fabric demand admission charged this job.
	DemandBPS   float64    `json:"demand_bytes_per_sec"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// VirtualUS / Events mirror the introspection /progress pair, per job.
	VirtualUS int64 `json:"virtual_us"`
	Events    int   `json:"events"`
	// WindowBytes is the live trailing-window checkpoint fabric volume —
	// the quantity admission weighs against the plane's WindowBudget.
	WindowBytes float64    `json:"window_bytes"`
	Notes       []string   `json:"notes,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
}

// JobResult is the subset of cluster.Result the API exposes once a run
// reaches a terminal state with a result attached.
type JobResult struct {
	ExecTimeUS       int64   `json:"exec_time_us"`
	LocalCkpts       int     `json:"local_ckpts"`
	RemoteCkpts      int     `json:"remote_ckpts"`
	WorkloadChecksum string  `json:"workload_checksum"`
	PeakWindowBytes  float64 `json:"peak_ckpt_window_bytes"`
	FailuresInjected int     `json:"failures_injected"`
	Replans          int     `json:"replans"`
	DrainGrants      int     `json:"drain_grants"`
	DrainMaxQueued   int     `json:"drain_max_queued"`
	Restores         int64   `json:"restores"`
	RecoveryLost     int64   `json:"recovery_lost"`
}

// PlaneStatus is the scheduler-level snapshot (GET /api/plane).
type PlaneStatus struct {
	MaxRunning   int     `json:"max_running"`
	QueueDepth   int     `json:"queue_depth"`
	FabricBudget float64 `json:"fabric_budget,omitempty"`
	WindowBudget float64 `json:"window_budget,omitempty"`
	// Admission is the active admission mode: "declared" or "burn-rate".
	Admission string `json:"admission"`
	Running   int    `json:"running"`
	Queued    int    `json:"queued"`
	// RunningDemand / WindowLoad are the two live quantities admission
	// charges against the budgets above.
	RunningDemand float64 `json:"running_demand_bytes_per_sec"`
	WindowLoad    float64 `json:"window_load_bytes"`
	// MaxBurn / ForecastLoad are the burn-rate mode's live inputs: the worst
	// SLO error-budget burn across running jobs and the drift-corrected
	// window-bytes forecast admission charges instead of WindowLoad.
	MaxBurn      float64 `json:"max_slo_burn,omitempty"`
	ForecastLoad float64 `json:"forecast_window_load_bytes,omitempty"`
	Submitted    int     `json:"submitted"`
	Done         int     `json:"done"`
	Failed       int     `json:"failed"`
	Canceled     int     `json:"canceled"`
	Rejected     int     `json:"rejected"`
}

// Status snapshots one job.
func (pl *Plane) Status(id int) (JobStatus, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	j, ok := pl.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return pl.statusLocked(j), nil
}

// Jobs snapshots every job in submission order.
func (pl *Plane) Jobs() []JobStatus {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]JobStatus, 0, len(pl.order))
	for _, id := range pl.order {
		out = append(out, pl.statusLocked(pl.jobs[id]))
	}
	return out
}

// PlaneStatus snapshots the scheduler.
func (pl *Plane) PlaneStatus() PlaneStatus {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	st := PlaneStatus{
		MaxRunning:    pl.cfg.maxRunning(),
		QueueDepth:    pl.cfg.queueDepth(),
		FabricBudget:  pl.cfg.FabricBudget,
		WindowBudget:  pl.cfg.WindowBudget,
		Admission:     pl.cfg.admission(),
		Running:       pl.running,
		Queued:        len(pl.queue),
		RunningDemand: pl.runningDemand,
		WindowLoad:    pl.liveWindowLoadLocked(),
		Submitted:     len(pl.jobs),
		Rejected:      pl.rejected,
	}
	if pl.cfg.admission() == AdmissionBurnRate {
		st.MaxBurn = pl.maxBurnLocked()
		st.ForecastLoad = pl.forecastWindowLoadLocked()
	}
	for _, j := range pl.jobs {
		switch j.state {
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
	}
	return st
}

func (pl *Plane) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:              j.ID,
		Label:           j.Label,
		Scenario:        j.Scenario.Name,
		State:           j.state,
		Reason:          j.reason,
		WaitReason:      j.waitReason,
		CancelRequested: j.canceled && !j.state.Terminal(),
		Hold:            j.hold,
		Nodes:           j.cluster.Cfg.Nodes,
		DemandBPS:       j.Demand,
		SubmittedAt:     j.submittedAt,
		Notes:           append([]string(nil), j.notes...),
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
	}
	if j.cluster != nil {
		st.VirtualUS, st.Events = j.cluster.Obs.Progress()
		if j.state == StateRunning {
			st.WindowBytes = liveWindowBytes(j.cluster)
		}
	}
	if j.haveRes {
		r := j.res
		st.Result = &JobResult{
			ExecTimeUS:       r.ExecTime.Microseconds(),
			LocalCkpts:       r.LocalCkpts,
			RemoteCkpts:      r.RemoteCkpts,
			WorkloadChecksum: fmt.Sprintf("%016x", r.WorkloadChecksum),
			PeakWindowBytes:  r.PeakCkptWindowBytes,
			FailuresInjected: r.FailuresInjected,
			Replans:          r.Replans,
			DrainGrants:      r.DrainGrants,
			DrainMaxQueued:   r.DrainMaxQueued,
			Restores:         r.Restores,
			RecoveryLost:     r.RecoveryLost,
		}
	}
	return st
}
