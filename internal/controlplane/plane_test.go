package controlplane

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nvmcp/internal/cluster"
	"nvmcp/internal/obs"
	"nvmcp/internal/scenario"
	"nvmcp/internal/sim"
	"nvmcp/internal/slo"
)

// tinyScenario builds a fresh quick-preset scenario at tiny scale — small
// enough that a granted job completes in well under a second of host time.
func tinyScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.BuildPreset("quick", scenario.ScaleTiny)
	if err != nil {
		t.Fatalf("BuildPreset: %v", err)
	}
	return sc
}

const pollTimeout = 30 * time.Second

func mustDone(t *testing.T, pl *Plane, id int) JobStatus {
	t.Helper()
	st, err := pl.PollDone(id, pollTimeout)
	if err != nil {
		t.Fatalf("job %d did not finish: %v", id, err)
	}
	return st
}

func TestSubmitRunsToCompletionWithBatchChecksumParity(t *testing.T) {
	pl := New(Config{})
	defer pl.Close()

	st, err := pl.Submit(tinyScenario(t), SubmitOptions{Label: "parity"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = mustDone(t, pl, st.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s (reason %q), want done", st.State, st.Reason)
	}
	if st.Result == nil || st.Result.LocalCkpts == 0 {
		t.Fatalf("done job carries no result: %+v", st.Result)
	}

	// The control plane's promise: a served run is byte-identical to the
	// same scenario run in batch mode on the serial engine.
	cfg, err := cluster.FromScenario(tinyScenario(t))
	if err != nil {
		t.Fatalf("FromScenario: %v", err)
	}
	cfg.Shards = 1
	res, _, err := cluster.Run(cfg)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	want := fmt.Sprintf("%016x", res.WorkloadChecksum)
	if st.Result.WorkloadChecksum != want {
		t.Fatalf("served checksum %s != batch checksum %s", st.Result.WorkloadChecksum, want)
	}
}

func TestQueueFillsThenRejectsAndRecovers(t *testing.T) {
	pl := New(Config{MaxRunning: 1, QueueDepth: 1})
	defer pl.Close()

	// A holds the only running slot; B fills the one-deep queue.
	a, err := pl.Submit(tinyScenario(t), SubmitOptions{Label: "a", Hold: true})
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	if a.State != StateHeld {
		t.Fatalf("a state = %s, want held", a.State)
	}
	b, err := pl.Submit(tinyScenario(t), SubmitOptions{Label: "b"})
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if b.State != StateQueued || b.WaitReason != "max-running" {
		t.Fatalf("b = %s/%q, want queued/max-running", b.State, b.WaitReason)
	}

	// C has nowhere to go: backpressure, with a machine-readable reason.
	_, err = pl.Submit(tinyScenario(t), SubmitOptions{Label: "c"})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "queue-full" {
		t.Fatalf("submit c: err = %v, want RejectError{queue-full}", err)
	}
	if got := pl.PlaneStatus().Rejected; got != 1 {
		t.Fatalf("rejected count = %d, want 1", got)
	}

	// Headroom recovers (A released and finished) -> B is admitted.
	if err := pl.Start(a.ID); err != nil {
		t.Fatalf("start a: %v", err)
	}
	if st := mustDone(t, pl, a.ID); st.State != StateDone {
		t.Fatalf("a finished %s (%s), want done", st.State, st.Reason)
	}
	if st := mustDone(t, pl, b.ID); st.State != StateDone {
		t.Fatalf("b finished %s (%s), want done", st.State, st.Reason)
	}
}

func TestFabricBudgetParksThenAdmits(t *testing.T) {
	// Learn the preset's declared demand from a throwaway plane.
	probe := New(Config{})
	st, err := probe.Submit(tinyScenario(t), SubmitOptions{Hold: true})
	if err != nil {
		t.Fatalf("probe submit: %v", err)
	}
	demand := st.DemandBPS
	probe.Close()
	if demand <= 0 {
		t.Fatalf("quick preset declares no fabric demand (%v); budget test needs one", demand)
	}

	// Budget fits one job but not two.
	pl := New(Config{MaxRunning: 2, FabricBudget: demand * 1.5})
	defer pl.Close()
	a, err := pl.Submit(tinyScenario(t), SubmitOptions{Label: "a", Hold: true})
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	b, err := pl.Submit(tinyScenario(t), SubmitOptions{Label: "b"})
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if b.State != StateQueued || b.WaitReason != "fabric-budget" {
		t.Fatalf("b = %s/%q, want queued/fabric-budget", b.State, b.WaitReason)
	}

	// Canceling A returns its demand; B must then run to completion.
	if err := pl.Cancel(a.ID, "make room"); err != nil {
		t.Fatalf("cancel a: %v", err)
	}
	if st := mustDone(t, pl, a.ID); st.State != StateCanceled {
		t.Fatalf("a finished %s, want canceled", st.State)
	}
	if st := mustDone(t, pl, b.ID); st.State != StateDone {
		t.Fatalf("b finished %s (%s), want done", st.State, st.Reason)
	}

	// A job that can never fit is rejected outright, not queued forever.
	tight := New(Config{FabricBudget: 1})
	defer tight.Close()
	_, err = tight.Submit(tinyScenario(t), SubmitOptions{})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "demand-exceeds-budget" {
		t.Fatalf("tight submit: err = %v, want RejectError{demand-exceeds-budget}", err)
	}
}

func TestWindowBudgetParksUntilHeadroom(t *testing.T) {
	probe := New(Config{})
	st, err := probe.Submit(tinyScenario(t), SubmitOptions{Hold: true})
	if err != nil {
		t.Fatalf("probe submit: %v", err)
	}
	demand := st.DemandBPS
	probe.Close()

	// The candidate's projected window volume (demand x 5s) exceeds the
	// budget whenever anything else is running, so B parks behind held A.
	pl := New(Config{MaxRunning: 2, WindowBudget: demand})
	defer pl.Close()
	a, err := pl.Submit(tinyScenario(t), SubmitOptions{Label: "a", Hold: true})
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	b, err := pl.Submit(tinyScenario(t), SubmitOptions{Label: "b"})
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if b.State != StateQueued || b.WaitReason != "window-slo" {
		t.Fatalf("b = %s/%q, want queued/window-slo", b.State, b.WaitReason)
	}

	// Once A drains out of the plane the window load is zero and an empty
	// plane always admits.
	if err := pl.Start(a.ID); err != nil {
		t.Fatalf("start a: %v", err)
	}
	mustDone(t, pl, a.ID)
	if st := mustDone(t, pl, b.ID); st.State != StateDone {
		t.Fatalf("b finished %s (%s), want done", st.State, st.Reason)
	}
}

func TestParseAdmission(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		wantErr  bool
	}{
		{"", AdmissionDeclared, false},
		{AdmissionDeclared, AdmissionDeclared, false},
		{AdmissionBurnRate, AdmissionBurnRate, false},
		{"burnrate", "", true},
	} {
		got, err := ParseAdmission(tc.in)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("ParseAdmission(%q) = %q, %v; want %q, err=%v", tc.in, got, err, tc.want, tc.wantErr)
		}
	}
}

func TestBurnRateAdmissionEnablesDriftAndRuns(t *testing.T) {
	pl := New(Config{Admission: AdmissionBurnRate})
	defer pl.Close()

	st, err := pl.Submit(tinyScenario(t), SubmitOptions{Label: "burn"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Burn mode steers on drift forecasts, so the observatory must be live
	// even though the quick preset declares no drift limits.
	pl.mu.Lock()
	d := pl.jobs[st.ID].cluster.Drift
	pl.mu.Unlock()
	if d == nil {
		t.Fatal("burn-rate admission did not enable the drift observatory")
	}
	if got := pl.PlaneStatus().Admission; got != AdmissionBurnRate {
		t.Fatalf("plane status admission = %q, want %q", got, AdmissionBurnRate)
	}
	if st = mustDone(t, pl, st.ID); st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Reason)
	}
}

func TestBurnRateAdmissionHoldsWhileBudgetBurns(t *testing.T) {
	// Synthetic burning recorder: an at-least objective over a 4-window
	// horizon that two empty windows violate — burn 2/4 = the hold threshold.
	spec := &slo.Spec{Objectives: []slo.Objective{{
		Name: "drain", Series: "ckpt_window_bytes",
		Direction: slo.AtLeast, Threshold: 1, Over: 4,
	}}}
	rec := slo.New(slo.Config{Enabled: true, Spec: spec}, obs.NewRegistry())
	rec.Observe(obs.Event{TUS: (11 * time.Second).Microseconds(), Type: "tick"})
	if b := rec.MaxBurn(); b < burnHoldThreshold {
		t.Fatalf("synthetic burn = %g, want >= %g", b, burnHoldThreshold)
	}

	// White-box plane (no ticker): one running job burning budget parks the
	// queued candidate with reason "slo-burn"; the burn clearing admits it.
	pl := &Plane{
		cfg:  Config{Admission: AdmissionBurnRate, MaxRunning: 4},
		jobs: map[int]*Job{},
	}
	burning := &Job{ID: 1, state: StateRunning,
		cluster: &cluster.Cluster{SLO: rec, Obs: obs.New(sim.NewEnv())}}
	pl.jobs[1] = burning
	pl.running = 1
	cand := &Job{ID: 2, state: StateQueued, hold: true,
		started: make(chan struct{}), done: make(chan struct{})}
	pl.jobs[2] = cand
	pl.queue = []*Job{cand}

	pl.pump()
	if cand.state != StateQueued || cand.waitReason != "slo-burn" {
		t.Fatalf("candidate = %s/%q, want queued/slo-burn", cand.state, cand.waitReason)
	}
	if st := pl.PlaneStatus(); st.MaxBurn < burnHoldThreshold {
		t.Fatalf("plane status max burn = %g, want >= %g", st.MaxBurn, burnHoldThreshold)
	}

	burning.state = StateDone
	pl.running = 0
	pl.pump()
	if cand.state != StateHeld || cand.waitReason != "" {
		t.Fatalf("candidate = %s/%q after burn clears, want held", cand.state, cand.waitReason)
	}
}

func TestCancelLifecycleErrors(t *testing.T) {
	pl := New(Config{MaxRunning: 1})
	defer pl.Close()

	if err := pl.Cancel(99, ""); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v, want ErrUnknownJob", err)
	}

	a, err := pl.Submit(tinyScenario(t), SubmitOptions{Hold: true})
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	b, err := pl.Submit(tinyScenario(t), SubmitOptions{})
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	// B is queued: cancel removes it without ever starting a run.
	if err := pl.Cancel(b.ID, "changed my mind"); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	st, _ := pl.Status(b.ID)
	if st.State != StateCanceled || st.Reason != "changed my mind" {
		t.Fatalf("b = %s/%q, want canceled/changed my mind", st.State, st.Reason)
	}

	if err := pl.Start(a.ID); err != nil {
		t.Fatalf("start a: %v", err)
	}
	mustDone(t, pl, a.ID)
	if err := pl.Cancel(a.ID, ""); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel done: %v, want ErrFinished", err)
	}
}

func TestInjectPreflightAndDeterministicHeldInjection(t *testing.T) {
	pl := New(Config{})
	defer pl.Close()

	a, err := pl.Submit(tinyScenario(t), SubmitOptions{Hold: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Bad node: the pre-flight rejects it before anything is queued.
	if err := pl.Inject(a.ID, scenario.FailureSpec{AtSecs: 1, Node: 99}); err == nil {
		t.Fatal("inject node 99 on a 2-node run: want validation error")
	}
	// A valid soft failure queued while held lands at virtual t=0 via
	// OnStart, i.e. exactly like a scenario-file fault at the same time.
	if err := pl.Inject(a.ID, scenario.FailureSpec{AtSecs: 1, Node: 0}); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if err := pl.Start(a.ID); err != nil {
		t.Fatalf("start: %v", err)
	}
	st := mustDone(t, pl, a.ID)
	if st.State != StateDone {
		t.Fatalf("state %s (%s), want done", st.State, st.Reason)
	}
	if len(st.Notes) != 0 {
		t.Fatalf("injection left notes: %v", st.Notes)
	}
	if st.Result.FailuresInjected != 1 {
		t.Fatalf("failures injected = %d, want 1", st.Result.FailuresInjected)
	}
	if st.Result.RecoveryLost != 0 {
		t.Fatalf("lost %d chunks recovering from the injected failure", st.Result.RecoveryLost)
	}
}
