package pfs

import (
	"nvmcp/internal/remote"
	"nvmcp/internal/sim"
)

// MeshSource adapts one holding node of the remote-checkpoint mesh as a
// drain source: the committed buddy copies it holds flush to the PFS — the
// final level of the paper's storage hierarchy.
type MeshSource struct {
	Mesh   *remote.Mesh
	Holder int
}

// DrainList implements Source.
func (s MeshSource) DrainList() []DrainObject {
	objs := s.Mesh.CommittedList(s.Holder)
	out := make([]DrainObject, len(objs))
	for i, o := range objs {
		out[i] = DrainObject{Name: o.Name, Size: o.Size, Version: o.Version}
	}
	return out
}

// DrainData implements Source.
func (s MeshSource) DrainData(p *sim.Proc, name string) ([]byte, bool) {
	return s.Mesh.CommittedData(p, s.Holder, name)
}
