package pfs

import (
	"errors"
	"testing"
	"time"

	"nvmcp/internal/core"
	"nvmcp/internal/interconnect"
	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/remote"
	"nvmcp/internal/sim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	fs := New(e, 0, 0)
	e.Go("w", func(p *sim.Proc) {
		payload := []byte{1, 2, 3}
		fs.Write(p, "ckpt/rank0", 100*mem.MB, 7, payload)
		data, size, version, err := fs.Read(p, "ckpt/rank0")
		if err != nil {
			t.Error(err)
			return
		}
		if size != 100*mem.MB || version != 7 || len(data) != 3 || data[2] != 3 {
			t.Errorf("read = size %d v%d data %v", size, version, data)
		}
		if _, _, _, err := fs.Read(p, "missing"); !errors.Is(err, ErrNoObject) {
			t.Errorf("missing read err = %v", err)
		}
	})
	e.Run()
	if fs.Objects() != 1 || fs.Bytes() != 100*mem.MB {
		t.Fatalf("objects=%d bytes=%d", fs.Objects(), fs.Bytes())
	}
}

func TestStripeCapLimitsOneClient(t *testing.T) {
	e := sim.NewEnv()
	fs := New(e, 2e9, 500e6)
	var took time.Duration
	e.Go("w", func(p *sim.Proc) {
		start := p.Now()
		fs.Write(p, "x", int64(500e6), 1, nil) // 500 MB at the 500 MB/s stripe cap
		took = p.Now() - start
	})
	e.Run()
	if diff := (took - time.Second).Abs(); diff > 10*time.Millisecond {
		t.Fatalf("capped write took %v, want ~1s despite 2GB/s aggregate", took)
	}
}

func TestAggregateBandwidthShared(t *testing.T) {
	e := sim.NewEnv()
	fs := New(e, 2e9, 1e9)
	const writers = 8
	for i := 0; i < writers; i++ {
		name := string(rune('a' + i))
		e.Go("w", func(p *sim.Proc) {
			fs.Write(p, name, int64(250e6), 1, nil)
		})
	}
	e.Run()
	// 8 x 250MB = 2GB through a 2GB/s aggregate: ~1s total, regardless of
	// the generous per-client cap.
	if diff := (e.Now() - time.Second).Abs(); diff > 20*time.Millisecond {
		t.Fatalf("8 writers finished at %v, want ~1s (aggregate-bound)", e.Now())
	}
}

func TestOverwriteKeepsSingleObject(t *testing.T) {
	e := sim.NewEnv()
	fs := New(e, 0, 0)
	e.Go("w", func(p *sim.Proc) {
		fs.Write(p, "x", mem.MB, 1, []byte{1})
		fs.Write(p, "x", mem.MB, 2, []byte{2})
	})
	e.Run()
	if fs.Objects() != 1 {
		t.Fatalf("objects = %d", fs.Objects())
	}
	if _, v, ok := fs.Stat("x"); !ok || v != 2 {
		t.Fatalf("stat = v%d ok=%v", v, ok)
	}
}

// drainRig builds a 2-node buddy setup with one committed remote copy.
func drainRig(t *testing.T) (*sim.Env, *remote.Mesh, *FS, *core.Store) {
	t.Helper()
	e := sim.NewEnv()
	fabric := interconnect.New(e, 2, 0)
	nvms := []*mem.Device{mem.NewPCM(e, 16*mem.GB), mem.NewPCM(e, 16*mem.GB)}
	k := nvmkernel.New(e, mem.NewDRAM(e, 16*mem.GB), nvms[0])
	mesh := remote.NewMesh(e, fabric, nvms)
	agent := mesh.AddAgent(0, 1, remote.Config{Scheme: remote.AsyncBurst})
	fs := New(e, 0, 0)
	var store *core.Store
	e.Go("app", func(p *sim.Proc) {
		store = core.NewStore(k.Attach("rank0"), core.Options{})
		agent.Register(store)
		c, _ := store.NVAlloc(p, "field", 50*mem.MB, true)
		c.WriteAll(p)
		store.ChkptAll(p)
		agent.TriggerRemote(p).Await(p)
		agent.Stop()
	})
	e.Run()
	return e, mesh, fs, store
}

func TestDrainFlushesCommittedRemoteCopies(t *testing.T) {
	e, mesh, fs, store := drainRig(t)
	var st DrainStats
	e.Go("drain", func(p *sim.Proc) {
		st = fs.Drain(p, MeshSource{Mesh: mesh, Holder: 1})
	})
	e.Run()
	if st.Objects != 1 || st.Bytes != 50*mem.MB {
		t.Fatalf("drain stats = %+v", st)
	}
	if st.Duration <= 0 {
		t.Fatal("drain was free")
	}
	// Content matches the committed checkpoint.
	var want []byte
	e.Go("verify", func(p *sim.Proc) {
		want, _ = store.StagedData(p, core.GenID("field"))
		data, _, _, err := fs.Read(p, "rank0/field")
		if err != nil {
			t.Error(err)
			return
		}
		for i := range want {
			if data[i] != want[i] {
				t.Error("PFS content differs from committed checkpoint")
				return
			}
		}
	})
	e.Run()
}

func TestDrainIsIncremental(t *testing.T) {
	e, mesh, fs, _ := drainRig(t)
	e.Go("drain", func(p *sim.Proc) {
		first := fs.Drain(p, MeshSource{Mesh: mesh, Holder: 1})
		if first.Objects != 1 {
			t.Errorf("first drain: %+v", first)
		}
		// Nothing new: the second drain moves nothing.
		second := fs.Drain(p, MeshSource{Mesh: mesh, Holder: 1})
		if second.Objects != 0 || second.Bytes != 0 {
			t.Errorf("second drain moved data: %+v", second)
		}
	})
	e.Run()
}

// uitoa formats a uint64 without strconv gymnastics at call sites.
func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
