// Package pfs models the bottom of the paper's multilevel storage hierarchy:
// the parallel file system (e.g. Lustre) that checkpoints ultimately drain
// to. The PFS is the component whose limited aggregate I/O bandwidth and
// contention motivate the whole paper (Section I: checkpoint-size/IO-
// bandwidth must fall drastically); here it is a cluster-wide shared
// bandwidth resource with per-client striping limits and a drain agent that
// lazily flushes committed remote (buddy) checkpoints down to it — the
// "local scratch → remote neighbour → PFS" chain of Section II.
package pfs

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"nvmcp/internal/obs"
	"nvmcp/internal/resource"
	"nvmcp/internal/sim"
	"nvmcp/internal/trace"
)

// DefaultAggregateBW is the cluster-wide PFS ingest bandwidth. Petascale
// machines cite a few GB/s of sustained checkpoint bandwidth shared by the
// whole machine — the reason PFS-only checkpointing does not scale.
const DefaultAggregateBW = 2e9

// DefaultStripeBW caps what one client (node) can push, regardless of how
// idle the rest of the system is (OST striping limits).
const DefaultStripeBW = 500e6

// Errors.
var (
	ErrNoObject = errors.New("pfs: no such object")
)

// object is one stored checkpoint object.
type object struct {
	size    int64
	version uint64
	data    []byte
}

// FS is the cluster-wide parallel file system.
type FS struct {
	env    *sim.Env
	ingest *resource.Pipe
	egress *resource.Pipe

	stripeBW float64
	objects  map[string]*object

	// Counters: "writes", "reads", "bytes_in", "bytes_out".
	Counters trace.Counters

	rec *obs.Recorder
}

// SetRecorder attaches the file system to the run's observability bus: each
// drain pass emits one EvPFSDrain per object actually written (version-gated
// rewrites are skipped), so the event stream mirrors PFS contents.
func (f *FS) SetRecorder(r *obs.Recorder) { f.rec = r }

// New builds a PFS with the given aggregate ingest bandwidth (0 = default)
// and per-client stripe cap (0 = default).
func New(env *sim.Env, aggregateBW, stripeBW float64) *FS {
	if aggregateBW == 0 {
		aggregateBW = DefaultAggregateBW
	}
	if stripeBW == 0 {
		stripeBW = DefaultStripeBW
	}
	return &FS{
		env:      env,
		ingest:   resource.NewPipe(env, "pfs-ingest", aggregateBW, resource.FlatScaling()),
		egress:   resource.NewPipe(env, "pfs-egress", aggregateBW, resource.FlatScaling()),
		stripeBW: stripeBW,
		objects:  make(map[string]*object),
	}
}

// Ingest exposes the ingest pipe (for utilization inspection).
func (f *FS) Ingest() *resource.Pipe { return f.ingest }

// Write stores (or replaces) a checkpoint object of the given virtual size
// with the given payload bytes, blocking p while the data drains through the
// shared ingest bandwidth under the per-client stripe cap.
func (f *FS) Write(p *sim.Proc, name string, size int64, version uint64, data []byte) {
	f.ingest.TransferCapped(p, size, f.stripeBW)
	f.objects[name] = &object{
		size:    size,
		version: version,
		data:    append([]byte(nil), data...),
	}
	f.Counters.Add("writes", 1)
	f.Counters.Add("bytes_in", size)
}

// Read fetches a checkpoint object's payload, blocking p for the transfer.
func (f *FS) Read(p *sim.Proc, name string) ([]byte, int64, uint64, error) {
	obj, ok := f.objects[name]
	if !ok {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrNoObject, name)
	}
	f.egress.TransferCapped(p, obj.size, f.stripeBW)
	f.Counters.Add("reads", 1)
	f.Counters.Add("bytes_out", obj.size)
	return obj.data, obj.size, obj.version, nil
}

// Stat reports whether an object exists and its version.
func (f *FS) Stat(name string) (int64, uint64, bool) {
	obj, ok := f.objects[name]
	if !ok {
		return 0, 0, false
	}
	return obj.size, obj.version, true
}

// Objects returns the number of stored objects.
func (f *FS) Objects() int { return len(f.objects) }

// Bytes returns total stored bytes.
func (f *FS) Bytes() int64 {
	var total int64
	for _, o := range f.objects {
		total += o.size
	}
	return total
}

// DrainStats summarizes one drain pass.
type DrainStats struct {
	Objects  int
	Bytes    int64
	Duration time.Duration
}

// Source is anything a Drainer can flush to the PFS — implemented by the
// remote mesh's committed buddy copies.
type Source interface {
	// DrainList enumerates (name, size, version) of committed objects.
	DrainList() []DrainObject
	// DrainData returns the payload of a committed object.
	DrainData(p *sim.Proc, name string) ([]byte, bool)
}

// DrainObject identifies one flushable checkpoint object.
type DrainObject struct {
	Name    string
	Size    int64
	Version uint64
}

// Drain flushes every source object whose version is newer than what the
// PFS holds — the lazy, lowest-frequency level of the hierarchy. Returns
// what moved.
func (f *FS) Drain(p *sim.Proc, src Source) DrainStats {
	start := p.Now()
	var st DrainStats
	for _, obj := range src.DrainList() {
		if _, v, ok := f.Stat(obj.Name); ok && v >= obj.Version {
			continue
		}
		data, ok := src.DrainData(p, obj.Name)
		if !ok {
			continue
		}
		f.Write(p, obj.Name, obj.Size, obj.Version, data)
		f.rec.Emit(obs.EvPFSDrain, obj.Name, obj.Size,
			map[string]string{"seq": strconv.FormatUint(obj.Version, 10)})
		st.Objects++
		st.Bytes += obj.Size
	}
	st.Duration = p.Now() - start
	return st
}
