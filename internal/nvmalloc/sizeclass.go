// Package nvmalloc is the user-level NVM allocation component: a
// jemalloc-style allocator that carves application chunk allocations out of
// large slabs acquired from the kernel's nvmmap interface, exactly as the
// paper extends jemalloc over 'nvmap'. It allocates virtual extents (address
// ranges) in a per-process NVM heap; the checkpoint library binds chunk
// payloads to the extents it returns.
//
// Layout follows jemalloc's three tiers:
//
//   - small (≤ SmallMax): segregated size classes served from fixed-size
//     slabs with slot bitmaps;
//   - large (≤ LargeMax): page-rounded extents carved best-fit from 4 MB
//     chunks with coalescing on free;
//   - huge (> LargeMax): a dedicated kernel region per allocation.
package nvmalloc

import "nvmcp/internal/mem"

const (
	// Quantum is the minimum allocation granularity and alignment.
	Quantum = 16
	// SmallMax is the largest size served by slab size classes.
	SmallMax = 8 * mem.KB
	// SlabSize is the size of one small-class slab.
	SlabSize = 256 * mem.KB
	// ChunkSize is the size of one large-extent chunk acquired from the
	// kernel (jemalloc's "chunk").
	ChunkSize = 4 * mem.MB
	// LargeMax is the largest size served from chunks; bigger requests
	// get a dedicated region.
	LargeMax = ChunkSize / 2
)

// smallClasses returns the small size-class table: quantum-spaced up to 128,
// then power-of-two spaced groups of four (jemalloc's spacing), up to
// SmallMax.
func smallClasses() []int64 {
	var classes []int64
	for s := int64(Quantum); s <= 128; s += Quantum {
		classes = append(classes, s)
	}
	// Groups of 4 between successive powers of two: 160,192,224,256, ...
	for base := int64(128); base < SmallMax; base *= 2 {
		step := base / 4
		for s := base + step; s <= base*2 && s <= SmallMax; s += step {
			classes = append(classes, s)
		}
	}
	return classes
}

// classIndex returns the index of the smallest class >= size, or -1 if size
// exceeds SmallMax.
func classIndex(classes []int64, size int64) int {
	if size > SmallMax {
		return -1
	}
	lo, hi := 0, len(classes)
	for lo < hi {
		mid := (lo + hi) / 2
		if classes[mid] < size {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// roundPage rounds size up to a whole number of pages.
func roundPage(size int64) int64 {
	return (size + mem.PageSize - 1) / mem.PageSize * mem.PageSize
}
