package nvmalloc

import (
	"encoding/binary"
	"testing"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// FuzzAllocatorOps decodes the fuzz input as a sequence of alloc/free
// operations and checks the allocator's structural invariants after every
// step. Each 3-byte record is (op, sizeLo, sizeHi): op's low bit selects
// alloc vs free; for allocs, size = 1 + (sizeHi<<8|sizeLo) * 4KiB/16 spreads
// requests across the small, large, and huge tiers; for frees, the size
// bytes index the live set.
func FuzzAllocatorOps(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 200, 10, 1, 0, 0})
	f.Add([]byte{0, 255, 255, 0, 1, 0, 1, 0, 0, 1, 1, 0})
	f.Add([]byte{0, 0, 64, 0, 0, 128, 0, 0, 255, 1, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := sim.NewEnv()
		k := nvmkernel.New(e, mem.NewDRAM(e, 8*mem.GB), mem.NewPCM(e, 8*mem.GB))
		e.Go("fuzz", func(p *sim.Proc) {
			a := New(k.Attach("rank0"), "heap")
			var live []int64
			for i := 0; i+2 < len(data) && i < 3*256; i += 3 {
				op := data[i]
				v := binary.LittleEndian.Uint16(data[i+1 : i+3])
				if op&1 == 0 {
					size := 1 + int64(v)*256
					ext, err := a.Alloc(p, size)
					if err != nil {
						t.Fatalf("alloc %d: %v", size, err)
					}
					live = append(live, ext.Addr)
				} else if len(live) > 0 {
					j := int(v) % len(live)
					if err := a.Free(p, live[j]); err != nil {
						t.Fatalf("free: %v", err)
					}
					live = append(live[:j], live[j+1:]...)
				}
				if err := a.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			for _, addr := range live {
				if err := a.Free(p, addr); err != nil {
					t.Fatal(err)
				}
			}
			if st := a.Stats(); st.Allocated != 0 || st.Active != 0 {
				t.Fatalf("leak: %+v", st)
			}
		})
		e.Run()
	})
}
