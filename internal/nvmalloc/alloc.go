package nvmalloc

import (
	"errors"
	"fmt"
	"sort"

	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// Allocator errors.
var (
	ErrBadSize  = errors.New("nvmalloc: non-positive size")
	ErrBadFree  = errors.New("nvmalloc: free of unallocated address")
	ErrExhaust  = errors.New("nvmalloc: NVM heap exhausted")
	ErrNotOwned = errors.New("nvmalloc: address not owned by allocator")
)

// Extent is an allocated address range in the process's NVM heap.
type Extent struct {
	Addr int64
	Size int64 // requested size; the reserved range may be class-rounded
}

// End returns the first address past the requested range.
func (e Extent) End() int64 { return e.Addr + e.Size }

// Stats summarizes allocator state.
type Stats struct {
	Allocated int64 // sum of live requested sizes
	Active    int64 // sum of live class-rounded sizes
	Mapped    int64 // bytes of kernel regions held
	Allocs    int64
	Frees     int64
	Slabs     int
	Chunks    int
	Huge      int
}

// Allocator is one process's NVM heap allocator.
type Allocator struct {
	proc    *nvmkernel.Process
	prefix  string
	classes []int64
	// bins[i] holds slabs of class i that still have free slots.
	bins         [][]*slab
	slabs        map[int64]*slab  // by base address
	slabRegionID map[int64]string // slab base -> kernel region id (for Trim)
	free         []Extent         // free large extents, sorted by Addr
	chunkIDs     int
	slabIDs      int
	hugeIDs      int
	next         int64 // next virtual base address for a new kernel region
	live         map[int64]liveAlloc
	stats        Stats
}

type liveAlloc struct {
	size    int64 // requested
	rounded int64 // reserved
	class   int   // small class index, or -1
	hugeID  string
}

type slab struct {
	base  int64
	class int
	slot  int64 // slot size
	used  []bool
	free  int
}

// New creates an allocator drawing slabs and chunks from proc's NVM
// container under kernel region ids prefixed by prefix.
func New(proc *nvmkernel.Process, prefix string) *Allocator {
	classes := smallClasses()
	return &Allocator{
		proc:         proc,
		prefix:       prefix,
		classes:      classes,
		bins:         make([][]*slab, len(classes)),
		slabs:        make(map[int64]*slab),
		slabRegionID: make(map[int64]string),
		live:         make(map[int64]liveAlloc),
	}
}

// Stats returns a snapshot of allocator statistics.
func (a *Allocator) Stats() Stats { return a.stats }

// Classes returns the small size-class table (for tests and tooling).
func (a *Allocator) Classes() []int64 { return append([]int64(nil), a.classes...) }

// Alloc reserves size bytes and returns its extent. The returned address is
// at least Quantum-aligned.
func (a *Allocator) Alloc(p *sim.Proc, size int64) (Extent, error) {
	if size <= 0 {
		return Extent{}, ErrBadSize
	}
	var (
		addr    int64
		rounded int64
		class   = -1
		hugeID  string
		err     error
	)
	switch {
	case size <= SmallMax:
		class = classIndex(a.classes, size)
		rounded = a.classes[class]
		addr, err = a.allocSmall(p, class)
	case size <= LargeMax:
		rounded = roundPage(size)
		addr, err = a.allocLarge(p, rounded)
	default:
		rounded = roundPage(size)
		addr, hugeID, err = a.allocHuge(p, rounded)
	}
	if err != nil {
		return Extent{}, err
	}
	a.live[addr] = liveAlloc{size: size, rounded: rounded, class: class, hugeID: hugeID}
	a.stats.Allocated += size
	a.stats.Active += rounded
	a.stats.Allocs++
	return Extent{Addr: addr, Size: size}, nil
}

// Free releases a previously allocated address.
func (a *Allocator) Free(p *sim.Proc, addr int64) error {
	la, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	delete(a.live, addr)
	a.stats.Allocated -= la.size
	a.stats.Active -= la.rounded
	a.stats.Frees++
	switch {
	case la.class >= 0:
		a.freeSmall(addr)
	case la.hugeID != "":
		a.stats.Huge--
		a.stats.Mapped -= la.rounded
		return a.proc.NVMUnmap(p, la.hugeID)
	default:
		a.freeLarge(Extent{Addr: addr, Size: la.rounded})
	}
	return nil
}

// Owns reports whether addr is a live allocation.
func (a *Allocator) Owns(addr int64) bool {
	_, ok := a.live[addr]
	return ok
}

// SizeOf returns the requested size of the live allocation at addr.
func (a *Allocator) SizeOf(addr int64) (int64, bool) {
	la, ok := a.live[addr]
	return la.size, ok
}

// --- small tier -------------------------------------------------------------

func (a *Allocator) allocSmall(p *sim.Proc, class int) (int64, error) {
	for _, s := range a.bins[class] {
		if s.free > 0 {
			return a.takeSlot(s), nil
		}
	}
	// Grow: map a fresh slab region from the kernel.
	a.slabIDs++
	id := fmt.Sprintf("%s/slab/%d", a.prefix, a.slabIDs)
	if _, _, err := a.proc.NVMMap(p, id, SlabSize, 0); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrExhaust, err)
	}
	base := a.grow(SlabSize)
	slot := a.classes[class]
	n := int(SlabSize / slot)
	s := &slab{base: base, class: class, slot: slot, used: make([]bool, n), free: n}
	a.bins[class] = append(a.bins[class], s)
	a.slabs[base] = s
	a.slabRegionID[base] = id
	a.stats.Slabs++
	a.stats.Mapped += SlabSize
	return a.takeSlot(s), nil
}

func (a *Allocator) takeSlot(s *slab) int64 {
	for i, u := range s.used {
		if !u {
			s.used[i] = true
			s.free--
			return s.base + int64(i)*s.slot
		}
	}
	panic("nvmalloc: slab bookkeeping corrupt")
}

func (a *Allocator) freeSmall(addr int64) {
	base := addr - addr%SlabSize
	s, ok := a.slabs[base]
	if !ok {
		panic(fmt.Sprintf("nvmalloc: small free %#x has no slab", addr))
	}
	i := int((addr - s.base) / s.slot)
	if !s.used[i] {
		panic(fmt.Sprintf("nvmalloc: double free of slot %d in slab %#x", i, base))
	}
	s.used[i] = false
	s.free++
	// Slabs are retained for reuse (jemalloc keeps runs cached); a fully
	// free slab still counts as mapped.
}

// --- large tier -------------------------------------------------------------

func (a *Allocator) allocLarge(p *sim.Proc, size int64) (int64, error) {
	// Best-fit over the free list.
	best := -1
	for i, e := range a.free {
		if e.Size >= size && (best < 0 || e.Size < a.free[best].Size) {
			best = i
		}
	}
	if best < 0 {
		a.chunkIDs++
		id := fmt.Sprintf("%s/chunk/%d", a.prefix, a.chunkIDs)
		if _, _, err := a.proc.NVMMap(p, id, ChunkSize, 0); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrExhaust, err)
		}
		base := a.grow(ChunkSize)
		a.insertFree(Extent{Addr: base, Size: ChunkSize})
		a.stats.Chunks++
		a.stats.Mapped += ChunkSize
		return a.allocLarge(p, size)
	}
	e := a.free[best]
	a.free = append(a.free[:best], a.free[best+1:]...)
	if e.Size > size {
		a.insertFree(Extent{Addr: e.Addr + size, Size: e.Size - size})
	}
	return e.Addr, nil
}

func (a *Allocator) freeLarge(e Extent) {
	a.insertFree(e)
	a.coalesce()
}

func (a *Allocator) insertFree(e Extent) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Addr > e.Addr })
	a.free = append(a.free, Extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = e
}

func (a *Allocator) coalesce() {
	out := a.free[:0]
	for _, e := range a.free {
		if n := len(out); n > 0 && out[n-1].End() == e.Addr && sameChunk(out[n-1].Addr, e.Addr) {
			out[n-1].Size += e.Size
			continue
		}
		out = append(out, e)
	}
	a.free = out
}

// sameChunk reports whether two addresses belong to the same 4MB chunk, so
// extents never coalesce across distinct kernel regions.
func sameChunk(x, y int64) bool {
	return x/ChunkSize == y/ChunkSize
}

// --- huge tier --------------------------------------------------------------

func (a *Allocator) allocHuge(p *sim.Proc, size int64) (int64, string, error) {
	a.hugeIDs++
	id := fmt.Sprintf("%s/huge/%d", a.prefix, a.hugeIDs)
	if _, _, err := a.proc.NVMMap(p, id, size, 0); err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrExhaust, err)
	}
	// Huge regions are aligned to ChunkSize so they never share a chunk
	// with large extents.
	base := a.growAligned(size, ChunkSize)
	a.stats.Huge++
	a.stats.Mapped += size
	return base, id, nil
}

// grow claims size bytes of fresh virtual address space aligned to size's
// natural region boundary.
func (a *Allocator) grow(size int64) int64 { return a.growAligned(size, size) }

func (a *Allocator) growAligned(size, align int64) int64 {
	base := (a.next + align - 1) / align * align
	a.next = base + size
	return base
}

// Trim returns fully-free slabs to the kernel (jemalloc's purge of empty
// runs), reclaiming their NVM capacity. Large-extent chunks and partially
// used slabs are retained. It returns the number of bytes released.
func (a *Allocator) Trim(p *sim.Proc) (int64, error) {
	var released int64
	for ci := range a.bins {
		kept := a.bins[ci][:0]
		for _, s := range a.bins[ci] {
			if s.free < len(s.used) {
				kept = append(kept, s)
				continue
			}
			if err := a.proc.NVMUnmap(p, a.slabRegionID[s.base]); err != nil {
				return released, err
			}
			delete(a.slabs, s.base)
			delete(a.slabRegionID, s.base)
			a.stats.Slabs--
			a.stats.Mapped -= SlabSize
			released += SlabSize
		}
		a.bins[ci] = kept
	}
	return released, nil
}

// CheckInvariants validates internal consistency: live allocations are
// disjoint, free extents are sorted/disjoint/coalesced, and stats match the
// live set. Used by property tests.
func (a *Allocator) CheckInvariants() error {
	type rng struct{ lo, hi int64 }
	var rs []rng
	var allocated, active int64
	for addr, la := range a.live {
		rs = append(rs, rng{addr, addr + la.rounded})
		allocated += la.size
		active += la.rounded
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
	for i := 1; i < len(rs); i++ {
		if rs[i].lo < rs[i-1].hi {
			return fmt.Errorf("live extents overlap: [%#x,%#x) and [%#x,%#x)",
				rs[i-1].lo, rs[i-1].hi, rs[i].lo, rs[i].hi)
		}
	}
	for i := 1; i < len(a.free); i++ {
		prev, cur := a.free[i-1], a.free[i]
		if cur.Addr < prev.End() {
			return fmt.Errorf("free extents overlap at %#x", cur.Addr)
		}
		if prev.End() == cur.Addr && sameChunk(prev.Addr, cur.Addr) {
			return fmt.Errorf("uncoalesced free extents at %#x", cur.Addr)
		}
	}
	if allocated != a.stats.Allocated || active != a.stats.Active {
		return fmt.Errorf("stats drift: allocated %d/%d active %d/%d",
			allocated, a.stats.Allocated, active, a.stats.Active)
	}
	return nil
}
