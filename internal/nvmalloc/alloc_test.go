package nvmalloc

import (
	"errors"
	"math/rand"
	"testing"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// withAllocator runs fn inside a simulated process with a fresh allocator
// over a generously sized NVM device.
func withAllocator(t *testing.T, nvmCap int64, fn func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel)) {
	t.Helper()
	e := sim.NewEnv()
	k := nvmkernel.New(e, mem.NewDRAM(e, 8*mem.GB), mem.NewPCM(e, nvmCap))
	e.Go("app", func(p *sim.Proc) {
		proc := k.Attach("rank0")
		a := New(proc, "heap")
		fn(p, a, k)
	})
	e.Run()
}

func TestSizeClassTable(t *testing.T) {
	classes := smallClasses()
	if classes[0] != Quantum {
		t.Fatalf("first class = %d, want %d", classes[0], Quantum)
	}
	for i := 1; i < len(classes); i++ {
		if classes[i] <= classes[i-1] {
			t.Fatalf("classes not ascending at %d: %v", i, classes[i-1:i+1])
		}
		if classes[i]%Quantum != 0 {
			t.Fatalf("class %d not quantum aligned", classes[i])
		}
	}
	if last := classes[len(classes)-1]; last != SmallMax {
		t.Fatalf("last class = %d, want %d", last, SmallMax)
	}
}

func TestClassIndexRoundsUp(t *testing.T) {
	classes := smallClasses()
	for _, size := range []int64{1, 15, 16, 17, 100, 1000, SmallMax - 1, SmallMax} {
		i := classIndex(classes, size)
		if i < 0 {
			t.Fatalf("classIndex(%d) = -1", size)
		}
		if classes[i] < size {
			t.Fatalf("class %d < size %d", classes[i], size)
		}
		if i > 0 && classes[i-1] >= size {
			t.Fatalf("classIndex(%d) not minimal: class[%d]=%d also fits", size, i-1, classes[i-1])
		}
	}
	if classIndex(classes, SmallMax+1) != -1 {
		t.Fatal("classIndex beyond SmallMax should be -1")
	}
}

func TestSmallAllocSharesSlab(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		e1, err := a.Alloc(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := a.Alloc(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		if e1.Addr == e2.Addr {
			t.Fatal("two allocations share an address")
		}
		st := a.Stats()
		if st.Slabs != 1 {
			t.Fatalf("Slabs = %d, want 1 (same class shares slab)", st.Slabs)
		}
		if st.Mapped != SlabSize {
			t.Fatalf("Mapped = %d, want one slab", st.Mapped)
		}
		if st.Allocated != 128 || st.Active != 128 {
			t.Fatalf("Allocated/Active = %d/%d, want 128/128", st.Allocated, st.Active)
		}
	})
}

func TestSmallClassRounding(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		if _, err := a.Alloc(p, 17); err != nil {
			t.Fatal(err)
		}
		st := a.Stats()
		if st.Allocated != 17 {
			t.Fatalf("Allocated = %d, want 17", st.Allocated)
		}
		if st.Active != 32 {
			t.Fatalf("Active = %d, want class-rounded 32", st.Active)
		}
	})
}

func TestSlotReuseAfterFree(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		e1, _ := a.Alloc(p, 128)
		if err := a.Free(p, e1.Addr); err != nil {
			t.Fatal(err)
		}
		e2, _ := a.Alloc(p, 128)
		if e2.Addr != e1.Addr {
			t.Fatalf("freed slot not reused: %#x then %#x", e1.Addr, e2.Addr)
		}
	})
}

func TestLargeAllocationPageRounded(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		e, err := a.Alloc(p, 100*mem.KB)
		if err != nil {
			t.Fatal(err)
		}
		if e.Addr%mem.PageSize != 0 {
			t.Fatalf("large alloc not page aligned: %#x", e.Addr)
		}
		st := a.Stats()
		if st.Chunks != 1 {
			t.Fatalf("Chunks = %d, want 1", st.Chunks)
		}
		if st.Active != 100*mem.KB { // 100KB is already page-multiple
			t.Fatalf("Active = %d", st.Active)
		}
	})
}

func TestLargeFreeCoalesces(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		e1, _ := a.Alloc(p, 512*mem.KB)
		e2, _ := a.Alloc(p, 512*mem.KB)
		e3, _ := a.Alloc(p, 512*mem.KB)
		a.Free(p, e1.Addr)
		a.Free(p, e3.Addr)
		a.Free(p, e2.Addr) // middle free must merge all three
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if len(a.free) != 1 {
			t.Fatalf("free list has %d extents, want 1 fully coalesced", len(a.free))
		}
		if a.free[0].Size != ChunkSize {
			t.Fatalf("coalesced size = %d, want whole chunk", a.free[0].Size)
		}
	})
}

func TestHugeAllocationDedicatedRegion(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		size := int64(10 * mem.MB)
		e, err := a.Alloc(p, size)
		if err != nil {
			t.Fatal(err)
		}
		st := a.Stats()
		if st.Huge != 1 || st.Chunks != 0 {
			t.Fatalf("Huge/Chunks = %d/%d, want 1/0", st.Huge, st.Chunks)
		}
		if err := a.Free(p, e.Addr); err != nil {
			t.Fatal(err)
		}
		st = a.Stats()
		if st.Huge != 0 {
			t.Fatalf("Huge = %d after free", st.Huge)
		}
		if st.Mapped != 0 {
			t.Fatalf("Mapped = %d after huge free, want 0 (region unmapped)", st.Mapped)
		}
		if k.NVM.Used != 0 {
			t.Fatalf("kernel NVM used = %d after huge free", k.NVM.Used)
		}
	})
}

func TestFreeErrors(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		if err := a.Free(p, 0x1234); !errors.Is(err, ErrBadFree) {
			t.Fatalf("bad free err = %v", err)
		}
		e, _ := a.Alloc(p, 64)
		a.Free(p, e.Addr)
		if err := a.Free(p, e.Addr); !errors.Is(err, ErrBadFree) {
			t.Fatalf("double free err = %v", err)
		}
	})
}

func TestAllocBadSize(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		if _, err := a.Alloc(p, 0); !errors.Is(err, ErrBadSize) {
			t.Fatalf("zero alloc err = %v", err)
		}
		if _, err := a.Alloc(p, -5); !errors.Is(err, ErrBadSize) {
			t.Fatalf("negative alloc err = %v", err)
		}
	})
}

func TestExhaustionSurfacesError(t *testing.T) {
	withAllocator(t, 8*mem.MB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		// 8MB device: one 4MB chunk fits, a second cannot.
		if _, err := a.Alloc(p, mem.MB); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Alloc(p, 20*mem.MB); !errors.Is(err, ErrExhaust) {
			t.Fatalf("exhaustion err = %v", err)
		}
	})
}

func TestOwnsAndSizeOf(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		e, _ := a.Alloc(p, 777)
		if !a.Owns(e.Addr) {
			t.Fatal("Owns = false for live alloc")
		}
		if sz, ok := a.SizeOf(e.Addr); !ok || sz != 777 {
			t.Fatalf("SizeOf = (%d,%v)", sz, ok)
		}
		a.Free(p, e.Addr)
		if a.Owns(e.Addr) {
			t.Fatal("Owns = true after free")
		}
	})
}

func TestRandomAllocFreeInvariants(t *testing.T) {
	withAllocator(t, 2*mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		rng := rand.New(rand.NewSource(42))
		var liveAddrs []int64
		for i := 0; i < 3000; i++ {
			if len(liveAddrs) > 0 && rng.Intn(100) < 40 {
				j := rng.Intn(len(liveAddrs))
				if err := a.Free(p, liveAddrs[j]); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				liveAddrs = append(liveAddrs[:j], liveAddrs[j+1:]...)
			} else {
				// Mix of small, large, and occasional huge sizes.
				var size int64
				switch rng.Intn(10) {
				case 0:
					size = int64(rng.Intn(int(8*mem.MB)) + int(LargeMax) + 1)
				case 1, 2:
					size = int64(rng.Intn(int(LargeMax-SmallMax))) + SmallMax + 1
				default:
					size = int64(rng.Intn(int(SmallMax))) + 1
				}
				e, err := a.Alloc(p, size)
				if err != nil {
					t.Fatalf("op %d alloc %d: %v", i, size, err)
				}
				liveAddrs = append(liveAddrs, e.Addr)
			}
			if i%250 == 0 {
				if err := a.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		}
		for _, addr := range liveAddrs {
			if err := a.Free(p, addr); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		st := a.Stats()
		if st.Allocated != 0 || st.Active != 0 {
			t.Fatalf("leak after free-all: %+v", st)
		}
		if st.Allocs != st.Frees {
			t.Fatalf("Allocs %d != Frees %d", st.Allocs, st.Frees)
		}
	})
}

func TestTrimReleasesEmptySlabs(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		e1, _ := a.Alloc(p, 64)
		e2, _ := a.Alloc(p, 4096) // distinct class, second slab
		a.Free(p, e1.Addr)
		// Slab 1 fully free, slab 2 still holds e2.
		released, err := a.Trim(p)
		if err != nil {
			t.Fatal(err)
		}
		if released != SlabSize {
			t.Fatalf("released = %d, want one slab", released)
		}
		st := a.Stats()
		if st.Slabs != 1 || st.Mapped != SlabSize {
			t.Fatalf("stats after trim: %+v", st)
		}
		if k.NVM.Used != SlabSize {
			t.Fatalf("kernel NVM used = %d, want one slab", k.NVM.Used)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// The surviving allocation still works and new allocations in the
		// trimmed class get a fresh slab.
		a.Free(p, e2.Addr)
		if _, err := a.Alloc(p, 64); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTrimKeepsPartiallyUsedSlabs(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		e1, _ := a.Alloc(p, 64)
		a.Alloc(p, 64) // same slab stays half-used
		a.Free(p, e1.Addr)
		released, err := a.Trim(p)
		if err != nil {
			t.Fatal(err)
		}
		if released != 0 {
			t.Fatalf("released = %d, want 0 (slab still in use)", released)
		}
	})
}

func TestManyDistinctClassesDistinctSlabs(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		if _, err := a.Alloc(p, 16); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Alloc(p, 4096); err != nil {
			t.Fatal(err)
		}
		if a.Stats().Slabs != 2 {
			t.Fatalf("Slabs = %d, want 2 (distinct classes)", a.Stats().Slabs)
		}
	})
}

func TestSlabFillsThenGrows(t *testing.T) {
	withAllocator(t, mem.GB, func(p *sim.Proc, a *Allocator, k *nvmkernel.Kernel) {
		slotsPerSlab := int(SlabSize / 8192)
		for i := 0; i < slotsPerSlab+1; i++ {
			if _, err := a.Alloc(p, 8192); err != nil {
				t.Fatal(err)
			}
		}
		if a.Stats().Slabs != 2 {
			t.Fatalf("Slabs = %d, want 2 after overflow", a.Stats().Slabs)
		}
	})
}
