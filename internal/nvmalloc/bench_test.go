package nvmalloc

import (
	"math/rand"
	"testing"

	"nvmcp/internal/mem"
	"nvmcp/internal/nvmkernel"
	"nvmcp/internal/sim"
)

// benchInProc runs fn(b, allocator, proc) inside a simulated process, since
// allocator calls may park the calling process (kernel syscalls).
func benchInProc(b *testing.B, fn func(*testing.B, *Allocator, *sim.Proc)) {
	b.Helper()
	e := sim.NewEnv()
	k := nvmkernel.New(e, mem.NewDRAM(e, 8*mem.GB), mem.NewPCM(e, 8*mem.GB))
	e.Go("bench", func(p *sim.Proc) {
		a := New(k.Attach("rank0"), "heap")
		b.ResetTimer()
		fn(b, a, p)
	})
	e.Run()
}

// BenchmarkSmallAllocFree measures the slab fast path.
func BenchmarkSmallAllocFree(b *testing.B) {
	benchInProc(b, func(b *testing.B, a *Allocator, p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			e, err := a.Alloc(p, 64)
			if err != nil {
				b.Fatal(err)
			}
			if err := a.Free(p, e.Addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLargeAllocFree measures the extent path with coalescing.
func BenchmarkLargeAllocFree(b *testing.B) {
	benchInProc(b, func(b *testing.B, a *Allocator, p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			e, err := a.Alloc(p, 256*mem.KB)
			if err != nil {
				b.Fatal(err)
			}
			if err := a.Free(p, e.Addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMixedWorkload measures a churning mix of sizes.
func BenchmarkMixedWorkload(b *testing.B) {
	benchInProc(b, func(b *testing.B, a *Allocator, p *sim.Proc) {
		rng := rand.New(rand.NewSource(1))
		var live []int64
		for i := 0; i < b.N; i++ {
			if len(live) > 256 || (len(live) > 0 && rng.Intn(2) == 0) {
				j := rng.Intn(len(live))
				if err := a.Free(p, live[j]); err != nil {
					b.Fatal(err)
				}
				live = append(live[:j], live[j+1:]...)
			} else {
				size := int64(rng.Intn(32*1024) + 1)
				e, err := a.Alloc(p, size)
				if err != nil {
					b.Fatal(err)
				}
				live = append(live, e.Addr)
			}
		}
	})
}
