// Package fault is the deterministic, scenario-driven fault injector. It
// perturbs three surfaces of the simulated machine — the PCM device
// (bit-flips and torn writes on committed chunk payloads), the fabric
// (transient link drops and bandwidth degradation), and processes (soft
// crash, hard node loss, loss of the buddy holding a node's remote copies)
// — all scheduled in virtual time and driven by seeded randomness, so a
// faulted run replays identically.
//
// Beyond point faults, the package models *correlated* failures over the
// fleet's (provider, zone, rack) topology: rack, zone and provider outages
// fail every node of a domain atomically on virtual time, and link-flap
// storms cascade across neighbouring racks with seeded propagation jitter.
// These are the events buddy and erasure placement must be measured
// against — an i.i.d. node death never takes a replica down with its
// primary; a zone outage does.
//
// The package knows nothing about the cluster: callers hand the injector a
// set of Surfaces (closures onto the kernel, fabric, and process layers)
// and a list of Events, either written explicitly in a scenario or drawn
// from a stochastic MTBF Model.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nvmcp/internal/sim"
	"nvmcp/internal/topo"
)

// Kind names one failure class in the taxonomy.
type Kind string

const (
	// Soft kills every rank process; NVM contents survive, so recovery
	// restores from the local level.
	Soft Kind = "soft"
	// Hard kills every rank process and wipes the failed node's NVM;
	// the node's chunks must come back from the remote or bottom tier.
	Hard Kind = "hard"
	// NVMCorrupt silently damages committed chunk payloads on the target
	// node (bit-flips, or torn writes that lose the payload tail). The
	// fault is latent: it surfaces as ErrChecksum at the next restore.
	NVMCorrupt Kind = "nvm-corrupt"
	// LinkFlap takes the target node's fabric links down (or degrades them
	// to a fraction of their bandwidth) for a bounded duration. In-flight
	// transfers stall or slow; the remote helper retries around it.
	LinkFlap Kind = "link-flap"
	// BuddyLoss hard-fails the node that holds the target node's remote
	// checkpoint copies — the worst case for the remote level, forcing
	// recovery of any locally damaged chunk down to the bottom tier.
	BuddyLoss Kind = "buddy-loss"

	// RackOutage hard-fails every node in one rack atomically: the
	// (Provider, Zone, Rack) coordinate names the domain. NVM on every
	// victim is lost (set Soft for a power-cycle that spares it).
	RackOutage Kind = "rack-outage"
	// ZoneOutage hard-fails every node in one (Provider, Zone) domain.
	ZoneOutage Kind = "zone-outage"
	// ProviderOutage hard-fails every node of one provider.
	ProviderOutage Kind = "provider-outage"
	// LinkStorm is a cascading link-flap: the origin node's rack flaps at
	// At, then the storm propagates to racks at increasing ring distance,
	// one wave per WaveDelay, with seeded per-node jitter.
	LinkStorm Kind = "link-storm"
)

// Kinds lists every valid kind, in taxonomy order.
func Kinds() []Kind {
	return []Kind{Soft, Hard, NVMCorrupt, LinkFlap, BuddyLoss,
		RackOutage, ZoneOutage, ProviderOutage, LinkStorm}
}

// ParseKind maps a scenario string to a Kind. The empty string is Soft, the
// historical default.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "":
		return Soft, nil
	case Soft, Hard, NVMCorrupt, LinkFlap, BuddyLoss,
		RackOutage, ZoneOutage, ProviderOutage, LinkStorm:
		return Kind(s), nil
	}
	return "", fmt.Errorf("fault: unknown kind %q (want soft, hard, nvm-corrupt, link-flap, buddy-loss, rack-outage, zone-outage, provider-outage, or link-storm)", s)
}

// Process reports whether the kind kills rank processes (and therefore
// triggers a restart), as opposed to a latent or fabric-only perturbation.
func (k Kind) Process() bool {
	return k == Soft || k == Hard || k == BuddyLoss || k.Correlated()
}

// Correlated reports whether the kind targets a whole failure domain
// rather than a single node.
func (k Kind) Correlated() bool {
	return k == RackOutage || k == ZoneOutage || k == ProviderOutage
}

// DomainLevel returns the topology level a correlated kind fails, and
// whether the kind is correlated at all.
func (k Kind) DomainLevel() (topo.Level, bool) {
	switch k {
	case RackOutage:
		return topo.LevelRack, true
	case ZoneOutage:
		return topo.LevelZone, true
	case ProviderOutage:
		return topo.LevelProvider, true
	}
	return 0, false
}

// Event is one scheduled fault.
type Event struct {
	// At is the virtual injection time.
	At time.Duration
	// Node is the fault's target. For BuddyLoss it names the node whose
	// remote copies are lost (the injector resolves the holder); for
	// LinkStorm it names the origin node whose rack flaps first. Domain
	// outages leave it zero and address the domain by coordinate instead.
	Node int
	// Kind selects the failure class.
	Kind Kind

	// Chunks bounds how many committed chunks an NVMCorrupt fault damages
	// (0 means 1).
	Chunks int
	// Torn makes NVMCorrupt tear payloads (zero the tail half, as a write
	// interrupted by power loss would) instead of flipping a single bit.
	Torn bool

	// Duration is a LinkFlap's (or each storm flap's) outage length.
	Duration time.Duration
	// Factor is a LinkFlap's residual bandwidth fraction: 0 takes the links
	// fully down, 0.1 leaves a 10% trickle.
	Factor float64

	// Provider/Zone/Rack address the failure domain of a correlated kind.
	// RackOutage reads all three, ZoneOutage Provider+Zone, ProviderOutage
	// only Provider. Point kinds ignore them.
	Provider int
	Zone     int
	Rack     int
	// Soft makes a domain outage spare the victims' NVM (a coordinated
	// power-cycle rather than destruction); default outages wipe it.
	Soft bool

	// Waves is how many propagation rounds a LinkStorm runs beyond the
	// origin rack (0 means the storm stays in one rack).
	Waves int
	// WaveDelay is the virtual time between storm waves (default 500ms).
	WaveDelay time.Duration
}

// Domain returns the coordinate a correlated event targets.
func (e Event) Domain() topo.Coord {
	return topo.Coord{Provider: e.Provider, Zone: e.Zone, Rack: e.Rack}
}

// Victims resolves the event's victim set over a topology: the nodes of
// the targeted domain, ascending. Point kinds return just the node.
func (e Event) Victims(t *topo.Topology) []int {
	if lvl, ok := e.Kind.DomainLevel(); ok {
		if t == nil {
			return nil
		}
		return t.NodesIn(lvl, e.Domain())
	}
	return []int{e.Node}
}

// Label renders the event as a compact cause string for lineage records,
// e.g. "nvm-corrupt@10.5s/node1" or "zone-outage@20s/p0/z1" — which
// injection pushed a chunk off its happy path.
func (e Event) Label() string {
	if lvl, ok := e.Kind.DomainLevel(); ok {
		return fmt.Sprintf("%s@%s/%s", e.Kind, e.At, e.Domain().Label(lvl))
	}
	return fmt.Sprintf("%s@%s/node%d", e.Kind, e.At, e.Node)
}

// Validate checks the event's shape against nodes, the machine size, and —
// for correlated kinds and storms — the fleet topology. t may be nil for
// point kinds; domain-targeted kinds require it.
func (e Event) Validate(nodes int, t *topo.Topology) error {
	if _, err := ParseKind(string(e.Kind)); err != nil {
		return err
	}
	if e.At <= 0 {
		return fmt.Errorf("fault: event time %v not positive", e.At)
	}
	if e.Chunks < 0 {
		return fmt.Errorf("fault: negative chunk count %d", e.Chunks)
	}
	if e.Factor < 0 || e.Factor >= 1 {
		return fmt.Errorf("fault: link factor %v outside [0,1)", e.Factor)
	}
	if e.Waves < 0 {
		return fmt.Errorf("fault: negative wave count %d", e.Waves)
	}
	if e.WaveDelay < 0 {
		return fmt.Errorf("fault: negative wave delay %v", e.WaveDelay)
	}
	if lvl, ok := e.Kind.DomainLevel(); ok {
		if t == nil {
			return fmt.Errorf("fault: %s needs a fleet topology (no provider/zone/rack coordinates assigned)", e.Kind)
		}
		if e.Node != 0 {
			return fmt.Errorf("fault: %s targets a domain, not a node (drop node %d)", e.Kind, e.Node)
		}
		if e.Provider < 0 || e.Zone < 0 || e.Rack < 0 {
			return fmt.Errorf("fault: negative domain coordinate %+v", e.Domain())
		}
		if !t.Has(lvl, e.Domain()) {
			return fmt.Errorf("fault: %s targets empty domain %s", e.Kind, e.Domain().Label(lvl))
		}
		return nil
	}
	if e.Node < 0 || e.Node >= nodes {
		return fmt.Errorf("fault: node %d outside cluster (nodes 0..%d)", e.Node, nodes-1)
	}
	switch e.Kind {
	case LinkFlap:
		if e.Duration <= 0 {
			return fmt.Errorf("fault: link-flap needs a positive duration")
		}
	case LinkStorm:
		if e.Duration <= 0 {
			return fmt.Errorf("fault: link-storm needs a positive per-flap duration")
		}
		if t == nil {
			return fmt.Errorf("fault: link-storm needs a fleet topology to propagate over")
		}
		if !t.Contains(e.Node) {
			return fmt.Errorf("fault: storm origin %d outside topology (%d nodes)", e.Node, t.Nodes())
		}
	}
	return nil
}

// DefaultWaveDelay is the storm wave spacing when an event leaves it zero.
const DefaultWaveDelay = 500 * time.Millisecond

// ExpandStorm unfolds a LinkStorm into concrete per-node LinkFlap events:
// wave 0 flaps the origin node's rack at ev.At; wave k flaps the racks at
// ring distance k (both directions over the global rack order, so storms
// cross zone boundaries like real routing meltdowns) at ev.At plus k wave
// delays, each node jittered by a seeded uniform draw in [0, WaveDelay/2).
// The expansion is a pure function of (ev, t, seed), so a storm replays
// identically at any GOMAXPROCS.
func ExpandStorm(ev Event, t *topo.Topology, seed int64) []Event {
	if t == nil || !t.Contains(ev.Node) {
		return nil
	}
	delay := ev.WaveDelay
	if delay <= 0 {
		delay = DefaultWaveDelay
	}
	racks := t.Domains(topo.LevelRack)
	origin := -1
	originKey := t.Coord(ev.Node).Key(topo.LevelRack)
	for i, r := range racks {
		if r == originKey {
			origin = i
		}
	}
	if origin < 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ int64(ev.At) ^ int64(ev.Node)<<17))
	var out []Event
	for wave := 0; wave <= ev.Waves; wave++ {
		hit := map[int]bool{}
		for _, d := range []int{origin - wave, origin + wave} {
			if d >= 0 && d < len(racks) && !hit[d] {
				hit[d] = true
				base := ev.At + time.Duration(wave)*delay
				for _, n := range t.NodesIn(topo.LevelRack, racks[d]) {
					jitter := time.Duration(rng.Int63n(int64(delay)/2 + 1))
					out = append(out, Event{
						At:       base + jitter,
						Node:     n,
						Kind:     LinkFlap,
						Duration: ev.Duration,
						Factor:   ev.Factor,
					})
				}
			}
		}
	}
	return out
}

// Model draws a stochastic fault schedule from exponential interarrival
// distributions — the MTBF-driven mode of Section III. Soft and hard
// failures are sampled independently and assign nodes round-robin,
// mirroring the restart experiment's alternating-node idiom; correlated
// classes (rack/zone outages) walk the topology's domains round-robin the
// same way, so every event the model emits passes Event.Validate. The
// merged schedule is sorted by time.
type Model struct {
	// MTBFSoft / MTBFHard are the mean times between failures of each
	// class; zero disables that class.
	MTBFSoft time.Duration
	MTBFHard time.Duration
	// MTBFRack / MTBFZone are the mean times between correlated domain
	// outages; they require a topology and are ignored without one.
	MTBFRack time.Duration
	MTBFZone time.Duration
	// Horizon bounds the schedule: no fault is drawn at or past it.
	Horizon time.Duration
	// Seed fixes the random stream (0 is a valid, fixed seed).
	Seed int64
	// Nodes is the machine size faults are spread over.
	Nodes int
	// Topo assigns failure-domain coordinates; required for the
	// correlated classes.
	Topo *topo.Topology
}

// Schedule expands the model into a concrete, reproducible event list.
func (m Model) Schedule() []Event {
	var events []Event
	draw := func(mtbf time.Duration, seedSalt int64, mk func(i int, t time.Duration) (Event, bool)) {
		if mtbf <= 0 {
			return
		}
		rng := rand.New(rand.NewSource(m.Seed + seedSalt))
		t := time.Duration(0)
		for i := 0; ; i++ {
			t += time.Duration(rng.ExpFloat64() * float64(mtbf))
			if t >= m.Horizon {
				return
			}
			if ev, ok := mk(i, t); ok {
				events = append(events, ev)
			}
		}
	}
	point := func(kind Kind) func(int, time.Duration) (Event, bool) {
		return func(i int, t time.Duration) (Event, bool) {
			node := 0
			if m.Nodes > 0 {
				node = i % m.Nodes
			}
			return Event{At: t, Node: node, Kind: kind}, true
		}
	}
	domain := func(kind Kind, lvl topo.Level) func(int, time.Duration) (Event, bool) {
		if m.Topo == nil {
			return func(int, time.Duration) (Event, bool) { return Event{}, false }
		}
		domains := m.Topo.Domains(lvl)
		return func(i int, t time.Duration) (Event, bool) {
			if len(domains) == 0 {
				return Event{}, false
			}
			d := domains[i%len(domains)]
			return Event{At: t, Kind: kind, Provider: d.Provider, Zone: d.Zone, Rack: d.Rack}, true
		}
	}
	draw(m.MTBFSoft, 0, point(Soft))
	draw(m.MTBFHard, 0x9e3779b9, point(Hard))
	draw(m.MTBFRack, 0x7f4a7c15, domain(RackOutage, topo.LevelRack))
	draw(m.MTBFZone, 0x2545f491, domain(ZoneOutage, topo.LevelZone))
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// Surfaces are the hooks the injector perturbs. Each receives the full
// event so kind-specific fields reach the implementation.
type Surfaces struct {
	// Kill handles process faults (Soft, Hard, BuddyLoss, and the domain
	// outages): it kills rank processes and arranges the restart. For
	// correlated kinds the receiver resolves the victim set from the
	// event's domain coordinate.
	Kill func(ev Event)
	// CorruptNVM damages committed chunk payloads on ev.Node using rng for
	// placement, returning how many chunks were hit.
	CorruptNVM func(rng *rand.Rand, ev Event) int
	// FlapLink degrades ev.Node's fabric links for ev.Duration.
	FlapLink func(ev Event)
}

// Injector schedules fault events against a simulation environment and
// dispatches them to the surfaces. One seeded rng, consumed in schedule
// order, keeps corruption placement reproducible across runs; LinkStorm
// events are expanded into their flap cascade at scheduling time with the
// same seed, so the storm's shape is part of the deterministic schedule.
type Injector struct {
	env  *sim.Env
	rng  *rand.Rand
	seed int64
	topo *topo.Topology
	s    Surfaces
}

// NewInjector builds an injector over env with the given placement seed.
// t may be nil when the scenario has no fleet topology; storms then
// degrade to a single flap at their origin.
func NewInjector(env *sim.Env, seed int64, t *topo.Topology, s Surfaces) *Injector {
	return &Injector{env: env, rng: rand.New(rand.NewSource(seed)), seed: seed, topo: t, s: s}
}

// ScheduleAll arms every event at its virtual time. Events fire in At
// order; ties resolve in slice order (the scheduler is FIFO per instant).
// LinkStorms are pre-expanded into their flap cascades here.
func (in *Injector) ScheduleAll(events []Event) {
	for _, ev := range events {
		if ev.Kind == LinkStorm && in.topo != nil {
			for _, flap := range ExpandStorm(ev, in.topo, in.seed) {
				in.env.At(flap.At, func() { in.dispatch(flap) })
			}
			continue
		}
		in.env.At(ev.At, func() { in.dispatch(ev) })
	}
}

func (in *Injector) dispatch(ev Event) {
	switch ev.Kind {
	case NVMCorrupt:
		if in.s.CorruptNVM != nil {
			in.s.CorruptNVM(in.rng, ev)
		}
	case LinkFlap, LinkStorm:
		if in.s.FlapLink != nil {
			in.s.FlapLink(ev)
		}
	default: // Soft, Hard, BuddyLoss, domain outages
		if in.s.Kill != nil {
			in.s.Kill(ev)
		}
	}
}
