// Package fault is the deterministic, scenario-driven fault injector. It
// perturbs three surfaces of the simulated machine — the PCM device
// (bit-flips and torn writes on committed chunk payloads), the fabric
// (transient link drops and bandwidth degradation), and processes (soft
// crash, hard node loss, loss of the buddy holding a node's remote copies)
// — all scheduled in virtual time and driven by seeded randomness, so a
// faulted run replays identically.
//
// The package knows nothing about the cluster: callers hand the injector a
// set of Surfaces (closures onto the kernel, fabric, and process layers)
// and a list of Events, either written explicitly in a scenario or drawn
// from a stochastic MTBF Model.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nvmcp/internal/sim"
)

// Kind names one failure class in the taxonomy.
type Kind string

const (
	// Soft kills every rank process; NVM contents survive, so recovery
	// restores from the local level.
	Soft Kind = "soft"
	// Hard kills every rank process and wipes the failed node's NVM;
	// the node's chunks must come back from the remote or bottom tier.
	Hard Kind = "hard"
	// NVMCorrupt silently damages committed chunk payloads on the target
	// node (bit-flips, or torn writes that lose the payload tail). The
	// fault is latent: it surfaces as ErrChecksum at the next restore.
	NVMCorrupt Kind = "nvm-corrupt"
	// LinkFlap takes the target node's fabric links down (or degrades them
	// to a fraction of their bandwidth) for a bounded duration. In-flight
	// transfers stall or slow; the remote helper retries around it.
	LinkFlap Kind = "link-flap"
	// BuddyLoss hard-fails the node that holds the target node's remote
	// checkpoint copies — the worst case for the remote level, forcing
	// recovery of any locally damaged chunk down to the bottom tier.
	BuddyLoss Kind = "buddy-loss"
)

// Kinds lists every valid kind, in taxonomy order.
func Kinds() []Kind { return []Kind{Soft, Hard, NVMCorrupt, LinkFlap, BuddyLoss} }

// ParseKind maps a scenario string to a Kind. The empty string is Soft, the
// historical default.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "":
		return Soft, nil
	case Soft, Hard, NVMCorrupt, LinkFlap, BuddyLoss:
		return Kind(s), nil
	}
	return "", fmt.Errorf("fault: unknown kind %q (want soft, hard, nvm-corrupt, link-flap, or buddy-loss)", s)
}

// Process reports whether the kind kills rank processes (and therefore
// triggers a restart), as opposed to a latent or fabric-only perturbation.
func (k Kind) Process() bool { return k == Soft || k == Hard || k == BuddyLoss }

// Event is one scheduled fault.
type Event struct {
	// At is the virtual injection time.
	At time.Duration
	// Node is the fault's target. For BuddyLoss it names the node whose
	// remote copies are lost (the injector resolves the holder).
	Node int
	// Kind selects the failure class.
	Kind Kind

	// Chunks bounds how many committed chunks an NVMCorrupt fault damages
	// (0 means 1).
	Chunks int
	// Torn makes NVMCorrupt tear payloads (zero the tail half, as a write
	// interrupted by power loss would) instead of flipping a single bit.
	Torn bool

	// Duration is a LinkFlap's outage length.
	Duration time.Duration
	// Factor is a LinkFlap's residual bandwidth fraction: 0 takes the links
	// fully down, 0.1 leaves a 10% trickle.
	Factor float64
}

// Label renders the event as a compact cause string for lineage records,
// e.g. "nvm-corrupt@10.5s/node1" — which injection pushed a chunk off its
// happy path.
func (e Event) Label() string {
	return fmt.Sprintf("%s@%s/node%d", e.Kind, e.At, e.Node)
}

// Validate checks the event's shape against nodes, the machine size.
func (e Event) Validate(nodes int) error {
	if _, err := ParseKind(string(e.Kind)); err != nil {
		return err
	}
	if e.At <= 0 {
		return fmt.Errorf("fault: event time %v not positive", e.At)
	}
	if e.Node < 0 || e.Node >= nodes {
		return fmt.Errorf("fault: node %d outside cluster (nodes 0..%d)", e.Node, nodes-1)
	}
	if e.Chunks < 0 {
		return fmt.Errorf("fault: negative chunk count %d", e.Chunks)
	}
	if e.Factor < 0 || e.Factor >= 1 {
		return fmt.Errorf("fault: link factor %v outside [0,1)", e.Factor)
	}
	if e.Kind == LinkFlap && e.Duration <= 0 {
		return fmt.Errorf("fault: link-flap needs a positive duration")
	}
	return nil
}

// Model draws a stochastic fault schedule from exponential interarrival
// distributions — the MTBF-driven mode of Section III. Soft and hard
// failures are sampled independently; the merged schedule is sorted by
// time and assigns nodes round-robin, mirroring the restart experiment's
// alternating-node idiom.
type Model struct {
	// MTBFSoft / MTBFHard are the mean times between failures of each
	// class; zero disables that class.
	MTBFSoft time.Duration
	MTBFHard time.Duration
	// Horizon bounds the schedule: no fault is drawn at or past it.
	Horizon time.Duration
	// Seed fixes the random stream (0 is a valid, fixed seed).
	Seed int64
	// Nodes is the machine size faults are spread over.
	Nodes int
}

// Schedule expands the model into a concrete, reproducible event list.
func (m Model) Schedule() []Event {
	var events []Event
	draw := func(mtbf time.Duration, kind Kind, seedSalt int64) {
		if mtbf <= 0 {
			return
		}
		rng := rand.New(rand.NewSource(m.Seed + seedSalt))
		t := time.Duration(0)
		for i := 0; ; i++ {
			t += time.Duration(rng.ExpFloat64() * float64(mtbf))
			if t >= m.Horizon {
				return
			}
			node := 0
			if m.Nodes > 0 {
				node = i % m.Nodes
			}
			events = append(events, Event{At: t, Node: node, Kind: kind})
		}
	}
	draw(m.MTBFSoft, Soft, 0)
	draw(m.MTBFHard, Hard, 0x9e3779b9)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// Surfaces are the hooks the injector perturbs. Each receives the full
// event so kind-specific fields reach the implementation.
type Surfaces struct {
	// Kill handles process faults (Soft, Hard, BuddyLoss): it kills rank
	// processes and arranges the restart.
	Kill func(ev Event)
	// CorruptNVM damages committed chunk payloads on ev.Node using rng for
	// placement, returning how many chunks were hit.
	CorruptNVM func(rng *rand.Rand, ev Event) int
	// FlapLink degrades ev.Node's fabric links for ev.Duration.
	FlapLink func(ev Event)
}

// Injector schedules fault events against a simulation environment and
// dispatches them to the surfaces. One seeded rng, consumed in schedule
// order, keeps corruption placement reproducible across runs.
type Injector struct {
	env *sim.Env
	rng *rand.Rand
	s   Surfaces
}

// NewInjector builds an injector over env with the given placement seed.
func NewInjector(env *sim.Env, seed int64, s Surfaces) *Injector {
	return &Injector{env: env, rng: rand.New(rand.NewSource(seed)), s: s}
}

// ScheduleAll arms every event at its virtual time. Events fire in At
// order; ties resolve in slice order (the scheduler is FIFO per instant).
func (in *Injector) ScheduleAll(events []Event) {
	for _, ev := range events {
		in.env.At(ev.At, func() { in.dispatch(ev) })
	}
}

func (in *Injector) dispatch(ev Event) {
	switch ev.Kind {
	case NVMCorrupt:
		if in.s.CorruptNVM != nil {
			in.s.CorruptNVM(in.rng, ev)
		}
	case LinkFlap:
		if in.s.FlapLink != nil {
			in.s.FlapLink(ev)
		}
	default: // Soft, Hard, BuddyLoss
		if in.s.Kill != nil {
			in.s.Kill(ev)
		}
	}
}
