package fault

import (
	"math/rand"
	"testing"
	"time"

	"nvmcp/internal/sim"
)

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k, got, err)
		}
	}
	if got, err := ParseKind(""); err != nil || got != Soft {
		t.Errorf("ParseKind(\"\") = %v, %v, want Soft (the historical default)", got, err)
	}
	if _, err := ParseKind("meteor-strike"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEventValidate(t *testing.T) {
	good := Event{At: time.Second, Node: 1, Kind: Hard}
	if err := good.Validate(4); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	bad := []Event{
		{At: 0, Node: 0, Kind: Soft},                                       // non-positive time
		{At: time.Second, Node: 4, Kind: Soft},                             // node out of range
		{At: time.Second, Node: -1, Kind: Soft},                            // negative node
		{At: time.Second, Node: 0, Kind: "quantum"},                        // unknown kind
		{At: time.Second, Node: 0, Kind: NVMCorrupt, Chunks: -1},           // negative chunks
		{At: time.Second, Node: 0, Kind: LinkFlap, Factor: 1.0},            // factor not < 1
		{At: time.Second, Node: 0, Kind: LinkFlap},                         // flap needs duration
		{At: time.Second, Node: 0, Kind: LinkFlap, Duration: -time.Second}, // negative duration
	}
	for i, ev := range bad {
		if err := ev.Validate(4); err == nil {
			t.Errorf("bad event %d accepted: %+v", i, ev)
		}
	}
}

func TestModelScheduleDeterministicSortedBounded(t *testing.T) {
	m := Model{
		MTBFSoft: 20 * time.Second,
		MTBFHard: 60 * time.Second,
		Horizon:  5 * time.Minute,
		Seed:     42,
		Nodes:    4,
	}
	a, b := m.Schedule(), m.Schedule()
	if len(a) == 0 {
		t.Fatal("model drew no events over 15 soft MTBFs")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed drew %d then %d events", len(a), len(b))
	}
	var soft, hard int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across same-seed draws: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("schedule unsorted at %d", i)
		}
		if a[i].At >= m.Horizon {
			t.Fatalf("event %d at %v past horizon %v", i, a[i].At, m.Horizon)
		}
		if a[i].Node < 0 || a[i].Node >= m.Nodes {
			t.Fatalf("event %d on node %d outside machine", i, a[i].Node)
		}
		switch a[i].Kind {
		case Soft:
			soft++
		case Hard:
			hard++
		default:
			t.Fatalf("model drew kind %q", a[i].Kind)
		}
	}
	if soft == 0 || hard == 0 {
		t.Fatalf("soft=%d hard=%d, want both classes present", soft, hard)
	}
	m2 := m
	m2.Seed = 43
	if c := m2.Schedule(); len(c) == len(a) && func() bool {
		for i := range c {
			if c[i] != a[i] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds drew identical schedules")
	}
}

func TestModelDisabledClassDrawsNothing(t *testing.T) {
	m := Model{MTBFHard: 30 * time.Second, Horizon: 5 * time.Minute, Nodes: 2}
	for _, ev := range m.Schedule() {
		if ev.Kind != Hard {
			t.Fatalf("disabled soft class drew %+v", ev)
		}
	}
	if got := (Model{Horizon: time.Minute, Nodes: 2}).Schedule(); len(got) != 0 {
		t.Fatalf("fully disabled model drew %d events", len(got))
	}
}

func TestInjectorDispatchesByKindAtScheduledTime(t *testing.T) {
	e := sim.NewEnv()
	type hit struct {
		kind Kind
		at   time.Duration
	}
	var hits []hit
	in := NewInjector(e, 7, Surfaces{
		Kill: func(ev Event) { hits = append(hits, hit{ev.Kind, e.Now()}) },
		CorruptNVM: func(rng *rand.Rand, ev Event) int {
			if rng == nil {
				t.Error("corrupt surface got nil rng")
			}
			hits = append(hits, hit{ev.Kind, e.Now()})
			return ev.Chunks
		},
		FlapLink: func(ev Event) { hits = append(hits, hit{ev.Kind, e.Now()}) },
	})
	in.ScheduleAll([]Event{
		{At: 3 * time.Second, Node: 0, Kind: BuddyLoss},
		{At: time.Second, Node: 0, Kind: LinkFlap, Duration: time.Second},
		{At: 2 * time.Second, Node: 1, Kind: NVMCorrupt, Chunks: 2},
	})
	e.Run()
	want := []hit{
		{LinkFlap, time.Second},
		{NVMCorrupt, 2 * time.Second},
		{BuddyLoss, 3 * time.Second},
	}
	if len(hits) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(hits), len(want))
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("dispatch %d = %+v, want %+v", i, hits[i], want[i])
		}
	}
}
