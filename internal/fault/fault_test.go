package fault

import (
	"math/rand"
	"testing"
	"time"

	"nvmcp/internal/sim"
	"nvmcp/internal/topo"
)

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k, got, err)
		}
	}
	if got, err := ParseKind(""); err != nil || got != Soft {
		t.Errorf("ParseKind(\"\") = %v, %v, want Soft (the historical default)", got, err)
	}
	if _, err := ParseKind("meteor-strike"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// testTopo is 8 nodes over 1 provider × 2 zones × 2 racks/zone (2 per rack).
func testTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.Uniform(8, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestEventValidateAllKinds is the table-driven contract for every kind:
// point kinds validate against the machine size, correlated kinds against
// the fleet topology's domain coordinates.
func TestEventValidateAllKinds(t *testing.T) {
	tp := testTopo(t)
	cases := []struct {
		name string
		ev   Event
		topo *topo.Topology
		ok   bool
	}{
		{"soft ok", Event{At: time.Second, Node: 1, Kind: Soft}, nil, true},
		{"soft zero time", Event{Node: 1, Kind: Soft}, nil, false},
		{"soft node out of range", Event{At: time.Second, Node: 4, Kind: Soft}, nil, false},
		{"soft negative node", Event{At: time.Second, Node: -1, Kind: Soft}, nil, false},
		{"hard ok", Event{At: time.Second, Node: 3, Kind: Hard}, nil, true},
		{"unknown kind", Event{At: time.Second, Kind: "quantum"}, nil, false},
		{"nvm-corrupt ok", Event{At: time.Second, Kind: NVMCorrupt, Chunks: 2, Torn: true}, nil, true},
		{"nvm-corrupt negative chunks", Event{At: time.Second, Kind: NVMCorrupt, Chunks: -1}, nil, false},
		{"link-flap ok", Event{At: time.Second, Kind: LinkFlap, Duration: time.Second, Factor: 0.1}, nil, true},
		{"link-flap no duration", Event{At: time.Second, Kind: LinkFlap}, nil, false},
		{"link-flap negative duration", Event{At: time.Second, Kind: LinkFlap, Duration: -time.Second}, nil, false},
		{"link-flap factor not <1", Event{At: time.Second, Kind: LinkFlap, Duration: time.Second, Factor: 1.0}, nil, false},
		{"buddy-loss ok", Event{At: time.Second, Node: 2, Kind: BuddyLoss}, nil, true},

		{"rack-outage ok", Event{At: time.Second, Kind: RackOutage, Zone: 1, Rack: 1}, tp, true},
		{"rack-outage no topology", Event{At: time.Second, Kind: RackOutage}, nil, false},
		{"rack-outage empty domain", Event{At: time.Second, Kind: RackOutage, Rack: 9}, tp, false},
		{"rack-outage with node target", Event{At: time.Second, Node: 3, Kind: RackOutage}, tp, false},
		{"rack-outage negative coord", Event{At: time.Second, Kind: RackOutage, Rack: -1}, tp, false},
		{"zone-outage ok", Event{At: time.Second, Kind: ZoneOutage, Zone: 1}, tp, true},
		{"zone-outage soft ok", Event{At: time.Second, Kind: ZoneOutage, Zone: 0, Soft: true}, tp, true},
		{"zone-outage empty domain", Event{At: time.Second, Kind: ZoneOutage, Zone: 5}, tp, false},
		{"provider-outage ok", Event{At: time.Second, Kind: ProviderOutage}, tp, true},
		{"provider-outage empty domain", Event{At: time.Second, Kind: ProviderOutage, Provider: 2}, tp, false},

		{"link-storm ok", Event{At: time.Second, Node: 2, Kind: LinkStorm, Duration: time.Second, Waves: 2}, tp, true},
		{"link-storm no topology", Event{At: time.Second, Kind: LinkStorm, Duration: time.Second}, nil, false},
		{"link-storm no duration", Event{At: time.Second, Kind: LinkStorm}, tp, false},
		{"link-storm negative waves", Event{At: time.Second, Kind: LinkStorm, Duration: time.Second, Waves: -1}, tp, false},
		{"link-storm negative wave delay", Event{At: time.Second, Kind: LinkStorm, Duration: time.Second, WaveDelay: -time.Second}, tp, false},
	}
	for _, tc := range cases {
		err := tc.ev.Validate(4, tc.topo)
		if tc.ok && err != nil {
			t.Errorf("%s: valid event rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: bad event accepted: %+v", tc.name, tc.ev)
		}
	}
}

func TestVictimsResolveDomains(t *testing.T) {
	tp := testTopo(t)
	zone1 := Event{At: time.Second, Kind: ZoneOutage, Zone: 1}
	v := zone1.Victims(tp)
	if len(v) != 4 {
		t.Fatalf("zone outage hits %d nodes, want 4", len(v))
	}
	for _, n := range v {
		if got := tp.Coord(n).Zone; got != 1 {
			t.Errorf("victim %d in zone %d", n, got)
		}
	}
	rack := Event{At: time.Second, Kind: RackOutage, Zone: 0, Rack: 1}
	if got := rack.Victims(tp); len(got) != 2 {
		t.Fatalf("rack outage hits %d nodes, want 2", len(got))
	}
	provider := Event{At: time.Second, Kind: ProviderOutage}
	if got := provider.Victims(tp); len(got) != 8 {
		t.Fatalf("provider outage hits %d nodes, want 8", len(got))
	}
	point := Event{At: time.Second, Node: 3, Kind: Hard}
	if got := point.Victims(tp); len(got) != 1 || got[0] != 3 {
		t.Fatalf("point victims = %v", got)
	}
}

func TestEventLabels(t *testing.T) {
	if got := (Event{At: time.Second, Node: 1, Kind: NVMCorrupt}).Label(); got != "nvm-corrupt@1s/node1" {
		t.Errorf("point label = %q", got)
	}
	if got := (Event{At: 2 * time.Second, Kind: ZoneOutage, Zone: 1}).Label(); got != "zone-outage@2s/p0/z1" {
		t.Errorf("domain label = %q", got)
	}
}

func TestModelScheduleDeterministicSortedBounded(t *testing.T) {
	m := Model{
		MTBFSoft: 20 * time.Second,
		MTBFHard: 60 * time.Second,
		Horizon:  5 * time.Minute,
		Seed:     42,
		Nodes:    4,
	}
	a, b := m.Schedule(), m.Schedule()
	if len(a) == 0 {
		t.Fatal("model drew no events over 15 soft MTBFs")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed drew %d then %d events", len(a), len(b))
	}
	var soft, hard int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across same-seed draws: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("schedule unsorted at %d", i)
		}
		if a[i].At >= m.Horizon {
			t.Fatalf("event %d at %v past horizon %v", i, a[i].At, m.Horizon)
		}
		if a[i].Node < 0 || a[i].Node >= m.Nodes {
			t.Fatalf("event %d on node %d outside machine", i, a[i].Node)
		}
		switch a[i].Kind {
		case Soft:
			soft++
		case Hard:
			hard++
		default:
			t.Fatalf("model drew kind %q", a[i].Kind)
		}
	}
	if soft == 0 || hard == 0 {
		t.Fatalf("soft=%d hard=%d, want both classes present", soft, hard)
	}
	m2 := m
	m2.Seed = 43
	if c := m2.Schedule(); len(c) == len(a) && func() bool {
		for i := range c {
			if c[i] != a[i] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds drew identical schedules")
	}
}

// TestModelCorrelatedKindsValidate is the satellite contract: every event a
// correlated model draws must pass Event.Validate, exactly like the point
// kinds — domain coordinates round-robin over real domains only.
func TestModelCorrelatedKindsValidate(t *testing.T) {
	tp := testTopo(t)
	m := Model{
		MTBFSoft: 30 * time.Second,
		MTBFHard: 90 * time.Second,
		MTBFRack: 60 * time.Second,
		MTBFZone: 2 * time.Minute,
		Horizon:  10 * time.Minute,
		Seed:     7,
		Nodes:    8,
		Topo:     tp,
	}
	events := m.Schedule()
	var rack, zone int
	for i, ev := range events {
		if err := ev.Validate(m.Nodes, tp); err != nil {
			t.Fatalf("scheduled event %d fails validation: %+v: %v", i, ev, err)
		}
		switch ev.Kind {
		case RackOutage:
			rack++
		case ZoneOutage:
			zone++
		}
	}
	if rack == 0 || zone == 0 {
		t.Fatalf("rack=%d zone=%d, want both correlated classes present", rack, zone)
	}
	// Without a topology the correlated classes draw nothing rather than
	// emitting invalid events.
	m.Topo = nil
	for i, ev := range m.Schedule() {
		if ev.Kind.Correlated() {
			t.Fatalf("event %d is %s despite nil topology", i, ev.Kind)
		}
	}
}

func TestModelDisabledClassDrawsNothing(t *testing.T) {
	m := Model{MTBFHard: 30 * time.Second, Horizon: 5 * time.Minute, Nodes: 2}
	for _, ev := range m.Schedule() {
		if ev.Kind != Hard {
			t.Fatalf("disabled soft class drew %+v", ev)
		}
	}
	if got := (Model{Horizon: time.Minute, Nodes: 2}).Schedule(); len(got) != 0 {
		t.Fatalf("fully disabled model drew %d events", len(got))
	}
}

func TestExpandStormDeterministicCascade(t *testing.T) {
	tp := testTopo(t) // 4 racks of 2 nodes
	storm := Event{At: 10 * time.Second, Node: 2, Kind: LinkStorm,
		Duration: time.Second, Factor: 0.1, Waves: 2, WaveDelay: time.Second}
	a := ExpandStorm(storm, tp, 99)
	b := ExpandStorm(storm, tp, 99)
	if len(a) == 0 {
		t.Fatal("storm expanded to nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed expanded %d then %d flaps", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flap %d differs across same-seed expansions", i)
		}
		if a[i].Kind != LinkFlap {
			t.Fatalf("expansion produced %s", a[i].Kind)
		}
		if err := a[i].Validate(tp.Nodes(), tp); err != nil {
			t.Fatalf("expanded flap %d invalid: %v", i, err)
		}
		if a[i].At < storm.At {
			t.Fatalf("flap %d fires before the storm", i)
		}
	}
	// Origin node 2 is in rack p0/z0/r1 (rack index 1 of 4); waves 0..2
	// reach racks {1}, {0,2}, {3} — the whole fleet.
	hit := map[int]bool{}
	for _, f := range a {
		hit[f.Node] = true
	}
	if len(hit) != 8 {
		t.Fatalf("2-wave storm from mid-fleet hit %d nodes, want all 8", len(hit))
	}
	if c := ExpandStorm(storm, tp, 100); len(c) == len(a) && c[0] == a[0] && c[len(c)-1] == a[len(a)-1] {
		t.Error("different seeds expanded identical storms")
	}
}

func TestInjectorDispatchesByKindAtScheduledTime(t *testing.T) {
	e := sim.NewEnv()
	type hit struct {
		kind Kind
		at   time.Duration
	}
	var hits []hit
	in := NewInjector(e, 7, nil, Surfaces{
		Kill: func(ev Event) { hits = append(hits, hit{ev.Kind, e.Now()}) },
		CorruptNVM: func(rng *rand.Rand, ev Event) int {
			if rng == nil {
				t.Error("corrupt surface got nil rng")
			}
			hits = append(hits, hit{ev.Kind, e.Now()})
			return ev.Chunks
		},
		FlapLink: func(ev Event) { hits = append(hits, hit{ev.Kind, e.Now()}) },
	})
	in.ScheduleAll([]Event{
		{At: 3 * time.Second, Node: 0, Kind: BuddyLoss},
		{At: time.Second, Node: 0, Kind: LinkFlap, Duration: time.Second},
		{At: 2 * time.Second, Node: 1, Kind: NVMCorrupt, Chunks: 2},
	})
	e.Run()
	want := []hit{
		{LinkFlap, time.Second},
		{NVMCorrupt, 2 * time.Second},
		{BuddyLoss, 3 * time.Second},
	}
	if len(hits) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(hits), len(want))
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("dispatch %d = %+v, want %+v", i, hits[i], want[i])
		}
	}
}

func TestInjectorExpandsStormsAndResolvesOutages(t *testing.T) {
	tp := testTopo(t)
	e := sim.NewEnv()
	var flaps int
	var killed []Event
	in := NewInjector(e, 7, tp, Surfaces{
		Kill:     func(ev Event) { killed = append(killed, ev) },
		FlapLink: func(ev Event) { flaps++ },
	})
	in.ScheduleAll([]Event{
		{At: time.Second, Node: 0, Kind: LinkStorm, Duration: time.Second, Waves: 1},
		{At: 5 * time.Second, Kind: ZoneOutage, Zone: 1},
	})
	e.Run()
	// Wave 0 = rack 0 (2 nodes), wave 1 = rack 1 (2 nodes).
	if flaps != 4 {
		t.Fatalf("storm produced %d flaps, want 4", flaps)
	}
	if len(killed) != 1 || killed[0].Kind != ZoneOutage {
		t.Fatalf("kill surface saw %+v, want one zone-outage", killed)
	}
	if got := killed[0].Victims(tp); len(got) != 4 {
		t.Fatalf("outage resolves %d victims, want 4", len(got))
	}
}
