package lineage

import (
	"fmt"
	"sort"
	"strings"
)

// formatRecord renders one record as a stable, single-line human-readable
// string ("t=12500000us epoch=1 [bottom] recovered node0 seq=5 (tier bottom)").
func formatRecord(r Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%dus epoch=%d", r.TUS, r.Epoch)
	if r.Tier != "" {
		fmt.Fprintf(&b, " [%s]", r.Tier)
	}
	fmt.Fprintf(&b, " %s node%d", r.Op, r.Node)
	if r.Seq > 0 {
		fmt.Fprintf(&b, " seq=%d", r.Seq)
	}
	if r.Bytes > 0 {
		fmt.Fprintf(&b, " %dB", r.Bytes)
	}
	if r.Cause != "" {
		fmt.Fprintf(&b, " (%s)", r.Cause)
	}
	return b.String()
}

// FormatHistory renders a chunk's lineage as indented lines for terminal
// output.
func FormatHistory(h History) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d records", h.Chunk, len(h.Records))
	if len(h.Compacted) > 0 {
		var total uint64
		ops := make([]string, 0, len(h.Compacted))
		for op, n := range h.Compacted {
			total += n
			ops = append(ops, fmt.Sprintf("%s=%d", op, n))
		}
		sort.Strings(ops)
		fmt.Fprintf(&b, ", %d compacted: %s", total, strings.Join(ops, " "))
	}
	b.WriteString(")\n")
	for _, r := range h.Records {
		b.WriteString("  " + formatRecord(r) + "\n")
	}
	return b.String()
}

// Why reconstructs the causal chain that brought a chunk into the given
// recovery epoch (epoch < 0 means the newest epoch the chunk has records
// for): the chunk's surviving lineage records interleaved with the
// cluster-wide faults that drove them, closed by a verdict line explaining
// which tier the recovery read and why the higher tiers could not serve.
func (t *Tracer) Why(chunk string, epoch int) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.chunks[chunk]
	if !ok {
		return "", fmt.Errorf("lineage: unknown chunk %q (see -chunks for traced keys)", chunk)
	}
	h := t.decode(chunk, st)
	if epoch < 0 {
		for _, r := range h.Records {
			if r.Epoch > epoch {
				epoch = r.Epoch
			}
		}
		if epoch < 0 {
			epoch = 0
		}
	}

	// The story: every surviving record of this chunk up to and including
	// epoch `epoch`, with the fault log spliced in by virtual time.
	var story []Record
	for _, r := range h.Records {
		if r.Epoch <= epoch {
			story = append(story, r)
		}
	}
	for _, f := range t.faultLog {
		if f.Epoch <= epoch {
			story = append(story, f)
		}
	}
	sort.SliceStable(story, func(i, j int) bool { return story[i].TUS < story[j].TUS })

	var b strings.Builder
	fmt.Fprintf(&b, "why %s entered epoch %d:\n", chunk, epoch)
	if len(h.Compacted) > 0 {
		var total uint64
		for _, n := range h.Compacted {
			total += n
		}
		fmt.Fprintf(&b, "  (%d earlier records compacted)\n", total)
	}
	for _, r := range story {
		b.WriteString("  " + formatRecord(r) + "\n")
	}

	// Verdict: how the epoch-entry read was served. Epoch 0 has no recovery
	// by construction.
	if epoch == 0 {
		b.WriteString("verdict: initial epoch — no recovery, chunk materialized by workload setup\n")
		return b.String(), nil
	}
	var entry *Record
	for i := range story {
		r := &story[i]
		if r.Epoch != epoch {
			continue
		}
		if r.Op == OpRecovered.String() || (r.Op == OpRestore.String() && entry == nil) {
			entry = r
			if r.Op == OpRecovered.String() {
				break
			}
		}
	}
	if entry == nil {
		fmt.Fprintf(&b, "verdict: no recovery read recorded for epoch %d (chunk untouched by the cascade)\n", epoch)
		return b.String(), nil
	}
	fmt.Fprintf(&b, "verdict: served by the %s tier (seq %d)\n", entry.Tier, entry.Seq)
	if entry.Tier != TierLocal.String() {
		t.explainLocalMiss(&b, st, story, epoch)
	}
	if entry.Tier == TierBottom.String() || entry.Cause == "tier lost" {
		t.explainRemoteMiss(&b, st, story, epoch)
	}
	return b.String(), nil
}

// explainLocalMiss appends why the local NVM copy could not serve the
// recovery: corruption, salvage, or the owning node's hard loss.
func (t *Tracer) explainLocalMiss(b *strings.Builder, st *chunkState, story []Record, epoch int) {
	for _, r := range story {
		if r.Epoch > epoch {
			continue
		}
		switch r.Op {
		case OpCorrupt.String():
			fmt.Fprintf(b, "  local miss: committed payload damaged by %s\n", r.Cause)
		case OpSalvage.String():
			fmt.Fprintf(b, "  local miss: checksum mismatch at restore — damaged version salvaged (%s)\n", r.Cause)
		}
	}
	for _, f := range story {
		if f.Op == opFault.String() && f.Epoch < epoch && f.Node == st.node &&
			(strings.Contains(f.Cause, "hard") || strings.Contains(f.Cause, "buddy-loss")) {
			fmt.Fprintf(b, "  local miss: node%d NVM lost to %s\n", f.Node, f.Cause)
		}
	}
}

// explainRemoteMiss appends why the remote tier could not serve: the holder
// of this chunk's buddy copy went down with the failure.
func (t *Tracer) explainRemoteMiss(b *strings.Builder, st *chunkState, story []Record, epoch int) {
	holder := st.remoteHolder
	if holder < 0 {
		b.WriteString("  remote miss: no remote copy was ever committed for this chunk\n")
		return
	}
	for _, f := range story {
		if f.Op == opFault.String() && f.Epoch < epoch && f.Node == holder &&
			(strings.Contains(f.Cause, "hard") || strings.Contains(f.Cause, "buddy-loss")) {
			fmt.Fprintf(b, "  remote miss: buddy copy held on node%d, lost to %s\n", holder, f.Cause)
			return
		}
	}
	fmt.Fprintf(b, "  remote miss: holder node%d had no committed copy at recovery time\n", holder)
}
