// Package lineage is the causal, per-chunk lifecycle tracer layered on the
// obs event bus. Every chunk transition — dirty, pre-copy, redirty, local
// commit, remote ship (with retries and failovers), corruption, salvage,
// recovery read — becomes one typed lineage record carrying the virtual
// timestamp, the storage tier, the recovery epoch, the payload's staged
// generation (seq), and the cause that pushed the chunk off its happy path.
// Records live in a compact columnar in-memory store with bounded memory:
// one fixed-capacity ring per chunk, with evicted and pre-previous-epoch
// records folded into per-op counts (epoch compaction), plus one bounded
// cluster-wide fault log.
//
// On top of the store runs an online invariant checker validating causal
// rules as events arrive:
//
//   - commit-without-stage: a chunk may not commit a generation its local
//     NVM never staged (and a remote commit must flip a generation that was
//     actually shipped there);
//   - redirty-not-recopied: a chunk redirtied after a pre-copy must be
//     recopied before the commit flips — committing an older generation
//     silently loses the newer writes;
//   - stale-recovery: the recovery cascade must serve the newest surviving
//     copy — recovering from the bottom tier while a live remote copy
//     exists, restoring a generation known damaged, or declaring a chunk
//     lost while any tier still holds it, are all violations.
//
// The tracer attaches to an Observer as its event tap, so it sees the exact
// serialized event order the bus records, at the moment of publication. It
// never publishes events back (the tap runs under the observer's mutex);
// per-tier transition counters go to the metrics registry, which has its
// own lock.
package lineage

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"nvmcp/internal/obs"
)

// Op is one lineage transition type.
type Op uint8

// The transition taxonomy, in lifecycle order.
const (
	OpDirty Op = iota
	OpRedirty
	OpPrecopy
	OpStage
	OpCommit
	OpShip
	OpShipRetry
	OpRemoteCommit
	OpDrain
	OpCorrupt
	OpSalvage
	OpRestore
	OpRecovered
	// opFault covers cluster-wide fault-log entries (failures, link flaps,
	// buddy failovers, recoveries) interleaved into Why explanations.
	opFault
	opCount
)

var opNames = [opCount]string{
	"dirty", "redirty", "precopy", "stage", "commit", "ship", "ship_retry",
	"remote_commit", "drain", "corrupt", "salvage", "restore", "recovered",
	"fault",
}

// String returns the op's wire name.
func (o Op) String() string { return opNames[o] }

// Tier indexes the storage level a record touched.
type Tier uint8

// The tier ladder, top to bottom.
const (
	TierDRAM Tier = iota
	TierLocal
	TierRemote
	TierBottom
	tierCount
)

var tierNames = [tierCount]string{"dram", "local", "remote", "bottom"}

// String returns the tier's wire name.
func (t Tier) String() string { return tierNames[t] }

// Record is one decoded lineage record.
type Record struct {
	TUS   int64  `json:"t_us"`
	Epoch int    `json:"epoch"`
	Op    string `json:"op"`
	Tier  string `json:"tier"`
	Node  int    `json:"node"`
	Seq   uint64 `json:"seq,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	Cause string `json:"cause,omitempty"`
}

// Violation is one invariant breach, bound to the offending chunk.
type Violation struct {
	TUS    int64  `json:"t_us"`
	Epoch  int    `json:"epoch"`
	Chunk  string `json:"chunk"`
	Rule   string `json:"rule"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%dus epoch=%d chunk=%s rule=%s: %s", v.TUS, v.Epoch, v.Chunk, v.Rule, v.Detail)
}

// Config tunes the tracer.
type Config struct {
	// Enabled turns tracing (and the checker) on.
	Enabled bool `json:"enabled"`
	// Strict makes cluster.Run fail loudly on the first violation, dumping
	// the offending chunk's full lineage.
	Strict bool `json:"strict,omitempty"`
	// RingSize bounds per-chunk in-memory records (default 128); older
	// records compact into per-op counts.
	RingSize int `json:"ring_size,omitempty"`
	// MaxViolations bounds retained violation details (default 64); the
	// total count keeps counting past it.
	MaxViolations int `json:"max_violations,omitempty"`
}

const (
	defaultRingSize      = 128
	defaultMaxViolations = 64
	faultLogCap          = 512
)

// ring is the columnar per-chunk record store: parallel arrays, fixed
// capacity, oldest-evicted. Struct-of-arrays keeps a record at ~40 bytes
// with causes interned once per distinct string.
type ring struct {
	tus   []int64
	seq   []uint64
	bytes []int64
	op    []uint8
	tier  []uint8
	epoch []uint16
	node  []int16
	cause []uint32 // interned cause id; 0 = none
	start int
	n     int
}

func (r *ring) push(cap int, rec encRecord) (evicted encRecord, wasFull bool) {
	if r.n < cap {
		r.tus = append(r.tus, rec.tus)
		r.seq = append(r.seq, rec.seq)
		r.bytes = append(r.bytes, rec.bytes)
		r.op = append(r.op, rec.op)
		r.tier = append(r.tier, rec.tier)
		r.epoch = append(r.epoch, rec.epoch)
		r.node = append(r.node, rec.node)
		r.cause = append(r.cause, rec.cause)
		r.n++
		return encRecord{}, false
	}
	i := r.start
	evicted = r.at(0)
	r.tus[i], r.seq[i], r.bytes[i] = rec.tus, rec.seq, rec.bytes
	r.op[i], r.tier[i] = rec.op, rec.tier
	r.epoch[i], r.node[i], r.cause[i] = rec.epoch, rec.node, rec.cause
	r.start = (r.start + 1) % len(r.tus)
	return evicted, true
}

// at returns the logical i-th oldest record.
func (r *ring) at(i int) encRecord {
	j := i
	if len(r.tus) > 0 {
		j = (r.start + i) % len(r.tus)
	}
	return encRecord{
		tus: r.tus[j], seq: r.seq[j], bytes: r.bytes[j],
		op: r.op[j], tier: r.tier[j],
		epoch: r.epoch[j], node: r.node[j], cause: r.cause[j],
	}
}

// dropOldest removes the n oldest records in place (epoch compaction).
func (r *ring) dropOldest(n int) {
	if n <= 0 {
		return
	}
	if n >= r.n {
		r.start, r.n = 0, 0
		r.tus = r.tus[:0]
		r.seq, r.bytes = r.seq[:0], r.bytes[:0]
		r.op, r.tier = r.op[:0], r.tier[:0]
		r.epoch, r.node, r.cause = r.epoch[:0], r.node[:0], r.cause[:0]
		return
	}
	// Re-pack survivors to the front so capacity stays append-driven.
	keep := make([]encRecord, 0, r.n-n)
	for i := n; i < r.n; i++ {
		keep = append(keep, r.at(i))
	}
	r.start, r.n = 0, 0
	r.tus = r.tus[:0]
	r.seq, r.bytes = r.seq[:0], r.bytes[:0]
	r.op, r.tier = r.op[:0], r.tier[:0]
	r.epoch, r.node, r.cause = r.epoch[:0], r.node[:0], r.cause[:0]
	for _, rec := range keep {
		r.tus = append(r.tus, rec.tus)
		r.seq = append(r.seq, rec.seq)
		r.bytes = append(r.bytes, rec.bytes)
		r.op = append(r.op, rec.op)
		r.tier = append(r.tier, rec.tier)
		r.epoch = append(r.epoch, rec.epoch)
		r.node = append(r.node, rec.node)
		r.cause = append(r.cause, rec.cause)
		r.n++
	}
}

type encRecord struct {
	tus   int64
	seq   uint64
	bytes int64
	op    uint8
	tier  uint8
	epoch uint16
	node  int16
	cause uint32
}

// chunkState is one chunk's ring plus the checker's causal model of where
// that chunk's generations live.
type chunkState struct {
	ring    ring
	compact map[Op]uint64 // ops folded out of the ring

	node int // owning node (last stage/commit)

	// Epoch-scoped sequence tracking (reset on recovery: a fresh process
	// incarnation restarts its modification-sequence domain).
	stagedSeq    uint64
	lastDirtyGen uint64

	// Local committed copy.
	localSeq     uint64
	localValid   bool
	localDamaged bool

	// Remote (buddy) committed copy.
	remoteSeq    uint64
	remoteValid  bool
	remoteHolder int

	// Last two shipped generations (remote commit must flip one of them).
	shipLast, shipPrev uint64
	everShipped        bool

	// Bottom (PFS) copy.
	bottomSeq uint64
	hasBottom bool
}

// Tracer consumes the event bus, maintains the lineage store, and runs the
// online invariant checker. All methods are safe for concurrent use; the
// live introspection server reads while the simulation publishes.
type Tracer struct {
	mu  sync.Mutex
	cfg Config

	epoch  int
	chunks map[string]*chunkState

	causes   []string
	causeIdx map[string]uint32

	faultLog []Record

	violations []Violation
	totalViols int

	records   uint64
	compacted uint64
	tierCount [tierCount]uint64
	opCount   [opCount]uint64

	deepestTier  Tier
	deepestChunk string
	hasRecovery  bool

	rec *obs.Recorder
}

// Attach builds a tracer over an observer and installs it as an event tap
// (additive, so the SLO flight recorder can listen on the same bus). The
// returned tracer also publishes per-tier transition counters
// ("lineage_transitions" scoped by tier) through the observer's registry.
func Attach(o *obs.Observer, cfg Config) *Tracer {
	t := New(cfg)
	t.rec = o.Recorder(0, "lineage")
	o.AddEventTap(t.Observe)
	return t
}

// New builds a detached tracer (tests feed it synthetic event streams).
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = defaultMaxViolations
	}
	return &Tracer{
		cfg:      cfg,
		chunks:   make(map[string]*chunkState),
		causes:   []string{""},
		causeIdx: map[string]uint32{"": 0},
	}
}

// Observe consumes one bus event. When installed via Attach it runs under
// the observer's mutex: it must not (and does not) publish events back.
func (t *Tracer) Observe(ev obs.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev.Type {
	case obs.EvChunkDirty:
		st := t.state(coreKey(ev))
		seq := attrU64(ev, "seq")
		st.lastDirtyGen = seq
		t.record(st, ev, OpDirty, TierDRAM, seq, "")
	case obs.EvChunkReDirtied:
		st := t.state(coreKey(ev))
		seq := attrU64(ev, "seq")
		st.lastDirtyGen = seq
		t.record(st, ev, OpRedirty, TierDRAM, seq, "")
	case obs.EvPrecopyCopy:
		st := t.state(coreKey(ev))
		cause := ""
		if ev.Attrs["raced"] == "true" {
			cause = "raced"
		}
		t.record(st, ev, OpPrecopy, TierLocal, attrU64(ev, "seq"), cause)
	case obs.EvChunkStaged:
		key := coreKey(ev)
		st := t.state(key)
		seq := attrU64(ev, "seq")
		st.stagedSeq = seq
		st.node = ev.Node
		cause := ""
		if ev.Attrs["inval"] != "" {
			// Single-version overwrite: the committed copy is being
			// clobbered in place — invalid until the next commit flip.
			st.localValid = false
			cause = "single-version overwrite"
		}
		t.record(st, ev, OpStage, TierLocal, seq, cause)
	case obs.EvChunkCommit:
		key := coreKey(ev)
		st := t.state(key)
		seq := attrU64(ev, "seq")
		if seq == 0 || st.stagedSeq == 0 || seq != st.stagedSeq {
			t.violate(ev, key, "commit-without-stage", fmt.Sprintf(
				"commit flipped seq %d but local NVM staged seq %d this epoch",
				seq, st.stagedSeq))
		}
		if st.lastDirtyGen > seq {
			t.violate(ev, key, "redirty-not-recopied", fmt.Sprintf(
				"commit flipped seq %d after generation %d went dirty — redirty must force a recopy",
				seq, st.lastDirtyGen))
		}
		st.node = ev.Node
		st.localSeq = seq
		st.localValid = true
		st.localDamaged = false
		t.record(st, ev, OpCommit, TierLocal, seq, "")
	case obs.EvChunkShipped:
		st := t.state(ev.Chunk)
		seq := attrU64(ev, "seq")
		if seq == 0 || (st.stagedSeq > 0 && seq > st.stagedSeq) {
			t.violate(ev, ev.Chunk, "ship-unstaged", fmt.Sprintf(
				"helper shipped seq %d but local NVM staged seq %d — a tier cannot forward data it never received",
				seq, st.stagedSeq))
		}
		st.shipPrev, st.shipLast = st.shipLast, seq
		st.everShipped = true
		if h, err := strconv.Atoi(ev.Attrs["buddy"]); err == nil {
			st.remoteHolder = h
		}
		t.record(st, ev, OpShip, TierRemote, seq, "buddy "+ev.Attrs["buddy"])
	case obs.EvShipRetry:
		st := t.state(ev.Chunk)
		t.record(st, ev, OpShipRetry, TierRemote, 0,
			ev.Attrs["reason"]+" attempt "+ev.Attrs["attempt"])
	case obs.EvRemoteChunkCommit:
		st := t.state(ev.Chunk)
		seq := attrU64(ev, "seq")
		if !st.everShipped || (seq != st.shipLast && seq != st.shipPrev) {
			t.violate(ev, ev.Chunk, "remote-commit-without-ship", fmt.Sprintf(
				"remote commit flipped seq %d but last shipped generations are %d/%d",
				seq, st.shipPrev, st.shipLast))
		}
		st.remoteSeq = seq
		st.remoteValid = true
		if h, err := strconv.Atoi(ev.Attrs["buddy"]); err == nil {
			st.remoteHolder = h
		}
		t.record(st, ev, OpRemoteCommit, TierRemote, seq, "")
	case obs.EvPFSDrain:
		st := t.state(ev.Chunk)
		seq := attrU64(ev, "seq")
		st.bottomSeq = seq
		st.hasBottom = true
		t.record(st, ev, OpDrain, TierBottom, seq, "")
	case obs.EvChunkCorrupt:
		st := t.state(ev.Chunk)
		seq := attrU64(ev, "seq")
		if st.localSeq == seq || st.localSeq == 0 {
			st.localDamaged = true
		}
		t.record(st, ev, OpCorrupt, TierLocal, seq, ev.Attrs["cause"])
	case obs.EvChecksumError:
		st := t.state(coreKey(ev))
		// Salvage clears the damaged commit record: the local copy is gone
		// from the cascade's point of view.
		st.localValid = false
		t.record(st, ev, OpSalvage, TierLocal, attrU64(ev, "seq"), ev.Attrs["action"])
	case obs.EvRestore:
		t.observeRestore(ev)
	case obs.EvChunkRecovered:
		t.observeRecovered(ev)
	case obs.EvFailure:
		t.observeFailure(ev)
		t.logFault(ev, string(ev.Type)+" "+ev.Attrs["kind"])
	case obs.EvRecovery:
		t.advanceEpoch()
		t.logFault(ev, "recovery kind="+ev.Attrs["kind"]+" resume_iter="+ev.Attrs["resume_iter"])
	case obs.EvLinkFlap:
		t.logFault(ev, "link-flap factor="+ev.Attrs["factor"]+" secs="+ev.Attrs["secs"])
	case obs.EvLinkRestore:
		t.logFault(ev, "link-restore")
	case obs.EvBuddyFailover:
		t.logFault(ev, "buddy-failover "+ev.Attrs["from"]+"->"+ev.Attrs["to"])
	case obs.EvNVMCorrupt, obs.EvFailureSkipped:
		t.logFault(ev, string(ev.Type))
	}
}

func (t *Tracer) observeRestore(ev obs.Event) {
	key := coreKey(ev)
	st := t.state(key)
	seq := attrU64(ev, "seq")
	switch ev.Attrs["source"] {
	case "local", "lazy":
		if st.localDamaged && st.localValid && seq != 0 && seq == st.localSeq {
			t.violate(ev, key, "stale-recovery", fmt.Sprintf(
				"restored generation %d from local NVM although it was reported corrupted",
				seq))
		}
		// The restored payload is generation `seq` in the previous
		// incarnation's domain; `reseq` renumbers it in this incarnation's,
		// so later ships of the same bytes check out against it.
		st.stagedSeq = attrU64(ev, "reseq")
		st.node = ev.Node
		t.record(st, ev, OpRestore, TierLocal, seq, ev.Attrs["source"])
	case "remote":
		t.record(st, ev, OpRestore, TierRemote, seq, ev.Attrs["source"])
	case "bottom":
		t.record(st, ev, OpRestore, TierBottom, seq, ev.Attrs["source"])
	default:
		t.record(st, ev, OpRestore, TierLocal, seq, ev.Attrs["source"])
	}
}

func (t *Tracer) observeRecovered(ev obs.Event) {
	key := ev.Chunk
	st := t.state(key)
	seq := attrU64(ev, "seq")
	tierName := ev.Attrs["tier"]
	tier, depth := TierLocal, 0
	switch tierName {
	case "remote":
		tier, depth = TierRemote, 2
		// A chunk served by the remote tier must have actually been shipped
		// and remote-committed there — unless the tier reconstructs without
		// per-chunk provenance (erasure parity reports seq 0).
		if seq > 0 && !st.remoteValid {
			t.violate(ev, key, "commit-without-stage", fmt.Sprintf(
				"cascade served seq %d from the remote tier, which never remote-committed this chunk", seq))
		}
		if seq > 0 && st.remoteValid && seq != st.remoteSeq {
			t.violate(ev, key, "stale-recovery", fmt.Sprintf(
				"remote tier served seq %d but its committed copy is seq %d", seq, st.remoteSeq))
		}
	case "bottom":
		tier, depth = TierBottom, 3
		if st.remoteValid {
			t.violate(ev, key, "stale-recovery", fmt.Sprintf(
				"cascade fell through to the bottom tier (seq %d) although a live remote copy (seq %d at node %d) survived",
				seq, st.remoteSeq, st.remoteHolder))
		}
		if st.hasBottom && seq != st.bottomSeq {
			t.violate(ev, key, "stale-recovery", fmt.Sprintf(
				"bottom tier served seq %d but the newest drained object is seq %d", seq, st.bottomSeq))
		}
	case "lost":
		depth = 4
		if st.remoteValid || st.localValid {
			t.violate(ev, key, "stale-recovery", fmt.Sprintf(
				"chunk declared lost although a surviving copy exists (local valid=%t seq=%d, remote valid=%t seq=%d)",
				st.localValid, st.localSeq, st.remoteValid, st.remoteSeq))
		}
	}
	if depth > int(t.deepestTier) || t.deepestChunk == "" {
		if depth >= 2 || t.deepestChunk == "" {
			t.deepestTier = tier
			if depth == 4 {
				t.deepestTier = TierBottom + 1 - 1 // lost keeps the bottom tier label
			}
			t.deepestChunk = key
		}
	}
	t.record(st, ev, OpRecovered, tier, seq, "tier "+tierName)
}

// observeFailure invalidates every copy a hard node loss takes with it: the
// local copies of chunks owned by the failed node(s), and the remote copies
// they held for their buddy sources. Correlated domain outages carry their
// full victim set in the event's "victims" attribute (the whole rack/zone
// fails atomically) plus a "hard" flag (soft outages keep NVM intact).
func (t *Tracer) observeFailure(ev obs.Event) {
	kind := ev.Attrs["kind"]
	hard := kind == "hard" || kind == "buddy-loss"
	if h, ok := ev.Attrs["hard"]; ok {
		hard = h == "true"
	}
	if !hard {
		return
	}
	// Domain outages carry their whole victim set; their ev.Node is the
	// spec-mandated zero and must not be read as a victim. Point faults
	// have no victims attribute — their single victim is ev.Node.
	dead := map[int]bool{}
	if vs := ev.Attrs["victims"]; vs != "" {
		for _, s := range strings.Split(vs, ",") {
			if n, err := strconv.Atoi(s); err == nil {
				dead[n] = true
			}
		}
	} else {
		dead[ev.Node] = true
	}
	for _, st := range t.chunks {
		if dead[st.node] {
			st.localValid = false
		}
		if st.remoteValid && dead[st.remoteHolder] {
			st.remoteValid = false
			st.remoteSeq = 0
		}
	}
}

// advanceEpoch rolls the recovery epoch: per-chunk sequence domains reset
// (each process incarnation restarts its modification counter) and records
// older than the previous epoch compact into per-op counts.
func (t *Tracer) advanceEpoch() {
	t.epoch++
	t.hasRecovery = true
	keepFrom := uint16(0)
	if t.epoch >= 2 {
		keepFrom = uint16(t.epoch - 1)
	}
	for _, st := range t.chunks {
		st.stagedSeq = 0
		st.lastDirtyGen = 0
		drop := 0
		for i := 0; i < st.ring.n; i++ {
			if st.ring.at(i).epoch >= keepFrom {
				break
			}
			drop++
		}
		if drop > 0 {
			for i := 0; i < drop; i++ {
				st.fold(st.ring.at(i))
			}
			st.ring.dropOldest(drop)
			t.compacted += uint64(drop)
		}
	}
}

func (st *chunkState) fold(rec encRecord) {
	if st.compact == nil {
		st.compact = make(map[Op]uint64)
	}
	st.compact[Op(rec.op)]++
}

// state finds or creates a chunk's tracker state.
func (t *Tracer) state(key string) *chunkState {
	st, ok := t.chunks[key]
	if !ok {
		st = &chunkState{node: -1, remoteHolder: -1}
		t.chunks[key] = st
	}
	return st
}

// record appends one lineage record and bumps the tier transition counters.
func (t *Tracer) record(st *chunkState, ev obs.Event, op Op, tier Tier, seq uint64, cause string) {
	rec := encRecord{
		tus: ev.TUS, seq: seq, bytes: ev.Bytes,
		op: uint8(op), tier: uint8(tier),
		epoch: uint16(t.epoch), node: int16(ev.Node),
		cause: t.intern(cause),
	}
	if evicted, full := st.ring.push(t.cfg.RingSize, rec); full {
		st.fold(evicted)
		t.compacted++
	}
	t.records++
	t.opCount[op]++
	t.tierCount[tier]++
	// Child recorders are cached per scope, so this per-record counter bump
	// costs one map hit, not a label canonicalization.
	t.rec.Child(tier.String()).Add("lineage_transitions", 1)
}

// logFault appends to the bounded cluster-wide fault log.
func (t *Tracer) logFault(ev obs.Event, detail string) {
	if len(t.faultLog) >= faultLogCap {
		// Keep the newest half; old faults have usually been compacted out
		// of the rings they explain anyway.
		t.faultLog = append(t.faultLog[:0], t.faultLog[faultLogCap/2:]...)
	}
	t.faultLog = append(t.faultLog, Record{
		TUS: ev.TUS, Epoch: t.epoch, Op: opFault.String(), Node: ev.Node,
		Cause: detail,
	})
	t.opCount[opFault]++
}

func (t *Tracer) violate(ev obs.Event, chunk, rule, detail string) {
	t.totalViols++
	if len(t.violations) < t.cfg.MaxViolations {
		t.violations = append(t.violations, Violation{
			TUS: ev.TUS, Epoch: t.epoch, Chunk: chunk, Rule: rule, Detail: detail,
		})
	}
	t.rec.Child("checker").Add("lineage_violations", 1)
}

func (t *Tracer) intern(cause string) uint32 {
	if cause == "" {
		return 0
	}
	if id, ok := t.causeIdx[cause]; ok {
		return id
	}
	id := uint32(len(t.causes))
	t.causes = append(t.causes, cause)
	t.causeIdx[cause] = id
	return id
}

// coreKey derives the cluster-wide chunk key for core-side events, whose
// Chunk field is the bare variable name scoped by the emitting process
// (the recorder's actor).
func coreKey(ev obs.Event) string {
	if ev.Actor == "" {
		return ev.Chunk
	}
	return ev.Actor + "/" + ev.Chunk
}

func attrU64(ev obs.Event, key string) uint64 {
	v, err := strconv.ParseUint(ev.Attrs[key], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// --- read side -------------------------------------------------------------

// History is one chunk's decoded lineage.
type History struct {
	Chunk string `json:"chunk"`
	// Compacted counts records folded out of the ring, per op.
	Compacted map[string]uint64 `json:"compacted,omitempty"`
	Records   []Record          `json:"records"`
}

// Chunks lists every traced chunk key, sorted.
func (t *Tracer) Chunks() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.chunks))
	for k := range t.chunks {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// History returns one chunk's decoded lineage; ok is false for an unknown
// chunk key.
func (t *Tracer) History(chunk string) (History, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.chunks[chunk]
	if !ok {
		return History{}, false
	}
	return t.decode(chunk, st), true
}

func (t *Tracer) decode(key string, st *chunkState) History {
	h := History{Chunk: key, Records: make([]Record, 0, st.ring.n)}
	if len(st.compact) > 0 {
		h.Compacted = make(map[string]uint64, len(st.compact))
		for op, n := range st.compact {
			h.Compacted[op.String()] = n
		}
	}
	for i := 0; i < st.ring.n; i++ {
		h.Records = append(h.Records, t.decodeRec(st.ring.at(i)))
	}
	return h
}

func (t *Tracer) decodeRec(rec encRecord) Record {
	return Record{
		TUS:   rec.tus,
		Epoch: int(rec.epoch),
		Op:    Op(rec.op).String(),
		Tier:  Tier(rec.tier).String(),
		Node:  int(rec.node),
		Seq:   rec.seq,
		Bytes: rec.bytes,
		Cause: t.causes[rec.cause],
	}
}

// TierRecords returns every record that touched a tier, across chunks,
// ordered by virtual time.
func (t *Tracer) TierRecords(tier string) []History {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []History
	keys := make([]string, 0, len(t.chunks))
	for k := range t.chunks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := t.chunks[k]
		h := History{Chunk: k}
		for i := 0; i < st.ring.n; i++ {
			rec := st.ring.at(i)
			if Tier(rec.tier).String() == tier {
				h.Records = append(h.Records, t.decodeRec(rec))
			}
		}
		if len(h.Records) > 0 {
			out = append(out, h)
		}
	}
	return out
}

// Violations returns the retained invariant breaches (Total may exceed the
// retained detail count).
func (t *Tracer) Violations() []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Violation(nil), t.violations...)
}

// ViolationCount returns the total number of breaches observed.
func (t *Tracer) ViolationCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalViols
}

// Epoch returns the current recovery epoch (0 before any failure recovery).
func (t *Tracer) Epoch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// FaultLog returns the bounded cluster-wide fault log.
func (t *Tracer) FaultLog() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Record(nil), t.faultLog...)
}

// Err returns nil when no invariant broke, else an error carrying the first
// violation and the offending chunk's full lineage — the loud failure
// strict mode surfaces.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.totalViols == 0 {
		return nil
	}
	v := t.violations[0]
	msg := fmt.Sprintf("lineage: %d invariant violation(s); first: %s", t.totalViols, v)
	if st, ok := t.chunks[v.Chunk]; ok {
		h := t.decode(v.Chunk, st)
		msg += fmt.Sprintf("\nlineage of %s (%d records):", v.Chunk, len(h.Records))
		for _, r := range h.Records {
			msg += "\n  " + formatRecord(r)
		}
	}
	return fmt.Errorf("%s", msg)
}

// Summary is the report-facing rollup.
type Summary struct {
	Epochs           int               `json:"epochs"`
	Chunks           int               `json:"chunks"`
	Records          uint64            `json:"records"`
	CompactedRecords uint64            `json:"compacted_records"`
	TierTransitions  map[string]uint64 `json:"tier_transitions"`
	OpCounts         map[string]uint64 `json:"op_counts"`
	// DeepestRecovery names the chunk whose post-failure recovery read the
	// lowest tier (the run's worst-case recovery path).
	DeepestRecoveryChunk string `json:"deepest_recovery_chunk,omitempty"`
	DeepestRecoveryTier  string `json:"deepest_recovery_tier,omitempty"`
	Violations           int    `json:"violations"`
}

// Summary rolls the tracer up for the RunReport.
func (t *Tracer) Summary() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{
		Epochs:           t.epoch + 1,
		Chunks:           len(t.chunks),
		Records:          t.records,
		CompactedRecords: t.compacted,
		TierTransitions:  make(map[string]uint64, tierCount),
		OpCounts:         make(map[string]uint64, opCount),
		Violations:       t.totalViols,
	}
	for i, n := range t.tierCount {
		if n > 0 {
			s.TierTransitions[Tier(i).String()] = n
		}
	}
	for i, n := range t.opCount {
		if n > 0 {
			s.OpCounts[Op(i).String()] = n
		}
	}
	if t.hasRecovery && t.deepestChunk != "" {
		s.DeepestRecoveryChunk = t.deepestChunk
		s.DeepestRecoveryTier = t.deepestTier.String()
	}
	return s
}
