package lineage

import (
	"strings"
	"testing"

	"nvmcp/internal/obs"
)

// sev builds a synthetic bus event. Core-side events carry the proc in
// Actor and the bare chunk name in Chunk; tier events carry the full key.
func sev(typ obs.Type, actor, chunk string, node int, attrs map[string]string) obs.Event {
	return obs.Event{Type: typ, Node: node, Actor: actor, Chunk: chunk, Bytes: 64, Attrs: attrs}
}

func seq(s string) map[string]string { return map[string]string{"seq": s} }

// feedHealthyCycle drives one chunk through a clean stage → commit → ship →
// remote-commit cycle at generation g.
func feedHealthyCycle(t *Tracer, g string) {
	t.Observe(sev(obs.EvChunkDirty, "rank0", "field", 0, seq(g)))
	t.Observe(sev(obs.EvChunkStaged, "rank0", "field", 0, seq(g)))
	t.Observe(sev(obs.EvChunkCommit, "rank0", "field", 0, seq(g)))
	t.Observe(sev(obs.EvChunkShipped, "", "rank0/field", 0,
		map[string]string{"seq": g, "buddy": "1"}))
	t.Observe(sev(obs.EvRemoteChunkCommit, "", "rank0/field", 1,
		map[string]string{"seq": g, "buddy": "1"}))
}

func TestHealthyStreamHasNoViolations(t *testing.T) {
	tr := New(Config{Enabled: true})
	feedHealthyCycle(tr, "1")
	feedHealthyCycle(tr, "2")
	if n := tr.ViolationCount(); n != 0 {
		t.Fatalf("healthy stream produced %d violations: %v", n, tr.Violations())
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("Err() = %v on a healthy stream", err)
	}
	h, ok := tr.History("rank0/field")
	if !ok || len(h.Records) != 10 {
		t.Fatalf("history = %+v, ok=%t; want 10 records", h, ok)
	}
}

// A corrupted stream — a commit for a generation the local tier never
// staged — must be flagged, not absorbed.
func TestCommitWithoutStageIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Observe(sev(obs.EvChunkCommit, "rank0", "field", 0, seq("3")))
	mustViolate(t, tr, "commit-without-stage")
}

func TestCommitOfWrongGenerationIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Observe(sev(obs.EvChunkStaged, "rank0", "field", 0, seq("2")))
	tr.Observe(sev(obs.EvChunkCommit, "rank0", "field", 0, seq("3")))
	mustViolate(t, tr, "commit-without-stage")
}

func TestShipOfUnstagedGenerationIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Observe(sev(obs.EvChunkStaged, "rank0", "field", 0, seq("2")))
	tr.Observe(sev(obs.EvChunkShipped, "", "rank0/field", 0,
		map[string]string{"seq": "5", "buddy": "1"}))
	mustViolate(t, tr, "ship-unstaged")
}

func TestRemoteCommitWithoutShipIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Observe(sev(obs.EvRemoteChunkCommit, "", "rank0/field", 1,
		map[string]string{"seq": "2", "buddy": "1"}))
	mustViolate(t, tr, "remote-commit-without-ship")
}

// A chunk redirtied after its pre-copy must be recopied before the commit
// flips; committing the pre-copied (older) generation loses writes.
func TestRedirtyAfterPrecopyWithoutRecopyIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Observe(sev(obs.EvChunkDirty, "rank0", "field", 0, seq("5")))
	tr.Observe(sev(obs.EvChunkStaged, "rank0", "field", 0, seq("5")))
	tr.Observe(sev(obs.EvPrecopyCopy, "rank0", "field", 0,
		map[string]string{"seq": "5", "raced": "false"}))
	tr.Observe(sev(obs.EvChunkReDirtied, "rank0", "field", 0, seq("6")))
	tr.Observe(sev(obs.EvChunkCommit, "rank0", "field", 0, seq("5")))
	mustViolate(t, tr, "redirty-not-recopied")
}

// Recovery must read the newest surviving copy: falling through to the
// bottom tier while a live remote copy exists is a stale recovery.
func TestBottomRecoveryDespiteLiveRemoteCopyIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	feedHealthyCycle(tr, "1")
	tr.Observe(sev(obs.EvRecovery, "", "", 0, map[string]string{"kind": "soft"}))
	tr.Observe(sev(obs.EvChunkRecovered, "", "rank0/field", 0,
		map[string]string{"tier": "bottom", "seq": "1"}))
	mustViolate(t, tr, "stale-recovery")
}

func TestLostDespiteSurvivingCopyIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	feedHealthyCycle(tr, "1")
	tr.Observe(sev(obs.EvRecovery, "", "", 0, map[string]string{"kind": "soft"}))
	tr.Observe(sev(obs.EvChunkRecovered, "", "rank0/field", 0,
		map[string]string{"tier": "lost", "seq": "0"}))
	mustViolate(t, tr, "stale-recovery")
}

func TestRecoveredFromTierThatNeverReceivedIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Observe(sev(obs.EvChunkStaged, "rank0", "field", 0, seq("1")))
	tr.Observe(sev(obs.EvChunkCommit, "rank0", "field", 0, seq("1")))
	tr.Observe(sev(obs.EvRecovery, "", "", 0, map[string]string{"kind": "hard"}))
	// The remote tier claims to serve seq 1, but nothing was ever shipped
	// (let alone remote-committed) for this chunk.
	tr.Observe(sev(obs.EvChunkRecovered, "", "rank0/field", 0,
		map[string]string{"tier": "remote", "seq": "1"}))
	mustViolate(t, tr, "commit-without-stage")
}

func TestRestoreOfDamagedGenerationIsFlagged(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Observe(sev(obs.EvChunkDirty, "rank0", "field", 0, seq("1")))
	tr.Observe(sev(obs.EvChunkStaged, "rank0", "field", 0, seq("1")))
	tr.Observe(sev(obs.EvChunkCommit, "rank0", "field", 0, seq("1")))
	tr.Observe(sev(obs.EvChunkCorrupt, "", "rank0/field", 0,
		map[string]string{"seq": "1", "cause": "nvm-corrupt@1s/node0"}))
	tr.Observe(sev(obs.EvRecovery, "", "", 0, map[string]string{"kind": "soft"}))
	tr.Observe(sev(obs.EvRestore, "rank0", "field", 0,
		map[string]string{"source": "local", "seq": "1", "reseq": "1"}))
	mustViolate(t, tr, "stale-recovery")
}

// Erasure-style recoveries report seq 0 (provenance unknown); the checker
// must skip, not misfire, its remote-tier validity comparisons.
func TestUnknownSeqRecoverySkipsComparisons(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Observe(sev(obs.EvChunkStaged, "rank0", "field", 0, seq("1")))
	tr.Observe(sev(obs.EvChunkCommit, "rank0", "field", 0, seq("1")))
	tr.Observe(sev(obs.EvRecovery, "", "", 0, map[string]string{"kind": "hard"}))
	tr.Observe(sev(obs.EvChunkRecovered, "", "rank0/field", 0,
		map[string]string{"tier": "remote", "seq": "0"}))
	if n := tr.ViolationCount(); n != 0 {
		t.Fatalf("seq-0 recovery produced %d violations: %v", n, tr.Violations())
	}
}

func mustViolate(t *testing.T, tr *Tracer, rule string) {
	t.Helper()
	vs := tr.Violations()
	if len(vs) == 0 {
		t.Fatalf("corrupted stream produced no violations")
	}
	found := false
	for _, v := range vs {
		if v.Rule == rule {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %q violation in %v", rule, vs)
	}
	err := tr.Err()
	if err == nil {
		t.Fatal("Err() = nil despite violations")
	}
	if !strings.Contains(err.Error(), "lineage of") {
		t.Fatalf("Err() lacks the offending chunk's lineage dump: %v", err)
	}
}

func TestRingEvictsOldestIntoCompactedCounts(t *testing.T) {
	tr := New(Config{Enabled: true, RingSize: 4})
	for i := 0; i < 10; i++ {
		tr.Observe(sev(obs.EvChunkDirty, "rank0", "field", 0, seq("1")))
	}
	h, ok := tr.History("rank0/field")
	if !ok {
		t.Fatal("chunk untracked")
	}
	if len(h.Records) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(h.Records))
	}
	if h.Compacted["dirty"] != 6 {
		t.Fatalf("compacted = %v, want dirty=6", h.Compacted)
	}
	if s := tr.Summary(); s.Records != 10 || s.CompactedRecords != 6 {
		t.Fatalf("summary records=%d compacted=%d, want 10/6", s.Records, s.CompactedRecords)
	}
}

func TestEpochRolloverCompactsPrePreviousEpoch(t *testing.T) {
	tr := New(Config{Enabled: true})
	feedHealthyCycle(tr, "1") // epoch 0: 5 records
	tr.Observe(sev(obs.EvRecovery, "", "", 0, map[string]string{"kind": "soft"}))
	tr.Observe(sev(obs.EvRestore, "rank0", "field", 0,
		map[string]string{"source": "local", "seq": "1", "reseq": "1"}))
	tr.Observe(sev(obs.EvRecovery, "", "", 0, map[string]string{"kind": "soft"}))
	// Now in epoch 2: epoch-0 records must have folded into counts.
	h, _ := tr.History("rank0/field")
	for _, r := range h.Records {
		if r.Epoch < 1 {
			t.Fatalf("epoch-%d record survived two rollovers: %+v", r.Epoch, r)
		}
	}
	var folded uint64
	for _, n := range h.Compacted {
		folded += n
	}
	if folded != 5 {
		t.Fatalf("compacted %d records, want the 5 from epoch 0 (%v)", folded, h.Compacted)
	}
	if tr.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", tr.Epoch())
	}
}

func TestViolationDetailIsBoundedButCountIsNot(t *testing.T) {
	tr := New(Config{Enabled: true, MaxViolations: 2})
	for i := 0; i < 5; i++ {
		tr.Observe(sev(obs.EvChunkCommit, "rank0", "field", 0, seq("9")))
	}
	if got := len(tr.Violations()); got != 2 {
		t.Fatalf("retained %d violation details, want 2", got)
	}
	if got := tr.ViolationCount(); got != 5 {
		t.Fatalf("total count = %d, want 5", got)
	}
}

func TestTierRecordsFiltersAcrossChunks(t *testing.T) {
	tr := New(Config{Enabled: true})
	feedHealthyCycle(tr, "1")
	tr.Observe(sev(obs.EvChunkStaged, "rank1", "grid", 1, seq("1")))
	hs := tr.TierRecords("remote")
	if len(hs) != 1 || hs[0].Chunk != "rank0/field" || len(hs[0].Records) != 2 {
		t.Fatalf("remote tier records = %+v", hs)
	}
}
