package lineage_test

import (
	"strings"
	"testing"

	"nvmcp/internal/cluster"
	"nvmcp/internal/experiments"
	"nvmcp/internal/lineage"
	"nvmcp/internal/scenario"
)

// runStrict executes a scenario with the lineage tracer in strict mode and
// fails the test on any invariant violation (strict Run returns the error
// with the offending chunk's full lineage attached).
func runStrict(t *testing.T, sc *scenario.Scenario) (cluster.Result, *cluster.Cluster) {
	t.Helper()
	cfg, err := cluster.FromScenario(sc)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	cfg.Lineage = &lineage.Config{Enabled: true, Strict: true}
	res, c, err := cluster.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	if res.LineageViolations != 0 {
		t.Fatalf("%s: %d lineage violations", sc.Name, res.LineageViolations)
	}
	return res, c
}

// TestPresetsSatisfyInvariants replays every cluster-shaped preset at the
// tiny scale under the strict checker: no causal invariant may break on a
// healthy (or deliberately faulted) canonical run.
func TestPresetsSatisfyInvariants(t *testing.T) {
	for _, p := range scenario.Presets() {
		if !p.ClusterShaped() {
			continue
		}
		t.Run(p.ID, func(t *testing.T) {
			t.Parallel()
			sc, err := scenario.BuildPreset(p.ID, scenario.ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			runStrict(t, sc)
		})
	}
}

// TestQuickScalePresetsSatisfyInvariants re-checks the multi-tier presets at
// the quick scale, where more ranks and iterations widen the interleavings.
func TestQuickScalePresetsSatisfyInvariants(t *testing.T) {
	for _, id := range []string{"fig9", "faults", "hierarchy"} {
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			sc, err := scenario.BuildPreset(id, scenario.ScaleQuick)
			if err != nil {
				t.Fatal(err)
			}
			runStrict(t, sc)
		})
	}
}

// TestAvailabilityScenariosSatisfyInvariants replays the availability
// experiment's three faulted runs (local / remote / bottom dominant
// recovery) under the strict checker.
func TestAvailabilityScenariosSatisfyInvariants(t *testing.T) {
	for _, run := range experiments.AvailabilityScenarios(experiments.Quick) {
		t.Run(run.Path, func(t *testing.T) {
			t.Parallel()
			res, _ := runStrict(t, run.Scenario)
			if res.FailuresInjected == 0 {
				t.Fatalf("availability %s run injected no failures", run.Kind)
			}
		})
	}
}

// TestFaultsPresetWhyReconstructsPFSRecovery pins the acceptance scenario:
// in the faults preset, the chunks corrupted on node 1 lose both their local
// copy (salvaged at restore) and their remote copy (buddy loss), so the
// cascade serves them from the PFS — and Why must reconstruct that chain.
func TestFaultsPresetWhyReconstructsPFSRecovery(t *testing.T) {
	sc, err := scenario.BuildPreset("faults", scenario.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	_, c := runStrict(t, sc)
	tr := c.Lineage
	if tr.Epoch() == 0 {
		t.Fatal("faults preset completed without a recovery epoch")
	}
	sum := tr.Summary()
	if sum.DeepestRecoveryTier != "bottom" {
		t.Fatalf("deepest recovery tier = %q, want bottom (summary %+v)",
			sum.DeepestRecoveryTier, sum)
	}
	why, err := tr.Why(sum.DeepestRecoveryChunk, tr.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"served by the bottom tier",
		"local miss:",
		"remote miss:",
		"nvm-corrupt",
		"buddy-loss",
	} {
		if !strings.Contains(why, want) {
			t.Errorf("why output missing %q:\n%s", want, why)
		}
	}
}
