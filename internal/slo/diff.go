package slo

import (
	"fmt"
	"math"
)

// Diff verdicts, ordered worst first for display.
const (
	VerdictRegressed = "regressed"
	VerdictFailing   = "failing" // failing in both runs — not a new regression
	VerdictRemoved   = "removed" // objective vanished from the new report
	VerdictAdded     = "added"
	VerdictImproved  = "improved"
	VerdictOK        = "ok"
)

// DiffEntry is one objective's cross-run comparison.
type DiffEntry struct {
	Objective string   `json:"objective"`
	Verdict   string   `json:"verdict"`
	Detail    string   `json:"detail"`
	AValue    *float64 `json:"a_value,omitempty"`
	BValue    *float64 `json:"b_value,omitempty"`
	// Regression marks entries that should fail a gate.
	Regression bool `json:"regression"`
}

// DiffResult is the full comparison of report B (new) against A (baseline).
type DiffResult struct {
	Entries []DiffEntry `json:"entries"`
	// Regressed is true when any entry is a gate failure.
	Regressed bool `json:"regressed"`
}

// Diff compares run B against baseline A objective by objective. tolerance
// is the relative headroom-erosion allowance: a final value may move up to
// that fraction in the bad direction before a pass→pass comparison counts
// as a regression. Gate failures are: an objective newly failing in B, an
// objective missing from B (a silently dropped objective would hide a
// regression), more breach episodes in B while already failing, or a final
// value worsened beyond tolerance.
func Diff(a, b Report, tolerance float64) DiffResult {
	var res DiffResult
	aByName := make(map[string]ObjectiveStatus, len(a.Summary.Objectives))
	for _, o := range a.Summary.Objectives {
		aByName[o.Name] = o
	}
	seen := make(map[string]bool, len(b.Summary.Objectives))
	for _, ob := range b.Summary.Objectives {
		seen[ob.Name] = true
		oa, inA := aByName[ob.Name]
		e := DiffEntry{Objective: ob.Name}
		e.AValue = comparableValue(oa)
		e.BValue = comparableValue(ob)
		switch {
		case !inA:
			e.Verdict = VerdictAdded
			e.Detail = "objective not in baseline"
			if !ob.Pass {
				e.Verdict = VerdictRegressed
				e.Regression = true
				e.Detail = "new objective, failing"
			}
		case oa.Pass && !ob.Pass:
			e.Verdict = VerdictRegressed
			e.Regression = true
			e.Detail = fmt.Sprintf("newly failing: %d breach episode(s), %d/%d windows breached",
				ob.Episodes, ob.Breached, ob.Evaluated)
		case !oa.Pass && !ob.Pass:
			e.Verdict = VerdictFailing
			e.Detail = fmt.Sprintf("failing in both runs (%d vs %d episodes)", oa.Episodes, ob.Episodes)
			if ob.Episodes > oa.Episodes || ob.Breached > oa.Breached {
				e.Verdict = VerdictRegressed
				e.Regression = true
				e.Detail = fmt.Sprintf("failing and worse: %d→%d episodes, %d→%d breached windows",
					oa.Episodes, ob.Episodes, oa.Breached, ob.Breached)
			}
		case !oa.Pass && ob.Pass:
			e.Verdict = VerdictImproved
			e.Detail = "newly passing"
		default: // both pass: watch headroom erosion on comparable values
			e.Verdict = VerdictOK
			e.Detail = "pass in both runs"
			if e.AValue != nil && e.BValue != nil {
				av, bv := *e.AValue, *e.BValue
				move := relMove(av, bv, ob.Direction)
				switch {
				case move > tolerance:
					e.Verdict = VerdictRegressed
					e.Regression = true
					e.Detail = fmt.Sprintf("still passing but worsened %.1f%% (%g → %g, tolerance %.0f%%)",
						move*100, av, bv, tolerance*100)
				case move < -tolerance:
					e.Verdict = VerdictImproved
					e.Detail = fmt.Sprintf("improved %.1f%% (%g → %g)", -move*100, av, bv)
				}
			}
		}
		res.Entries = append(res.Entries, e)
		if e.Regression {
			res.Regressed = true
		}
	}
	for _, oa := range a.Summary.Objectives {
		if seen[oa.Name] {
			continue
		}
		res.Entries = append(res.Entries, DiffEntry{
			Objective:  oa.Name,
			Verdict:    VerdictRemoved,
			Detail:     "objective missing from new report (dropped objectives hide regressions)",
			AValue:     comparableValue(oa),
			Regression: true,
		})
		res.Regressed = true
	}
	return res
}

// comparableValue picks the value a cross-run comparison uses: the whole-run
// final aggregate when present, else the last windowed value.
func comparableValue(o ObjectiveStatus) *float64 {
	if o.FinalValue != nil {
		return o.FinalValue
	}
	return o.LastValue
}

// relMove returns the relative movement of b vs a signed so that positive
// means "worse" for the objective's direction.
func relMove(a, b float64, direction string) float64 {
	den := math.Abs(a)
	if den < 1e-12 {
		den = 1e-12
	}
	move := (b - a) / den
	if direction == AtLeast {
		move = -move
	}
	return move
}
