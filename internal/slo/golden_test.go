package slo_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nvmcp/internal/cluster"
	"nvmcp/internal/scenario"
	"nvmcp/internal/slo"
)

var update = flag.Bool("update", false, "rewrite the golden report artifacts")

// goldenRun executes the deterministic tiny slo-paper preset and renders its
// report. The simulation is byte-deterministic at any GOMAXPROCS, so the
// JSON and HTML artifacts must match the checked-in goldens exactly; a diff
// here means either the scenario's behavior changed or the report format did
// — both deserve a deliberate `go test ./internal/slo -run Golden -update`.
func goldenRun(t *testing.T) slo.Report {
	t.Helper()
	p, ok := scenario.PresetByID("slo-paper")
	if !ok {
		t.Fatal("slo-paper preset not registered")
	}
	sc := p.Build(scenario.ScaleTiny)
	_, c, err := cluster.RunScenario(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if c.SLO == nil {
		t.Fatal("scenario with an slo block did not attach the flight recorder")
	}
	return slo.BuildReport(c.SLO, slo.Meta{Tool: "test", Scenario: sc.Name, Seed: sc.FaultSeed})
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (%d vs %d bytes) — if the change is intentional, re-run with -update",
			path, len(got), len(want))
	}
}

func TestGoldenJSONReport(t *testing.T) {
	rep := goldenRun(t)
	var buf bytes.Buffer
	if err := slo.WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "slo-paper-tiny.golden.json"), buf.Bytes())

	// The artifact must round-trip through the diff loader unchanged.
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := slo.ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res := slo.Diff(rep, back, 0); res.Regressed {
		t.Fatalf("self-diff of a round-tripped report regressed: %+v", res.Entries)
	}
}

func TestGoldenHTMLReport(t *testing.T) {
	rep := goldenRun(t)
	var buf bytes.Buffer
	if err := slo.WriteHTML(&buf, rep); err != nil {
		t.Fatal(err)
	}
	// Self-containment: one document, inline styles and SVG, no external
	// fetches.
	for _, must := range []string{"<!DOCTYPE html>", "<style>", "<svg", "</html>"} {
		if !bytes.Contains(buf.Bytes(), []byte(must)) {
			t.Fatalf("HTML report lacks %q", must)
		}
	}
	for _, never := range []string{"<script src", "<link rel", "http://", "https://"} {
		if bytes.Contains(buf.Bytes(), []byte(never)) {
			t.Fatalf("HTML report references external resource (%q) — must be self-contained", never)
		}
	}
	checkGolden(t, filepath.Join("testdata", "slo-paper-tiny.golden.html"), buf.Bytes())
}

func TestSchemaVersionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := slo.ReadReportFile(path); err == nil {
		t.Fatal("schema version 99 accepted")
	}
}
