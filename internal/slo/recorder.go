package slo

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"nvmcp/internal/obs"
)

// Window is one closed flight-recorder window. Values holds the windowed
// series that had data in the window — absent keys mean "no data" (e.g. no
// pre-copy traffic happened, so precopy_hit_rate is undefined), never zero.
type Window struct {
	Index   int   `json:"index"`
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	// Values maps series name → windowed value. JSON marshals map keys
	// sorted, so the artifact is byte-stable.
	Values map[string]float64 `json:"values"`
}

// interval is one degraded span of virtual time; end < 0 while still open.
type interval struct {
	start, end time.Duration
}

// scalars are the cumulative registry counters the windowed series
// difference against.
type scalars struct {
	precopyBytes float64
	ckptBytes    float64
	precopied    float64
	redirtied    float64
	recovery     [4]float64 // local, remote, bottom, lost
	fabric       float64    // cumulative fabric_bytes{class="ckpt"}
}

// tierIdx orders the recovery_path tiers in scalars.recovery.
var tierNames = [4]string{"local", "remote", "bottom", "lost"}

// tierLabels are the canonical label strings the registry keys the
// recovery_path counters under (obs.Labels{"tier": name}.canon()).
var tierLabels = [4]string{
	`{tier="local"}`, `{tier="remote"}`, `{tier="bottom"}`, `{tier="lost"}`,
}

// objState is the online evaluator state for one objective.
type objState struct {
	obj Objective
	// recent is a ring of the objective's last horizon() window verdicts
	// (true = violating).
	recent []bool
	n, pos int
	bad    int // violating count inside recent

	evaluated int // windows with data for this objective's series
	breached  int // windows judged breaching
	inBreach  bool
	episodes  int

	lastValue  float64
	hasLast    bool
	finalValue float64
	hasFinal   bool
	finalPass  bool
}

// ObjectiveStatus is one objective's externally visible evaluation state —
// what the introspection endpoints, the run report, and the diff consume.
type ObjectiveStatus struct {
	Name      string  `json:"name"`
	Series    string  `json:"series"`
	Direction string  `json:"direction"`
	Threshold float64 `json:"threshold"`
	Over      int     `json:"over"`
	Tolerance float64 `json:"tolerance"`
	Final     bool    `json:"final"`
	// Evaluated counts windows that had data for the series; Breached counts
	// those judged breaching; Episodes counts compliant→breach transitions.
	Evaluated int  `json:"windows_evaluated"`
	Breached  int  `json:"windows_breached"`
	Episodes  int  `json:"breach_episodes"`
	InBreach  bool `json:"in_breach"`
	// LastValue is the most recent windowed value; FinalValue the whole-run
	// aggregate (set at Finalize). Nil means no data.
	LastValue  *float64 `json:"last_value,omitempty"`
	FinalValue *float64 `json:"final_value,omitempty"`
	// Pass is the objective's overall verdict: no breach episodes and (for
	// final objectives) the end-of-run aggregate inside the bound.
	Pass bool `json:"pass"`
}

// Summary is the recorder's end-of-run rollup, embedded into the RunReport
// and the cluster result table.
type Summary struct {
	WindowUS       int64             `json:"window_us"`
	Windows        int               `json:"windows"`
	WindowsStored  int               `json:"windows_stored"`
	Objectives     []ObjectiveStatus `json:"objectives,omitempty"`
	ViolationCount int               `json:"violation_count"`
	// Whole-run aggregates of the flight series.
	PeakCkptWindowBytes float64 `json:"peak_ckpt_window_bytes"`
	PrecopyHitRate      float64 `json:"precopy_hit_rate"`
	RedirtyRate         float64 `json:"redirty_rate"`
	MTTRSeconds         float64 `json:"mttr_seconds"`
	DegradedSeconds     float64 `json:"degraded_seconds"`
	Availability        float64 `json:"availability"`
}

// Recorder is the virtual-time flight recorder: an event tap that closes
// fixed-width windows lazily as the bus's virtual clock crosses their
// boundaries, differencing the metrics registry (via Snapshot) and the
// fabric timeline into windowed series, and evaluating the SLO spec online.
//
// All state is mutex-guarded so the introspection HTTP handlers can read
// mid-run, exactly like the lineage tracer. The tap runs under the
// observer's mutex and only reads the registry (observer.mu → registry.mu
// is the established lock order); it never publishes events back.
type Recorder struct {
	mu  sync.Mutex
	cfg Config

	window        time.Duration
	maxWindows    int
	maxViolations int

	reg    *obs.Registry
	fabric *obs.Timeline
	buf    []obs.MetricPoint

	// curStart is the open window's start; prev the cumulative scalars at
	// its open.
	curStart time.Duration
	prev     scalars

	// ring of closed windows: win[(start+i)%cap] for i < n.
	win   []Window
	start int
	n     int
	total int // windows closed ever

	// degraded intervals: failures (keyed "fail:<node>" — at most one outage
	// at a time in practice, but keyed defensively) and link flaps (keyed by
	// node). Closed intervals are pruned once fully behind the open window.
	open      map[string]time.Duration
	closedIvs []interval

	// per-window repair stats, reset at close; run-level accumulators.
	repairSumUS int64
	repairN     int
	mttrSumUS   int64
	mttrN       int

	// run-level aggregates, maintained incrementally so ring eviction loses
	// no information.
	peakCkptWindow float64
	degradedTotal  time.Duration

	objs       []objState
	violations []Violation
	violCount  int

	finalized bool
	endTime   time.Duration
}

// New builds a recorder over a registry. Tests drive it directly with
// synthetic events; production code uses Attach.
func New(cfg Config, reg *obs.Registry) *Recorder {
	r := &Recorder{
		cfg:           cfg,
		window:        cfg.Spec.Window(),
		maxWindows:    cfg.MaxWindows,
		maxViolations: cfg.MaxViolations,
		reg:           reg,
		fabric:        reg.Timeline("fabric_bytes", obs.Labels{"class": "ckpt"}),
		open:          make(map[string]time.Duration),
	}
	if r.maxWindows <= 0 {
		r.maxWindows = defaultMaxWindows
	}
	if r.maxViolations <= 0 {
		r.maxViolations = defaultMaxViolations
	}
	r.win = make([]Window, 0, r.maxWindows)
	if cfg.Spec != nil {
		for _, o := range cfg.Spec.Objectives {
			r.objs = append(r.objs, objState{
				obj:       o,
				recent:    make([]bool, o.horizon()),
				finalPass: true,
			})
		}
	}
	return r
}

// Attach builds a recorder and registers it as an (additive) event tap on
// the observer, alongside any lineage tracer.
func Attach(o *obs.Observer, cfg Config) *Recorder {
	r := New(cfg, o.Registry())
	o.AddEventTap(r.Observe)
	return r
}

// Observe is the event tap. It first closes any windows the event's virtual
// time has moved past, then folds the event into the open window's state.
func (r *Recorder) Observe(ev obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finalized {
		return
	}
	t := ev.Time()
	r.closeThrough(t)
	switch ev.Type {
	case obs.EvFailure:
		key := "fail:" + strconv.Itoa(ev.Node)
		if _, dup := r.open[key]; !dup {
			r.open[key] = t
		}
	case obs.EvRepairDone:
		r.closeInterval("fail:"+strconv.Itoa(ev.Node), t)
		if us, err := strconv.ParseInt(ev.Attrs["mttr_us"], 10, 64); err == nil {
			r.repairSumUS += us
			r.repairN++
			r.mttrSumUS += us
			r.mttrN++
		}
	case obs.EvLinkFlap:
		key := "flap:" + strconv.Itoa(ev.Node)
		if _, dup := r.open[key]; !dup {
			r.open[key] = t
		}
	case obs.EvLinkRestore:
		r.closeInterval("flap:"+strconv.Itoa(ev.Node), t)
	}
}

// closeInterval moves an open degraded interval to the closed list.
func (r *Recorder) closeInterval(key string, t time.Duration) {
	start, ok := r.open[key]
	if !ok {
		return
	}
	delete(r.open, key)
	r.closedIvs = append(r.closedIvs, interval{start: start, end: t})
}

// closeThrough closes every full window whose end is <= t.
func (r *Recorder) closeThrough(t time.Duration) {
	for t >= r.curStart+r.window {
		r.closeWindow(r.curStart + r.window)
	}
}

// degradedIn sums the overlap of all degraded intervals with [s, e), and
// prunes closed intervals that can no longer overlap future windows.
func (r *Recorder) degradedIn(s, e time.Duration) time.Duration {
	var sum time.Duration
	kept := r.closedIvs[:0]
	for _, iv := range r.closedIvs {
		sum += overlap(iv.start, iv.end, s, e)
		if iv.end > e {
			kept = append(kept, iv)
		}
	}
	r.closedIvs = kept
	for _, start := range r.open {
		sum += overlap(start, e, s, e)
	}
	return sum
}

func overlap(a0, a1, b0, b1 time.Duration) time.Duration {
	if a0 < b0 {
		a0 = b0
	}
	if a1 > b1 {
		a1 = b1
	}
	if a1 <= a0 {
		return 0
	}
	return a1 - a0
}

// snapScalars reads the tracked cumulative counters via Registry.Snapshot —
// the cheap no-map, no-concat poll path — plus the fabric timeline.
func (r *Recorder) snapScalars(at time.Duration) scalars {
	var s scalars
	r.buf = r.reg.Snapshot(r.buf[:0])
	for _, p := range r.buf {
		switch p.Name {
		case "precopy_bytes":
			if p.Labels == "" {
				s.precopyBytes = p.Value
			}
		case "ckpt_bytes":
			if p.Labels == "" {
				s.ckptBytes = p.Value
			}
		case "chunks_precopied":
			if p.Labels == "" {
				s.precopied = p.Value
			}
		case "redirtied_chunks":
			if p.Labels == "" {
				s.redirtied = p.Value
			}
		case "recovery_path":
			for i, canon := range tierLabels {
				if p.Labels == canon {
					s.recovery[i] = p.Value
				}
			}
		}
	}
	s.fabric = r.fabric.At(at)
	return s
}

// closeWindow seals [curStart, end): computes the windowed series values,
// evaluates the per-window objectives, pushes the window into the ring, and
// rolls the aggregates forward.
//
// Counter deltas are read at close time, so activity stamped exactly at a
// boundary (or at the triggering event's time, which may sit past end)
// attributes to the closing window. The fuzz is one event deep and the
// simulation is deterministic, so reports are byte-stable run to run.
func (r *Recorder) closeWindow(end time.Duration) {
	start := r.curStart
	width := end - start
	cur := r.snapScalars(end)

	vals := make(map[string]float64, 10)
	vals["ckpt_window_bytes"] = cur.fabric - r.prev.fabric
	if dPre, dCk := cur.precopyBytes-r.prev.precopyBytes, cur.ckptBytes-r.prev.ckptBytes; dPre+dCk > 0 {
		vals["precopy_hit_rate"] = dPre / (dPre + dCk)
	}
	if dCop := cur.precopied - r.prev.precopied; dCop > 0 {
		vals["redirty_rate"] = (cur.redirtied - r.prev.redirtied) / dCop
	}
	for i, tier := range tierNames {
		vals["recovery_"+tier] = cur.recovery[i] - r.prev.recovery[i]
	}
	if r.repairN > 0 {
		vals["mttr_seconds"] = float64(r.repairSumUS) / 1e6 / float64(r.repairN)
	}
	degraded := r.degradedIn(start, end)
	vals["degraded_seconds"] = degraded.Seconds()
	vals["availability"] = 1 - float64(degraded)/float64(width)

	w := Window{
		Index:   r.total,
		StartUS: start.Microseconds(),
		EndUS:   end.Microseconds(),
		Values:  vals,
	}
	r.push(w)
	r.evaluateWindow(w)

	if v := vals["ckpt_window_bytes"]; v > r.peakCkptWindow {
		r.peakCkptWindow = v
	}
	r.degradedTotal += degraded
	r.total++
	r.prev = cur
	r.curStart = end
	r.repairSumUS, r.repairN = 0, 0
}

// push appends a window to the bounded ring, evicting the oldest when full.
func (r *Recorder) push(w Window) {
	if len(r.win) < r.maxWindows {
		r.win = append(r.win, w)
		r.n++
		return
	}
	r.win[r.start] = w
	r.start = (r.start + 1) % r.maxWindows
}

// evaluateWindow feeds the window's values to every non-final objective.
func (r *Recorder) evaluateWindow(w Window) {
	for i := range r.objs {
		st := &r.objs[i]
		if st.obj.Final {
			continue
		}
		v, ok := w.Values[st.obj.SeriesName()]
		if !ok {
			continue // no data this window; breach state unchanged
		}
		st.lastValue, st.hasLast = v, true
		st.evaluated++
		// Slide the horizon ring.
		if st.n == len(st.recent) {
			if st.recent[st.pos] {
				st.bad--
			}
		} else {
			st.n++
		}
		violating := st.obj.violated(v)
		st.recent[st.pos] = violating
		if violating {
			st.bad++
		}
		st.pos = (st.pos + 1) % len(st.recent)

		frac := float64(st.bad) / float64(st.n)
		breach := frac > st.obj.Tolerance+1e-9
		if breach {
			st.breached++
		}
		if breach && !st.inBreach {
			st.episodes++
			r.violate(Violation{
				TUS:       w.EndUS,
				Window:    w.Index,
				Objective: st.obj.Name,
				Series:    st.obj.SeriesName(),
				Value:     v,
				Threshold: st.obj.Threshold,
				Direction: st.obj.Direction,
				Detail: fmt.Sprintf("window %d [%gs,%gs): %s = %g %s threshold %g (%d/%d windows violating, tolerance %g)",
					w.Index, float64(w.StartUS)/1e6, float64(w.EndUS)/1e6,
					st.obj.SeriesName(), v, violatedWord(st.obj.Direction), st.obj.Threshold,
					st.bad, st.n, st.obj.Tolerance),
			})
		}
		st.inBreach = breach
	}
}

func violatedWord(direction string) string {
	if direction == AtLeast {
		return "below"
	}
	return "above"
}

// violate records one breach episode, bounded by MaxViolations.
func (r *Recorder) violate(v Violation) {
	r.violCount++
	if len(r.violations) < r.maxViolations {
		r.violations = append(r.violations, v)
	}
}

// finalAggregate computes the whole-run value of a series for final
// objectives. ok=false means the series never had data (e.g. MTTR with no
// failures), which skips the objective rather than violating it.
func (r *Recorder) finalAggregate(series string, end scalars, now time.Duration) (float64, bool) {
	switch series {
	case "ckpt_window_bytes":
		return r.peakCkptWindow, true
	case "precopy_hit_rate":
		if end.precopyBytes+end.ckptBytes <= 0 {
			return 0, false
		}
		return end.precopyBytes / (end.precopyBytes + end.ckptBytes), true
	case "redirty_rate":
		if end.precopied <= 0 {
			return 0, false
		}
		return end.redirtied / end.precopied, true
	case "recovery_local":
		return end.recovery[0], true
	case "recovery_remote":
		return end.recovery[1], true
	case "recovery_bottom":
		return end.recovery[2], true
	case "recovery_lost":
		return end.recovery[3], true
	case "mttr_seconds":
		if r.mttrN == 0 {
			return 0, false
		}
		return float64(r.mttrSumUS) / 1e6 / float64(r.mttrN), true
	case "degraded_seconds":
		return r.degradedTotal.Seconds(), true
	case "availability":
		if now <= 0 {
			return 0, false
		}
		return 1 - float64(r.degradedTotal)/float64(now), true
	}
	return 0, false
}

// Finalize seals the recorder at virtual time now: closes every complete
// window, closes the partial tail window if any time remains, and evaluates
// the final (whole-run) objectives. Idempotent; later Observe calls are
// ignored.
func (r *Recorder) Finalize(now time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finalized {
		return
	}
	r.closeThrough(now)
	if now > r.curStart {
		r.closeWindow(now) // partial tail window [curStart, now)
	}
	r.endTime = now
	endScalars := r.snapScalars(now)
	for i := range r.objs {
		st := &r.objs[i]
		if !st.obj.Final {
			continue
		}
		v, ok := r.finalAggregate(st.obj.SeriesName(), endScalars, now)
		if !ok {
			continue
		}
		st.finalValue, st.hasFinal = v, true
		st.evaluated++
		if st.obj.violated(v) {
			st.finalPass = false
			st.breached++
			st.episodes++
			st.inBreach = true
			r.violate(Violation{
				TUS:       now.Microseconds(),
				Window:    -1,
				Objective: st.obj.Name,
				Series:    st.obj.SeriesName(),
				Value:     v,
				Threshold: st.obj.Threshold,
				Direction: st.obj.Direction,
				Detail: fmt.Sprintf("final: %s = %g %s threshold %g",
					st.obj.SeriesName(), v, violatedWord(st.obj.Direction), st.obj.Threshold),
			})
		}
	}
	r.finalized = true
}

// status renders one objective's external state. Caller holds r.mu.
func (st *objState) status() ObjectiveStatus {
	s := ObjectiveStatus{
		Name:      st.obj.Name,
		Series:    st.obj.SeriesName(),
		Direction: st.obj.Direction,
		Threshold: st.obj.Threshold,
		Over:      st.obj.horizon(),
		Tolerance: st.obj.Tolerance,
		Final:     st.obj.Final,
		Evaluated: st.evaluated,
		Breached:  st.breached,
		Episodes:  st.episodes,
		InBreach:  st.inBreach,
		Pass:      st.episodes == 0 && st.finalPass,
	}
	if st.hasLast {
		v := st.lastValue
		s.LastValue = &v
	}
	if st.hasFinal {
		v := st.finalValue
		s.FinalValue = &v
	}
	return s
}

// Objectives returns every objective's current evaluation state.
func (r *Recorder) Objectives() []ObjectiveStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(r.objs))
	for i := range r.objs {
		out = append(out, r.objs[i].status())
	}
	return out
}

// Windows returns the retained closed windows, oldest first.
func (r *Recorder) Windows() []Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Window, 0, len(r.win))
	for i := 0; i < len(r.win); i++ {
		out = append(out, r.win[(r.start+i)%len(r.win)])
	}
	return out
}

// Violations returns the retained breach episodes (never nil, so JSON
// consumers of the introspection endpoints see [] rather than null).
func (r *Recorder) Violations() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(make([]Violation, 0, len(r.violations)), r.violations...)
}

// ViolationCount returns the total breach episodes, including any past the
// retention bound.
func (r *Recorder) ViolationCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.violCount
}

// Err returns nil when every objective holds, or an error describing the
// first breach — the strict-mode failure, mirroring lineage.Err.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.violCount == 0 {
		return nil
	}
	first := r.violations[0]
	return fmt.Errorf("slo: %d objective breach(es); first: %s", r.violCount, first)
}

// Summary returns the end-of-run rollup. Call after Finalize for final
// objective values; safe (and race-free) mid-run for live introspection.
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		WindowUS:            r.window.Microseconds(),
		Windows:             r.total,
		WindowsStored:       len(r.win),
		ViolationCount:      r.violCount,
		PeakCkptWindowBytes: r.peakCkptWindow,
	}
	for i := range r.objs {
		s.Objectives = append(s.Objectives, r.objs[i].status())
	}
	now := r.endTime
	if !r.finalized {
		now = r.curStart
	}
	end := r.snapScalars(now)
	if end.precopyBytes+end.ckptBytes > 0 {
		s.PrecopyHitRate = end.precopyBytes / (end.precopyBytes + end.ckptBytes)
	}
	if end.precopied > 0 {
		s.RedirtyRate = end.redirtied / end.precopied
	}
	if r.mttrN > 0 {
		s.MTTRSeconds = float64(r.mttrSumUS) / 1e6 / float64(r.mttrN)
	}
	s.DegradedSeconds = r.degradedTotal.Seconds()
	if now > 0 {
		s.Availability = 1 - float64(r.degradedTotal)/float64(now)
	} else {
		s.Availability = 1
	}
	return s
}

// Strict reports whether the recorder should fail the run on breach.
func (r *Recorder) Strict() bool { return r.cfg.Strict }

// MaxBurn is the live error-budget burn rate: the highest, across windowed
// objectives, of the violating share of the objective's consecutive-breach
// horizon ring. 0 means every objective is clean over its horizon; 1 means
// some objective's whole horizon is violating (a violation is firing). The
// control plane's burn-rate admission holds new work while running jobs
// burn budget.
func (r *Recorder) MaxBurn() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	burn := 0.0
	for i := range r.objs {
		st := &r.objs[i]
		if st.obj.Final || len(st.recent) == 0 {
			continue
		}
		if b := float64(st.bad) / float64(len(st.recent)); b > burn {
			burn = b
		}
	}
	return burn
}
