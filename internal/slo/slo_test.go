package slo

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestSeriesNamesSortedAndCopied(t *testing.T) {
	names := SeriesNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("series catalog not sorted: %v", names)
	}
	names[0] = "mutated"
	if SeriesNames()[0] == "mutated" {
		t.Fatal("SeriesNames returned the internal slice, not a copy")
	}
	for _, s := range SeriesNames() {
		if !knownSeries(s) {
			t.Fatalf("catalog entry %q not known to knownSeries", s)
		}
	}
	if knownSeries("no_such_series") {
		t.Fatal("knownSeries accepted an unknown name")
	}
}

func TestObjectiveViolatedThresholdItselfPasses(t *testing.T) {
	atMost := Objective{Direction: AtMost, Threshold: 10}
	if atMost.violated(10) {
		t.Fatal("at_most: the threshold value itself must pass")
	}
	if !atMost.violated(10.001) {
		t.Fatal("at_most: above threshold must violate")
	}
	atLeast := Objective{Direction: AtLeast, Threshold: 0.9}
	if atLeast.violated(0.9) {
		t.Fatal("at_least: the threshold value itself must pass")
	}
	if !atLeast.violated(0.899) {
		t.Fatal("at_least: below threshold must violate")
	}
}

func TestObjectiveDefaults(t *testing.T) {
	o := Objective{Name: "availability"}
	if got := o.SeriesName(); got != "availability" {
		t.Fatalf("SeriesName default = %q, want the objective name", got)
	}
	o.Series = "mttr_seconds"
	if got := o.SeriesName(); got != "mttr_seconds" {
		t.Fatalf("SeriesName = %q, want explicit series", got)
	}
	if o.horizon() != 1 {
		t.Fatalf("horizon default = %d, want 1", o.horizon())
	}
	o.Over = 4
	if o.horizon() != 4 {
		t.Fatalf("horizon = %d, want 4", o.horizon())
	}
}

func TestSpecWindowDefault(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Window() != DefaultWindow {
		t.Fatalf("nil spec window = %v, want %v", nilSpec.Window(), DefaultWindow)
	}
	s := &Spec{WindowSecs: 2.5}
	if s.Window() != 2500*time.Millisecond {
		t.Fatalf("window = %v, want 2.5s", s.Window())
	}
}

func TestSpecValidate(t *testing.T) {
	valid := func() *Spec {
		return &Spec{Objectives: []Objective{
			{Name: "availability", Direction: AtLeast, Threshold: 0.99},
			{Name: "peak", Series: "ckpt_window_bytes", Direction: AtMost, Threshold: 1e9, Final: true},
			{Name: "burn", Series: "availability", Direction: AtLeast, Threshold: 0.9, Over: 4, Tolerance: 0.5},
		}}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec must validate (no objectives declared): %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"no objectives", func(s *Spec) { s.Objectives = nil }, "no objectives"},
		{"negative window", func(s *Spec) { s.WindowSecs = -1 }, "window_secs"},
		{"unnamed", func(s *Spec) { s.Objectives[0].Name = "" }, "no name"},
		{"duplicate", func(s *Spec) { s.Objectives[1] = s.Objectives[0] }, "duplicate"},
		{"unknown series", func(s *Spec) { s.Objectives[0].Name = "no_such" }, "valid:"},
		{"bad direction", func(s *Spec) { s.Objectives[0].Direction = "around" }, "direction"},
		{"nan threshold", func(s *Spec) { s.Objectives[0].Threshold = math.NaN() }, "finite"},
		{"inf threshold", func(s *Spec) { s.Objectives[0].Threshold = math.Inf(1) }, "finite"},
		{"negative over", func(s *Spec) { s.Objectives[0].Over = -1 }, "over"},
		{"tolerance too big", func(s *Spec) { s.Objectives[2].Tolerance = 1 }, "tolerance"},
		{"negative tolerance", func(s *Spec) { s.Objectives[2].Tolerance = -0.1 }, "tolerance"},
		{"final with horizon", func(s *Spec) { s.Objectives[1].Over = 3 }, "final"},
	}
	for _, tc := range cases {
		s := valid()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: spec accepted, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q lacks %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestValidateUnknownSeriesListsCatalog(t *testing.T) {
	s := &Spec{Objectives: []Objective{{Name: "typo_series", Direction: AtMost, Threshold: 1}}}
	err := s.Validate()
	if err == nil {
		t.Fatal("unknown series accepted")
	}
	for _, name := range SeriesNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid series %q", err, name)
		}
	}
}
